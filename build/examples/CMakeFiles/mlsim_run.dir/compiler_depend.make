# Empty compiler generated dependencies file for mlsim_run.
# This may be replaced when dependencies are built.
