file(REMOVE_RECURSE
  "CMakeFiles/mlsim_run.dir/mlsim_run.cpp.o"
  "CMakeFiles/mlsim_run.dir/mlsim_run.cpp.o.d"
  "mlsim_run"
  "mlsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
