# Empty compiler generated dependencies file for cg_mini.
# This may be replaced when dependencies are built.
