file(REMOVE_RECURSE
  "CMakeFiles/cg_mini.dir/cg_mini.cpp.o"
  "CMakeFiles/cg_mini.dir/cg_mini.cpp.o.d"
  "cg_mini"
  "cg_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
