file(REMOVE_RECURSE
  "CMakeFiles/reduction_pipeline.dir/reduction_pipeline.cpp.o"
  "CMakeFiles/reduction_pipeline.dir/reduction_pipeline.cpp.o.d"
  "reduction_pipeline"
  "reduction_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
