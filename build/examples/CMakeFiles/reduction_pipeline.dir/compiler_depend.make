# Empty compiler generated dependencies file for reduction_pipeline.
# This may be replaced when dependencies are built.
