file(REMOVE_RECURSE
  "CMakeFiles/transpose_fft.dir/transpose_fft.cpp.o"
  "CMakeFiles/transpose_fft.dir/transpose_fft.cpp.o.d"
  "transpose_fft"
  "transpose_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transpose_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
