# Empty dependencies file for transpose_fft.
# This may be replaced when dependencies are built.
