file(REMOVE_RECURSE
  "CMakeFiles/ap_base.dir/logging.cc.o"
  "CMakeFiles/ap_base.dir/logging.cc.o.d"
  "CMakeFiles/ap_base.dir/strings.cc.o"
  "CMakeFiles/ap_base.dir/strings.cc.o.d"
  "CMakeFiles/ap_base.dir/table.cc.o"
  "CMakeFiles/ap_base.dir/table.cc.o.d"
  "libap_base.a"
  "libap_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
