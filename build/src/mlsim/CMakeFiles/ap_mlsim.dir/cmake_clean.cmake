file(REMOVE_RECURSE
  "CMakeFiles/ap_mlsim.dir/params.cc.o"
  "CMakeFiles/ap_mlsim.dir/params.cc.o.d"
  "CMakeFiles/ap_mlsim.dir/replay.cc.o"
  "CMakeFiles/ap_mlsim.dir/replay.cc.o.d"
  "CMakeFiles/ap_mlsim.dir/trace_file.cc.o"
  "CMakeFiles/ap_mlsim.dir/trace_file.cc.o.d"
  "libap_mlsim.a"
  "libap_mlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_mlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
