file(REMOVE_RECURSE
  "libap_mlsim.a"
)
