# Empty compiler generated dependencies file for ap_mlsim.
# This may be replaced when dependencies are built.
