# Empty compiler generated dependencies file for ap_core.
# This may be replaced when dependencies are built.
