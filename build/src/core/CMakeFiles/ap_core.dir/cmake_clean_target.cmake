file(REMOVE_RECURSE
  "libap_core.a"
)
