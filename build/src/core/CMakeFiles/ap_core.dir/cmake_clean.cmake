file(REMOVE_RECURSE
  "CMakeFiles/ap_core.dir/collective.cc.o"
  "CMakeFiles/ap_core.dir/collective.cc.o.d"
  "CMakeFiles/ap_core.dir/context.cc.o"
  "CMakeFiles/ap_core.dir/context.cc.o.d"
  "CMakeFiles/ap_core.dir/program.cc.o"
  "CMakeFiles/ap_core.dir/program.cc.o.d"
  "CMakeFiles/ap_core.dir/trace.cc.o"
  "CMakeFiles/ap_core.dir/trace.cc.o.d"
  "CMakeFiles/ap_core.dir/wtpage.cc.o"
  "CMakeFiles/ap_core.dir/wtpage.cc.o.d"
  "libap_core.a"
  "libap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
