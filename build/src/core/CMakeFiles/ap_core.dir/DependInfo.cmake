
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collective.cc" "src/core/CMakeFiles/ap_core.dir/collective.cc.o" "gcc" "src/core/CMakeFiles/ap_core.dir/collective.cc.o.d"
  "/root/repo/src/core/context.cc" "src/core/CMakeFiles/ap_core.dir/context.cc.o" "gcc" "src/core/CMakeFiles/ap_core.dir/context.cc.o.d"
  "/root/repo/src/core/program.cc" "src/core/CMakeFiles/ap_core.dir/program.cc.o" "gcc" "src/core/CMakeFiles/ap_core.dir/program.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/ap_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/ap_core.dir/trace.cc.o.d"
  "/root/repo/src/core/wtpage.cc" "src/core/CMakeFiles/ap_core.dir/wtpage.cc.o" "gcc" "src/core/CMakeFiles/ap_core.dir/wtpage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ap_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ap_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
