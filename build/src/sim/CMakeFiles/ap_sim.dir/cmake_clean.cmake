file(REMOVE_RECURSE
  "CMakeFiles/ap_sim.dir/eventq.cc.o"
  "CMakeFiles/ap_sim.dir/eventq.cc.o.d"
  "CMakeFiles/ap_sim.dir/fiber.cc.o"
  "CMakeFiles/ap_sim.dir/fiber.cc.o.d"
  "CMakeFiles/ap_sim.dir/process.cc.o"
  "CMakeFiles/ap_sim.dir/process.cc.o.d"
  "libap_sim.a"
  "libap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
