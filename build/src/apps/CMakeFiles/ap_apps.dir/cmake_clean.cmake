file(REMOVE_RECURSE
  "CMakeFiles/ap_apps.dir/app.cc.o"
  "CMakeFiles/ap_apps.dir/app.cc.o.d"
  "CMakeFiles/ap_apps.dir/cg.cc.o"
  "CMakeFiles/ap_apps.dir/cg.cc.o.d"
  "CMakeFiles/ap_apps.dir/ep.cc.o"
  "CMakeFiles/ap_apps.dir/ep.cc.o.d"
  "CMakeFiles/ap_apps.dir/ft.cc.o"
  "CMakeFiles/ap_apps.dir/ft.cc.o.d"
  "CMakeFiles/ap_apps.dir/gen.cc.o"
  "CMakeFiles/ap_apps.dir/gen.cc.o.d"
  "CMakeFiles/ap_apps.dir/matmul.cc.o"
  "CMakeFiles/ap_apps.dir/matmul.cc.o.d"
  "CMakeFiles/ap_apps.dir/scg.cc.o"
  "CMakeFiles/ap_apps.dir/scg.cc.o.d"
  "CMakeFiles/ap_apps.dir/sp.cc.o"
  "CMakeFiles/ap_apps.dir/sp.cc.o.d"
  "CMakeFiles/ap_apps.dir/tomcatv.cc.o"
  "CMakeFiles/ap_apps.dir/tomcatv.cc.o.d"
  "libap_apps.a"
  "libap_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
