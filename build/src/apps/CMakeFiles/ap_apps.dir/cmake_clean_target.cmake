file(REMOVE_RECURSE
  "libap_apps.a"
)
