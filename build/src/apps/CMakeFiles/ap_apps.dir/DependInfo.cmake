
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cc" "src/apps/CMakeFiles/ap_apps.dir/app.cc.o" "gcc" "src/apps/CMakeFiles/ap_apps.dir/app.cc.o.d"
  "/root/repo/src/apps/cg.cc" "src/apps/CMakeFiles/ap_apps.dir/cg.cc.o" "gcc" "src/apps/CMakeFiles/ap_apps.dir/cg.cc.o.d"
  "/root/repo/src/apps/ep.cc" "src/apps/CMakeFiles/ap_apps.dir/ep.cc.o" "gcc" "src/apps/CMakeFiles/ap_apps.dir/ep.cc.o.d"
  "/root/repo/src/apps/ft.cc" "src/apps/CMakeFiles/ap_apps.dir/ft.cc.o" "gcc" "src/apps/CMakeFiles/ap_apps.dir/ft.cc.o.d"
  "/root/repo/src/apps/gen.cc" "src/apps/CMakeFiles/ap_apps.dir/gen.cc.o" "gcc" "src/apps/CMakeFiles/ap_apps.dir/gen.cc.o.d"
  "/root/repo/src/apps/matmul.cc" "src/apps/CMakeFiles/ap_apps.dir/matmul.cc.o" "gcc" "src/apps/CMakeFiles/ap_apps.dir/matmul.cc.o.d"
  "/root/repo/src/apps/scg.cc" "src/apps/CMakeFiles/ap_apps.dir/scg.cc.o" "gcc" "src/apps/CMakeFiles/ap_apps.dir/scg.cc.o.d"
  "/root/repo/src/apps/sp.cc" "src/apps/CMakeFiles/ap_apps.dir/sp.cc.o" "gcc" "src/apps/CMakeFiles/ap_apps.dir/sp.cc.o.d"
  "/root/repo/src/apps/tomcatv.cc" "src/apps/CMakeFiles/ap_apps.dir/tomcatv.cc.o" "gcc" "src/apps/CMakeFiles/ap_apps.dir/tomcatv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ap_base.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
