# Empty dependencies file for ap_apps.
# This may be replaced when dependencies are built.
