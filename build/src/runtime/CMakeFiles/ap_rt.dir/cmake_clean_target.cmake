file(REMOVE_RECURSE
  "libap_rt.a"
)
