# Empty dependencies file for ap_rt.
# This may be replaced when dependencies are built.
