file(REMOVE_RECURSE
  "CMakeFiles/ap_rt.dir/decomp.cc.o"
  "CMakeFiles/ap_rt.dir/decomp.cc.o.d"
  "CMakeFiles/ap_rt.dir/garray.cc.o"
  "CMakeFiles/ap_rt.dir/garray.cc.o.d"
  "CMakeFiles/ap_rt.dir/rts.cc.o"
  "CMakeFiles/ap_rt.dir/rts.cc.o.d"
  "libap_rt.a"
  "libap_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
