# Empty dependencies file for ap_net.
# This may be replaced when dependencies are built.
