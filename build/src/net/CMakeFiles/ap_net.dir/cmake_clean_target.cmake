file(REMOVE_RECURSE
  "libap_net.a"
)
