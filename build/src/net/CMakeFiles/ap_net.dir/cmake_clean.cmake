file(REMOVE_RECURSE
  "CMakeFiles/ap_net.dir/bnet.cc.o"
  "CMakeFiles/ap_net.dir/bnet.cc.o.d"
  "CMakeFiles/ap_net.dir/message.cc.o"
  "CMakeFiles/ap_net.dir/message.cc.o.d"
  "CMakeFiles/ap_net.dir/snet.cc.o"
  "CMakeFiles/ap_net.dir/snet.cc.o.d"
  "CMakeFiles/ap_net.dir/tnet.cc.o"
  "CMakeFiles/ap_net.dir/tnet.cc.o.d"
  "CMakeFiles/ap_net.dir/topology.cc.o"
  "CMakeFiles/ap_net.dir/topology.cc.o.d"
  "libap_net.a"
  "libap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
