
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bnet.cc" "src/net/CMakeFiles/ap_net.dir/bnet.cc.o" "gcc" "src/net/CMakeFiles/ap_net.dir/bnet.cc.o.d"
  "/root/repo/src/net/message.cc" "src/net/CMakeFiles/ap_net.dir/message.cc.o" "gcc" "src/net/CMakeFiles/ap_net.dir/message.cc.o.d"
  "/root/repo/src/net/snet.cc" "src/net/CMakeFiles/ap_net.dir/snet.cc.o" "gcc" "src/net/CMakeFiles/ap_net.dir/snet.cc.o.d"
  "/root/repo/src/net/tnet.cc" "src/net/CMakeFiles/ap_net.dir/tnet.cc.o" "gcc" "src/net/CMakeFiles/ap_net.dir/tnet.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/ap_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/ap_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ap_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
