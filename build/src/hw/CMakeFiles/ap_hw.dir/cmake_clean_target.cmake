file(REMOVE_RECURSE
  "libap_hw.a"
)
