
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cell.cc" "src/hw/CMakeFiles/ap_hw.dir/cell.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/cell.cc.o.d"
  "/root/repo/src/hw/commreg.cc" "src/hw/CMakeFiles/ap_hw.dir/commreg.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/commreg.cc.o.d"
  "/root/repo/src/hw/config.cc" "src/hw/CMakeFiles/ap_hw.dir/config.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/config.cc.o.d"
  "/root/repo/src/hw/dma.cc" "src/hw/CMakeFiles/ap_hw.dir/dma.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/dma.cc.o.d"
  "/root/repo/src/hw/dsm.cc" "src/hw/CMakeFiles/ap_hw.dir/dsm.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/dsm.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/ap_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/mc.cc" "src/hw/CMakeFiles/ap_hw.dir/mc.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/mc.cc.o.d"
  "/root/repo/src/hw/memory.cc" "src/hw/CMakeFiles/ap_hw.dir/memory.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/memory.cc.o.d"
  "/root/repo/src/hw/mmu.cc" "src/hw/CMakeFiles/ap_hw.dir/mmu.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/mmu.cc.o.d"
  "/root/repo/src/hw/msc.cc" "src/hw/CMakeFiles/ap_hw.dir/msc.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/msc.cc.o.d"
  "/root/repo/src/hw/queues.cc" "src/hw/CMakeFiles/ap_hw.dir/queues.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/queues.cc.o.d"
  "/root/repo/src/hw/ringbuf.cc" "src/hw/CMakeFiles/ap_hw.dir/ringbuf.cc.o" "gcc" "src/hw/CMakeFiles/ap_hw.dir/ringbuf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ap_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ap_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
