file(REMOVE_RECURSE
  "CMakeFiles/ap_hw.dir/cell.cc.o"
  "CMakeFiles/ap_hw.dir/cell.cc.o.d"
  "CMakeFiles/ap_hw.dir/commreg.cc.o"
  "CMakeFiles/ap_hw.dir/commreg.cc.o.d"
  "CMakeFiles/ap_hw.dir/config.cc.o"
  "CMakeFiles/ap_hw.dir/config.cc.o.d"
  "CMakeFiles/ap_hw.dir/dma.cc.o"
  "CMakeFiles/ap_hw.dir/dma.cc.o.d"
  "CMakeFiles/ap_hw.dir/dsm.cc.o"
  "CMakeFiles/ap_hw.dir/dsm.cc.o.d"
  "CMakeFiles/ap_hw.dir/machine.cc.o"
  "CMakeFiles/ap_hw.dir/machine.cc.o.d"
  "CMakeFiles/ap_hw.dir/mc.cc.o"
  "CMakeFiles/ap_hw.dir/mc.cc.o.d"
  "CMakeFiles/ap_hw.dir/memory.cc.o"
  "CMakeFiles/ap_hw.dir/memory.cc.o.d"
  "CMakeFiles/ap_hw.dir/mmu.cc.o"
  "CMakeFiles/ap_hw.dir/mmu.cc.o.d"
  "CMakeFiles/ap_hw.dir/msc.cc.o"
  "CMakeFiles/ap_hw.dir/msc.cc.o.d"
  "CMakeFiles/ap_hw.dir/queues.cc.o"
  "CMakeFiles/ap_hw.dir/queues.cc.o.d"
  "CMakeFiles/ap_hw.dir/ringbuf.cc.o"
  "CMakeFiles/ap_hw.dir/ringbuf.cc.o.d"
  "libap_hw.a"
  "libap_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
