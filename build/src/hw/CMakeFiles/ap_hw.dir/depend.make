# Empty dependencies file for ap_hw.
# This may be replaced when dependencies are built.
