# Empty compiler generated dependencies file for bench_ablation_wtpage.
# This may be replaced when dependencies are built.
