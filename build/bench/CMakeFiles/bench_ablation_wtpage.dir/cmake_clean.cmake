file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wtpage.dir/bench_ablation_wtpage.cc.o"
  "CMakeFiles/bench_ablation_wtpage.dir/bench_ablation_wtpage.cc.o.d"
  "bench_ablation_wtpage"
  "bench_ablation_wtpage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wtpage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
