# Empty dependencies file for bench_fig7_put_model.
# This may be replaced when dependencies are built.
