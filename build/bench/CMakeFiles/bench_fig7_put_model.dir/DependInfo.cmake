
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_put_model.cc" "bench/CMakeFiles/bench_fig7_put_model.dir/bench_fig7_put_model.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_put_model.dir/bench_fig7_put_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ap_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ap_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/mlsim/CMakeFiles/ap_mlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
