# Empty dependencies file for bench_table2_speedup.
# This may be replaced when dependencies are built.
