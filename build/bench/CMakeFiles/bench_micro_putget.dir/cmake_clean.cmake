file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_putget.dir/bench_micro_putget.cc.o"
  "CMakeFiles/bench_micro_putget.dir/bench_micro_putget.cc.o.d"
  "bench_micro_putget"
  "bench_micro_putget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_putget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
