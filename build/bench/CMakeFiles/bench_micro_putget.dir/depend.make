# Empty dependencies file for bench_micro_putget.
# This may be replaced when dependencies are built.
