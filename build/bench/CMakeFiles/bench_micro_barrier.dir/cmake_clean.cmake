file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_barrier.dir/bench_micro_barrier.cc.o"
  "CMakeFiles/bench_micro_barrier.dir/bench_micro_barrier.cc.o.d"
  "bench_micro_barrier"
  "bench_micro_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
