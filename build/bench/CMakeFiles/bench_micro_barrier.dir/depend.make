# Empty dependencies file for bench_micro_barrier.
# This may be replaced when dependencies are built.
