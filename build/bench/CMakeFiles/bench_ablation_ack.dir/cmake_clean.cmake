file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ack.dir/bench_ablation_ack.cc.o"
  "CMakeFiles/bench_ablation_ack.dir/bench_ablation_ack.cc.o.d"
  "bench_ablation_ack"
  "bench_ablation_ack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
