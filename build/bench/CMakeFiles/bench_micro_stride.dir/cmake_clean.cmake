file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_stride.dir/bench_micro_stride.cc.o"
  "CMakeFiles/bench_micro_stride.dir/bench_micro_stride.cc.o.d"
  "bench_micro_stride"
  "bench_micro_stride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
