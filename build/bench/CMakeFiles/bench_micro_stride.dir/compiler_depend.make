# Empty compiler generated dependencies file for bench_micro_stride.
# This may be replaced when dependencies are built.
