# Empty compiler generated dependencies file for bench_micro_reduction.
# This may be replaced when dependencies are built.
