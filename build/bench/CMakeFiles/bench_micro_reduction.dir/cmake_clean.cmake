file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_reduction.dir/bench_micro_reduction.cc.o"
  "CMakeFiles/bench_micro_reduction.dir/bench_micro_reduction.cc.o.d"
  "bench_micro_reduction"
  "bench_micro_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
