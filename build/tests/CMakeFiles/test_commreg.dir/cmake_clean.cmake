file(REMOVE_RECURSE
  "CMakeFiles/test_commreg.dir/test_commreg.cc.o"
  "CMakeFiles/test_commreg.dir/test_commreg.cc.o.d"
  "test_commreg"
  "test_commreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
