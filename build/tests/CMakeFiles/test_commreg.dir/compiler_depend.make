# Empty compiler generated dependencies file for test_commreg.
# This may be replaced when dependencies are built.
