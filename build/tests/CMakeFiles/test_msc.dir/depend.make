# Empty dependencies file for test_msc.
# This may be replaced when dependencies are built.
