file(REMOVE_RECURSE
  "CMakeFiles/test_msc.dir/test_msc.cc.o"
  "CMakeFiles/test_msc.dir/test_msc.cc.o.d"
  "test_msc"
  "test_msc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
