file(REMOVE_RECURSE
  "CMakeFiles/test_sendrecv.dir/test_sendrecv.cc.o"
  "CMakeFiles/test_sendrecv.dir/test_sendrecv.cc.o.d"
  "test_sendrecv"
  "test_sendrecv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sendrecv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
