# Empty dependencies file for test_sendrecv.
# This may be replaced when dependencies are built.
