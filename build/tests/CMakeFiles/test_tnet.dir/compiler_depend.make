# Empty compiler generated dependencies file for test_tnet.
# This may be replaced when dependencies are built.
