file(REMOVE_RECURSE
  "CMakeFiles/test_tnet.dir/test_tnet.cc.o"
  "CMakeFiles/test_tnet.dir/test_tnet.cc.o.d"
  "test_tnet"
  "test_tnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
