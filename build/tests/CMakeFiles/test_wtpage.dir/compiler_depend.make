# Empty compiler generated dependencies file for test_wtpage.
# This may be replaced when dependencies are built.
