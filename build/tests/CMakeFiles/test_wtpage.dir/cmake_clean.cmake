file(REMOVE_RECURSE
  "CMakeFiles/test_wtpage.dir/test_wtpage.cc.o"
  "CMakeFiles/test_wtpage.dir/test_wtpage.cc.o.d"
  "test_wtpage"
  "test_wtpage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wtpage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
