file(REMOVE_RECURSE
  "CMakeFiles/test_mlsim.dir/test_mlsim.cc.o"
  "CMakeFiles/test_mlsim.dir/test_mlsim.cc.o.d"
  "test_mlsim"
  "test_mlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
