# Empty compiler generated dependencies file for test_mlsim.
# This may be replaced when dependencies are built.
