file(REMOVE_RECURSE
  "CMakeFiles/test_bnet.dir/test_bnet.cc.o"
  "CMakeFiles/test_bnet.dir/test_bnet.cc.o.d"
  "test_bnet"
  "test_bnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
