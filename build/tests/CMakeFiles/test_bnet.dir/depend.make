# Empty dependencies file for test_bnet.
# This may be replaced when dependencies are built.
