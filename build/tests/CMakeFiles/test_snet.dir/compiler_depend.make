# Empty compiler generated dependencies file for test_snet.
# This may be replaced when dependencies are built.
