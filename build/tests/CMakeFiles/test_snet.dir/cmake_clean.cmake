file(REMOVE_RECURSE
  "CMakeFiles/test_snet.dir/test_snet.cc.o"
  "CMakeFiles/test_snet.dir/test_snet.cc.o.d"
  "test_snet"
  "test_snet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
