file(REMOVE_RECURSE
  "CMakeFiles/test_ringbuf.dir/test_ringbuf.cc.o"
  "CMakeFiles/test_ringbuf.dir/test_ringbuf.cc.o.d"
  "test_ringbuf"
  "test_ringbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ringbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
