# Empty dependencies file for test_ringbuf.
# This may be replaced when dependencies are built.
