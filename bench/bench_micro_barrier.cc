/**
 * @file
 * Barrier microbenchmarks (Sections 2.3, 4.5): the hardware S-net
 * barrier versus the software (SEND/RECEIVE recursive-doubling)
 * group barrier, swept over machine size; plus group barriers over
 * subsets, the case the S-net does not cover.
 */

#include <benchmark/benchmark.h>

#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
cfg(int cells)
{
    hw::MachineConfig c = hw::MachineConfig::ap1000_plus(cells);
    c.memBytesPerCell = 1 << 20;
    return c;
}

} // namespace

static void
BM_SnetBarrier(benchmark::State &state)
{
    int cells = static_cast<int>(state.range(0));
    constexpr int rounds = 20;
    double us = 0;
    for (auto _ : state) {
        hw::Machine m(cfg(cells));
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            ctx.barrier(); // warm
            Tick t0 = ctx.now();
            for (int i = 0; i < rounds; ++i)
                ctx.barrier();
            dur = ctx.now() - t0;
        });
        us = ticks_to_us(dur) / rounds;
    }
    state.counters["sim_us_per_barrier"] = us;
}
BENCHMARK(BM_SnetBarrier)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

static void
BM_SoftwareBarrier(benchmark::State &state)
{
    int cells = static_cast<int>(state.range(0));
    constexpr int rounds = 20;
    double us = 0;
    for (auto _ : state) {
        hw::Machine m(cfg(cells));
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Group all = Group::all(ctx.nprocs());
            ctx.barrier_group(all); // warm
            Tick t0 = ctx.now();
            for (int i = 0; i < rounds; ++i)
                ctx.barrier_group(all);
            dur = ctx.now() - t0;
        });
        us = ticks_to_us(dur) / rounds;
    }
    state.counters["sim_us_per_barrier"] = us;
}
BENCHMARK(BM_SoftwareBarrier)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

/** Group barrier over half the machine (index-partitioned groups). */
static void
BM_GroupBarrierHalf(benchmark::State &state)
{
    int cells = static_cast<int>(state.range(0));
    constexpr int rounds = 20;
    double us = 0;
    for (auto _ : state) {
        hw::Machine m(cfg(cells));
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Group low = Group::range(0, ctx.nprocs() / 2);
            if (!low.contains(ctx.id()))
                return;
            ctx.barrier_group(low);
            Tick t0 = ctx.now();
            for (int i = 0; i < rounds; ++i)
                ctx.barrier_group(low);
            dur = ctx.now() - t0;
        });
        us = ticks_to_us(dur) / rounds;
    }
    state.counters["sim_us_per_barrier"] = us;
}
BENCHMARK(BM_GroupBarrierHalf)->Arg(8)->Arg(32)->Arg(128);

BENCHMARK_MAIN();
