/**
 * @file
 * Reduction microbenchmarks (Section 4.5): scalar reductions over
 * communication registers (fold + recursive doubling + unfold)
 * versus software group reductions over SEND/RECEIVE, and the
 * ring-buffer vector-reduction pipeline over vector sizes — CG's
 * 1400-double reduction included.
 */

#include <benchmark/benchmark.h>

#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
cfg(int cells)
{
    hw::MachineConfig c = hw::MachineConfig::ap1000_plus(cells);
    c.memBytesPerCell = 2 << 20;
    return c;
}

} // namespace

static void
BM_ScalarCommRegReduce(benchmark::State &state)
{
    int cells = static_cast<int>(state.range(0));
    constexpr int rounds = 10;
    double us = 0;
    for (auto _ : state) {
        hw::Machine m(cfg(cells));
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            ctx.allreduce(1.0, ReduceOp::sum); // warm
            Tick t0 = ctx.now();
            for (int i = 0; i < rounds; ++i)
                benchmark::DoNotOptimize(
                    ctx.allreduce(ctx.id() * 1.0, ReduceOp::sum));
            dur = ctx.now() - t0;
        });
        us = ticks_to_us(dur) / rounds;
    }
    state.counters["sim_us_per_reduce"] = us;
}
BENCHMARK(BM_ScalarCommRegReduce)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

static void
BM_ScalarSendRecvReduce(benchmark::State &state)
{
    int cells = static_cast<int>(state.range(0));
    constexpr int rounds = 10;
    double us = 0;
    for (auto _ : state) {
        hw::Machine m(cfg(cells));
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Group all = Group::all(ctx.nprocs());
            ctx.allreduce_group(all, 1.0, ReduceOp::sum); // warm
            Tick t0 = ctx.now();
            for (int i = 0; i < rounds; ++i)
                benchmark::DoNotOptimize(ctx.allreduce_group(
                    all, ctx.id() * 1.0, ReduceOp::sum));
            dur = ctx.now() - t0;
        });
        us = ticks_to_us(dur) / rounds;
    }
    state.counters["sim_us_per_reduce"] = us;
}
BENCHMARK(BM_ScalarSendRecvReduce)->Arg(4)->Arg(16)->Arg(64);

/** Ring-pipeline vector reduction; Arg = doubles per cell. */
static void
BM_VectorRingReduce(benchmark::State &state)
{
    std::uint32_t count =
        static_cast<std::uint32_t>(state.range(0));
    constexpr int cells = 16;
    double us = 0;
    for (auto _ : state) {
        hw::Machine m(cfg(cells));
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Addr vec = ctx.alloc(count * 8);
            for (std::uint32_t i = 0; i < count; ++i)
                ctx.poke_f64(vec + static_cast<Addr>(i) * 8, 1.0);
            ctx.barrier();
            Tick t0 = ctx.now();
            ctx.allreduce_vector(vec, count, ReduceOp::sum);
            dur = ctx.now() - t0;
        });
        us = ticks_to_us(dur);
    }
    state.counters["sim_us"] = us;
    state.counters["sim_MBps"] =
        static_cast<double>(count) * 8 / us;
}
BENCHMARK(BM_VectorRingReduce)
    ->Arg(16)
    ->Arg(128)
    ->Arg(1400) // CG's vector
    ->Arg(8192);

/** The naive alternative: one scalar reduction per element. */
static void
BM_VectorViaScalarReduces(benchmark::State &state)
{
    std::uint32_t count =
        static_cast<std::uint32_t>(state.range(0));
    constexpr int cells = 16;
    double us = 0;
    for (auto _ : state) {
        hw::Machine m(cfg(cells));
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            ctx.barrier();
            Tick t0 = ctx.now();
            for (std::uint32_t i = 0; i < count; ++i)
                benchmark::DoNotOptimize(
                    ctx.allreduce(1.0, ReduceOp::sum));
            dur = ctx.now() - t0;
        });
        us = ticks_to_us(dur);
    }
    state.counters["sim_us"] = us;
}
BENCHMARK(BM_VectorViaScalarReduces)->Arg(16)->Arg(128);

BENCHMARK_MAIN();
