/**
 * @file
 * Microbenchmarks of the PUT/GET primitives on the functional
 * machine (Section 1.3's PUT/GET-vs-SEND/RECEIVE argument).
 *
 * Wall time measures the simulator itself; the interesting output is
 * the simulated microseconds reported as counters:
 *  - sim_us_per_op: simulated latency of one operation
 *  - sim_MBps: simulated delivered bandwidth.
 *
 * Carries its own main so three extra flags ride alongside the
 * google-benchmark ones:
 *  - --profile            run a span-profiled PUT pass after the
 *                         suite and print the critical-path table
 *  - --profile-out=FILE   write that breakdown as JSON
 *                         (default PROFILE_micro_putget.json)
 *  - --span-trace-out=F   write the pass's span rings as Chrome
 *                         trace JSON
 * plus the repo-wide --json-out (obs/cli.hh) for BENCH_*.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "base/logging.hh"
#include "core/ap1000p.hh"
#include "obs/cli.hh"
#include "obs/critpath.hh"
#include "obs/json.hh"
#include "obs/span.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
cfg2()
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.memBytesPerCell = 8 << 20;
    return cfg;
}

} // namespace

/** One-way PUT latency until the receiver's flag fires. */
static void
BM_PutLatency(benchmark::State &state)
{
    std::uint32_t bytes = static_cast<std::uint32_t>(state.range(0));
    double sim_us = 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        hw::Machine m(cfg2());
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Addr buf = ctx.alloc(bytes);
            Addr rf = ctx.alloc_flag();
            ctx.barrier();
            Tick t0 = ctx.now();
            if (ctx.id() == 0)
                ctx.put(1, buf, buf, bytes, no_flag, rf);
            if (ctx.id() == 1) {
                ctx.wait_flag(rf, 1);
                dur = ctx.now() - t0;
            }
        });
        sim_us += ticks_to_us(dur);
        ++ops;
    }
    state.counters["sim_us_per_op"] =
        sim_us / static_cast<double>(ops);
    state.counters["sim_MBps"] =
        bytes / (sim_us / static_cast<double>(ops));
}
BENCHMARK(BM_PutLatency)->Arg(8)->Arg(1024)->Arg(65536)->Arg(1 << 20);

/** Pipelined PUT bandwidth: many back-to-back transfers. */
static void
BM_PutBandwidth(benchmark::State &state)
{
    std::uint32_t bytes = static_cast<std::uint32_t>(state.range(0));
    constexpr int count = 64;
    double sim_us = 0;
    std::uint64_t rounds = 0;
    for (auto _ : state) {
        hw::Machine m(cfg2());
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Addr buf = ctx.alloc(bytes);
            Addr rf = ctx.alloc_flag();
            ctx.barrier();
            Tick t0 = ctx.now();
            if (ctx.id() == 0)
                for (int i = 0; i < count; ++i)
                    ctx.put(1, buf, buf, bytes, no_flag, rf);
            if (ctx.id() == 1) {
                ctx.wait_flag(rf, count);
                dur = ctx.now() - t0;
            }
        });
        sim_us += ticks_to_us(dur);
        ++rounds;
    }
    double us = sim_us / static_cast<double>(rounds);
    state.counters["sim_MBps"] =
        static_cast<double>(bytes) * count / us;
}
BENCHMARK(BM_PutBandwidth)->Arg(64)->Arg(4096)->Arg(65536);

/** GET round trip. */
static void
BM_GetLatency(benchmark::State &state)
{
    std::uint32_t bytes = static_cast<std::uint32_t>(state.range(0));
    double sim_us = 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        hw::Machine m(cfg2());
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Addr buf = ctx.alloc(bytes);
            Addr rf = ctx.alloc_flag();
            ctx.barrier();
            if (ctx.id() == 0) {
                Tick t0 = ctx.now();
                ctx.get(1, buf, buf, bytes, no_flag, rf);
                ctx.wait_flag(rf, 1);
                dur = ctx.now() - t0;
            }
        });
        sim_us += ticks_to_us(dur);
        ++ops;
    }
    state.counters["sim_us_per_op"] =
        sim_us / static_cast<double>(ops);
}
BENCHMARK(BM_GetLatency)->Arg(8)->Arg(4096)->Arg(65536);

/**
 * PUT/GET vs SEND/RECEIVE one-way delivery into the user area — the
 * buffering copy is the architectural difference.
 */
static void
BM_SendRecvLatency(benchmark::State &state)
{
    std::uint32_t bytes = static_cast<std::uint32_t>(state.range(0));
    double sim_us = 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        hw::Machine m(cfg2());
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Addr buf = ctx.alloc(bytes);
            ctx.barrier();
            Tick t0 = ctx.now();
            if (ctx.id() == 0)
                ctx.send(1, 1, buf, bytes);
            if (ctx.id() == 1) {
                ctx.recv(0, 1, buf, bytes);
                dur = ctx.now() - t0;
            }
        });
        sim_us += ticks_to_us(dur);
        ++ops;
    }
    state.counters["sim_us_per_op"] =
        sim_us / static_cast<double>(ops);
}
BENCHMARK(BM_SendRecvLatency)->Arg(8)->Arg(1024)->Arg(65536);

namespace
{

/**
 * The --profile pass: one pipelined PUT burst on a two-cell machine
 * with full span recording, fed to the critical-path profiler. The
 * acceptance bar is >= 95% of the end-to-end PUT latency attributed
 * to named stages.
 */
void
run_profile_pass(const std::string &profileOut,
                 const std::string &spanTraceOut,
                 obs::BenchReport &report)
{
    constexpr int count = 64;
    constexpr std::uint32_t bytes = 4096;
    hw::MachineConfig cfg = cfg2();
    cfg.spanMode = obs::SpanMode::full;
    hw::Machine m(cfg);
    run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(bytes);
        Addr rf = ctx.alloc_flag();
        ctx.barrier();
        if (ctx.id() == 0)
            for (int i = 0; i < count; ++i)
                ctx.put(1, buf, buf, bytes, no_flag, rf);
        if (ctx.id() == 1)
            ctx.wait_flag(rf, count);
    });

    obs::CritPathReport rep =
        obs::analyze_spans(m.spans().events());
    std::printf("\n-- span profile: %d x %u B PUT --\n%s", count,
                bytes, rep.text().c_str());
    if (!profileOut.empty()) {
        if (!obs::write_file(profileOut, rep.json()))
            fatal("cannot write profile to %s", profileOut.c_str());
        std::printf("profile JSON written to %s\n",
                    profileOut.c_str());
    }
    if (!spanTraceOut.empty()) {
        if (!m.dump_flight_recorder(spanTraceOut))
            fatal("cannot write span trace to %s",
                  spanTraceOut.c_str());
        std::printf("span Chrome trace written to %s\n",
                    spanTraceOut.c_str());
    }
    report.set("profile.coverage", rep.coverage());
    report.set("profile.put_coverage",
               rep.op_coverage(obs::SpanOp::put));
    report.set("profile.traces", rep.traces);
    report.set("profile.events", rep.events);
    report.set("profile.end_to_end_us",
               ticks_to_us(rep.endToEndTicks));
}

/**
 * The speed pass: host-throughput numbers for the perf gate.
 *
 * Two measurements on a fixed PUT-burst workload:
 *  - speed.events_per_sec / speed.put_ops_per_sec over fresh
 *    machines (the "cold" shape stress loops exercise);
 *  - alloc.steady_*_delta: kernel/payload allocation-counter growth
 *    of a second wave on one warmed-up machine. The hot path's
 *    zero-allocation contract says these must be exactly zero, and
 *    CI asserts that on every run.
 */
void
run_speed_pass(obs::BenchReport &report)
{
    using Clock = std::chrono::steady_clock;
    constexpr int reps = 100;
    constexpr int count = 64;
    constexpr std::uint32_t bytes = 4096;

    auto burst = [&](hw::Machine &m) {
        run_spmd(m, [&](Context &ctx) {
            Addr buf = ctx.alloc(bytes);
            Addr rf = ctx.alloc_flag();
            ctx.barrier();
            if (ctx.id() == 0)
                for (int i = 0; i < count; ++i)
                    ctx.put(1, buf, buf, bytes, no_flag, rf);
            if (ctx.id() == 1)
                ctx.wait_flag(rf, count);
        });
    };

    std::uint64_t events = 0;
    auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
        hw::Machine m(cfg2());
        burst(m);
        events += m.sim().executed();
    }
    double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    report.set("speed.wall_s", wall);
    report.set("speed.events_per_sec",
               static_cast<double>(events) / wall);
    report.set("speed.put_ops_per_sec",
               static_cast<double>(reps) * count / wall);
    std::printf("\n-- speed: %d x %d x %u B PUT, %.3f s, "
                "%.2fM events/s --\n",
                reps, count, bytes, wall,
                static_cast<double>(events) / wall / 1e6);

    // Steady state on one machine: wave 2 must allocate nothing.
    hw::Machine m(cfg2());
    burst(m);
    auto allocAt = [&]() {
        sim::SimAllocStats a = m.sim().alloc_stats();
        std::uint64_t payloadMiss =
            m.stats_registry().sum("sim.alloc.payload_miss");
        return std::tuple{a.poolMisses, a.fnHeap, payloadMiss};
    };
    auto [miss1, heap1, pay1] = allocAt();
    burst(m);
    auto [miss2, heap2, pay2] = allocAt();
    report.set("alloc.steady_pool_miss_delta", miss2 - miss1);
    report.set("alloc.steady_fn_heap_delta", heap2 - heap1);
    report.set("alloc.steady_payload_miss_delta", pay2 - pay1);
    std::printf("-- steady-state alloc deltas: pool_miss=%llu "
                "fn_heap=%llu payload_miss=%llu --\n",
                static_cast<unsigned long long>(miss2 - miss1),
                static_cast<unsigned long long>(heap2 - heap1),
                static_cast<unsigned long long>(pay2 - pay1));
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("micro_putget");
    bool profile = false;
    std::string profileOut = "PROFILE_micro_putget.json";
    std::string spanTraceOut;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--profile") == 0)
            profile = true;
        else if (std::strncmp(a, "--profile-out=", 14) == 0) {
            profileOut = a + 14;
            profile = true;
        } else if (std::strncmp(a, "--span-trace-out=", 17) == 0) {
            spanTraceOut = a + 17;
            profile = true;
        } else if (!report.consume_arg(a))
            rest.push_back(argv[i]);
    }
    int bargc = static_cast<int>(rest.size());
    benchmark::Initialize(&bargc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(bargc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (profile)
        run_profile_pass(profileOut, spanTraceOut, report);
    run_speed_pass(report);
    report.write();
    return 0;
}
