/**
 * @file
 * Microbenchmarks of the PUT/GET primitives on the functional
 * machine (Section 1.3's PUT/GET-vs-SEND/RECEIVE argument).
 *
 * Wall time measures the simulator itself; the interesting output is
 * the simulated microseconds reported as counters:
 *  - sim_us_per_op: simulated latency of one operation
 *  - sim_MBps: simulated delivered bandwidth.
 */

#include <benchmark/benchmark.h>

#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
cfg2()
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.memBytesPerCell = 8 << 20;
    return cfg;
}

} // namespace

/** One-way PUT latency until the receiver's flag fires. */
static void
BM_PutLatency(benchmark::State &state)
{
    std::uint32_t bytes = static_cast<std::uint32_t>(state.range(0));
    double sim_us = 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        hw::Machine m(cfg2());
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Addr buf = ctx.alloc(bytes);
            Addr rf = ctx.alloc_flag();
            ctx.barrier();
            Tick t0 = ctx.now();
            if (ctx.id() == 0)
                ctx.put(1, buf, buf, bytes, no_flag, rf);
            if (ctx.id() == 1) {
                ctx.wait_flag(rf, 1);
                dur = ctx.now() - t0;
            }
        });
        sim_us += ticks_to_us(dur);
        ++ops;
    }
    state.counters["sim_us_per_op"] =
        sim_us / static_cast<double>(ops);
    state.counters["sim_MBps"] =
        bytes / (sim_us / static_cast<double>(ops));
}
BENCHMARK(BM_PutLatency)->Arg(8)->Arg(1024)->Arg(65536)->Arg(1 << 20);

/** Pipelined PUT bandwidth: many back-to-back transfers. */
static void
BM_PutBandwidth(benchmark::State &state)
{
    std::uint32_t bytes = static_cast<std::uint32_t>(state.range(0));
    constexpr int count = 64;
    double sim_us = 0;
    std::uint64_t rounds = 0;
    for (auto _ : state) {
        hw::Machine m(cfg2());
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Addr buf = ctx.alloc(bytes);
            Addr rf = ctx.alloc_flag();
            ctx.barrier();
            Tick t0 = ctx.now();
            if (ctx.id() == 0)
                for (int i = 0; i < count; ++i)
                    ctx.put(1, buf, buf, bytes, no_flag, rf);
            if (ctx.id() == 1) {
                ctx.wait_flag(rf, count);
                dur = ctx.now() - t0;
            }
        });
        sim_us += ticks_to_us(dur);
        ++rounds;
    }
    double us = sim_us / static_cast<double>(rounds);
    state.counters["sim_MBps"] =
        static_cast<double>(bytes) * count / us;
}
BENCHMARK(BM_PutBandwidth)->Arg(64)->Arg(4096)->Arg(65536);

/** GET round trip. */
static void
BM_GetLatency(benchmark::State &state)
{
    std::uint32_t bytes = static_cast<std::uint32_t>(state.range(0));
    double sim_us = 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        hw::Machine m(cfg2());
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Addr buf = ctx.alloc(bytes);
            Addr rf = ctx.alloc_flag();
            ctx.barrier();
            if (ctx.id() == 0) {
                Tick t0 = ctx.now();
                ctx.get(1, buf, buf, bytes, no_flag, rf);
                ctx.wait_flag(rf, 1);
                dur = ctx.now() - t0;
            }
        });
        sim_us += ticks_to_us(dur);
        ++ops;
    }
    state.counters["sim_us_per_op"] =
        sim_us / static_cast<double>(ops);
}
BENCHMARK(BM_GetLatency)->Arg(8)->Arg(4096)->Arg(65536);

/**
 * PUT/GET vs SEND/RECEIVE one-way delivery into the user area — the
 * buffering copy is the architectural difference.
 */
static void
BM_SendRecvLatency(benchmark::State &state)
{
    std::uint32_t bytes = static_cast<std::uint32_t>(state.range(0));
    double sim_us = 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        hw::Machine m(cfg2());
        Tick dur = 0;
        run_spmd(m, [&](Context &ctx) {
            Addr buf = ctx.alloc(bytes);
            ctx.barrier();
            Tick t0 = ctx.now();
            if (ctx.id() == 0)
                ctx.send(1, 1, buf, bytes);
            if (ctx.id() == 1) {
                ctx.recv(0, 1, buf, bytes);
                dur = ctx.now() - t0;
            }
        });
        sim_us += ticks_to_us(dur);
        ++ops;
    }
    state.counters["sim_us_per_op"] =
        sim_us / static_cast<double>(ops);
}
BENCHMARK(BM_SendRecvLatency)->Arg(8)->Arg(1024)->Arg(65536);

BENCHMARK_MAIN();
