/**
 * @file
 * Stride-transfer ablation (Sections 3.1, 5.4): one hardware stride
 * PUT versus element-at-a-time PUTs for the same data — the TOMCATV
 * experiment in miniature. "If the hardware does not support stride
 * data transfer, the number of times put() is called is much larger
 * ... and the performance deteriorates."
 */

#include <benchmark/benchmark.h>

#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
cfg2()
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.memBytesPerCell = 8 << 20;
    return cfg;
}

/** Move @p items 8-byte column elements; stride or element-wise. */
double
column_move_us(int items, bool use_stride)
{
    hw::Machine m(cfg2());
    Tick dur = 0;
    run_spmd(m, [&](Context &ctx) {
        // A column in a row-major matrix: 8-byte items every 2 KB.
        std::uint32_t pitch = 2048;
        Addr mat = ctx.alloc(static_cast<std::size_t>(items) * pitch);
        Addr dst = ctx.alloc(static_cast<std::size_t>(items) * 8);
        Addr rf = ctx.alloc_flag();
        ctx.barrier();
        Tick t0 = ctx.now();
        if (ctx.id() == 0) {
            if (use_stride) {
                ctx.put_stride(
                    1, dst, mat, false, no_flag, rf,
                    net::StrideSpec{8,
                                    static_cast<std::uint32_t>(items),
                                    pitch - 8},
                    net::StrideSpec::contiguous(
                        static_cast<std::uint32_t>(items) * 8));
            } else {
                for (int i = 0; i < items; ++i)
                    ctx.put(1, dst + static_cast<Addr>(i) * 8,
                            mat + static_cast<Addr>(i) * pitch, 8,
                            no_flag, rf);
            }
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, use_stride
                                  ? 1
                                  : static_cast<std::uint32_t>(items));
            dur = ctx.now() - t0;
        }
    });
    return ticks_to_us(dur);
}

} // namespace

static void
BM_StrideColumn(benchmark::State &state)
{
    int items = static_cast<int>(state.range(0));
    double us = 0;
    for (auto _ : state)
        us = column_move_us(items, true);
    state.counters["sim_us"] = us;
}
BENCHMARK(BM_StrideColumn)->Arg(16)->Arg(64)->Arg(257)->Arg(1024);

static void
BM_ElementWiseColumn(benchmark::State &state)
{
    int items = static_cast<int>(state.range(0));
    double us = 0;
    for (auto _ : state)
        us = column_move_us(items, false);
    state.counters["sim_us"] = us;
}
BENCHMARK(BM_ElementWiseColumn)->Arg(16)->Arg(64)->Arg(257)->Arg(1024);

BENCHMARK_MAIN();
