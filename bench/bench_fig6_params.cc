/**
 * @file
 * Reproduces Figure 6: the MLSim parameter files for the AP1000 and
 * AP1000+ models, emitted from the built-in presets in the same
 * name/value file format the paper shows (and that
 * mlsim::Params::from_file parses back).
 */

#include <cctype>
#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "mlsim/params.hh"
#include "obs/cli.hh"

using namespace ap::mlsim;

namespace
{

/** Model names as JSON path segments. */
std::string
key(std::string s)
{
    for (char &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    ap::obs::BenchReport report("fig6_params");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            ap::fatal("unknown argument '%s' (only "
                      "--json-out[=FILE])",
                      argv[i]);

    for (const Params &p : {Params::ap1000(), Params::ap1000_plus(),
                            Params::ap1000_fast()}) {
        std::fputs(p.to_file().c_str(), stdout);
        std::fputc('\n', stdout);

        std::string k = key(p.name);
        report.set(k + ".computation_factor", p.computation_factor);
        report.set(k + ".put_dma_set_time", p.put_dma_set_time);
    }

    // Round-trip self-check: the printed files parse back to the
    // same models.
    for (const Params &p : {Params::ap1000(), Params::ap1000_plus()}) {
        Params q = Params::from_file(p.to_file());
        if (q.computation_factor != p.computation_factor ||
            q.put_dma_set_time != p.put_dma_set_time) {
            std::fprintf(stderr, "round-trip mismatch for %s\n",
                         p.name.c_str());
            return 1;
        }
    }
    std::printf("# round-trip check passed\n");
    report.set("round_trip_ok", std::uint64_t{1});
    return report.write() ? 0 : 1;
}
