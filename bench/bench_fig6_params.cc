/**
 * @file
 * Reproduces Figure 6: the MLSim parameter files for the AP1000 and
 * AP1000+ models, emitted from the built-in presets in the same
 * name/value file format the paper shows (and that
 * mlsim::Params::from_file parses back).
 */

#include <cstdio>

#include "mlsim/params.hh"

using namespace ap::mlsim;

int
main()
{
    for (const Params &p : {Params::ap1000(), Params::ap1000_plus(),
                            Params::ap1000_fast()}) {
        std::fputs(p.to_file().c_str(), stdout);
        std::fputc('\n', stdout);
    }

    // Round-trip self-check: the printed files parse back to the
    // same models.
    for (const Params &p : {Params::ap1000(), Params::ap1000_plus()}) {
        Params q = Params::from_file(p.to_file());
        if (q.computation_factor != p.computation_factor ||
            q.put_dma_set_time != p.put_dma_set_time) {
            std::fprintf(stderr, "round-trip mismatch for %s\n",
                         p.name.c_str());
            return 1;
        }
    }
    std::printf("# round-trip check passed\n");
    return 0;
}
