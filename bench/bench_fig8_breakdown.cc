/**
 * @file
 * Reproduces Figure 8: "Effect of PUT/GET hardware support" — the
 * percentage of execution time, run-time system time, communication
 * overhead and idle time for every application on the AP1000+ and on
 * the AP1000-with-SuperSPARC model, normalized to the AP1000+'s
 * total (the TOMCATV pair is normalized to the stride variant's
 * AP1000+ total, as in the paper).
 */

#include <cctype>
#include <cstdio>
#include <string>

#include "apps/app.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "mlsim/params.hh"
#include "mlsim/replay.hh"
#include "obs/cli.hh"

using namespace ap;
using namespace ap::apps;
using namespace ap::mlsim;

namespace
{

/** App names ("TC no st") as JSON path segments. */
std::string
key(std::string s)
{
    for (char &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

std::string
bar(double pct, double scale = 0.25)
{
    int n = static_cast<int>(pct * scale + 0.5);
    if (n > 60)
        n = 60;
    return std::string(static_cast<std::size_t>(n), '#');
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("fig8_breakdown");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            fatal("unknown argument '%s' (only --json-out[=FILE])",
                  argv[i]);

    std::printf("Figure 8: normalized execution time breakdown "
                "(%% of the AP1000+ total)\n\n");

    Params plus = Params::ap1000_plus();
    Params fast = Params::ap1000_fast();

    Table t({"App", "Model", "Total%", "Exec%", "RTS%", "Ovh%",
             "Idle%", ""});

    double tc_st_plus_total = 0;

    for (const auto &app : standard_suite()) {
        core::Trace trace = app->generate();
        ReplayReport rp = Replay(trace, plus).run();
        ReplayReport rf = Replay(trace, fast).run();

        // TOMCATV bars are "normalized to the AP1000+ with stride
        // data transfer model".
        double norm = rp.totalUs;
        std::string name = app->info().name;
        if (name == "TC st")
            tc_st_plus_total = rp.totalUs;
        if (name == "TC no st" && tc_st_plus_total > 0)
            norm = tc_st_plus_total;

        struct ModelRow
        {
            const char *label;  ///< table column
            const char *jsonKey; ///< '+'/'*'-free path segment
            ReplayReport &r;
        };
        for (const auto &[label, jkey, r] :
             {ModelRow{"AP1000+", "ap1000_plus", rp},
              ModelRow{"AP1000*", "ap1000_star", rf}}) {
            CellBreakdown m = r.mean();
            double total = r.totalUs / norm * 100.0;
            t.add_row({name, label, Table::num(total, 1),
                       Table::num(m.execUs / norm * 100.0, 1),
                       Table::num(m.rtsUs / norm * 100.0, 1),
                       Table::num(m.overheadUs / norm * 100.0, 1),
                       Table::num(m.idleUs / norm * 100.0, 1),
                       bar(total)});

            std::string k = key(name) + "." + jkey;
            report.set(k + ".total_pct", total);
            report.set(k + ".exec_pct", m.execUs / norm * 100.0);
            report.set(k + ".rts_pct", m.rtsUs / norm * 100.0);
            report.set(k + ".overhead_pct",
                       m.overheadUs / norm * 100.0);
            report.set(k + ".idle_pct", m.idleUs / norm * 100.0);
        }
    }
    t.print();

    std::printf(
        "\nPaper's reference bar heights (AP1000* totals, %% of "
        "AP1000+): CG 788 is the\ntallest; FT/SP/MatMul/SCG fall in "
        "the 125-172 range; EP is 100 on both; the\nTOMCATV pair "
        "shows stride (100/125-ish) vs no-stride (150/788-ish "
        "scale).\nExec/RTS/Ovh/Idle are per-cell means; Total is the "
        "slowest cell, so the\ncomponents sum to slightly less than "
        "Total when load is imbalanced.\n");
    return report.write() ? 0 : 1;
}
