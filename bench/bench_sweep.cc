/**
 * @file
 * Performance-model observatory driver: parameterized sweeps over
 * the paper kernels and the serving layer, emitting structured
 * SWEEP_*.json datasets and (with --fit) fitted MODEL_*.json scaling
 * laws via src/model. tools/model_check.py gates fresh measurements
 * against the committed models under bench/models/.
 *
 * Sweeps (parameter axis -> metrics):
 *   putlat   message bytes   -> PUT issue/deliver latency, bandwidth
 *   hops     torus distance  -> PUT deliver latency (8x8 machine)
 *   cells    PHOLD cells     -> kernel events, events/sec
 *   threads  kernel workers  -> events/sec, speedup (16x16 PHOLD)
 *   droprate message loss %  -> reliable PUT latency, retransmits
 *   serve    job arrival us  -> gang-sched throughput, latency
 *
 * The default set {putlat, cells, serve} is the committed trio;
 * --sweep=all or --sweep=a,b,c selects others. --quick keeps each
 * per-point workload identical (same seeds, horizons, job counts)
 * and only thins the parameter values, so quick CI measurements stay
 * comparable against models fitted from full sweeps.
 *
 * --calibrate derives MLSim cost parameters from emulator
 * measurements (fits over the same machinery), diffs them against
 * the hand-tuned constants of mlsim::Params::ap1000_plus(), and
 * re-runs the Figure 7 overhead model and Table 2 replays with the
 * calibrated parameter file as a sensitivity check.
 *
 *   bench_sweep [--sweep=LIST] [--quick] [--fit] [--calibrate]
 *               [--out-dir=DIR] [--json-out[=FILE]]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "core/ap1000p.hh"
#include "hw/config.hh"
#include "hw/machine.hh"
#include "mlsim/costmodel.hh"
#include "mlsim/params.hh"
#include "mlsim/replay.hh"
#include "model/fit.hh"
#include "model/modelset.hh"
#include "obs/cli.hh"
#include "obs/critpath.hh"
#include "obs/span.hh"
#include "serve/job.hh"
#include "serve/scheduler.hh"
#include "sim/shardq.hh"

using namespace ap;
using namespace ap::core;

namespace
{

// ---------------------------------------------------------------
// shared plumbing
// ---------------------------------------------------------------

std::string outDir = ".";

std::string
out_path(const std::string &file)
{
    if (outDir.empty() || outDir == ".")
        return file;
    return outDir + "/" + file;
}

/** "0.5" is a path separator hazard in report keys: "x0p5". */
std::string
x_key(double x)
{
    std::string s = strprintf("x%g", x);
    for (char &c : s)
        if (c == '.')
            c = 'p';
    return s;
}

/** Registry sums captured as a sweep point's provenance snapshot. */
std::map<std::string, std::uint64_t>
registry_snapshot(hw::Machine &m,
                  std::initializer_list<const char *> patterns)
{
    std::map<std::string, std::uint64_t> out;
    for (const char *p : patterns)
        out[p] = m.stats_registry().sum(p);
    return out;
}

void
print_sweep(const model::SweepData &d)
{
    std::vector<std::string> metrics = d.metric_names();
    std::vector<std::string> headers;
    headers.push_back(d.param + " [" + d.unit + "]");
    for (const std::string &mname : metrics)
        headers.push_back(mname);
    Table t(headers);
    std::vector<model::SweepPoint> rows = d.points;
    std::sort(rows.begin(), rows.end(),
              [](const model::SweepPoint &a,
                 const model::SweepPoint &b) { return a.x < b.x; });
    for (const model::SweepPoint &p : rows) {
        std::vector<std::string> row;
        row.push_back(strprintf("%g", p.x));
        for (const std::string &mname : metrics) {
            auto it = p.metrics.find(mname);
            row.push_back(it == p.metrics.end()
                              ? "-"
                              : strprintf("%.4g", it->second));
        }
        t.add_row(row);
    }
    std::printf("-- sweep %s: %s vs %s --\n", d.sweep.c_str(),
                d.bench.c_str(), d.param.c_str());
    t.print();
    std::printf("\n");
}

void
report_sweep(obs::BenchReport &report, const model::SweepData &d)
{
    for (const model::SweepPoint &p : d.points)
        for (const auto &[mname, v] : p.metrics)
            report.set(d.sweep + "." + x_key(p.x) + "." + mname, v);
}

// ---------------------------------------------------------------
// putlat / hops: PUT latency on the functional machine
// ---------------------------------------------------------------

hw::MachineConfig
two_cell_config()
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.memBytesPerCell = 8 << 20;
    return cfg;
}

struct PutMeasure
{
    double issueUs = 0.0;
    double deliverUs = 0.0;
};

/** One-way PUT 0 -> @p dst on @p m; deliver timed at the receiver. */
PutMeasure
measure_put(hw::Machine &m, CellId dst, std::uint32_t bytes)
{
    PutMeasure out;
    Tick issue = 0, deliver = 0;
    SpmdResult r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(bytes);
        Addr rf = ctx.alloc_flag();
        ctx.barrier();
        Tick t0 = ctx.now();
        if (ctx.id() == 0) {
            ctx.put(dst, buf, buf, bytes, no_flag, rf);
            issue = ctx.now() - t0;
        }
        if (ctx.id() == dst) {
            ctx.wait_flag(rf, 1);
            deliver = ctx.now() - t0;
        }
    });
    if (r.failed())
        fatal("put measurement failed (dst=%d bytes=%u)", dst,
              bytes);
    out.issueUs = ticks_to_us(issue);
    out.deliverUs = ticks_to_us(deliver);
    return out;
}

model::SweepData
run_putlat(bool quick)
{
    model::SweepData d;
    d.sweep = "putlat";
    d.bench = "micro_putget";
    d.param = "bytes";
    d.unit = "B";
    const std::vector<std::uint32_t> sizes =
        quick ? std::vector<std::uint32_t>{64, 1024, 16384}
              : std::vector<std::uint32_t>{64, 256, 1024, 4096,
                                           16384, 65536};
    for (std::uint32_t bytes : sizes) {
        hw::Machine m(two_cell_config());
        PutMeasure pm = measure_put(m, 1, bytes);
        model::SweepPoint p;
        p.x = bytes;
        p.metrics["issue_us"] = pm.issueUs;
        p.metrics["deliver_us"] = pm.deliverUs;
        p.metrics["mb_s"] =
            pm.deliverUs > 0 ? bytes / pm.deliverUs : 0.0;
        p.registry = registry_snapshot(
            m, {"tnet.messages", "tnet.payload_bytes"});
        d.points.push_back(std::move(p));
    }
    return d;
}

/** First cell at torus distance @p hops from cell 0. */
CellId
cell_at_distance(const hw::Machine &m, int hops)
{
    for (CellId c = 1; c < m.config().cells; ++c)
        if (m.topology().distance(0, c) == hops)
            return c;
    return -1;
}

model::SweepData
run_hops(bool quick)
{
    model::SweepData d;
    d.sweep = "hops";
    d.bench = "micro_putget";
    d.param = "hops";
    d.unit = "hops";
    constexpr std::uint32_t bytes = 256;
    const std::vector<int> hopList =
        quick ? std::vector<int>{1, 2, 4, 8}
              : std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8};
    for (int hops : hopList) {
        hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(64);
        hw::Machine m(cfg);
        CellId dst = cell_at_distance(m, hops);
        if (dst < 0)
            fatal("no cell at distance %d on an 8x8 torus", hops);
        PutMeasure pm = measure_put(m, dst, bytes);
        model::SweepPoint p;
        p.x = hops;
        p.metrics["deliver_us"] = pm.deliverUs;
        p.registry = registry_snapshot(m, {"tnet.messages"});
        d.points.push_back(std::move(p));
    }
    return d;
}

// ---------------------------------------------------------------
// cells / threads: the PHOLD kernel sweep (bench_scale's workload)
// ---------------------------------------------------------------

constexpr Tick pholdLookahead = 320;
constexpr Tick pholdHorizon = 100000;

struct PholdResult
{
    std::uint64_t events = 0;
    double seconds = 0.0;
};

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

PholdResult
run_phold(int side, int threads)
{
    const int cells = side * side;
    std::unique_ptr<sim::Simulator> owner;
    if (threads <= 1) {
        owner = std::make_unique<sim::Simulator>();
    } else {
        sim::ShardConfig sc;
        sc.shards = threads;
        sc.lookahead = pholdLookahead;
        sc.affinityMap = [cells, threads](int a) {
            if (a < 0)
                return 0;
            if (a >= cells)
                return threads - 1;
            return static_cast<int>(static_cast<long long>(a) *
                                    threads / cells);
        };
        owner = std::make_unique<sim::ShardedSimulator>(sc);
    }
    sim::Simulator &sim = *owner;

    std::vector<std::uint64_t> state(
        static_cast<std::size_t>(cells));
    for (int c = 0; c < cells; ++c)
        state[static_cast<std::size_t>(c)] =
            0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(c);

    std::function<void(int, Tick)> fire = [&](int cell, Tick when) {
        sim.schedule_for(cell, when, [&, cell]() {
            std::uint64_t &s =
                state[static_cast<std::size_t>(cell)];
            s = mix(s);
            int next = cell;
            Tick delay = 40 + static_cast<Tick>(s % 64);
            if ((s & 3) == 0) {
                int x = cell % side;
                int y = cell / side;
                switch ((s >> 2) & 3) {
                  case 0: x = (x + 1) % side; break;
                  case 1: x = (x + side - 1) % side; break;
                  case 2: y = (y + 1) % side; break;
                  default: y = (y + side - 1) % side; break;
                }
                next = y * side + x;
                delay = pholdLookahead + static_cast<Tick>(s % 256);
            }
            Tick when2 = sim.now() + delay;
            if (when2 < pholdHorizon)
                fire(next, when2);
        });
    };
    for (int c = 0; c < cells; ++c)
        fire(c, static_cast<Tick>(
                    state[static_cast<std::size_t>(c)] % 128));

    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    auto t1 = std::chrono::steady_clock::now();
    PholdResult r;
    r.events = sim.executed();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

model::SweepData
run_cells(bool quick)
{
    model::SweepData d;
    d.sweep = "cells";
    d.bench = "bench_scale";
    d.param = "cells";
    d.unit = "cells";
    // Quick thins the sides but keeps the horizon, so every quick
    // point is an exact re-measurement of a full-sweep point.
    const std::vector<int> sides =
        quick ? std::vector<int>{8, 16, 24}
              : std::vector<int>{8, 12, 16, 24, 32};
    for (int side : sides) {
        PholdResult r = run_phold(side, 1);
        model::SweepPoint p;
        p.x = side * side;
        p.metrics["events"] = static_cast<double>(r.events);
        p.metrics["events_per_sec"] =
            r.seconds > 0
                ? static_cast<double>(r.events) / r.seconds
                : 0.0;
        d.points.push_back(std::move(p));
    }
    return d;
}

model::SweepData
run_threads(bool quick)
{
    model::SweepData d;
    d.sweep = "threads";
    d.bench = "bench_scale";
    d.param = "threads";
    d.unit = "workers";
    constexpr int side = 16;
    const std::vector<int> threadCounts =
        quick ? std::vector<int>{1, 2, 4}
              : std::vector<int>{1, 2, 4, 8};
    double baseEps = 0.0;
    for (int threads : threadCounts) {
        PholdResult r = run_phold(side, threads);
        double eps = r.seconds > 0
                         ? static_cast<double>(r.events) / r.seconds
                         : 0.0;
        if (threads == 1)
            baseEps = eps;
        model::SweepPoint p;
        p.x = threads;
        p.metrics["events"] = static_cast<double>(r.events);
        p.metrics["events_per_sec"] = eps;
        p.metrics["speedup"] = baseEps > 0 ? eps / baseEps : 0.0;
        d.points.push_back(std::move(p));
    }
    return d;
}

// ---------------------------------------------------------------
// droprate: reliable-layer recovery cost vs message loss
// ---------------------------------------------------------------

model::SweepData
run_droprate(bool quick)
{
    model::SweepData d;
    d.sweep = "droprate";
    d.bench = "reliable_overhead";
    d.param = "drop_pct";
    d.unit = "%";
    const std::vector<double> drops =
        quick ? std::vector<double>{0.5, 2.0, 8.0}
              : std::vector<double>{0.5, 1.0, 2.0, 4.0, 8.0};
    constexpr int latencyOps = 100;
    constexpr int streamBlocks = 32;
    constexpr int blockBytes = 1024;
    for (double pct : drops) {
        hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
        cfg.reliableNet = true;
        cfg.faults.dropProb = pct / 100.0;
        cfg.faults.seed = 1234;
        cfg.retry.watchdogUs = 1e6;
        hw::Machine m(cfg);
        double latencyUs = 0.0, streamMbS = 0.0;
        SpmdResult r = run_spmd(m, [&](Context &ctx) {
            if (ctx.id() != 0)
                return;
            Addr buf = ctx.alloc(blockBytes);
            Tick t0 = ctx.now();
            for (int i = 0; i < latencyOps; ++i) {
                ctx.put(1, 0x800, buf, 64, no_flag, no_flag, true);
                ctx.wait_all_acks();
            }
            latencyUs = ticks_to_us(ctx.now() - t0) / latencyOps;
            t0 = ctx.now();
            for (int k = 0; k < streamBlocks; ++k) {
                Addr raddr =
                    0x800 + static_cast<Addr>(k) *
                                static_cast<Addr>(blockBytes);
                ctx.put(1, raddr, buf, blockBytes, no_flag, no_flag,
                        true);
            }
            ctx.wait_all_acks();
            double us = ticks_to_us(ctx.now() - t0);
            streamMbS = us > 0 ? static_cast<double>(streamBlocks) *
                                     blockBytes / us
                               : 0.0;
        });
        if (r.failed())
            fatal("droprate sweep failed at %.1f%%", pct);
        model::SweepPoint p;
        p.x = pct;
        p.metrics["put_us"] = latencyUs;
        p.metrics["stream_mb_s"] = streamMbS;
        p.metrics["retransmits"] = static_cast<double>(
            m.stats_registry().sum("*.rnet.retransmits"));
        p.registry = registry_snapshot(
            m, {"tnet.dropped", "tnet.messages"});
        d.points.push_back(std::move(p));
    }
    return d;
}

// ---------------------------------------------------------------
// serve: gang-scheduler throughput/latency vs job arrival rate
// ---------------------------------------------------------------

model::SweepData
run_serve(bool quick)
{
    model::SweepData d;
    d.sweep = "serve";
    d.bench = "bench_serve";
    d.param = "arrival_us";
    d.unit = "us";
    // Derived from the simulated makespan, so exactly reproducible:
    // tight sim envelope, not the host shape gate the name implies.
    d.classes["jobs_per_sec"] = model::MetricClass::sim;
    const std::vector<double> arrivals =
        quick ? std::vector<double>{100.0, 400.0, 1600.0}
              : std::vector<double>{100.0, 200.0, 400.0, 800.0,
                                    1600.0};
    constexpr int cells = 16;
    constexpr int jobs = 32;
    for (double arrivalUs : arrivals) {
        hw::MachineConfig cfg =
            hw::MachineConfig::ap1000_plus(cells);
        cfg.retry.watchdogUs = 3000.0;
        hw::Machine m(cfg);

        serve::TrafficConfig traffic;
        traffic.jobs = jobs;
        traffic.seed = 11;
        traffic.meanArrivalUs = arrivalUs;
        traffic.maxW = m.topology().width();
        traffic.maxH = m.topology().height();

        serve::GangScheduler sched(m, serve::ServeConfig{});
        sched.schedule_stream(serve::generate_stream(traffic));
        m.run_to_completion();
        sched.finalize();

        std::vector<double> lat;
        Tick firstSubmit = 0, lastFinish = 0;
        bool haveFirst = false;
        for (const serve::JobRecord &r : sched.jobs()) {
            if (!haveFirst || r.submitTick < firstSubmit) {
                firstSubmit = r.submitTick;
                haveFirst = true;
            }
            if (r.state == serve::JobState::completed) {
                lat.push_back(
                    ticks_to_us(r.finishTick - r.submitTick));
                lastFinish = std::max(lastFinish, r.finishTick);
            }
        }
        std::sort(lat.begin(), lat.end());
        double meanLat = 0.0, p95Lat = 0.0;
        for (double v : lat)
            meanLat += v;
        if (!lat.empty()) {
            meanLat /= static_cast<double>(lat.size());
            p95Lat = lat[std::min(
                lat.size() - 1,
                static_cast<std::size_t>(
                    static_cast<double>(lat.size()) * 0.95))];
        }
        double makespanUs =
            lastFinish > firstSubmit
                ? ticks_to_us(lastFinish - firstSubmit)
                : 0.0;
        serve::ServeTotals tot = sched.totals();

        model::SweepPoint p;
        p.x = arrivalUs;
        p.metrics["completed"] =
            static_cast<double>(tot.completed);
        p.metrics["jobs_per_sec"] =
            makespanUs > 0
                ? static_cast<double>(tot.completed) * 1e6 /
                      makespanUs
                : 0.0;
        p.metrics["mean_latency_us"] = meanLat;
        p.metrics["p95_latency_us"] = p95Lat;
        p.registry =
            registry_snapshot(m, {"tnet.messages", "snet.barriers"});
        d.points.push_back(std::move(p));
    }
    return d;
}

// ---------------------------------------------------------------
// --calibrate: derive MLSim cost parameters from emulator fits
// ---------------------------------------------------------------

double
stage_mean_us(const obs::CritPathReport &rep, obs::SpanStage st)
{
    const obs::StageAttribution &s =
        rep.stages[static_cast<std::size_t>(st)];
    return s.events
               ? ticks_to_us(s.busyTicks) /
                     static_cast<double>(s.events)
               : 0.0;
}

/** Span-profiled PUT burst; returns the critical-path attribution. */
obs::CritPathReport
profile_put_burst(std::uint32_t bytes)
{
    constexpr int count = 64;
    hw::MachineConfig cfg = two_cell_config();
    cfg.spanMode = obs::SpanMode::full;
    hw::Machine m(cfg);
    run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(bytes);
        Addr rf = ctx.alloc_flag();
        ctx.barrier();
        if (ctx.id() == 0)
            for (int i = 0; i < count; ++i)
                ctx.put(1, buf, buf, bytes, no_flag, rf);
        if (ctx.id() == 1)
            ctx.wait_flag(rf, count);
    });
    return obs::analyze_spans(m.spans().events());
}

/** Span-profiled SEND burst (ring-buffer path). */
obs::CritPathReport
profile_send_burst(std::uint32_t bytes)
{
    constexpr int count = 16;
    hw::MachineConfig cfg = two_cell_config();
    cfg.spanMode = obs::SpanMode::full;
    hw::Machine m(cfg);
    run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(bytes);
        ctx.barrier();
        if (ctx.id() == 0)
            for (int i = 0; i < count; ++i)
                ctx.send(1, 7, buf, bytes);
        if (ctx.id() == 1)
            for (int i = 0; i < count; ++i)
                ctx.recv(0, 7, buf, bytes);
    });
    return obs::analyze_spans(m.spans().events());
}

/** RECV search+copy time with the message long since deposited. */
double
measure_recv_us(std::uint32_t bytes)
{
    hw::Machine m(two_cell_config());
    Tick dur = 0;
    run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(bytes);
        ctx.barrier();
        if (ctx.id() == 0)
            ctx.send(1, 7, buf, bytes);
        if (ctx.id() == 1) {
            // Idle long enough that the deposit DMA has certainly
            // finished: what remains is ring search + user-area copy.
            ctx.compute_us(5000.0);
            Tick t0 = ctx.now();
            ctx.recv(0, 7, buf, bytes);
            dur = ctx.now() - t0;
        }
    });
    return ticks_to_us(dur);
}

/** S-net release: mean barrier-stage span over a barrier burst. */
double
measure_barrier_us()
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(4);
    cfg.spanMode = obs::SpanMode::full;
    hw::Machine m(cfg);
    run_spmd(m, [&](Context &ctx) {
        for (int i = 0; i < 8; ++i)
            ctx.barrier();
    });
    return stage_mean_us(obs::analyze_spans(m.spans().events()),
                         obs::SpanStage::barrier);
}

struct CalibRow
{
    const char *param;
    double hand;
    double derived;
    const char *how;
};

void
run_calibration(bool quick, obs::BenchReport &report)
{
    std::printf("-- MLSim calibration: derived from emulator fits "
                "--\n\n");

    // PUT latency vs bytes on adjacent cells: the per-byte slope is
    // the effective wire+DMA byte cost, the issue time the enqueue.
    std::vector<model::Point> deliverPts;
    double issueSum = 0.0;
    const std::vector<std::uint32_t> sizes = {64, 1024, 4096,
                                              16384};
    for (std::uint32_t bytes : sizes) {
        hw::Machine m(two_cell_config());
        PutMeasure pm = measure_put(m, 1, bytes);
        deliverPts.push_back({static_cast<double>(bytes),
                              pm.deliverUs});
        issueSum += pm.issueUs;
    }
    model::Line deliverLine = model::linear_fit(deliverPts);
    double issueUs =
        issueSum / static_cast<double>(sizes.size());

    // PUT latency vs hop distance at fixed size: per-hop T-net delay.
    std::vector<model::Point> hopPts;
    for (int hops : {1, 2, 3, 4}) {
        hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(64);
        hw::Machine m(cfg);
        CellId dst = cell_at_distance(m, hops);
        PutMeasure pm = measure_put(m, dst, 64);
        hopPts.push_back({static_cast<double>(hops),
                          pm.deliverUs});
    }
    model::Line hopLine = model::linear_fit(hopPts);

    // Span-profiled bursts: the dma_send stage mean vs bytes has the
    // DMA setup as its intercept; ring_deposit likewise for SEND.
    std::vector<model::Point> dmaPts, ringPts;
    for (std::uint32_t bytes : {64u, 1024u, 4096u}) {
        obs::CritPathReport put = profile_put_burst(bytes);
        dmaPts.push_back(
            {static_cast<double>(bytes),
             stage_mean_us(put, obs::SpanStage::dma_send)});
        obs::CritPathReport send = profile_send_burst(bytes);
        ringPts.push_back(
            {static_cast<double>(bytes),
             stage_mean_us(send, obs::SpanStage::ring_deposit)});
    }
    model::Line dmaLine = model::linear_fit(dmaPts);
    model::Line ringLine = model::linear_fit(ringPts);

    // RECV on an already-deposited message: search + per-byte copy.
    std::vector<model::Point> recvPts;
    for (std::uint32_t bytes : {64u, 1024u, 4096u, 16384u})
        recvPts.push_back({static_cast<double>(bytes),
                           measure_recv_us(bytes)});
    model::Line recvLine = model::linear_fit(recvPts);

    double barrierUs = measure_barrier_us();

    mlsim::Params hand = mlsim::Params::ap1000_plus();
    const std::vector<CalibRow> rows = {
        {"put_enqueue_time", hand.put_enqueue_time, issueUs,
         "PUT issue time, mean over sizes"},
        {"put_dma_set_time", hand.put_dma_set_time,
         dmaLine.intercept, "dma_send stage intercept vs bytes"},
        {"network_delay_time", hand.network_delay_time,
         hopLine.slope, "deliver slope vs torus hops"},
        {"network_msg_time", hand.network_msg_time,
         deliverLine.slope, "deliver slope vs bytes"},
        {"recv_search_time", hand.recv_search_time,
         recvLine.intercept, "RECV intercept vs bytes"},
        {"recv_copy_time", hand.recv_copy_time, recvLine.slope,
         "RECV slope vs bytes"},
        {"barrier_time", hand.barrier_time, barrierUs,
         "mean S-net barrier episode"},
        {"recv_dma_set_time", hand.recv_dma_set_time,
         ringLine.intercept,
         "ring_deposit stage intercept vs bytes"},
    };

    Table t({"Parameter", "Hand us", "Derived us", "Drift %",
             "Derived from"});
    for (const CalibRow &r : rows) {
        double drift =
            r.hand != 0.0
                ? 100.0 * (r.derived - r.hand) / r.hand
                : 0.0;
        t.add_row({r.param, strprintf("%.3f", r.hand),
                   strprintf("%.3f", r.derived),
                   strprintf("%+.0f", drift), r.how});
        std::string k = strprintf("calib.%s", r.param);
        report.set(k + ".hand", r.hand);
        report.set(k + ".derived", r.derived);
        report.set(k + ".drift_pct", drift);
    }
    t.print();
    report.set("calib.params",
               static_cast<std::uint64_t>(rows.size()));

    // Calibrated parameter file: the derived values dropped into the
    // AP1000+ model (negative fit artifacts clamped at zero cost).
    mlsim::Params calib = hand;
    auto pos = [](double v) { return std::max(v, 0.0); };
    calib.name = "AP1000+ (calibrated)";
    calib.put_enqueue_time = pos(issueUs);
    calib.put_dma_set_time = pos(dmaLine.intercept);
    calib.network_delay_time = pos(hopLine.slope);
    calib.network_msg_time = pos(deliverLine.slope);
    calib.recv_search_time = pos(recvLine.intercept);
    calib.recv_copy_time = pos(recvLine.slope);
    calib.barrier_time = pos(barrierUs);
    calib.recv_dma_set_time = pos(ringLine.intercept);

    // Figure 7 sensitivity: the closed-form overhead columns under
    // both parameter files.
    mlsim::CostModel handModel(hand), calibModel(calib);
    std::printf("\nFigure 7 sensitivity (AP1000+ overheads, hand vs "
                "calibrated):\n");
    Table f({"Bytes", "Send us (hand)", "Send us (calib)",
             "Net us 1hop (hand)", "Net us 1hop (calib)"});
    for (std::uint32_t bytes : {64u, 1024u, 16384u}) {
        f.add_row(
            {strprintf("%u", bytes),
             strprintf("%.2f", handModel.put_send_overhead(bytes)),
             strprintf("%.2f",
                       calibModel.put_send_overhead(bytes)),
             strprintf("%.2f", handModel.network(1, bytes)),
             strprintf("%.2f", calibModel.network(1, bytes))});
        std::string k = strprintf("calib.fig7.b%u", bytes);
        report.set(k + ".send_us_hand",
                   handModel.put_send_overhead(bytes));
        report.set(k + ".send_us_calib",
                   calibModel.put_send_overhead(bytes));
        report.set(k + ".net_us_hand",
                   handModel.network(1, bytes));
        report.set(k + ".net_us_calib",
                   calibModel.network(1, bytes));
    }
    f.print();

    // Table 2 sensitivity: replay the application traces under the
    // calibrated file; the speedup-vs-AP1000 deltas bound how much
    // the headline reproduction depends on the hand-tuned values.
    mlsim::Params base = mlsim::Params::ap1000();
    std::printf("\nTable 2 sensitivity (speedup vs AP1000):\n");
    Table s({"App", "Hand", "Calibrated", "Delta %"});
    auto suite = apps::standard_suite();
    std::size_t appCount =
        quick ? std::min<std::size_t>(2, suite.size())
              : suite.size();
    for (std::size_t i = 0; i < appCount; ++i) {
        const auto &app = suite[i];
        core::Trace trace = app->generate();
        double tBase =
            mlsim::Replay(trace, base).run().totalUs;
        double tHand =
            mlsim::Replay(trace, hand).run().totalUs;
        double tCalib =
            mlsim::Replay(trace, calib).run().totalUs;
        if (tHand <= 0 || tCalib <= 0)
            continue;
        double sHand = tBase / tHand;
        double sCalib = tBase / tCalib;
        double delta = 100.0 * (sCalib - sHand) / sHand;
        s.add_row({app->info().name, strprintf("%.2f", sHand),
                   strprintf("%.2f", sCalib),
                   strprintf("%+.1f", delta)});
        std::string k = app->info().name;
        for (char &c : k)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        report.set("calib.table2." + k + ".speedup_hand", sHand);
        report.set("calib.table2." + k + ".speedup_calib", sCalib);
        report.set("calib.table2." + k + ".delta_pct", delta);
    }
    s.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("bench_sweep");
    bool quick = false, fit = false, calibrate = false;
    std::string sweepArg = "putlat,cells,serve";
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (report.consume_arg(argv[i]))
            continue;
        if (a == "--quick")
            quick = true;
        else if (a == "--fit")
            fit = true;
        else if (a == "--calibrate")
            calibrate = true;
        else if (a.rfind("--sweep=", 0) == 0)
            sweepArg = a.substr(8);
        else if (a.rfind("--out-dir=", 0) == 0)
            outDir = a.substr(10);
        else
            fatal("unknown argument '%s' (bench_sweep "
                  "[--sweep=LIST|all] [--quick] [--fit] "
                  "[--calibrate] [--out-dir=DIR] "
                  "[--json-out[=FILE]])",
                  a.c_str());
    }

    using Runner = model::SweepData (*)(bool);
    const std::vector<std::pair<std::string, Runner>> runners = {
        {"putlat", run_putlat},     {"hops", run_hops},
        {"cells", run_cells},       {"threads", run_threads},
        {"droprate", run_droprate}, {"serve", run_serve},
    };

    std::vector<std::string> selected;
    if (sweepArg == "all") {
        for (const auto &[name, fn] : runners)
            selected.push_back(name);
    } else {
        std::string rest = sweepArg;
        while (!rest.empty()) {
            std::size_t comma = rest.find(',');
            selected.push_back(rest.substr(0, comma));
            rest = comma == std::string::npos
                       ? ""
                       : rest.substr(comma + 1);
        }
    }

    std::printf("Performance-model observatory sweeps%s\n\n",
                quick ? " (quick)" : "");

    int ran = 0;
    for (const std::string &name : selected) {
        Runner fn = nullptr;
        for (const auto &[rname, rfn] : runners)
            if (rname == name)
                fn = rfn;
        if (!fn)
            fatal("unknown sweep '%s' (putlat, hops, cells, "
                  "threads, droprate, serve)",
                  name.c_str());
        model::SweepData d = fn(quick);
        print_sweep(d);
        report_sweep(report, d);
        std::string sweepPath = out_path("SWEEP_" + name + ".json");
        if (!d.write(sweepPath))
            fatal("cannot write %s", sweepPath.c_str());
        std::printf("sweep dataset written to %s\n\n",
                    sweepPath.c_str());
        if (fit) {
            model::SweepModel sm = model::fit_sweep(d);
            std::printf("%s", sm.text().c_str());
            std::string modelPath =
                out_path("MODEL_" + name + ".json");
            if (!sm.write(modelPath))
                fatal("cannot write %s", modelPath.c_str());
            std::printf("fitted model written to %s\n\n",
                        modelPath.c_str());
        }
        ++ran;
    }
    report.set("sweeps_run", static_cast<std::uint64_t>(ran));

    if (calibrate)
        run_calibration(quick, report);

    if (!report.write())
        fatal("cannot write %s", report.path().c_str());
    return 0;
}
