/**
 * @file
 * Reproduces Figure 7: the PUT communication model.
 *
 * Prints the paper's two closed-form overheads —
 *
 *   Send overhead = put_prolog + put_enqueue
 *                 + put_msg_post x msg_size + put_dma_set + put_epilog
 *   Interrupt reception overhead = intr_rtc
 *                 + recv_msg_invalid x msg_size + recv_dma_set
 *
 * — for both machines over a message-size sweep, then validates the
 * hardware numbers against the functional machine: a real PUT is
 * driven through the MSC+ and the issuing processor's busy time and
 * the end-to-end flag-to-flag latency are measured.
 */

#include <cstdio>

#include "base/logging.hh"
#include "base/table.hh"
#include "core/ap1000p.hh"
#include "mlsim/costmodel.hh"
#include "obs/cli.hh"

using namespace ap;
using namespace ap::core;
using namespace ap::mlsim;

namespace
{

/** Measure issue cost and delivery latency of one PUT functionally. */
struct Measured
{
    double issueUs;
    double deliveredUs;
};

Measured
measure_put(std::uint32_t bytes)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.memBytesPerCell = 8 << 20;
    hw::Machine m(cfg);
    Measured out{0, 0};

    run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(bytes ? bytes : 4);
        Addr rf = ctx.alloc_flag();
        ctx.barrier();
        Tick t0 = ctx.now();
        if (ctx.id() == 0) {
            ctx.put(1, buf, buf, bytes, no_flag, rf);
            out.issueUs = ticks_to_us(ctx.now() - t0);
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 1);
            out.deliveredUs = ticks_to_us(ctx.now() - t0);
        }
        ctx.barrier();
    });
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("fig7_put_model");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            fatal("unknown argument '%s' (only --json-out[=FILE])",
                  argv[i]);

    std::printf("Figure 7: PUT communication model — overheads by "
                "message size (us)\n\n");

    CostModel sw(Params::ap1000());
    CostModel hw(Params::ap1000_plus());

    Table t({"Msg bytes", "AP1000 send ovh", "AP1000 recv intr",
             "AP1000+ send ovh", "AP1000+ recv intr",
             "AP1000+ measured issue", "AP1000+ measured deliver"});

    for (std::uint32_t bytes :
         {16u, 256u, 1024u, 4096u, 16384u, 65536u}) {
        Measured m = measure_put(bytes);
        t.add_row({strprintf("%u", bytes),
                   Table::num(sw.put_send_overhead(bytes)),
                   Table::num(sw.recv_interrupt_overhead(bytes)),
                   Table::num(hw.put_send_overhead(bytes)),
                   Table::num(hw.recv_interrupt_overhead(bytes)),
                   Table::num(m.issueUs), Table::num(m.deliveredUs)});

        std::string k = strprintf("bytes%u", bytes);
        report.set(k + ".sw_send_us", sw.put_send_overhead(bytes));
        report.set(k + ".sw_recv_us",
                   sw.recv_interrupt_overhead(bytes));
        report.set(k + ".hw_send_us", hw.put_send_overhead(bytes));
        report.set(k + ".hw_recv_us",
                   hw.recv_interrupt_overhead(bytes));
        report.set(k + ".measured_issue_us", m.issueUs);
        report.set(k + ".measured_deliver_us", m.deliveredUs);
    }
    t.print();

    std::printf(
        "\nThe paper's claims, checked against the model:\n"
        "  - software send overhead at 0 bytes = %.2f us "
        "(prolog 20 + enqueue 0.16 + dma_set 15 + epilog 15)\n"
        "  - hardware send overhead is size-independent: %.2f us "
        "(the 8 parameter stores)\n"
        "  - hardware reception steals zero processor time.\n",
        sw.put_send_overhead(0), hw.put_send_overhead(65536));
    return report.write() ? 0 : 1;
}
