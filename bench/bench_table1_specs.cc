/**
 * @file
 * Reproduces Table 1: AP1000+ specifications, printed from the
 * machine configuration the functional simulator runs.
 */

#include <cstdio>

#include "base/logging.hh"
#include "base/table.hh"
#include "hw/config.hh"
#include "hw/mmu.hh"
#include "hw/queues.hh"
#include "obs/cli.hh"

using namespace ap;
using namespace ap::hw;

int
main(int argc, char **argv)
{
    obs::BenchReport report("table1_specs");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            fatal("unknown argument '%s' (only --json-out[=FILE])",
                  argv[i]);

    MachineConfig lo = MachineConfig::ap1000_plus(4);
    MachineConfig hi = MachineConfig::ap1000_plus(1024);

    std::printf("Table 1: AP1000+ specifications (ours / paper)\n\n");

    Table t({"Item", "Ours", "Paper"});
    t.add_row({"Processor",
               strprintf("SuperSPARC (%.0f MHz)", lo.clockMhz),
               "SuperSPARC (50 MHz)"});
    t.add_row({"Processor performance",
               strprintf("%.0f MFLOPS", lo.mflopsPerCell),
               "50 MFLOPS"});
    t.add_row({"Memory per cell", "16, 64 megabytes (model default "
                                  "smaller)",
               "16, 64 megabytes"});
    t.add_row({"Cache per cell",
               strprintf("%zu kilobytes, write-through",
                         lo.cacheBytes / 1024),
               "36 kilobytes, write-through"});
    t.add_row({"System configuration",
               strprintf("%d - %d cells", lo.cells, hi.cells),
               "4 - 1024 cells"});
    t.add_row({"System performance",
               strprintf("%.1f - %.1f GFLOPS", lo.system_gflops(),
                         hi.system_gflops()),
               "0.2 - 51.2 GFLOPS"});
    t.print();

    std::printf("\nArchitecture constants exercised by the model:\n");
    std::printf("  MSC+ command queue        %d words "
                "(%d 8-word commands)\n",
                lo.queueCapacityWords,
                lo.queueCapacityWords / Command::queue_words);
    std::printf("  TLB                       %zu x 4 KB + %zu x "
                "256 KB entries, direct-mapped\n",
                Mmu::small_tlb_entries, Mmu::large_tlb_entries);
    std::printf("  T-net links               %.0f MB/s "
                "(%.2f us/byte), B-net %.0f MB/s\n",
                1.0 / lo.tnet.perByteUs, lo.tnet.perByteUs,
                1.0 / lo.bnet.perByteUs);
    std::printf("  PUT issue                 8 stores = %.2f us\n",
                lo.timings.enqueueUs);

    report.set("clock_mhz", lo.clockMhz);
    report.set("mflops_per_cell", lo.mflopsPerCell);
    report.set("cache_kbytes",
               static_cast<std::uint64_t>(lo.cacheBytes / 1024));
    report.set("cells_min", static_cast<std::uint64_t>(lo.cells));
    report.set("cells_max", static_cast<std::uint64_t>(hi.cells));
    report.set("system_gflops_min", lo.system_gflops());
    report.set("system_gflops_max", hi.system_gflops());
    report.set("queue_capacity_words",
               static_cast<std::uint64_t>(lo.queueCapacityWords));
    report.set("tnet_mbytes_per_s", 1.0 / lo.tnet.perByteUs);
    report.set("bnet_mbytes_per_s", 1.0 / lo.bnet.perByteUs);
    report.set("put_issue_us", lo.timings.enqueueUs);
    return report.write() ? 0 : 1;
}
