/**
 * @file
 * Reproduces Table 1: AP1000+ specifications, printed from the
 * machine configuration the functional simulator runs.
 */

#include <cstdio>

#include "base/logging.hh"
#include "base/table.hh"
#include "hw/config.hh"
#include "hw/mmu.hh"
#include "hw/queues.hh"

using namespace ap;
using namespace ap::hw;

int
main()
{
    MachineConfig lo = MachineConfig::ap1000_plus(4);
    MachineConfig hi = MachineConfig::ap1000_plus(1024);

    std::printf("Table 1: AP1000+ specifications (ours / paper)\n\n");

    Table t({"Item", "Ours", "Paper"});
    t.add_row({"Processor",
               strprintf("SuperSPARC (%.0f MHz)", lo.clockMhz),
               "SuperSPARC (50 MHz)"});
    t.add_row({"Processor performance",
               strprintf("%.0f MFLOPS", lo.mflopsPerCell),
               "50 MFLOPS"});
    t.add_row({"Memory per cell", "16, 64 megabytes (model default "
                                  "smaller)",
               "16, 64 megabytes"});
    t.add_row({"Cache per cell",
               strprintf("%zu kilobytes, write-through",
                         lo.cacheBytes / 1024),
               "36 kilobytes, write-through"});
    t.add_row({"System configuration",
               strprintf("%d - %d cells", lo.cells, hi.cells),
               "4 - 1024 cells"});
    t.add_row({"System performance",
               strprintf("%.1f - %.1f GFLOPS", lo.system_gflops(),
                         hi.system_gflops()),
               "0.2 - 51.2 GFLOPS"});
    t.print();

    std::printf("\nArchitecture constants exercised by the model:\n");
    std::printf("  MSC+ command queue        %d words "
                "(%d 8-word commands)\n",
                lo.queueCapacityWords,
                lo.queueCapacityWords / Command::queue_words);
    std::printf("  TLB                       %zu x 4 KB + %zu x "
                "256 KB entries, direct-mapped\n",
                Mmu::small_tlb_entries, Mmu::large_tlb_entries);
    std::printf("  T-net links               %.0f MB/s "
                "(%.2f us/byte), B-net %.0f MB/s\n",
                1.0 / lo.tnet.perByteUs, lo.tnet.perByteUs,
                1.0 / lo.bnet.perByteUs);
    std::printf("  PUT issue                 8 stores = %.2f us\n",
                lo.timings.enqueueUs);
    return 0;
}
