/**
 * @file
 * Sensitivity analysis: how much of the AP1000+'s win each hardware
 * choice buys.
 *
 * Two sweeps on the most communication-sensitive workloads:
 *
 *  1. DMA setup cost (put_dma_set_time) swept from the MSC+'s 0.5 us
 *     up to the AP1000's software 15 us, on TOMCATV-without-stride —
 *     thousands of 8-byte transfers make the per-command pipeline
 *     cost the binding constraint.
 *  2. Processor improvement (1/computation_factor) swept at fixed
 *     communication hardware, on SCG — the Amdahl wall: as the CPU
 *     gets faster the software model's speedup saturates while the
 *     hardware model keeps tracking the processor.
 */

#include <cstdio>

#include "apps/app.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "mlsim/params.hh"
#include "mlsim/replay.hh"
#include "obs/cli.hh"

using namespace ap;
using namespace ap::apps;
using namespace ap::mlsim;

int
main(int argc, char **argv)
{
    obs::BenchReport report("sensitivity");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            fatal("unknown argument '%s' (only --json-out[=FILE])",
                  argv[i]);

    // ---- sweep 1: DMA setup cost --------------------------------------
    std::printf("Sweep 1: MSC+ DMA setup cost vs TOMCATV-no-stride "
                "speedup over the AP1000\n\n");

    core::Trace tc = make_app("TC no st")->generate();
    double t_base = Replay(tc, Params::ap1000()).run().totalUs;

    Table t1({"put_dma_set_time (us)", "Speedup over AP1000",
              "Fraction of paper's 11.55"});
    for (double dma : {0.5, 1.0, 2.0, 4.0, 8.0, 15.0}) {
        Params p = Params::ap1000_plus();
        p.put_dma_set_time = dma;
        double t = Replay(tc, p).run().totalUs;
        double s = t_base / t;
        t1.add_row({Table::num(dma, 1), Table::num(s, 2),
                    Table::num(s / 11.55, 2)});

        // Tenths of a us keep the segment free of '.' separators.
        std::string k = strprintf("dma_sweep.dma_us_x10_%d",
                                  static_cast<int>(dma * 10 + 0.5));
        report.set(k + ".speedup", s);
        report.set(k + ".fraction_of_paper", s / 11.55);
    }
    t1.print();
    std::printf("\nAt the paper's 0.5 us the hardware keeps its full "
                "advantage; at the software\nmodel's 15 us the "
                "per-command pipeline eats most of it — the knob the "
                "MSC+'s\nRAM-resident queues exist to keep small.\n");

    // ---- sweep 2: processor improvement --------------------------------
    std::printf("\nSweep 2: processor improvement vs SCG speedup "
                "(hardware vs software handling)\n\n");

    core::Trace scg = make_app("SCG")->generate();
    double scg_base = Replay(scg, Params::ap1000()).run().totalUs;

    Table t2({"CPU improvement", "AP1000+ style", "software style",
              "hw/sw ratio"});
    for (double speed : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
        Params hw = Params::ap1000_plus();
        hw.computation_factor = 1.0 / speed;
        Params sw = Params::ap1000();
        sw.name = "AP1000 sw";
        sw.computation_factor = 1.0 / speed;

        double t_hw = Replay(scg, hw).run().totalUs;
        double t_sw = Replay(scg, sw).run().totalUs;
        t2.add_row({strprintf("%.0fx", speed),
                    Table::num(scg_base / t_hw, 2),
                    Table::num(scg_base / t_sw, 2),
                    Table::num(t_sw / t_hw, 2)});

        std::string k = strprintf("cpu_sweep.x%.0f", speed);
        report.set(k + ".hw_speedup", scg_base / t_hw);
        report.set(k + ".sw_speedup", scg_base / t_sw);
        report.set(k + ".hw_over_sw", t_sw / t_hw);
    }
    t2.print();
    std::printf("\nSoftware handling saturates (Amdahl on the fixed "
                "~100 us/message software\npath) while the hardware "
                "interface keeps scaling with the processor — the "
                "paper's\ncore argument, extrapolated beyond the "
                "SuperSPARC.\n");
    return report.write() ? 0 : 1;
}
