/**
 * @file
 * Write-through page ablation (Section 4.2's deferred mechanism).
 *
 * A read-heavy shared-memory workload — every cell repeatedly reads a
 * table owned by cell 0 — with and without the write-through page
 * cache, sweeping the locality (reads per page). The cache "enables
 * the replacement of remote accesses with local accesses": message
 * counts collapse by the locality factor and simulated time follows.
 */

#include <cstdio>

#include "base/logging.hh"
#include "base/table.hh"
#include "core/ap1000p.hh"
#include "core/wtpage.hh"
#include "obs/cli.hh"

using namespace ap;
using namespace ap::core;

namespace
{

struct Result
{
    double simUs = 0;
    std::uint64_t messages = 0;
};

/** @p reads random-ish table reads, @p span bytes of table. */
Result
table_scan(bool use_cache, int reads, std::uint32_t span)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(4);
    cfg.memBytesPerCell = 4 << 20;
    hw::Machine m(cfg);

    Result out{};
    run_spmd(m, [&](Context &ctx) {
        Addr table = ctx.alloc(span);
        if (ctx.id() == 0)
            for (std::uint32_t i = 0; i < span / 8; ++i)
                ctx.poke_f64(table + static_cast<Addr>(i) * 8,
                             i * 0.5);
        ctx.barrier();

        if (ctx.id() != 0) {
            Tick t0 = ctx.now();
            double acc = 0;
            if (use_cache) {
                WtCache cache(ctx, 16);
                for (int k = 0; k < reads; ++k) {
                    Addr off = static_cast<Addr>(
                                   (k * 1103515245u + ctx.id()) %
                                   (span / 8)) *
                               8;
                    acc += cache.read_f64(0, table + off);
                }
            } else {
                Addr tmp = ctx.alloc(8);
                for (int k = 0; k < reads; ++k) {
                    Addr off = static_cast<Addr>(
                                   (k * 1103515245u + ctx.id()) %
                                   (span / 8)) *
                               8;
                    ctx.read_remote(0, table + off, tmp, 8);
                    acc += ctx.peek_f64(tmp);
                }
            }
            if (ctx.id() == 1)
                out.simUs = ticks_to_us(ctx.now() - t0);
            ctx.compute_us(acc * 0); // keep acc alive
        }
        ctx.barrier();
    });
    out.messages = m.tnet().stats().messages;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("ablation_wtpage");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            fatal("unknown argument '%s' (only --json-out[=FILE])",
                  argv[i]);

    std::printf("Write-through page ablation: 512 8-byte reads of "
                "cell 0's table per reader,\ntable size sweep "
                "(smaller table = higher page locality)\n\n");

    Table t({"Table bytes", "Pages", "Mode", "Sim us (cell 1)",
             "T-net msgs"});
    for (std::uint32_t span : {4096u, 16384u, 65536u, 262144u}) {
        for (bool cached : {false, true}) {
            Result r = table_scan(cached, 512, span);
            std::string k =
                strprintf("span%u.%s", span,
                          cached ? "wt_page_cache" : "remote_reads");
            report.set(k + ".sim_us", r.simUs);
            report.set(k + ".tnet_messages", r.messages);
            t.add_row({strprintf("%u", span),
                       strprintf("%u", span / 4096),
                       cached ? "wt-page cache" : "remote reads",
                       Table::num(r.simUs, 1),
                       strprintf("%llu",
                                 static_cast<unsigned long long>(
                                     r.messages))});
        }
    }
    t.print();
    std::printf("\nWith the cache, traffic is one page GET per "
                "resident page per reader; without\nit, one GET per "
                "read. Past 16 frames x 4 KB of span the cache "
                "thrashes and the\nadvantage narrows — the same "
                "locality cliff real software DSM systems show.\n");
    return report.write() ? 0 : 1;
}
