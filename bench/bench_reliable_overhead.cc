/**
 * @file
 * Reliable-delivery overhead bench.
 *
 * PUT latency and streaming bandwidth with the reliable protocol
 * layer on versus off, on a clean wire and under 2% message loss.
 * The clean-wire rows price the envelope (seq/ack/checksum header,
 * delayed acks); the lossy rows compare protocol-level recovery
 * (go-back-N retransmission) against the application-level fallback
 * the unreliable wire forces: the hardened write_remote path with
 * software timeouts, retries and read-back verification.
 */

#include <cstdio>

#include "base/logging.hh"
#include "base/table.hh"
#include "core/program.hh"
#include "hw/config.hh"
#include "hw/machine.hh"
#include "obs/cli.hh"
#include "sim/fault.hh"

using namespace ap;
using namespace ap::core;

namespace
{

struct Result
{
    double latencyUs = 0;    ///< per acknowledged 64 B PUT
    double bandwidthMBs = 0; ///< 64 x 1 KiB stream, one ack round
    std::uint64_t retransmits = 0;
    const char *mechanism = "";
};

hw::MachineConfig
make_config(bool reliable, double dropProb)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.reliableNet = reliable;
    if (dropProb > 0.0) {
        cfg.faults.dropProb = dropProb;
        cfg.faults.seed = 1234;
    }
    // Lossy runs without the reliable layer lean on software
    // retries; a watchdog turns any residual hang into a hard error
    // instead of wedging the bench.
    if (!reliable && dropProb > 0.0) {
        cfg.retry.timeoutUs = 500.0;
        cfg.retry.maxRetries = 10;
    }
    cfg.retry.watchdogUs = 1e6;
    return cfg;
}

Result
run_case(bool reliable, double dropProb, int latencyOps,
         int streamBlocks, int blockBytes)
{
    hw::MachineConfig cfg = make_config(reliable, dropProb);
    hw::Machine m(cfg);
    const bool hardened = !reliable && dropProb > 0.0;

    Result out{};
    out.mechanism = hardened ? "sw retry" : "raw put";
    SpmdResult r = run_spmd(m, [&](Context &ctx) {
        if (ctx.id() != 0)
            return;
        Addr buf = ctx.alloc(static_cast<std::size_t>(blockBytes));

        Tick t0 = ctx.now();
        for (int i = 0; i < latencyOps; ++i) {
            if (hardened) {
                ctx.write_remote(1, 0x800, buf, 64);
            } else {
                ctx.put(1, 0x800, buf, 64, no_flag, no_flag, true);
                ctx.wait_all_acks();
            }
        }
        out.latencyUs = ticks_to_us(ctx.now() - t0) / latencyOps;

        t0 = ctx.now();
        for (int k = 0; k < streamBlocks; ++k) {
            Addr raddr = 0x800 + static_cast<Addr>(k) *
                                     static_cast<Addr>(blockBytes);
            if (hardened)
                ctx.write_remote(
                    1, raddr, buf,
                    static_cast<std::uint32_t>(blockBytes));
            else
                ctx.put(1, raddr, buf,
                        static_cast<std::uint32_t>(blockBytes),
                        no_flag, no_flag, true);
        }
        if (!hardened)
            ctx.wait_all_acks();
        double us = ticks_to_us(ctx.now() - t0);
        out.bandwidthMBs =
            static_cast<double>(streamBlocks) * blockBytes / us;
    });
    if (r.failed())
        fatal("bench run failed: %s",
              r.errors.empty() ? "deadlock" : r.errors.front().c_str());
    out.retransmits = m.stats_registry().sum("*.rnet.retransmits");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("reliable_overhead");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            fatal("unknown argument '%s' (only --json-out[=FILE])",
                  argv[i]);

    std::printf("Reliable-delivery overhead: 200 acknowledged 64 B "
                "PUTs (latency) and a 64 x 1 KiB\nstream (bandwidth), "
                "cell 0 -> 1, reliable layer on/off, 0%% and 2%% "
                "loss\n\n");

    Table t({"Reliable", "Drop %", "Mechanism", "PUT us",
             "Stream MB/s", "Retransmits"});
    for (bool reliable : {false, true}) {
        for (double drop : {0.0, 0.02}) {
            Result r = run_case(reliable, drop, 200, 64, 1024);
            std::string k =
                strprintf("rel_%s.drop%d", reliable ? "on" : "off",
                          static_cast<int>(drop * 100));
            report.set(k + ".put_us", r.latencyUs);
            report.set(k + ".stream_mb_s", r.bandwidthMBs);
            report.set(k + ".retransmits", r.retransmits);
            t.add_row({reliable ? "on" : "off",
                       Table::num(drop * 100, 0), r.mechanism,
                       Table::num(r.latencyUs, 2),
                       Table::num(r.bandwidthMBs, 1),
                       strprintf("%llu",
                                 static_cast<unsigned long long>(
                                     r.retransmits))});
        }
    }
    t.print();
    std::printf(
        "\nClean wire: the reliable envelope costs header bytes and "
        "ack traffic only.\nLossy wire: go-back-N recovers inside "
        "the transport at near-clean bandwidth,\nwhile the software "
        "fallback pays a timeout-and-verify round per loss.\n");
    return report.write() ? 0 : 1;
}
