/**
 * @file
 * Span-layer overhead guard.
 *
 * The flight recorder is designed to stay on in production runs, so
 * its cost has a budget: the host wall-clock of the simulator driving
 * a PUT-heavy workload with span mode `flight` must stay within 5% of
 * mode `off`. This bench measures all three modes (off / flight /
 * full) with min-of-repeats wall timing, checks that the *simulated*
 * result is bit-identical across modes (recording must never perturb
 * the machine), prints a comparison table, and emits
 * BENCH_trace_overhead.json via --json-out.
 *
 *   bench_trace_overhead [--repeats=N] [--puts=N] [--bytes=N]
 *                        [--check] [--json-out[=FILE]]
 *
 * --check turns the 5% flight-vs-off budget into the exit status
 * (CI mode); without it the ratios are informational.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/logging.hh"
#include "core/ap1000p.hh"
#include "obs/cli.hh"
#include "obs/span.hh"

using namespace ap;
using namespace ap::core;

namespace
{

struct ModeResult
{
    double wallMs = 0;           ///< best-of-repeats host time
    Tick finish = 0;             ///< simulated finish tick
    std::uint64_t recorded = 0;  ///< span events recorded
};

struct Workload
{
    int puts = 512;
    std::uint32_t bytes = 4096;
    int repeats = 5;
};

ModeResult
run_mode(obs::SpanMode mode, const Workload &w)
{
    ModeResult best;
    for (int r = 0; r < w.repeats; ++r) {
        hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
        cfg.memBytesPerCell = 8 << 20;
        cfg.spanMode = mode;
        hw::Machine m(cfg);

        auto t0 = std::chrono::steady_clock::now();
        SpmdResult res = run_spmd(m, [&](Context &ctx) {
            Addr buf = ctx.alloc(w.bytes);
            Addr rf = ctx.alloc_flag();
            ctx.barrier();
            if (ctx.id() == 0)
                for (int i = 0; i < w.puts; ++i)
                    ctx.put(1, buf, buf, w.bytes, no_flag, rf);
            if (ctx.id() == 1)
                ctx.wait_flag(
                    rf, static_cast<std::uint64_t>(w.puts));
            ctx.barrier();
        });
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        if (res.failed())
            fatal("trace-overhead workload failed in mode %s",
                  to_string(mode));

        if (r == 0 || ms < best.wallMs)
            best.wallMs = ms;
        Tick finish = res.finishTick;
        if (r > 0 && finish != best.finish)
            fatal("mode %s: repeat %d finished at tick %llu, "
                  "expected %llu (nondeterministic run?)",
                  to_string(mode), r,
                  static_cast<unsigned long long>(finish),
                  static_cast<unsigned long long>(best.finish));
        best.finish = finish;
        best.recorded = m.spans().recorded();
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    Workload w;
    bool check = false;
    obs::BenchReport report("trace_overhead");
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--repeats=", 10) == 0)
            w.repeats = std::atoi(a + 10);
        else if (std::strncmp(a, "--puts=", 7) == 0)
            w.puts = std::atoi(a + 7);
        else if (std::strncmp(a, "--bytes=", 8) == 0)
            w.bytes =
                static_cast<std::uint32_t>(std::atoi(a + 8));
        else if (std::strcmp(a, "--check") == 0)
            check = true;
        else if (report.consume_arg(a))
            ;
        else {
            std::fprintf(
                stderr,
                "usage: bench_trace_overhead [--repeats=N] "
                "[--puts=N] [--bytes=N] [--check] "
                "[--json-out[=FILE]]\n");
            return 2;
        }
    }

    ModeResult off = run_mode(obs::SpanMode::off, w);
    ModeResult flight = run_mode(obs::SpanMode::flight, w);
    ModeResult full = run_mode(obs::SpanMode::full, w);

    // Recording must be pure observation: same simulated history.
    if (flight.finish != off.finish || full.finish != off.finish)
        fatal("span recording perturbed the simulation: finish "
              "ticks off=%llu flight=%llu full=%llu",
              static_cast<unsigned long long>(off.finish),
              static_cast<unsigned long long>(flight.finish),
              static_cast<unsigned long long>(full.finish));

    double flightRatio = flight.wallMs / off.wallMs;
    double fullRatio = full.wallMs / off.wallMs;
    double simUs = ticks_to_us(off.finish);
    std::printf(
        "trace overhead: %d x %u B PUT, best of %d repeats, "
        "sim time %.1f us\n"
        "  mode     wall(ms)   vs off   events\n"
        "  off      %8.2f       --   %8llu\n"
        "  flight   %8.2f   %+5.1f%%   %8llu\n"
        "  full     %8.2f   %+5.1f%%   %8llu\n",
        w.puts, w.bytes, w.repeats, simUs, off.wallMs,
        static_cast<unsigned long long>(off.recorded),
        flight.wallMs, (flightRatio - 1.0) * 100.0,
        static_cast<unsigned long long>(flight.recorded),
        full.wallMs, (fullRatio - 1.0) * 100.0,
        static_cast<unsigned long long>(full.recorded));

    report.set("workload.puts", static_cast<std::uint64_t>(w.puts));
    report.set("workload.bytes",
               static_cast<std::uint64_t>(w.bytes));
    report.set("workload.sim_us", simUs);
    report.set("off.wall_ms", off.wallMs);
    report.set("flight.wall_ms", flight.wallMs);
    report.set("flight.ratio", flightRatio);
    report.set("flight.events", flight.recorded);
    report.set("full.wall_ms", full.wallMs);
    report.set("full.ratio", fullRatio);
    report.set("full.events", full.recorded);
    report.write();

    if (check && flightRatio > 1.05) {
        std::fprintf(stderr,
                     "FAIL: flight-recorder overhead %.1f%% exceeds "
                     "the 5%% budget\n",
                     (flightRatio - 1.0) * 100.0);
        return 1;
    }
    return 0;
}
