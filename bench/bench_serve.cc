/**
 * @file
 * Serving-layer bench: open-loop job streams through the gang
 * scheduler under three scenarios —
 *
 *   light  — arrivals well under capacity (latency floor)
 *   heavy  — arrivals pushing the admission queue (backpressure)
 *   drill  — the heavy stream plus a seeded mid-fleet cell kill
 *            (failure-driven rescheduling on the hot path)
 *
 * Per scenario: completion/shed/retry counts, simulated makespan,
 * completed-job latency (mean, p95), throughput, utilization and
 * tenant fairness, plus host wall time. All simulated quantities are
 * deterministic for a given seed, so the CI gate can hold them to
 * tight tolerances.
 *
 *   bench_serve [--quick] [--json-out[=FILE]]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "hw/config.hh"
#include "hw/machine.hh"
#include "obs/cli.hh"
#include "serve/job.hh"
#include "serve/scheduler.hh"

using namespace ap;

namespace
{

struct Scenario
{
    const char *name;
    int cells;
    int jobs;
    double arrivalUs;
    std::uint64_t seed;
    bool kill;
};

struct Outcome
{
    serve::ServeTotals tot;
    double makespanUs = 0.0;
    double meanLatencyUs = 0.0;
    double p95LatencyUs = 0.0;
    double jobsPerSec = 0.0;
    double utilization = 0.0;
    double fairness = 0.0;
    double wallS = 0.0;
};

Outcome
run_scenario(const Scenario &sc)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(sc.cells);
    // The watchdog is the unwind path for killed gangs: without it a
    // doomed member parked on a dead peer's flag would stall its
    // job's reschedule until the deadline instead of the timeout.
    cfg.retry.watchdogUs = 3000.0;
    hw::Machine m(cfg);

    serve::TrafficConfig traffic;
    traffic.jobs = sc.jobs;
    traffic.seed = sc.seed;
    traffic.meanArrivalUs = sc.arrivalUs;
    traffic.maxW = m.topology().width();
    traffic.maxH = m.topology().height();

    serve::GangScheduler sched(m, serve::ServeConfig{});
    sched.schedule_stream(serve::generate_stream(traffic));

    if (sc.kill) {
        // Aim at a cell a running gang holds once the fleet is warm,
        // like the ap_serve --drill=kill-cell path.
        double at = traffic.firstArrivalUs +
                    sc.arrivalUs * static_cast<double>(sc.jobs) * 0.35;
        m.sim().schedule_for(-1, us_to_ticks(at), [&m, &sched, &sc] {
            CellId victim = sched.pick_busy_cell(sc.seed);
            if (victim < 0)
                return;
            m.sim().schedule_after_for(victim, us_to_ticks(5.0),
                                       [&m, victim] {
                                           m.fail_cell(victim);
                                       });
        });
    }

    auto t0 = std::chrono::steady_clock::now();
    m.run_to_completion();
    auto t1 = std::chrono::steady_clock::now();
    sched.finalize();

    Outcome out;
    out.tot = sched.totals();
    out.wallS = std::chrono::duration<double>(t1 - t0).count();
    out.utilization = sched.utilization();
    out.fairness = sched.tenant_fairness();

    std::vector<double> lat;
    Tick firstSubmit = 0, lastFinish = 0;
    bool haveFirst = false;
    for (const serve::JobRecord &r : sched.jobs()) {
        if (!haveFirst || r.submitTick < firstSubmit) {
            firstSubmit = r.submitTick;
            haveFirst = true;
        }
        if (r.state == serve::JobState::completed) {
            lat.push_back(
                ticks_to_us(r.finishTick - r.submitTick));
            lastFinish = std::max(lastFinish, r.finishTick);
        }
    }
    std::sort(lat.begin(), lat.end());
    for (double v : lat)
        out.meanLatencyUs += v;
    if (!lat.empty()) {
        out.meanLatencyUs /= static_cast<double>(lat.size());
        out.p95LatencyUs =
            lat[std::min(lat.size() - 1,
                         static_cast<std::size_t>(
                             static_cast<double>(lat.size()) * 0.95))];
    }
    if (lastFinish > firstSubmit)
        out.makespanUs = ticks_to_us(lastFinish - firstSubmit);
    if (out.makespanUs > 0.0)
        out.jobsPerSec = static_cast<double>(out.tot.completed) *
                         1e6 / out.makespanUs;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("bench_serve");
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (report.consume_arg(argv[i]))
            continue;
        if (std::string(argv[i]) == "--quick")
            quick = true;
        else
            fatal("unknown argument '%s' (only --quick, "
                  "--json-out[=FILE])",
                  argv[i]);
    }

    const int scale = quick ? 1 : 2;
    const std::vector<Scenario> scenarios = {
        {"light", 16, 16 * scale, 400.0, 11, false},
        {"heavy", 16, 32 * scale, 120.0, 12, false},
        {"drill", 16, 32 * scale, 250.0, 13, true},
    };

    std::printf("Serving-layer bench: open-loop gang scheduling on a "
                "16-cell machine%s\n\n",
                quick ? " (quick)" : "");

    Table t({"Scenario", "Jobs", "Done", "Shed", "Fail", "Starve",
             "Retry", "Makespan us", "Mean lat us", "p95 lat us",
             "Jobs/s", "Util %", "Fairness", "Wall s"});

    for (const Scenario &sc : scenarios) {
        Outcome o = run_scenario(sc);
        t.add_row({sc.name, strprintf("%d", sc.jobs),
                   strprintf("%llu",
                             static_cast<unsigned long long>(
                                 o.tot.completed)),
                   strprintf("%llu",
                             static_cast<unsigned long long>(
                                 o.tot.shedQueueFull +
                                 o.tot.shedTooLarge)),
                   strprintf("%llu",
                             static_cast<unsigned long long>(
                                 o.tot.failedTerminal)),
                   strprintf("%llu",
                             static_cast<unsigned long long>(
                                 o.tot.starved)),
                   strprintf("%llu",
                             static_cast<unsigned long long>(
                                 o.tot.retried)),
                   strprintf("%.0f", o.makespanUs),
                   strprintf("%.0f", o.meanLatencyUs),
                   strprintf("%.0f", o.p95LatencyUs),
                   strprintf("%.1f", o.jobsPerSec),
                   strprintf("%.1f", o.utilization * 100.0),
                   strprintf("%.3f", o.fairness),
                   strprintf("%.3f", o.wallS)});

        std::string k = sc.name;
        report.set(k + ".jobs",
                   static_cast<std::uint64_t>(sc.jobs));
        report.set(k + ".completed", o.tot.completed);
        report.set(k + ".shed",
                   o.tot.shedQueueFull + o.tot.shedTooLarge);
        report.set(k + ".failed", o.tot.failedTerminal);
        report.set(k + ".starved", o.tot.starved);
        report.set(k + ".deadline_cancelled",
                   o.tot.deadlineCancelled);
        report.set(k + ".retries", o.tot.retried);
        report.set(k + ".attempts_killed", o.tot.attemptsKilled);
        report.set(k + ".partitions_quarantined",
                   o.tot.partitionsQuarantined);
        report.set(k + ".makespan_us", o.makespanUs);
        report.set(k + ".mean_latency_us", o.meanLatencyUs);
        report.set(k + ".p95_latency_us", o.p95LatencyUs);
        report.set(k + ".jobs_per_sec", o.jobsPerSec);
        report.set(k + ".util_pct", o.utilization * 100.0);
        report.set(k + ".fairness_x1000", o.fairness * 1000.0);
        report.set(k + ".wall_s", o.wallS);
    }

    t.print();
    if (!report.write())
        fatal("cannot write %s", report.path().c_str());
    return 0;
}
