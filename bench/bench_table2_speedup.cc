/**
 * @file
 * Reproduces Table 2: performance of the AP1000+ and of the AP1000
 * with its SPARC swapped for a SuperSPARC (software message
 * handling), both relative to the AP1000.
 *
 * Every application's trace replays under the three MLSim parameter
 * sets; speedup = T(AP1000) / T(model).
 */

#include <cstdio>

#include "apps/app.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "mlsim/params.hh"
#include "mlsim/replay.hh"

using namespace ap;
using namespace ap::apps;
using namespace ap::mlsim;

int
main()
{
    std::printf("Table 2: performance simulation relative to the "
                "AP1000 (ours / paper)\n\n");

    Params base = Params::ap1000();
    Params plus = Params::ap1000_plus();
    Params fast = Params::ap1000_fast();

    Table t({"App", "PE", "AP1000+ (ours/paper)",
             "AP1000* (ours/paper)", "T(AP1000) s"});

    for (const auto &app : standard_suite()) {
        core::Trace trace = app->generate();

        double t_base = Replay(trace, base).run().totalUs;
        double t_plus = Replay(trace, plus).run().totalUs;
        double t_fast = Replay(trace, fast).run().totalUs;

        if (t_plus <= 0 || t_fast <= 0) {
            warn("%s: degenerate replay time",
                 app->info().name.c_str());
            continue;
        }

        t.add_row({app->info().name,
                   strprintf("%d", app->info().cells),
                   strprintf("%.2f / %.2f", t_base / t_plus,
                             app->paper_speedup_plus()),
                   strprintf("%.2f / %.2f", t_base / t_fast,
                             app->paper_speedup_fast()),
                   strprintf("%.3f", t_base / 1e6)});
    }
    t.print();
    std::printf("\nAP1000* = AP1000 with the SPARC replaced by a "
                "SuperSPARC, message handling in software.\n");
    return 0;
}
