/**
 * @file
 * Reproduces Table 2: performance of the AP1000+ and of the AP1000
 * with its SPARC swapped for a SuperSPARC (software message
 * handling), both relative to the AP1000.
 *
 * Every application's trace replays under the three MLSim parameter
 * sets; speedup = T(AP1000) / T(model).
 */

#include <cctype>
#include <cstdio>

#include "apps/app.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "mlsim/params.hh"
#include "mlsim/replay.hh"
#include "obs/cli.hh"

using namespace ap;
using namespace ap::apps;
using namespace ap::mlsim;

namespace
{

/** App names ("TC no st") as JSON path segments. */
std::string
key(std::string s)
{
    for (char &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("table2_speedup");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            fatal("unknown argument '%s' (only --json-out[=FILE])",
                  argv[i]);

    std::printf("Table 2: performance simulation relative to the "
                "AP1000 (ours / paper)\n\n");

    Params base = Params::ap1000();
    Params plus = Params::ap1000_plus();
    Params fast = Params::ap1000_fast();

    Table t({"App", "PE", "AP1000+ (ours/paper)",
             "AP1000* (ours/paper)", "T(AP1000) s"});

    for (const auto &app : standard_suite()) {
        core::Trace trace = app->generate();

        double t_base = Replay(trace, base).run().totalUs;
        double t_plus = Replay(trace, plus).run().totalUs;
        double t_fast = Replay(trace, fast).run().totalUs;

        if (t_plus <= 0 || t_fast <= 0) {
            warn("%s: degenerate replay time",
                 app->info().name.c_str());
            continue;
        }

        t.add_row({app->info().name,
                   strprintf("%d", app->info().cells),
                   strprintf("%.2f / %.2f", t_base / t_plus,
                             app->paper_speedup_plus()),
                   strprintf("%.2f / %.2f", t_base / t_fast,
                             app->paper_speedup_fast()),
                   strprintf("%.3f", t_base / 1e6)});

        std::string k = key(app->info().name);
        report.set(k + ".cells",
                   static_cast<std::uint64_t>(app->info().cells));
        report.set(k + ".speedup_plus", t_base / t_plus);
        report.set(k + ".speedup_fast", t_base / t_fast);
        report.set(k + ".paper_speedup_plus",
                   app->paper_speedup_plus());
        report.set(k + ".paper_speedup_fast",
                   app->paper_speedup_fast());
        report.set(k + ".t_ap1000_us", t_base);
    }
    t.print();
    std::printf("\nAP1000* = AP1000 with the SPARC replaced by a "
                "SuperSPARC, message handling in software.\n");
    return report.write() ? 0 : 1;
}
