/**
 * @file
 * Parallel-kernel scaling sweep: events/second of the sharded event
 * kernel on a PHOLD-style torus workload, over machine sizes
 * {8x8, 16x16, 32x32, 64x64} cells and {1, 2, 4, 8} worker threads.
 *
 * The workload drives the kernel directly (no functional machine):
 * every cell carries one logical event in flight; executing it mixes
 * the cell's state and schedules a successor either on the cell
 * itself (short delay, same shard) or on a torus neighbour (delay >=
 * the lookahead, usually a cross-shard handoff). That is the
 * communication shape of the functional machine — mostly-local
 * traffic with conservative-window handoffs — reduced to pure kernel
 * overhead, so the sweep isolates what sharding buys.
 *
 * threads=1 runs the sequential kernel (the same degenerate path the
 * machine uses); rows report events/sec and the speedup over the
 * sequential row of the same size.
 *
 * --window-batch appends a small-torus sweep that prices the
 * conservative-window barrier: events per window, wall microseconds
 * per window, and the per-window overhead versus the sequential
 * kernel's event rate. Small machines close only a handful of events
 * per window, so the two barriers bounding each window dominate —
 * the numbers pin the starting point for window batching / wakeup
 * elision (ROADMAP item 1's remaining headroom).
 *
 *   bench_scale [--quick] [--window-batch] [--json-out[=FILE]]
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "obs/cli.hh"
#include "sim/shardq.hh"

using namespace ap;
using namespace ap::sim;

namespace
{

/** Cross-shard lower bound, in the T-net one-hop ballpark. */
constexpr Tick lookahead = 320;

struct CaseResult
{
    std::uint64_t events = 0;
    double seconds = 0.0;
    std::uint64_t windows = 0;
};

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

/**
 * One sweep point: @p side x @p side cells, @p threads workers,
 * events until @p horizon model ticks.
 */
CaseResult
run_case(int side, int threads, Tick horizon)
{
    const int cells = side * side;

    std::unique_ptr<Simulator> owner;
    if (threads <= 1) {
        owner = std::make_unique<Simulator>();
    } else {
        ShardConfig sc;
        sc.shards = threads;
        sc.lookahead = lookahead;
        sc.affinityMap = [cells, threads](int a) {
            if (a < 0)
                return 0;
            if (a >= cells)
                return threads - 1;
            return static_cast<int>(static_cast<long long>(a) *
                                    threads / cells);
        };
        owner = std::make_unique<ShardedSimulator>(sc);
    }
    Simulator &sim = *owner;

    std::vector<std::uint64_t> state(
        static_cast<std::size_t>(cells));
    for (int c = 0; c < cells; ++c)
        state[static_cast<std::size_t>(c)] =
            0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(c);

    // One event in flight per cell (classic PHOLD population).
    std::function<void(int, Tick)> fire = [&](int cell, Tick when) {
        sim.schedule_for(cell, when, [&, cell]() {
            std::uint64_t &s =
                state[static_cast<std::size_t>(cell)];
            s = mix(s);
            // 3 of 4 successors stay local; the rest hop to a torus
            // neighbour and pay at least the lookahead.
            int next = cell;
            Tick delay = 40 + static_cast<Tick>(s % 64);
            if ((s & 3) == 0) {
                int x = cell % side;
                int y = cell / side;
                switch ((s >> 2) & 3) {
                  case 0: x = (x + 1) % side; break;
                  case 1: x = (x + side - 1) % side; break;
                  case 2: y = (y + 1) % side; break;
                  default: y = (y + side - 1) % side; break;
                }
                next = y * side + x;
                delay = lookahead + static_cast<Tick>(s % 256);
            }
            Tick when2 = sim.now() + delay;
            if (when2 < horizon)
                fire(next, when2);
        });
    };
    for (int c = 0; c < cells; ++c)
        fire(c, static_cast<Tick>(
                    state[static_cast<std::size_t>(c)] % 128));

    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    auto t1 = std::chrono::steady_clock::now();

    CaseResult r;
    r.events = sim.executed();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (auto *sh = dynamic_cast<ShardedSimulator *>(&sim))
        r.windows = sh->windows();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("bench_scale");
    bool quick = false;
    bool windowBatch = false;
    for (int i = 1; i < argc; ++i) {
        if (report.consume_arg(argv[i]))
            continue;
        if (std::string(argv[i]) == "--quick")
            quick = true;
        else if (std::string(argv[i]) == "--window-batch")
            windowBatch = true;
        else
            fatal("unknown argument '%s' (only --quick, "
                  "--window-batch, --json-out[=FILE])",
                  argv[i]);
    }

    const std::vector<int> sides =
        quick ? std::vector<int>{8, 16}
              : std::vector<int>{8, 16, 32, 64};
    const std::vector<int> threadCounts =
        quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    const Tick horizon = quick ? 20000 : 200000;

    std::printf("Parallel-kernel scaling: PHOLD torus, lookahead "
                "%llu ticks, horizon %llu ticks\n\n",
                static_cast<unsigned long long>(lookahead),
                static_cast<unsigned long long>(horizon));

    Table t({"Cells", "Threads", "Events", "Wall s", "Events/s",
             "Speedup", "Windows"});

    for (int side : sides) {
        double baseEps = 0.0;
        for (int threads : threadCounts) {
            CaseResult r = run_case(side, threads, horizon);
            double eps =
                r.seconds > 0.0
                    ? static_cast<double>(r.events) / r.seconds
                    : 0.0;
            if (threads == 1)
                baseEps = eps;
            double speedup = baseEps > 0.0 ? eps / baseEps : 0.0;
            t.add_row({strprintf("%dx%d", side, side),
                       strprintf("%d", threads),
                       strprintf("%llu",
                                 static_cast<unsigned long long>(
                                     r.events)),
                       strprintf("%.3f", r.seconds),
                       strprintf("%.0f", eps),
                       strprintf("%.2f", speedup),
                       strprintf("%llu",
                                 static_cast<unsigned long long>(
                                     r.windows))});

            std::string k = strprintf("s%dx%d.t%d", side, side,
                                      threads);
            report.set(k + ".events", r.events);
            report.set(k + ".wall_s", r.seconds);
            report.set(k + ".events_per_sec", eps);
            report.set(k + ".speedup_vs_t1", speedup);
        }
    }

    t.print();

    // The barrier-headroom note: on small tori each conservative
    // window closes only a few events, so the two barriers bounding
    // it dominate the wall clock. Price that per window by comparing
    // the sharded wall time against the time the same events would
    // take at the sequential kernel's rate spread over the workers —
    // everything left is window overhead (barriers, wakeups, merge).
    if (windowBatch) {
        std::printf("\nWindow-batch headroom (small tori): per-"
                    "window cost to recover by batching windows\n\n");
        Table wt({"Cells", "Threads", "Events/win", "Wall us/win",
                  "Overhead us/win", "Overhead %"});
        for (int side : {8, 16}) {
            CaseResult seq = run_case(side, 1, horizon);
            double seqEps =
                seq.seconds > 0.0
                    ? static_cast<double>(seq.events) / seq.seconds
                    : 0.0;
            for (int threads : {2, 4}) {
                CaseResult r = run_case(side, threads, horizon);
                if (r.windows == 0 || seqEps <= 0.0)
                    continue;
                double wallUsPerWin =
                    r.seconds * 1e6 /
                    static_cast<double>(r.windows);
                double idealS = static_cast<double>(r.events) /
                                (seqEps * threads);
                double overheadUsPerWin =
                    (r.seconds - idealS) * 1e6 /
                    static_cast<double>(r.windows);
                double eventsPerWin =
                    static_cast<double>(r.events) /
                    static_cast<double>(r.windows);
                wt.add_row(
                    {strprintf("%dx%d", side, side),
                     strprintf("%d", threads),
                     strprintf("%.1f", eventsPerWin),
                     strprintf("%.2f", wallUsPerWin),
                     strprintf("%.2f", overheadUsPerWin),
                     strprintf("%.0f", 100.0 * overheadUsPerWin /
                                           wallUsPerWin)});
                std::string k = strprintf("window_batch.s%dx%d.t%d",
                                          side, side, threads);
                report.set(k + ".events_per_window", eventsPerWin);
                report.set(k + ".wall_us_per_window", wallUsPerWin);
                report.set(k + ".overhead_us_per_window",
                           overheadUsPerWin);
            }
        }
        wt.print();
        std::printf(
            "\nnote: Overhead us/win is the wall time a window costs "
            "beyond executing its\nevents at the sequential rate "
            "across the workers. Batching k windows per\nbarrier (or "
            "eliding wakeups of idle shards) can recover up to that "
            "times\n(k-1)/k — the pinned target for the next kernel "
            "PR.\n");
    }

    if (!report.write())
        fatal("cannot write %s", report.path().c_str());
    return 0;
}
