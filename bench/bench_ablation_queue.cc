/**
 * @file
 * Queue-overflow ablation (Section 4.1 / 5.4).
 *
 * The paper's MLSim "does not include a queue overflow model ...
 * MLSim assumes that queues are long enough." The functional machine
 * models the full mechanism — spill to DRAM, OS refill interrupt —
 * so this bench quantifies what the paper could not: how completion
 * time and interrupt count vary with the MSC+ queue capacity under a
 * PUT burst.
 */

#include <cstdio>

#include "base/logging.hh"
#include "base/table.hh"
#include "core/ap1000p.hh"
#include "obs/cli.hh"

using namespace ap;
using namespace ap::core;

namespace
{

struct Result
{
    double simUs;
    std::uint64_t spills;
    std::uint64_t refills;
    std::uint64_t maxBacklog;
};

Result
burst(int queue_words, int puts, std::uint32_t bytes)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.memBytesPerCell = 8 << 20;
    cfg.queueCapacityWords = queue_words;
    hw::Machine m(cfg);

    Result r{};
    run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(bytes);
        Addr rf = ctx.alloc_flag();
        ctx.barrier();
        Tick t0 = ctx.now();
        if (ctx.id() == 0)
            for (int i = 0; i < puts; ++i)
                ctx.put(1, buf, buf, bytes, no_flag, rf);
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, static_cast<std::uint32_t>(puts));
            r.simUs = ticks_to_us(ctx.now() - t0);
        }
    });
    const auto &qs = m.cell(0).msc().user_queue().stats();
    r.spills = qs.spills;
    r.refills = qs.refillInterrupts;
    r.maxBacklog = qs.maxSpillDepth;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("ablation_queue");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            fatal("unknown argument '%s' (only --json-out[=FILE])",
                  argv[i]);

    std::printf("Queue-overflow ablation: 256 PUTs of 256 bytes, "
                "MSC+ queue capacity sweep\n\n");

    Table t({"Queue words", "Commands held", "Sim us", "Spills",
             "Refill intrs", "Max DRAM backlog"});
    for (int words : {8, 16, 32, 64, 128, 256, 1024, 4096}) {
        Result r = burst(words, 256, 256);
        t.add_row({strprintf("%d", words),
                   strprintf("%d", words / 8),
                   Table::num(r.simUs, 1),
                   strprintf("%llu",
                             static_cast<unsigned long long>(
                                 r.spills)),
                   strprintf("%llu",
                             static_cast<unsigned long long>(
                                 r.refills)),
                   strprintf("%llu",
                             static_cast<unsigned long long>(
                                 r.maxBacklog))});

        std::string k = strprintf("words%d", words);
        report.set(k + ".sim_us", r.simUs);
        report.set(k + ".spills", r.spills);
        report.set(k + ".refill_interrupts", r.refills);
        report.set(k + ".max_dram_backlog", r.maxBacklog);
    }
    t.print();

    std::printf("\nThe paper's hardware point (64 words = 8 "
                "commands) sits near the knee:\nsmaller queues "
                "multiply OS refill interrupts; past the burst size "
                "the\noverflow machinery never engages and time "
                "flattens at the DMA-pipeline bound.\n");
    return report.write() ? 0 : 1;
}
