/**
 * @file
 * Reproduces Table 3: application statistics (per-PE operation
 * counts and mean PUT/GET message size) for the eight workloads.
 *
 * Each application's generated trace is measured with
 * apps::measure_stats() and printed next to the paper's row.
 */

#include <cstdio>

#include "apps/app.hh"
#include "base/logging.hh"
#include "base/table.hh"

using namespace ap;
using namespace ap::apps;

namespace
{

std::string
pair_cell(double ours, double paper)
{
    return strprintf("%.1f / %.1f", ours, paper);
}

} // namespace

int
main()
{
    std::printf("Table 3: application statistics "
                "(ours / paper, per PE)\n\n");

    Table t({"App", "PE", "SEND", "Gop", "VGop", "Sync", "PUT",
             "PUTS", "GET", "GETS", "Msg size"});

    for (const auto &app : standard_suite()) {
        core::Trace trace = app->generate();
        Table3Row m = measure_stats(trace);
        Table3Row p = app->paper_stats();

        t.add_row({app->info().name, strprintf("%d", m.pe),
                   pair_cell(m.send, p.send), pair_cell(m.gop, p.gop),
                   pair_cell(m.vgop, p.vgop),
                   pair_cell(m.sync, p.sync), pair_cell(m.put, p.put),
                   pair_cell(m.puts, p.puts), pair_cell(m.get, p.get),
                   pair_cell(m.gets, p.gets),
                   pair_cell(m.msgSize, p.msgSize)});
    }
    t.print();
    std::printf("\nSEND includes the (P-1)/P per-cell chain sends of "
                "each vector reduction;\nmessage size averages "
                "PUT/GET payloads without acknowledge probes.\n");
    return 0;
}
