/**
 * @file
 * Reproduces Table 3: application statistics (per-PE operation
 * counts and mean PUT/GET message size) for the eight workloads.
 *
 * Each application's generated trace is measured with
 * apps::measure_stats() and printed next to the paper's row.
 */

#include <cctype>
#include <cstdio>

#include "apps/app.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "obs/cli.hh"

using namespace ap;
using namespace ap::apps;

namespace
{

std::string
pair_cell(double ours, double paper)
{
    return strprintf("%.1f / %.1f", ours, paper);
}

/** App names ("TC no st") as JSON path segments. */
std::string
key(std::string s)
{
    for (char &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("table3_appstats");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            fatal("unknown argument '%s' (only --json-out[=FILE])",
                  argv[i]);

    std::printf("Table 3: application statistics "
                "(ours / paper, per PE)\n\n");

    Table t({"App", "PE", "SEND", "Gop", "VGop", "Sync", "PUT",
             "PUTS", "GET", "GETS", "Msg size"});

    for (const auto &app : standard_suite()) {
        core::Trace trace = app->generate();
        Table3Row m = measure_stats(trace);
        Table3Row p = app->paper_stats();

        t.add_row({app->info().name, strprintf("%d", m.pe),
                   pair_cell(m.send, p.send), pair_cell(m.gop, p.gop),
                   pair_cell(m.vgop, p.vgop),
                   pair_cell(m.sync, p.sync), pair_cell(m.put, p.put),
                   pair_cell(m.puts, p.puts), pair_cell(m.get, p.get),
                   pair_cell(m.gets, p.gets),
                   pair_cell(m.msgSize, p.msgSize)});

        std::string k = key(app->info().name);
        report.set(k + ".pe", static_cast<std::uint64_t>(m.pe));
        report.set(k + ".send", m.send);
        report.set(k + ".gop", m.gop);
        report.set(k + ".vgop", m.vgop);
        report.set(k + ".sync", m.sync);
        report.set(k + ".put", m.put);
        report.set(k + ".puts", m.puts);
        report.set(k + ".get", m.get);
        report.set(k + ".gets", m.gets);
        report.set(k + ".msg_size", m.msgSize);
    }
    t.print();
    std::printf("\nSEND includes the (P-1)/P per-cell chain sends of "
                "each vector reduction;\nmessage size averages "
                "PUT/GET payloads without acknowledge probes.\n");
    return report.write() ? 0 : 1;
}
