/**
 * @file
 * Acknowledgement-policy ablation (Section 5.4).
 *
 * "Current implementation of the VPP Fortran run-time system
 * requires an acknowledgment for every put() and put_stride() ...
 * Since no PUT operations except the last PUT for every destination
 * cell need acknowledgment, the number of get() operations can be
 * decreased dramatically. The VPP Fortran run-time system is now
 * under improvement for this purpose."
 *
 * This bench runs that improvement: a TOMCATV-style aggregated
 * OVERLAP FIX over several arrays (multiple PUTs per neighbour per
 * completion round) under ack-every-PUT versus
 * ack-last-PUT-per-destination, on the functional machine.
 */

#include <cstdio>

#include "base/logging.hh"
#include "base/table.hh"
#include "core/ap1000p.hh"
#include "obs/cli.hh"
#include "runtime/rts.hh"

using namespace ap;
using namespace ap::core;
using namespace ap::rt;

namespace
{

struct Result
{
    double simUs = 0;
    std::uint64_t probes = 0;       ///< ack probes, whole machine
    std::uint64_t messages = 0;     ///< all T-net messages
};

/** @p arrays overlap areas exchanged together, @p rounds times. */
Result
halo_workload(AckPolicy policy, int cells, int arrays, int rounds)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 4 << 20;
    hw::Machine m(cfg);

    Result out{};
    std::vector<std::uint64_t> probes(
        static_cast<std::size_t>(cells), 0);
    run_spmd(m, [&](Context &ctx) {
        std::vector<std::unique_ptr<GArray2D>> as;
        std::vector<GArray2D *> ptrs;
        for (int a = 0; a < arrays; ++a) {
            as.push_back(std::make_unique<GArray2D>(
                ctx, 64, 32, SplitDim::rows, 1));
            ptrs.push_back(as.back().get());
        }
        Runtime rts(ctx, policy);
        for (GArray2D *a : ptrs) {
            int lo = a->lo(ctx.id()), cnt = a->count(ctx.id());
            for (int r = lo; r < lo + cnt; ++r)
                for (int c = 0; c < 32; ++c)
                    a->set_local(r, c, r + c);
        }
        ctx.barrier();
        Tick t0 = ctx.now();
        for (int r = 0; r < rounds; ++r)
            rts.overlap_fix_many(ptrs);
        if (ctx.id() == 0)
            out.simUs = ticks_to_us(ctx.now() - t0);
        probes[static_cast<std::size_t>(ctx.id())] =
            ctx.stats().acksRequested;
    });
    for (std::uint64_t p : probes)
        out.probes += p;
    out.messages = m.tnet().stats().messages;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("ablation_ack");
    for (int i = 1; i < argc; ++i)
        if (!report.consume_arg(argv[i]))
            fatal("unknown argument '%s' (only --json-out[=FILE])",
                  argv[i]);

    std::printf("Acknowledge-policy ablation (Section 5.4): "
                "aggregated OVERLAP FIX over N arrays,\n10 rounds, "
                "functional machine\n\n");

    Table t({"Cells", "Arrays", "Policy", "Sim us", "Ack probes",
             "T-net msgs"});
    for (int cells : {4, 16}) {
        for (int arrays : {1, 2, 4, 8}) {
            for (AckPolicy pol : {AckPolicy::every_put,
                                  AckPolicy::last_put_per_dest}) {
                Result r = halo_workload(pol, cells, arrays, 10);
                std::string k = strprintf(
                    "cells%d.arrays%d.%s", cells, arrays,
                    pol == AckPolicy::every_put ? "every_put"
                                                : "last_put");
                report.set(k + ".sim_us", r.simUs);
                report.set(k + ".ack_probes", r.probes);
                report.set(k + ".tnet_messages", r.messages);
                t.add_row(
                    {strprintf("%d", cells),
                     strprintf("%d", arrays),
                     pol == AckPolicy::every_put ? "every PUT"
                                                 : "last PUT/dest",
                     Table::num(r.simUs, 1),
                     strprintf("%llu",
                               static_cast<unsigned long long>(
                                   r.probes)),
                     strprintf("%llu",
                               static_cast<unsigned long long>(
                                   r.messages))});
            }
        }
    }
    t.print();
    std::printf("\nWith N arrays per completion round, every-PUT "
                "issues N probes per neighbour\nwhile last-PUT "
                "issues one: the probe count (and the GET traffic it "
                "implies)\ndrops by the aggregation factor, as "
                "Section 5.4 predicts.\n");
    return report.write() ? 0 : 1;
}
