/**
 * @file
 * Machine-level integration tests: network statistics, determinism
 * across runs, back-to-back SPMD programs on one machine, the
 * link-contention extension, and end-to-end functional-vs-MLSim
 * consistency for a mixed workload.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "core/ap1000p.hh"
#include "mlsim/params.hh"
#include "mlsim/replay.hh"
#include "mlsim/trace_file.hh"
#include "obs/json.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    return cfg;
}

/** A mixed ring workload used by several tests. */
void
ring_program(Context &ctx, int iters)
{
    Addr buf = ctx.alloc(2048);
    Addr rf = ctx.alloc_flag();
    CellId right = (ctx.id() + 1) % ctx.nprocs();
    for (int it = 0; it < iters; ++it) {
        ctx.compute_us(20.0 + ctx.id() % 3);
        ctx.put(right, buf, buf, 1024, no_flag, rf, true);
        ctx.wait_all_acks();
        ctx.wait_flag(rf, static_cast<std::uint32_t>(it + 1));
        ctx.barrier();
    }
    ctx.allreduce(1.0, ReduceOp::sum);
}

} // namespace

TEST(Machine, TnetStatsMatchWorkload)
{
    hw::Machine m(small(4));
    run_spmd(m, [](Context &ctx) { ring_program(ctx, 3); });
    // 3 iterations x 4 cells x (1 put + 1 probe + 1 reply) plus
    // collective traffic: at least the puts are visible.
    EXPECT_GE(m.tnet().stats().messages, 36u);
    EXPECT_GE(m.tnet().stats().payloadBytes, 3u * 4u * 1024u);
    EXPECT_GT(m.tnet().stats().distance.scalar().mean(), 0.0);
}

TEST(Machine, RunsAreDeterministic)
{
    Tick finish[2];
    std::uint64_t events[2];
    for (int run = 0; run < 2; ++run) {
        hw::Machine m(small(8));
        auto r = run_spmd(m,
                          [](Context &ctx) { ring_program(ctx, 5); });
        ASSERT_FALSE(r.deadlock);
        finish[run] = r.finishTick;
        events[run] = m.sim().executed();
    }
    EXPECT_EQ(finish[0], finish[1]);
    EXPECT_EQ(events[0], events[1]);
}

TEST(Machine, BackToBackProgramsShareOneMachine)
{
    hw::Machine m(small(4));
    auto r1 = run_spmd(m, [](Context &ctx) { ring_program(ctx, 2); });
    ASSERT_FALSE(r1.deadlock);
    Tick t1 = r1.finishTick;
    auto r2 = run_spmd(m, [](Context &ctx) { ring_program(ctx, 2); });
    ASSERT_FALSE(r2.deadlock);
    // Time keeps advancing; the second run starts where the first
    // ended.
    EXPECT_GT(r2.finishTick, t1);
}

TEST(Machine, LinkContentionSlowsSharedIntermediateLinks)
{
    // On the 2x4 torus of an 8-cell machine, dimension-order routes
    // 4 -> 1 and 6 -> 3 both traverse the directed link 5 -> 3 while
    // ending at *different* receivers (so receive-DMA serialization
    // cannot mask the effect). With link contention the second
    // message waits out the first's body on the shared link.
    ASSERT_EQ(net::Torus::squarest(8).width(), 2);
    auto run_with = [](bool contention) {
        hw::MachineConfig cfg = small(8);
        cfg.tnet.linkContention = contention;
        hw::Machine m(cfg);
        auto r = run_spmd(m, [](Context &ctx) {
            constexpr std::uint32_t bytes = 1 << 16;
            Addr buf = ctx.alloc(bytes);
            Addr rf = ctx.alloc_flag();
            ctx.barrier();
            if (ctx.id() == 4)
                ctx.put(1, buf, buf, bytes, no_flag, rf);
            if (ctx.id() == 6)
                ctx.put(3, buf, buf, bytes, no_flag, rf);
            if (ctx.id() == 1 || ctx.id() == 3)
                ctx.wait_flag(rf, 1);
            ctx.barrier();
        });
        EXPECT_FALSE(r.deadlock);
        return r.finishTick;
    };
    Tick plain = run_with(false);
    Tick contended = run_with(true);
    EXPECT_GT(contended, plain);
    // Roughly one extra message body on the shared link.
    EXPECT_GT(contended - plain, us_to_ticks(0.04 * (1 << 16) / 2));
}

TEST(Machine, TlbSeesTrafficDuringDma)
{
    hw::Machine m(small(2));
    run_spmd(m, [](Context &ctx) {
        Addr buf = ctx.alloc(64 << 10); // crosses 16 pages
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0)
            ctx.put(1, buf, buf, 64 << 10, no_flag, rf);
        if (ctx.id() == 1)
            ctx.wait_flag(rf, 1);
        ctx.barrier();
    });
    const auto &tlb0 = m.cell(0).mc().mmu().stats();
    const auto &tlb1 = m.cell(1).mc().mmu().stats();
    // Gather on 0 and scatter on 1 both walked multiple pages.
    EXPECT_GE(tlb0.hits + tlb0.misses, 16u);
    EXPECT_GE(tlb1.hits + tlb1.misses, 16u);
    EXPECT_EQ(tlb0.faults, 0u);
}

TEST(Machine, FunctionalTraceFileReplayPipeline)
{
    // The full workflow of Section 5: run on the "real machine",
    // dump the trace to its file format, read it back, replay under
    // both models, and check the hardware model wins.
    hw::Machine m(small(8));
    Trace trace;
    auto r = run_spmd(
        m, [](Context &ctx) { ring_program(ctx, 10); }, &trace);
    ASSERT_FALSE(r.deadlock);

    std::string text = mlsim::trace_to_text(trace);
    Trace loaded = mlsim::trace_from_text(text);
    ASSERT_EQ(loaded.total_events(), trace.total_events());

    double base =
        mlsim::Replay(loaded, mlsim::Params::ap1000()).run().totalUs;
    double plus =
        mlsim::Replay(loaded, mlsim::Params::ap1000_plus())
            .run()
            .totalUs;
    EXPECT_LT(plus, base);
}

TEST(Machine, StatsJsonRoundTripsWithPerCellCounters)
{
    hw::Machine m(small(4));
    run_spmd(m, [](Context &ctx) { ring_program(ctx, 3); });

    std::string err;
    EXPECT_TRUE(obs::json_valid(m.stats_json(), &err)) << err;
    EXPECT_TRUE(obs::json_valid(m.stats_json(false), &err)) << err;

    const obs::StatsRegistry &r = m.stats_registry();
    for (int c = 0; c < 4; ++c) {
        std::string p = strprintf("cell%d.", c);
        EXPECT_GT(r.value(p + "msc.puts_sent"), 0u) << c;
        EXPECT_NE(r.find(p + "msc.user_queue.pushes"), nullptr);
        EXPECT_NE(r.find(p + "msc.user_queue.max_hw_depth"),
                  nullptr);
        EXPECT_NE(r.find(p + "mc.flag_increments"), nullptr);
        EXPECT_NE(r.find(p + "commreg.stores"), nullptr);
        EXPECT_NE(r.find(p + "mmu.tlb_hits"), nullptr);
        EXPECT_NE(r.find(p + "ring.deposits"), nullptr);
    }
    // 3 iterations x 4 cells, one data PUT each.
    EXPECT_EQ(r.sum("*.msc.puts_sent"), 12u);

    // The on-disk dump is the same validated document.
    std::string path = testing::TempDir() + "ap_stats_rt.json";
    ASSERT_TRUE(m.dump_stats(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_TRUE(obs::json_valid(ss.str(), &err)) << err;
    std::remove(path.c_str());
}

TEST(Machine, FaultHookCoversEveryCell)
{
    hw::Machine m(small(4));
    int faults = 0;
    m.set_fault_hook([&](CellId, Addr, bool) { ++faults; });
    set_quiet(true);
    run_spmd(m, [](Context &ctx) {
        if (ctx.id() == 2)
            ctx.cell().mc().mmu().unmap(0x40000);
        ctx.barrier();
        Addr buf = ctx.alloc(32);
        if (ctx.id() != 2)
            ctx.put(2, 0x40000, buf, 32, no_flag, no_flag);
        ctx.barrier();
    });
    set_quiet(false);
    EXPECT_EQ(faults, 3);
    EXPECT_EQ(m.cell(2).msc().stats().remoteFaults, 3u);
}
