#include "harness.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <span>

#include "base/logging.hh"
#include "base/random.hh"
#include "core/program.hh"
#include "sim/eventq.hh"

namespace ap::harness
{

const char *
to_string(OpKind kind)
{
    switch (kind) {
      case OpKind::write:
        return "write";
      case OpKind::read:
        return "read";
      case OpKind::barrier:
        return "barrier";
      case OpKind::put_burst:
        return "put_burst";
      case OpKind::sendrecv:
        return "sendrecv";
      case OpKind::allreduce:
        return "allreduce";
      case OpKind::bcast:
        return "bcast";
    }
    return "?";
}

std::string
Op::describe() const
{
    return strprintf("%-9s cell=%-2d peer=%-2d slot=%d size=%-3u "
                     "stamp=%#llx",
                     to_string(kind), cell, peer, slot, size,
                     static_cast<unsigned long long>(stamp));
}

std::string
describe(const OpProgram &prog)
{
    std::string out =
        strprintf("program: %d cells, %zu ops\n", prog.cells,
                  prog.ops.size());
    for (const Op &op : prog.ops)
        out += "  " + op.describe() + "\n";
    return out;
}

OpProgram
make_program(std::uint64_t seed, int cells, int op_count,
             bool lossless_ops)
{
    if (cells < 2)
        fatal("harness programs need at least 2 cells");
    Random rng(seed);
    OpProgram prog;
    prog.cells = cells;
    prog.ops.reserve(static_cast<std::size_t>(op_count));
    std::vector<int> writes(static_cast<std::size_t>(cells), 0);

    auto random_peer = [&](CellId me) {
        return static_cast<CellId>(
            (me + 1 +
             static_cast<CellId>(rng.below(
                 static_cast<std::uint64_t>(cells - 1)))) %
            cells);
    };

    for (int i = 0; i < op_count; ++i) {
        Op op;
        op.stamp = rng.next() | 1; // never zero: zero is "unwritten"
        op.size = static_cast<std::uint32_t>(8 << rng.below(6));
        std::uint64_t pick = rng.below(100);

        if (lossless_ops) {
            if (pick < 35) {
                op.kind = OpKind::put_burst;
                op.cell = static_cast<CellId>(
                    rng.below(static_cast<std::uint64_t>(cells)));
                op.peer = random_peer(op.cell);
                op.slot = static_cast<int>(
                    rng.below(slots_per_writer));
            } else if (pick < 55) {
                op.kind = OpKind::sendrecv;
                op.peer = static_cast<CellId>(
                    1 + rng.below(
                            static_cast<std::uint64_t>(cells - 1)));
            } else if (pick < 65) {
                op.kind = OpKind::allreduce;
            } else if (pick < 80) {
                op.kind = OpKind::bcast;
            } else if (pick < 90) {
                op.kind = OpKind::barrier;
            } else {
                op.kind = OpKind::write;
                op.cell = static_cast<CellId>(
                    rng.below(static_cast<std::uint64_t>(cells)));
                op.peer = random_peer(op.cell);
                op.slot = static_cast<int>(
                    rng.below(slots_per_writer));
            }
        } else {
            // Verified vocabulary. Writes get a fresh slot per writer
            // (see slots_per_writer); once a writer runs out it reads
            // instead.
            if (pick < 50) {
                CellId c = static_cast<CellId>(
                    rng.below(static_cast<std::uint64_t>(cells)));
                if (writes[static_cast<std::size_t>(c)] <
                    slots_per_writer) {
                    op.kind = OpKind::write;
                    op.cell = c;
                    op.peer = random_peer(c);
                    op.slot = writes[static_cast<std::size_t>(c)]++;
                } else {
                    op.kind = OpKind::read;
                    op.cell = c;
                    op.peer = random_peer(c);
                    op.slot = static_cast<int>(
                        rng.below(slots_per_writer));
                }
            } else if (pick < 80) {
                op.kind = OpKind::read;
                op.cell = static_cast<CellId>(
                    rng.below(static_cast<std::uint64_t>(cells)));
                op.peer = random_peer(op.cell);
                op.slot = static_cast<int>(
                    rng.below(slots_per_writer));
            } else {
                op.kind = OpKind::barrier;
            }
        }
        prog.ops.push_back(op);
    }
    return prog;
}

namespace
{

/** Expand a stamp into its payload pattern. */
std::vector<std::uint8_t>
pattern(std::uint64_t stamp, std::uint32_t size)
{
    Random rng(stamp);
    std::vector<std::uint8_t> bytes(size);
    for (std::uint32_t i = 0; i < size; i += 8) {
        std::uint64_t w = rng.next();
        std::memcpy(bytes.data() + i,
                    &w, std::min<std::uint32_t>(8, size - i));
    }
    return bytes;
}

constexpr Addr
slot_offset(CellId writer, int slot)
{
    return static_cast<Addr>(writer) * slots_per_writer * slot_bytes +
           static_cast<Addr>(slot) * slot_bytes;
}

} // namespace

hw::RetryPolicy
harness_retry()
{
    hw::RetryPolicy retry;
    retry.timeoutUs = 2000.0;
    retry.maxRetries = 12;
    return retry;
}

RunOutcome
run_program(const OpProgram &prog, const sim::FaultPlan &plan,
            const hw::RetryPolicy &retry, const obs::ObsOptions &obs,
            bool reliable, int threads, bool deterministic,
            bool collectStats)
{
    hw::MachineConfig cfg =
        hw::MachineConfig::ap1000_plus(prog.cells);
    cfg.memBytesPerCell = 1 << 20;
    cfg.faults = plan;
    cfg.retry = retry;
    cfg.reliableNet = reliable;
    cfg.threads = threads;
    cfg.deterministic = deterministic;
    hw::Machine m(cfg);
    sim::TickHistory hist;
    m.sim().set_history(&hist);
    if (!obs.traceOut.empty())
        m.enable_tracing();
    if (obs.timeline_enabled())
        m.enable_timeline(obs.timelinePeriodUs);

    const std::size_t region_bytes =
        static_cast<std::size_t>(prog.cells) * slots_per_writer *
        slot_bytes;
    std::vector<Addr> regionBase(
        static_cast<std::size_t>(prog.cells), 0);

    RunOutcome out;
    // Cell bodies on different shards may flag errors concurrently.
    std::atomic<int> dataErrs{0};
    obs::StatsRegistry::Snapshot statsBefore;
    if (collectStats)
        statsBefore = m.stats_registry().snapshot();
    core::SpmdResult result = core::run_spmd(m, [&](core::Context
                                                        &ctx) {
        CellId me = ctx.id();
        int p = ctx.nprocs();
        Addr region = ctx.alloc(region_bytes);
        regionBase[static_cast<std::size_t>(me)] = region;
        // Staging areas: put_burst gathers its payload after issue
        // returns, so each burst element needs its own buffer.
        Addr staging = ctx.alloc(8 * slot_bytes);
        Addr readBuf = ctx.alloc(slot_bytes);
        // send() has no completion flag, so its staging buffer must
        // stay untouched until the send DMA gathers it — which a
        // forced queue spill can delay past the next op. Every
        // sendrecv therefore gets a private send slot; the recv side
        // may share one buffer (recv blocks and copies out).
        std::size_t sendrecvOps = 0;
        for (const Op &o : prog.ops)
            if (o.kind == OpKind::sendrecv)
                ++sendrecvOps;
        Addr sendBuf =
            ctx.alloc(std::max<std::size_t>(sendrecvOps, 1) *
                      slot_bytes);
        std::size_t sendrecvIdx = 0;
        Addr exchBuf = ctx.alloc(2 * slot_bytes);
        // Same staleness hazard as send(): a cell delayed inside a
        // preceding op can have two broadcasts land before it checks
        // the first, so each broadcast writes a private buffer.
        // Delivery order is safe (the B-net bus serializes issues and
        // the receive DMA drains FIFO per cell), so flag >= n means
        // buffer n is final.
        std::size_t bcastOps = 0;
        for (const Op &o : prog.ops)
            if (o.kind == OpKind::bcast)
                ++bcastOps;
        Addr bcastBuf =
            ctx.alloc(std::max<std::size_t>(bcastOps, 1) * 64);
        std::size_t bcastIdx = 0;
        Addr bcastFlag = ctx.alloc_flag();
        std::uint32_t bcastExpect = 0;

        for (const Op &op : prog.ops) {
            switch (op.kind) {
              case OpKind::write: {
                if (op.cell != me)
                    break;
                std::vector<std::uint8_t> data =
                    pattern(op.stamp, op.size);
                ctx.poke(staging, data);
                ctx.write_remote(op.peer,
                                 regionBase[static_cast<std::size_t>(
                                     op.peer)] +
                                     slot_offset(me, op.slot),
                                 staging, op.size);
                break;
              }
              case OpKind::read: {
                if (op.cell != me)
                    break;
                CellId writer = static_cast<CellId>(
                    op.stamp % static_cast<std::uint64_t>(p));
                ctx.read_remote(
                    op.peer,
                    regionBase[static_cast<std::size_t>(op.peer)] +
                        slot_offset(writer, op.slot),
                    readBuf, op.size);
                break;
              }
              case OpKind::barrier:
                ctx.barrier();
                break;
              case OpKind::put_burst: {
                if (op.cell != me)
                    break;
                int burst =
                    2 + static_cast<int>(op.stamp % 3); // 2..4
                for (int j = 0; j < burst; ++j) {
                    int slot = (op.slot + j) % slots_per_writer;
                    std::vector<std::uint8_t> data = pattern(
                        op.stamp + static_cast<std::uint64_t>(j),
                        op.size);
                    Addr src = staging +
                               static_cast<Addr>(j) * slot_bytes;
                    ctx.poke(src, data);
                    ctx.put(op.peer,
                            regionBase[static_cast<std::size_t>(
                                op.peer)] +
                                slot_offset(me, slot),
                            src, op.size, no_flag, no_flag, true);
                }
                ctx.wait_all_acks();
                break;
              }
              case OpKind::sendrecv: {
                CellId to = (me + op.peer) % p;
                CellId from = (me - op.peer + p) % p;
                std::int32_t tag = static_cast<std::int32_t>(
                    op.stamp & 0x7fff);
                Addr sbuf = sendBuf + sendrecvIdx * slot_bytes;
                ++sendrecvIdx;
                ctx.poke_u32(sbuf,
                             static_cast<std::uint32_t>(op.stamp) +
                                 static_cast<std::uint32_t>(me));
                ctx.send(to, tag, sbuf, op.size);
                ctx.recv(from, tag, exchBuf + slot_bytes,
                         slot_bytes);
                if (ctx.peek_u32(exchBuf + slot_bytes) !=
                    static_cast<std::uint32_t>(op.stamp) +
                        static_cast<std::uint32_t>(from))
                    ++dataErrs;
                break;
              }
              case OpKind::allreduce: {
                double s = ctx.allreduce(
                    static_cast<double>(me + 1), core::ReduceOp::sum);
                if (s != static_cast<double>(p) *
                             static_cast<double>(p + 1) / 2.0)
                    ++dataErrs;
                break;
              }
              case OpKind::bcast: {
                CellId root = static_cast<CellId>(
                    op.stamp % static_cast<std::uint64_t>(p));
                Addr bbuf = bcastBuf + bcastIdx * 64;
                ++bcastIdx;
                if (me == root)
                    ctx.poke_u32(bbuf,
                                 static_cast<std::uint32_t>(
                                     op.stamp * 3));
                ctx.broadcast(root, bbuf, 64, bcastFlag);
                if (me != root) {
                    ++bcastExpect;
                    ctx.wait_flag(bcastFlag, bcastExpect);
                }
                if (ctx.peek_u32(bbuf) !=
                    static_cast<std::uint32_t>(op.stamp * 3))
                    ++dataErrs;
                break;
              }
            }
        }
        ctx.barrier();
    });

    out.errors = result.errors;
    out.deadlock = result.deadlock;
    out.dataErrors = dataErrs.load();
    out.finish = result.finishTick;
    out.faults = m.faults().stats();
    out.executedEvents = m.sim().executed();
    out.tickDigest = hist.digest();
    // "sim." is the kernel's self-telemetry (shard shape, host
    // wall-clock barrier waits): it describes how this run executed,
    // not what the machine did, so the cross-kernel byte-identity
    // compares must not see it.
    if (collectStats) {
        out.statsJson = m.stats_registry().dump_json(false, "sim.");
        out.statsDelta = m.stats_registry().delta_since(statsBefore);
    }
    if (m.reliable())
        out.rnetRetransmits =
            m.stats_registry().sum("*.rnet.retransmits");
    out.regions.resize(static_cast<std::size_t>(prog.cells));
    for (int i = 0; i < prog.cells; ++i) {
        auto idx = static_cast<std::size_t>(i);
        out.regions[idx].resize(region_bytes);
        if (regionBase[idx] != 0 &&
            !m.cell(i).mc().load(
                regionBase[idx],
                std::span<std::uint8_t>(out.regions[idx])))
            fatal("harness: cannot snapshot cell %d region", i);
    }
    if (!obs.statsOut.empty() && !m.dump_stats(obs.statsOut))
        fatal("harness: cannot write stats to %s",
              obs.statsOut.c_str());
    if (!obs.traceOut.empty() && !m.write_trace(obs.traceOut))
        fatal("harness: cannot write trace to %s",
              obs.traceOut.c_str());
    if (!obs.timelineOut.empty() && !m.write_timeline(obs.timelineOut))
        fatal("harness: cannot write timeline to %s",
              obs.timelineOut.c_str());
    if (!obs.timelineCsv.empty() &&
        !m.write_timeline_csv(obs.timelineCsv))
        fatal("harness: cannot write timeline CSV to %s",
              obs.timelineCsv.c_str());
    return out;
}

std::string
check_against_golden(const OpProgram &prog,
                     const sim::FaultPlan &plan,
                     const hw::RetryPolicy &retry, bool reliable)
{
    RunOutcome golden =
        run_program(prog, sim::FaultPlan{}, retry, {}, reliable, 1,
                    false, /*collectStats=*/false);
    if (!golden.clean())
        return strprintf("golden (zero-fault) run failed: "
                         "deadlock=%d errors=%zu dataErrors=%d",
                         golden.deadlock, golden.errors.size(),
                         golden.dataErrors);

    RunOutcome faulty = run_program(prog, plan, retry, {}, reliable,
                                    1, false, /*collectStats=*/false);
    if (faulty.deadlock)
        return strprintf("deadlock under plan [%s]",
                         plan.describe().c_str());
    if (!faulty.errors.empty())
        return strprintf("comm error under plan [%s]: %s",
                         plan.describe().c_str(),
                         faulty.errors.front().c_str());
    if (faulty.dataErrors != 0)
        return strprintf("%d self-check data errors under plan [%s]",
                         faulty.dataErrors, plan.describe().c_str());
    for (std::size_t c = 0; c < faulty.regions.size(); ++c) {
        if (faulty.regions[c] == golden.regions[c])
            continue;
        std::size_t at = 0;
        while (faulty.regions[c][at] == golden.regions[c][at])
            ++at;
        return strprintf(
            "end-state divergence under plan [%s]: cell %zu, "
            "writer %zu slot %zu (byte offset %zu)",
            plan.describe().c_str(), c,
            at / (slots_per_writer * slot_bytes),
            (at / slot_bytes) % slots_per_writer, at);
    }
    return "";
}

std::string
check_threads_differential(const OpProgram &prog,
                           const sim::FaultPlan &plan,
                           const hw::RetryPolicy &retry,
                           bool reliable, int threads)
{
    RunOutcome seq =
        run_program(prog, plan, retry, {}, reliable, 1, false);
    RunOutcome par = run_program(prog, plan, retry, {}, reliable,
                                 threads, true);

    if (seq.deadlock != par.deadlock)
        return strprintf("deadlock divergence: threads=1 %d vs "
                         "threads=%d %d",
                         seq.deadlock, threads, par.deadlock);
    if (seq.errors.size() != par.errors.size())
        return strprintf("error-count divergence: threads=1 %zu vs "
                         "threads=%d %zu",
                         seq.errors.size(), threads,
                         par.errors.size());
    if (seq.tickDigest != par.tickDigest)
        return strprintf("tick-history divergence: threads=1 [%s] vs "
                         "threads=%d [%s]",
                         seq.tickDigest.c_str(), threads,
                         par.tickDigest.c_str());
    for (std::size_t c = 0; c < seq.regions.size(); ++c) {
        if (seq.regions[c] == par.regions[c])
            continue;
        std::size_t at = 0;
        while (seq.regions[c][at] == par.regions[c][at])
            ++at;
        return strprintf("memory-image divergence at cell %zu byte "
                         "%zu (threads=1 vs threads=%d)",
                         c, at, threads);
    }
    if (seq.statsJson != par.statsJson) {
        std::size_t at = 0;
        std::size_t n =
            std::min(seq.statsJson.size(), par.statsJson.size());
        while (at < n && seq.statsJson[at] == par.statsJson[at])
            ++at;
        return strprintf("stats-registry divergence at JSON byte %zu "
                         "(threads=1 vs threads=%d): ...%.40s vs "
                         "...%.40s",
                         at, threads,
                         seq.statsJson.c_str() + at,
                         par.statsJson.c_str() + at);
    }
    return "";
}

OpProgram
shrink(OpProgram prog,
       const std::function<std::string(const OpProgram &)> &fails,
       int max_evals)
{
    int evals = 0;
    auto still_failing = [&](const OpProgram &cand) {
        if (evals >= max_evals)
            return false;
        ++evals;
        return !fails(cand).empty();
    };

    bool progress = true;
    while (progress && prog.ops.size() > 1) {
        progress = false;
        for (std::size_t chunk = prog.ops.size() / 2; chunk >= 1;
             chunk /= 2) {
            for (std::size_t at = 0;
                 at + chunk <= prog.ops.size();) {
                OpProgram cand = prog;
                cand.ops.erase(
                    cand.ops.begin() + static_cast<std::ptrdiff_t>(at),
                    cand.ops.begin() +
                        static_cast<std::ptrdiff_t>(at + chunk));
                if (still_failing(cand)) {
                    prog = std::move(cand);
                    progress = true;
                } else {
                    at += chunk;
                }
            }
            if (chunk == 1)
                break;
        }
    }
    return prog;
}

} // namespace ap::harness
