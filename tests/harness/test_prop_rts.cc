/**
 * @file
 * Property tests: the VPP Fortran runtime (collective moves over
 * garrays) under fault plans.
 *
 * Lossless perturbations (forced queue overflows, latency jitter)
 * must leave the *unhardened* runtime correct: they stress the DRAM
 * spill/refill path and event timing without losing messages, so
 * OVERLAP FIX / transpose / SPREAD MOVE must deliver every element
 * with retries disabled. Under light message loss the hardened
 * movewait (replay + read-back verification) must recover.
 */

#include <gtest/gtest.h>

#include "core/program.hh"
#include "harness.hh"
#include "runtime/rts.hh"

using namespace ap;

namespace
{

struct RtsOutcome
{
    int mismatches = 0;
    bool deadlock = false;
    std::vector<std::string> errors;
    sim::FaultStats faults;
    std::uint64_t spills = 0;
    std::uint64_t refills = 0;
};

double
cell_value(std::uint64_t seed, int round, int r, int c, int n)
{
    return static_cast<double>(r * n + c + round * 10000 +
                               static_cast<int>(seed % 97));
}

/**
 * The collective workload: two OVERLAP FIX rounds with fringe
 * checks, a transpose, and a SPREAD MOVE, all self-verifying.
 */
RtsOutcome
run_rts(std::uint64_t seed, const sim::FaultPlan &plan,
        const hw::RetryPolicy &retry, bool reliable = false)
{
    constexpr int cells = 4;
    constexpr int n = 16;
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    cfg.faults = plan;
    cfg.retry = retry;
    cfg.reliableNet = reliable;
    hw::Machine m(cfg);

    RtsOutcome out;
    auto result = core::run_spmd(m, [&](core::Context &ctx) {
        rt::Runtime rts(ctx);
        rt::GArray2D a(ctx, n, n, rt::SplitDim::rows, 1);
        rt::GArray2D b(ctx, n, n, rt::SplitDim::rows, 0);
        rt::GArray1D d(ctx, rt::Decomp1D::block(n, ctx.nprocs()));
        CellId me = ctx.id();
        int lo = a.lo(me);
        int cnt = a.count(me);

        for (int round = 0; round < 2; ++round) {
            for (int r = lo; r < lo + cnt; ++r)
                for (int c = 0; c < n; ++c)
                    a.set_local(r, c,
                                cell_value(seed, round, r, c, n));
            ctx.barrier();
            rts.overlap_fix(a);
            if (me > 0)
                for (int c = 0; c < n; ++c)
                    if (a.get_local(lo - 1, c) !=
                        cell_value(seed, round, lo - 1, c, n))
                        ++out.mismatches;
            if (me < ctx.nprocs() - 1)
                for (int c = 0; c < n; ++c)
                    if (a.get_local(lo + cnt, c) !=
                        cell_value(seed, round, lo + cnt, c, n))
                        ++out.mismatches;
        }

        rts.transpose(b, a);
        for (int r = lo; r < lo + cnt; ++r)
            for (int c = 0; c < n; ++c)
                if (b.get_local(r, c) !=
                    cell_value(seed, 1, c, r, n))
                    ++out.mismatches;

        int fixed_col = static_cast<int>(seed % n);
        rts.spread_move_col(d, a, fixed_col);
        for (int j = 0; j < n; ++j)
            if (d.is_local(j) &&
                d.get_local(j) !=
                    cell_value(seed, 1, j, fixed_col, n))
                ++out.mismatches;
    });

    out.deadlock = result.deadlock;
    out.errors = result.errors;
    out.faults = m.faults().stats();
    for (int i = 0; i < cells; ++i) {
        const auto &q = m.cell(i).msc().user_queue().stats();
        out.spills += q.spills;
        out.refills += q.refillInterrupts;
    }
    return out;
}

void
expect_clean(const RtsOutcome &out, const char *what,
             std::uint64_t seed)
{
    EXPECT_FALSE(out.deadlock) << what << " seed " << seed;
    EXPECT_TRUE(out.errors.empty())
        << what << " seed " << seed << ": "
        << (out.errors.empty() ? "" : out.errors.front());
    EXPECT_EQ(out.mismatches, 0) << what << " seed " << seed;
}

} // namespace

class RtsSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RtsSeeds, CorrectUnderForcedQueueOverflows)
{
    std::uint64_t seed = GetParam();
    RtsOutcome out = run_rts(seed, sim::FaultPlan::overflows(seed),
                             hw::RetryPolicy{});
    expect_clean(out, "overflow", seed);
    EXPECT_GT(out.faults.forcedSpills, 0u);
    EXPECT_GT(out.spills, 0u);
    EXPECT_GT(out.refills, 0u);
}

TEST_P(RtsSeeds, CorrectUnderLatencyJitter)
{
    std::uint64_t seed = GetParam();
    RtsOutcome out = run_rts(seed, sim::FaultPlan::jitter(seed),
                             hw::RetryPolicy{});
    expect_clean(out, "jitter", seed);
    EXPECT_GT(out.faults.jitteredEvents, 0u);
}

TEST_P(RtsSeeds, HardenedMovewaitRecoversFromMessageLoss)
{
    std::uint64_t seed = GetParam();
    RtsOutcome out = run_rts(seed, sim::FaultPlan::drops(seed, 0.03),
                             harness::harness_retry());
    expect_clean(out, "drop", seed);
}

TEST_P(RtsSeeds, ReliableLayerCarriesUnhardenedRuntimeOverLoss)
{
    // With the reliable layer on, the *unhardened* runtime (no
    // software retries, no read-back verification) must survive a
    // lossy plan: recovery happens entirely below the MSC+. The
    // watchdog converts any protocol bug into a typed error.
    std::uint64_t seed = GetParam();
    hw::RetryPolicy retry;
    retry.watchdogUs = 200000.0;
    RtsOutcome out =
        run_rts(seed, sim::FaultPlan::lossy(seed), retry, true);
    expect_clean(out, "lossy+reliable", seed);
    EXPECT_GT(out.faults.total(), 0u)
        << "lossy plan injected nothing, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtsSeeds,
                         ::testing::Range<std::uint64_t>(1, 9));
