/**
 * @file
 * Fault-plan stress driver (CI smoke + local soak).
 *
 * Runs harness property iterations — random op program vs zero-fault
 * golden run — with incrementing seeds until a wall-clock budget
 * expires or an iteration fails. A failure shrinks the op program to
 * a minimal reproducer and prints it with the seed; rerunning with
 * that --seed replays the identical faulty run.
 *
 *   stress_put_get --seed=1 --plan=chaos --duration-s=60
 *   stress_put_get --seed=42 --plan=drop --iters=1   # replay one seed
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness.hh"
#include "obs/cli.hh"
#include "obs/stats_registry.hh"

using namespace ap;
using namespace ap::harness;

namespace
{

struct Options
{
    std::uint64_t seed = 1;
    std::string plan = "chaos";
    int cells = 5;
    int ops = 24;
    double durationS = 10.0;
    long iters = -1; // unlimited within the duration budget
    /** Stack the reliable-delivery layer under the MSC+. */
    bool reliable = false;
    /** Worker threads of the sharded kernel (1 = sequential). */
    int threads = 1;
    /** Differential mode: each iteration runs threads=1 vs
     *  --threads deterministic and requires identical tick history,
     *  memory images and stats JSON (instead of the golden check). */
    bool differential = false;
    /** Print each iteration's stats-registry delta (top rows). */
    bool iterStats = false;
    /** Telemetry of the faulty run of each iteration (last wins). */
    obs::ObsOptions obs;
};

sim::FaultPlan
plan_by_name(const std::string &name, std::uint64_t seed)
{
    if (name == "drop")
        return sim::FaultPlan::drops(seed);
    if (name == "dup")
        return sim::FaultPlan::duplicates(seed);
    if (name == "reorder")
        return sim::FaultPlan::reorders(seed);
    if (name == "overflow")
        return sim::FaultPlan::overflows(seed);
    if (name == "pagefault")
        return sim::FaultPlan::pageFaults(seed);
    if (name == "jitter")
        return sim::FaultPlan::jitter(seed);
    if (name == "chaos")
        return sim::FaultPlan::chaos(seed);
    if (name == "lossy")
        return sim::FaultPlan::lossy(seed);
    std::fprintf(stderr,
                 "unknown plan '%s' (drop|dup|reorder|overflow|"
                 "pagefault|jitter|chaos|lossy)\n",
                 name.c_str());
    std::exit(2);
}

bool
lossless(const std::string &name)
{
    return name == "overflow" || name == "jitter";
}

/**
 * Whether the op generator may use the full (unverified) vocabulary:
 * always under lossless plans, and under pure transport-loss plans
 * when the reliable layer recovers the losses below the MSC+.
 * Page-fault and chaos plans corrupt above the transport, so they
 * keep the verified vocabulary even with --reliable.
 */
bool
full_vocabulary(const Options &opt)
{
    if (lossless(opt.plan))
        return true;
    return opt.reliable &&
           (opt.plan == "drop" || opt.plan == "dup" ||
            opt.plan == "reorder" || opt.plan == "lossy");
}

Options
parse(int argc, char **argv, obs::BenchReport &report)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (report.consume_arg(a))
            ;
        else if (std::strncmp(a, "--seed=", 7) == 0)
            opt.seed = std::strtoull(a + 7, nullptr, 10);
        else if (std::strncmp(a, "--plan=", 7) == 0)
            opt.plan = a + 7;
        else if (std::strncmp(a, "--cells=", 8) == 0)
            opt.cells = std::atoi(a + 8);
        else if (std::strncmp(a, "--ops=", 6) == 0)
            opt.ops = std::atoi(a + 6);
        else if (std::strncmp(a, "--duration-s=", 13) == 0)
            opt.durationS = std::atof(a + 13);
        else if (std::strncmp(a, "--iters=", 8) == 0)
            opt.iters = std::atol(a + 8);
        else if (std::strcmp(a, "--reliable") == 0)
            opt.reliable = true;
        else if (std::strncmp(a, "--threads=", 10) == 0)
            opt.threads = std::atoi(a + 10);
        else if (std::strcmp(a, "--differential") == 0)
            opt.differential = true;
        else if (std::strcmp(a, "--iter-stats") == 0)
            opt.iterStats = true;
        else if (obs::consume_obs_arg(a, opt.obs))
            ;
        else {
            std::fprintf(stderr, "unknown argument '%s'\n", a);
            std::fprintf(
                stderr,
                "usage: stress_put_get [--seed=N] [--plan=NAME] "
                "[--cells=N] [--ops=N] [--duration-s=S] "
                "[--iters=N] [--reliable] [--threads=N] "
                "[--differential] [--iter-stats] [--json-out=F] "
                "[--stats-out=F] [--trace-out=F] [--timeline-out=F] "
                "[--timeline-period-us=US] [--debug-flags=A,B]\n");
            std::exit(2);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::BenchReport report("stress_put_get");
    Options opt = parse(argc, argv, report);
    hw::RetryPolicy retry = harness_retry();
    if (opt.reliable) {
        // The protocol layer absorbs transport loss; the watchdog
        // turns any residual hang into a typed, shrinkable failure.
        retry.watchdogUs = 200000.0;
    }
    auto start = std::chrono::steady_clock::now();
    auto elapsed_s = [&]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    long done = 0;
    std::uint64_t injected = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t events = 0;
    for (std::uint64_t seed = opt.seed;; ++seed) {
        if (opt.iters >= 0 && done >= opt.iters)
            break;
        if (opt.iters < 0 && elapsed_s() >= opt.durationS)
            break;

        sim::FaultPlan plan = plan_by_name(opt.plan, seed);
        OpProgram prog = make_program(seed, opt.cells, opt.ops,
                                      full_vocabulary(opt));
        auto check = [&](const OpProgram &p) {
            if (opt.differential)
                return check_threads_differential(
                    p, plan, retry, opt.reliable,
                    opt.threads > 1 ? opt.threads : 4);
            return check_against_golden(p, plan, retry,
                                        opt.reliable);
        };
        std::string diag = check(prog);
        if (!diag.empty()) {
            std::fprintf(stderr,
                         "FAILURE at seed %llu (plan %s): %s\n",
                         static_cast<unsigned long long>(seed),
                         opt.plan.c_str(), diag.c_str());
            OpProgram minimal = shrink(prog, check);
            std::fprintf(stderr, "minimal reproducer:\n%s",
                         describe(minimal).c_str());
            std::fprintf(stderr,
                         "replay: stress_put_get --seed=%llu "
                         "--plan=%s --cells=%d --ops=%d --iters=1%s"
                         "%s\n",
                         static_cast<unsigned long long>(seed),
                         opt.plan.c_str(), opt.cells, opt.ops,
                         opt.reliable ? " --reliable" : "",
                         opt.differential ? " --differential" : "");
            return 1;
        }
        // Count injected faults of the faulty run for the summary;
        // this replay also carries the telemetry outputs, so a
        // pinned --seed --iters=1 invocation yields its timeline.
        // With --threads the replay exercises the sharded kernel in
        // deterministic mode.
        RunOutcome o =
            run_program(prog, plan, retry, opt.obs, opt.reliable,
                        opt.threads, opt.threads > 1,
                        /*collectStats=*/opt.iterStats);
        injected += o.faults.total() + o.faults.jitteredEvents;
        retransmits += o.rnetRetransmits;
        events += o.executedEvents;
        if (opt.iterStats)
            std::printf(
                "-- iteration %ld (seed %llu) stats delta --\n%s",
                done, static_cast<unsigned long long>(seed),
                obs::StatsRegistry::delta_text(o.statsDelta, 12)
                    .c_str());
        ++done;
    }

    // Host-throughput report for the perf gate. events_per_sec only
    // counts the replay run of each iteration (one of the three runs
    // an iteration executes), so it understates the kernel rate by a
    // constant factor — consistent across baseline and candidate,
    // which is all the ratio gate needs.
    double wall = elapsed_s();
    report.set("speed.wall_s", wall);
    report.set("speed.iters_per_sec",
               static_cast<double>(done) / wall);
    report.set("speed.events_per_sec",
               static_cast<double>(events) / wall);
    report.set("count.iterations",
               static_cast<std::uint64_t>(done));
    report.set("count.faults_injected", injected);
    report.set("count.retransmits", retransmits);
    report.write();

    std::printf("stress ok: %ld iterations (plan %s%s%s, first seed "
                "%llu, %.1f s, %llu faults/jitters injected, "
                "%llu retransmits)\n",
                done, opt.plan.c_str(),
                opt.reliable ? " +reliable" : "",
                opt.differential ? " +differential" : "",
                static_cast<unsigned long long>(opt.seed),
                elapsed_s(),
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(retransmits));
    return 0;
}
