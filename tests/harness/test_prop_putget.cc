/**
 * @file
 * Property tests: the hardened PUT/GET runtime under lossy fault
 * plans.
 *
 * For every (seed, plan) pair a random verified-op program runs on a
 * faulty machine; the linearizable end state of every cell's owned
 * region must match the zero-fault golden run byte for byte. A
 * failing seed is shrunk to a minimal op sequence before reporting,
 * and replays deterministically (same seed, same plan, same run).
 */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace ap;
using namespace ap::harness;

namespace
{

OpProgram
program_for(std::uint64_t seed)
{
    int cells = 3 + static_cast<int>(seed % 4); // 3..6
    return make_program(seed, cells, 24, false);
}

void
expect_plan_holds(std::uint64_t seed, const sim::FaultPlan &plan)
{
    OpProgram prog = program_for(seed);
    hw::RetryPolicy retry = harness_retry();
    std::string diag = check_against_golden(prog, plan, retry);
    if (diag.empty())
        return;
    auto pred = [&](const OpProgram &p) {
        return check_against_golden(p, plan, retry);
    };
    OpProgram minimal = shrink(prog, pred);
    FAIL() << diag << "\nseed " << seed << ", plan ["
           << plan.describe() << "]\nminimal reproducer:\n"
           << describe(minimal);
}

} // namespace

class PropSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PropSeeds, SurvivesMessageDrops)
{
    expect_plan_holds(GetParam(),
                      sim::FaultPlan::drops(GetParam()));
}

TEST_P(PropSeeds, SurvivesMessageDuplication)
{
    expect_plan_holds(GetParam(),
                      sim::FaultPlan::duplicates(GetParam()));
}

TEST_P(PropSeeds, SurvivesMessageReordering)
{
    expect_plan_holds(GetParam(),
                      sim::FaultPlan::reorders(GetParam()));
}

TEST_P(PropSeeds, SurvivesInjectedPageFaults)
{
    expect_plan_holds(GetParam(),
                      sim::FaultPlan::pageFaults(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

// With the reliable-delivery layer stacked under the MSC+, the FULL
// op vocabulary — including unverified PUT bursts, SEND/RECEIVE and
// collectives that are normally lossless-only — must survive lossy
// plans with no software retries at all: the protocol layer itself
// recovers drops, suppresses duplicates and reorders out-of-order
// arrivals. The watchdog is armed purely as a hang-to-error converter.
namespace
{

hw::RetryPolicy
watchdog_only()
{
    hw::RetryPolicy retry;
    retry.watchdogUs = 200000.0;
    return retry;
}

void
expect_reliable_plan_holds(std::uint64_t seed,
                           const sim::FaultPlan &plan)
{
    int cells = 3 + static_cast<int>(seed % 4); // 3..6
    OpProgram prog = make_program(seed, cells, 24, true);
    hw::RetryPolicy retry = watchdog_only();
    std::string diag = check_against_golden(prog, plan, retry, true);
    if (diag.empty())
        return;
    auto pred = [&](const OpProgram &p) {
        return check_against_golden(p, plan, retry, true);
    };
    OpProgram minimal = shrink(prog, pred);
    FAIL() << diag << "\nseed " << seed << ", plan ["
           << plan.describe() << "] with reliable layer\n"
           << "minimal reproducer:\n"
           << describe(minimal);
}

} // namespace

class ReliableSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ReliableSeeds, FullVocabularySurvivesDrops)
{
    expect_reliable_plan_holds(GetParam(),
                               sim::FaultPlan::drops(GetParam()));
}

TEST_P(ReliableSeeds, FullVocabularySurvivesDuplication)
{
    expect_reliable_plan_holds(
        GetParam(), sim::FaultPlan::duplicates(GetParam()));
}

TEST_P(ReliableSeeds, FullVocabularySurvivesReordering)
{
    expect_reliable_plan_holds(GetParam(),
                               sim::FaultPlan::reorders(GetParam()));
}

TEST_P(ReliableSeeds, FullVocabularySurvivesLossyMix)
{
    expect_reliable_plan_holds(GetParam(),
                               sim::FaultPlan::lossy(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliableSeeds,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(PropReliable, RetransmitsActuallyHappen)
{
    OpProgram prog = make_program(5, 4, 24, true);
    RunOutcome out = run_program(prog, sim::FaultPlan::lossy(5),
                                 watchdog_only(), {}, true);
    EXPECT_TRUE(out.clean()) << (out.errors.empty()
                                     ? "data/deadlock failure"
                                     : out.errors.front());
    EXPECT_GT(out.faults.drops, 0u) << "lossy plan dropped nothing";
    EXPECT_GT(out.rnetRetransmits, 0u)
        << "drops recovered without any retransmission?";
}

TEST(PropReliable, FaultyReliableRunsReplayExactly)
{
    OpProgram prog = make_program(9, 5, 24, true);
    sim::FaultPlan plan = sim::FaultPlan::lossy(9);
    RunOutcome a = run_program(prog, plan, watchdog_only(), {}, true);
    RunOutcome b = run_program(prog, plan, watchdog_only(), {}, true);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.regions, b.regions);
    EXPECT_EQ(a.errors, b.errors);
    EXPECT_EQ(a.rnetRetransmits, b.rnetRetransmits);
    EXPECT_EQ(a.faults.total(), b.faults.total());
}

TEST(PropDeterminism, FaultyRunsReplayExactly)
{
    OpProgram prog = program_for(7);
    sim::FaultPlan plan = sim::FaultPlan::chaos(7);
    hw::RetryPolicy retry = harness_retry();
    RunOutcome a = run_program(prog, plan, retry);
    RunOutcome b = run_program(prog, plan, retry);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.regions, b.regions);
    EXPECT_EQ(a.errors, b.errors);
    EXPECT_EQ(a.faults.total(), b.faults.total());
    EXPECT_GT(a.faults.total(), 0u) << "chaos plan injected nothing";
}

TEST(PropDeterminism, PlansActuallyInject)
{
    OpProgram prog = program_for(3);
    hw::RetryPolicy retry = harness_retry();
    RunOutcome dropped = run_program(
        prog, sim::FaultPlan::drops(3, 0.1), retry);
    EXPECT_GT(dropped.faults.drops, 0u);
    RunOutcome faulted = run_program(
        prog, sim::FaultPlan::pageFaults(3, 0.1), retry);
    EXPECT_GT(faulted.faults.injectedPageFaults, 0u);
}

TEST(PropTypedErrors, UnrecoverableLossSurfacesCommErrorNotHang)
{
    // Every message dropped: no retry protocol can succeed. The run
    // must still terminate, with typed errors instead of a hang, and
    // no silent corruption: undelivered slots stay unwritten.
    OpProgram prog = program_for(11);
    hw::RetryPolicy retry;
    retry.timeoutUs = 200.0;
    retry.maxRetries = 2;
    RunOutcome out = run_program(prog, sim::FaultPlan::drops(11, 1.0),
                                 retry);
    EXPECT_FALSE(out.errors.empty());
    EXPECT_NE(out.errors.front().find("attempts"), std::string::npos);
    for (const auto &region : out.regions)
        for (std::uint8_t byte : region)
            EXPECT_EQ(byte, 0u);
}
