/**
 * @file
 * Property tests: the hardened PUT/GET runtime under lossy fault
 * plans.
 *
 * For every (seed, plan) pair a random verified-op program runs on a
 * faulty machine; the linearizable end state of every cell's owned
 * region must match the zero-fault golden run byte for byte. A
 * failing seed is shrunk to a minimal op sequence before reporting,
 * and replays deterministically (same seed, same plan, same run).
 */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace ap;
using namespace ap::harness;

namespace
{

OpProgram
program_for(std::uint64_t seed)
{
    int cells = 3 + static_cast<int>(seed % 4); // 3..6
    return make_program(seed, cells, 24, false);
}

void
expect_plan_holds(std::uint64_t seed, const sim::FaultPlan &plan)
{
    OpProgram prog = program_for(seed);
    hw::RetryPolicy retry = harness_retry();
    std::string diag = check_against_golden(prog, plan, retry);
    if (diag.empty())
        return;
    auto pred = [&](const OpProgram &p) {
        return check_against_golden(p, plan, retry);
    };
    OpProgram minimal = shrink(prog, pred);
    FAIL() << diag << "\nseed " << seed << ", plan ["
           << plan.describe() << "]\nminimal reproducer:\n"
           << describe(minimal);
}

} // namespace

class PropSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PropSeeds, SurvivesMessageDrops)
{
    expect_plan_holds(GetParam(),
                      sim::FaultPlan::drops(GetParam()));
}

TEST_P(PropSeeds, SurvivesMessageDuplication)
{
    expect_plan_holds(GetParam(),
                      sim::FaultPlan::duplicates(GetParam()));
}

TEST_P(PropSeeds, SurvivesMessageReordering)
{
    expect_plan_holds(GetParam(),
                      sim::FaultPlan::reorders(GetParam()));
}

TEST_P(PropSeeds, SurvivesInjectedPageFaults)
{
    expect_plan_holds(GetParam(),
                      sim::FaultPlan::pageFaults(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(PropDeterminism, FaultyRunsReplayExactly)
{
    OpProgram prog = program_for(7);
    sim::FaultPlan plan = sim::FaultPlan::chaos(7);
    hw::RetryPolicy retry = harness_retry();
    RunOutcome a = run_program(prog, plan, retry);
    RunOutcome b = run_program(prog, plan, retry);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.regions, b.regions);
    EXPECT_EQ(a.errors, b.errors);
    EXPECT_EQ(a.faults.total(), b.faults.total());
    EXPECT_GT(a.faults.total(), 0u) << "chaos plan injected nothing";
}

TEST(PropDeterminism, PlansActuallyInject)
{
    OpProgram prog = program_for(3);
    hw::RetryPolicy retry = harness_retry();
    RunOutcome dropped = run_program(
        prog, sim::FaultPlan::drops(3, 0.1), retry);
    EXPECT_GT(dropped.faults.drops, 0u);
    RunOutcome faulted = run_program(
        prog, sim::FaultPlan::pageFaults(3, 0.1), retry);
    EXPECT_GT(faulted.faults.injectedPageFaults, 0u);
}

TEST(PropTypedErrors, UnrecoverableLossSurfacesCommErrorNotHang)
{
    // Every message dropped: no retry protocol can succeed. The run
    // must still terminate, with typed errors instead of a hang, and
    // no silent corruption: undelivered slots stay unwritten.
    OpProgram prog = program_for(11);
    hw::RetryPolicy retry;
    retry.timeoutUs = 200.0;
    retry.maxRetries = 2;
    RunOutcome out = run_program(prog, sim::FaultPlan::drops(11, 1.0),
                                 retry);
    EXPECT_FALSE(out.errors.empty());
    EXPECT_NE(out.errors.front().find("attempts"), std::string::npos);
    for (const auto &region : out.regions)
        for (std::uint8_t byte : region)
            EXPECT_EQ(byte, 0u);
}
