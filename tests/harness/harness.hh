/**
 * @file
 * Seeded property-test harness for the PUT/GET fabric under fault
 * injection.
 *
 * A harness run is (op program, fault plan): the op program is a
 * deterministic random sequence of communication operations derived
 * from a seed, and the plan perturbs the machine underneath it. The
 * correctness oracle is linearizable end state: after the simulator
 * drains, the owned memory region of every cell must hold exactly the
 * bytes a zero-fault golden run of the same program produces.
 *
 * Determinism of the expected end state is by construction: every
 * remotely written slot belongs to exactly one writer cell (the slot
 * index encodes the writer), so no write-write race exists and the
 * final value of each slot is the writer's last write in its own
 * program order — independent of message timing, retries, or
 * duplicate deliveries.
 *
 * Two op vocabularies:
 *  - verified ops (write/read through the hardened runtime paths,
 *    S-net barriers): safe under lossy plans (drops, duplicates,
 *    reorders, injected page faults) because the runtime retries and
 *    verifies by read-back;
 *  - lossless-only ops (PUT bursts, SEND/RECEIVE, reductions,
 *    broadcast): exercised under plans that perturb but never lose
 *    messages (forced overflows, latency jitter).
 *
 * When a seed fails, shrink() reduces the op program to a minimal
 * still-failing sequence by greedy chunk removal, so the bug report
 * is a handful of ops instead of a hundred.
 */

#ifndef AP_TESTS_HARNESS_HH
#define AP_TESTS_HARNESS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "hw/config.hh"
#include "obs/cli.hh"
#include "sim/fault.hh"

namespace ap::harness
{

/** One operation of a property program. */
enum class OpKind : std::uint8_t
{
    write,     ///< verified write_remote into an owned slot
    read,      ///< verified read_remote of a random slot
    barrier,   ///< all-cell S-net barrier (global)
    put_burst, ///< back-to-back acked PUTs + wait (lossless only)
    sendrecv,  ///< ring SEND/RECEIVE exchange (global, lossless only)
    allreduce, ///< scalar reduction check (global, lossless only)
    bcast,     ///< B-net broadcast check (global, lossless only)
};

const char *to_string(OpKind kind);

struct Op
{
    OpKind kind = OpKind::barrier;
    /** Issuing cell; -1 for global ops every cell executes. */
    CellId cell = -1;
    /** Peer (write/read target) or ring distance (global ops). */
    CellId peer = 0;
    /** Slot index within the issuer's partition, [0, slots_per_writer). */
    int slot = 0;
    /** Payload bytes (<= slot_bytes). */
    std::uint32_t size = 8;
    /** Value seed the payload pattern expands from. */
    std::uint64_t stamp = 0;

    std::string describe() const;
};

/** A deterministic random op sequence over a fixed machine size. */
struct OpProgram
{
    int cells = 4;
    std::vector<Op> ops;
};

/**
 * Slot geometry of the shared region each cell owns. Verified-write
 * programs assign each writer a fresh slot per write (never rewriting
 * one): under a reorder plan a held-back straggler of an old write
 * could otherwise land after a newer write to the same slot and
 * revert it — an unfixable race no retry protocol can see.
 */
constexpr int slots_per_writer = 8;
constexpr std::uint32_t slot_bytes = 256;

/**
 * Generate a program from @p seed. With @p lossless_ops the full
 * vocabulary is used; otherwise only verified ops and barriers.
 */
OpProgram make_program(std::uint64_t seed, int cells, int op_count,
                       bool lossless_ops);

/** Outcome of one harness run. */
struct RunOutcome
{
    /** Owned region bytes of every cell after the machine drained. */
    std::vector<std::vector<std::uint8_t>> regions;
    /** CommErrors surfaced by cells (typed failures, not hangs). */
    std::vector<std::string> errors;
    bool deadlock = false;
    /** Self-checking ops (sendrecv/allreduce/bcast) that saw wrong
     *  data. */
    int dataErrors = 0;
    Tick finish = 0;
    sim::FaultStats faults;
    /** Kernel events the run executed (throughput accounting). */
    std::uint64_t executedEvents = 0;
    /** Total reliable-layer retransmissions (0 with the layer off). */
    std::uint64_t rnetRetransmits = 0;
    /**
     * Stats-registry change over the run (construction snapshot vs
     * drained machine), so stress iterations can report what the
     * fault plan actually exercised.
     */
    std::map<std::string, std::int64_t> statsDelta;
    /**
     * Order-sensitive digest of the executed event sequence
     * ("events=N hash=0x...") — the comparable fingerprint the
     * threads-differential check matches between kernels.
     */
    std::string tickDigest;
    /** Full stats-registry JSON of the drained machine (compact). */
    std::string statsJson;

    bool
    clean() const
    {
        return !deadlock && errors.empty() && dataErrors == 0;
    }
};

/**
 * Execute @p prog on a machine configured with @p plan / @p retry.
 * When @p obs carries output paths, the run is traced and the
 * machine's stats-registry JSON / Chrome trace are written after the
 * simulator drains (a replayed failure seed becomes a timeline).
 *
 * @p threads > 1 runs the sharded parallel kernel; @p deterministic
 * then selects its canonical-order merge so the run is byte-identical
 * to the sequential kernel (the mode the differential check relies
 * on).
 *
 * With @p collectStats off, the outcome's statsDelta and statsJson
 * stay empty: walking and rendering the registry costs several
 * hundred microseconds per run, which dominates callers that only
 * compare memory regions (the golden check, soak loops).
 */
RunOutcome run_program(const OpProgram &prog,
                       const sim::FaultPlan &plan,
                       const hw::RetryPolicy &retry,
                       const obs::ObsOptions &obs = {},
                       bool reliable = false, int threads = 1,
                       bool deterministic = false,
                       bool collectStats = true);

/** The default retry policy harness runs use under lossy plans. */
hw::RetryPolicy harness_retry();

/**
 * Property check: @p prog under @p plan must reproduce the end state
 * of the zero-fault golden run. @return empty string on success, a
 * diagnostic on failure.
 */
std::string check_against_golden(const OpProgram &prog,
                                 const sim::FaultPlan &plan,
                                 const hw::RetryPolicy &retry,
                                 bool reliable = false);

/**
 * Differential determinism check: run @p prog twice under the same
 * @p plan — once on the sequential kernel (threads=1) and once on the
 * sharded kernel with @p threads workers in deterministic mode — and
 * require the two runs to be indistinguishable: identical tick-history
 * digests, identical final memory images of every cell, and identical
 * stats-registry JSON. @return empty string on success, a diagnostic
 * naming the first divergence otherwise.
 */
std::string check_threads_differential(const OpProgram &prog,
                                       const sim::FaultPlan &plan,
                                       const hw::RetryPolicy &retry,
                                       bool reliable = false,
                                       int threads = 4);

/**
 * Shrink @p prog to a minimal op sequence for which @p fails still
 * returns a non-empty diagnostic. Greedy chunk removal, bounded by
 * @p max_evals predicate evaluations.
 */
OpProgram
shrink(OpProgram prog,
       const std::function<std::string(const OpProgram &)> &fails,
       int max_evals = 200);

/** Render a program as one op per line (failure reports). */
std::string describe(const OpProgram &prog);

} // namespace ap::harness

#endif // AP_TESTS_HARNESS_HH
