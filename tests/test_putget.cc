/**
 * @file
 * Functional PUT/GET tests on the full machine: data movement, flag
 * semantics, stride transfers, acknowledge probes, queue overflow
 * under bursts, and page-fault protection.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "base/logging.hh"
#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    return cfg;
}

std::vector<std::uint8_t>
iota_bytes(std::size_t n, std::uint8_t start = 0)
{
    std::vector<std::uint8_t> v(n);
    std::iota(v.begin(), v.end(), start);
    return v;
}

} // namespace

TEST(PutGet, PutMovesBytesAndBumpsBothFlags)
{
    hw::Machine m(small(4));
    std::vector<std::uint8_t> got(64);

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(64);
        Addr sf = ctx.alloc_flag();
        Addr rf = ctx.alloc_flag();

        if (ctx.id() == 0) {
            ctx.poke(buf, iota_bytes(64, 1));
            ctx.put(1, buf, buf, 64, sf, rf);
            ctx.wait_flag(sf, 1); // send DMA completed
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 1); // receive DMA completed
            ctx.peek(buf, got);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(got, iota_bytes(64, 1));
}

TEST(PutGet, GetPullsRemoteData)
{
    hw::Machine m(small(4));
    std::vector<std::uint8_t> got(128);

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr src = ctx.alloc(128);
        Addr dst = ctx.alloc(128);
        Addr rf = ctx.alloc_flag();

        if (ctx.id() == 2)
            ctx.poke(src, iota_bytes(128, 7));
        ctx.barrier(); // data ready before anyone GETs

        if (ctx.id() == 0) {
            ctx.get(2, src, dst, 128, no_flag, rf);
            ctx.wait_flag(rf, 1);
            ctx.peek(dst, got);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(got, iota_bytes(128, 7));
}

TEST(PutGet, GetSendFlagBumpsAtDataOwner)
{
    hw::Machine m(small(2));
    std::uint32_t owner_flag = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr src = ctx.alloc(32);
        Addr dst = ctx.alloc(32);
        Addr sf = ctx.alloc_flag(); // on the owner (cell 1)
        Addr rf = ctx.alloc_flag();

        ctx.barrier();
        if (ctx.id() == 0) {
            ctx.get(1, src, dst, 32, sf, rf);
            ctx.wait_flag(rf, 1);
        }
        ctx.barrier();
        if (ctx.id() == 1)
            owner_flag = ctx.flag(sf);
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(owner_flag, 1u); // reply-send completion flagged there
}

TEST(PutGet, NoFlagMeansNoUpdate)
{
    hw::Machine m(small(2));
    std::uint64_t increments = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(16);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0) {
            ctx.put(1, buf, buf, 16, no_flag, rf);
        }
        if (ctx.id() == 1)
            ctx.wait_flag(rf, 1);
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    // Only the receive flag ticked: one increment machine-wide.
    increments = m.cell(0).mc().stats().flagIncrements +
                 m.cell(1).mc().stats().flagIncrements;
    EXPECT_EQ(increments, 1u);
}

TEST(PutGet, MultiplePutsIncrementFlagCumulatively)
{
    hw::Machine m(small(2));
    std::uint32_t final_flag = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(8);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0) {
            for (int i = 0; i < 10; ++i)
                ctx.put(1, buf, buf, 8, no_flag, rf);
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 10);
            final_flag = ctx.flag(rf);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(final_flag, 10u);
}

TEST(PutGet, StrideScattersIntoColumns)
{
    // Send a contiguous 5-item block; scatter it as a "column" with a
    // 12-byte skip on the receiver — the Figure 3 pattern.
    hw::Machine m(small(2));
    std::vector<std::uint8_t> image(80);

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr src = ctx.alloc(20);
        Addr dst = ctx.alloc(80);
        Addr rf = ctx.alloc_flag();

        if (ctx.id() == 0) {
            ctx.poke(src, iota_bytes(20, 1));
            ctx.put_stride(1, dst, src, false, no_flag, rf,
                           net::StrideSpec{20, 1, 0},
                           net::StrideSpec{4, 5, 12});
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 1);
            ctx.peek(dst, image);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    // Items of 4 land every 16 bytes.
    for (int i = 0; i < 5; ++i)
        for (int b = 0; b < 4; ++b)
            EXPECT_EQ(image[static_cast<std::size_t>(i * 16 + b)],
                      static_cast<std::uint8_t>(i * 4 + b + 1));
}

TEST(PutGet, StrideGatherFromMatrixColumn)
{
    // get_stride pulling a column out of a row-major "matrix".
    hw::Machine m(small(2));
    constexpr int rows = 8, cols = 8, elem = 8;
    std::vector<double> column(rows);

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr mat = ctx.alloc(rows * cols * elem);
        Addr dst = ctx.alloc(rows * elem);
        Addr rf = ctx.alloc_flag();

        if (ctx.id() == 1) {
            for (int y = 0; y < rows; ++y)
                for (int x = 0; x < cols; ++x)
                    ctx.poke_f64(mat + static_cast<Addr>(
                                           (y * cols + x) * elem),
                                 y * 100.0 + x);
        }
        ctx.barrier();

        if (ctx.id() == 0) {
            // Column 3: one 8-byte item per row, skip (cols-1)*8.
            ctx.get_stride(1, mat + 3 * elem, dst, no_flag, rf,
                           net::StrideSpec{elem, rows,
                                           (cols - 1) * elem},
                           net::StrideSpec{static_cast<std::uint32_t>(
                                               rows * elem),
                                           1, 0});
            ctx.wait_flag(rf, 1);
            for (int y = 0; y < rows; ++y)
                column[static_cast<std::size_t>(y)] = ctx.peek_f64(
                    dst + static_cast<Addr>(y * elem));
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    for (int y = 0; y < rows; ++y)
        EXPECT_DOUBLE_EQ(column[static_cast<std::size_t>(y)],
                         y * 100.0 + 3);
}

TEST(PutGet, AckProbeDetectsRemoteCompletion)
{
    hw::Machine m(small(4));
    std::vector<std::uint8_t> got(32);

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(32);
        if (ctx.id() == 0) {
            ctx.poke(buf, iota_bytes(32, 9));
            ctx.put(3, buf, buf, 32, no_flag, no_flag, /*ack=*/true);
            ctx.wait_all_acks();
            // The ack arrived, so in-order delivery guarantees the
            // PUT landed: read it back through the network to check.
            Addr back = ctx.alloc(32);
            ctx.read_remote(3, buf, back, 32);
            ctx.peek(back, got);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(got, iota_bytes(32, 9));
    EXPECT_EQ(m.cell(0).msc().stats().acksReceived, 1u);
}

TEST(PutGet, WriteRemoteReadRemoteRoundTrip)
{
    hw::Machine m(small(4));
    double got = 0.0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr v = ctx.alloc(8);
        ctx.barrier();
        if (ctx.id() == 0) {
            ctx.poke_f64(v, 2.718281828);
            ctx.write_remote(2, v, v, 8);
        }
        ctx.barrier();
        if (ctx.id() == 1) {
            Addr dst = ctx.alloc(8);
            ctx.read_remote(2, v, dst, 8);
            got = ctx.peek_f64(dst);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_DOUBLE_EQ(got, 2.718281828);
}

TEST(PutGet, BurstOverflowsQueueAndStillDeliversEverything)
{
    hw::Machine m(small(2));
    std::uint32_t final_flag = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(8);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0) {
            // 50 PUTs versus an 8-command hardware queue.
            for (int i = 0; i < 50; ++i)
                ctx.put(1, buf, buf, 8, no_flag, rf);
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 50);
            final_flag = ctx.flag(rf);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(final_flag, 50u);
    EXPECT_GT(m.cell(0).msc().user_queue().stats().spills, 0u);
    EXPECT_GT(m.cell(0).msc().user_queue().stats().refillInterrupts,
              0u);
}

TEST(PutGet, RemotePageFaultFlushesMessage)
{
    hw::MachineConfig cfg = small(2);
    hw::Machine m(cfg);
    // Unmap most of cell 1's memory: PUTs there will fault.
    int faults = 0;
    m.set_fault_hook([&](CellId, Addr, bool remote) {
        if (remote)
            ++faults;
    });

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(64);
        if (ctx.id() == 1) {
            // Make a hole: the target page disappears.
            ctx.cell().mc().mmu().unmap(0x80000);
        }
        ctx.barrier();
        if (ctx.id() == 0) {
            ctx.put(1, 0x80000, buf, 64, no_flag, no_flag, true);
            // The data message faulted and was flushed, but the ack
            // probe still bounces, so completion detection survives.
            ctx.wait_all_acks();
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(faults, 1);
    EXPECT_EQ(m.cell(1).msc().stats().flushedMessages, 1u);
}

TEST(PutGet, FourMegabyteSinglePut)
{
    // "The send DMA controller can send from 1 word to 1 megaword
    // (4 megabytes) of data in a single operation."
    hw::MachineConfig cfg = small(2);
    cfg.memBytesPerCell = 10 << 20;
    hw::Machine m(cfg);
    bool ok = false;

    auto r = run_spmd(m, [&](Context &ctx) {
        constexpr std::uint32_t mb4 = 4 << 20;
        Addr buf = ctx.alloc(mb4);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0) {
            std::vector<std::uint8_t> big(mb4);
            for (std::size_t i = 0; i < big.size(); ++i)
                big[i] = static_cast<std::uint8_t>(i * 2654435761u >>
                                                   24);
            ctx.poke(buf, big);
            ctx.put(1, buf, buf, mb4, no_flag, rf);
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 1);
            std::vector<std::uint8_t> got(mb4);
            ctx.peek(buf, got);
            ok = true;
            for (std::size_t i = 0; i < got.size(); ++i) {
                if (got[i] != static_cast<std::uint8_t>(
                                  i * 2654435761u >> 24)) {
                    ok = false;
                    break;
                }
            }
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_TRUE(ok);
}

TEST(PutGet, OverlapKeepsProcessorFree)
{
    // A PUT is non-blocking: the issuing cell's compute continues
    // while the MSC+ streams data. Compare issue cost with and
    // without a large payload.
    hw::Machine m1(small(2));
    Tick issue_small = 0, issue_big = 0;

    run_spmd(m1, [&](Context &ctx) {
        Addr buf = ctx.alloc(1 << 16);
        if (ctx.id() == 0) {
            Tick t0 = ctx.now();
            ctx.put(1, buf, buf, 8, no_flag, no_flag);
            issue_small = ctx.now() - t0;
            Tick t1 = ctx.now();
            ctx.put(1, buf, buf, 1 << 16, no_flag, no_flag);
            issue_big = ctx.now() - t1;
        }
        ctx.barrier();
    });
    // Issue cost is the 8 parameter stores; payload size is invisible
    // to the processor.
    EXPECT_EQ(issue_small, issue_big);
    EXPECT_EQ(issue_small,
              us_to_ticks(m1.config().timings.enqueueUs));
}

TEST(PutGet, DeadlockIsReportedNotHung)
{
    hw::Machine m(small(2));
    set_quiet(true);
    auto r = run_spmd(m, [&](Context &ctx) {
        Addr f = ctx.alloc_flag();
        if (ctx.id() == 0)
            ctx.wait_flag(f, 1); // nobody ever puts
    });
    set_quiet(false);
    EXPECT_TRUE(r.deadlock);
    ASSERT_EQ(r.stuck.size(), 1u);
    EXPECT_EQ(r.stuck[0], "cell0");
}
