/**
 * @file
 * Communication register tests: p-bit semantics and hardware-retry
 * loads (Section 4.4).
 */

#include <gtest/gtest.h>

#include "hw/commreg.hh"
#include "sim/eventq.hh"
#include "sim/process.hh"

using namespace ap;
using namespace ap::hw;

TEST(CommReg, StoreSetsPresentBit)
{
    CommRegisterFile regs;
    EXPECT_FALSE(regs.present(0));
    regs.store(0, 77);
    EXPECT_TRUE(regs.present(0));
}

TEST(CommReg, TryLoadClearsPresentBit)
{
    CommRegisterFile regs;
    regs.store(3, 123);
    std::uint32_t v = 0;
    EXPECT_TRUE(regs.try_load(3, v));
    EXPECT_EQ(v, 123u);
    EXPECT_FALSE(regs.present(3));
    EXPECT_FALSE(regs.try_load(3, v));
}

TEST(CommReg, OverwriteOfFullRegisterCounted)
{
    CommRegisterFile regs;
    regs.store(5, 1);
    regs.store(5, 2);
    EXPECT_EQ(regs.overwrites(), 1u);
    std::uint32_t v = 0;
    regs.try_load(5, v);
    EXPECT_EQ(v, 2u); // last write wins
}

TEST(CommReg, BlockingLoadStallsUntilStore)
{
    sim::Simulator sim;
    CommRegisterFile regs;
    std::uint32_t got = 0;
    Tick when = 0;

    sim::Process consumer(sim, "consumer", [&](sim::Process &p) {
        got = regs.load(7, p);
        when = sim.now();
    });
    sim::Process producer(sim, "producer", [&](sim::Process &p) {
        p.delay(1000);
        regs.store(7, 99);
    });
    consumer.start(0);
    producer.start(0);
    sim.run();

    EXPECT_EQ(got, 99u);
    EXPECT_EQ(when, 1000u);
    EXPECT_EQ(regs.stats().stalledLoads, 1u);
}

TEST(CommReg, LoadOfPresentValueDoesNotStall)
{
    sim::Simulator sim;
    CommRegisterFile regs;
    regs.store(1, 5);
    std::uint32_t got = 0;
    sim::Process p(sim, "p",
                   [&](sim::Process &self) { got = regs.load(1, self); });
    p.start(0);
    sim.run();
    EXPECT_EQ(got, 5u);
    EXPECT_EQ(regs.stats().stalledLoads, 0u);
    EXPECT_EQ(sim.now(), 0u);
}

TEST(CommReg, PingPongThroughOneRegister)
{
    sim::Simulator sim;
    CommRegisterFile regs;
    std::vector<std::uint32_t> seen;

    sim::Process reader(sim, "reader", [&](sim::Process &p) {
        for (int i = 0; i < 5; ++i)
            seen.push_back(regs.load(0, p));
    });
    sim::Process writer(sim, "writer", [&](sim::Process &p) {
        for (std::uint32_t i = 0; i < 5; ++i) {
            p.delay(10);
            regs.store(0, i);
        }
    });
    reader.start(0);
    writer.start(0);
    sim.run();
    EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(CommRegDeath, OutOfRangeIndexPanics)
{
    CommRegisterFile regs;
    EXPECT_DEATH(regs.store(128, 0), "out of range");
    EXPECT_DEATH(regs.store(-1, 0), "out of range");
}
