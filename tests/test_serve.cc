/**
 * @file
 * Serving-layer tests: partitioner, admission control, deadlines,
 * and failure-driven rescheduling.
 *
 * The acceptance property mirrors the ap_serve fault drill: a seeded
 * kill mid-fleet must doom the gangs holding that cell, quarantine
 * their partitions, and reschedule the jobs onto live cells until
 * they complete or exhaust their retry budgets — while the rest of
 * the fleet finishes untouched and every job lands in a terminal
 * state.
 */

#include <gtest/gtest.h>

#include <set>

#include "hw/config.hh"
#include "hw/machine.hh"
#include "serve/job.hh"
#include "serve/partition.hh"
#include "serve/scheduler.hh"

using namespace ap;
using serve::GangScheduler;
using serve::JobSpec;
using serve::JobState;
using serve::Partitioner;
using serve::Placement;
using serve::ServeConfig;

// ---------------------------------------------------------------- //
// Partitioner unit tests
// ---------------------------------------------------------------- //

TEST(Partitioner, FirstFitPlacesRowMajorAndExhausts)
{
    Partitioner p(4, 4);
    auto a = p.allocate(2, 2);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->x0, 0);
    EXPECT_EQ(a->y0, 0);
    EXPECT_EQ(a->cells, (std::vector<CellId>{0, 1, 4, 5}));

    auto b = p.allocate(2, 2);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->x0, 2); // next anchor in row-major order
    EXPECT_EQ(b->y0, 0);

    auto c = p.allocate(4, 2);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->y0, 2);

    EXPECT_EQ(p.free_cells(), 0);
    EXPECT_FALSE(p.allocate(1, 1).has_value());

    p.release(*b);
    EXPECT_EQ(p.free_cells(), 4);
    auto again = p.allocate(2, 2);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->x0, 2);
    EXPECT_EQ(again->y0, 0);
}

TEST(Partitioner, TriesTransposeWhenRequestedShapeCannotFit)
{
    Partitioner p(4, 2);
    auto a = p.allocate(2, 4); // only fits as 4x2
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->w, 4);
    EXPECT_EQ(a->h, 2);
    EXPECT_TRUE(p.could_ever_fit(2, 4));
    EXPECT_FALSE(p.could_ever_fit(3, 3));
}

TEST(Partitioner, QuarantinedCellsAreNeverReused)
{
    Partitioner p(2, 2);
    auto a = p.allocate(2, 1);
    ASSERT_TRUE(a.has_value());
    p.quarantine(*a);
    EXPECT_EQ(p.quarantined_cells(), 2);
    // Only the bottom row remains; a 2x1 still fits there, a 2x2
    // never will again.
    auto b = p.allocate(2, 1);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->y0, 1);
    EXPECT_FALSE(p.allocate(1, 1).has_value());
    p.release(*b);
    EXPECT_FALSE(p.allocate(2, 2).has_value());
}

TEST(Partitioner, DeadCellBlocksRectanglesCoveringIt)
{
    Partitioner p(2, 2);
    p.mark_dead(0);
    EXPECT_EQ(p.dead_cells(), 1);
    EXPECT_FALSE(p.allocate(2, 2).has_value());
    auto a = p.allocate(2, 1); // bottom row is clear
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->y0, 1);
    EXPECT_EQ(p.busy_list(), (std::vector<CellId>{2, 3}));
}

// ---------------------------------------------------------------- //
// Scheduler integration tests
// ---------------------------------------------------------------- //

namespace
{

hw::MachineConfig
serve_machine(int cells, double watchdogUs = 3000.0)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.retry.watchdogUs = watchdogUs;
    return cfg;
}

JobSpec
small_job(int id, serve::JobKind kind = serve::JobKind::gen)
{
    JobSpec s;
    s.id = id;
    s.kind = kind;
    s.pw = 2;
    s.ph = 2;
    s.iters = 3;
    s.bytes = 512;
    s.computeUs = 30.0;
    s.deadline = serve::DeadlineClass::batch;
    s.retryBudget = 2;
    s.arrivalUs = 20.0 + 10.0 * id;
    s.seed = 1000 + static_cast<std::uint64_t>(id);
    return s;
}

} // namespace

TEST(GangScheduler, SingleJobRunsToCompletionWithStats)
{
    hw::Machine m(serve_machine(4));
    GangScheduler sched(m, ServeConfig{});
    sched.schedule_stream({small_job(0, serve::JobKind::matmul)});
    m.run_to_completion();
    sched.finalize();

    ASSERT_EQ(sched.jobs().size(), 1u);
    const serve::JobRecord &r = sched.jobs().front();
    EXPECT_EQ(r.state, JobState::completed);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_GT(r.serviceTicks, 0u);
    EXPECT_TRUE(sched.all_terminal());
    EXPECT_EQ(sched.totals().completed, 1u);
    EXPECT_EQ(sched.partitioner().busy_cells(), 0);

    // The per-job stats subtree exists while the scheduler lives.
    auto snap = m.stats_registry().snapshot();
    bool sawJob = false;
    for (const auto &kv : snap)
        if (kv.first == "serve.job.0.attempts") {
            sawJob = true;
            EXPECT_EQ(kv.second, 1u);
        }
    EXPECT_TRUE(sawJob);
}

TEST(GangScheduler, EveryWorkloadKindCompletes)
{
    hw::Machine m(serve_machine(16));
    GangScheduler sched(m, ServeConfig{});
    std::vector<JobSpec> stream;
    for (int k = 0; k < 6; ++k)
        stream.push_back(
            small_job(k, static_cast<serve::JobKind>(k)));
    sched.schedule_stream(stream);
    m.run_to_completion();
    sched.finalize();

    EXPECT_TRUE(sched.all_terminal());
    EXPECT_EQ(sched.totals().completed, 6u);
    EXPECT_EQ(sched.totals().failedTerminal, 0u);
}

TEST(GangScheduler, ShedsOnQueueFullAndTooLarge)
{
    hw::Machine m(serve_machine(4));
    ServeConfig cfg;
    cfg.queueDepth = 1;
    cfg.maxInflight = 1;
    GangScheduler sched(m, cfg);

    std::vector<JobSpec> stream;
    for (int i = 0; i < 4; ++i) {
        JobSpec s = small_job(i);
        s.arrivalUs = 20.0 + 1.0 * i; // burst: one runs, one queues
        stream.push_back(s);
    }
    JobSpec giant = small_job(4);
    giant.pw = 8; // can never fit a 2x2 torus
    giant.ph = 8;
    stream.push_back(giant);
    sched.schedule_stream(stream);
    m.run_to_completion();
    sched.finalize();

    EXPECT_TRUE(sched.all_terminal());
    EXPECT_EQ(sched.totals().shedTooLarge, 1u);
    EXPECT_GE(sched.totals().shedQueueFull, 1u);
    EXPECT_GE(sched.totals().completed, 2u);
    bool sawReason = false;
    for (const serve::JobRecord &r : sched.jobs())
        if (r.state == JobState::shed &&
            r.reason.find("queue_full") != std::string::npos)
            sawReason = true;
    EXPECT_TRUE(sawReason);
}

TEST(GangScheduler, UrgentDeadlineCancelsLongJobCleanly)
{
    hw::Machine m(serve_machine(4));
    ServeConfig cfg;
    cfg.urgentDeadlineUs = 300.0; // far below the job's run time
    GangScheduler sched(m, cfg);

    JobSpec s = small_job(0);
    s.deadline = serve::DeadlineClass::urgent;
    s.iters = 200;
    s.computeUs = 50.0;
    sched.schedule_stream({s});
    m.run_to_completion();
    sched.finalize();

    ASSERT_EQ(sched.jobs().size(), 1u);
    const serve::JobRecord &r = sched.jobs().front();
    EXPECT_EQ(r.state, JobState::deadline_cancelled) << r.reason;
    EXPECT_EQ(sched.totals().deadlineCancelled, 1u);
    // Clean cooperative exit: the partition is released, not
    // quarantined.
    EXPECT_EQ(sched.partitioner().quarantined_cells(), 0);
    EXPECT_EQ(sched.partitioner().free_cells(), 4);
}

TEST(GangScheduler, KillDrillReschedulesOntoFreshPartition)
{
    // The acceptance drill: 16 cells, a steady stream, one cell shot
    // mid-run. The hit job must retry on a live partition and every
    // job must reach a terminal state.
    hw::Machine m(serve_machine(16));
    GangScheduler sched(m, ServeConfig{});

    std::vector<JobSpec> stream;
    for (int i = 0; i < 12; ++i) {
        JobSpec s = small_job(i, static_cast<serve::JobKind>(i % 6));
        s.iters = 6;
        s.arrivalUs = 20.0 + 40.0 * i;
        stream.push_back(s);
    }
    sched.schedule_stream(stream);

    // Aim the kill at a cell a running gang actually holds.
    m.sim().schedule_for(-1, us_to_ticks(300.0), [&] {
        CellId victim = sched.pick_busy_cell(7);
        ASSERT_GE(victim, 0) << "fleet idle at kill time";
        m.sim().schedule_after_for(victim, us_to_ticks(5.0),
                                   [&m, victim] {
                                       m.fail_cell(victim);
                                   });
    });

    m.run_to_completion();
    sched.finalize();

    const serve::ServeTotals &t = sched.totals();
    EXPECT_TRUE(sched.all_terminal());
    EXPECT_GE(t.attemptsKilled, 1u);
    EXPECT_GE(t.partitionsQuarantined, 1u);
    EXPECT_GE(t.retried, 1u);
    EXPECT_EQ(t.failedTerminal, 0u);
    EXPECT_EQ(t.completed, 12u);
    EXPECT_EQ(sched.partitioner().dead_cells(), 1);

    // The retried job's second attempt avoided the quarantined
    // rectangle: its record shows >1 attempts and a completed state.
    bool sawRetry = false;
    for (const serve::JobRecord &r : sched.jobs())
        if (r.attempts > 1) {
            sawRetry = true;
            EXPECT_EQ(r.state, JobState::completed) << r.reason;
            EXPECT_GE(r.retries, 1u);
        }
    EXPECT_TRUE(sawRetry);
}

TEST(GangScheduler, ExhaustedRetryBudgetReportsTerminalFailure)
{
    // One job, retry budget 0, and a kill guaranteed to land inside
    // its service time: the loss must be terminal, with the first
    // error preserved in the reason — and must not crash the fleet.
    hw::Machine m(serve_machine(4));
    GangScheduler sched(m, ServeConfig{});

    JobSpec s = small_job(0);
    s.retryBudget = 0;
    s.iters = 50;
    s.computeUs = 50.0;
    sched.schedule_stream({s});

    m.sim().schedule_for(-1, us_to_ticks(200.0), [&] {
        CellId victim = sched.pick_busy_cell(0);
        ASSERT_GE(victim, 0);
        m.sim().schedule_after_for(victim, us_to_ticks(5.0),
                                   [&m, victim] {
                                       m.fail_cell(victim);
                                   });
    });

    m.run_to_completion();
    sched.finalize();

    ASSERT_EQ(sched.jobs().size(), 1u);
    const serve::JobRecord &r = sched.jobs().front();
    EXPECT_EQ(r.state, JobState::failed) << r.reason;
    EXPECT_NE(r.reason.find("retry budget exhausted"),
              std::string::npos)
        << r.reason;
    EXPECT_EQ(sched.totals().retried, 0u);
    EXPECT_EQ(sched.totals().failedTerminal, 1u);
    EXPECT_GE(sched.totals().partitionsQuarantined, 1u);
}

TEST(GangScheduler, JobsWithNoFeasiblePartitionStarve)
{
    // Kill a cell before the stream starts: the 2x2 torus can never
    // host a 2x2 job again, so the job must come out starved (not
    // hang the run, not crash finalize).
    hw::Machine m(serve_machine(4));
    GangScheduler sched(m, ServeConfig{});

    m.sim().schedule_for(0, us_to_ticks(5.0),
                         [&m] { m.fail_cell(0); });
    JobSpec s = small_job(0);
    s.arrivalUs = 100.0;
    sched.schedule_stream({s});
    m.run_to_completion();
    sched.finalize();

    ASSERT_EQ(sched.jobs().size(), 1u);
    const serve::JobRecord &r = sched.jobs().front();
    EXPECT_EQ(r.state, JobState::starved) << r.reason;
    EXPECT_NE(r.reason.find("no feasible partition"),
              std::string::npos);
    EXPECT_EQ(sched.totals().starved, 1u);
    EXPECT_TRUE(sched.all_terminal());
}

TEST(GangScheduler, StatsSubtreeRemovedWithScheduler)
{
    hw::Machine m(serve_machine(4));
    {
        GangScheduler sched(m, ServeConfig{});
        sched.schedule_stream({small_job(0)});
        m.run_to_completion();
        sched.finalize();
        bool sawServe = false;
        for (const auto &kv : m.stats_registry().snapshot())
            if (kv.first.rfind("serve.", 0) == 0)
                sawServe = true;
        EXPECT_TRUE(sawServe);
    }
    for (const auto &kv : m.stats_registry().snapshot())
        EXPECT_NE(kv.first.rfind("serve.", 0), 0u)
            << "stale stat " << kv.first;
}

TEST(TrafficGenerator, DeterministicSortedAndClipped)
{
    serve::TrafficConfig cfg;
    cfg.jobs = 24;
    cfg.seed = 9;
    cfg.maxW = 2;
    cfg.maxH = 2;
    auto a = serve::generate_stream(cfg);
    auto b = serve::generate_stream(cfg);
    ASSERT_EQ(a.size(), 24u);
    std::set<int> tenants;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, static_cast<int>(i));
        EXPECT_EQ(a[i].arrivalUs, b[i].arrivalUs);
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_LE(a[i].pw, 2);
        EXPECT_LE(a[i].ph, 2);
        if (i > 0) {
            EXPECT_GE(a[i].arrivalUs, a[i - 1].arrivalUs);
        }
        tenants.insert(a[i].tenant);
    }
    EXPECT_GT(tenants.size(), 1u);
}
