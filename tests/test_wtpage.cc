/**
 * @file
 * Write-through page tests (Section 4.2): hits replace remote
 * accesses with local ones, writes go through, coherence is
 * software-managed (stale until invalidated), FIFO eviction.
 */

#include <gtest/gtest.h>

#include <bit>
#include <memory>

#include "core/ap1000p.hh"
#include "core/wtpage.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 2 << 20;
    return cfg;
}

} // namespace

TEST(WtPage, SecondReadIsALocalHit)
{
    hw::Machine m(small(2));
    WtStats stats;
    Tick miss_cost = 0, hit_cost = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr data = ctx.alloc(4096);
        if (ctx.id() == 1)
            ctx.poke_f64(data, 42.5);
        ctx.barrier();
        if (ctx.id() == 0) {
            WtCache cache(ctx, 4);
            Tick t0 = ctx.now();
            EXPECT_DOUBLE_EQ(cache.read_f64(1, data), 42.5);
            miss_cost = ctx.now() - t0;
            t0 = ctx.now();
            EXPECT_DOUBLE_EQ(cache.read_f64(1, data), 42.5);
            EXPECT_DOUBLE_EQ(cache.read_f64(1, data + 128), 0.0);
            hit_cost = ctx.now() - t0;
            stats = cache.stats();
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(stats.readMisses, 1u);
    EXPECT_EQ(stats.readHits, 2u);
    // The hit path never touches the network.
    EXPECT_LT(hit_cost, miss_cost / 10);
}

TEST(WtPage, HitsGenerateNoNetworkTraffic)
{
    hw::Machine m(small(2));
    std::uint64_t msgs_after_miss = 0, msgs_after_hits = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr data = ctx.alloc(4096);
        ctx.barrier();
        if (ctx.id() == 0) {
            WtCache cache(ctx, 2);
            cache.read_u32(1, data);
            msgs_after_miss = ctx.owner().tnet().stats().messages;
            for (int i = 0; i < 100; ++i)
                cache.read_u32(1, data + static_cast<Addr>(i) * 4);
            msgs_after_hits = ctx.owner().tnet().stats().messages;
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(msgs_after_hits, msgs_after_miss);
}

TEST(WtPage, WritesGoThroughToTheOwner)
{
    hw::Machine m(small(2));
    double at_owner = 0, local_view = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr data = ctx.alloc(4096);
        ctx.barrier();
        if (ctx.id() == 0) {
            WtCache cache(ctx, 2);
            cache.read_f64(1, data); // install the page
            cache.write_f64(1, data, 7.25);
            local_view = cache.read_f64(1, data); // hit, updated copy
            ctx.wait_all_acks();
        }
        ctx.barrier();
        if (ctx.id() == 1)
            at_owner = ctx.peek_f64(data);
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_DOUBLE_EQ(local_view, 7.25);
    EXPECT_DOUBLE_EQ(at_owner, 7.25);
}

TEST(WtPage, StaleUntilInvalidated)
{
    // Software coherence: a cached copy does not see another cell's
    // write until the reader invalidates — and after invalidation it
    // does.
    hw::Machine m(small(3));
    double before = 0, stale = 0, fresh = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr data = ctx.alloc(4096);
        if (ctx.id() == 2)
            ctx.poke_f64(data, 1.0);
        ctx.barrier();

        std::unique_ptr<WtCache> cache;
        if (ctx.id() == 0) {
            cache = std::make_unique<WtCache>(ctx, 2);
            before = cache->read_f64(2, data);
        }
        ctx.barrier();

        if (ctx.id() == 1) {
            ctx.remote_store_u64(
                2, data, std::bit_cast<std::uint64_t>(2.0));
            ctx.wait_all_acks();
        }
        ctx.barrier();

        if (ctx.id() == 0) {
            stale = cache->read_f64(2, data);
            cache->invalidate_all();
            fresh = cache->read_f64(2, data);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_DOUBLE_EQ(before, 1.0);
    EXPECT_DOUBLE_EQ(stale, 1.0); // the cached copy
    EXPECT_DOUBLE_EQ(fresh, 2.0); // refetched after invalidation
}

TEST(WtPage, FifoEviction)
{
    hw::Machine m(small(2));
    WtStats stats;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr data = ctx.alloc(4 * 4096);
        ctx.barrier();
        if (ctx.id() == 0) {
            WtCache cache(ctx, 2); // two frames
            cache.read_u32(1, data);            // page 0
            cache.read_u32(1, data + 4096);     // page 1
            EXPECT_TRUE(cache.cached(1, data));
            cache.read_u32(1, data + 2 * 4096); // evicts page 0
            EXPECT_FALSE(cache.cached(1, data));
            EXPECT_TRUE(cache.cached(1, data + 4096));
            cache.read_u32(1, data); // miss again
            stats = cache.stats();
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(stats.readMisses, 4u);
    EXPECT_EQ(stats.evictions, 2u);
}

TEST(WtPage, PerPageInvalidate)
{
    hw::Machine m(small(2));
    auto r = run_spmd(m, [&](Context &ctx) {
        Addr data = ctx.alloc(2 * 4096);
        ctx.barrier();
        if (ctx.id() == 0) {
            WtCache cache(ctx, 4);
            cache.read_u32(1, data);
            cache.read_u32(1, data + 4096);
            cache.invalidate(1, data);
            EXPECT_FALSE(cache.cached(1, data));
            EXPECT_TRUE(cache.cached(1, data + 4096));
            EXPECT_EQ(cache.stats().invalidations, 1u);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
}

TEST(WtPageDeath, CrossPageReadIsFatal)
{
    hw::Machine m(small(2));
    EXPECT_DEATH(
        run_spmd(m,
                 [&](Context &ctx) {
                     if (ctx.id() == 0) {
                         WtCache cache(ctx, 2);
                         std::uint8_t buf[16];
                         cache.read(1, 4096 - 8, buf);
                     }
                 }),
        "page boundary");
}
