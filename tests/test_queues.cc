/**
 * @file
 * MSC+ command queue tests: 64-word capacity, DRAM spill, OS refill
 * (Section 4.1, "Queues and queue overflows").
 */

#include <gtest/gtest.h>

#include "hw/queues.hh"

using namespace ap;
using namespace ap::hw;

namespace
{

Command
cmd(int i)
{
    Command c;
    c.kind = CommandKind::put;
    c.dst = i;
    return c;
}

} // namespace

TEST(CommandQueue, HoldsEightCommandsInHardware)
{
    CommandQueue q; // 64 words / 8 words each
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(q.push(cmd(i))) << i;
    EXPECT_EQ(q.hw_depth(), 8);
    EXPECT_EQ(q.spill_depth(), 0);
}

TEST(CommandQueue, NinthCommandSpills)
{
    CommandQueue q;
    for (int i = 0; i < 8; ++i)
        q.push(cmd(i));
    EXPECT_TRUE(q.push(cmd(8)));
    EXPECT_EQ(q.spill_depth(), 1);
    EXPECT_EQ(q.stats().spills, 1u);
}

TEST(CommandQueue, SpilledOrderingIsFifoAcrossRefill)
{
    CommandQueue q;
    for (int i = 0; i < 20; ++i)
        q.push(cmd(i));

    std::vector<int> order;
    while (!q.empty()) {
        if (q.needs_refill())
            q.refill();
        order.push_back(q.pop().dst);
    }
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(CommandQueue, LaterPushesKeepSpillingWhileDrainBacklogExists)
{
    CommandQueue q;
    for (int i = 0; i < 9; ++i)
        q.push(cmd(i)); // 8 hw + 1 spill
    q.pop();            // hw has room again...
    EXPECT_TRUE(q.push(cmd(9))); // ...but FIFO forces a spill
    EXPECT_EQ(q.spill_depth(), 2);
}

TEST(CommandQueue, RefillMovesUpToCapacity)
{
    CommandQueue q;
    for (int i = 0; i < 30; ++i)
        q.push(cmd(i));
    while (q.hw_depth() > 0)
        q.pop();
    ASSERT_TRUE(q.needs_refill());
    int moved = q.refill();
    EXPECT_EQ(moved, 8);
    EXPECT_EQ(q.hw_depth(), 8);
    EXPECT_EQ(q.spill_depth(), 30 - 8 - 8);
    EXPECT_EQ(q.stats().refillInterrupts, 1u);
}

TEST(CommandQueue, RefillWithoutNeedIsNoop)
{
    CommandQueue q;
    q.push(cmd(0));
    EXPECT_EQ(q.refill(), 0);
    EXPECT_EQ(q.stats().refillInterrupts, 0u);
}

TEST(CommandQueue, MaxSpillDepthTracked)
{
    CommandQueue q;
    for (int i = 0; i < 50; ++i)
        q.push(cmd(i));
    EXPECT_EQ(q.stats().maxSpillDepth, 42u);
}

TEST(CommandQueue, MaxHwDepthIsAHighWaterMark)
{
    CommandQueue q;
    EXPECT_EQ(q.stats().maxHwDepth, 0u);
    q.push(cmd(0));
    q.push(cmd(1));
    EXPECT_EQ(q.stats().maxHwDepth, 2u);
    q.pop();
    q.pop();
    EXPECT_EQ(q.stats().maxHwDepth, 2u); // does not fall with drain
    for (int i = 0; i < 20; ++i)
        q.push(cmd(i));
    EXPECT_EQ(q.stats().maxHwDepth, 8u); // capped by RAM capacity
}

TEST(CommandQueue, RefillRaisesMaxHwDepth)
{
    // Forced spills leave the RAM queue untouched; the high-water
    // mark must still see the commands when the OS moves them back.
    CommandQueue q;
    q.push(cmd(0), /*force_spill=*/true);
    q.push(cmd(1), /*force_spill=*/true);
    EXPECT_EQ(q.stats().maxHwDepth, 0u);
    ASSERT_TRUE(q.needs_refill());
    q.refill();
    EXPECT_EQ(q.stats().maxHwDepth, 2u);
}

TEST(CommandQueue, ForcedOverflowRecordsSpillDepth)
{
    CommandQueue q;
    for (int i = 0; i < 4; ++i)
        q.push(cmd(i), /*force_spill=*/true);
    EXPECT_GT(q.stats().maxSpillDepth, 0u);
    EXPECT_EQ(q.stats().maxSpillDepth, 4u);
    while (!q.empty()) {
        if (q.needs_refill())
            q.refill();
        q.pop();
    }
    EXPECT_EQ(q.stats().maxSpillDepth, 4u); // sticky after drain
}

TEST(CommandQueue, CustomCapacity)
{
    CommandQueue q(16); // two commands
    EXPECT_FALSE(q.push(cmd(0)));
    EXPECT_FALSE(q.push(cmd(1)));
    EXPECT_TRUE(q.push(cmd(2)));
}

TEST(CommandQueue, ForcedPushSpillsEvenWithRoom)
{
    // The fault injector's hook: a forced push takes the DRAM spill
    // path although the hardware queue is empty.
    CommandQueue q;
    EXPECT_TRUE(q.push(cmd(0), /*force_spill=*/true));
    EXPECT_EQ(q.hw_depth(), 0);
    EXPECT_EQ(q.spill_depth(), 1);
    EXPECT_EQ(q.stats().spills, 1u);
    ASSERT_TRUE(q.needs_refill());
    EXPECT_EQ(q.refill(), 1);
    EXPECT_EQ(q.pop().dst, 0);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.stats().refillInterrupts, 1u);
}

TEST(CommandQueue, ForcedSpillsPreserveFifoAmongNormalPushes)
{
    CommandQueue q;
    for (int i = 0; i < 12; ++i)
        q.push(cmd(i), /*force_spill=*/(i % 3 == 0));
    std::vector<int> order;
    while (!q.empty()) {
        if (q.needs_refill())
            q.refill();
        order.push_back(q.pop().dst);
    }
    ASSERT_EQ(order.size(), 12u);
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(CommandQueueDeath, TooSmallCapacityIsFatal)
{
    EXPECT_DEATH(CommandQueue(4), "cannot hold");
}

TEST(CommandQueueDeath, PopOnEmptyHardwarePanics)
{
    CommandQueue q;
    EXPECT_DEATH(q.pop(), "empty");
}
