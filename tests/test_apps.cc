/**
 * @file
 * Application-suite tests: every generator's Table 3 row matches the
 * paper, traces are deterministic and replayable under all three
 * machine models, and the headline Table 2 orderings hold.
 *
 * Full-scale FT/SP traces are large; these tests run the smaller
 * apps end-to-end and validate the big ones structurally.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/app.hh"
#include "apps/cg.hh"
#include "apps/tomcatv.hh"
#include "mlsim/params.hh"
#include "mlsim/replay.hh"

using namespace ap;
using namespace ap::apps;
using namespace ap::mlsim;

namespace
{

void
expect_row(const Table3Row &ours, const Table3Row &paper,
           double tol_frac)
{
    EXPECT_EQ(ours.pe, paper.pe);
    auto close = [&](double a, double b, const char *what) {
        if (b == 0) {
            EXPECT_EQ(a, 0.0) << what;
            return;
        }
        EXPECT_NEAR(a, b, std::fabs(b) * tol_frac + 0.6) << what;
    };
    close(ours.send, paper.send, "SEND");
    close(ours.gop, paper.gop, "Gop");
    close(ours.vgop, paper.vgop, "VGop");
    close(ours.sync, paper.sync, "Sync");
    close(ours.put, paper.put, "PUT");
    close(ours.puts, paper.puts, "PUTS");
    close(ours.get, paper.get, "GET");
    close(ours.gets, paper.gets, "GETS");
    close(ours.msgSize, paper.msgSize, "msgSize");
}

} // namespace

TEST(Apps, SuiteHasTheEightPaperRows)
{
    auto suite = standard_suite();
    ASSERT_EQ(suite.size(), 8u);
    const char *names[] = {"EP", "CG", "FT", "SP",
                           "TC st", "TC no st", "MatMul", "SCG"};
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i]->info().name, names[i]);
}

TEST(Apps, MakeAppRoundTripsNames)
{
    for (const char *n : {"EP", "CG", "FT", "SP", "TC st",
                          "TC no st", "MatMul", "SCG"})
        EXPECT_EQ(make_app(n)->info().name, n);
}

TEST(AppsDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH(make_app("LU"), "unknown application");
}

class AppTable3 : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AppTable3, GeneratedCountsMatchThePaper)
{
    auto app = make_app(GetParam());
    core::Trace trace = app->generate();
    EXPECT_EQ(trace.cells(), app->info().cells);
    // 0.2% tolerance: FT's uniform 1638-byte messages vs the paper's
    // 1638.4 mean is the only fractional deviation.
    expect_row(measure_stats(trace), app->paper_stats(), 0.002);
}

INSTANTIATE_TEST_SUITE_P(AllEight, AppTable3,
                         ::testing::Values("EP", "CG", "FT", "SP",
                                           "TC st", "TC no st",
                                           "MatMul", "SCG"));

TEST(Apps, GenerationIsDeterministic)
{
    Cg cg;
    core::Trace a = cg.generate();
    core::Trace b = cg.generate();
    ASSERT_EQ(a.cells(), b.cells());
    ASSERT_EQ(a.total_events(), b.total_events());
    for (CellId c = 0; c < a.cells(); ++c) {
        const auto &ta = a.timeline(c);
        const auto &tb = b.timeline(c);
        ASSERT_EQ(ta.size(), tb.size());
        for (std::size_t i = 0; i < ta.size(); ++i) {
            EXPECT_EQ(ta[i].op, tb[i].op);
            EXPECT_EQ(ta[i].peer, tb[i].peer);
            EXPECT_EQ(ta[i].bytes, tb[i].bytes);
        }
    }
}

class AppReplay : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AppReplay, ReplaysDeadlockFreeWithSaneBreakdowns)
{
    auto app = make_app(GetParam());
    core::Trace trace = app->generate();
    for (const Params &p : {Params::ap1000(), Params::ap1000_fast(),
                            Params::ap1000_plus()}) {
        ReplayReport r = Replay(trace, p).run();
        ASSERT_FALSE(r.deadlock) << p.name;
        EXPECT_GT(r.totalUs, 0.0);
        for (const CellBreakdown &c : r.cells) {
            EXPECT_GE(c.execUs, 0.0);
            EXPECT_GE(c.rtsUs, 0.0);
            EXPECT_GE(c.overheadUs, 0.0);
            EXPECT_GE(c.idleUs, 0.0);
            EXPECT_LE(c.totalUs, r.totalUs + 1e-6);
        }
    }
}

// The biggest traces (FT, SP) are exercised by the bench binaries;
// the mid-sized ones run here.
INSTANTIATE_TEST_SUITE_P(MidSized, AppReplay,
                         ::testing::Values("EP", "CG", "TC st",
                                           "TC no st", "MatMul",
                                           "SCG"));

TEST(Apps, Table2OrderingsHold)
{
    // The crossovers the paper highlights, checked on the three
    // cheapest informative workloads.
    auto check = [](const char *name, bool expect_above8_plus) {
        auto app = make_app(name);
        core::Trace trace = app->generate();
        double base = Replay(trace, Params::ap1000()).run().totalUs;
        double plus =
            Replay(trace, Params::ap1000_plus()).run().totalUs;
        double fast =
            Replay(trace, Params::ap1000_fast()).run().totalUs;
        EXPECT_LE(plus, fast) << name;
        EXPECT_LT(fast, base) << name;
        if (expect_above8_plus)
            EXPECT_GT(base / plus, 8.0) << name;
        else
            EXPECT_LE(base / plus, 8.6) << name;
    };
    check("CG", false);
    check("MatMul", false); // 8.34: slightly above 8, below 8.6
    check("TC no st", true);
}

TEST(Apps, EpSpeedupIsExactlyProcessorImprovement)
{
    auto app = make_app("EP");
    core::Trace trace = app->generate();
    double base = Replay(trace, Params::ap1000()).run().totalUs;
    double plus = Replay(trace, Params::ap1000_plus()).run().totalUs;
    double fast = Replay(trace, Params::ap1000_fast()).run().totalUs;
    EXPECT_DOUBLE_EQ(base / plus, 8.0);
    EXPECT_DOUBLE_EQ(base / fast, 8.0);
}

TEST(Apps, TomcatvStrideBeatsNoStrideOnTheAp1000Plus)
{
    // "TOMCATV with stride data transfers is about 50% faster than
    // that without stride data transfers on the AP1000+ model."
    core::Trace st = Tomcatv(true).generate();
    core::Trace nost = Tomcatv(false).generate();
    double t_st = Replay(st, Params::ap1000_plus()).run().totalUs;
    double t_nost = Replay(nost, Params::ap1000_plus()).run().totalUs;
    EXPECT_GT(t_nost, 1.1 * t_st);
    EXPECT_LT(t_nost, 2.5 * t_st);
}

TEST(Apps, CgOverheadDominatedByVectorReductions)
{
    // "large vector global summations dominate in its execution" —
    // on the AP1000+ CG's overhead share is the largest of the suite.
    core::Trace trace = Cg().generate();
    ReplayReport r = Replay(trace, Params::ap1000_plus()).run();
    CellBreakdown m = r.mean();
    EXPECT_GT(m.overheadUs, 0.3 * m.totalUs);
}
