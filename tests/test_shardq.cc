/**
 * @file
 * Unit tests of the sharded parallel event kernel (sim/shardq.hh):
 * lookahead/horizon math, cross-shard handoff ordering, canonical
 * same-tick merges, safe-horizon execution, determinism properties,
 * strict/relaxed lookahead-violation handling, and the kill path
 * under worker threads (SpmdResult::failedCells).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/program.hh"
#include "hw/config.hh"
#include "hw/machine.hh"
#include "sim/eventq.hh"
#include "sim/shardq.hh"

using namespace ap;
using namespace ap::sim;

namespace
{

constexpr Tick kLookahead = 100;

/** xorshift64 — a deterministic per-test value stream. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

/**
 * A PHOLD-style workload over @p cells logical timelines: every cell
 * starts one event chain; each firing updates the cell's private
 * state and reschedules onto a pseudo-random cell with a delay of at
 * least the lookahead (self-sends may be shorter). Order-sensitive
 * per-cell digests make any mis-ordering visible.
 */
struct Workload
{
    explicit Workload(int cells)
        : state(static_cast<std::size_t>(cells)),
          fired(static_cast<std::size_t>(cells))
    {
    }

    void
    start(Simulator &sim, int cells, int hops)
    {
        for (int c = 0; c < cells; ++c)
            sim.schedule_for(
                c, static_cast<Tick>(c % 7),
                [this, &sim, c, cells, hops] {
                    step(sim, c, cells, hops);
                });
    }

    void
    step(Simulator &sim, int c, int cells, int hops)
    {
        auto idx = static_cast<std::size_t>(c);
        state[idx] =
            mix(state[idx] + sim.now() * 31 +
                static_cast<std::uint64_t>(c) + 1);
        if (++fired[idx] >= hops)
            return;
        std::uint64_t r = state[idx];
        int next = static_cast<int>(
            r % static_cast<std::uint64_t>(cells));
        Tick delay = next == c
                         ? 1 + (r >> 8) % 40
                         : kLookahead + (r >> 8) % 200;
        sim.schedule_after_for(next, delay, [this, &sim, next,
                                             cells, hops] {
            step(sim, next, cells, hops);
        });
    }

    std::uint64_t
    digest() const
    {
        std::uint64_t d = 0xcbf29ce484222325ull;
        for (std::uint64_t s : state)
            d = mix(d ^ s);
        return d;
    }

    std::vector<std::uint64_t> state;
    std::vector<int> fired;
};

} // namespace

TEST(ShardQ, SingleShardMatchesSequentialBitForBit)
{
    const int cells = 8, hops = 50;

    Simulator seq;
    TickHistory seqHist;
    seq.set_history(&seqHist);
    Workload wseq(cells);
    wseq.start(seq, cells, hops);
    Tick seqEnd = seq.run();

    ShardConfig cfg;
    cfg.shards = 1;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);
    TickHistory shHist;
    sh.set_history(&shHist);
    Workload wsh(cells);
    wsh.start(sh, cells, hops);
    Tick shEnd = sh.run();

    EXPECT_EQ(seqEnd, shEnd);
    EXPECT_EQ(seq.executed(), sh.executed());
    EXPECT_EQ(seqHist.digest(), shHist.digest());
    EXPECT_EQ(wseq.digest(), wsh.digest());
}

TEST(ShardQ, DeterministicModeMatchesSequentialAcrossShardCounts)
{
    const int cells = 12, hops = 40;

    Simulator seq;
    TickHistory seqHist;
    seq.set_history(&seqHist);
    Workload wseq(cells);
    wseq.start(seq, cells, hops);
    seq.run();

    for (int shards : {2, 3, 4}) {
        ShardConfig cfg;
        cfg.shards = shards;
        cfg.lookahead = kLookahead;
        cfg.deterministic = true;
        ShardedSimulator sh(cfg);
        TickHistory hist;
        sh.set_history(&hist);
        Workload w(cells);
        w.start(sh, cells, hops);
        sh.run();

        EXPECT_EQ(seqHist.digest(), hist.digest())
            << "shards=" << shards;
        EXPECT_EQ(wseq.digest(), w.digest()) << "shards=" << shards;
        EXPECT_EQ(seq.executed(), sh.executed());
    }
}

TEST(ShardQ, SafeHorizonIsMinPendingPlusLookahead)
{
    ShardConfig cfg;
    cfg.shards = 4;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);

    EXPECT_EQ(sh.safe_horizon(0), max_tick); // idle: no bound
    sh.schedule_for(0, 500, [] {});
    sh.schedule_for(1, 300, [] {});
    sh.schedule_for(2, 900, [] {});
    EXPECT_EQ(sh.shard_next(0), 500u);
    EXPECT_EQ(sh.shard_next(1), 300u);
    EXPECT_EQ(sh.shard_next(3), max_tick);
    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(sh.safe_horizon(s), 300u + kLookahead);
}

TEST(ShardQ, HorizonSaturatesAtMaxTick)
{
    ShardConfig cfg;
    cfg.shards = 2;
    cfg.lookahead = max_tick;
    ShardedSimulator sh(cfg);
    sh.schedule_for(0, 10, [] {});
    EXPECT_EQ(sh.safe_horizon(0), max_tick);
}

TEST(ShardQ, DefaultAffinityMapIsModuloWithNegativesOnShardZero)
{
    ShardConfig cfg;
    cfg.shards = 3;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);
    EXPECT_EQ(sh.shard_of(0), 0);
    EXPECT_EQ(sh.shard_of(4), 1);
    EXPECT_EQ(sh.shard_of(5), 2);
    EXPECT_EQ(sh.shard_of(-1), 0);
}

TEST(ShardQ, CustomAffinityMapRoutesContiguousBlocks)
{
    ShardConfig cfg;
    cfg.shards = 2;
    cfg.lookahead = kLookahead;
    cfg.affinityMap = [](int a) { return a < 8 ? 0 : 1; };
    ShardedSimulator sh(cfg);
    EXPECT_EQ(sh.shard_of(7), 0);
    EXPECT_EQ(sh.shard_of(8), 1);

    // Same-tick events on different shards drain concurrently.
    std::atomic<int> ran{0};
    sh.schedule_for(9, 5, [&] { ++ran; });
    sh.schedule_for(3, 5, [&] { ++ran; });
    sh.run();
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(sh.shard_stats(0).executed, 1u);
    EXPECT_EQ(sh.shard_stats(1).executed, 1u);
}

TEST(ShardQ, CrossShardHandoffCountsBothSides)
{
    ShardConfig cfg;
    cfg.shards = 2;
    cfg.lookahead = kLookahead;
    cfg.deterministic = true;
    ShardedSimulator sh(cfg);

    sh.schedule_for(0, 0, [&] {
        // Executes on shard 0; schedules onto shard 1.
        sh.schedule_after_for(1, kLookahead, [] {});
    });
    sh.run();
    EXPECT_EQ(sh.shard_stats(0).handoffsOut, 1u);
    EXPECT_EQ(sh.shard_stats(1).handoffsIn, 1u);
    EXPECT_EQ(sh.executed(), 2u);
}

TEST(ShardQ, ParallelSameTickHandoffsMergeInCanonicalOrder)
{
    // Shards 1 and 2 both send a burst of same-tick events to shard
    // 0's affinities. The canonical merge rule — (tick, affinity,
    // source shard, source sequence) — fixes the execution order no
    // matter which worker finished first; the recorded order must
    // match the rule exactly.
    ShardConfig cfg;
    cfg.shards = 3;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);

    std::vector<int> order; // tags appended on shard 0 (one thread)
    const Tick target = 1000;

    // affinity 1 -> shard 1, affinity 2 -> shard 2 (modulo map).
    sh.schedule_for(1, 1, [&] {
        sh.schedule_for(3, target, [&] { order.push_back(130); });
        sh.schedule_for(0, target, [&] { order.push_back(100); });
        sh.schedule_for(0, target, [&] { order.push_back(101); });
    });
    sh.schedule_for(2, 2, [&] {
        sh.schedule_for(0, target, [&] { order.push_back(200); });
        sh.schedule_for(3, target, [&] { order.push_back(230); });
    });
    sh.run();

    // Canonical: affinity 0 before affinity 3; within (tick,
    // affinity), source shard 1 before 2; within a source, issue
    // order.
    EXPECT_EQ(order, (std::vector<int>{100, 101, 200, 130, 230}));
    EXPECT_EQ(sh.lookahead_violations(), 0u);
}

TEST(ShardQ, ParallelRunIsReproducibleRunToRun)
{
    const int cells = 16, hops = 60;
    std::uint64_t digests[2];
    std::uint64_t hists[2];
    for (int rep = 0; rep < 2; ++rep) {
        ShardConfig cfg;
        cfg.shards = 4;
        cfg.lookahead = kLookahead;
        ShardedSimulator sh(cfg);
        TickHistory hist;
        sh.set_history(&hist);
        Workload w(cells);
        w.start(sh, cells, hops);
        sh.run();
        digests[rep] = w.digest();
        hists[rep] = hist.hash();
        EXPECT_EQ(sh.lookahead_violations(), 0u);
    }
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(hists[0], hists[1]);
}

TEST(ShardQ, ParallelMatchesSequentialEndState)
{
    // The workload's cross-cell effects all respect the lookahead,
    // and per-cell state only depends on that cell's event order —
    // so the parallel end state must equal the sequential one even
    // though cross-shard interleaving differs.
    const int cells = 16, hops = 60;

    Simulator seq;
    Workload wseq(cells);
    wseq.start(seq, cells, hops);
    seq.run();

    ShardConfig cfg;
    cfg.shards = 4;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);
    Workload w(cells);
    w.start(sh, cells, hops);
    sh.run();

    EXPECT_EQ(wseq.digest(), w.digest());
    EXPECT_EQ(seq.executed(), sh.executed());
    EXPECT_GE(sh.windows(), 1u);
}

TEST(ShardQ, NoEventFiresBeforeItsShardsSafeHorizon)
{
    // Every cross-shard event must execute exactly at its scheduled
    // tick, at least one lookahead after the tick that created it,
    // and per-shard execution must be time-monotonic.
    ShardConfig cfg;
    cfg.shards = 4;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);

    struct Probe
    {
        Tick created, scheduled, executed;
    };
    std::vector<Probe> probes(64);
    std::atomic<int> bad{0};
    std::vector<Tick> lastOnShard(4, 0);

    for (int i = 0; i < 64; ++i) {
        int src = i % 4;
        int dst = (i + 1) % 4;
        Tick start = static_cast<Tick>(10 * i);
        sh.schedule_for(src, start, [&, i, dst, start] {
            Tick fire = start + kLookahead +
                        static_cast<Tick>(i % 50);
            probes[static_cast<std::size_t>(i)].created = start;
            probes[static_cast<std::size_t>(i)].scheduled = fire;
            sh.schedule_for(dst, fire, [&, i, dst] {
                Tick t = sh.now();
                probes[static_cast<std::size_t>(i)].executed = t;
                auto d = static_cast<std::size_t>(dst);
                if (t < lastOnShard[d])
                    bad.fetch_add(1);
                lastOnShard[d] = t;
            });
        });
    }
    sh.run();

    EXPECT_EQ(bad.load(), 0) << "per-shard time order broken";
    for (const Probe &p : probes) {
        EXPECT_EQ(p.executed, p.scheduled);
        EXPECT_GE(p.executed, p.created + kLookahead);
    }
    EXPECT_EQ(sh.lookahead_violations(), 0u);
}

TEST(ShardQDeath, StrictLookaheadViolationPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ShardConfig cfg;
    cfg.shards = 2;
    cfg.lookahead = kLookahead;
    ASSERT_DEATH(
        {
            ShardedSimulator sh(cfg);
            sh.schedule_for(0, 10, [&] {
                // Cross-shard with a delay below the lookahead.
                sh.schedule_after_for(1, kLookahead / 2, [] {});
            });
            sh.run();
        },
        "lookahead violation");
}

TEST(ShardQ, RelaxedLookaheadViolationClampsAndCounts)
{
    ShardConfig cfg;
    cfg.shards = 2;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);
    sh.set_strict_lookahead(false);

    Tick fired = 0;
    sh.schedule_for(0, 10, [&] {
        sh.schedule_after_for(1, 5, [&] { fired = sh.now(); });
    });
    sh.run();

    EXPECT_EQ(sh.lookahead_violations(), 1u);
    // Clamped to the window boundary: never before creation + the
    // window's end, never lost.
    EXPECT_GE(fired, 10u + 5u);
    EXPECT_EQ(fired, 10u + kLookahead); // window end = min + lookahead
}

TEST(ShardQDeath, SchedulingInThePastPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ShardConfig cfg;
    cfg.shards = 2;
    cfg.lookahead = kLookahead;
    cfg.deterministic = true;
    ASSERT_DEATH(
        {
            ShardedSimulator sh(cfg);
            sh.schedule_for(0, 50, [&] {
                sh.schedule_for(1, 10, [] {});
            });
            sh.run();
        },
        "past");
}

TEST(ShardQ, RunUntilStopsAtLimitAndResumes)
{
    ShardConfig cfg;
    cfg.shards = 4;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);

    int fired = 0;
    for (int i = 0; i < 4; ++i)
        sh.schedule_for(i, static_cast<Tick>(100 * (i + 1)),
                        [&] { ++fired; });
    sh.run_until(250);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sh.pending(), 2u);
    EXPECT_FALSE(sh.empty());
    sh.run();
    EXPECT_EQ(fired, 4);
    EXPECT_TRUE(sh.empty());
    EXPECT_EQ(sh.pending(), 0u);
    EXPECT_EQ(sh.executed(), 4u);
}

TEST(ShardQ, StepExecutesGloballyEarliestEvent)
{
    ShardConfig cfg;
    cfg.shards = 3;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);

    std::vector<int> order;
    sh.schedule_for(2, 30, [&] { order.push_back(2); });
    sh.schedule_for(1, 10, [&] { order.push_back(1); });
    sh.schedule_for(0, 20, [&] { order.push_back(0); });

    EXPECT_TRUE(sh.step());
    EXPECT_EQ(sh.now(), 10u);
    EXPECT_TRUE(sh.step());
    EXPECT_TRUE(sh.step());
    EXPECT_FALSE(sh.step());
    EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(ShardQ, ReportNamesShardsWindowsAndViolations)
{
    ShardConfig cfg;
    cfg.shards = 2;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);
    sh.schedule_for(0, 1, [] {});
    sh.schedule_for(1, 2, [] {});
    sh.run();
    std::string r = sh.report();
    EXPECT_NE(r.find("2 shards"), std::string::npos);
    EXPECT_NE(r.find("shard 0"), std::string::npos);
    EXPECT_NE(r.find("shard 1"), std::string::npos);
    EXPECT_NE(r.find("violations"), std::string::npos);
}

TEST(ShardQ, ParallelRunRecordsWindowTelemetry)
{
    const int cells = 16, hops = 40;
    ShardConfig cfg;
    cfg.shards = 2;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);
    Workload w(cells);
    w.start(sh, cells, hops);
    sh.run();

    const WindowAgg &agg = sh.window_stats();
    EXPECT_EQ(agg.windows, sh.windows());
    EXPECT_GT(agg.windows, 0u);
    EXPECT_EQ(agg.events, sh.executed());
    EXPECT_GT(agg.horizonAdvance, 0u);
    // Imbalance is max/mean x1000, so >= 1000 whenever any window
    // executed events.
    EXPECT_GE(agg.imbalanceMaxX1000, 1000u);
    EXPECT_GE(agg.imbalanceSumX1000, 1000u);

    std::vector<WindowRecord> recs = sh.window_records();
    ASSERT_FALSE(recs.empty());
    EXPECT_EQ(recs.size() + sh.window_records_dropped(),
              agg.windows);
    std::uint64_t events = 0;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        if (i > 0) {
            EXPECT_EQ(recs[i].index, recs[i - 1].index + 1);
            EXPECT_GE(recs[i].start, recs[i - 1].start);
        }
        EXPECT_GE(recs[i].end, recs[i].start);
        ASSERT_EQ(recs[i].shards.size(), 2u);
        std::uint64_t inWindow = 0, maxShard = 0;
        for (const WindowShard &ws : recs[i].shards) {
            inWindow += ws.events;
            maxShard = std::max(maxShard, ws.events);
        }
        EXPECT_EQ(inWindow, recs[i].events);
        EXPECT_EQ(maxShard, recs[i].maxShardEvents);
        events += recs[i].events;
    }
    if (sh.window_records_dropped() == 0) {
        EXPECT_EQ(events, sh.executed());
    }

    // Both shards ran events and the registry-facing per-shard
    // counters saw them.
    for (int s = 0; s < 2; ++s)
        EXPECT_GT(sh.shard_stats(s).executed, 0u);
}

TEST(ShardQ, WindowHookSeesEveryWindowInOrder)
{
    ShardConfig cfg;
    cfg.shards = 2;
    cfg.lookahead = kLookahead;
    ShardedSimulator sh(cfg);
    std::vector<std::uint64_t> indices;
    sh.set_window_hook([&](const WindowRecord &rec) {
        indices.push_back(rec.index);
    });
    Workload w(8);
    w.start(sh, 8, 20);
    sh.run();

    ASSERT_EQ(indices.size(), sh.windows());
    for (std::size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(indices[i], i);
}

TEST(ShardQ, SingleShardHasNoWindowTelemetry)
{
    // shards == 1 takes the sequential fast path: the windowed
    // machinery (and its bookkeeping) must not run at all.
    ShardConfig cfg;
    cfg.shards = 1;
    ShardedSimulator sh(cfg);
    Workload w(8);
    w.start(sh, 8, 20);
    sh.run();

    EXPECT_GT(sh.executed(), 0u);
    EXPECT_EQ(sh.window_stats().windows, 0u);
    EXPECT_TRUE(sh.window_records().empty());
    EXPECT_EQ(sh.window_records_dropped(), 0u);
    EXPECT_EQ(sh.shard_stats(0).barrierWaitNs, 0u);
}

TEST(ShardQ, DeterministicModeHasNoWindowTelemetry)
{
    ShardConfig cfg;
    cfg.shards = 2;
    cfg.lookahead = kLookahead;
    cfg.deterministic = true;
    ShardedSimulator sh(cfg);
    Workload w(8);
    w.start(sh, 8, 20);
    sh.run();

    EXPECT_GT(sh.executed(), 0u);
    EXPECT_EQ(sh.window_stats().windows, 0u);
    EXPECT_TRUE(sh.window_records().empty());
}

namespace
{

/**
 * Kill cell 3 at t=100us on a machine driven by the sharded kernel
 * and assert the full failure contract: survivors cross the barrier
 * degraded, the dead cell lands in SpmdResult::failedCells, and the
 * run itself still passes. Mirrors the single-threaded
 * CellFailure.SurvivorsFinishBarrierAndReductionsDegraded — this is
 * the threads x kill-path combination nothing else covered.
 */
void
run_threaded_kill(bool deterministic)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(4);
    cfg.threads = 2;
    cfg.deterministic = deterministic;
    cfg.faults.seed = 47;
    cfg.faults.kills.push_back({3, 100.0});
    cfg.retry.watchdogUs = 100000.0;
    hw::Machine m(cfg);

    std::atomic<int> degradedMarks{0};
    std::atomic<int> wrongScalar{0};
    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        CellId me = ctx.id();
        ctx.compute_us(200.0); // the kill lands inside this
        if (ctx.owner().cell_failed(me))
            return; // a dead cell's body bows out

        ctx.barrier();
        double s = ctx.allreduce(static_cast<double>(me + 1),
                                 core::ReduceOp::sum);
        if (!ctx.last_collective_degraded())
            degradedMarks.fetch_add(1); // must be degraded
        if (s != 1.0 + 2.0 + 3.0) // survivors 0,1,2 contribute
            wrongScalar.fetch_add(1);
    });

    EXPECT_FALSE(r.failed()) << (r.errors.empty()
                                     ? "deadlock"
                                     : r.errors.front());
    ASSERT_EQ(r.failedCells.size(), 1u)
        << "kill not filed under failedCells";
    EXPECT_EQ(r.failedCells.front(), 3);
    EXPECT_EQ(degradedMarks.load(), 0)
        << "a survivor's collective was not marked degraded";
    EXPECT_EQ(wrongScalar.load(), 0);
    EXPECT_TRUE(m.cell_failed(3));
    EXPECT_FALSE(m.cell_failed(0));
}

} // namespace

TEST(ShardQKill, FailedCellsSurvivesTwoWorkerThreads)
{
    run_threaded_kill(false);
}

TEST(ShardQKill, FailedCellsSurvivesDeterministicShardedMode)
{
    run_threaded_kill(true);
}

TEST(TickHistoryUnit, DigestIsOrderSensitive)
{
    TickHistory a, b;
    a.record(10, 1);
    a.record(10, 2);
    b.record(10, 2);
    b.record(10, 1);
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_EQ(a.events(), 2u);

    TickHistory c;
    c.record(10, 1);
    c.record(10, 2);
    EXPECT_EQ(a.hash(), c.hash());
    EXPECT_TRUE(a == c);
    EXPECT_NE(a.digest(), b.digest());

    c.reset();
    EXPECT_EQ(c.events(), 0u);
}
