/**
 * @file
 * Unit tests of the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"

using namespace ap;
using namespace ap::sim;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_TRUE(sim.empty());
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_FALSE(sim.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&]() { order.push_back(3); });
    sim.schedule(10, [&]() { order.push_back(1); });
    sim.schedule(20, [&]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        sim.schedule(5, [&, i]() { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            sim.schedule(sim.now() + 10, chain);
    };
    sim.schedule(0, chain);
    sim.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&]() { ++fired; });
    sim.schedule(20, [&]() { ++fired; });
    sim.schedule(30, [&]() { ++fired; });
    sim.run_until(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ZeroDelayEventRunsAtCurrentTick)
{
    Simulator sim;
    Tick seen = max_tick;
    sim.schedule(15, [&]() {
        sim.schedule_after(0, [&]() { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, ExecutedCounterCounts)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.schedule(static_cast<Tick>(i), []() {});
    sim.run();
    EXPECT_EQ(sim.executed(), 7u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    Simulator sim;
    sim.schedule(10, []() {});
    sim.run();
    EXPECT_DEATH(sim.schedule(5, []() {}), "past");
}

TEST(TickConversion, MicrosecondRoundTrip)
{
    EXPECT_EQ(us_to_ticks(1.0), 1000u);
    EXPECT_EQ(us_to_ticks(0.16), 160u);
    EXPECT_EQ(us_to_ticks(0.0), 0u);
    EXPECT_DOUBLE_EQ(ticks_to_us(2500), 2.5);
}
