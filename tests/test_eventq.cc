/**
 * @file
 * Unit tests of the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"

using namespace ap;
using namespace ap::sim;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_TRUE(sim.empty());
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_FALSE(sim.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&]() { order.push_back(3); });
    sim.schedule(10, [&]() { order.push_back(1); });
    sim.schedule(20, [&]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        sim.schedule(5, [&, i]() { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            sim.schedule(sim.now() + 10, chain);
    };
    sim.schedule(0, chain);
    sim.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&]() { ++fired; });
    sim.schedule(20, [&]() { ++fired; });
    sim.schedule(30, [&]() { ++fired; });
    sim.run_until(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ZeroDelayEventRunsAtCurrentTick)
{
    Simulator sim;
    Tick seen = max_tick;
    sim.schedule(15, [&]() {
        sim.schedule_after(0, [&]() { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, ExecutedCounterCounts)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.schedule(static_cast<Tick>(i), []() {});
    sim.run();
    EXPECT_EQ(sim.executed(), 7u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    Simulator sim;
    sim.schedule(10, []() {});
    sim.run();
    EXPECT_DEATH(sim.schedule(5, []() {}), "past");
}

TEST(EventQueueDeath, SchedulingBehindRunUntilClockPanics)
{
    // run_until() leaves the clock at the last executed event; the
    // past-check must hold against that clock, not the limit.
    Simulator sim;
    sim.schedule(40, []() {});
    sim.run_until(100);
    EXPECT_EQ(sim.now(), 40u);
    EXPECT_DEATH(sim.schedule(39, []() {}), "past");
}

TEST(EventQueue, JitterHookStretchesRelativeDelaysOnly)
{
    Simulator sim;
    sim.set_delay_jitter([](Tick) { return Tick{7}; });
    Tick relative = 0;
    Tick absolute = 0;
    sim.schedule_after(10, [&]() { relative = sim.now(); });
    // Absolute-time scheduling manages its own serialization
    // timeline and must never be jittered.
    sim.schedule(10, [&]() { absolute = sim.now(); });
    sim.run();
    EXPECT_EQ(relative, 17u);
    EXPECT_EQ(absolute, 10u);
}

TEST(EventQueue, JitterHookSeesTheOriginalDelta)
{
    Simulator sim;
    std::vector<Tick> seen;
    sim.set_delay_jitter([&](Tick dt) {
        seen.push_back(dt);
        return Tick{0};
    });
    sim.schedule_after(10, []() {});
    sim.schedule_after_for(3, 20, []() {});
    sim.run();
    EXPECT_EQ(seen, (std::vector<Tick>{10, 20}));
}

TEST(EventQueue, ClearingJitterHookRestoresExactDelays)
{
    Simulator sim;
    sim.set_delay_jitter([](Tick) { return Tick{1000}; });
    sim.set_delay_jitter(nullptr);
    Tick fired = 0;
    sim.schedule_after(10, [&]() { fired = sim.now(); });
    sim.run();
    EXPECT_EQ(fired, 10u);
}

TEST(EventQueue, JitteredZeroDelayStillRespectsFifoWithinTick)
{
    // A jitter hook returning zero keeps schedule_after(0) at the
    // current tick, and the event still queues behind same-tick
    // events scheduled earlier.
    Simulator sim;
    sim.set_delay_jitter([](Tick) { return Tick{0}; });
    std::vector<int> order;
    sim.schedule(5, [&]() {
        order.push_back(1);
        sim.schedule_after(0, [&]() { order.push_back(3); });
    });
    sim.schedule(5, [&]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, LargeSameTickBatchDrainsInInsertionOrder)
{
    // Drain-order stability at scale: the heap tie-breaks same-tick
    // entries by sequence number, so even a batch far larger than any
    // real burst must come out exactly in insertion order.
    Simulator sim;
    constexpr int n = 10000;
    std::vector<int> order;
    order.reserve(n);
    for (int i = 0; i < n; ++i)
        sim.schedule(42, [&, i]() { order.push_back(i); });
    sim.run();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "at " << i;
}

TEST(EventQueue, HandlerInsertionsQueueBehindExistingSameTickEvents)
{
    // Events a handler schedules at the *current* tick run after
    // everything already queued for that tick (seq order), never
    // before — the property same-tick delivery chains rely on.
    Simulator sim;
    std::vector<int> order;
    sim.schedule(9, [&]() {
        order.push_back(0);
        sim.schedule(9, [&]() { order.push_back(2); });
    });
    sim.schedule(9, [&]() { order.push_back(1); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleForRecordsAffinityInHistory)
{
    Simulator sim;
    TickHistory hist;
    hist.set_keep_log(16);
    sim.set_history(&hist);
    sim.schedule_for(4, 10, []() {});
    sim.schedule_for(-1, 20, []() {});
    sim.run();
    ASSERT_EQ(hist.log().size(), 2u);
    EXPECT_EQ(hist.log()[0], (std::pair<Tick, int>{10, 4}));
    EXPECT_EQ(hist.log()[1], (std::pair<Tick, int>{20, -1}));
}

TEST(EventQueue, ScheduleInheritsCurrentEventAffinity)
{
    // Follow-up work a handler schedules without annotation stays on
    // the handler's own timeline; history shows the inherited id.
    Simulator sim;
    TickHistory hist;
    hist.set_keep_log(16);
    sim.set_history(&hist);
    int insideAffinity = -99;
    sim.schedule_for(7, 10, [&]() {
        insideAffinity = sim.current_affinity();
        sim.schedule(20, []() {});
        sim.schedule_after(15, []() {});
    });
    sim.run();
    EXPECT_EQ(insideAffinity, 7);
    ASSERT_EQ(hist.log().size(), 3u);
    EXPECT_EQ(hist.log()[1], (std::pair<Tick, int>{20, 7}));
    EXPECT_EQ(hist.log()[2], (std::pair<Tick, int>{25, 7}));
}

TEST(EventQueue, HistoryDigestMatchesAcrossIdenticalRuns)
{
    auto run_one = []() {
        Simulator sim;
        TickHistory hist;
        sim.set_history(&hist);
        for (int i = 0; i < 50; ++i)
            sim.schedule_for(i % 5, static_cast<Tick>(10 * i),
                             []() {});
        sim.run();
        return hist;
    };
    TickHistory a = run_one();
    TickHistory b = run_one();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.events(), 50u);
}

TEST(TickConversion, MicrosecondRoundTrip)
{
    EXPECT_EQ(us_to_ticks(1.0), 1000u);
    EXPECT_EQ(us_to_ticks(0.16), 160u);
    EXPECT_EQ(us_to_ticks(0.0), 0u);
    EXPECT_DOUBLE_EQ(ticks_to_us(2500), 2.5);
}
