/**
 * @file
 * Causal-span layer tests: trace-id propagation of PUT/GET/SEND
 * operations across cells (including reliable-layer retransmits and
 * GET replies), exact critical-path attribution on a synthetic span
 * DAG, flight-recorder ring wrap-around, and the postmortem dump
 * every CommError carries.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/program.hh"
#include "hw/config.hh"
#include "hw/machine.hh"
#include "obs/critpath.hh"
#include "obs/flight.hh"
#include "obs/json.hh"
#include "obs/span.hh"
#include "sim/fault.hh"

using namespace ap;
using namespace ap::obs;

namespace
{

/** Events of one trace, in log order. */
std::vector<SpanEvent>
of_trace(const std::vector<SpanEvent> &events, std::uint64_t id)
{
    std::vector<SpanEvent> out;
    for (const SpanEvent &e : events)
        if (e.traceId == id)
            out.push_back(e);
    return out;
}

/** Trace ids whose issue event carries @p op. */
std::vector<std::uint64_t>
traces_of_op(const std::vector<SpanEvent> &events, SpanOp op)
{
    std::vector<std::uint64_t> out;
    for (const SpanEvent &e : events)
        if (e.op == op && e.stage == SpanStage::issue)
            out.push_back(e.traceId);
    return out;
}

bool
has_stage(const std::vector<SpanEvent> &events, SpanStage stage)
{
    for (const SpanEvent &e : events)
        if (e.stage == stage)
            return true;
    return false;
}

SpanEvent
ev(std::uint64_t id, SpanStage stage, Tick begin, Tick end,
   SpanOp op = SpanOp::none)
{
    SpanEvent e;
    e.traceId = id;
    e.begin = begin;
    e.end = end;
    e.cell = 0;
    e.stage = stage;
    e.op = op;
    return e;
}

} // namespace

// --------------------------------------------------------- flight ring

TEST(FlightRecorder, WrapAroundKeepsNewestOldestFirst)
{
    FlightRecorder fr(4);
    for (std::uint64_t i = 1; i <= 10; ++i) {
        SpanEvent e;
        e.traceId = i;
        e.begin = i;
        e.end = i + 1;
        fr.push(e);
    }
    EXPECT_EQ(fr.size(), 4u);
    EXPECT_EQ(fr.dropped(), 6u);
    std::vector<SpanEvent> snap = fr.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // Oldest retained first; the last four pushes survive.
    EXPECT_EQ(snap.front().traceId, 7u);
    EXPECT_EQ(snap.back().traceId, 10u);
    // Bounded snapshot keeps the *last* maxEvents.
    std::vector<SpanEvent> tail = fr.snapshot(2);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail.front().traceId, 9u);
    EXPECT_EQ(tail.back().traceId, 10u);
}

TEST(FlightRecorder, SpanLayerRingsWrapPerCell)
{
    SpanLayer layer(2, 4);
    layer.set_mode(SpanMode::flight);
    for (int i = 0; i < 10; ++i) {
        std::uint64_t id = layer.new_trace();
        layer.record(0, id, SpanStage::issue, i, i + 1);
    }
    EXPECT_EQ(layer.flight(0).size(), 4u);
    EXPECT_EQ(layer.flight(0).dropped(), 6u);
    EXPECT_EQ(layer.flight(1).size(), 0u);
    // Flight mode keeps no full log.
    EXPECT_TRUE(layer.events().empty());
    std::vector<SpanEvent> merged = layer.flight_events();
    EXPECT_EQ(merged.size(), 4u);
    for (std::size_t i = 1; i < merged.size(); ++i)
        EXPECT_LE(merged[i - 1].begin, merged[i].begin);
}

// ------------------------------------------------------- id propagation

TEST(SpanPropagation, PutTraceCoversAllPipelineStages)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.spanMode = SpanMode::full;
    hw::Machine m(cfg);

    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        Addr flag = ctx.alloc_flag();
        Addr buf = ctx.alloc(256);
        if (ctx.id() == 0)
            ctx.put(1, buf, buf, 256, no_flag, flag);
        else
            ctx.wait_flag(flag, 1); // recv_flag lands on the dst
    });
    ASSERT_FALSE(r.failed());

    const std::vector<SpanEvent> &log = m.spans().events();
    std::vector<std::uint64_t> puts = traces_of_op(log, SpanOp::put);
    ASSERT_EQ(puts.size(), 1u);
    std::vector<SpanEvent> trace = of_trace(log, puts.front());

    // One id threads the whole lifecycle: issue and DMA-send on the
    // sender, network flight, receive DMA and flag on the receiver.
    EXPECT_TRUE(has_stage(trace, SpanStage::issue));
    EXPECT_TRUE(has_stage(trace, SpanStage::queue));
    EXPECT_TRUE(has_stage(trace, SpanStage::dma_send));
    EXPECT_TRUE(has_stage(trace, SpanStage::net));
    EXPECT_TRUE(has_stage(trace, SpanStage::dma_recv));
    EXPECT_TRUE(has_stage(trace, SpanStage::flag));
    std::set<std::int32_t> cells;
    for (const SpanEvent &e : trace)
        cells.insert(e.cell);
    EXPECT_TRUE(cells.count(0));
    EXPECT_TRUE(cells.count(1));

    // The profiler's acceptance bar: >= 95% of the PUT's end-to-end
    // latency lands in named stages.
    CritPathReport rep = analyze_spans(log);
    EXPECT_GE(rep.op_coverage(SpanOp::put), 0.95);
    EXPECT_GT(rep.ops[static_cast<std::size_t>(SpanOp::put)].traces,
              0u);
}

TEST(SpanPropagation, GetReplySharesTheRequestTraceId)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.spanMode = SpanMode::full;
    hw::Machine m(cfg);

    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        Addr flag = ctx.alloc_flag();
        Addr buf = ctx.alloc(256);
        if (ctx.id() == 0) {
            ctx.get(1, 0x8000, buf, 128, no_flag, flag);
            ctx.wait_flag(flag, 1);
        }
    });
    ASSERT_FALSE(r.failed());

    const std::vector<SpanEvent> &log = m.spans().events();
    std::vector<std::uint64_t> gets = traces_of_op(log, SpanOp::get);
    ASSERT_EQ(gets.size(), 1u);
    std::vector<SpanEvent> trace = of_trace(log, gets.front());

    // Request leg (0 -> 1) and reply leg (1 -> 0) both record a net
    // span under the same id, and the reply's receive DMA + flag
    // land back on the origin cell.
    int netSpans = 0;
    for (const SpanEvent &e : trace)
        if (e.stage == SpanStage::net)
            ++netSpans;
    EXPECT_GE(netSpans, 2);
    bool recvOnOrigin = false, flagOnOrigin = false;
    for (const SpanEvent &e : trace) {
        if (e.cell != 0)
            continue;
        if (e.stage == SpanStage::dma_recv)
            recvOnOrigin = true;
        if (e.stage == SpanStage::flag)
            flagOnOrigin = true;
    }
    EXPECT_TRUE(recvOnOrigin);
    EXPECT_TRUE(flagOnOrigin);
    EXPECT_GE(analyze_spans(log).op_coverage(SpanOp::get), 0.95);
}

TEST(SpanPropagation, RetransmitsBecomeChildSpansOfTheOriginalTrace)
{
    // Half the T-net messages drop; the reliable layer's go-back-N
    // recovery must tag every resend with the original operation's
    // trace id (stage retransmit, aux = try count).
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.spanMode = SpanMode::full;
    cfg.faults = sim::FaultPlan::drops(7, 0.5);
    cfg.reliableNet = true;
    cfg.retry.watchdogUs = 2000000.0;
    hw::Machine m(cfg);

    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        Addr flag = ctx.alloc_flag();
        Addr buf = ctx.alloc(256);
        if (ctx.id() == 0)
            for (int i = 0; i < 16; ++i)
                ctx.put(1, buf, buf, 256, no_flag, flag);
        else
            ctx.wait_flag(flag, 16);
    });
    ASSERT_FALSE(r.failed())
        << (r.errors.empty() ? "deadlock" : r.errors.front());

    const std::vector<SpanEvent> &log = m.spans().events();
    std::set<std::uint64_t> issued;
    for (const SpanEvent &e : log)
        if (e.stage == SpanStage::issue)
            issued.insert(e.traceId);
    int retransmits = 0;
    for (const SpanEvent &e : log) {
        if (e.stage != SpanStage::retransmit)
            continue;
        ++retransmits;
        // A child span, not a fresh trace: the id was issued.
        EXPECT_TRUE(issued.count(e.traceId))
            << "retransmit of unknown trace " << e.traceId;
        EXPECT_GE(e.aux, 1u);
    }
    EXPECT_GT(retransmits, 0)
        << "50% drop over 16 PUTs produced no retransmission";
}

TEST(SpanPropagation, OffModeAllocatesNoIdsAndRecordsNothing)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.spanMode = SpanMode::off;
    hw::Machine m(cfg);
    EXPECT_EQ(m.spans().new_trace(), 0u);

    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        Addr flag = ctx.alloc_flag();
        Addr buf = ctx.alloc(64);
        if (ctx.id() == 0)
            ctx.put(1, buf, buf, 64, no_flag, flag);
        else
            ctx.wait_flag(flag, 1);
        ctx.barrier();
    });
    ASSERT_FALSE(r.failed());
    EXPECT_EQ(m.spans().recorded(), 0u);
    EXPECT_TRUE(m.spans().flight_events().empty());
}

// --------------------------------------------------------- attribution

TEST(CritPath, ExactAttributionOnSyntheticDag)
{
    // issue [0,10], queue [10,20], net [15,40], dma_recv [40,50]:
    // the [15,20] overlap goes to net (latest begin wins), so
    // queue keeps exactly [10,15].
    std::vector<SpanEvent> log;
    log.push_back(ev(1, SpanStage::issue, 0, 10, SpanOp::put));
    log.push_back(ev(1, SpanStage::queue, 10, 20));
    log.push_back(ev(1, SpanStage::net, 15, 40));
    log.push_back(ev(1, SpanStage::dma_recv, 40, 50));

    CritPathReport rep = analyze_spans(log);
    EXPECT_EQ(rep.traces, 1u);
    EXPECT_EQ(rep.events, 4u);
    EXPECT_EQ(rep.endToEndTicks, 50u);
    EXPECT_EQ(rep.attributedTicks, 50u);
    EXPECT_DOUBLE_EQ(rep.coverage(), 1.0);
    auto busy = [&](SpanStage s) {
        return rep.stages[static_cast<std::size_t>(s)].busyTicks;
    };
    EXPECT_EQ(busy(SpanStage::issue), 10u);
    EXPECT_EQ(busy(SpanStage::queue), 5u);
    EXPECT_EQ(busy(SpanStage::net), 25u);
    EXPECT_EQ(busy(SpanStage::dma_recv), 10u);

    const OpAttribution &put =
        rep.ops[static_cast<std::size_t>(SpanOp::put)];
    EXPECT_EQ(put.traces, 1u);
    EXPECT_EQ(put.endToEndTicks, 50u);
    EXPECT_EQ(
        put.stageTicks[static_cast<std::size_t>(SpanStage::net)],
        25u);
}

TEST(CritPath, GapsCountAsUnattributed)
{
    // A [10,20] hole between the two spans must show up as lost
    // coverage, not be silently absorbed.
    std::vector<SpanEvent> log;
    log.push_back(ev(2, SpanStage::issue, 0, 10, SpanOp::get));
    log.push_back(ev(2, SpanStage::net, 20, 30));
    CritPathReport rep = analyze_spans(log);
    EXPECT_EQ(rep.endToEndTicks, 30u);
    EXPECT_EQ(rep.attributedTicks, 20u);
    EXPECT_NEAR(rep.coverage(), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(rep.op_coverage(SpanOp::get), 2.0 / 3.0, 1e-9);
}

TEST(CritPath, RetransmitChildStealsTimeFromItsParentSpan)
{
    // A retransmit inside a net span is the innermost cover of its
    // window; the parent keeps only the flanks.
    std::vector<SpanEvent> log;
    log.push_back(ev(3, SpanStage::net, 0, 100, SpanOp::put));
    log.push_back(ev(3, SpanStage::retransmit, 40, 60));
    CritPathReport rep = analyze_spans(log);
    auto busy = [&](SpanStage s) {
        return rep.stages[static_cast<std::size_t>(s)].busyTicks;
    };
    EXPECT_EQ(busy(SpanStage::net), 80u);
    EXPECT_EQ(busy(SpanStage::retransmit), 20u);
    EXPECT_DOUBLE_EQ(rep.coverage(), 1.0);
}

TEST(CritPath, ReportRendersTextAndValidJson)
{
    std::vector<SpanEvent> log;
    log.push_back(ev(4, SpanStage::issue, 0, 10, SpanOp::send));
    log.push_back(ev(4, SpanStage::net, 10, 30));
    CritPathReport rep = analyze_spans(log);
    std::string text = rep.text();
    EXPECT_NE(text.find("issue"), std::string::npos);
    EXPECT_NE(text.find("send"), std::string::npos);
    EXPECT_NE(text.find("coverage"), std::string::npos);
    std::string err;
    EXPECT_TRUE(json_valid(rep.json(), &err)) << err;
}

// ----------------------------------------------------------- postmortem

TEST(Postmortem, CommErrorCarriesANonEmptyFlightDump)
{
    // Total loss, no retries: the flag never arrives, the watchdog
    // fires, and the CommError must embed the flight-recorder tail
    // with real span events in it.
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.faults = sim::FaultPlan::drops(31, 1.0);
    cfg.retry.watchdogUs = 500.0;
    hw::Machine m(cfg);

    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        Addr flag = ctx.alloc_flag();
        if (ctx.id() == 0) {
            Addr buf = ctx.alloc(64);
            ctx.put(1, 0x800, buf, 64, no_flag, flag, false);
            return;
        }
        ctx.wait_flag(flag, 1);
    });

    ASSERT_EQ(r.errors.size(), 1u);
    const std::string &err = r.errors.front();
    EXPECT_NE(err.find("flight recorder"), std::string::npos) << err;
    // Not just the header: actual recorded events follow it.
    EXPECT_EQ(err.find("(no span events recorded)"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("trace"), std::string::npos) << err;
    EXPECT_NE(err.find("issue"), std::string::npos) << err;
}

TEST(Postmortem, FlightDumpFileIsValidChromeTraceJson)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    hw::Machine m(cfg);
    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        Addr flag = ctx.alloc_flag();
        Addr buf = ctx.alloc(64);
        if (ctx.id() == 0)
            ctx.put(1, buf, buf, 64, no_flag, flag);
        else
            ctx.wait_flag(flag, 1);
        ctx.barrier();
    });
    ASSERT_FALSE(r.failed());

    std::string path = "test_span_flight_dump.json";
    ASSERT_TRUE(m.dump_flight_recorder(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string doc = ss.str();
    std::remove(path.c_str());
    std::string err;
    EXPECT_TRUE(json_valid(doc, &err)) << err;
    EXPECT_NE(doc.find("traceEvents"), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);

    // postmortem() renders even on a healthy machine.
    std::string pm = m.postmortem();
    EXPECT_NE(pm.find("flight recorder"), std::string::npos);
    EXPECT_NE(pm.find("trace"), std::string::npos);
}
