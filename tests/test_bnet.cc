/**
 * @file
 * B-net tests: bus serialization, broadcast delivery through the
 * machine, flag semantics, and MLSim replay of broadcasts.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/ap1000p.hh"
#include "mlsim/replay.hh"
#include "net/bnet.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    return cfg;
}

} // namespace

TEST(BnetUnit, DeliversToAllButSource)
{
    sim::Simulator sim;
    net::Bnet bus(sim, 4, net::BnetParams{});
    std::vector<int> hits(4, 0);
    for (CellId c = 0; c < 4; ++c)
        bus.attach(c, [&, c](net::Message) { ++hits[c]; });

    net::Message m;
    m.kind = net::MsgKind::broadcast;
    m.src = 2;
    m.payload.assign(100, 1);
    bus.broadcast(std::move(m));
    sim.run();
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 0, 1}));
    EXPECT_EQ(bus.count(), 1u);
}

TEST(BnetUnit, BusSerializesBackToBackBroadcasts)
{
    sim::Simulator sim;
    net::BnetParams p;
    p.prologUs = 1.0;
    p.perByteUs = 0.02;
    net::Bnet bus(sim, 2, p);
    std::vector<Tick> arrivals;
    bus.attach(0, [](net::Message) {});
    bus.attach(1, [&](net::Message) { arrivals.push_back(sim.now()); });

    net::Message m;
    m.kind = net::MsgKind::broadcast;
    m.src = 0;
    m.payload.assign(1000, 0);
    Tick a1 = bus.broadcast(m);
    Tick a2 = bus.broadcast(m);
    sim.run();
    // The second waits out the first's bus occupancy.
    Tick occupy = us_to_ticks(1.0 + 0.02 * (1000 + 32));
    EXPECT_EQ(a1, occupy);
    EXPECT_EQ(a2, 2 * occupy);
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[1] - arrivals[0], occupy);
}

TEST(Broadcast, RootDataReachesEveryCell)
{
    hw::Machine m(small(8));
    std::vector<double> got(8, 0);

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(64);
        Addr flag = ctx.alloc_flag();
        if (ctx.id() == 3) {
            for (int i = 0; i < 8; ++i)
                ctx.poke_f64(buf + static_cast<Addr>(i) * 8,
                             i * 1.25);
        }
        ctx.broadcast(3, buf, 64, flag);
        if (ctx.id() != 3)
            ctx.wait_flag(flag, 1);
        got[static_cast<std::size_t>(ctx.id())] =
            ctx.peek_f64(buf + 24); // element 3
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    for (double v : got)
        EXPECT_DOUBLE_EQ(v, 3.75);
}

TEST(Broadcast, RepeatedBroadcastsCountOnFlag)
{
    hw::Machine m(small(4));
    std::uint32_t final_flag = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(16);
        Addr flag = ctx.alloc_flag();
        for (int k = 0; k < 5; ++k)
            ctx.broadcast(0, buf, 16, flag);
        if (ctx.id() == 2) {
            ctx.wait_flag(flag, 5);
            final_flag = ctx.flag(flag);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(final_flag, 5u);
    EXPECT_EQ(m.bnet().count(), 5u);
}

TEST(Broadcast, TraceReplaysUnderAllModels)
{
    hw::Machine m(small(4));
    Trace trace;
    auto r = run_spmd(
        m,
        [&](Context &ctx) {
            Addr buf = ctx.alloc(1024);
            Addr flag = ctx.alloc_flag();
            ctx.broadcast(0, buf, 1024, flag);
            if (ctx.id() != 0)
                ctx.wait_flag(flag, 1);
            ctx.barrier();
        },
        &trace);
    ASSERT_FALSE(r.deadlock);

    for (const auto &p :
         {mlsim::Params::ap1000(), mlsim::Params::ap1000_plus()}) {
        mlsim::ReplayReport rep = mlsim::Replay(trace, p).run();
        EXPECT_FALSE(rep.deadlock) << p.name;
        EXPECT_GT(rep.totalUs, 0.0);
    }
}
