/**
 * @file
 * MLSim tests: parameter file round trips, trace serialization,
 * replay semantics (flag waits, receives, collectives), and the
 * model-level properties the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "core/ap1000p.hh"
#include "mlsim/costmodel.hh"
#include "mlsim/params.hh"
#include "mlsim/replay.hh"
#include "mlsim/trace_file.hh"

using namespace ap;
using namespace ap::core;
using namespace ap::mlsim;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    return cfg;
}

/** Run an SPMD body on a functional machine and capture its trace. */
Trace
capture(int cells, const SpmdBody &body)
{
    hw::Machine m(small(cells));
    Trace trace;
    auto r = run_spmd(m, body, &trace);
    EXPECT_FALSE(r.deadlock);
    return trace;
}

} // namespace

// ---------------------------------------------------------------- params

TEST(Params, PaperValuesInPresets)
{
    Params a = Params::ap1000();
    EXPECT_DOUBLE_EQ(a.computation_factor, 1.00);
    EXPECT_DOUBLE_EQ(a.put_prolog_time, 20.0);
    EXPECT_DOUBLE_EQ(a.put_dma_set_time, 15.0);
    EXPECT_DOUBLE_EQ(a.intr_rtc_time, 20.0);
    EXPECT_FALSE(a.hw());

    Params p = Params::ap1000_plus();
    EXPECT_DOUBLE_EQ(p.computation_factor, 0.125);
    EXPECT_DOUBLE_EQ(p.put_prolog_time, 1.00);
    EXPECT_DOUBLE_EQ(p.put_dma_set_time, 0.50);
    EXPECT_DOUBLE_EQ(p.intr_rtc_time, 0.00);
    EXPECT_TRUE(p.hw());

    Params f = Params::ap1000_fast();
    EXPECT_DOUBLE_EQ(f.computation_factor, 0.125);
    EXPECT_DOUBLE_EQ(f.put_prolog_time, 20.0);
    EXPECT_FALSE(f.hw());
}

TEST(Params, FileRoundTrip)
{
    Params p = Params::ap1000_plus();
    p.gop_step_time = 3.25;
    Params q = Params::from_file(p.to_file());
    EXPECT_DOUBLE_EQ(q.computation_factor, p.computation_factor);
    EXPECT_DOUBLE_EQ(q.put_dma_set_time, p.put_dma_set_time);
    EXPECT_DOUBLE_EQ(q.gop_step_time, 3.25);
    EXPECT_EQ(q.hw(), p.hw());
}

TEST(Params, SetGetByName)
{
    Params p;
    EXPECT_TRUE(p.set("network_delay_time", 0.5));
    double v = 0;
    EXPECT_TRUE(p.get("network_delay_time", v));
    EXPECT_DOUBLE_EQ(v, 0.5);
    EXPECT_FALSE(p.set("no_such_parameter", 1.0));
}

TEST(ParamsDeath, UnknownKeyInFileIsFatal)
{
    EXPECT_DEATH(Params::from_file("bogus_time 1.0\n"), "unknown");
}

// ------------------------------------------------------------ cost model

TEST(CostModel, PaperSendOverheadFormula)
{
    CostModel sw(Params::ap1000());
    // put_prolog + put_enqueue + put_msg_post*size + put_dma_set +
    // put_epilog for a 1000-byte message.
    EXPECT_DOUBLE_EQ(sw.put_send_overhead(1000),
                     20.0 + 0.16 + 0.04 * 1000 + 15.0 + 15.0);

    CostModel hw(Params::ap1000_plus());
    // "only put_enqueue_time on sending".
    EXPECT_DOUBLE_EQ(hw.put_send_overhead(1000), 0.16);
}

TEST(CostModel, InterruptReceptionFormula)
{
    CostModel sw(Params::ap1000());
    EXPECT_DOUBLE_EQ(sw.recv_ready_latency(1000),
                     20.0 + 0.04 * 1000 + 15.0);
    CostModel hw(Params::ap1000_plus());
    EXPECT_DOUBLE_EQ(hw.recv_ready_latency(1000), 0.50 + 0.04);
}

TEST(CostModel, ComputationScales)
{
    CostModel hw(Params::ap1000_plus());
    EXPECT_DOUBLE_EQ(hw.compute(800.0), 100.0);
}

TEST(CostModel, ReductionLevels)
{
    EXPECT_EQ(CostModel::levels(1), 0);
    EXPECT_EQ(CostModel::levels(2), 1);
    EXPECT_EQ(CostModel::levels(16), 4);
    EXPECT_EQ(CostModel::levels(17), 5);
    EXPECT_EQ(CostModel::levels(1024), 10);
}

// ---------------------------------------------------------- trace files

TEST(TraceFile, RoundTripPreservesEverything)
{
    Trace t(3);
    TraceEvent a;
    a.op = TraceOp::put_stride;
    a.peer = 2;
    a.bytes = 2056;
    a.items = 257;
    a.ack = true;
    a.sendFlagAddr = 0x100;
    a.recvFlagAddr = 0x104;
    a.viaRts = true;
    t.record(0, a);

    TraceEvent b;
    b.op = TraceOp::compute;
    b.computeUs = 123.456;
    t.record(1, b);

    TraceEvent c;
    c.op = TraceOp::flag_wait;
    c.recvFlagAddr = 0x104;
    c.waitTarget = 7;
    t.record(2, c);

    Trace u = trace_from_text(trace_to_text(t));
    ASSERT_EQ(u.cells(), 3);
    ASSERT_EQ(u.timeline(0).size(), 1u);
    const TraceEvent &ua = u.timeline(0)[0];
    EXPECT_EQ(ua.op, TraceOp::put_stride);
    EXPECT_EQ(ua.peer, 2);
    EXPECT_EQ(ua.bytes, 2056u);
    EXPECT_EQ(ua.items, 257u);
    EXPECT_TRUE(ua.ack);
    EXPECT_EQ(ua.sendFlagAddr, 0x100u);
    EXPECT_EQ(ua.recvFlagAddr, 0x104u);
    EXPECT_TRUE(ua.viaRts);
    EXPECT_DOUBLE_EQ(u.timeline(1)[0].computeUs, 123.456);
    EXPECT_EQ(u.timeline(2)[0].waitTarget, 7u);
}

TEST(TraceFileDeath, MissingHeaderIsFatal)
{
    EXPECT_DEATH(trace_from_text("cells 2\n"), "header");
}

// --------------------------------------------------------------- replay

TEST(Replay, PureComputeScalesWithFactor)
{
    Trace t(2);
    TraceEvent c;
    c.op = TraceOp::compute;
    c.computeUs = 1000.0;
    t.record(0, c);
    t.record(1, c);

    ReplayReport slow = Replay(t, Params::ap1000()).run();
    ReplayReport fast = Replay(t, Params::ap1000_plus()).run();
    EXPECT_DOUBLE_EQ(slow.totalUs, 1000.0);
    EXPECT_DOUBLE_EQ(fast.totalUs, 125.0);
    EXPECT_FALSE(slow.deadlock);
    EXPECT_DOUBLE_EQ(slow.cells[0].execUs, 1000.0);
}

TEST(Replay, PutFlagWaitCompletes)
{
    // Cell 0 puts 1 KB to cell 1 with a recv flag; cell 1 waits.
    Trace t(2);
    TraceEvent put;
    put.op = TraceOp::put;
    put.peer = 1;
    put.bytes = 1024;
    put.recvFlagAddr = 0x40;
    t.record(0, put);

    TraceEvent wait;
    wait.op = TraceOp::flag_wait;
    wait.recvFlagAddr = 0x40;
    wait.waitTarget = 1;
    t.record(1, wait);

    for (const Params &p :
         {Params::ap1000(), Params::ap1000_plus()}) {
        ReplayReport r = Replay(t, p).run();
        EXPECT_FALSE(r.deadlock) << p.name;
        EXPECT_GT(r.totalUs, 0.0);
        EXPECT_EQ(r.messages, 1u);
        EXPECT_EQ(r.payloadBytes, 1024u);
    }
}

TEST(Replay, HardwareHandlingIsFasterForMessagePingPong)
{
    // A put/wait chain: the hardware model should finish much sooner
    // because issue overhead drops from ~50 us to ~0.16 us and no
    // interrupts steal receiver time.
    Trace t(2);
    for (int k = 0; k < 20; ++k) {
        TraceEvent put;
        put.op = TraceOp::put;
        put.peer = 1;
        put.bytes = 64;
        put.recvFlagAddr = 0x40;
        t.record(0, put);
    }
    TraceEvent wait;
    wait.op = TraceOp::flag_wait;
    wait.recvFlagAddr = 0x40;
    wait.waitTarget = 20;
    t.record(1, wait);

    double sw = Replay(t, Params::ap1000_fast()).run().totalUs;
    double hw = Replay(t, Params::ap1000_plus()).run().totalUs;
    EXPECT_LT(hw, sw / 5.0);
}

TEST(Replay, SendRecvMatchAcrossCells)
{
    Trace t(2);
    TraceEvent snd;
    snd.op = TraceOp::send;
    snd.peer = 1;
    snd.bytes = 256;
    t.record(0, snd);
    TraceEvent rcv;
    rcv.op = TraceOp::recv;
    rcv.peer = 0;
    rcv.bytes = 256;
    t.record(1, rcv);

    ReplayReport r = Replay(t, Params::ap1000()).run();
    EXPECT_FALSE(r.deadlock);
    EXPECT_GT(r.cells[1].overheadUs, 0.0);
}

TEST(Replay, BarrierSynchronizesSkewedCells)
{
    Trace t(4);
    for (int c = 0; c < 4; ++c) {
        TraceEvent comp;
        comp.op = TraceOp::compute;
        comp.computeUs = 100.0 * c;
        t.record(c, comp);
        TraceEvent bar;
        bar.op = TraceOp::barrier;
        t.record(c, bar);
    }
    ReplayReport r = Replay(t, Params::ap1000()).run();
    EXPECT_FALSE(r.deadlock);
    // Everyone leaves after the slowest (300 us) plus barrier costs.
    EXPECT_GE(r.totalUs, 300.0);
    // Cell 0 idles roughly the skew; cell 3 barely waits.
    EXPECT_GT(r.cells[0].idleUs, r.cells[3].idleUs + 250.0);
}

TEST(Replay, MissingBarrierDeadlocksGracefully)
{
    Trace t(2);
    TraceEvent bar;
    bar.op = TraceOp::barrier;
    t.record(0, bar); // cell 1 never arrives
    set_quiet(true);
    ReplayReport r = Replay(t, Params::ap1000()).run();
    set_quiet(false);
    EXPECT_TRUE(r.deadlock);
}

TEST(Replay, AckWaitRoundTrip)
{
    Trace t(2);
    TraceEvent put;
    put.op = TraceOp::put;
    put.peer = 1;
    put.bytes = 512;
    put.ack = true;
    t.record(0, put);
    TraceEvent aw;
    aw.op = TraceOp::ack_wait;
    aw.waitTarget = 1;
    t.record(0, aw);

    ReplayReport r = Replay(t, Params::ap1000_plus()).run();
    EXPECT_FALSE(r.deadlock);
    // The round trip takes at least two network crossings.
    CostModel cm(Params::ap1000_plus());
    EXPECT_GE(r.cells[0].totalUs, 2 * cm.network(1, 32));
}

TEST(Replay, GopAndVgopRendezvous)
{
    Trace t(4);
    for (int c = 0; c < 4; ++c) {
        TraceEvent g;
        g.op = TraceOp::gop;
        g.bytes = 8;
        t.record(c, g);
        TraceEvent v;
        v.op = TraceOp::vgop;
        v.bytes = 11200;
        t.record(c, v);
    }
    ReplayReport hw = Replay(t, Params::ap1000_plus()).run();
    ReplayReport sw = Replay(t, Params::ap1000_fast()).run();
    EXPECT_FALSE(hw.deadlock);
    EXPECT_FALSE(sw.deadlock);
    // Vector reductions over blocking SENDs dominate the software
    // model (the paper's CG analysis). The hardware model still pays
    // the ring-buffer memory traffic, so the gap is bounded.
    EXPECT_GT(sw.totalUs, 1.5 * hw.totalUs);
}

TEST(Replay, FunctionalTraceReplaysWithoutDeadlock)
{
    // End-to-end: capture a real mixed workload trace from the
    // functional machine and replay it under all three models.
    Trace trace = capture(8, [](Context &ctx) {
        Addr buf = ctx.alloc(4096);
        Addr rf = ctx.alloc_flag();
        CellId right = (ctx.id() + 1) % ctx.nprocs();
        ctx.compute_us(50.0 * (1 + ctx.id() % 3));
        ctx.put(right, buf, buf, 2048, no_flag, rf, true);
        ctx.wait_all_acks();
        ctx.wait_flag(rf, 1);
        ctx.barrier();
        ctx.allreduce(1.0, ReduceOp::sum);
        Addr vec = ctx.alloc(800);
        ctx.allreduce_vector(vec, 100, ReduceOp::sum);
        if (ctx.id() == 0)
            ctx.send(1, 5, buf, 128);
        if (ctx.id() == 1)
            ctx.recv(0, 5, buf, 128);
        ctx.barrier();
    });

    for (const Params &p : {Params::ap1000(), Params::ap1000_fast(),
                            Params::ap1000_plus()}) {
        ReplayReport r = Replay(trace, p).run();
        EXPECT_FALSE(r.deadlock) << p.name;
        EXPECT_GT(r.totalUs, 0.0) << p.name;
        // Per-cell components are non-negative and sum to the total.
        for (const CellBreakdown &c : r.cells) {
            EXPECT_GE(c.execUs, 0.0);
            EXPECT_GE(c.rtsUs, 0.0);
            EXPECT_GE(c.overheadUs, 0.0);
            EXPECT_GE(c.idleUs, -1e-6);
            EXPECT_NEAR(c.execUs + c.rtsUs + c.overheadUs + c.idleUs,
                        c.totalUs, c.totalUs * 0.05 + 5.0)
                << p.name;
        }
    }
}

TEST(Replay, SpeedupOrderingMatchesThePaper)
{
    // For a communication-heavy workload: AP1000+ beats AP1000* (fast
    // CPU, software handling), which beats the AP1000.
    Trace trace = capture(8, [](Context &ctx) {
        Addr buf = ctx.alloc(8192);
        Addr rf = ctx.alloc_flag();
        CellId right = (ctx.id() + 1) % ctx.nprocs();
        for (int it = 0; it < 5; ++it) {
            ctx.compute_us(200.0);
            ctx.put(right, buf, buf, 4096, no_flag, rf);
            ctx.wait_flag(rf, static_cast<std::uint32_t>(it + 1));
            ctx.barrier();
        }
    });

    double base = Replay(trace, Params::ap1000()).run().totalUs;
    double fast = Replay(trace, Params::ap1000_fast()).run().totalUs;
    double plus = Replay(trace, Params::ap1000_plus()).run().totalUs;
    EXPECT_LT(plus, fast);
    EXPECT_LT(fast, base);
    // Speedup of the AP1000+ approaches the 8x processor improvement.
    EXPECT_GT(base / plus, 4.0);
    EXPECT_LT(base / plus, 9.0);
}

TEST(Replay, GroupCollectivesRendezvousTheRightSubset)
{
    // Disjoint halves run different numbers of group reductions;
    // replay must match each group's episodes independently instead
    // of expecting a global rendezvous (which would deadlock).
    Trace trace = capture(8, [](Context &ctx) {
        Group low = Group::range(0, 4);
        Group high = Group::range(4, 4);
        if (ctx.id() < 4) {
            for (int k = 0; k < 3; ++k)
                ctx.allreduce_group(low, 1.0, ReduceOp::sum);
            ctx.barrier_group(low);
        } else {
            ctx.allreduce_group(high, 2.0, ReduceOp::sum);
        }
        ctx.barrier();
    });

    for (const Params &p :
         {Params::ap1000(), Params::ap1000_plus()}) {
        ReplayReport r = Replay(trace, p).run();
        EXPECT_FALSE(r.deadlock) << p.name;
        EXPECT_GT(r.totalUs, 0.0);
    }
}

TEST(Replay, IdleDominatesWhenLoadImbalanced)
{
    Trace trace = capture(4, [](Context &ctx) {
        ctx.compute_us(ctx.id() == 0 ? 10000.0 : 10.0);
        ctx.barrier();
    });
    ReplayReport r = Replay(trace, Params::ap1000_plus()).run();
    EXPECT_FALSE(r.deadlock);
    EXPECT_GT(r.cells[1].idleUs, r.cells[1].execUs * 10);
    EXPECT_LT(r.cells[0].idleUs, 10.0);
}
