/**
 * @file
 * Ring buffer tests: SEND/RECEIVE matching, blocking receives,
 * overflow growth, in-place consumption (Section 4.3).
 */

#include <gtest/gtest.h>

#include "hw/ringbuf.hh"
#include "sim/eventq.hh"
#include "sim/process.hh"

using namespace ap;
using namespace ap::hw;

namespace
{

SendRecord
rec(CellId src, std::int32_t tag, std::size_t n)
{
    return SendRecord{src, tag,
                      std::vector<std::uint8_t>(n,
                                                static_cast<std::uint8_t>(
                                                    tag))};
}

} // namespace

TEST(RingBuffer, TryReceiveMatchesTagAndSource)
{
    RingBuffer rb;
    rb.deposit(rec(1, 10, 4));
    rb.deposit(rec(2, 20, 4));

    SendRecord out;
    EXPECT_FALSE(rb.try_receive(3, any_tag, out));
    EXPECT_FALSE(rb.try_receive(1, 20, out));
    EXPECT_TRUE(rb.try_receive(2, 20, out));
    EXPECT_EQ(out.src, 2);
    EXPECT_EQ(rb.depth(), 1u);
}

TEST(RingBuffer, WildcardsMatchAnything)
{
    RingBuffer rb;
    rb.deposit(rec(5, 55, 8));
    SendRecord out;
    EXPECT_TRUE(rb.try_receive(any_source, any_tag, out));
    EXPECT_EQ(out.src, 5);
    EXPECT_EQ(out.tag, 55);
}

TEST(RingBuffer, FifoAmongMatchingRecords)
{
    RingBuffer rb;
    rb.deposit(SendRecord{1, 7, {1}});
    rb.deposit(SendRecord{1, 7, {2}});
    SendRecord out;
    rb.try_receive(1, 7, out);
    EXPECT_EQ(out.payload[0], 1);
    rb.try_receive(1, 7, out);
    EXPECT_EQ(out.payload[0], 2);
}

TEST(RingBuffer, BlockingReceiveWaitsForDeposit)
{
    sim::Simulator sim;
    RingBuffer rb;
    Tick when = 0;
    sim::Process p(sim, "rx", [&](sim::Process &self) {
        SendRecord r = rb.receive(any_source, any_tag, self);
        when = sim.now();
        EXPECT_EQ(r.payload.size(), 16u);
    });
    p.start(0);
    sim.schedule(2000, [&]() { rb.deposit(rec(0, 1, 16)); });
    sim.run();
    EXPECT_EQ(when, 2000u);
}

TEST(RingBuffer, OverflowGrowsWithInterrupt)
{
    RingBuffer rb(64);
    rb.deposit(rec(0, 1, 48));
    EXPECT_EQ(rb.stats().growInterrupts, 0u);
    rb.deposit(rec(0, 2, 48)); // 96 > 64: grow
    EXPECT_GE(rb.capacity(), 96u);
    EXPECT_EQ(rb.stats().growInterrupts, 1u);
    EXPECT_EQ(rb.depth(), 2u);
}

TEST(RingBuffer, InPlaceConsumptionCountsSeparately)
{
    sim::Simulator sim;
    RingBuffer rb;
    rb.deposit(rec(0, 1, 8));
    rb.deposit(rec(0, 2, 8));
    sim::Process p(sim, "p", [&](sim::Process &self) {
        rb.receive(0, 1, self);
        rb.consume_in_place(0, 2, self);
    });
    p.start(0);
    sim.run();
    EXPECT_EQ(rb.stats().copies, 1u);
    EXPECT_EQ(rb.stats().inPlaceReads, 1u);
    EXPECT_EQ(rb.stats().receives, 2u);
}

TEST(RingBuffer, BytesTrackUsage)
{
    RingBuffer rb;
    rb.deposit(rec(0, 1, 100));
    EXPECT_EQ(rb.bytes(), 100u);
    SendRecord out;
    rb.try_receive(0, 1, out);
    EXPECT_EQ(rb.bytes(), 0u);
}
