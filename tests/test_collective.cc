/**
 * @file
 * Barrier and reduction tests (Sections 2.3, 4.5): S-net barriers,
 * communication-register scalar trees, SEND/RECEIVE group
 * collectives, ring-buffer vector reductions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    return cfg;
}

} // namespace

TEST(Barrier, NoCellLeavesBeforeAllArrive)
{
    hw::Machine m(small(8));
    std::vector<Tick> entered(8), left(8);

    auto r = run_spmd(m, [&](Context &ctx) {
        // Skewed arrivals: cell i computes i*100 us first.
        ctx.compute_us(ctx.id() * 100.0);
        entered[static_cast<std::size_t>(ctx.id())] = ctx.now();
        ctx.barrier();
        left[static_cast<std::size_t>(ctx.id())] = ctx.now();
    });
    ASSERT_FALSE(r.deadlock);
    Tick latest_entry = *std::max_element(entered.begin(),
                                          entered.end());
    for (Tick t : left)
        EXPECT_GE(t, latest_entry);
}

TEST(Barrier, ReusableAcrossEpisodes)
{
    hw::Machine m(small(4));
    auto r = run_spmd(m, [&](Context &ctx) {
        for (int i = 0; i < 20; ++i)
            ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(m.snet().episodes(0), 20u);
}

class AllreduceSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(AllreduceSizes, SumOfIdsIsExact)
{
    int n = GetParam();
    hw::Machine m(small(n));
    std::vector<double> results(static_cast<std::size_t>(n), -1);

    auto r = run_spmd(m, [&](Context &ctx) {
        double v = ctx.allreduce(static_cast<double>(ctx.id()),
                                 ReduceOp::sum);
        results[static_cast<std::size_t>(ctx.id())] = v;
    });
    ASSERT_FALSE(r.deadlock);
    double expect = n * (n - 1) / 2.0;
    for (double v : results)
        EXPECT_DOUBLE_EQ(v, expect);
}

TEST_P(AllreduceSizes, MinMaxProd)
{
    int n = GetParam();
    hw::Machine m(small(n));
    std::vector<double> mins(static_cast<std::size_t>(n)),
        maxs(static_cast<std::size_t>(n)),
        prods(static_cast<std::size_t>(n));

    auto r = run_spmd(m, [&](Context &ctx) {
        double x = 1.0 + ctx.id();
        auto i = static_cast<std::size_t>(ctx.id());
        mins[i] = ctx.allreduce(x, ReduceOp::min);
        maxs[i] = ctx.allreduce(x, ReduceOp::max);
        prods[i] = ctx.allreduce(ctx.id() < 2 ? 2.0 : 1.0,
                                 ReduceOp::prod);
    });
    ASSERT_FALSE(r.deadlock);
    for (int i = 0; i < n; ++i) {
        auto s = static_cast<std::size_t>(i);
        EXPECT_DOUBLE_EQ(mins[s], 1.0);
        EXPECT_DOUBLE_EQ(maxs[s], static_cast<double>(n));
        EXPECT_DOUBLE_EQ(prods[s], n >= 2 ? 4.0 : 2.0);
    }
}

INSTANTIATE_TEST_SUITE_P(CellCounts, AllreduceSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12,
                                           16, 27, 32, 64));

TEST(Allreduce, BackToBackReductionsDoNotCorrupt)
{
    // Exercises the two-bank register protocol: consecutive
    // reductions with skewed cells must not overwrite unconsumed
    // values.
    hw::Machine m(small(8));
    std::vector<double> sums(8 * 10);

    auto r = run_spmd(m, [&](Context &ctx) {
        for (int k = 0; k < 10; ++k) {
            // Skew cells differently each round.
            ctx.compute_us(((ctx.id() * 7 + k * 13) % 5) * 3.0);
            double v = ctx.allreduce(ctx.id() + k * 100.0,
                                     ReduceOp::sum);
            sums[static_cast<std::size_t>(ctx.id() * 10 + k)] = v;
        }
    });
    ASSERT_FALSE(r.deadlock);
    for (int k = 0; k < 10; ++k) {
        double expect = 8 * k * 100.0 + 28.0;
        for (int c = 0; c < 8; ++c)
            EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(c * 10 + k)],
                             expect)
                << "cell " << c << " round " << k;
    }
}

TEST(Allreduce, IntegerCountsAreExact)
{
    hw::Machine m(small(16));
    std::vector<std::uint64_t> counts(16);
    auto r = run_spmd(m, [&](Context &ctx) {
        counts[static_cast<std::size_t>(ctx.id())] =
            ctx.allreduce_u64(3, ReduceOp::sum);
    });
    ASSERT_FALSE(r.deadlock);
    for (auto c : counts)
        EXPECT_EQ(c, 48u);
}

TEST(GroupCollective, DisjointGroupsReduceIndependently)
{
    hw::Machine m(small(8));
    std::vector<double> results(8);

    auto r = run_spmd(m, [&](Context &ctx) {
        Group low = Group::range(0, 4);
        Group high = Group::range(4, 4);
        const Group &mine = ctx.id() < 4 ? low : high;
        results[static_cast<std::size_t>(ctx.id())] =
            ctx.allreduce_group(mine, 1.0 + ctx.id(), ReduceOp::sum);
    });
    ASSERT_FALSE(r.deadlock);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(i)], 10.0);
    for (int i = 4; i < 8; ++i)
        EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(i)], 26.0);
}

TEST(GroupCollective, UnevenGroupSchedulesStaySafe)
{
    // One group reduces many times while the other is idle; then a
    // group spanning different counts runs. Ring-buffer matching must
    // keep every exchange straight.
    hw::Machine m(small(8));
    std::vector<double> last(8, -1);

    auto r = run_spmd(m, [&](Context &ctx) {
        Group low = Group::range(0, 4);
        Group high = Group::range(4, 4);
        if (ctx.id() < 4) {
            double v = 0;
            for (int k = 0; k < 7; ++k)
                v = ctx.allreduce_group(low, 1.0, ReduceOp::sum);
            last[static_cast<std::size_t>(ctx.id())] = v;
        } else {
            last[static_cast<std::size_t>(ctx.id())] =
                ctx.allreduce_group(high, 2.0, ReduceOp::sum);
        }
    });
    ASSERT_FALSE(r.deadlock);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(last[static_cast<std::size_t>(i)], 4.0);
    for (int i = 4; i < 8; ++i)
        EXPECT_DOUBLE_EQ(last[static_cast<std::size_t>(i)], 8.0);
}

TEST(GroupCollective, StridedGroupMembers)
{
    hw::Machine m(small(8));
    std::vector<double> results(8, 0);

    auto r = run_spmd(m, [&](Context &ctx) {
        Group evens = Group::strided(0, 4, 2);
        if (evens.contains(ctx.id()))
            results[static_cast<std::size_t>(ctx.id())] =
                ctx.allreduce_group(evens, 1.0, ReduceOp::sum);
    });
    ASSERT_FALSE(r.deadlock);
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(i)],
                         i % 2 == 0 ? 4.0 : 0.0);
}

TEST(GroupCollective, GroupBarrierOrdersMembers)
{
    hw::Machine m(small(6));
    std::vector<Tick> entered(6), left(6);

    auto r = run_spmd(m, [&](Context &ctx) {
        Group g = Group::range(1, 4); // cells 1..4
        if (!g.contains(ctx.id()))
            return;
        ctx.compute_us(ctx.id() * 50.0);
        entered[static_cast<std::size_t>(ctx.id())] = ctx.now();
        ctx.barrier_group(g);
        left[static_cast<std::size_t>(ctx.id())] = ctx.now();
    });
    ASSERT_FALSE(r.deadlock);
    Tick latest = 0;
    for (int i = 1; i <= 4; ++i)
        latest = std::max(latest,
                          entered[static_cast<std::size_t>(i)]);
    for (int i = 1; i <= 4; ++i)
        EXPECT_GE(left[static_cast<std::size_t>(i)], latest);
}

class VectorReduceSizes
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(VectorReduceSizes, ElementwiseSumMatches)
{
    auto [cells, count] = GetParam();
    hw::Machine m(small(cells));
    std::vector<double> result(static_cast<std::size_t>(count));

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr vec = ctx.alloc(static_cast<std::size_t>(count) * 8);
        for (int i = 0; i < count; ++i)
            ctx.poke_f64(vec + static_cast<Addr>(i) * 8,
                         ctx.id() * 1000.0 + i);
        ctx.allreduce_vector(vec, static_cast<std::uint32_t>(count),
                             ReduceOp::sum);
        if (ctx.id() == 0)
            for (int i = 0; i < count; ++i)
                result[static_cast<std::size_t>(i)] = ctx.peek_f64(
                    vec + static_cast<Addr>(i) * 8);
    });
    ASSERT_FALSE(r.deadlock);
    for (int i = 0; i < count; ++i) {
        double expect = cells * (cells - 1) / 2.0 * 1000.0 +
                        static_cast<double>(cells) * i;
        EXPECT_DOUBLE_EQ(result[static_cast<std::size_t>(i)], expect)
            << "element " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, VectorReduceSizes,
    ::testing::Values(std::pair{2, 1}, std::pair{4, 16},
                      std::pair{8, 100}, std::pair{16, 1400},
                      std::pair{3, 7}, std::pair{5, 64}));

TEST(VectorReduce, UsesInPlaceRingBufferReads)
{
    hw::Machine m(small(4));
    auto r = run_spmd(m, [&](Context &ctx) {
        Addr vec = ctx.alloc(80);
        for (int i = 0; i < 10; ++i)
            ctx.poke_f64(vec + static_cast<Addr>(i) * 8, 1.0);
        ctx.allreduce_vector(vec, 10, ReduceOp::sum);
    });
    ASSERT_FALSE(r.deadlock);
    // Every step consumed straight from the ring buffer — no copies.
    for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(m.cell(c).ring().stats().inPlaceReads, 3u);
        EXPECT_EQ(m.cell(c).ring().stats().copies, 0u);
    }
}

TEST(VectorReduce, MaxAcrossCells)
{
    hw::Machine m(small(5));
    double got = 0;
    auto r = run_spmd(m, [&](Context &ctx) {
        Addr vec = ctx.alloc(8);
        ctx.poke_f64(vec, std::sin(ctx.id() * 1.7));
        ctx.allreduce_vector(vec, 1, ReduceOp::max);
        if (ctx.id() == 3)
            got = ctx.peek_f64(vec);
    });
    ASSERT_FALSE(r.deadlock);
    double expect = 0;
    for (int i = 0; i < 5; ++i)
        expect = std::max(expect, std::sin(i * 1.7));
    EXPECT_DOUBLE_EQ(got, expect);
}

TEST(Collective, GopsAndSyncsCounted)
{
    hw::Machine m(small(4));
    Trace trace;
    auto r = run_spmd(
        m,
        [&](Context &ctx) {
            ctx.barrier();
            ctx.allreduce(1.0, ReduceOp::sum);
            Addr vec = ctx.alloc(32);
            ctx.allreduce_vector(vec, 4, ReduceOp::sum);
            ctx.barrier();
        },
        &trace);
    ASSERT_FALSE(r.deadlock);
    for (int c = 0; c < 4; ++c) {
        int sync = 0, gop = 0, vgop = 0;
        for (const auto &ev : trace.timeline(c)) {
            sync += ev.op == TraceOp::barrier;
            gop += ev.op == TraceOp::gop;
            vgop += ev.op == TraceOp::vgop;
        }
        EXPECT_EQ(sync, 2);
        EXPECT_EQ(gop, 1);
        EXPECT_EQ(vgop, 1);
    }
}
