/**
 * @file
 * Randomized integration tests.
 *
 * Each seed drives a different symmetric SPMD program mixing the
 * whole primitive set — PUTs and GETs of random sizes (plain,
 * strided, acknowledged), SEND/RECEIVE pairs, barriers, scalar and
 * vector reductions, DSM stores, broadcasts — on machines of random
 * shapes. Invariants checked per seed:
 *
 *  1. the functional run completes (no deadlock) and every byte
 *     lands where it should;
 *  2. the captured trace replays deadlock-free under all three MLSim
 *     models with non-negative breakdowns summing to the total;
 *  3. the whole pipeline is deterministic: a second identical run
 *     finishes at the identical tick.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "base/random.hh"
#include "core/ap1000p.hh"
#include "mlsim/params.hh"
#include "mlsim/replay.hh"

using namespace ap;
using namespace ap::core;

namespace
{

struct FuzzOutcome
{
    Tick finish = 0;
    int data_errors = 0;
    bool deadlock = false;
    Trace trace;
};

/**
 * One symmetric random program: every cell derives the same op
 * sequence from the seed, so matching is guaranteed by construction.
 */
FuzzOutcome
run_fuzz(std::uint64_t seed, bool capture_trace)
{
    Random shape(seed);
    int cells = static_cast<int>(shape.range(2, 12));
    int rounds = static_cast<int>(shape.range(3, 8));

    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    hw::Machine m(cfg);

    FuzzOutcome out;
    if (capture_trace)
        out.trace = Trace(cells);

    auto result = run_spmd(
        m,
        [&](Context &ctx) {
            // Every cell replays the same decision stream.
            Random rng(seed * 7919 + 1);
            Addr data = ctx.alloc(16 << 10);
            Addr flag = ctx.alloc_flag();
            std::uint32_t expect_flag = 0;
            int me = ctx.id();
            int p = ctx.nprocs();

            for (int round = 0; round < rounds; ++round) {
                int op = static_cast<int>(rng.below(7));
                std::uint32_t bytes = static_cast<std::uint32_t>(
                    8 << rng.below(8)); // 8 .. 1 KB
                int dist = static_cast<int>(rng.range(1, p - 1));
                CellId to = (me + dist) % p;
                CellId from = (me - dist + p) % p;
                std::uint64_t stamp =
                    seed * 1000 + static_cast<std::uint64_t>(round);

                switch (op) {
                  case 0: { // plain PUT ring
                    ctx.poke_u32(data, static_cast<std::uint32_t>(
                                           stamp + me));
                    ctx.put(to, data + 512, data, bytes, no_flag,
                            flag);
                    ++expect_flag;
                    ctx.wait_flag(flag, expect_flag);
                    std::uint32_t got = ctx.peek_u32(data + 512);
                    if (got != static_cast<std::uint32_t>(
                                   stamp + from))
                        ++out.data_errors;
                    break;
                  }
                  case 1: { // acknowledged strided PUT
                    net::StrideSpec spec{
                        8, bytes / 8,
                        static_cast<std::uint32_t>(8 +
                                                   8 * rng.below(4))};
                    ctx.put_stride(to, data + 8192, data, true,
                                   no_flag, flag, spec,
                                   net::StrideSpec::contiguous(bytes));
                    ++expect_flag;
                    ctx.wait_all_acks();
                    ctx.wait_flag(flag, expect_flag);
                    break;
                  }
                  case 2: { // GET from the ring neighbour
                    ctx.poke_f64(data, me * 1.5 + round);
                    ctx.barrier(); // data ready everywhere
                    ctx.get(from, data, data + 4096, 8, no_flag,
                            flag);
                    ++expect_flag;
                    ctx.wait_flag(flag, expect_flag);
                    if (ctx.peek_f64(data + 4096) !=
                        from * 1.5 + round)
                        ++out.data_errors;
                    break;
                  }
                  case 3: { // SEND/RECEIVE pair
                    std::int32_t tag =
                        static_cast<std::int32_t>(round + 1);
                    ctx.poke_u32(data, static_cast<std::uint32_t>(
                                           me * 31 + round));
                    ctx.send(to, tag, data, bytes);
                    Addr dst = data + 12288;
                    ctx.recv(from, tag, dst, 16 << 10);
                    if (ctx.peek_u32(dst) !=
                        static_cast<std::uint32_t>(from * 31 + round))
                        ++out.data_errors;
                    break;
                  }
                  case 4: { // scalar + vector reductions
                    double s = ctx.allreduce(1.0, ReduceOp::sum);
                    if (s != static_cast<double>(p))
                        ++out.data_errors;
                    std::uint32_t cnt = 1 + bytes / 64;
                    Addr vec = data + 2048;
                    for (std::uint32_t i = 0; i < cnt; ++i)
                        ctx.poke_f64(vec + static_cast<Addr>(i) * 8,
                                     1.0);
                    ctx.allreduce_vector(vec, cnt, ReduceOp::sum);
                    if (ctx.peek_f64(vec) != static_cast<double>(p))
                        ++out.data_errors;
                    break;
                  }
                  case 5: { // DSM store + shared-space load
                    ctx.remote_store_u32(
                        to, data + 1024,
                        static_cast<std::uint32_t>(stamp + me));
                    ctx.wait_all_acks();
                    ctx.barrier();
                    std::uint32_t got = ctx.shared_load_u32(
                        ctx.shared_addr(me, data + 1024));
                    if (got != static_cast<std::uint32_t>(
                                   stamp + from))
                        ++out.data_errors;
                    break;
                  }
                  default: { // broadcast from a random root
                    CellId root =
                        static_cast<CellId>(rng.below(
                            static_cast<std::uint64_t>(p)));
                    if (me == root)
                        ctx.poke_u32(data + 256,
                                     static_cast<std::uint32_t>(
                                         stamp * 3));
                    ctx.broadcast(root, data + 256, 64, flag);
                    if (me != root) {
                        ++expect_flag;
                        ctx.wait_flag(flag, expect_flag);
                    }
                    if (ctx.peek_u32(data + 256) !=
                        static_cast<std::uint32_t>(stamp * 3))
                        ++out.data_errors;
                    break;
                  }
                }
                ctx.barrier();
            }
        },
        capture_trace ? &out.trace : nullptr);

    out.deadlock = result.deadlock;
    out.finish = result.finishTick;
    return out;
}

/** The three per-seed invariants; diagnostics go to stderr. */
bool
check_seed(std::uint64_t seed)
{
    bool ok = true;
    FuzzOutcome o = run_fuzz(seed, true);
    if (o.deadlock) {
        std::fprintf(stderr, "seed %llu: deadlock\n",
                     static_cast<unsigned long long>(seed));
        return false; // the other invariants are meaningless now
    }
    if (o.data_errors != 0) {
        std::fprintf(stderr, "seed %llu: %d data errors\n",
                     static_cast<unsigned long long>(seed),
                     o.data_errors);
        ok = false;
    }
    if (o.finish == 0) {
        std::fprintf(stderr, "seed %llu: zero finish tick\n",
                     static_cast<unsigned long long>(seed));
        ok = false;
    }
    FuzzOutcome again = run_fuzz(seed, false);
    if (again.finish != o.finish) {
        std::fprintf(stderr,
                     "seed %llu: non-deterministic finish "
                     "(%llu vs %llu ticks)\n",
                     static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(o.finish),
                     static_cast<unsigned long long>(again.finish));
        ok = false;
    }
    for (const auto &p :
         {mlsim::Params::ap1000(), mlsim::Params::ap1000_fast(),
          mlsim::Params::ap1000_plus()}) {
        mlsim::ReplayReport r = mlsim::Replay(o.trace, p).run();
        if (r.deadlock || r.totalUs <= 0.0) {
            std::fprintf(stderr,
                         "seed %llu: replay failed under model %s\n",
                         static_cast<unsigned long long>(seed),
                         p.name.c_str());
            ok = false;
        }
    }
    return ok;
}

} // namespace

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzSeeds, FunctionalRunDeliversEveryByte)
{
    SCOPED_TRACE("replay with: test_fuzz --seed=" +
                 std::to_string(GetParam()));
    FuzzOutcome o = run_fuzz(GetParam(), false);
    ASSERT_FALSE(o.deadlock) << "seed " << GetParam();
    EXPECT_EQ(o.data_errors, 0) << "seed " << GetParam();
    EXPECT_GT(o.finish, 0u);
}

TEST_P(FuzzSeeds, DeterministicAcrossRuns)
{
    SCOPED_TRACE("replay with: test_fuzz --seed=" +
                 std::to_string(GetParam()));
    FuzzOutcome a = run_fuzz(GetParam(), false);
    FuzzOutcome b = run_fuzz(GetParam(), false);
    EXPECT_EQ(a.finish, b.finish) << "seed " << GetParam();
}

TEST_P(FuzzSeeds, TraceReplaysUnderAllModels)
{
    SCOPED_TRACE("replay with: test_fuzz --seed=" +
                 std::to_string(GetParam()));
    FuzzOutcome o = run_fuzz(GetParam(), true);
    ASSERT_FALSE(o.deadlock) << "seed " << GetParam();
    for (const auto &p :
         {mlsim::Params::ap1000(), mlsim::Params::ap1000_fast(),
          mlsim::Params::ap1000_plus()}) {
        mlsim::ReplayReport r = mlsim::Replay(o.trace, p).run();
        ASSERT_FALSE(r.deadlock)
            << "seed " << GetParam() << " model " << p.name;
        EXPECT_GT(r.totalUs, 0.0);
        for (const auto &c : r.cells) {
            EXPECT_GE(c.execUs, 0.0);
            EXPECT_GE(c.idleUs, 0.0);
            EXPECT_LE(c.execUs + c.rtsUs + c.overheadUs + c.idleUs,
                      c.totalUs * 1.01 + 1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

/**
 * Custom main: `--seed=N` replays exactly one seed through all three
 * invariants without the gtest registry (the parameterized suite is
 * instantiated at static-init time, long before arguments exist).
 * Without --seed this behaves like a normal gtest binary.
 */
int
main(int argc, char **argv)
{
    std::uint64_t forced = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--seed=", 7) == 0)
            forced = std::strtoull(argv[i] + 7, nullptr, 10);
    }
    if (forced != 0) {
        if (!check_seed(forced)) {
            std::fprintf(stderr, "seed %llu FAILED\n",
                         static_cast<unsigned long long>(forced));
            return 1;
        }
        std::printf("seed %llu ok\n",
                    static_cast<unsigned long long>(forced));
        return 0;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
