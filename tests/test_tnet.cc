/**
 * @file
 * T-net transport tests: the MLSim latency formula, per-pair FIFO
 * ordering (the property the GET-as-ack trick needs), statistics, and
 * the optional link-contention extension.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/tnet.hh"
#include "sim/eventq.hh"

using namespace ap;
using namespace ap::net;

namespace
{

Message
mk(CellId src, CellId dst, std::size_t bytes)
{
    Message m;
    m.kind = MsgKind::put_data;
    m.src = src;
    m.dst = dst;
    m.payload.assign(bytes, 0xab);
    return m;
}

} // namespace

TEST(Tnet, LatencyFollowsTheModel)
{
    sim::Simulator sim;
    TnetParams p;
    p.prologUs = 0.16;
    p.delayPerHopUs = 0.16;
    p.perByteUs = 0.04;
    p.epilogUs = 0.0;
    Tnet net(sim, Torus(4, 4), p);

    // distance(0, 1) = 1 hop; 100-byte wire message.
    Tick lat = net.latency(0, 1, 100);
    EXPECT_EQ(lat, us_to_ticks(0.16 + 0.16 * 1 + 0.04 * 100));

    // distance(0, 10) = 4 hops.
    Tick lat4 = net.latency(0, 10, 100);
    EXPECT_EQ(lat4, us_to_ticks(0.16 + 0.16 * 4 + 0.04 * 100));
}

TEST(Tnet, DeliversToAttachedHandler)
{
    sim::Simulator sim;
    Tnet net(sim, Torus(2, 2), TnetParams{});
    std::vector<Message> got;
    for (CellId c = 0; c < 4; ++c)
        net.attach(c, [&](Message m) { got.push_back(std::move(m)); });

    net.send(mk(0, 3, 64));
    sim.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].src, 0);
    EXPECT_EQ(got[0].dst, 3);
    EXPECT_EQ(got[0].payload.size(), 64u);
}

TEST(Tnet, PerPairFifoEvenWhenSizesInvert)
{
    // A big message injected first must not be overtaken by a small
    // one on the same pair — static routing passes messages in order.
    sim::Simulator sim;
    Tnet net(sim, Torus(4, 1), TnetParams{});
    std::vector<std::size_t> sizes;
    for (CellId c = 0; c < 4; ++c)
        net.attach(c,
                   [&](Message m) { sizes.push_back(m.payload.size()); });

    net.send(mk(0, 2, 100000)); // slow
    net.send(mk(0, 2, 4));      // would overtake with pure latency
    sim.run();
    ASSERT_EQ(sizes.size(), 2u);
    EXPECT_EQ(sizes[0], 100000u);
    EXPECT_EQ(sizes[1], 4u);
}

TEST(Tnet, DifferentPairsMayOvertake)
{
    sim::Simulator sim;
    Tnet net(sim, Torus(4, 1), TnetParams{});
    std::vector<CellId> arrivals;
    for (CellId c = 0; c < 4; ++c)
        net.attach(c, [&, c](Message) { arrivals.push_back(c); });

    net.send(mk(0, 2, 100000)); // slow, to cell 2
    net.send(mk(0, 1, 4));      // fast, to cell 1
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], 1);
    EXPECT_EQ(arrivals[1], 2);
}

TEST(Tnet, StatsAccumulate)
{
    sim::Simulator sim;
    Tnet net(sim, Torus(4, 4), TnetParams{});
    for (CellId c = 0; c < 16; ++c)
        net.attach(c, [](Message) {});

    net.send(mk(0, 1, 100));
    net.send(mk(0, 10, 200));
    sim.run();

    EXPECT_EQ(net.stats().messages, 2u);
    EXPECT_EQ(net.stats().payloadBytes, 300u);
    EXPECT_EQ(net.stats().wireBytes,
              300u + 2 * Message::header_bytes);
    EXPECT_EQ(net.stats().distance.scalar().count(), 2u);
    EXPECT_DOUBLE_EQ(net.stats().distance.scalar().mean(), 2.5);
}

TEST(Tnet, SelfSendStillWorks)
{
    sim::Simulator sim;
    Tnet net(sim, Torus(2, 2), TnetParams{});
    bool got = false;
    for (CellId c = 0; c < 4; ++c)
        net.attach(c, [&](Message) { got = true; });
    net.send(mk(1, 1, 8));
    sim.run();
    EXPECT_TRUE(got);
}

TEST(TnetContention, SharedLinkSerializes)
{
    // Two messages crossing the same directed link back-to-back must
    // arrive strictly later than either alone.
    TnetParams p;
    p.linkContention = true;
    p.perByteUs = 0.04;

    sim::Simulator sim1;
    Tnet solo(sim1, Torus(4, 1), p);
    Tick solo_arrival = 0;
    for (CellId c = 0; c < 4; ++c)
        solo.attach(c, [](Message) {});
    solo_arrival = solo.send(mk(0, 2, 10000));

    sim::Simulator sim2;
    Tnet busy(sim2, Torus(4, 1), p);
    for (CellId c = 0; c < 4; ++c)
        busy.attach(c, [](Message) {});
    busy.send(mk(0, 2, 10000));
    Tick second = busy.send(mk(0, 2, 10000));
    EXPECT_GT(second, solo_arrival);
    // Roughly doubled: the second waits out the first's body.
    EXPECT_GE(second, 2 * solo_arrival - us_to_ticks(1.0));
}

TEST(TnetContention, DisjointPathsDoNotSerialize)
{
    TnetParams p;
    p.linkContention = true;

    sim::Simulator sim;
    Tnet net(sim, Torus(4, 1), p);
    for (CellId c = 0; c < 4; ++c)
        net.attach(c, [](Message) {});
    Tick a = net.send(mk(0, 1, 10000));  // link 0->1
    Tick b = net.send(mk(2, 3, 10000));  // link 2->3
    EXPECT_EQ(a, b);
}
