/**
 * @file
 * Fitting-core tests on hand-constructed synthetic datasets: the
 * selected term, coefficient recovery within tolerance, and the
 * cross-validation guard that keeps noise from growing exponents.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "model/fit.hh"
#include "model/modelset.hh"
#include "obs/json.hh"

using namespace ap;
using namespace ap::model;

namespace
{

std::vector<Point>
make_points(const std::vector<double> &xs, double (*f)(double))
{
    std::vector<Point> pts;
    for (double x : xs)
        pts.push_back({x, f(x)});
    return pts;
}

const std::vector<double> powers2 = {2, 4, 8, 16, 32, 64, 128, 256};

} // namespace

TEST(Fit, PureConstantSelectsConstant)
{
    auto pts = make_points(powers2, [](double) { return 42.0; });
    Fit f = fit_scaling(pts);
    EXPECT_TRUE(f.constant);
    EXPECT_NEAR(f.c, 42.0, 1e-9);
    EXPECT_NEAR(f.rmseRel, 0.0, 1e-12);
    EXPECT_EQ(f.points, pts.size());
}

TEST(Fit, LinearRecoversSlopeInterceptAndExponent)
{
    auto pts =
        make_points(powers2, [](double x) { return 3.0 + 2.0 * x; });
    Fit f = fit_scaling(pts);
    ASSERT_FALSE(f.constant);
    EXPECT_DOUBLE_EQ(f.term.exp, 1.0);
    EXPECT_EQ(f.term.logPow, 0);
    EXPECT_NEAR(f.a, 2.0, 1e-6);
    EXPECT_NEAR(f.c, 3.0, 1e-5);
    EXPECT_GT(f.r2, 0.9999);
}

TEST(Fit, NLogNSelectsLinearLogTerm)
{
    auto pts = make_points(
        powers2, [](double x) { return 0.5 * x * std::log2(x); });
    Fit f = fit_scaling(pts);
    ASSERT_FALSE(f.constant);
    EXPECT_DOUBLE_EQ(f.term.exp, 1.0);
    EXPECT_EQ(f.term.logPow, 1);
    EXPECT_NEAR(f.a, 0.5, 1e-6);
    EXPECT_NEAR(f.c, 0.0, 1e-6);
}

TEST(Fit, NoisyQuadraticRecoversExponentAndCoefficients)
{
    // Deterministic +-2% "noise" alternating by index.
    std::vector<Point> pts;
    int i = 0;
    for (double x : powers2) {
        double y = 5.0 + 0.1 * x * x;
        y *= (i++ % 2 == 0) ? 1.02 : 0.98;
        pts.push_back({x, y});
    }
    Fit f = fit_scaling(pts);
    ASSERT_FALSE(f.constant);
    EXPECT_DOUBLE_EQ(f.term.exp, 2.0);
    EXPECT_EQ(f.term.logPow, 0);
    EXPECT_NEAR(f.a, 0.1, 0.01);
    EXPECT_GT(f.r2, 0.99);
    EXPECT_LT(f.cvRmseRel, 0.10);
}

TEST(Fit, InverseSquareRootDecay)
{
    auto pts = make_points(
        powers2, [](double x) { return 3.1e6 / std::sqrt(x); });
    Fit f = fit_scaling(pts);
    ASSERT_FALSE(f.constant);
    EXPECT_DOUBLE_EQ(f.term.exp, -0.5);
    EXPECT_EQ(f.term.logPow, 0);
    EXPECT_NEAR(f.a / 3.1e6, 1.0, 1e-6);
}

TEST(Fit, DegenerateSinglePointIsConstantThroughIt)
{
    Fit f = fit_scaling({{16.0, 7.5}});
    EXPECT_TRUE(f.constant);
    EXPECT_DOUBLE_EQ(f.c, 7.5);
    EXPECT_DOUBLE_EQ(f.eval(1.0), 7.5);
    EXPECT_DOUBLE_EQ(f.eval(1e6), 7.5);
    EXPECT_EQ(f.points, 1u);
}

TEST(Fit, EmptyAndTwoPointInputsDoNotCrash)
{
    Fit none = fit_scaling({});
    EXPECT_TRUE(none.constant);
    EXPECT_EQ(none.points, 0u);

    // Two points: every candidate term interpolates them exactly, so
    // the scaling class is unidentifiable and the constant stands.
    Fit two = fit_scaling({{2.0, 10.0}, {8.0, 40.0}});
    EXPECT_EQ(two.points, 2u);
    EXPECT_TRUE(two.constant);
}

TEST(Fit, CrossValidationRejectsOverfitOnNoisyFlatData)
{
    // Flat data with small alternating noise: any term that chases
    // the noise fits training points better, but must lose on
    // held-out points and the constant must stand.
    std::vector<Point> pts;
    int i = 0;
    for (double x : powers2) {
        double y = 100.0 * ((i++ % 2 == 0) ? 1.01 : 0.99);
        pts.push_back({x, y});
    }
    Fit f = fit_scaling(pts);
    EXPECT_TRUE(f.constant);
    EXPECT_NEAR(f.c, 100.0, 1.5);
}

TEST(Fit, FormulaAndTextAreHumanReadable)
{
    auto pts = make_points(
        powers2, [](double x) { return 2.0e6 / std::sqrt(x); });
    Fit f = fit_scaling(pts);
    std::string s = f.text("events_per_sec", "n");
    EXPECT_NE(s.find("events_per_sec"), std::string::npos);
    EXPECT_NE(s.find("n^-0.50"), std::string::npos);
    EXPECT_NE(s.find("R2="), std::string::npos);
}

TEST(Fit, LinearFitHelperRecoversLine)
{
    std::vector<Point> pts;
    for (double x : {1.0, 2.0, 4.0, 8.0})
        pts.push_back({x, 0.5 + 0.04 * x});
    Line ln = linear_fit(pts);
    EXPECT_NEAR(ln.intercept, 0.5, 1e-9);
    EXPECT_NEAR(ln.slope, 0.04, 1e-9);
    EXPECT_GT(ln.r2, 0.999999);

    Line flat = linear_fit({{3.0, 9.0}});
    EXPECT_DOUBLE_EQ(flat.intercept, 9.0);
    EXPECT_DOUBLE_EQ(flat.slope, 0.0);
}

TEST(ModelSet, ClassifyMetricMirrorsBenchCompare)
{
    EXPECT_EQ(classify_metric("events_per_sec"), MetricClass::host);
    EXPECT_EQ(classify_metric("wall_s"), MetricClass::host);
    EXPECT_EQ(classify_metric("deliver_us"), MetricClass::sim);
    EXPECT_EQ(classify_metric("mean_latency_us"), MetricClass::sim);
    EXPECT_EQ(classify_metric("events"), MetricClass::count);
    EXPECT_EQ(classify_metric("retransmits"), MetricClass::count);
}

TEST(ModelSet, SweepJsonIsValidAndSorted)
{
    SweepData d;
    d.sweep = "putlat";
    d.bench = "micro_putget";
    d.param = "bytes";
    d.unit = "B";
    // Inserted out of order; json() and series() must sort by x.
    d.points.push_back({1024.0, {{"deliver_us", 60.0}}, {}});
    d.points.push_back(
        {64.0, {{"deliver_us", 21.0}}, {{"tnet.messages", 3}}});

    std::string js = d.json();
    std::string err;
    EXPECT_TRUE(obs::json_valid(js, &err)) << err;
    EXPECT_NE(js.find("\"kind\": \"sweep\""), std::string::npos);
    EXPECT_LT(js.find("\"x\": 64"), js.find("\"x\": 1024"));
    EXPECT_NE(js.find("tnet.messages"), std::string::npos);

    auto pts = d.series("deliver_us");
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_DOUBLE_EQ(pts.front().x, 64.0);
}

TEST(ModelSet, FitSweepDerivesEnvelopesAndValidJson)
{
    SweepData d;
    d.sweep = "cells";
    d.bench = "phold";
    d.param = "cells";
    d.unit = "cells";
    for (double x : {64.0, 144.0, 256.0, 576.0, 1024.0}) {
        SweepPoint p;
        p.x = x;
        p.metrics["events"] = 100.0 * x;        // count, linear
        p.metrics["events_per_sec"] = 3.0e6;    // host, flat
        d.points.push_back(p);
    }
    SweepModel m = fit_sweep(d);
    ASSERT_EQ(m.metrics.size(), 2u);
    const MetricModel *events = nullptr, *eps = nullptr;
    for (const MetricModel &mm : m.metrics) {
        if (mm.metric == "events")
            events = &mm;
        if (mm.metric == "events_per_sec")
            eps = &mm;
    }
    ASSERT_NE(events, nullptr);
    ASSERT_NE(eps, nullptr);
    EXPECT_FALSE(events->fit.constant);
    EXPECT_DOUBLE_EQ(events->fit.term.exp, 1.0);
    EXPECT_EQ(events->cls, MetricClass::count);
    EXPECT_TRUE(eps->fit.constant);
    EXPECT_EQ(eps->cls, MetricClass::host);
    // Exact data: envelopes sit at the class floors.
    EXPECT_DOUBLE_EQ(events->envelope, 0.10);
    EXPECT_DOUBLE_EQ(eps->envelope, 0.35);
    EXPECT_DOUBLE_EQ(events->xmin, 64.0);
    EXPECT_DOUBLE_EQ(events->xmax, 1024.0);

    std::string js = m.json();
    std::string err;
    EXPECT_TRUE(obs::json_valid(js, &err)) << err;
    EXPECT_NE(js.find("\"kind\": \"model\""), std::string::npos);
    EXPECT_NE(js.find("\"formula\""), std::string::npos);
}
