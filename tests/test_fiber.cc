/**
 * @file
 * Unit tests of fibers, processes and conditions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fiber.hh"
#include "sim/process.hh"

using namespace ap;
using namespace ap::sim;

TEST(Fiber, RunsBodyOnResume)
{
    bool ran = false;
    Fiber f([&]() { ran = true; });
    EXPECT_FALSE(ran);
    f.resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumes)
{
    std::vector<int> order;
    Fiber f([&]() {
        order.push_back(1);
        Fiber::yield();
        order.push_back(3);
    });
    f.resume();
    order.push_back(2);
    f.resume();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksRunningFiber)
{
    Fiber *seen = nullptr;
    Fiber f([&]() { seen = Fiber::current(); });
    EXPECT_EQ(Fiber::current(), nullptr);
    f.resume();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Process, DelayAdvancesSimulatedTime)
{
    Simulator sim;
    Tick seen = 0;
    Process p(sim, "p", [&](Process &self) {
        self.delay(100);
        seen = sim.now();
        self.delay(50);
    });
    p.start(0);
    sim.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(sim.now(), 150u);
    EXPECT_TRUE(p.finished());
    EXPECT_EQ(p.delayed_ticks(), 150u);
}

TEST(Process, WaitBlocksUntilNotify)
{
    Simulator sim;
    Condition cond;
    bool woke = false;
    Process waiter(sim, "waiter", [&](Process &self) {
        self.wait(cond);
        woke = true;
    });
    Process notifier(sim, "notifier", [&](Process &self) {
        self.delay(500);
        cond.notify_all();
    });
    waiter.start(0);
    notifier.start(0);
    sim.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(sim.now(), 500u);
    EXPECT_EQ(waiter.blocked_ticks(), 500u);
}

TEST(Process, NotifyWakesAllWaitersInOrder)
{
    Simulator sim;
    Condition cond;
    std::vector<int> order;
    std::vector<std::unique_ptr<Process>> procs;
    for (int i = 0; i < 4; ++i) {
        procs.push_back(std::make_unique<Process>(
            sim, "w", [&, i](Process &self) {
                self.wait(cond);
                order.push_back(i);
            }));
        procs.back()->start(0);
    }
    Process kicker(sim, "k", [&](Process &self) {
        self.delay(10);
        cond.notify_all();
    });
    kicker.start(0);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Process, UnfinishedProcessDetectable)
{
    Simulator sim;
    Condition never;
    Process p(sim, "stuck", [&](Process &self) { self.wait(never); });
    p.start(0);
    sim.run();
    EXPECT_FALSE(p.finished());
    EXPECT_TRUE(p.blocked());
}

TEST(Process, TwoProcessesInterleaveDeterministically)
{
    Simulator sim;
    std::vector<std::pair<int, Tick>> log;
    Process a(sim, "a", [&](Process &self) {
        for (int i = 0; i < 3; ++i) {
            log.emplace_back(0, sim.now());
            self.delay(10);
        }
    });
    Process b(sim, "b", [&](Process &self) {
        for (int i = 0; i < 3; ++i) {
            log.emplace_back(1, sim.now());
            self.delay(15);
        }
    });
    a.start(0);
    b.start(0);
    sim.run();
    std::vector<std::pair<int, Tick>> expect = {
        {0, 0}, {1, 0}, {0, 10}, {1, 15}, {0, 20}, {1, 30},
    };
    EXPECT_EQ(log, expect);
}
