/**
 * @file
 * Base-library tests: strings, statistics, tables, and the NAS
 * pseudo-random generator EP depends on.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "base/stats.hh"
#include "base/strings.hh"
#include "base/table.hh"

using namespace ap;

// --------------------------------------------------------------- strings

TEST(Strings, TrimStripsBothEnds)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("\t x \n"), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto v = split("a,,b,", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "");
    EXPECT_EQ(v[2], "b");
    EXPECT_EQ(v[3], "");
}

TEST(Strings, SplitWsDropsRuns)
{
    auto v = split_ws("  foo\t bar \nbaz ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "foo");
    EXPECT_EQ(v[2], "baz");
}

TEST(Strings, ParseDoubleRejectsGarbage)
{
    EXPECT_DOUBLE_EQ(*parse_double("0.125"), 0.125);
    EXPECT_DOUBLE_EQ(*parse_double(" 20.0 "), 20.0);
    EXPECT_FALSE(parse_double("12x").has_value());
    EXPECT_FALSE(parse_double("").has_value());
}

TEST(Strings, ParseIntRejectsGarbage)
{
    EXPECT_EQ(*parse_int("-42"), -42);
    EXPECT_FALSE(parse_int("1.5").has_value());
    EXPECT_FALSE(parse_int("ten").has_value());
}

// ------------------------------------------------------------------ stats

TEST(Accumulator, TracksMinMaxMean)
{
    Accumulator a;
    for (double v : {3.0, 1.0, 2.0})
        a.sample(v);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(Accumulator, SingleSampleIsItsOwnExtremes)
{
    // The first sample must overwrite the zero-initialized min/max —
    // a negative or large first value exposes any min(0,v) shortcut.
    Accumulator a;
    a.sample(-7.5);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), -7.5);
    EXPECT_DOUBLE_EQ(a.max(), -7.5);
    EXPECT_DOUBLE_EQ(a.mean(), -7.5);
    EXPECT_DOUBLE_EQ(a.sum(), -7.5);
}

TEST(Accumulator, ResetReturnsToEmptySemantics)
{
    Accumulator a;
    a.sample(3.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(-1.0); // post-reset first sample sets both extremes
    EXPECT_DOUBLE_EQ(a.max(), -1.0);
}

TEST(Accumulator, MergeWithEmptySidesIsSafe)
{
    Accumulator empty1, empty2;
    empty1.merge(empty2); // empty + empty
    EXPECT_EQ(empty1.count(), 0u);
    EXPECT_DOUBLE_EQ(empty1.mean(), 0.0);

    Accumulator a;
    a.sample(5.0);
    a.merge(empty2); // non-empty + empty keeps values
    EXPECT_DOUBLE_EQ(a.min(), 5.0);

    Accumulator b;
    b.merge(a); // empty + non-empty adopts values
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.max(), 5.0);
}

TEST(Histogram, EmptyScalarIsZero)
{
    Histogram h;
    EXPECT_TRUE(h.data().empty());
    EXPECT_EQ(h.scalar().count(), 0u);
    EXPECT_DOUBLE_EQ(h.scalar().mean(), 0.0);
}

TEST(Accumulator, MergeEqualsCombinedStream)
{
    Accumulator a, b, all;
    for (int i = 0; i < 10; ++i) {
        (i % 2 ? a : b).sample(i);
        all.sample(i);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, PowerOfTwoBuckets)
{
    EXPECT_EQ(Histogram::bucket_of(0), 0);
    EXPECT_EQ(Histogram::bucket_of(1), 1);
    EXPECT_EQ(Histogram::bucket_of(2), 2);
    EXPECT_EQ(Histogram::bucket_of(3), 2);
    EXPECT_EQ(Histogram::bucket_of(4), 3);
    EXPECT_EQ(Histogram::bucket_of(1024), 11);
}

TEST(Histogram, CountsLandInBuckets)
{
    Histogram h;
    h.sample(1);
    h.sample(3);
    h.sample(3);
    h.sample(700);
    EXPECT_EQ(h.data().at(1), 1u);
    EXPECT_EQ(h.data().at(2), 2u);
    EXPECT_EQ(h.data().at(10), 1u); // 512..1023
    EXPECT_EQ(h.scalar().count(), 4u);
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAlignedColumns)
{
    Table t({"a", "long-header"});
    t.add_row({"xx", "1"});
    t.title("T");
    std::string s = t.str();
    EXPECT_NE(s.find("| a  | long-header |"), std::string::npos);
    EXPECT_NE(s.find("| xx | 1           |"), std::string::npos);
    EXPECT_EQ(s.find("T\n"), 0u);
}

TEST(TableDeath, WrongCellCountPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.add_row({"only-one"}), "cells");
}

// ----------------------------------------------------------------- random

TEST(Random, Deterministic)
{
    Random a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Random, UniformInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        auto v = r.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(NasLcg, MatchesDefinition)
{
    // x1 = 5^13 * 271828183 mod 2^46, computed independently.
    NasLcg g;
    unsigned __int128 x =
        static_cast<unsigned __int128>(1220703125ull) * 271828183ull;
    std::uint64_t expect =
        static_cast<std::uint64_t>(x & ((std::uint64_t{1} << 46) - 1));
    EXPECT_EQ(g.next(), expect);
}

TEST(NasLcg, SkipEqualsStepping)
{
    // The O(log n) jump must land exactly where n sequential steps do
    // — this is what gives each EP cell its disjoint slice.
    NasLcg a, b;
    for (int i = 0; i < 1000; ++i)
        a.next();
    b.skip(1000);
    EXPECT_EQ(a.state(), b.state());
}

TEST(NasLcg, DoublesInUnitInterval)
{
    NasLcg g;
    for (int i = 0; i < 100; ++i) {
        double d = g.next_double();
        EXPECT_GT(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}
