/**
 * @file
 * RetryPolicy edge cases: zero-retry budgets, exponential backoff
 * saturation at the cap, and that a successful attempt never triggers
 * further retries.
 */

#include <gtest/gtest.h>

#include "core/program.hh"
#include "hw/config.hh"
#include "hw/machine.hh"
#include "sim/fault.hh"

using namespace ap;

TEST(RetryPolicy, DisabledByDefault)
{
    hw::RetryPolicy p;
    EXPECT_FALSE(p.enabled());
    EXPECT_FALSE(p.watchdog_enabled());
}

TEST(RetryPolicy, FirstAttemptUsesTheBaseTimeout)
{
    hw::RetryPolicy p;
    p.timeoutUs = 100.0;
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(0), 100.0);
}

TEST(RetryPolicy, BackoffGrowsAndSaturatesAtTheDefaultCap)
{
    hw::RetryPolicy p;
    p.timeoutUs = 100.0; // default cap = 8x = 800
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(1), 200.0);
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(2), 400.0);
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(3), 800.0);
    // Far past the knee the timeout must stay pinned at the cap, not
    // overflow or keep doubling.
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(10), 800.0);
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(1000), 800.0);
}

TEST(RetryPolicy, ExplicitCapWins)
{
    hw::RetryPolicy p;
    p.timeoutUs = 100.0;
    p.timeoutCapUs = 250.0;
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(0), 100.0);
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(1), 200.0);
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(2), 250.0);
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(50), 250.0);
}

TEST(RetryPolicy, FlatFactorMeansFlatTimeouts)
{
    hw::RetryPolicy p;
    p.timeoutUs = 100.0;
    p.backoffFactor = 1.0;
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(0), 100.0);
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(5), 100.0);
    p.backoffFactor = 0.5; // nonsense values degrade to flat, not
                           // shrinking, timeouts
    EXPECT_DOUBLE_EQ(p.attempt_timeout_us(5), 100.0);
}

TEST(RetryPolicy, ZeroRetryBudgetFailsAfterExactlyOneAttempt)
{
    // Total blackout with maxRetries = 0: one attempt, one typed
    // error — no second PUT ever leaves the cell.
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.faults = sim::FaultPlan::drops(21, 1.0);
    cfg.retry.timeoutUs = 200.0;
    cfg.retry.maxRetries = 0;
    hw::Machine m(cfg);

    std::uint64_t puts = 0;
    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        if (ctx.id() != 0)
            return;
        Addr buf = ctx.alloc(64);
        ctx.poke_u32(buf, 0xdead);
        ctx.write_remote(1, 0x800, buf, 64);
        puts = 0xffff; // unreachable: the write cannot succeed
    });
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_NE(r.errors.front().find("1 attempts"), std::string::npos)
        << r.errors.front();
    EXPECT_EQ(puts, 0u);
    EXPECT_FALSE(r.deadlock);
}

TEST(RetryPolicy, GiveUpIncrementsTheRegistryCounter)
{
    // Every exhausted retry budget must leave a fleet-visible mark:
    // the CommError can be swallowed by a caller (the serve layer
    // retries the whole job), but `comm.retry.giveup` cannot.
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.faults = sim::FaultPlan::drops(33, 1.0);
    cfg.retry.timeoutUs = 150.0;
    cfg.retry.maxRetries = 1;
    hw::Machine m(cfg);

    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        if (ctx.id() != 0)
            return;
        Addr buf = ctx.alloc(64);
        ctx.poke_u32(buf, 0xabcd);
        ctx.write_remote(1, 0x800, buf, 64);
    });
    ASSERT_TRUE(r.failed());
    EXPECT_EQ(m.stats_registry().value("comm.retry.giveup"), 1u);

    // The counter accumulates across runs on the same machine: a
    // read_remote give-up on the same blackout adds a second one.
    core::run_spmd(m, [&](core::Context &ctx) {
        if (ctx.id() != 0)
            return;
        Addr buf = ctx.alloc(64);
        ctx.read_remote(1, 0x800, buf, 64);
    });
    EXPECT_EQ(m.stats_registry().value("comm.retry.giveup"), 2u);
}

TEST(RetryPolicy, NoGiveUpOnAHealthyMachine)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.retry.timeoutUs = 2000.0;
    cfg.retry.maxRetries = 2;
    hw::Machine m(cfg);

    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        if (ctx.id() != 0)
            return;
        Addr buf = ctx.alloc(64);
        ctx.poke_u32(buf, 0x1234);
        ctx.write_remote(1, 0x800, buf, 64);
        ctx.read_remote(1, 0x800, buf, 64);
    });
    EXPECT_FALSE(r.failed());
    EXPECT_EQ(m.stats_registry().value("comm.retry.giveup"), 0u);
}

TEST(RetryPolicy, SuccessfulAttemptStopsTheRetryLoop)
{
    // Fault-free machine with an armed retry policy: the hardened
    // write path must do its single PUT (plus read-back verification)
    // and never reissue.
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.retry.timeoutUs = 2000.0;
    cfg.retry.maxRetries = 8;
    hw::Machine m(cfg);

    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        if (ctx.id() != 0)
            return;
        Addr buf = ctx.alloc(64);
        ctx.poke_u32(buf, 0xbeef);
        ctx.write_remote(1, 0x800, buf, 64);
        puts = ctx.stats().puts;
        gets = ctx.stats().gets;
    });
    EXPECT_FALSE(r.failed());
    EXPECT_EQ(puts, 1u) << "retry loop reissued a successful write";
    EXPECT_EQ(gets, 1u) << "exactly one read-back verification";
}
