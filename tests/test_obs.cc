/**
 * @file
 * Telemetry-layer tests: JSON emitter/validator, the stats registry
 * (paths, pattern queries, subtree removal, dumps), debug-flag
 * parsing, the bounded tracer ring, and the end-to-end timeline of a
 * two-cell PUT program.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "core/ap1000p.hh"
#include "obs/cli.hh"
#include "obs/debug.hh"
#include "obs/json.hh"
#include "obs/stats_registry.hh"
#include "obs/tracer.hh"
#include "runtime/rts.hh"
#include "sim/eventq.hh"

using namespace ap;
using namespace ap::obs;

// ------------------------------------------------------------------- json

TEST(Json, DottedPathsNest)
{
    JsonTree t;
    t.set("a.b.x", std::uint64_t{1});
    t.set("a.b.y", 2.5);
    t.set_string("a.name", "hi \"there\"\n");
    std::string out = t.render(false);
    std::string err;
    EXPECT_TRUE(json_valid(out, &err)) << err;
    EXPECT_NE(out.find("\"x\": 1"), std::string::npos);
    EXPECT_NE(out.find("\\\"there\\\"\\n"), std::string::npos);
}

TEST(Json, ValidatorAcceptsAndRejects)
{
    EXPECT_TRUE(json_valid("{\"a\": [1, 2.5, -3e2, true, null]}"));
    EXPECT_TRUE(json_valid("[]"));
    std::string err;
    EXPECT_FALSE(json_valid("{\"a\": }", &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(json_valid("{\"a\": 1} trailing"));
    EXPECT_FALSE(json_valid("{'a': 1}"));
    EXPECT_FALSE(json_valid(""));
}

// --------------------------------------------------------------- registry

TEST(StatsRegistry, PatternQueriesAndRemoval)
{
    StatsRegistry r;
    std::uint64_t a = 3, b = 7, other = 100;
    r.add_counter("cell0.msc.puts_sent", &a);
    r.add_counter("cell1.msc.puts_sent", &b);
    r.add_counter("cell1.mc.loads", &other);
    Histogram h;
    h.sample(4);
    r.add_histogram("cell0.msc.latency", &h);
    r.add_gauge("machine.level", [] { return std::uint64_t{9}; });

    EXPECT_EQ(r.size(), 5u);
    EXPECT_EQ(r.value("cell0.msc.puts_sent"), 3u);
    EXPECT_EQ(r.value("cell0.msc.latency"), 1u); // histogram count
    EXPECT_EQ(r.value("no.such.path"), 0u);
    EXPECT_EQ(r.sum("*.msc.puts_sent"), 10u);
    EXPECT_EQ(r.sum("*.*.puts_sent"), 10u);
    EXPECT_EQ(r.sum("*.puts_sent"), 0u); // '*' is one segment

    std::string who;
    EXPECT_EQ(r.max_over("*.msc.puts_sent", &who), 7u);
    EXPECT_EQ(who, "cell1.msc.puts_sent");

    b = 11; // entries read live values
    EXPECT_EQ(r.value("cell1.msc.puts_sent"), 11u);

    r.remove_prefix("cell1.");
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.find("cell1.msc.puts_sent"), nullptr);
    EXPECT_NE(r.find("cell0.msc.puts_sent"), nullptr);
}

TEST(StatsRegistry, SnapshotDiffReportsOnlyChange)
{
    StatsRegistry r;
    std::uint64_t puts = 3, gets = 5;
    r.add_counter("cell0.msc.puts_sent", &puts);
    r.add_counter("cell0.msc.gets_sent", &gets);

    StatsRegistry::Snapshot before = r.snapshot();
    EXPECT_EQ(before.at("cell0.msc.puts_sent"), 3u);

    puts = 10; // +7
    std::uint64_t late = 2;
    r.add_counter("cell0.msc.late", &late); // born after the snapshot

    std::map<std::string, std::int64_t> d = r.delta_since(before);
    EXPECT_EQ(d.at("cell0.msc.puts_sent"), 7);
    EXPECT_EQ(d.at("cell0.msc.gets_sent"), 0);
    EXPECT_EQ(d.at("cell0.msc.late"), 2); // counts from zero

    std::string text = StatsRegistry::delta_text(d);
    EXPECT_NE(text.find("puts_sent"), std::string::npos);
    EXPECT_NE(text.find("+7"), std::string::npos);
    // Zero rows are dropped from the table.
    EXPECT_EQ(text.find("gets_sent"), std::string::npos);
    // Largest magnitude first, and maxRows cuts with a marker.
    std::string one = StatsRegistry::delta_text(d, 1);
    EXPECT_NE(one.find("puts_sent"), std::string::npos);
    EXPECT_NE(one.find("more)"), std::string::npos);
    EXPECT_EQ(StatsRegistry::delta_text({}).find("(no change)"), 0u);
}

TEST(StatsRegistry, DumpsAreWellFormed)
{
    StatsRegistry r;
    std::uint64_t v = 42;
    r.add_counter("cell0.msc.puts_sent", &v);
    Histogram h;
    h.sample(3);
    h.sample(100);
    r.add_histogram("cell0.msc.sizes", &h);

    std::string err;
    EXPECT_TRUE(json_valid(r.dump_json(true), &err)) << err;
    EXPECT_TRUE(json_valid(r.dump_json(false), &err)) << err;
    EXPECT_NE(r.dump_json().find("\"puts_sent\""),
              std::string::npos);

    std::string text = r.dump_text();
    EXPECT_NE(text.find("cell0.msc.puts_sent"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(StatsRegistry, RuntimeRegistersAndUnregistersItsSubtree)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.memBytesPerCell = 1 << 20;
    hw::Machine m(cfg);

    bool seenWhileAlive = false;
    core::run_spmd(m, [&](core::Context &ctx) {
        {
            rt::Runtime rts(ctx);
            if (ctx.id() == 0)
                seenWhileAlive =
                    ctx.owner().stats_registry().find(
                        "cell0.rts.puts_issued") != nullptr;
            ctx.barrier();
        }
        ctx.barrier();
    });
    EXPECT_TRUE(seenWhileAlive);
    EXPECT_EQ(m.stats_registry().find("cell0.rts.puts_issued"),
              nullptr);
    EXPECT_EQ(m.stats_registry().find("cell1.rts.puts_issued"),
              nullptr);
}

// ------------------------------------------------------------ debug flags

namespace
{

/** Restore a clean mask around every debug-flag test. */
struct MaskReset
{
    ~MaskReset() { set_debug_mask(0); }
};

} // namespace

TEST(DebugFlags, ParseAppliesAndRejects)
{
    MaskReset reset;
    set_debug_mask(0);
    EXPECT_FALSE(debug_enabled(Dbg::MSC));

    EXPECT_TRUE(parse_debug_flags("MSC,dma"));
    EXPECT_TRUE(debug_enabled(Dbg::MSC));
    EXPECT_TRUE(debug_enabled(Dbg::DMA));
    EXPECT_FALSE(debug_enabled(Dbg::TNet));

    std::string err;
    EXPECT_FALSE(parse_debug_flags("TNet,bogus", &err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    // Known names before the bad one still applied.
    EXPECT_TRUE(debug_enabled(Dbg::TNet));

    set_debug_mask(0);
    EXPECT_TRUE(parse_debug_flags("All"));
    for (Dbg f : all_debug_flags())
        EXPECT_TRUE(debug_enabled(f)) << to_string(f);
}

TEST(DebugFlags, ObsArgConsumption)
{
    MaskReset reset;
    ObsOptions opt;
    EXPECT_TRUE(consume_obs_arg("--stats-out=s.json", opt));
    EXPECT_TRUE(consume_obs_arg("--trace-out=t.json", opt));
    EXPECT_EQ(opt.statsOut, "s.json");
    EXPECT_EQ(opt.traceOut, "t.json");
    EXPECT_TRUE(opt.any());

    set_debug_mask(0);
    EXPECT_TRUE(consume_obs_arg("--debug-flags=Queue", opt));
    EXPECT_TRUE(debug_enabled(Dbg::Queue));

    EXPECT_FALSE(consume_obs_arg("--cells=4", opt));
    EXPECT_FALSE(consume_obs_arg("stray", opt));
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, RingBoundsRetainedRecords)
{
    sim::Simulator s;
    Tracer tr(s, 8); // clamped to the 16-record minimum
    EXPECT_EQ(tr.capacity(), 16u);
    for (int i = 0; i < 20; ++i)
        tr.instant(0, "test", strprintf("ev%d", i));
    EXPECT_EQ(tr.size(), 16u);
    EXPECT_EQ(tr.dropped(), 4u);

    auto snap = tr.snapshot();
    ASSERT_EQ(snap.size(), 16u);
    // Oldest-first: the 4 oldest aged out.
    EXPECT_EQ(snap.front().name, "ev4");
    EXPECT_EQ(snap.back().name, "ev19");
}

TEST(Tracer, SpansCarrySimulatedTime)
{
    sim::Simulator s;
    Tracer tr(s, 64);
    s.schedule(us_to_ticks(5.0), [&] {
        tr.span(2, "test", "work", us_to_ticks(1.0));
        tr.instant(machine_track, "test", "mark");
    });
    s.run();

    auto snap = tr.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].ts, us_to_ticks(1.0));
    EXPECT_EQ(snap[0].dur, us_to_ticks(4.0));
    EXPECT_EQ(snap[0].track, 2);
    EXPECT_FALSE(snap[0].instant);
    EXPECT_TRUE(snap[1].instant);
    EXPECT_EQ(snap[1].track, machine_track);

    std::string err;
    EXPECT_TRUE(json_valid(tr.chrome_json(), &err)) << err;
}

TEST(Tracer, ChromeJsonWritesToDisk)
{
    sim::Simulator s;
    Tracer tr(s, 8);
    tr.span_at(0, "test", "a", 0, us_to_ticks(2.0));
    std::string path = testing::TempDir() + "ap_trace_rt.json";
    ASSERT_TRUE(tr.write_chrome_json(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    EXPECT_TRUE(json_valid(ss.str(), &err)) << err;
    EXPECT_NE(ss.str().find("\"traceEvents\""), std::string::npos);
    std::remove(path.c_str());
}

// ----------------------------------------------- end-to-end PUT timeline

namespace
{

/** Names of interest of the PUT pipeline, in one filtered list. */
std::vector<std::string>
pipeline_names(const std::vector<TraceRecord> &recs)
{
    static const std::vector<std::string> interest = {
        "put",      "dma_send",       "flight:PUT",
        "dma_recv", "flag_increment", "wait_flag",
    };
    std::vector<std::string> out;
    for (const TraceRecord &r : recs)
        for (const std::string &n : interest)
            if (r.name == n)
                out.push_back(r.name);
    return out;
}

} // namespace

TEST(Tracer, TwoCellPutProducesThePipelineSpansInOrder)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.memBytesPerCell = 1 << 20;
    hw::Machine m(cfg);
    m.enable_tracing();

    auto r = core::run_spmd(m, [](core::Context &ctx) {
        Addr buf = ctx.alloc(64);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0)
            ctx.put(1, buf, buf, 64, no_flag, rf);
        if (ctx.id() == 1)
            ctx.wait_flag(rf, 1);
    });
    ASSERT_FALSE(r.deadlock);
    ASSERT_NE(m.tracer(), nullptr);

    // Golden recording order of one flagged PUT: the issuing MSC+
    // finishes its gather DMA, hands the message to the T-net (the
    // flight span is stamped at injection), closes the command span,
    // then the receiving MSC+ scatters it and raises the flag, and
    // the waiting processor's span closes last.
    std::vector<std::string> expect = {
        "dma_send",       "flight:PUT", "put",
        "dma_recv",       "flag_increment", "wait_flag",
    };
    EXPECT_EQ(pipeline_names(m.tracer()->snapshot()), expect);

    std::string err;
    EXPECT_TRUE(json_valid(m.tracer()->chrome_json(), &err)) << err;
}
