/**
 * @file
 * Timeline-sampler tests: period boundary math (including tick
 * saturation), bounded-ring wrap-around, delta-vs-level series
 * correctness against hand-computed snapshots, driving a real event
 * queue in period slices, JSON schema, the CSV export round-trip,
 * the registry's skip-prefix dump, and the observer guarantee — sampling must not perturb the
 * deterministic byte-identity between the sequential and sharded
 * kernels.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/types.hh"
#include "core/program.hh"
#include "hw/config.hh"
#include "hw/machine.hh"
#include "obs/json.hh"
#include "obs/sampler.hh"
#include "obs/stats_registry.hh"
#include "sim/eventq.hh"

using namespace ap;
using namespace ap::obs;

namespace
{

/** Sum one series across all retained samples. */
std::int64_t
series_total(const TimelineSampler &tl, std::size_t idx)
{
    std::int64_t sum = 0;
    for (const TimelineSample &s : tl.samples())
        sum += s.values[idx];
    return sum;
}

} // namespace

TEST(Sampler, NextBoundaryIsStrictlyAfterNow)
{
    StatsRegistry reg;
    TimelineSampler tl(reg, 100);
    EXPECT_EQ(tl.next_boundary(0), 100u);
    EXPECT_EQ(tl.next_boundary(1), 100u);
    EXPECT_EQ(tl.next_boundary(99), 100u);
    EXPECT_EQ(tl.next_boundary(100), 200u); // strictly after
    EXPECT_EQ(tl.next_boundary(101), 200u);
    EXPECT_EQ(tl.next_boundary(1000), 1100u);
}

TEST(Sampler, NextBoundarySaturatesNearMaxTick)
{
    StatsRegistry reg;
    TimelineSampler tl(reg, 100);
    EXPECT_EQ(tl.next_boundary(max_tick), max_tick);
    EXPECT_EQ(tl.next_boundary(max_tick - 1), max_tick);

    TimelineSampler one(reg, 1);
    EXPECT_EQ(one.next_boundary(max_tick - 1), max_tick);
    EXPECT_EQ(one.next_boundary(max_tick), max_tick);
}

TEST(Sampler, RingWrapsKeepingNewestOldestFirst)
{
    StatsRegistry reg;
    std::uint64_t c = 0;
    reg.add_counter("x.count", &c);
    TimelineSampler tl(reg, 10, {{"count", "x.count", false}},
                       /*capacity=*/4);
    tl.start();
    for (Tick t = 10; t <= 70; t += 10) {
        ++c;
        tl.sample(t);
    }
    EXPECT_EQ(tl.taken(), 7u);
    EXPECT_EQ(tl.size(), 4u);
    EXPECT_EQ(tl.dropped(), 3u);
    std::vector<TimelineSample> rows = tl.samples();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows.front().tick, 40u); // oldest retained
    EXPECT_EQ(rows.back().tick, 70u);
    for (const TimelineSample &s : rows)
        EXPECT_EQ(s.values[0], 1); // one increment per period
}

TEST(Sampler, DeltaAndLevelSeriesAgainstHandComputedSnapshots)
{
    StatsRegistry reg;
    std::uint64_t a0 = 0, a1 = 0, depth = 0;
    reg.add_counter("cell0.msc.puts_sent", &a0);
    reg.add_counter("cell1.msc.puts_sent", &a1);
    reg.add_gauge("net.depth", &depth);

    TimelineSampler tl(reg, 100,
                       {{"puts", "*.msc.puts_sent", false},
                        {"depth", "net.depth", true}});
    tl.start();

    a0 = 5;
    a1 = 2;
    depth = 9;
    tl.sample(100);
    a0 = 6; // +1
    a1 = 10; // +8
    depth = 3;
    tl.sample(200);
    tl.sample(300); // nothing moved

    std::vector<TimelineSample> rows = tl.samples();
    ASSERT_EQ(rows.size(), 3u);
    // Delta series: summed change across the matching paths.
    EXPECT_EQ(rows[0].values[0], 7);
    EXPECT_EQ(rows[1].values[0], 9);
    EXPECT_EQ(rows[2].values[0], 0);
    // Level series: the absolute value at the sample instant.
    EXPECT_EQ(rows[0].values[1], 9);
    EXPECT_EQ(rows[1].values[1], 3);
    EXPECT_EQ(rows[2].values[1], 3);
}

TEST(Sampler, DrivesARealSimulatorInPeriodSlices)
{
    StatsRegistry reg;
    std::uint64_t fired = 0;
    reg.add_counter("app.fired", &fired);

    sim::Simulator sim;
    for (Tick t = 50; t <= 1000; t += 50)
        sim.schedule(t, [&]() { ++fired; });

    TimelineSampler tl(reg, 100, {{"fired", "app.fired", false}});
    tl.run(sim);

    EXPECT_TRUE(sim.empty());
    EXPECT_EQ(fired, 20u);
    // Ten 100-tick boundaries cover [0, 1000]; each saw two events.
    EXPECT_EQ(tl.taken(), 10u);
    std::vector<TimelineSample> rows = tl.samples();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].tick, (i + 1) * 100);
        EXPECT_EQ(rows[i].values[0], 2);
    }
    EXPECT_EQ(series_total(tl, 0), 20);
}

TEST(Sampler, SparseQueueStillTerminatesAndSamplesOnce)
{
    StatsRegistry reg;
    std::uint64_t fired = 0;
    reg.add_counter("app.fired", &fired);

    sim::Simulator sim;
    // One event far beyond the first boundary: run_until() does not
    // advance the clock through empty periods, so run() must step
    // boundaries forward itself instead of spinning.
    sim.schedule(100000, [&]() { ++fired; });

    TimelineSampler tl(reg, 10, {{"fired", "app.fired", false}});
    tl.run(sim);
    EXPECT_TRUE(sim.empty());
    EXPECT_EQ(fired, 1u);
    EXPECT_GE(tl.taken(), 1u);
    EXPECT_EQ(series_total(tl, 0), 1);
}

TEST(Sampler, JsonIsValidTimelineSchema)
{
    StatsRegistry reg;
    std::uint64_t c = 0;
    reg.add_counter("x.count", &c);
    TimelineSampler tl(reg, us_to_ticks(1.0),
                       {{"count", "x.count", false},
                        {"count_level", "x.count", true}});
    tl.start();
    c = 3;
    tl.sample(us_to_ticks(1.0));
    c = 8;
    tl.sample(us_to_ticks(2.0));

    std::string doc = tl.json();
    std::string err;
    EXPECT_TRUE(json_valid(doc, &err)) << err;
    EXPECT_NE(doc.find("\"kind\": \"timeline\""), std::string::npos);
    EXPECT_NE(doc.find("\"period_us\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"count\""), std::string::npos);
    EXPECT_NE(doc.find("\"t_us\": 1"), std::string::npos);
    EXPECT_TRUE(json_valid(tl.json(false), &err)) << err;
}

namespace
{

/** Split one CSV line on commas (no escaping in timeline CSV). */
std::vector<std::string>
csv_fields(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

} // namespace

TEST(Sampler, CsvRoundTripsTheRetainedSamples)
{
    StatsRegistry reg;
    std::uint64_t c = 0, depth = 0;
    reg.add_counter("x.count", &c);
    reg.add_gauge("x.depth", &depth);
    TimelineSampler tl(reg, us_to_ticks(2.0),
                       {{"count", "x.count", false},
                        {"depth", "x.depth", true}});
    tl.start();
    c = 3;
    depth = 7;
    tl.sample(us_to_ticks(2.0));
    c = 11;
    depth = 4;
    tl.sample(us_to_ticks(4.0));

    std::string doc = tl.csv();
    std::vector<std::string> lines;
    std::size_t start = 0, nl;
    while ((nl = doc.find('\n', start)) != std::string::npos) {
        lines.push_back(doc.substr(start, nl - start));
        start = nl + 1;
    }
    EXPECT_EQ(start, doc.size()) << "CSV must end in a newline";

    // Header row names every series after the time column.
    ASSERT_EQ(lines.size(), 3u);
    std::vector<std::string> head = csv_fields(lines[0]);
    ASSERT_EQ(head.size(), 3u);
    EXPECT_EQ(head[0], "t_us");
    EXPECT_EQ(head[1], "count");
    EXPECT_EQ(head[2], "depth");

    // Each data row round-trips one retained sample exactly.
    std::vector<TimelineSample> rows = tl.samples();
    ASSERT_EQ(rows.size(), lines.size() - 1);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::vector<std::string> f = csv_fields(lines[i + 1]);
        ASSERT_EQ(f.size(), rows[i].values.size() + 1);
        EXPECT_DOUBLE_EQ(std::stod(f[0]),
                         ticks_to_us(rows[i].tick));
        for (std::size_t j = 0; j < rows[i].values.size(); ++j)
            EXPECT_EQ(std::stoll(f[j + 1]), rows[i].values[j]);
    }
    // And the parsed values are the hand-computed ones.
    std::vector<std::string> r0 = csv_fields(lines[1]);
    EXPECT_EQ(r0[1], "3");
    EXPECT_EQ(r0[2], "7");
    std::vector<std::string> r1 = csv_fields(lines[2]);
    EXPECT_EQ(r1[1], "8"); // delta: 11 - 3
    EXPECT_EQ(r1[2], "4"); // level
}

TEST(Sampler, WriteCsvMatchesCsvString)
{
    StatsRegistry reg;
    std::uint64_t c = 0;
    reg.add_counter("x.count", &c);
    TimelineSampler tl(reg, us_to_ticks(1.0),
                       {{"count", "x.count", false}});
    tl.start();
    c = 5;
    tl.sample(us_to_ticks(1.0));

    std::string path =
        ::testing::TempDir() + "/ap_sampler_roundtrip.csv";
    ASSERT_TRUE(tl.write_csv(path));
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), tl.csv());
    std::remove(path.c_str());
}

TEST(Sampler, DefaultSeriesCoverTheMachineDashboard)
{
    std::vector<SeriesSpec> specs = TimelineSampler::default_series();
    ASSERT_FALSE(specs.empty());
    bool events = false, pending = false;
    for (const SeriesSpec &s : specs) {
        if (s.name == "events")
            events = true;
        if (s.name == "pending_events") {
            pending = true;
            EXPECT_TRUE(s.level);
        }
    }
    EXPECT_TRUE(events);
    EXPECT_TRUE(pending);
}

TEST(StatsRegistry, DumpSkipPrefixOmitsTheSubtree)
{
    StatsRegistry reg;
    std::uint64_t a = 1, b = 2;
    reg.add_counter("sim.shard.0.executed", &a);
    reg.add_counter("tnet.messages", &b);

    std::string full = reg.dump_json(false);
    EXPECT_NE(full.find("shard"), std::string::npos);
    EXPECT_NE(full.find("tnet"), std::string::npos);

    std::string filtered = reg.dump_json(false, "sim.");
    EXPECT_EQ(filtered.find("shard"), std::string::npos);
    EXPECT_NE(filtered.find("tnet"), std::string::npos);
    std::string err;
    EXPECT_TRUE(json_valid(filtered, &err)) << err;

    std::string text = reg.dump_text("sim.");
    EXPECT_EQ(text.find("sim.shard"), std::string::npos);
    EXPECT_NE(text.find("tnet.messages"), std::string::npos);
}

// ------------------------------------------------- observer guarantee

namespace
{

/** A small deterministic ring-PUT workload. */
void
ring_body(core::Context &ctx)
{
    int p = ctx.nprocs();
    CellId right = (ctx.id() + 1) % p;
    Addr buf = ctx.alloc(128);
    Addr flag = ctx.alloc_flag();
    for (int round = 0; round < 4; ++round) {
        ctx.poke_u32(buf, static_cast<std::uint32_t>(
                              ctx.id() * 100 + round));
        ctx.put(right, buf + 64, buf, 32, no_flag, flag);
        ctx.wait_flag(flag, static_cast<std::uint64_t>(round) + 1);
        ctx.barrier();
    }
}

/** Run the workload; @return the machine-behavior stats dump (the
 *  kernel's "sim." self-telemetry excluded) plus the finish tick. */
std::pair<std::string, Tick>
run_ring(int threads, bool deterministic, bool sampled,
         std::uint64_t *samplesTaken = nullptr)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(4);
    cfg.memBytesPerCell = 1 << 20;
    cfg.threads = threads;
    cfg.deterministic = deterministic;
    hw::Machine m(cfg);
    if (sampled)
        m.enable_timeline(/*periodUs=*/2.0);
    core::SpmdResult r = core::run_spmd(m, ring_body);
    EXPECT_FALSE(r.deadlock);
    EXPECT_TRUE(r.errors.empty());
    if (samplesTaken != nullptr)
        *samplesTaken = m.timeline()->taken();
    return {m.stats_registry().dump_json(false, "sim."),
            r.finishTick};
}

} // namespace

TEST(Sampler, ObserverDoesNotPerturbDeterministicByteIdentity)
{
    auto [plain, plainTick] = run_ring(1, false, false);

    std::uint64_t taken = 0;
    auto [sampled, sampledTick] = run_ring(1, false, true, &taken);
    EXPECT_GT(taken, 0u) << "sampler never fired";
    EXPECT_EQ(plainTick, sampledTick);
    EXPECT_EQ(plain, sampled)
        << "sampling a sequential run changed machine behavior";

    std::uint64_t dtaken = 0;
    auto [det, detTick] = run_ring(2, true, true, &dtaken);
    EXPECT_GT(dtaken, 0u);
    EXPECT_EQ(plainTick, detTick);
    EXPECT_EQ(plain, det)
        << "sampled deterministic sharded run diverged from the "
           "sequential kernel";
}
