/**
 * @file
 * SEND/RECEIVE model tests (Section 4.3): ring-buffer delivery, tag
 * matching, the buffering copy the model intrinsically pays, and
 * PUT/GET's avoidance of it.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    return cfg;
}

} // namespace

TEST(SendRecv, PingPong)
{
    hw::Machine m(small(2));
    std::vector<std::uint8_t> got(16);

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(16);
        if (ctx.id() == 0) {
            std::vector<std::uint8_t> data(16);
            std::iota(data.begin(), data.end(), std::uint8_t{1});
            ctx.poke(buf, data);
            ctx.send(1, 42, buf, 16);
            ctx.recv(1, 43, buf, 16);
        } else {
            ctx.recv(0, 42, buf, 16);
            ctx.peek(buf, got);
            ctx.send(0, 43, buf, 16);
        }
    });
    ASSERT_FALSE(r.deadlock);
    std::vector<std::uint8_t> expect(16);
    std::iota(expect.begin(), expect.end(), std::uint8_t{1});
    EXPECT_EQ(got, expect);
}

TEST(SendRecv, TagsDemultiplex)
{
    hw::Machine m(small(2));
    std::uint32_t a = 0, b = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(8);
        if (ctx.id() == 0) {
            ctx.poke_u32(buf, 111);
            ctx.send(1, 1, buf, 4);
            // SEND is non-blocking and gathers lazily: reusing buf
            // here would race the send DMA (the hazard send_flag
            // guards against), so the second message gets its own
            // buffer.
            Addr buf2 = ctx.alloc(8);
            ctx.poke_u32(buf2, 222);
            ctx.send(1, 2, buf2, 4);
        } else {
            Addr dst = ctx.alloc(8);
            // Receive in reverse tag order.
            ctx.recv(0, 2, dst, 4);
            b = ctx.peek_u32(dst);
            ctx.recv(0, 1, dst, 4);
            a = ctx.peek_u32(dst);
        }
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(a, 111u);
    EXPECT_EQ(b, 222u);
}

TEST(SendRecv, AnySourceReceivesFromWhoeverArrives)
{
    hw::Machine m(small(4));
    int total = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(8);
        if (ctx.id() != 0) {
            ctx.poke_u32(buf, static_cast<std::uint32_t>(ctx.id()));
            ctx.send(0, 5, buf, 4);
        } else {
            for (int i = 0; i < 3; ++i) {
                ctx.recv(hw::any_source, 5, buf, 4);
                total += static_cast<int>(ctx.peek_u32(buf));
            }
        }
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(total, 1 + 2 + 3);
}

TEST(SendRecv, ReceiveCopiesArePaidPutsAreNot)
{
    // The architectural point of Section 1.3: SEND/RECEIVE buffers
    // and copies; PUT writes directly to user memory.
    hw::Machine m(small(2));

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(1024);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0) {
            ctx.send(1, 9, buf, 1024);
            ctx.put(1, buf, buf, 1024, no_flag, rf);
        } else {
            ctx.recv(0, 9, buf, 1024);
            ctx.wait_flag(rf, 1);
        }
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(m.cell(1).ring().stats().copies, 1u);
    EXPECT_EQ(m.cell(1).ring().stats().deposits, 1u);
    // The PUT bypassed the ring buffer entirely.
    EXPECT_EQ(m.cell(1).msc().stats().putsReceived, 1u);
}

TEST(SendRecv, ManySmallMessagesOverflowRingGracefully)
{
    hw::MachineConfig cfg = small(2);
    cfg.ringBufferBytes = 256; // tiny: force growth interrupts
    hw::Machine m(cfg);

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(64);
        if (ctx.id() == 0) {
            for (int i = 0; i < 32; ++i)
                ctx.send(1, i, buf, 64);
        } else {
            ctx.compute_us(5000); // let them pile up
            for (int i = 0; i < 32; ++i)
                ctx.recv(0, i, buf, 64);
        }
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_GT(m.cell(1).ring().stats().growInterrupts, 0u);
}

TEST(SendRecv, TraceRecordsSendAndRecv)
{
    hw::Machine m(small(2));
    Trace trace;
    auto r = run_spmd(
        m,
        [&](Context &ctx) {
            Addr buf = ctx.alloc(8);
            if (ctx.id() == 0)
                ctx.send(1, 3, buf, 8);
            else
                ctx.recv(0, 3, buf, 8);
        },
        &trace);
    ASSERT_FALSE(r.deadlock);
    ASSERT_EQ(trace.timeline(0).size(), 1u);
    EXPECT_EQ(trace.timeline(0)[0].op, TraceOp::send);
    EXPECT_EQ(trace.timeline(0)[0].peer, 1);
    EXPECT_EQ(trace.timeline(0)[0].bytes, 8u);
    ASSERT_EQ(trace.timeline(1).size(), 1u);
    EXPECT_EQ(trace.timeline(1)[0].op, TraceOp::recv);
}
