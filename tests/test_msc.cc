/**
 * @file
 * MSC+ behaviour tests: queue priorities, autonomous GET replies,
 * send-flag protection of reused buffers, in-order acknowledgement
 * semantics, and the statistics counters.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "base/logging.hh"
#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    return cfg;
}

} // namespace

TEST(Msc, SendFlagProtectsBufferReuse)
{
    // The Section 3.1 discipline: wait for send_flag before reusing
    // a send buffer; both receivers then see the right values.
    hw::Machine m(small(3));
    std::uint32_t got1 = 0, got2 = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(8);
        Addr sf = ctx.alloc_flag();
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0) {
            ctx.poke_u32(buf, 111);
            ctx.put(1, buf, buf, 4, sf, rf);
            ctx.wait_flag(sf, 1); // gather finished: safe to reuse
            ctx.poke_u32(buf, 222);
            ctx.put(2, buf, buf, 4, sf, rf);
            ctx.wait_flag(sf, 2);
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 1);
            got1 = ctx.peek_u32(buf);
        }
        if (ctx.id() == 2) {
            ctx.wait_flag(rf, 1);
            got2 = ctx.peek_u32(buf);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(got1, 111u);
    EXPECT_EQ(got2, 222u);
}

TEST(Msc, GetRepliesAreAutonomous)
{
    // The data owner's processor is busy computing the whole time;
    // the MSC+ must answer GETs without it.
    hw::Machine m(small(2));
    double got = 0;
    Tick reply_arrived = 0, owner_woke = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr v = ctx.alloc(8);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 1)
            ctx.poke_f64(v, 9.75);
        ctx.barrier();
        if (ctx.id() == 1) {
            ctx.compute_us(100000.0); // long uninterrupted compute
            owner_woke = ctx.now();
        }
        if (ctx.id() == 0) {
            Addr dst = ctx.alloc(8);
            ctx.get(1, v, dst, 8, no_flag, rf);
            ctx.wait_flag(rf, 1);
            got = ctx.peek_f64(dst);
            reply_arrived = ctx.now();
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_DOUBLE_EQ(got, 9.75);
    EXPECT_LT(reply_arrived, owner_woke);
    EXPECT_EQ(m.cell(1).msc().stats().getRequestsReceived, 1u);
    EXPECT_EQ(m.cell(1).msc().stats().getRepliesSent, 1u);
}

TEST(Msc, AckImpliesEarlierPutLanded)
{
    // The in-order property under load: after a burst of PUTs to the
    // same destination, a single ack probe proves all of them landed.
    hw::Machine m(small(2));
    int bad = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        constexpr int burst = 30;
        Addr base = ctx.alloc(burst * 8);
        ctx.barrier();
        if (ctx.id() == 0) {
            for (int i = 0; i < burst; ++i) {
                Addr a = base + static_cast<Addr>(i) * 8;
                ctx.poke_f64(a, i + 0.5);
                ctx.put(1, a, a, 8, no_flag, no_flag);
            }
            ctx.ack_probe(1);
            ctx.wait_all_acks();
            // Everything must be visible remotely now: read it back.
            Addr check = ctx.alloc(burst * 8);
            ctx.read_remote(1, base, check,
                            static_cast<std::uint32_t>(burst * 8));
            for (int i = 0; i < burst; ++i)
                if (ctx.peek_f64(check + static_cast<Addr>(i) * 8) !=
                    i + 0.5)
                    ++bad;
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(bad, 0);
    // One probe acknowledged the whole burst.
    EXPECT_EQ(m.cell(0).msc().stats().acksReceived, 1u);
}

TEST(Msc, StatsCountersAreConsistent)
{
    hw::Machine m(small(2));
    run_spmd(m, [](Context &ctx) {
        Addr buf = ctx.alloc(512);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0) {
            for (int i = 0; i < 5; ++i)
                ctx.put(1, buf, buf, 256, no_flag, rf);
            ctx.get(1, buf, buf, 128, no_flag, rf);
            ctx.send(1, 7, buf, 64);
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 6);
            ctx.recv(0, 7, buf, 64);
        }
        ctx.barrier();
    });
    const auto &s0 = m.cell(0).msc().stats();
    const auto &s1 = m.cell(1).msc().stats();
    EXPECT_EQ(s0.putsSent, 5u);
    EXPECT_EQ(s0.getsSent, 1u);
    EXPECT_EQ(s0.sendsSent, 1u);
    EXPECT_EQ(s1.putsReceived, 5u);
    EXPECT_EQ(s1.sendsReceived, 1u);
    EXPECT_EQ(s1.getRequestsReceived, 1u);
    EXPECT_EQ(s0.getRepliesReceived, 1u);
    EXPECT_EQ(s0.payloadBytesSent, 5u * 256 + 64);
    EXPECT_EQ(s1.payloadBytesSent, 128u); // the GET reply
}

TEST(Msc, ManyGetsServedInOrderFromReplyQueue)
{
    // A GET storm at one owner: the reply queue must serve all of
    // them, spilling to DRAM if needed, with correct data.
    hw::Machine m(small(4));
    int bad = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        constexpr int gets = 40;
        Addr v = ctx.alloc(8);
        Addr dst = ctx.alloc(gets * 8);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0)
            ctx.poke_f64(v, 3.5);
        ctx.barrier();
        if (ctx.id() != 0) {
            for (int i = 0; i < gets; ++i)
                ctx.get(0, v, dst + static_cast<Addr>(i) * 8, 8,
                        no_flag, rf);
            ctx.wait_flag(rf, gets);
            for (int i = 0; i < gets; ++i)
                if (ctx.peek_f64(dst + static_cast<Addr>(i) * 8) !=
                    3.5)
                    ++bad;
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(bad, 0);
    EXPECT_EQ(m.cell(0).msc().stats().getRepliesSent, 120u);
}

TEST(Msc, ForcedOverflowPlanSpillsRefillsAndStaysCorrect)
{
    // Every queue push under FaultPlan::overflows(p=1) takes the
    // Section 4.1 DRAM-spill + refill-interrupt path; the burst must
    // still land byte-exact and in order.
    hw::MachineConfig cfg = small(2);
    cfg.faults = sim::FaultPlan::overflows(11, 1.0);
    hw::Machine m(cfg);
    int bad = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        constexpr int burst = 30;
        Addr base = ctx.alloc(burst * 8);
        ctx.barrier();
        if (ctx.id() == 0) {
            for (int i = 0; i < burst; ++i) {
                Addr a = base + static_cast<Addr>(i) * 8;
                ctx.poke_f64(a, i + 0.25);
                ctx.put(1, a, a, 8, no_flag, no_flag);
            }
            ctx.ack_probe(1);
            ctx.wait_all_acks();
            Addr check = ctx.alloc(burst * 8);
            ctx.read_remote(1, base, check,
                            static_cast<std::uint32_t>(burst * 8));
            for (int i = 0; i < burst; ++i)
                if (ctx.peek_f64(check + static_cast<Addr>(i) * 8) !=
                    i + 0.25)
                    ++bad;
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(bad, 0);
    EXPECT_GT(m.faults().stats().forcedSpills, 0u);
    std::uint64_t spills = 0, refills = 0;
    for (int i = 0; i < 2; ++i) {
        const auto &q = m.cell(i).msc().user_queue().stats();
        spills += q.spills;
        refills += q.refillInterrupts;
    }
    EXPECT_GT(spills, 0u);
    EXPECT_GT(refills, 0u);
}

TEST(Msc, LocalFaultDropsCommandAndContinues)
{
    // A PUT whose *local* gather faults is dropped after the OS
    // services the fault; later commands still flow.
    hw::Machine m(small(2));
    int faults = 0;
    m.set_fault_hook([&](CellId, Addr, bool remote) {
        if (!remote)
            ++faults;
    });
    std::uint32_t final_flag = 0;

    set_quiet(true);
    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(64);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0) {
            ctx.cell().mc().mmu().unmap(0x80000);
            ctx.put(1, buf, 0x80000, 64, no_flag, rf); // faults
            ctx.put(1, buf, buf, 64, no_flag, rf);     // succeeds
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 1);
            final_flag = ctx.flag(rf);
        }
        ctx.barrier();
    });
    set_quiet(false);
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(faults, 1);
    EXPECT_EQ(final_flag, 1u);
    EXPECT_EQ(m.cell(0).msc().stats().localFaults, 1u);
}
