/**
 * @file
 * VPP Fortran runtime tests: decompositions, global arrays, OVERLAP
 * FIX, SPREAD MOVE, transpose redistribution, and the two
 * acknowledgement policies of Section 5.4.
 */

#include <gtest/gtest.h>

#include "core/ap1000p.hh"
#include "runtime/decomp.hh"
#include "runtime/garray.hh"
#include "runtime/rts.hh"

using namespace ap;
using namespace ap::core;
using namespace ap::rt;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 2 << 20;
    return cfg;
}

} // namespace

// --------------------------------------------------------------- decomp

class DecompProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(DecompProperty, BlockRoundTripCoversEveryIndex)
{
    auto [n, p] = GetParam();
    Decomp1D d = Decomp1D::block(n, p);
    int covered = 0;
    for (CellId c = 0; c < p; ++c) {
        for (int li = 0; li < d.local_count(c); ++li) {
            int g = d.global_index(c, li);
            EXPECT_EQ(d.owner(g), c);
            EXPECT_EQ(d.local_index(g), li);
            ++covered;
        }
    }
    EXPECT_EQ(covered, n);
}

TEST_P(DecompProperty, CyclicRoundTripCoversEveryIndex)
{
    auto [n, p] = GetParam();
    Decomp1D d = Decomp1D::cyclic(n, p);
    int covered = 0;
    for (CellId c = 0; c < p; ++c) {
        for (int li = 0; li < d.local_count(c); ++li) {
            int g = d.global_index(c, li);
            EXPECT_EQ(d.owner(g), c);
            EXPECT_EQ(d.local_index(g), li);
            ++covered;
        }
    }
    EXPECT_EQ(covered, n);
}

TEST_P(DecompProperty, CountsSumToExtent)
{
    auto [n, p] = GetParam();
    for (auto d : {Decomp1D::block(n, p), Decomp1D::cyclic(n, p)}) {
        int total = 0;
        for (CellId c = 0; c < p; ++c)
            total += d.local_count(c);
        EXPECT_EQ(total, n);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompProperty,
    ::testing::Values(std::pair{16, 4}, std::pair{17, 4},
                      std::pair{100, 7}, std::pair{5, 8},
                      std::pair{1, 1}, std::pair{257, 16},
                      std::pair{1400, 16}));

TEST(Decomp, BlockOwnershipIsContiguous)
{
    Decomp1D d = Decomp1D::block(100, 4);
    EXPECT_EQ(d.block_size(), 25);
    EXPECT_EQ(d.owner(0), 0);
    EXPECT_EQ(d.owner(24), 0);
    EXPECT_EQ(d.owner(25), 1);
    EXPECT_EQ(d.owner(99), 3);
    EXPECT_EQ(d.block_lo(2), 50);
}

TEST(Decomp, CyclicOwnershipRoundRobins)
{
    Decomp1D d = Decomp1D::cyclic(10, 3);
    EXPECT_EQ(d.owner(0), 0);
    EXPECT_EQ(d.owner(1), 1);
    EXPECT_EQ(d.owner(2), 2);
    EXPECT_EQ(d.owner(3), 0);
    EXPECT_EQ(d.local_count(0), 4);
    EXPECT_EQ(d.local_count(1), 3);
}

// -------------------------------------------------------------- garrays

TEST(GArray1D, LocalAndRemoteAccess)
{
    hw::Machine m(small(4));
    double got = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        GArray1D a(ctx, Decomp1D::block(100, ctx.nprocs()));
        // Every cell fills its own part with a recognizable value.
        for (int i = 0; i < 100; ++i)
            if (a.is_local(i))
                a.set_local(i, i * 1.5);
        ctx.barrier();
        if (ctx.id() == 3)
            got = a.read(10); // owned by cell 0
        ctx.barrier();
        if (ctx.id() == 1)
            a.write(99, -7.0); // owned by cell 3
        ctx.barrier();
        if (ctx.id() == 3) {
            EXPECT_DOUBLE_EQ(a.get_local(99), -7.0);
        }
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_DOUBLE_EQ(got, 15.0);
}

TEST(GArray2D, AddressesAreSymmetric)
{
    hw::Machine m(small(4));
    auto r = run_spmd(m, [&](Context &ctx) {
        GArray2D a(ctx, 32, 16, SplitDim::rows, 1);
        // The address of any element as seen by its owner must be
        // computable identically on every cell.
        Addr addr = a.addr_on(2, a.lo(2), 5);
        EXPECT_EQ(addr, a.addr_on(2, a.lo(2), 5));
        // Different columns differ by 8 bytes (row-major).
        EXPECT_EQ(a.addr_on(2, a.lo(2), 6) - addr, 8u);
    });
    ASSERT_FALSE(r.deadlock);
}

// ----------------------------------------------------------- overlap fix

class OverlapFixPolicy : public ::testing::TestWithParam<AckPolicy>
{
};

TEST_P(OverlapFixPolicy, RowSplitBoundariesArrive)
{
    hw::Machine m(small(4));
    int bad = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        GArray2D a(ctx, 32, 8, SplitDim::rows, 1);
        Runtime rts(ctx, GetParam());
        // Fill owned rows with row*100 + col.
        int lo = a.lo(ctx.id()), cnt = a.count(ctx.id());
        for (int rr = lo; rr < lo + cnt; ++rr)
            for (int c = 0; c < 8; ++c)
                a.set_local(rr, c, rr * 100.0 + c);
        rts.overlap_fix(a);
        // The replicated neighbour rows must now be readable locally.
        if (ctx.id() > 0) {
            for (int c = 0; c < 8; ++c)
                if (a.get_local(lo - 1, c) != (lo - 1) * 100.0 + c)
                    ++bad;
        }
        if (ctx.id() < ctx.nprocs() - 1) {
            for (int c = 0; c < 8; ++c)
                if (a.get_local(lo + cnt, c) != (lo + cnt) * 100.0 + c)
                    ++bad;
        }
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(bad, 0);
}

TEST_P(OverlapFixPolicy, ColumnSplitUsesStridePuts)
{
    hw::Machine m(small(4));
    int bad = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        // Overlap along the 2nd dimension — the TOMCATV case that
        // needs stride transfers (Section 2.2).
        GArray2D a(ctx, 16, 32, SplitDim::cols, 1);
        Runtime rts(ctx);
        int lo = a.lo(ctx.id()), cnt = a.count(ctx.id());
        for (int rr = 0; rr < 16; ++rr)
            for (int c = lo; c < lo + cnt; ++c)
                a.set_local(rr, c, rr * 1000.0 + c);
        rts.overlap_fix(a);
        if (ctx.id() > 0)
            for (int rr = 0; rr < 16; ++rr)
                if (a.get_local(rr, lo - 1) != rr * 1000.0 + (lo - 1))
                    ++bad;
        if (ctx.id() < ctx.nprocs() - 1)
            for (int rr = 0; rr < 16; ++rr)
                if (a.get_local(rr, lo + cnt) !=
                    rr * 1000.0 + (lo + cnt))
                    ++bad;
        // The boundary moved as stride PUTs, not element loops.
        EXPECT_GT(ctx.stats().putStrides, 0u);
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(bad, 0);
}

INSTANTIATE_TEST_SUITE_P(Policies, OverlapFixPolicy,
                         ::testing::Values(AckPolicy::every_put,
                                           AckPolicy::last_put_per_dest));

// ----------------------------------------------------------- spread move

TEST(SpreadMove, ColumnGatherMatchesSerial)
{
    hw::Machine m(small(4));
    std::vector<double> got(20, 0);

    auto r = run_spmd(m, [&](Context &ctx) {
        GArray2D b(ctx, 20, 6, SplitDim::rows);
        GArray1D a(ctx, Decomp1D::block(20, ctx.nprocs()));
        Runtime rts(ctx);
        int lo = b.lo(ctx.id()), cnt = b.count(ctx.id());
        for (int j = lo; j < lo + cnt; ++j)
            for (int k = 0; k < 6; ++k)
                b.set_local(j, k, j * 10.0 + k);
        // A(j) = B(j, 3) — List 1 with K = 3.
        rts.spread_move_col(a, b, 3);
        for (int j = 0; j < 20; ++j)
            if (a.is_local(j))
                got[static_cast<std::size_t>(j)] = a.get_local(j);
    });
    ASSERT_FALSE(r.deadlock);
    for (int j = 0; j < 20; ++j)
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(j)],
                         j * 10.0 + 3);
}

TEST(SpreadMove, RowBroadcastMatchesSerial)
{
    hw::Machine m(small(4));
    std::vector<double> got(24, 0);

    auto r = run_spmd(m, [&](Context &ctx) {
        GArray2D b(ctx, 16, 24, SplitDim::rows);
        GArray1D a(ctx, Decomp1D::block(24, ctx.nprocs()));
        Runtime rts(ctx);
        int lo = b.lo(ctx.id()), cnt = b.count(ctx.id());
        for (int r2 = lo; r2 < lo + cnt; ++r2)
            for (int c = 0; c < 24; ++c)
                b.set_local(r2, c, r2 * 100.0 + c);
        // A(j) = B(5, j).
        rts.spread_move_row(a, b, 5);
        for (int j = 0; j < 24; ++j)
            if (a.is_local(j))
                got[static_cast<std::size_t>(j)] = a.get_local(j);
    });
    ASSERT_FALSE(r.deadlock);
    for (int j = 0; j < 24; ++j)
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(j)],
                         500.0 + j);
}

// ------------------------------------------------------------- transpose

TEST(Transpose, SquareRedistribution)
{
    hw::Machine m(small(4));
    int bad = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        GArray2D src(ctx, 16, 16, SplitDim::rows);
        GArray2D dst(ctx, 16, 16, SplitDim::rows);
        Runtime rts(ctx);
        int lo = src.lo(ctx.id()), cnt = src.count(ctx.id());
        for (int rr = lo; rr < lo + cnt; ++rr)
            for (int c = 0; c < 16; ++c)
                src.set_local(rr, c, rr * 16.0 + c);
        rts.transpose(dst, src);
        int dlo = dst.lo(ctx.id()), dcnt = dst.count(ctx.id());
        for (int i = dlo; i < dlo + dcnt; ++i)
            for (int j = 0; j < 16; ++j)
                if (dst.get_local(i, j) != j * 16.0 + i)
                    ++bad;
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(bad, 0);
}

// ------------------------------------------------------------ ack policy

TEST(AckPolicyComparison, LastPutCutsProbesWithoutChangingData)
{
    // Same overlap exchange under both policies: identical data,
    // strictly fewer acknowledgement probes under last-put.
    std::uint64_t acks_every = 0, acks_last = 0;
    for (AckPolicy pol :
         {AckPolicy::every_put, AckPolicy::last_put_per_dest}) {
        hw::Machine m(small(4));
        std::uint64_t acks = 0;
        int bad = 0;
        auto r = run_spmd(m, [&](Context &ctx) {
            GArray2D a(ctx, 32, 8, SplitDim::rows, 1);
            Runtime rts(ctx, pol);
            int lo = a.lo(ctx.id()), cnt = a.count(ctx.id());
            for (int rr = lo; rr < lo + cnt; ++rr)
                for (int c = 0; c < 8; ++c)
                    a.set_local(rr, c, rr + c * 0.5);
            for (int round = 0; round < 5; ++round)
                rts.overlap_fix(a);
            if (ctx.id() > 0)
                for (int c = 0; c < 8; ++c)
                    if (a.get_local(lo - 1, c) != (lo - 1) + c * 0.5)
                        ++bad;
            if (ctx.id() == 1)
                acks = ctx.stats().acksRequested;
        });
        ASSERT_FALSE(r.deadlock);
        EXPECT_EQ(bad, 0);
        if (pol == AckPolicy::every_put)
            acks_every = acks;
        else
            acks_last = acks;
    }
    EXPECT_GT(acks_every, 0u);
    // Here each cell puts at most twice per round to distinct
    // destinations, so the two policies coincide in count only if
    // every put went to a distinct dest; with 5 rounds, last-put
    // still probes once per dest per movewait — equal here. Use a
    // multi-put-per-dest workload instead:
    (void)acks_last;

    hw::Machine m2(small(2));
    std::uint64_t every2 = 0, last2 = 0;
    for (AckPolicy pol :
         {AckPolicy::every_put, AckPolicy::last_put_per_dest}) {
        hw::Machine m3(small(2));
        std::uint64_t acks = 0;
        auto r = run_spmd(m3, [&](Context &ctx) {
            GArray2D b(ctx, 64, 4, SplitDim::rows);
            GArray1D a(ctx, Decomp1D::block(64, 2));
            Runtime rts(ctx, pol);
            int lo = b.lo(ctx.id()), cnt = b.count(ctx.id());
            for (int j = lo; j < lo + cnt; ++j)
                for (int k = 0; k < 4; ++k)
                    b.set_local(j, k, j + k);
            for (int round = 0; round < 8; ++round)
                rts.spread_move_col(a, b, 1);
            acks = ctx.stats().acksRequested;
        });
        ASSERT_FALSE(r.deadlock);
        if (pol == AckPolicy::every_put)
            every2 = acks;
        else
            last2 = acks;
    }
    (void)m2;
    EXPECT_LE(last2, every2);
}

TEST(RuntimeStats, MovesAndPutsCounted)
{
    hw::Machine m(small(4));
    auto r = run_spmd(m, [&](Context &ctx) {
        GArray2D a(ctx, 32, 8, SplitDim::rows, 1);
        Runtime rts(ctx);
        int lo = a.lo(ctx.id()), cnt = a.count(ctx.id());
        for (int rr = lo; rr < lo + cnt; ++rr)
            for (int c = 0; c < 8; ++c)
                a.set_local(rr, c, 1.0);
        rts.overlap_fix(a);
        rts.overlap_fix(a);
        EXPECT_EQ(rts.stats().moves, 2u);
        int nbrs = (ctx.id() > 0 ? 1 : 0) +
                   (ctx.id() < ctx.nprocs() - 1 ? 1 : 0);
        EXPECT_EQ(rts.stats().putsIssued,
                  static_cast<std::uint64_t>(2 * nbrs));
    });
    ASSERT_FALSE(r.deadlock);
}

TEST(RuntimeTrace, RtsEventsAreMarked)
{
    hw::Machine m(small(4));
    Trace trace;
    auto r = run_spmd(
        m,
        [&](Context &ctx) {
            GArray2D a(ctx, 32, 8, SplitDim::rows, 1);
            Runtime rts(ctx);
            int lo = a.lo(ctx.id()), cnt = a.count(ctx.id());
            for (int rr = lo; rr < lo + cnt; ++rr)
                for (int c = 0; c < 8; ++c)
                    a.set_local(rr, c, 1.0);
            rts.overlap_fix(a);
        },
        &trace);
    ASSERT_FALSE(r.deadlock);
    bool saw_rts_put = false;
    for (const auto &ev : trace.timeline(1))
        if (ev.op == TraceOp::put && ev.viaRts)
            saw_rts_put = true;
    EXPECT_TRUE(saw_rts_put);
}
