/**
 * @file
 * Distributed shared memory tests (Section 4.2): the address map,
 * hardware remote load/store, automatic store acknowledgements, and
 * remote stores into communication registers.
 */

#include <gtest/gtest.h>

#include "core/ap1000p.hh"
#include "hw/dsm.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    return cfg;
}

} // namespace

TEST(DsmMap, EncodeDecodeRoundTrip)
{
    hw::DsmMap map(64, 32 << 20);
    for (CellId c : {0, 1, 17, 63}) {
        for (Addr off : {Addr{0}, Addr{12345}, Addr{(32 << 20) - 1}}) {
            Addr global = map.encode(c, off);
            auto t = map.decode(global);
            ASSERT_TRUE(t.has_value());
            EXPECT_EQ(t->cell, c);
            EXPECT_EQ(t->localAddr, off);
        }
    }
}

TEST(DsmMap, LocalSpaceIsNotShared)
{
    hw::DsmMap map(4, 1 << 20);
    EXPECT_FALSE(map.decode(0).has_value());
    EXPECT_FALSE(map.decode(hw::DsmMap::shared_base - 1).has_value());
    EXPECT_TRUE(map.decode(hw::DsmMap::shared_base).has_value());
}

TEST(DsmMap, BeyondLastBlockIsInvalid)
{
    hw::DsmMap map(4, 1 << 20);
    Addr past = hw::DsmMap::shared_base + 4ull * (1 << 20);
    EXPECT_FALSE(map.decode(past).has_value());
}

TEST(DsmMap, PaperConfiguration)
{
    // "if the system consists of 1024 cells, and the local memory
    // size is 64 megabytes, the block size becomes 32 megabytes".
    hw::DsmMap map(1024, 32 << 20);
    EXPECT_EQ(map.block_size(), Addr{32} << 20);
    EXPECT_EQ(map.block_base(0), hw::DsmMap::shared_base);
    EXPECT_EQ(map.block_base(1),
              hw::DsmMap::shared_base + (Addr{32} << 20));
}

TEST(Dsm, RemoteStoreThenLoadRoundTrip)
{
    hw::Machine m(small(4));
    std::uint32_t got = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr slot = ctx.alloc(8);
        ctx.barrier();
        if (ctx.id() == 0) {
            ctx.remote_store_u32(2, slot, 0xfeedface);
            ctx.wait_all_acks(); // remote stores auto-ack
        }
        ctx.barrier();
        if (ctx.id() == 1)
            got = ctx.remote_load_u32(2, slot);
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(got, 0xfeedfaceu);
}

TEST(Dsm, RemoteLoadIsBlocking)
{
    hw::Machine m(small(2));
    Tick issue = 0, done = 0;

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr slot = ctx.alloc(8);
        if (ctx.id() == 1)
            ctx.poke_u32(slot, 7);
        ctx.barrier();
        if (ctx.id() == 0) {
            issue = ctx.now();
            (void)ctx.remote_load_u32(1, slot);
            done = ctx.now();
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    // At minimum one network round trip passed while blocked.
    Tick rtt = 2 * m.tnet().latency(0, 1, net::Message::header_bytes);
    EXPECT_GE(done - issue, rtt);
}

TEST(Dsm, RemoteLoad64)
{
    hw::Machine m(small(2));
    std::uint64_t got = 0;
    auto r = run_spmd(m, [&](Context &ctx) {
        Addr slot = ctx.alloc(8);
        if (ctx.id() == 1)
            ctx.poke_f64(slot, 1.5);
        ctx.barrier();
        if (ctx.id() == 0)
            got = ctx.remote_load_u64(1, slot);
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    double d;
    std::memcpy(&d, &got, 8);
    EXPECT_DOUBLE_EQ(d, 1.5);
}

TEST(Dsm, StoresToCommRegSpaceLandInRegisters)
{
    hw::Machine m(small(2));
    std::uint32_t reg_value = 0;
    bool present_before_load = false;

    auto r = run_spmd(m, [&](Context &ctx) {
        if (ctx.id() == 0) {
            ctx.remote_store_u32(1, hw::Mc::commreg_base + 5 * 4,
                                 31337);
            ctx.wait_all_acks();
        }
        ctx.barrier();
        if (ctx.id() == 1) {
            present_before_load = ctx.cell().mc().regs().present(5);
            reg_value =
                ctx.cell().mc().regs().load(5, ctx.process());
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_TRUE(present_before_load);
    EXPECT_EQ(reg_value, 31337u);
}

TEST(Dsm, RemoteLoadPriorityOverUserPuts)
{
    // Remote access uses a privileged queue: a blocked processor's
    // load must not sit behind a burst of user PUTs.
    hw::Machine m(small(2));

    auto r = run_spmd(m, [&](Context &ctx) {
        Addr buf = ctx.alloc(4096);
        Addr slot = ctx.alloc(8);
        if (ctx.id() == 1)
            ctx.poke_u32(slot, 1);
        ctx.barrier();
        if (ctx.id() == 0) {
            for (int i = 0; i < 20; ++i)
                ctx.put(1, buf, buf, 4096, no_flag, no_flag);
            std::uint32_t v = ctx.remote_load_u32(1, slot);
            EXPECT_EQ(v, 1u);
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(m.cell(0).msc().stats().remoteLoads, 0u);
    EXPECT_EQ(m.cell(1).msc().stats().remoteLoads, 1u);
}
