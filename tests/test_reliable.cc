/**
 * @file
 * Reliable-delivery layer tests: sequencing, cumulative acks,
 * go-back-N retransmission, duplicate suppression, out-of-order
 * reassembly, checksum rejection, window/backlog discipline,
 * standalone acks, dead-cell channel flush, and the bounded holding
 * buffers of the fault injector feeding it.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/reliable.hh"
#include "net/tnet.hh"
#include "sim/eventq.hh"
#include "sim/fault.hh"

using namespace ap;
using namespace ap::net;

namespace
{

Message
mk(CellId src, CellId dst, std::uint32_t marker,
   std::size_t bytes = 32)
{
    Message m;
    m.kind = MsgKind::put_data;
    m.src = src;
    m.dst = dst;
    m.payload.assign(bytes, 0);
    std::memcpy(m.payload.data(), &marker, 4);
    return m;
}

std::uint32_t
marker_of(const Message &m)
{
    std::uint32_t v = 0;
    std::memcpy(&v, m.payload.data(), 4);
    return v;
}

/** A 4-cell line with an optional fault plan under the rnet. */
struct Rig
{
    sim::Simulator sim;
    sim::FaultInjector inj;
    Tnet tnet;
    ReliableNet rnet;
    std::vector<std::vector<std::uint32_t>> delivered;

    explicit Rig(sim::FaultPlan plan = {},
                 ReliableParams params = {})
        : inj(plan), tnet(sim, Torus(4, 1), TnetParams{}),
          rnet(sim, tnet, params), delivered(4)
    {
        inj.set_cells(4);
        if (plan.any())
            tnet.set_fault_injector(&inj);
        for (CellId c = 0; c < 4; ++c)
            rnet.attach(c, [this, c](Message m) {
                delivered[static_cast<std::size_t>(c)].push_back(
                    marker_of(m));
            });
    }
};

} // namespace

TEST(Reliable, SequencesAndDeliversInOrderOnCleanWire)
{
    Rig r;
    for (std::uint32_t i = 0; i < 8; ++i)
        r.rnet.send(mk(0, 1, 100 + i));
    r.sim.run();

    ASSERT_EQ(r.delivered[1].size(), 8u);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(r.delivered[1][i], 100 + i);
    EXPECT_EQ(r.rnet.stats(0).dataSent, 8u);
    EXPECT_EQ(r.rnet.stats(0).retransmits, 0u);
    EXPECT_EQ(r.rnet.stats(1).dupDrops, 0u);
}

TEST(Reliable, ReliableEnvelopeCostsWireBytes)
{
    Message plain = mk(0, 1, 1);
    Message tagged = mk(0, 1, 1);
    tagged.reliable = true;
    EXPECT_EQ(tagged.wire_bytes(),
              plain.wire_bytes() + Message::reliable_header_bytes);
}

TEST(Reliable, RetransmitRecoversDroppedMessages)
{
    Rig r(sim::FaultPlan::drops(3, 0.3));
    for (std::uint32_t i = 0; i < 20; ++i)
        r.rnet.send(mk(0, 1, i));
    r.sim.run();

    ASSERT_EQ(r.delivered[1].size(), 20u);
    for (std::uint32_t i = 0; i < 20; ++i)
        EXPECT_EQ(r.delivered[1][i], i);
    EXPECT_GT(r.inj.stats().drops, 0u) << "plan dropped nothing";
    EXPECT_GT(r.rnet.stats(0).retransmits, 0u);
}

TEST(Reliable, DuplicatesAreSuppressed)
{
    Rig r(sim::FaultPlan::duplicates(5, 0.5));
    for (std::uint32_t i = 0; i < 20; ++i)
        r.rnet.send(mk(0, 1, i));
    r.sim.run();

    ASSERT_EQ(r.delivered[1].size(), 20u);
    for (std::uint32_t i = 0; i < 20; ++i)
        EXPECT_EQ(r.delivered[1][i], i);
    EXPECT_GT(r.inj.stats().duplicates, 0u);
    EXPECT_GT(r.rnet.stats(1).dupDrops, 0u);
}

TEST(Reliable, OutOfOrderArrivalsAreReassembled)
{
    Rig r(sim::FaultPlan::reorders(7, 0.5));
    for (std::uint32_t i = 0; i < 20; ++i)
        r.rnet.send(mk(0, 1, i));
    r.sim.run();

    ASSERT_EQ(r.delivered[1].size(), 20u);
    for (std::uint32_t i = 0; i < 20; ++i)
        EXPECT_EQ(r.delivered[1][i], i);
    EXPECT_GT(r.inj.stats().reorders, 0u);
    EXPECT_GT(r.rnet.stats(1).oooBuffered, 0u);
}

TEST(Reliable, CorruptedPayloadsAreRejectedAndRecovered)
{
    Rig r(sim::FaultPlan::corrupts(9, 0.3));
    for (std::uint32_t i = 0; i < 20; ++i)
        r.rnet.send(mk(0, 1, i));
    r.sim.run();

    // Every message arrives exactly once, in order, with the original
    // bytes: corrupted copies fail the checksum, are dropped without
    // an ack, and the retransmit timer resends the pristine copy.
    ASSERT_EQ(r.delivered[1].size(), 20u);
    for (std::uint32_t i = 0; i < 20; ++i)
        EXPECT_EQ(r.delivered[1][i], i);
    EXPECT_GT(r.inj.stats().corruptions, 0u);
    EXPECT_GT(r.rnet.stats(1).checksumDrops, 0u);
    EXPECT_GT(r.rnet.stats(0).retransmits, 0u);
}

TEST(Reliable, WindowParksExcessSendsInBacklog)
{
    ReliableParams params;
    params.windowSize = 2;
    Rig r({}, params);
    for (std::uint32_t i = 0; i < 12; ++i)
        r.rnet.send(mk(0, 1, i));
    r.sim.run();

    ASSERT_EQ(r.delivered[1].size(), 12u);
    for (std::uint32_t i = 0; i < 12; ++i)
        EXPECT_EQ(r.delivered[1][i], i);
    EXPECT_GT(r.rnet.stats(0).queuedFull, 0u);
    EXPECT_LE(r.rnet.stats(0).windowHighWater, 2u);
}

TEST(Reliable, OneWayTrafficAcksViaStandaloneMessages)
{
    Rig r;
    for (std::uint32_t i = 0; i < 6; ++i)
        r.rnet.send(mk(0, 1, i));
    r.sim.run();

    // No reverse data ever flows 1 -> 0, so the delayed-ack timer
    // must emit standalone RNET_ACKs; without them the sender's
    // window never drains and retransmits forever.
    EXPECT_GT(r.rnet.stats(1).acksSent, 0u);
    EXPECT_EQ(r.rnet.stats(0).retransmits, 0u);
}

TEST(Reliable, ReverseTrafficPiggybacksAcks)
{
    // Reverse data sent while a standalone ack is still pending must
    // carry the cumulative ack itself and cancel the standalone one.
    ReliableParams params;
    params.ackDelayUs = 500.0;
    Rig r({}, params);
    for (std::uint32_t i = 0; i < 6; ++i)
        r.rnet.send(mk(0, 1, i));
    r.sim.schedule(us_to_ticks(100.0), [&r] {
        for (std::uint32_t i = 0; i < 6; ++i)
            r.rnet.send(mk(1, 0, 100 + i));
    });
    r.sim.run();

    ASSERT_EQ(r.delivered[1].size(), 6u);
    ASSERT_EQ(r.delivered[0].size(), 6u);
    EXPECT_GT(r.rnet.stats(1).acksPiggybacked, 0u);
    EXPECT_EQ(r.rnet.stats(1).acksSent, 0u)
        << "piggyback should have preempted the standalone ack";
}

TEST(Reliable, DeadPeerChannelsFlushAndTheQueueDrains)
{
    Rig r(sim::FaultPlan::drops(11, 1.0)); // nothing ever arrives
    bool dead = false;
    r.rnet.set_liveness([&dead](CellId id) {
        return id != 1 || !dead;
    });
    for (std::uint32_t i = 0; i < 5; ++i)
        r.rnet.send(mk(0, 1, i));
    // Declare cell 1 dead shortly after; flush_cell must abort the
    // retransmit queue or sim.run() would spin on backed-off timers
    // until the give-up bound.
    r.sim.schedule(us_to_ticks(500.0), [&] {
        dead = true;
        r.rnet.flush_cell(1);
    });
    r.sim.run();

    EXPECT_TRUE(r.delivered[1].empty());
    EXPECT_GT(r.rnet.stats(0).abortedMsgs, 0u);
    // New sends to the dead peer abort immediately.
    std::uint64_t before = r.rnet.stats(0).abortedMsgs;
    r.rnet.send(mk(0, 1, 99));
    r.sim.run();
    EXPECT_EQ(r.rnet.stats(0).abortedMsgs, before + 1);
}

TEST(Reliable, GiveUpBoundAbortsUnreachablePeerWithoutLiveness)
{
    // Total blackout and no liveness oracle: retransmission must not
    // run forever — the per-message give-up bound abandons the
    // channel and lets the event queue drain.
    ReliableParams params;
    params.maxRetransmits = 3;
    Rig r(sim::FaultPlan::drops(13, 1.0), params);
    r.rnet.send(mk(0, 1, 7));
    r.sim.run();

    EXPECT_TRUE(r.delivered[1].empty());
    EXPECT_GT(r.rnet.stats(0).abortedMsgs, 0u);
}

TEST(FaultHolding, HoldingBuffersAreBoundedAndCountEvictions)
{
    // Satellite: the injector's dup/reorder copies park in per-cell
    // holding buffers; past maxHeldPerCell the injection is refused
    // (counted), never unbounded.
    sim::FaultPlan plan = sim::FaultPlan::duplicates(17, 1.0);
    plan.reorderProb = 1.0;
    plan.maxHeldPerCell = 2;

    sim::Simulator sim;
    sim::FaultInjector inj(plan);
    inj.set_cells(4);
    Tnet tnet(sim, Torus(4, 1), TnetParams{});
    tnet.set_fault_injector(&inj);
    int arrived = 0;
    for (CellId c = 0; c < 4; ++c)
        tnet.attach(c, [&](Message) { ++arrived; });

    for (std::uint32_t i = 0; i < 50; ++i) {
        Message m;
        m.kind = MsgKind::put_data;
        m.src = 0;
        m.dst = 1;
        m.payload.assign(16, 0x5a);
        tnet.send(std::move(m));
    }
    sim.run();

    const auto &hs = inj.hold_stats(1);
    EXPECT_EQ(hs.held, 0u) << "holds not released after delivery";
    EXPECT_LE(hs.heldHighWater, 2u);
    EXPECT_GT(hs.dupEvictions + hs.reorderEvictions, 0u);
    // Every original message still arrives (dups/reorders only add
    // or delay copies), plus at most the admitted duplicates.
    EXPECT_GE(arrived, 50);
}
