/**
 * @file
 * Unit tests of the fault-injection subsystem.
 *
 * Covers the FaultPlan presets, the injector's determinism and
 * per-mechanism RNG stream isolation, the inertness guarantee of a
 * zero plan (machine-level: a default plan must not change a run at
 * all), and the Process::wait_until timeout primitive that the
 * runtime hardening is built on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/ap1000p.hh"
#include "sim/fault.hh"
#include "sim/process.hh"

using namespace ap;
using namespace ap::sim;

namespace
{

/** Record @p n drop decisions from @p inj. */
std::vector<bool>
drop_stream(FaultInjector &inj, int n)
{
    std::vector<bool> out;
    for (int i = 0; i < n; ++i)
        out.push_back(inj.drop_message());
    return out;
}

} // namespace

TEST(FaultPlan, ZeroPlanIsInert)
{
    FaultPlan zero;
    EXPECT_FALSE(zero.any());
    EXPECT_EQ(zero.describe(), "none");

    FaultInjector inj(zero);
    EXPECT_FALSE(inj.active());
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.drop_message());
        EXPECT_FALSE(inj.duplicate_message());
        EXPECT_FALSE(inj.reorder_message());
        EXPECT_FALSE(inj.force_overflow());
        EXPECT_FALSE(inj.inject_page_fault());
        EXPECT_EQ(inj.jitter(), 0u);
    }
    EXPECT_EQ(inj.stats().total(), 0u);
    EXPECT_EQ(inj.stats().jitteredEvents, 0u);
}

TEST(FaultPlan, PresetsEnableExactlyOneMechanism)
{
    EXPECT_GT(FaultPlan::drops(1).dropProb, 0.0);
    EXPECT_GT(FaultPlan::duplicates(1).dupProb, 0.0);
    EXPECT_GT(FaultPlan::reorders(1).reorderProb, 0.0);
    EXPECT_GT(FaultPlan::overflows(1).overflowProb, 0.0);
    EXPECT_GT(FaultPlan::pageFaults(1).pageFaultProb, 0.0);
    EXPECT_GT(FaultPlan::jitter(1).jitterMaxUs, 0.0);
    for (const FaultPlan &p :
         {FaultPlan::drops(7), FaultPlan::duplicates(7),
          FaultPlan::reorders(7), FaultPlan::overflows(7),
          FaultPlan::pageFaults(7), FaultPlan::jitter(7),
          FaultPlan::chaos(7)}) {
        EXPECT_TRUE(p.any()) << p.describe();
        EXPECT_EQ(p.seed, 7u);
        EXPECT_NE(p.describe(), "none");
    }
    FaultPlan c = FaultPlan::chaos(3);
    EXPECT_GT(c.dropProb, 0.0);
    EXPECT_GT(c.dupProb, 0.0);
    EXPECT_GT(c.reorderProb, 0.0);
    EXPECT_GT(c.overflowProb, 0.0);
    EXPECT_GT(c.pageFaultProb, 0.0);
    EXPECT_GT(c.jitterMaxUs, 0.0);
}

TEST(FaultInjector, SameSeedSameDecisionStream)
{
    FaultInjector a(FaultPlan::chaos(99));
    FaultInjector b(FaultPlan::chaos(99));
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.drop_message(), b.drop_message());
        EXPECT_EQ(a.duplicate_message(), b.duplicate_message());
        EXPECT_EQ(a.force_overflow(), b.force_overflow());
        EXPECT_EQ(a.inject_page_fault(), b.inject_page_fault());
        EXPECT_EQ(a.jitter(), b.jitter());
    }
    EXPECT_EQ(a.stats().total(), b.stats().total());
    EXPECT_GT(a.stats().total(), 0u);
}

TEST(FaultInjector, DisabledMechanismsDoNotConsumeRng)
{
    // Decision points of disabled mechanisms must not shift the
    // stream of enabled ones, so enabling e.g. page faults leaves a
    // drop-only plan's drop pattern untouched.
    FaultInjector pure(FaultPlan::drops(42, 0.3));
    std::vector<bool> expect = drop_stream(pure, 200);

    FaultInjector mixed(FaultPlan::drops(42, 0.3));
    std::vector<bool> got;
    for (int i = 0; i < 200; ++i) {
        // Disabled in this plan: must be free of RNG side effects.
        EXPECT_FALSE(mixed.duplicate_message());
        EXPECT_FALSE(mixed.force_overflow());
        EXPECT_FALSE(mixed.inject_page_fault());
        EXPECT_EQ(mixed.jitter(), 0u);
        got.push_back(mixed.drop_message());
    }
    EXPECT_EQ(got, expect);
}

TEST(FaultInjector, ResetRestartsTheStream)
{
    FaultInjector inj(FaultPlan::drops(5, 0.5));
    std::vector<bool> first = drop_stream(inj, 100);
    inj.reset(FaultPlan::drops(5, 0.5));
    EXPECT_EQ(inj.stats().total(), 0u);
    EXPECT_EQ(drop_stream(inj, 100), first);
}

TEST(FaultInjector, JitterIsBounded)
{
    FaultPlan p = FaultPlan::jitter(11, 20.0);
    FaultInjector inj(p);
    Tick bound = us_to_ticks(p.jitterMaxUs);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(inj.jitter(), bound);
    EXPECT_GT(inj.stats().jitteredEvents, 0u);
    EXPECT_GT(inj.stats().jitterTicks, 0u);
}

TEST(FaultMachine, DefaultPlanDoesNotPerturbARun)
{
    // Machine-level inertness: a zero plan (any seed) leaves the run
    // byte-identical — same finish tick, same data, zero injections.
    auto run_once = [](std::uint64_t plan_seed) {
        hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(4);
        cfg.memBytesPerCell = 1 << 20;
        cfg.faults = sim::FaultPlan{};
        cfg.faults.seed = plan_seed;
        hw::Machine m(cfg);
        int errors = 0;
        auto result = core::run_spmd(m, [&](core::Context &ctx) {
            Addr data = ctx.alloc(4096);
            Addr flag = ctx.alloc_flag();
            int me = ctx.id();
            int p = ctx.nprocs();
            for (int round = 0; round < 4; ++round) {
                ctx.poke_u32(data, static_cast<std::uint32_t>(
                                       me * 100 + round));
                ctx.put((me + 1) % p, data + 512, data, 256, no_flag,
                        flag);
                ctx.wait_flag(flag, static_cast<std::uint32_t>(
                                        round + 1));
                std::uint32_t want = static_cast<std::uint32_t>(
                    ((me - 1 + p) % p) * 100 + round);
                if (ctx.peek_u32(data + 512) != want)
                    ++errors;
                ctx.barrier();
            }
        });
        EXPECT_FALSE(result.deadlock);
        EXPECT_EQ(errors, 0);
        EXPECT_EQ(m.faults().stats().total(), 0u);
        return result.finishTick;
    };
    Tick a = run_once(1);
    Tick b = run_once(987654321);
    EXPECT_EQ(a, b) << "zero plan must be inert regardless of seed";
}

TEST(WaitUntil, TimesOutWhenNeverNotified)
{
    Simulator sim;
    Condition cond;
    bool notified = true;
    Process p(sim, "p", [&](Process &self) {
        notified = self.wait_until(cond, 100);
    });
    p.start(0);
    sim.run();
    EXPECT_TRUE(p.finished());
    EXPECT_FALSE(notified);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(WaitUntil, NotificationBeforeDeadlineWins)
{
    Simulator sim;
    Condition cond;
    bool notified = false;
    Tick woke_at = 0;
    Process waiter(sim, "w", [&](Process &self) {
        notified = self.wait_until(cond, 100);
        woke_at = sim.now();
    });
    Process notifier(sim, "n", [&](Process &self) {
        self.delay(50);
        cond.notify_all();
    });
    waiter.start(0);
    notifier.start(0);
    sim.run();
    EXPECT_TRUE(notified);
    EXPECT_EQ(woke_at, 50u);
}

TEST(WaitUntil, NotificationAfterDeadlineIsATimeout)
{
    Simulator sim;
    Condition cond;
    bool notified = true;
    Tick woke_at = 0;
    Process waiter(sim, "w", [&](Process &self) {
        notified = self.wait_until(cond, 100);
        woke_at = sim.now();
    });
    Process notifier(sim, "n", [&](Process &self) {
        self.delay(150);
        cond.notify_all();
    });
    waiter.start(0);
    notifier.start(0);
    sim.run();
    EXPECT_FALSE(notified);
    EXPECT_EQ(woke_at, 100u);
}

TEST(WaitUntil, StaleTimeoutDoesNotWakeALaterWait)
{
    // First wait is notified before its deadline; its pending timeout
    // event (tick 100) must not spuriously resume the second wait.
    Simulator sim;
    Condition cond;
    std::vector<std::pair<bool, Tick>> waits;
    Process waiter(sim, "w", [&](Process &self) {
        bool a = self.wait_until(cond, 100);
        waits.emplace_back(a, sim.now());
        bool b = self.wait_until(cond, 500);
        waits.emplace_back(b, sim.now());
    });
    Process notifier(sim, "n", [&](Process &self) {
        self.delay(50);
        cond.notify_all();
        self.delay(350); // to 400, past the stale 100-tick deadline
        cond.notify_all();
    });
    waiter.start(0);
    notifier.start(0);
    sim.run();
    ASSERT_EQ(waits.size(), 2u);
    EXPECT_TRUE(waits[0].first);
    EXPECT_EQ(waits[0].second, 50u);
    EXPECT_TRUE(waits[1].first);
    EXPECT_EQ(waits[1].second, 400u);
}

TEST(WaitUntil, PlainWaitStillWorksAfterTimedWaits)
{
    Simulator sim;
    Condition cond;
    std::vector<Tick> wakes;
    Process waiter(sim, "w", [&](Process &self) {
        self.wait_until(cond, 10); // times out at 10
        self.wait(cond);           // untimed park
        wakes.push_back(sim.now());
    });
    Process notifier(sim, "n", [&](Process &self) {
        self.delay(80);
        cond.notify_all();
    });
    waiter.start(0);
    notifier.start(0);
    sim.run();
    ASSERT_EQ(wakes.size(), 1u);
    EXPECT_EQ(wakes[0], 80u);
}
