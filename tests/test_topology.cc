/**
 * @file
 * Torus topology and static routing tests, including parameterized
 * property sweeps over machine shapes.
 */

#include <gtest/gtest.h>

#include "net/topology.hh"

using namespace ap;
using namespace ap::net;

TEST(Torus, CoordinateRoundTrip)
{
    Torus t(8, 4);
    for (CellId id = 0; id < t.size(); ++id)
        EXPECT_EQ(t.id_of(t.coord_of(id)), id);
}

TEST(Torus, SquarestPrefersBalancedShapes)
{
    EXPECT_EQ(Torus::squarest(64).width(), 8);
    EXPECT_EQ(Torus::squarest(64).height(), 8);
    EXPECT_EQ(Torus::squarest(128).width(), 8);
    EXPECT_EQ(Torus::squarest(128).height(), 16);
    EXPECT_EQ(Torus::squarest(16).width(), 4);
    EXPECT_EQ(Torus::squarest(1).size(), 1);
    // Primes degrade to a ring.
    EXPECT_EQ(Torus::squarest(13).width(), 1);
    EXPECT_EQ(Torus::squarest(13).height(), 13);
}

TEST(Torus, WrapDeltaTakesShortWay)
{
    EXPECT_EQ(Torus::wrap_delta(0, 1, 8), 1);
    EXPECT_EQ(Torus::wrap_delta(0, 7, 8), -1);
    EXPECT_EQ(Torus::wrap_delta(0, 4, 8), 4); // halfway stays positive
    EXPECT_EQ(Torus::wrap_delta(3, 3, 8), 0);
    EXPECT_EQ(Torus::wrap_delta(6, 1, 8), 3);
}

TEST(Torus, DistanceNeighborAndWrap)
{
    Torus t(4, 4);
    EXPECT_EQ(t.distance(0, 0), 0);
    EXPECT_EQ(t.distance(0, 1), 1);
    EXPECT_EQ(t.distance(0, 3), 1);  // x wraparound
    EXPECT_EQ(t.distance(0, 12), 1); // y wraparound
    EXPECT_EQ(t.distance(0, 10), 4); // opposite corner: 2 + 2
}

TEST(Torus, RouteIsEmptyForSelf)
{
    Torus t(4, 4);
    EXPECT_TRUE(t.route(5, 5).empty());
}

struct TorusShape
{
    int w;
    int h;
};

class TorusProperty : public ::testing::TestWithParam<TorusShape>
{
};

TEST_P(TorusProperty, DistanceIsSymmetricAndTriangleBounded)
{
    auto [w, h] = GetParam();
    Torus t(w, h);
    for (CellId a = 0; a < t.size(); ++a) {
        for (CellId b = 0; b < t.size(); ++b) {
            EXPECT_EQ(t.distance(a, b), t.distance(b, a));
            EXPECT_LE(t.distance(a, b), w / 2 + h / 2);
            if (a == b)
                EXPECT_EQ(t.distance(a, b), 0);
            else
                EXPECT_GE(t.distance(a, b), 1);
        }
    }
}

TEST_P(TorusProperty, RouteLengthEqualsDistanceAndHopsAreAdjacent)
{
    auto [w, h] = GetParam();
    Torus t(w, h);
    for (CellId a = 0; a < t.size(); ++a) {
        for (CellId b = 0; b < t.size(); ++b) {
            auto hops = t.route(a, b);
            EXPECT_EQ(static_cast<int>(hops.size()), t.distance(a, b));
            CellId cur = a;
            for (const Hop &hop : hops) {
                EXPECT_EQ(hop.from, cur);
                EXPECT_EQ(t.distance(hop.from, hop.to), 1);
                cur = hop.to;
            }
            EXPECT_EQ(cur, b);
        }
    }
}

TEST_P(TorusProperty, RouteIsDimensionOrdered)
{
    auto [w, h] = GetParam();
    Torus t(w, h);
    for (CellId a = 0; a < t.size(); ++a) {
        for (CellId b = 0; b < t.size(); ++b) {
            auto hops = t.route(a, b);
            // Once a hop changes y, no later hop may change x.
            bool seen_y = false;
            for (const Hop &hop : hops) {
                bool is_y = t.coord_of(hop.from).y !=
                            t.coord_of(hop.to).y;
                if (seen_y) {
                    EXPECT_TRUE(is_y);
                }
                if (is_y)
                    seen_y = true;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TorusProperty,
    ::testing::Values(TorusShape{1, 1}, TorusShape{2, 2},
                      TorusShape{4, 4}, TorusShape{8, 8},
                      TorusShape{3, 5}, TorusShape{1, 7},
                      TorusShape{8, 2}, TorusShape{5, 4}));
