/**
 * @file
 * Context API tests: allocation discipline, typed access, shared
 * space addressing, 2-D stride-by-repetition, group helpers, machine
 * report, and error paths.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "base/logging.hh"
#include "core/ap1000p.hh"

using namespace ap;
using namespace ap::core;

namespace
{

hw::MachineConfig
small(int cells)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    return cfg;
}

} // namespace

TEST(Context, AllocIsAlignedAndSymmetric)
{
    hw::Machine m(small(4));
    std::vector<Addr> a1(4), a2(4);
    run_spmd(m, [&](Context &ctx) {
        a1[static_cast<std::size_t>(ctx.id())] = ctx.alloc(3);
        a2[static_cast<std::size_t>(ctx.id())] = ctx.alloc(8);
    });
    for (int c = 1; c < 4; ++c) {
        EXPECT_EQ(a1[static_cast<std::size_t>(c)], a1[0]);
        EXPECT_EQ(a2[static_cast<std::size_t>(c)], a2[0]);
    }
    EXPECT_EQ(a1[0] % 8, 0u);
    EXPECT_EQ(a2[0] - a1[0], 8u); // 3 bytes rounded up
    EXPECT_NE(a1[0], no_flag);    // address 0 stays reserved
}

TEST(ContextDeath, AllocBeyondMemoryIsFatal)
{
    hw::Machine m(small(1));
    EXPECT_DEATH(run_spmd(m,
                          [](Context &ctx) {
                              ctx.alloc(2 << 20); // > 1 MB cell
                          }),
                 "out of memory");
}

TEST(ContextDeath, NegativeComputeIsFatal)
{
    hw::Machine m(small(1));
    EXPECT_DEATH(
        run_spmd(m, [](Context &ctx) { ctx.compute_us(-1.0); }),
        "negative");
}

TEST(Context, TypedPokePeekRoundTrip)
{
    hw::Machine m(small(1));
    run_spmd(m, [](Context &ctx) {
        Addr a = ctx.alloc(16);
        ctx.poke_f64(a, -1.5e300);
        EXPECT_DOUBLE_EQ(ctx.peek_f64(a), -1.5e300);
        ctx.poke_u32(a + 8, 0xffffffff);
        EXPECT_EQ(ctx.peek_u32(a + 8), 0xffffffffu);
    });
}

TEST(Context, SharedAddrRoundTrips)
{
    hw::Machine m(small(4));
    std::uint32_t got = 0;
    auto r = run_spmd(m, [&](Context &ctx) {
        Addr slot = ctx.alloc(8);
        ctx.barrier();
        // Cell 1 writes through cell 3's shared-space address.
        if (ctx.id() == 1) {
            ctx.shared_store_u32(ctx.shared_addr(3, slot), 777);
            ctx.wait_all_acks();
        }
        ctx.barrier();
        if (ctx.id() == 0)
            got = ctx.shared_load_u32(ctx.shared_addr(3, slot));
        ctx.barrier();
        // Self-references short-circuit locally.
        if (ctx.id() == 3) {
            EXPECT_EQ(ctx.shared_load_u32(ctx.shared_addr(3, slot)),
                      777u);
        }
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(got, 777u);
}

TEST(Context, PutStride2dMovesAMatrixBlock)
{
    // Move a 4x6-element sub-block (8-byte elements) out of a 16-wide
    // row-major matrix into a 12-wide one, one plane per row.
    hw::Machine m(small(2));
    int bad = 0;
    auto r = run_spmd(m, [&](Context &ctx) {
        constexpr int src_w = 16, dst_w = 12, rows = 4, cols = 6;
        Addr src = ctx.alloc(src_w * rows * 8);
        Addr dst = ctx.alloc(dst_w * rows * 8);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0) {
            for (int y = 0; y < rows; ++y)
                for (int x = 0; x < src_w; ++x)
                    ctx.poke_f64(src + static_cast<Addr>(
                                           (y * src_w + x) * 8),
                                 y * 100.0 + x);
            net::StrideSpec row{cols * 8, 1, 0};
            ctx.put_stride_2d(1, dst, src, true, no_flag, rf, row,
                              row, rows, src_w * 8, dst_w * 8);
            ctx.wait_all_acks();
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, rows);
            for (int y = 0; y < rows; ++y)
                for (int x = 0; x < cols; ++x)
                    if (ctx.peek_f64(dst + static_cast<Addr>(
                                               (y * dst_w + x) * 8)) !=
                        y * 100.0 + x)
                        ++bad;
        }
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(bad, 0);
    // Only the final plane carried an acknowledge probe.
    EXPECT_EQ(m.cell(0).msc().stats().acksReceived, 1u);
}

TEST(Context, GroupHelpers)
{
    Group g = Group::strided(2, 4, 3); // 2, 5, 8, 11
    EXPECT_EQ(g.size(), 4);
    EXPECT_EQ(g.at(0), 2);
    EXPECT_EQ(g.at(3), 11);
    EXPECT_EQ(g.rank_of(5), 1);
    EXPECT_EQ(g.rank_of(6), -1);
    EXPECT_TRUE(g.contains(8));
    EXPECT_FALSE(g.contains(3));

    Group dup(std::vector<CellId>{3, 1, 3, 2});
    EXPECT_EQ(dup.size(), 3); // sorted, deduplicated
    EXPECT_EQ(dup.at(0), 1);
}

TEST(Context, StatsCountOperations)
{
    hw::Machine m(small(2));
    run_spmd(m, [](Context &ctx) {
        Addr buf = ctx.alloc(256);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 0) {
            ctx.put(1, buf, buf, 128, no_flag, rf, true);
            ctx.put_stride(1, buf, buf, false, no_flag, rf,
                           net::StrideSpec{8, 4, 8},
                           net::StrideSpec::contiguous(32));
            ctx.get(1, buf, buf, 64, no_flag, rf);
            ctx.send(1, 1, buf, 16);
            EXPECT_EQ(ctx.stats().puts, 1u);
            EXPECT_EQ(ctx.stats().putStrides, 1u);
            EXPECT_EQ(ctx.stats().gets, 1u);
            EXPECT_EQ(ctx.stats().sends, 1u);
            EXPECT_EQ(ctx.stats().acksRequested, 1u);
            EXPECT_EQ(ctx.stats().putBytes, 160u);
            EXPECT_EQ(ctx.stats().getBytes, 64u);
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 3);
            ctx.recv(0, 1, buf, 64);
        }
        ctx.barrier();
    });
}

TEST(Context, MachineReportSummarizesActivity)
{
    hw::Machine m(small(4));
    run_spmd(m, [](Context &ctx) {
        Addr buf = ctx.alloc(128);
        Addr rf = ctx.alloc_flag();
        CellId right = (ctx.id() + 1) % ctx.nprocs();
        ctx.put(right, buf, buf, 128, no_flag, rf);
        ctx.wait_flag(rf, 1);
        ctx.allreduce(1.0, ReduceOp::sum);
        ctx.barrier();
    });
    std::string rep = m.report();
    EXPECT_NE(rep.find("machine report: 4 cells"), std::string::npos);
    EXPECT_NE(rep.find("T-net:"), std::string::npos);
    EXPECT_NE(rep.find("4 PUTs"), std::string::npos);
    EXPECT_NE(rep.find("flag increments"), std::string::npos);
    EXPECT_NE(rep.find("busiest sender"), std::string::npos);
}

TEST(Context, SpmdResultBlockedTimeTracksIdleCells)
{
    hw::Machine m(small(2));
    auto r = run_spmd(m, [](Context &ctx) {
        if (ctx.id() == 0)
            ctx.compute_us(1000.0);
        ctx.barrier();
    });
    ASSERT_FALSE(r.deadlock);
    // Cell 1 idled at the barrier roughly as long as cell 0 worked.
    EXPECT_GT(r.cellBlocked[1], us_to_ticks(900.0));
    EXPECT_LT(r.cellBlocked[0], us_to_ticks(100.0));
}

TEST(ContextDeath, MismatchedStridePatternsAreFatal)
{
    hw::Machine m(small(2));
    EXPECT_DEATH(
        run_spmd(m,
                 [](Context &ctx) {
                     Addr buf = ctx.alloc(64);
                     ctx.put_stride(1, buf, buf, false, no_flag,
                                    no_flag, net::StrideSpec{8, 4, 0},
                                    net::StrideSpec{8, 3, 0});
                 }),
        "pattern");
}
