/**
 * @file
 * MMU and TLB tests: the direct-mapped 256-entry 4 KB / 64-entry
 * 256 KB configuration of the MC (Section 4.1).
 */

#include <gtest/gtest.h>

#include "hw/mmu.hh"

using namespace ap;
using namespace ap::hw;

TEST(Mmu, LinearMapIsIdentity)
{
    Mmu mmu;
    mmu.map_linear(1 << 20);
    for (Addr a : {Addr{0}, Addr{4095}, Addr{4096}, Addr{999999}}) {
        Translation t = mmu.translate(a, false);
        ASSERT_TRUE(t.valid) << a;
        EXPECT_EQ(t.paddr, a);
    }
}

TEST(Mmu, UnmappedAddressFaults)
{
    Mmu mmu;
    mmu.map_linear(1 << 20);
    Translation t = mmu.translate(Addr{1} << 21, false);
    EXPECT_FALSE(t.valid);
    EXPECT_EQ(mmu.stats().faults, 1u);
}

TEST(Mmu, NonIdentityMappingTranslates)
{
    Mmu mmu;
    mmu.map(0x10000, 0x40000);
    Translation t = mmu.translate(0x10123, false);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.paddr, 0x40123u);
}

TEST(Mmu, ReadOnlyPageRejectsWrites)
{
    Mmu mmu;
    mmu.map(0, 0, false, /*writable=*/false);
    EXPECT_TRUE(mmu.translate(0x10, false).valid);
    EXPECT_FALSE(mmu.translate(0x10, true).valid);
    EXPECT_EQ(mmu.stats().faults, 1u);
}

TEST(Mmu, FirstAccessMissesThenHits)
{
    Mmu mmu;
    mmu.map_linear(1 << 20);
    mmu.translate(0x1000, false);
    EXPECT_EQ(mmu.stats().misses, 1u);
    EXPECT_EQ(mmu.stats().hits, 0u);
    mmu.translate(0x1004, false);
    EXPECT_EQ(mmu.stats().misses, 1u);
    EXPECT_EQ(mmu.stats().hits, 1u);
}

TEST(Mmu, DirectMappedConflictEvicts)
{
    Mmu mmu;
    // Two pages whose VPNs collide in the 256-entry direct map.
    Addr a = 0;
    Addr b = Addr{256} << 12;
    mmu.map(a, a);
    mmu.map(b, b);
    mmu.translate(a, false); // miss, fill
    mmu.translate(b, false); // miss, evicts a
    mmu.translate(a, false); // miss again (conflict)
    EXPECT_EQ(mmu.stats().misses, 3u);
    EXPECT_EQ(mmu.stats().hits, 0u);
}

TEST(Mmu, NonConflictingPagesBothHit)
{
    Mmu mmu;
    Addr a = 0;
    Addr b = 1 << 12;
    mmu.map(a, a);
    mmu.map(b, b);
    mmu.translate(a, false);
    mmu.translate(b, false);
    mmu.translate(a, false);
    mmu.translate(b, false);
    EXPECT_EQ(mmu.stats().misses, 2u);
    EXPECT_EQ(mmu.stats().hits, 2u);
}

TEST(Mmu, LargePageCoversWholeRange)
{
    Mmu mmu;
    mmu.map(0, 0, /*large=*/true);
    Translation t = mmu.translate(200000, false); // < 256 KB
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.paddr, 200000u);
    // A single TLB entry serves the whole page: one miss, rest hits.
    mmu.translate(100, false);
    mmu.translate(262143, false);
    EXPECT_EQ(mmu.stats().misses, 1u);
    EXPECT_EQ(mmu.stats().hits, 2u);
}

TEST(Mmu, SmallPageShadowsLargePage)
{
    Mmu mmu;
    mmu.map(0, 0x100000, /*large=*/true);
    mmu.map(0x1000, 0x9000, /*large=*/false);
    // Address in the small page goes through the small mapping.
    Translation t = mmu.peek(0x1234);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.paddr, 0x9234u);
    // Address outside it falls back to the large mapping.
    Translation u = mmu.peek(0x3000);
    ASSERT_TRUE(u.valid);
    EXPECT_EQ(u.paddr, 0x103000u);
}

TEST(Mmu, FlushTlbForcesMisses)
{
    Mmu mmu;
    mmu.map_linear(1 << 16);
    mmu.translate(0, false);
    mmu.translate(0, false);
    EXPECT_EQ(mmu.stats().hits, 1u);
    mmu.flush_tlb();
    mmu.translate(0, false);
    EXPECT_EQ(mmu.stats().misses, 2u);
}

TEST(Mmu, UnmapRemovesTranslation)
{
    Mmu mmu;
    mmu.map(0x2000, 0x2000);
    EXPECT_TRUE(mmu.translate(0x2000, false).valid);
    mmu.unmap(0x2000);
    EXPECT_FALSE(mmu.translate(0x2000, false).valid);
}

TEST(Mmu, PeekDoesNotTouchStats)
{
    Mmu mmu;
    mmu.map_linear(1 << 16);
    mmu.peek(0x100);
    EXPECT_EQ(mmu.stats().hits + mmu.stats().misses, 0u);
}

TEST(MmuDeath, MisalignedMapIsFatal)
{
    Mmu mmu;
    EXPECT_DEATH(mmu.map(0x123, 0), "aligned");
}
