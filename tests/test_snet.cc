/**
 * @file
 * S-net unit tests: context creation, arrival/release semantics,
 * re-arming, subset contexts, and misuse detection.
 */

#include <gtest/gtest.h>

#include "net/snet.hh"
#include "sim/eventq.hh"

using namespace ap;
using namespace ap::net;

namespace
{

struct Rig
{
    sim::Simulator sim;
    SnetParams params{2.0}; // 2 us release
    Snet snet{sim, 8, params};
};

} // namespace

TEST(Snet, ReleasesAfterLastArrivalPlusLatency)
{
    Rig rig;
    auto ctx = rig.snet.create_context({0, 1, 2});
    std::vector<Tick> released;

    rig.sim.schedule(100, [&]() {
        rig.snet.arrive(ctx, 0,
                        [&]() { released.push_back(rig.sim.now()); });
    });
    rig.sim.schedule(300, [&]() {
        rig.snet.arrive(ctx, 1,
                        [&]() { released.push_back(rig.sim.now()); });
    });
    rig.sim.schedule(250, [&]() {
        rig.snet.arrive(ctx, 2,
                        [&]() { released.push_back(rig.sim.now()); });
    });
    rig.sim.run();

    ASSERT_EQ(released.size(), 3u);
    for (Tick t : released)
        EXPECT_EQ(t, 300u + us_to_ticks(2.0));
}

TEST(Snet, ReArmsAfterEachEpisode)
{
    Rig rig;
    auto ctx = rig.snet.create_context({0, 1});
    int releases = 0;
    for (int round = 0; round < 5; ++round) {
        rig.snet.arrive(ctx, 0, [&]() { ++releases; });
        rig.snet.arrive(ctx, 1, [&]() { ++releases; });
        rig.sim.run();
    }
    EXPECT_EQ(releases, 10);
    EXPECT_EQ(rig.snet.episodes(ctx), 5u);
}

TEST(Snet, EmptyMemberListMeansAllCells)
{
    Rig rig;
    auto ctx = rig.snet.create_context();
    int releases = 0;
    for (CellId c = 0; c < 8; ++c)
        rig.snet.arrive(ctx, c, [&]() { ++releases; });
    rig.sim.run();
    EXPECT_EQ(releases, 8);
}

TEST(Snet, IndependentContextsDoNotInterfere)
{
    Rig rig;
    auto a = rig.snet.create_context({0, 1});
    auto b = rig.snet.create_context({2, 3});
    bool a_released = false, b_released = false;

    rig.snet.arrive(a, 0, [&]() { a_released = true; });
    rig.snet.arrive(b, 2, [&]() { b_released = true; });
    rig.snet.arrive(b, 3, [&]() { b_released = true; });
    rig.sim.run();
    EXPECT_FALSE(a_released); // cell 1 never arrived
    EXPECT_TRUE(b_released);
}

TEST(SnetDeath, DoubleArrivalPanics)
{
    Rig rig;
    auto ctx = rig.snet.create_context({0, 1});
    rig.snet.arrive(ctx, 0, []() {});
    EXPECT_DEATH(rig.snet.arrive(ctx, 0, []() {}), "twice");
}

TEST(SnetDeath, NonMemberArrivalPanics)
{
    Rig rig;
    auto ctx = rig.snet.create_context({0, 1});
    EXPECT_DEATH(rig.snet.arrive(ctx, 5, []() {}), "not a member");
}

TEST(SnetDeath, InvalidMemberIsFatal)
{
    Rig rig;
    EXPECT_DEATH(rig.snet.create_context({0, 99}), "outside");
}
