/**
 * @file
 * Memory + DMA stride gather/scatter tests, including a property
 * sweep comparing the engine against a plain reference model.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"
#include "core/ap1000p.hh"
#include "hw/dma.hh"
#include "hw/memory.hh"
#include "hw/mmu.hh"

using namespace ap;
using namespace ap::hw;
using namespace ap::net;

namespace
{

struct Rig
{
    CellMemory mem{1 << 20};
    Mmu mmu;

    Rig() { mmu.map_linear(1 << 20); }

    void
    fill_iota(Addr base, std::size_t n)
    {
        std::vector<std::uint8_t> v(n);
        std::iota(v.begin(), v.end(), std::uint8_t{0});
        mem.write(base, v);
    }
};

/** Reference gather straight from physical memory. */
std::vector<std::uint8_t>
ref_gather(const CellMemory &mem, Addr addr, StrideSpec s)
{
    std::vector<std::uint8_t> out;
    Addr cur = addr;
    for (std::uint32_t i = 0; i < s.count; ++i) {
        std::vector<std::uint8_t> item(s.itemSize);
        mem.read(cur, item);
        out.insert(out.end(), item.begin(), item.end());
        cur += s.itemSize + s.skip;
    }
    return out;
}

} // namespace

TEST(CellMemory, TypedAccessRoundTrip)
{
    CellMemory mem(4096);
    mem.write_u32(0, 0xdeadbeef);
    EXPECT_EQ(mem.read_u32(0), 0xdeadbeefu);
    mem.write_u64(8, 0x0123456789abcdefull);
    EXPECT_EQ(mem.read_u64(8), 0x0123456789abcdefull);
    mem.write_f64(16, 3.25);
    EXPECT_DOUBLE_EQ(mem.read_f64(16), 3.25);
}

TEST(CellMemory, FetchIncrementReturnsOldValue)
{
    CellMemory mem(4096);
    mem.write_u32(100, 41);
    EXPECT_EQ(mem.fetch_increment_u32(100), 41u);
    EXPECT_EQ(mem.read_u32(100), 42u);
}

TEST(CellMemoryDeath, OutOfRangePanics)
{
    CellMemory mem(64);
    std::uint8_t b[8];
    EXPECT_DEATH(mem.read(60, b), "beyond");
}

TEST(Dma, ContiguousGatherMatchesMemory)
{
    Rig rig;
    rig.fill_iota(0x1000, 256);
    std::vector<std::uint8_t> out;
    DmaResult r = DmaEngine::gather(rig.mmu, rig.mem, 0x1000,
                                    StrideSpec::contiguous(256), out);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.bytesMoved, 256u);
    EXPECT_EQ(out, ref_gather(rig.mem, 0x1000, StrideSpec{256, 1, 0}));
}

TEST(Dma, StrideGatherSkipsGaps)
{
    Rig rig;
    rig.fill_iota(0, 64);
    // items of 4 bytes, skip 4: bytes 0-3, 8-11, 16-19.
    StrideSpec s{4, 3, 4};
    std::vector<std::uint8_t> out;
    DmaResult r = DmaEngine::gather(rig.mmu, rig.mem, 0, s, out);
    EXPECT_TRUE(r.ok);
    std::vector<std::uint8_t> expect = {0, 1, 2,  3,  8,  9,
                                        10, 11, 16, 17, 18, 19};
    EXPECT_EQ(out, expect);
}

TEST(Dma, ScatterThenGatherRoundTrips)
{
    Rig rig;
    StrideSpec s{8, 5, 24};
    std::vector<std::uint8_t> data(40);
    std::iota(data.begin(), data.end(), std::uint8_t{100});
    DmaResult w = DmaEngine::scatter(rig.mmu, rig.mem, 0x2000, s, data);
    EXPECT_TRUE(w.ok);
    std::vector<std::uint8_t> out;
    DmaResult r = DmaEngine::gather(rig.mmu, rig.mem, 0x2000, s, out);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(out, data);
}

TEST(Dma, PageCrossingRunIsSeamless)
{
    Rig rig;
    // Straddle the 4 KB boundary at 0x1000.
    rig.fill_iota(0x0ff0, 64);
    std::vector<std::uint8_t> out;
    DmaResult r = DmaEngine::gather(rig.mmu, rig.mem, 0x0ff0,
                                    StrideSpec::contiguous(64), out);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(out, ref_gather(rig.mem, 0x0ff0, StrideSpec{64, 1, 0}));
}

TEST(Dma, GatherFaultReportsAddressAndPartialBytes)
{
    Rig rig;
    Mmu mmu; // only first page mapped
    mmu.map(0, 0);
    std::vector<std::uint8_t> out;
    DmaResult r = DmaEngine::gather(mmu, rig.mem, 0x0f00,
                                    StrideSpec::contiguous(512), out);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.faultAddr, 0x1000u);
    EXPECT_EQ(r.bytesMoved, 0x100u);
    EXPECT_EQ(out.size(), 0x100u);
}

TEST(Dma, ScatterFaultStopsAtBoundary)
{
    Rig rig;
    Mmu mmu;
    mmu.map(0, 0);
    std::vector<std::uint8_t> data(512, 7);
    DmaResult r = DmaEngine::scatter(mmu, rig.mem, 0x0f00,
                                     StrideSpec::contiguous(512), data);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.faultAddr, 0x1000u);
    EXPECT_EQ(r.bytesMoved, 0x100u);
}

TEST(Dma, ZeroCountMovesNothing)
{
    Rig rig;
    std::vector<std::uint8_t> out;
    DmaResult r = DmaEngine::gather(rig.mmu, rig.mem, 0,
                                    StrideSpec{8, 0, 8}, out);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(out.empty());
}

struct StrideCase
{
    std::uint32_t item;
    std::uint32_t count;
    std::uint32_t skip;
    Addr base;
};

class DmaStrideProperty : public ::testing::TestWithParam<StrideCase>
{
};

TEST_P(DmaStrideProperty, GatherMatchesReference)
{
    auto c = GetParam();
    Rig rig;
    Random rng(c.base + c.item * 31 + c.count * 17 + c.skip);
    std::vector<std::uint8_t> image(1 << 16);
    for (auto &b : image)
        b = static_cast<std::uint8_t>(rng.next());
    rig.mem.write(0, image);

    StrideSpec s{c.item, c.count, c.skip};
    std::vector<std::uint8_t> out;
    DmaResult r = DmaEngine::gather(rig.mmu, rig.mem, c.base, s, out);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(out, ref_gather(rig.mem, c.base, s));
}

TEST_P(DmaStrideProperty, ScatterIsExactInverse)
{
    auto c = GetParam();
    Rig rig;
    Random rng(c.base ^ 0x5555);
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(c.item) * c.count);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());

    StrideSpec s{c.item, c.count, c.skip};
    ASSERT_TRUE(DmaEngine::scatter(rig.mmu, rig.mem, c.base, s, data)
                    .ok);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(DmaEngine::gather(rig.mmu, rig.mem, c.base, s, out).ok);
    EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, DmaStrideProperty,
    ::testing::Values(StrideCase{1, 1, 0, 0},
                      StrideCase{1, 100, 1, 7},
                      StrideCase{4, 64, 4, 0x100},
                      StrideCase{8, 257, 2048, 0},  // TOMCATV column
                      StrideCase{512, 16, 512, 3},
                      StrideCase{4096, 4, 4096, 0x800}, // page-sized
                      StrideCase{3, 333, 5, 0x123},
                      StrideCase{16, 1, 0, 0xfff})); // boundary start

// -- machine-level flush semantics -----------------------------------
//
// Section 4.1: a page fault hit *during* a remote transfer flushes
// the remainder of the message from the network; the receive flag is
// not bumped and later traffic is unaffected.

TEST(DmaMachine, RemoteScatterFaultFlushesMessageAndSkipsFlag)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.memBytesPerCell = 1 << 20;
    hw::Machine m(cfg);
    int remote_faults = 0;
    m.set_fault_hook([&](CellId, Addr, bool remote) {
        if (remote)
            ++remote_faults;
    });
    std::uint32_t final_flag = 0;
    double landed = 0.0;

    set_quiet(true);
    auto r = core::run_spmd(m, [&](core::Context &ctx) {
        Addr buf = ctx.alloc(64);
        Addr rf = ctx.alloc_flag();
        if (ctx.id() == 1)
            ctx.cell().mc().mmu().unmap(0x80000);
        ctx.barrier();
        if (ctx.id() == 0) {
            ctx.poke_f64(buf, 6.5);
            ctx.put(1, 0x80000, buf, 64, no_flag, rf); // flushed
            ctx.put(1, buf, buf, 8, no_flag, rf);      // lands
        }
        if (ctx.id() == 1) {
            ctx.wait_flag(rf, 1);
            final_flag = ctx.flag(rf);
            landed = ctx.peek_f64(buf);
        }
        ctx.barrier();
    });
    set_quiet(false);
    ASSERT_FALSE(r.deadlock);
    EXPECT_EQ(remote_faults, 1);
    // Only the healthy PUT bumped the flag; the faulted one flushed.
    EXPECT_EQ(final_flag, 1u);
    EXPECT_DOUBLE_EQ(landed, 6.5);
    EXPECT_EQ(m.cell(1).msc().stats().remoteFaults, 1u);
    EXPECT_EQ(m.cell(1).msc().stats().flushedMessages, 1u);
}

TEST(DmaMachine, InjectedPageFaultPlanFlushesWholeMessages)
{
    // Injected MMU faults (FaultPlan::pageFaults) hit transfers on
    // both the gather and the scatter side. A command dropped at
    // gather never leaves the cell; a message flushed at scatter
    // leaves the destination untouched — so every 8-byte slot is
    // either fully delivered or still zero, never partial.
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.memBytesPerCell = 1 << 20;
    cfg.faults = sim::FaultPlan::pageFaults(3, 0.5);
    hw::Machine m(cfg);
    constexpr int puts = 40;
    Addr base = 0;
    int delivered = 0, partial = 0;

    set_quiet(true);
    auto r = core::run_spmd(m, [&](core::Context &ctx) {
        base = ctx.alloc(puts * 8);
        ctx.barrier();
        if (ctx.id() == 0)
            for (int i = 0; i < puts; ++i) {
                Addr a = base + static_cast<Addr>(i) * 8;
                ctx.poke_f64(a, i + 0.125);
                ctx.put(1, a, a, 8, no_flag, no_flag);
            }
        ctx.barrier();
    });
    set_quiet(false);
    ASSERT_FALSE(r.deadlock);

    // run_spmd returns only once the event queue drained, so every
    // surviving message has landed; inspect cell 1's memory directly.
    const auto &mem = m.cell(1).memory();
    for (int i = 0; i < puts; ++i) {
        double got = mem.read_f64(base + static_cast<Addr>(i) * 8);
        if (got == i + 0.125)
            ++delivered;
        else if (got != 0.0)
            ++partial;
    }
    EXPECT_EQ(partial, 0) << "flush must be all-or-nothing";
    EXPECT_GT(delivered, 0);
    EXPECT_LT(delivered, puts);
    const auto &fs = m.faults().stats();
    EXPECT_GT(fs.injectedPageFaults, 0u);
    const auto &s1 = m.cell(1).msc().stats();
    const auto &s0 = m.cell(0).msc().stats();
    EXPECT_GT(s0.localFaults, 0u);  // dropped at gather
    EXPECT_GT(s1.remoteFaults, 0u); // flushed at scatter
    EXPECT_EQ(s1.flushedMessages, s1.remoteFaults);
    EXPECT_EQ(static_cast<std::uint64_t>(delivered),
              s1.putsReceived - s1.remoteFaults);
}
