/**
 * @file
 * Property tests of the ladder event queue and the allocation
 * machinery behind the hot path (event pool, payload pool,
 * truncation-aware tick history).
 *
 * The central property is the ordering contract: LadderQueue must
 * pop nodes in exactly ascending (when, seq) — bit-for-bit the order
 * of the binary heap it replaced — under random schedules, same-tick
 * bursts, far-future outliers and interleaved push/pop. Everything
 * that makes the ladder fast (buckets, rebasing, adaptive width) is
 * invisible as long as these tests pass.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/random.hh"
#include "hw/bufpool.hh"
#include "sim/eventq.hh"
#include "sim/ladderq.hh"

using namespace ap;
using namespace ap::sim;

namespace
{

/** Drain @p q completely, returning the (when, seq) pop order. */
std::vector<std::pair<Tick, std::uint64_t>>
drain(LadderQueue &q)
{
    std::vector<std::pair<Tick, std::uint64_t>> out;
    while (!q.empty()) {
        EventNode *n = q.pop();
        out.emplace_back(n->when, n->seq);
        q.release(n);
    }
    return out;
}

} // namespace

TEST(LadderQueue, RandomSchedulesMatchReferenceOrder)
{
    // Random (when, seq) schedules must drain in exactly the order a
    // reference sort by (when, seq) produces — the determinism
    // contract both kernels inherit.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Random rng(seed);
        LadderQueue q;
        std::vector<std::pair<Tick, std::uint64_t>> ref;
        std::uint64_t seq = 0;
        for (int i = 0; i < 5000; ++i) {
            // Mixed distances: mostly near-now, some mid, a thin
            // far tail — the machine's real tick distribution.
            Tick when;
            std::uint64_t pick = rng.below(100);
            if (pick < 70)
                when = rng.below(1 << 10);
            else if (pick < 95)
                when = rng.below(1 << 20);
            else
                when = rng.below(std::uint64_t{1} << 40);
            ref.emplace_back(when, seq);
            q.push(when, seq++, 0, []() {});
        }
        std::stable_sort(ref.begin(), ref.end());
        EXPECT_EQ(q.size(), ref.size());
        EXPECT_EQ(drain(q), ref) << "seed " << seed;
    }
}

TEST(LadderQueue, SameTickBatchPopsInSeqOrder)
{
    LadderQueue q;
    for (std::uint64_t s = 0; s < 4096; ++s)
        q.push(77, s, 0, []() {});
    auto order = drain(q);
    ASSERT_EQ(order.size(), 4096u);
    for (std::uint64_t s = 0; s < order.size(); ++s) {
        EXPECT_EQ(order[s].first, 77u);
        EXPECT_EQ(order[s].second, s);
    }
}

TEST(LadderQueue, FarFutureEventsLandInOverflowAndStillOrder)
{
    // Watchdog-style outliers land in the overflow rung; rebasing
    // must carve them back into the ring in order, interleaved with
    // nearer events pushed later.
    LadderQueue q;
    std::uint64_t seq = 0;
    std::vector<std::pair<Tick, std::uint64_t>> ref;
    for (int i = 0; i < 16; ++i) {
        Tick far = std::uint64_t{1} << (30 + i % 8);
        ref.emplace_back(far, seq);
        q.push(far, seq++, 0, []() {});
    }
    for (Tick t = 0; t < 64; ++t) {
        ref.emplace_back(t, seq);
        q.push(t, seq++, 0, []() {});
    }
    std::stable_sort(ref.begin(), ref.end());
    EXPECT_EQ(drain(q), ref);
}

TEST(LadderQueue, InterleavedPushPopKeepsGlobalOrder)
{
    // Pops interleaved with pushes of later events — the pattern a
    // running simulation produces — must never emit a tick smaller
    // than one already popped.
    Random rng(99);
    LadderQueue q;
    std::uint64_t seq = 0;
    Tick clock = 0;
    for (int i = 0; i < 200; ++i)
        q.push(rng.below(1000), seq++, 0, []() {});
    int popped = 0;
    while (!q.empty()) {
        EventNode *n = q.pop();
        EXPECT_GE(n->when, clock);
        clock = n->when;
        q.release(n);
        if (++popped % 3 == 0) {
            // Handlers schedule strictly at-or-after the clock.
            q.push(clock + rng.below(2000), seq++, 0, []() {});
            if (popped < 600)
                q.push(clock, seq++, 0, []() {});
        }
    }
    EXPECT_GT(popped, 200);
}

TEST(LadderQueue, PeekMatchesNextPopAndMinWhen)
{
    LadderQueue q;
    q.push(30, 0, 0, []() {});
    q.push(10, 1, 0, []() {});
    q.push(20, 2, 0, []() {});
    EXPECT_EQ(q.min_when(), 10u);
    const EventNode *p = q.peek();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->when, 10u);
    EventNode *n = q.pop();
    EXPECT_EQ(n->when, 10u);
    q.release(n);
    EXPECT_EQ(q.min_when(), 20u);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.min_when(), max_tick);
    EXPECT_EQ(q.peek(), nullptr);
}

TEST(LadderQueue, PoolGrowsOnceThenRecyclesForever)
{
    LadderQueue q;
    std::uint64_t seq = 0;
    // First wave: deeper than one pool block, so the pool must grow.
    for (int i = 0; i < 1000; ++i)
        q.push(static_cast<Tick>(i), seq++, 0, []() {});
    drain(q);
    EventPoolStats st1 = q.pool_stats();
    EXPECT_GE(st1.blocks, 1000 / EventPool::block_nodes);
    EXPECT_EQ(st1.misses, 1000u);

    // Steady state: the same depth again must be served entirely
    // from the freelist — zero new blocks, zero misses.
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 1000; ++i)
            q.push(static_cast<Tick>(i), seq++, 0, []() {});
        drain(q);
    }
    EventPoolStats st2 = q.pool_stats();
    EXPECT_EQ(st2.misses, st1.misses);
    EXPECT_EQ(st2.blocks, st1.blocks);
    EXPECT_EQ(st2.hits, st1.hits + 5u * 1000u);
}

TEST(LadderQueue, SimulatorSteadyStateAllocatesNothing)
{
    // The kernel-level zero-allocation contract: after a warmup
    // round, scheduling and draining identical work must not carve
    // new nodes or spill closures to the heap.
    Simulator sim;
    auto wave = [&]() {
        for (int i = 0; i < 500; ++i)
            sim.schedule_after(static_cast<Tick>(i % 7), []() {});
        sim.run();
    };
    wave();
    SimAllocStats warm = sim.alloc_stats();
    wave();
    wave();
    SimAllocStats steady = sim.alloc_stats();
    EXPECT_EQ(steady.poolMisses, warm.poolMisses);
    EXPECT_EQ(steady.poolBlocks, warm.poolBlocks);
    EXPECT_EQ(steady.fnHeap, warm.fnHeap);
    EXPECT_GT(steady.poolHits, warm.poolHits);
}

TEST(LadderQueue, ScheduleDuringRunUntilLandsInOrder)
{
    // Events scheduled by handlers inside a bounded run_until() — at
    // the limit, past it, and at the current tick — execute in the
    // same global order a full run() would produce.
    Simulator sim;
    std::vector<int> order;
    sim.schedule(10, [&]() {
        order.push_back(1);
        sim.schedule(15, [&]() { order.push_back(3); });
        sim.schedule(40, [&]() { order.push_back(5); });
        sim.schedule_after(0, [&]() { order.push_back(2); });
    });
    sim.schedule(20, [&]() { order.push_back(4); });
    sim.run_until(20);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(sim.pending(), 1u);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(LadderQueueDeath, PushingMaxTickPanics)
{
    // max_tick is the "empty" sentinel; scheduling there would make
    // the queue lie about being drained.
    LadderQueue q;
    EXPECT_DEATH(q.push(max_tick, 0, 0, []() {}), "tick horizon");
}

TEST(TickHistory, TruncationIsSurfacedNotSilent)
{
    Simulator sim;
    TickHistory hist;
    hist.set_keep_log(4);
    sim.set_history(&hist);
    for (int i = 0; i < 10; ++i)
        sim.schedule(static_cast<Tick>(i), []() {});
    sim.run();
    EXPECT_TRUE(hist.truncated());
    EXPECT_EQ(hist.log().size(), 4u);
    EXPECT_EQ(hist.events(), 10u);
    EXPECT_NE(hist.digest().find("truncated"), std::string::npos);

    TickHistory full;
    full.set_keep_log(64);
    Simulator sim2;
    sim2.set_history(&full);
    for (int i = 0; i < 10; ++i)
        sim2.schedule(static_cast<Tick>(i), []() {});
    sim2.run();
    EXPECT_FALSE(full.truncated());
    EXPECT_EQ(full.digest().find("truncated"), std::string::npos);
}

TEST(BufferPool, RecyclesCapacityAndCountsTraffic)
{
    hw::BufferPool pool;
    std::vector<std::uint8_t> buf = pool.acquire();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(pool.stats().misses, 1u);

    buf.resize(4096);
    const std::uint8_t *raw = buf.data();
    pool.release(std::move(buf));
    EXPECT_EQ(pool.stats().releases, 1u);

    std::vector<std::uint8_t> again = pool.acquire();
    EXPECT_TRUE(again.empty());
    EXPECT_GE(again.capacity(), 4096u);
    EXPECT_EQ(again.data(), raw); // the same allocation came back
    EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPool, DiscardsOversizedAndOverflowBuffers)
{
    hw::BufferPool pool;
    // Capacity-zero releases are ignored entirely.
    pool.release({});
    EXPECT_EQ(pool.stats().releases, 0u);

    // A buffer past the retained-capacity cap is freed, not parked.
    std::vector<std::uint8_t> huge(hw::BufferPool::max_retained_capacity +
                                   1);
    pool.release(std::move(huge));
    EXPECT_EQ(pool.stats().discards, 1u);

    // Beyond max_retained parked buffers, further releases discard.
    for (std::size_t i = 0; i < hw::BufferPool::max_retained + 8; ++i) {
        std::vector<std::uint8_t> b(64);
        pool.release(std::move(b));
    }
    EXPECT_EQ(pool.stats().discards, 1u + 8u);
}
