/**
 * @file
 * Flag-wait watchdog and cell-failure degradation tests.
 *
 * A blocked completion wait past the watchdog deadline must surface a
 * typed CommError carrying a machine-wide wait-graph dump — never
 * hang (a CTest TIMEOUT guards the whole binary). Killing a cell via
 * the fault plan must let the survivors reconfigure: barriers release
 * without the dead member and reductions run over the live group with
 * the degraded-result marker set.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/program.hh"
#include "hw/config.hh"
#include "hw/machine.hh"
#include "sim/fault.hh"

using namespace ap;

TEST(Watchdog, DroppedFlagUpdateRaisesTypedErrorWithWaitGraph)
{
    // Pinned seed, total loss, no retries: the receiver's flag can
    // never arrive. Without the watchdog this wait_flag blocks until
    // the event queue drains and the run reports deadlock; with it
    // the wait converts into a CommError whose message embeds the
    // wait graph naming the blocked cell, flag address and target.
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.faults = sim::FaultPlan::drops(31, 1.0);
    cfg.retry.watchdogUs = 500.0;
    hw::Machine m(cfg);

    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        Addr flag = ctx.alloc_flag();
        if (ctx.id() == 0) {
            Addr buf = ctx.alloc(64);
            ctx.poke_u32(buf, 7);
            ctx.put(1, 0x800, buf, 64, no_flag, flag, false);
            return; // fire-and-forget sender
        }
        ctx.wait_flag(flag, 1); // the update was dropped
    });

    EXPECT_FALSE(r.deadlock) << "watchdog failed to unblock the wait";
    ASSERT_EQ(r.errors.size(), 1u);
    const std::string &err = r.errors.front();
    EXPECT_NE(err.find("watchdog expired"), std::string::npos) << err;
    EXPECT_NE(err.find("wait_flag"), std::string::npos) << err;
    // The wait-graph dump lists every cell's state.
    EXPECT_NE(err.find("cell 0"), std::string::npos) << err;
    EXPECT_NE(err.find("cell 1"), std::string::npos) << err;
    EXPECT_NE(err.find("blocked"), std::string::npos) << err;
}

TEST(Watchdog, AckWaitIsGuardedToo)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(2);
    cfg.faults = sim::FaultPlan::drops(33, 1.0);
    cfg.retry.watchdogUs = 500.0;
    hw::Machine m(cfg);

    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        if (ctx.id() != 0)
            return;
        Addr buf = ctx.alloc(64);
        ctx.put(1, 0x800, buf, 64, no_flag, no_flag, true);
        ctx.wait_all_acks(); // the GET-reply ack was dropped
    });

    EXPECT_FALSE(r.deadlock);
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_NE(r.errors.front().find("wait_acks"), std::string::npos)
        << r.errors.front();
}

TEST(CellFailure, SurvivorsFinishBarrierAndReductionsDegraded)
{
    // Kill cell 3 at t=100us while everyone computes. The survivors
    // must cross the next barrier (the S-net releases without the
    // dead member), and both the scalar and the vector reduction must
    // reconfigure to the live group — flagged degraded, with values
    // folded over the survivors only.
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(4);
    cfg.faults.seed = 41;
    cfg.faults.kills.push_back({3, 100.0});
    cfg.retry.watchdogUs = 100000.0;
    hw::Machine m(cfg);

    int degradedMarks = 0;
    int wrongScalar = 0;
    int wrongVector = 0;
    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        CellId me = ctx.id();
        ctx.compute_us(200.0); // the kill lands inside this
        if (ctx.owner().cell_failed(me))
            return; // a dead cell's body bows out

        ctx.barrier();
        double s = ctx.allreduce(static_cast<double>(me + 1),
                                 core::ReduceOp::sum);
        if (!ctx.last_collective_degraded())
            ++degradedMarks; // inverted below: must be degraded
        if (s != 1.0 + 2.0 + 3.0) // survivors 0,1,2 contribute
            ++wrongScalar;

        Addr vec = ctx.alloc(2 * 8);
        ctx.poke_f64(vec, static_cast<double>(me));
        ctx.poke_f64(vec + 8, 10.0);
        ctx.allreduce_vector(vec, 2, core::ReduceOp::sum);
        if (!ctx.last_collective_degraded())
            ++degradedMarks;
        if (ctx.peek_f64(vec) != 0.0 + 1.0 + 2.0)
            ++wrongVector;
        if (ctx.peek_f64(vec + 8) != 30.0)
            ++wrongVector;

        ctx.barrier();
        EXPECT_TRUE(ctx.last_collective_degraded());
        EXPECT_GT(ctx.stats().degradedCollectives, 0u);
    });

    EXPECT_FALSE(r.failed()) << (r.errors.empty()
                                     ? "deadlock"
                                     : r.errors.front());
    ASSERT_EQ(r.failedCells.size(), 1u);
    EXPECT_EQ(r.failedCells.front(), 3);
    EXPECT_EQ(degradedMarks, 0) << "a survivor's collective was not "
                                   "marked degraded";
    EXPECT_EQ(wrongScalar, 0);
    EXPECT_EQ(wrongVector, 0);
    EXPECT_TRUE(m.any_failed());
    EXPECT_TRUE(m.cell_failed(3));
}

TEST(CellFailure, DeadCellBlockedInWaitIsExcusedNotAnError)
{
    // Cell 3 is parked in a wait that can never complete when the
    // kill lands. The watchdog converts its wait into a cell_failed
    // CommError, which run_spmd files under failedCells — the run
    // itself still passes.
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(4);
    cfg.faults.seed = 43;
    cfg.faults.kills.push_back({3, 100.0});
    cfg.retry.watchdogUs = 1000.0;
    hw::Machine m(cfg);

    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        CellId me = ctx.id();
        if (me == 3) {
            Addr flag = ctx.alloc_flag();
            ctx.wait_flag(flag, 1); // nobody will ever bump this
            return;
        }
        ctx.compute_us(200.0);
        ctx.barrier();
    });

    EXPECT_FALSE(r.failed()) << (r.errors.empty()
                                     ? "deadlock"
                                     : r.errors.front());
    ASSERT_EQ(r.failedCells.size(), 1u);
    EXPECT_EQ(r.failedCells.front(), 3);
}

TEST(CellFailure, GroupReduceFiltersDeadMembers)
{
    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(4);
    cfg.faults.seed = 47;
    cfg.faults.kills.push_back({1, 50.0});
    cfg.retry.watchdogUs = 100000.0;
    hw::Machine m(cfg);

    int wrong = 0;
    core::SpmdResult r = core::run_spmd(m, [&](core::Context &ctx) {
        CellId me = ctx.id();
        ctx.compute_us(100.0);
        if (ctx.owner().cell_failed(me))
            return;
        core::Group g = core::Group::all(ctx.nprocs());
        double s = ctx.allreduce_group(
            g, static_cast<double>(me + 1), core::ReduceOp::sum);
        // Dead member 1 contributes nothing: 1 + 3 + 4.
        if (s != 8.0)
            ++wrong;
        EXPECT_TRUE(ctx.last_collective_degraded());
    });

    EXPECT_FALSE(r.failed()) << (r.errors.empty()
                                     ? "deadlock"
                                     : r.errors.front());
    EXPECT_EQ(wrong, 0);
}
