#include "runtime/garray.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ap::rt
{

// ------------------------------------------------------------- GArray1D

GArray1D::GArray1D(core::Context &ctx, Decomp1D decomp)
    : ctx(ctx), dist(decomp)
{
    // Symmetric allocation: every cell reserves the worst-case local
    // extent so the base address is identical machine-wide.
    int max_local = 0;
    for (CellId c = 0; c < dist.cells(); ++c)
        max_local = std::max(max_local, dist.local_count(c));
    baseAddr = ctx.alloc(static_cast<std::size_t>(max_local) * 8);
    tmpAddr = ctx.alloc(8);
}

Addr
GArray1D::addr_of(int i) const
{
    return baseAddr + static_cast<Addr>(dist.local_index(i)) * 8;
}

double
GArray1D::get_local(int i) const
{
    if (!is_local(i))
        panic("cell %d: get_local of element %d owned by cell %d",
              ctx.id(), i, owner(i));
    return ctx.peek_f64(addr_of(i));
}

void
GArray1D::set_local(int i, double v)
{
    if (!is_local(i))
        panic("cell %d: set_local of element %d owned by cell %d",
              ctx.id(), i, owner(i));
    ctx.poke_f64(addr_of(i), v);
}

double
GArray1D::read(int i)
{
    if (is_local(i))
        return get_local(i);
    ctx.read_remote(owner(i), addr_of(i), tmpAddr, 8);
    return ctx.peek_f64(tmpAddr);
}

void
GArray1D::write(int i, double v)
{
    if (is_local(i)) {
        set_local(i, v);
        return;
    }
    ctx.poke_f64(tmpAddr, v);
    ctx.write_remote(owner(i), addr_of(i), tmpAddr, 8);
}

// ------------------------------------------------------------- GArray2D

GArray2D::GArray2D(core::Context &ctx, int rows, int cols,
                   SplitDim split, int overlap)
    : ctx(ctx), nRows(rows), nCols(cols), splitDim(split),
      ovl(overlap),
      dist(Decomp1D::block(split == SplitDim::rows ? rows : cols,
                           ctx.nprocs()))
{
    if (overlap < 0)
        fatal("negative overlap width");
    // Worst-case band plus both overlap fringes, symmetric.
    std::size_t band =
        static_cast<std::size_t>(dist.block_size()) + 2 * ovl;
    std::size_t other = static_cast<std::size_t>(
        splitDim == SplitDim::rows ? nCols : nRows);
    baseAddr = ctx.alloc(band * other * 8);
}

int
GArray2D::band_lo(CellId cell) const
{
    return dist.block_lo(cell);
}

int
GArray2D::band_count(CellId cell) const
{
    return dist.local_count(cell);
}

Addr
GArray2D::row_pitch() const
{
    if (splitDim == SplitDim::rows)
        return static_cast<Addr>(nCols) * 8;
    return (static_cast<Addr>(dist.block_size()) + 2 * ovl) * 8;
}

Addr
GArray2D::addr_on(CellId cell, int r, int c) const
{
    // Layout (row split):   [band_count + 2*ovl rows] x nCols
    // Layout (col split):   nRows x [band_count + 2*ovl cols]
    int s = splitDim == SplitDim::rows ? r : c;
    int off = s - band_lo(cell) + ovl; // position inside the band
    if (off < 0 ||
        off >= band_count(cell) + 2 * ovl)
        panic("cell %d: (%d, %d) outside band+overlap of cell %d",
              ctx.id(), r, c, cell);
    if (splitDim == SplitDim::rows) {
        return baseAddr +
               (static_cast<Addr>(off) * nCols +
                static_cast<Addr>(c)) *
                   8;
    }
    Addr pitch_elems = static_cast<Addr>(dist.block_size()) + 2 * ovl;
    return baseAddr +
           (static_cast<Addr>(r) * pitch_elems +
            static_cast<Addr>(off)) *
               8;
}

bool
GArray2D::is_local(int r, int c) const
{
    int s = splitDim == SplitDim::rows ? r : c;
    int off = s - band_lo(ctx.id()) + ovl;
    return off >= 0 && off < band_count(ctx.id()) + 2 * ovl;
}

double
GArray2D::get_local(int r, int c) const
{
    return ctx.peek_f64(addr_on(ctx.id(), r, c));
}

void
GArray2D::set_local(int r, int c, double v)
{
    ctx.poke_f64(addr_on(ctx.id(), r, c), v);
}

} // namespace ap::rt
