/**
 * @file
 * The VPP Fortran run-time system (Section 2.1-2.2).
 *
 * "The translator translates a VPP Fortran program into FORTRAN77
 * sequential code with run-time system calls for each processing
 * element. ... The translator inserts an index calculation code which
 * converts global addresses to local addresses. It also inserts
 * communication library calls for accessing remote data."
 *
 * This class is that run-time system: the collective data transfers
 * the compiler emits (SPREAD MOVE, OVERLAP FIX, transpose
 * redistribution) lowered onto (stride) PUT/GET with the
 * Ack & Barrier completion model. Every transfer it issues is marked
 * viaRts so MLSim bills the translator-inserted address arithmetic as
 * "Run-time system" time.
 *
 * The acknowledgement policy is selectable: the paper's current
 * implementation "requires an acknowledgment for every put() and
 * put_stride()", and notes that acknowledging only the last PUT per
 * destination would cut the GET traffic dramatically — that planned
 * improvement is AckPolicy::last_put_per_dest, and the ack ablation
 * bench measures exactly this difference.
 */

#ifndef AP_RT_RTS_HH
#define AP_RT_RTS_HH

#include <cstdint>
#include <set>
#include <vector>

#include "core/context.hh"
#include "runtime/garray.hh"

namespace ap::rt
{

/** When PUTs carry acknowledgement probes. */
enum class AckPolicy : std::uint8_t
{
    every_put,         ///< paper's current implementation (5.4)
    last_put_per_dest, ///< the planned improvement (5.4)
};

/** Counters the runtime keeps per cell. */
struct RuntimeStats
{
    std::uint64_t putsIssued = 0;
    std::uint64_t getsIssued = 0;
    std::uint64_t acksIssued = 0;
    std::uint64_t moves = 0;
    std::uint64_t retriedPuts = 0;   ///< reissues under a RetryPolicy
    std::uint64_t verifyReads = 0;   ///< read-back verification GETs
};

/** The per-cell run-time system instance. */
class Runtime
{
  public:
    /**
     * @param ctx this cell's context
     * @param policy acknowledgement policy for collective moves
     */
    explicit Runtime(core::Context &ctx,
                     AckPolicy policy = AckPolicy::every_put);

    /** Unregisters this runtime's stats subtree from the machine. */
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    core::Context &context() { return ctx; }
    AckPolicy policy() const { return ackPolicy; }
    const RuntimeStats &stats() const { return rtStats; }

    // -- collective data transfers -------------------------------------

    /**
     * OVERLAP FIX: refresh @p a's overlap areas from the owning
     * neighbours (Figure 2). Column-split arrays use stride PUTs;
     * row-split arrays use contiguous PUTs. Collective.
     */
    void overlap_fix(GArray2D &a);

    /**
     * OVERLAP FIX over several arrays in one completion round (the
     * compiler aggregates adjacent fixes); under the last-PUT ack
     * policy this needs only one probe per neighbour regardless of
     * how many arrays move. Collective.
     */
    void overlap_fix_many(std::vector<GArray2D *> arrays);

    /**
     * SPREAD MOVE (List 1): dst(j) = src(j, fixed_col) for all j.
     * @p src must be row-split; stride PUTs gather the column.
     * Collective.
     */
    void spread_move_col(GArray1D &dst, GArray2D &src, int fixed_col);

    /**
     * SPREAD MOVE: dst(j) = src(fixed_row, j) for all j; contiguous
     * PUTs. @p src must be row-split. Collective.
     */
    void spread_move_row(GArray1D &dst, GArray2D &src, int fixed_row);

    /**
     * Transpose redistribution: dst = src^T for square row-split
     * arrays (the FT/matrix pattern): one stride PUT per destination
     * band plus a local rearrangement pass. Collective.
     */
    void transpose(GArray2D &dst, GArray2D &src);

    /** MOVEWAIT: complete all outstanding collective transfers. */
    void movewait();

  private:
    /** One collective PUT awaiting completion (replayable). */
    struct PendingPut
    {
        CellId dst;
        Addr raddr;
        Addr laddr;
        net::StrideSpec sendSpec;
        net::StrideSpec recvSpec;
    };

    /** Exchange one array's boundaries (no completion wait). */
    void fix_one(GArray2D &a);

    /** Gather the local source bytes of a pending PUT. */
    std::vector<std::uint8_t> gather_local(const PendingPut &p);

    /**
     * Read the remote region of @p p back and compare it with the
     * local source. @return true when the destination holds the data.
     */
    bool verify_put(const PendingPut &p, Tick timeout);

    /** movewait under a RetryPolicy: replay + verify + barrier. */
    void movewait_hardened();

    /** Issue one runtime PUT under the ack policy. */
    void rts_put(CellId dst, Addr raddr, Addr laddr,
                 net::StrideSpec send_spec, net::StrideSpec recv_spec,
                 Addr recv_flag);

    /** Close out the per-destination ack bookkeeping. */
    void flush_acks();

    core::Context &ctx;
    AckPolicy ackPolicy;
    /** destinations with an unacknowledged PUT (last-put policy). */
    std::set<CellId> dirtyDests;
    /** shared completion flag for collective receives. */
    Addr moveFlag;
    /** cumulative arrivals expected on moveFlag. */
    std::uint32_t moveFlagTarget = 0;
    /** remote PUTs of the current round (cleared by movewait). */
    std::vector<PendingPut> pendingPuts;
    /** completion flag of verification reads. */
    Addr verifyFlag = 0;
    /** read-back landing area. */
    Addr verifyBuf = 0;
    std::size_t verifyBufBytes = 0;
    RuntimeStats rtStats;
};

} // namespace ap::rt

#endif // AP_RT_RTS_HH
