/**
 * @file
 * Data decompositions of the VPP Fortran / HPF model (Section 2.1).
 *
 * "Both models include global memory space, block and cyclic
 * decomposition, and SPMD program execution." The index partition
 * directive corresponds to ALIGN + DISTRIBUTE in HPF. This class is
 * the global-index <-> (owner cell, local index) math the translator
 * inserts around every distributed array reference.
 */

#ifndef AP_RT_DECOMP_HH
#define AP_RT_DECOMP_HH

#include <cstdint>

#include "base/types.hh"

namespace ap::rt
{

/** How a dimension is spread over cells. */
enum class DecompKind : std::uint8_t
{
    block,  ///< contiguous chunks (ceil(n/p) per cell)
    cyclic, ///< round-robin single elements
};

/** A one-dimensional decomposition of n indices over p cells. */
class Decomp1D
{
  public:
    /**
     * @param kind block or cyclic
     * @param n global extent
     * @param cells number of cells
     */
    Decomp1D(DecompKind kind, int n, int cells);

    /** Block decomposition of @p n indices over @p cells. */
    static Decomp1D
    block(int n, int cells)
    {
        return Decomp1D(DecompKind::block, n, cells);
    }

    /** Cyclic decomposition of @p n indices over @p cells. */
    static Decomp1D
    cyclic(int n, int cells)
    {
        return Decomp1D(DecompKind::cyclic, n, cells);
    }

    DecompKind kind() const { return decompKind; }
    int extent() const { return n; }
    int cells() const { return p; }

    /** Owner cell of global index @p i. */
    CellId owner(int i) const;

    /** Local index of global index @p i on its owner. */
    int local_index(int i) const;

    /** Number of indices owned by @p cell. */
    int local_count(CellId cell) const;

    /** Global index of local index @p li on @p cell. */
    int global_index(CellId cell, int li) const;

    /** First global index owned by @p cell (block only). */
    int block_lo(CellId cell) const;

    /** Block size (ceil(n / p)); block decomposition only. */
    int
    block_size() const
    {
        return (n + p - 1) / p;
    }

  private:
    void check_index(int i) const;

    DecompKind decompKind;
    int n;
    int p;
};

} // namespace ap::rt

#endif // AP_RT_DECOMP_HH
