/**
 * @file
 * Global arrays: the VPP Fortran global memory space (Figure 1).
 *
 * "Processors share global memory space ... Because objects in global
 * memory space are accessible to all processors, the programmer can
 * use a memory model similar to that of conventional uniprocessor
 * machines." A GArray is a distributed array of doubles whose owner
 * cell holds each element in its local memory at an address every
 * cell can compute — which is exactly what lets the runtime turn
 * global references into direct remote accesses (PUT/GET) with no
 * SEND/RECEIVE pairing.
 *
 * Construction is collective and symmetric: every cell allocates the
 * same local extent at the same address.
 */

#ifndef AP_RT_GARRAY_HH
#define AP_RT_GARRAY_HH

#include "core/context.hh"
#include "runtime/decomp.hh"

namespace ap::rt
{

/** A 1-D distributed array of doubles. */
class GArray1D
{
  public:
    /**
     * Collectively build a global array (call on every cell).
     * @param ctx the calling cell's context
     * @param decomp how indices map to cells
     */
    GArray1D(core::Context &ctx, Decomp1D decomp);

    int size() const { return dist.extent(); }
    const Decomp1D &decomp() const { return dist; }

    /** Owner cell of element @p i. */
    CellId owner(int i) const { return dist.owner(i); }

    /** @return true when this cell owns element @p i. */
    bool is_local(int i) const { return owner(i) == ctx.id(); }

    /** Logical address of element @p i in its owner's memory. */
    Addr addr_of(int i) const;

    /** Local base address (same on every cell). */
    Addr base() const { return baseAddr; }

    /** Elements owned by this cell. */
    int local_count() const { return dist.local_count(ctx.id()); }

    /** Read a locally owned element. */
    double get_local(int i) const;

    /** Write a locally owned element. */
    void set_local(int i, double v);

    /** Blocking remote read of any element (readRemote). */
    double read(int i);

    /** Blocking remote write of any element (writeRemote). */
    void write(int i, double v);

  private:
    core::Context &ctx;
    Decomp1D dist;
    Addr baseAddr;
    Addr tmpAddr; ///< scratch word for remote element access
};

/** Which dimension of a 2-D array is decomposed. */
enum class SplitDim : std::uint8_t
{
    rows, ///< dimension 1: each cell owns a band of rows
    cols, ///< dimension 2: each cell owns a band of columns
};

/**
 * A 2-D distributed array of doubles (row-major), block-decomposed
 * along one dimension, with an optional overlap area — the boundary
 * data replicated in adjacent cells (Figure 2).
 */
class GArray2D
{
  public:
    /**
     * Collectively build a 2-D global array.
     * @param ctx the calling cell's context
     * @param rows global rows
     * @param cols global columns
     * @param split which dimension is distributed (block)
     * @param overlap replicated boundary width on each side
     */
    GArray2D(core::Context &ctx, int rows, int cols, SplitDim split,
             int overlap = 0);

    int rows() const { return nRows; }
    int cols() const { return nCols; }
    SplitDim split() const { return splitDim; }
    int overlap() const { return ovl; }
    const Decomp1D &decomp() const { return dist; }

    /** Owner cell of element (r, c). */
    CellId
    owner(int r, int c) const
    {
        return dist.owner(splitDim == SplitDim::rows ? r : c);
    }

    /** First split-dimension index owned by @p cell. */
    int lo(CellId cell) const { return dist.block_lo(cell); }

    /** Split-dimension indices owned by @p cell. */
    int count(CellId cell) const { return dist.local_count(cell); }

    /**
     * Logical address of (r, c) as stored on @p cell. The element
     * must lie in @p cell's owned band or its overlap area.
     */
    Addr addr_on(CellId cell, int r, int c) const;

    /** Logical address of (r, c) on its owner. */
    Addr
    addr_of(int r, int c) const
    {
        return addr_on(owner(r, c), r, c);
    }

    /** Local row stride in bytes (distance between rows). */
    Addr row_pitch() const;

    /** Read an element available locally (owned or overlap). */
    double get_local(int r, int c) const;

    /** Write an element available locally (owned or overlap). */
    void set_local(int r, int c, double v);

    /** @return true when (r, c) is readable on this cell. */
    bool is_local(int r, int c) const;

  private:
    int band_lo(CellId cell) const;
    int band_count(CellId cell) const;

    core::Context &ctx;
    int nRows;
    int nCols;
    SplitDim splitDim;
    int ovl;
    Decomp1D dist;
    Addr baseAddr;
};

} // namespace ap::rt

#endif // AP_RT_GARRAY_HH
