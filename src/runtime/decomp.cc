#include "runtime/decomp.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ap::rt
{

Decomp1D::Decomp1D(DecompKind kind, int n, int cells)
    : decompKind(kind), n(n), p(cells)
{
    if (n < 1)
        fatal("decomposition needs a positive extent (got %d)", n);
    if (cells < 1)
        fatal("decomposition needs at least one cell");
}

void
Decomp1D::check_index(int i) const
{
    if (i < 0 || i >= n)
        panic("global index %d outside [0, %d)", i, n);
}

CellId
Decomp1D::owner(int i) const
{
    check_index(i);
    if (decompKind == DecompKind::block)
        return i / block_size();
    return i % p;
}

int
Decomp1D::local_index(int i) const
{
    check_index(i);
    if (decompKind == DecompKind::block)
        return i % block_size();
    return i / p;
}

int
Decomp1D::local_count(CellId cell) const
{
    if (cell < 0 || cell >= p)
        panic("cell %d outside decomposition of %d cells", cell, p);
    if (decompKind == DecompKind::block) {
        int b = block_size();
        int lo = cell * b;
        if (lo >= n)
            return 0;
        return std::min(b, n - lo);
    }
    // cyclic: cells with id < n % p get one extra.
    return n / p + (cell < n % p ? 1 : 0);
}

int
Decomp1D::global_index(CellId cell, int li) const
{
    if (li < 0 || li >= local_count(cell))
        panic("local index %d outside cell %d's %d elements", li,
              cell, local_count(cell));
    if (decompKind == DecompKind::block)
        return cell * block_size() + li;
    return li * p + cell;
}

int
Decomp1D::block_lo(CellId cell) const
{
    if (decompKind != DecompKind::block)
        panic("block_lo on a non-block decomposition");
    return cell * block_size();
}

} // namespace ap::rt
