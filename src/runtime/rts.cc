#include "runtime/rts.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "obs/debug.hh"

namespace ap::rt
{

Runtime::Runtime(core::Context &ctx, AckPolicy policy)
    : ctx(ctx), ackPolicy(policy)
{
    moveFlag = ctx.alloc_flag();

    // The runtime is shorter-lived than the machine, so its counters
    // join the machine's registry here and leave in the destructor.
    obs::StatsRegistry &reg = ctx.owner().stats_registry();
    std::string p = strprintf("cell%d.rts.", ctx.id());
    reg.add_counter(p + "puts_issued", &rtStats.putsIssued);
    reg.add_counter(p + "gets_issued", &rtStats.getsIssued);
    reg.add_counter(p + "acks_issued", &rtStats.acksIssued);
    reg.add_counter(p + "moves", &rtStats.moves);
    reg.add_counter(p + "retried_puts", &rtStats.retriedPuts);
    reg.add_counter(p + "verify_reads", &rtStats.verifyReads);
}

Runtime::~Runtime()
{
    ctx.owner().stats_registry().remove_prefix(
        strprintf("cell%d.rts.", ctx.id()));
}

void
Runtime::rts_put(CellId dst, Addr raddr, Addr laddr,
                 net::StrideSpec send_spec, net::StrideSpec recv_spec,
                 Addr recv_flag)
{
    ++rtStats.putsIssued;
    if (dst == ctx.id()) {
        // Local part of a collective move: the translator generates a
        // plain copy, no communication ("except for PUT for local
        // cell", Section 5.4).
        std::vector<std::uint8_t> buf;
        Addr cur = laddr;
        buf.resize(send_spec.total_bytes());
        std::size_t off = 0;
        for (std::uint32_t i = 0; i < send_spec.count; ++i) {
            ctx.peek(cur, std::span<std::uint8_t>(buf.data() + off,
                                                  send_spec.itemSize));
            off += send_spec.itemSize;
            cur += send_spec.itemSize + send_spec.skip;
        }
        cur = raddr;
        off = 0;
        for (std::uint32_t i = 0; i < recv_spec.count; ++i) {
            ctx.poke(cur,
                     std::span<const std::uint8_t>(buf.data() + off,
                                                   recv_spec.itemSize));
            off += recv_spec.itemSize;
            cur += recv_spec.itemSize + recv_spec.skip;
        }
        // The local copy still satisfies the receiver-side count.
        if (recv_flag != no_flag)
            ++moveFlagTarget; // and bump it ourselves below
        ctx.compute_us(0.01 *
                       static_cast<double>(send_spec.total_bytes()) /
                       8.0);
        if (recv_flag != no_flag) {
            // Emulate the flag update a network PUT would perform.
            ctx.poke_u32(recv_flag, ctx.peek_u32(recv_flag) + 1);
        }
        return;
    }

    bool ack = ackPolicy == AckPolicy::every_put;
    if (ack)
        ++rtStats.acksIssued;
    else
        dirtyDests.insert(dst);

    if (ctx.owner().config().retry.enabled())
        pendingPuts.push_back(
            PendingPut{dst, raddr, laddr, send_spec, recv_spec});

    ctx.set_rts_mode(true);
    ctx.put_stride(dst, raddr, laddr, ack, no_flag, recv_flag,
                   send_spec, recv_spec);
    ctx.set_rts_mode(false);
}

std::vector<std::uint8_t>
Runtime::gather_local(const PendingPut &p)
{
    std::vector<std::uint8_t> buf(p.sendSpec.total_bytes());
    Addr cur = p.laddr;
    std::size_t off = 0;
    for (std::uint32_t i = 0; i < p.sendSpec.count; ++i) {
        ctx.peek(cur, std::span<std::uint8_t>(buf.data() + off,
                                              p.sendSpec.itemSize));
        off += p.sendSpec.itemSize;
        cur += p.sendSpec.itemSize + p.sendSpec.skip;
    }
    return buf;
}

bool
Runtime::verify_put(const PendingPut &p, Tick timeout)
{
    std::uint32_t bytes =
        static_cast<std::uint32_t>(p.sendSpec.total_bytes());
    if (verifyFlag == 0)
        verifyFlag = ctx.alloc_flag();
    if (verifyBufBytes < bytes) {
        std::size_t cls = 64;
        while (cls < bytes)
            cls *= 2;
        verifyBuf = ctx.alloc(cls);
        verifyBufBytes = cls;
    }

    ++rtStats.verifyReads;
    std::vector<std::uint8_t> want = gather_local(p);
    std::uint32_t before = ctx.flag(verifyFlag);
    ctx.set_rts_mode(true);
    ctx.get_stride(p.dst, p.raddr, verifyBuf, no_flag, verifyFlag,
                   p.recvSpec, net::StrideSpec::contiguous(bytes));
    ctx.set_rts_mode(false);
    bool landed = ctx.wait_flag_for(verifyFlag, before + 1,
                                    ctx.now() + timeout);
    if (!landed)
        return false;
    std::vector<std::uint8_t> got(bytes);
    ctx.peek(verifyBuf, got);
    return got == want;
}

void
Runtime::movewait_hardened()
{
    const hw::RetryPolicy &retry = ctx.owner().config().retry;

    // The acknowledge probes and the receive-count flag both lie
    // under message loss (a probe can survive its dropped PUT; a
    // duplicate bumps the flag twice), so they only gate the fast
    // path. The authority is read-back verification: my transfers are
    // complete when the destination memory holds my bytes. Everyone
    // verifies their own sends, so after the closing barrier all
    // receives have landed too.
    bool allVerified = false;
    for (int attempt = 0; attempt <= retry.maxRetries; ++attempt) {
        // Later attempts back off so a congested window can drain.
        Tick timeout = us_to_ticks(retry.attempt_timeout_us(attempt));
        if (!ctx.wait_all_acks_for(ctx.now() + timeout))
            ctx.resync_acks();
        allVerified = true;
        for (const PendingPut &p : pendingPuts) {
            if (verify_put(p, timeout))
                continue;
            allVerified = false;
            ++rtStats.retriedPuts;
            ctx.set_rts_mode(true);
            ctx.put_stride(p.dst, p.raddr, p.laddr, true, no_flag,
                           moveFlag, p.sendSpec, p.recvSpec);
            ctx.set_rts_mode(false);
        }
        if (allVerified)
            break;
    }
    if (!allVerified) {
        ctx.owner().note_retry_giveup();
        throw core::CommError(
            core::CommError::Kind::timeout, ctx.id(), -1,
            strprintf("cell %d: movewait could not complete %zu "
                      "collective transfers after %d attempts\n%s",
                      ctx.id(), pendingPuts.size(),
                      retry.maxRetries + 1,
                      ctx.owner().postmortem().c_str()));
    }
    pendingPuts.clear();
    ctx.barrier();
    // Retries and duplicates drift the receive-count flag past its
    // nominal target; the barrier above closed the round, so restart
    // the accounting at whatever the flag holds now.
    moveFlagTarget = ctx.flag(moveFlag);
}

void
Runtime::flush_acks()
{
    if (ackPolicy != AckPolicy::last_put_per_dest)
        return;
    // "no PUT operations except the last PUT for every destination
    // cell need acknowledgment" — one probe per touched destination.
    ctx.set_rts_mode(true);
    for (CellId d : dirtyDests) {
        ctx.ack_probe(d);
        ++rtStats.acksIssued;
    }
    ctx.set_rts_mode(false);
    dirtyDests.clear();
}

void
Runtime::movewait()
{
    Tick begin = ctx.owner().sim().now();
    AP_DPRINTF(RTS, "cell %d: movewait (%zu pending puts)", ctx.id(),
               pendingPuts.size());
    flush_acks();
    try {
        if (ctx.owner().config().retry.enabled()) {
            movewait_hardened();
        } else {
            ctx.wait_all_acks();
            ctx.wait_flag(moveFlag, moveFlagTarget);
            ctx.barrier();
        }
    } catch (const core::CommError &e) {
        // Re-tag so a watchdog/timeout names the runtime phase that
        // was blocked, keeping kind and peer intact.
        throw core::CommError(e.kind(), ctx.id(), e.peer(),
                              strprintf("movewait: %s", e.what()));
    }
    if (auto *tr = ctx.owner().tracer())
        tr->span(ctx.id(), "rts", "movewait", begin);
}

// -------------------------------------------------------- OVERLAP FIX

void
Runtime::overlap_fix(GArray2D &a)
{
    overlap_fix_many({&a});
}

void
Runtime::overlap_fix_many(std::vector<GArray2D *> arrays)
{
    for (GArray2D *a : arrays)
        fix_one(*a);
    movewait();
}

void
Runtime::fix_one(GArray2D &a)
{
    ++rtStats.moves;
    int ov = a.overlap();
    if (ov == 0)
        fatal("overlap_fix on an array without an overlap area");

    int p = ctx.nprocs();
    CellId me = ctx.id();
    int my_lo = a.lo(me);
    int my_count = a.count(me);

    // Everyone can compute how many boundary messages they will
    // receive this round (one per existing neighbour).
    int expected = (me > 0 ? 1 : 0) + (me < p - 1 ? 1 : 0);
    moveFlagTarget += static_cast<std::uint32_t>(expected);

    auto send_boundary = [&](CellId nbr, int first_idx) {
        // The ov split-dimension slices starting at first_idx,
        // written into nbr's overlap fringe at the same global
        // coordinates.
        if (a.split() == SplitDim::rows) {
            Addr src = a.addr_on(me, first_idx, 0);
            Addr dst = a.addr_on(nbr, first_idx, 0);
            std::uint32_t bytes = static_cast<std::uint32_t>(
                ov * a.cols() * 8);
            rts_put(nbr, dst, src, net::StrideSpec::contiguous(bytes),
                    net::StrideSpec::contiguous(bytes), moveFlag);
        } else {
            // Column slices: nRows items of ov*8 bytes with the row
            // pitch between them — the stride pattern of Figure 3.
            Addr src = a.addr_on(me, 0, first_idx);
            Addr dst = a.addr_on(nbr, 0, first_idx);
            std::uint32_t item = static_cast<std::uint32_t>(ov * 8);
            std::uint32_t my_skip = static_cast<std::uint32_t>(
                a.row_pitch() - item);
            net::StrideSpec spec{item,
                                 static_cast<std::uint32_t>(a.rows()),
                                 my_skip};
            rts_put(nbr, dst, src, spec, spec, moveFlag);
        }
    };

    if (me > 0)
        send_boundary(me - 1, my_lo);
    if (me < p - 1)
        send_boundary(me + 1, my_lo + my_count - ov);
}

// -------------------------------------------------------- SPREAD MOVE

void
Runtime::spread_move_col(GArray1D &dst, GArray2D &src, int fixed_col)
{
    ++rtStats.moves;
    if (src.split() != SplitDim::rows)
        fatal("spread_move_col needs a row-split source");
    if (dst.size() != src.rows())
        fatal("spread_move_col: extent mismatch (%d vs %d rows)",
              dst.size(), src.rows());

    CellId me = ctx.id();
    int p = ctx.nprocs();
    int my_lo = src.lo(me);
    int my_hi = my_lo + src.count(me);

    // Receive expectation: one message per source band overlapping my
    // destination block (excluding myself — handled locally).
    const Decomp1D &dd = dst.decomp();
    int d_lo = dd.block_lo(me);
    int d_hi = d_lo + dd.local_count(me);
    for (CellId s = 0; s < p; ++s) {
        if (s == me)
            continue;
        int s_lo = src.lo(s);
        int s_hi = s_lo + src.count(s);
        if (std::max(s_lo, d_lo) < std::min(s_hi, d_hi))
            ++moveFlagTarget;
    }

    // Send: my rows j in [my_lo, my_hi) carry src(j, fixed_col),
    // grouped into one stride PUT per destination owner.
    for (CellId d = 0; d < p; ++d) {
        int t_lo = dd.block_lo(d);
        int t_hi = t_lo + dd.local_count(d);
        int lo = std::max(my_lo, t_lo);
        int hi = std::min(my_hi, t_hi);
        if (lo >= hi)
            continue;
        std::uint32_t count = static_cast<std::uint32_t>(hi - lo);
        Addr laddr = src.addr_on(me, lo, fixed_col);
        Addr raddr = dst.base() +
                     static_cast<Addr>(dd.local_index(lo)) * 8;
        net::StrideSpec send_spec{
            8, count,
            static_cast<std::uint32_t>(src.row_pitch() - 8)};
        net::StrideSpec recv_spec = net::StrideSpec::contiguous(
            count * 8);
        rts_put(d, raddr, laddr, send_spec, recv_spec,
                d == me ? no_flag : moveFlag);
    }

    movewait();
}

void
Runtime::spread_move_row(GArray1D &dst, GArray2D &src, int fixed_row)
{
    ++rtStats.moves;
    if (src.split() != SplitDim::rows)
        fatal("spread_move_row needs a row-split source");
    if (dst.size() != src.cols())
        fatal("spread_move_row: extent mismatch (%d vs %d cols)",
              dst.size(), src.cols());

    CellId me = ctx.id();
    int p = ctx.nprocs();
    CellId row_owner = src.owner(fixed_row, 0);

    // Only the fixed row's owner sends; every destination owner with
    // elements expects exactly one message (unless it is the sender).
    const Decomp1D &dd = dst.decomp();
    if (dd.local_count(me) > 0 && me != row_owner)
        ++moveFlagTarget;

    if (me == row_owner) {
        for (CellId d = 0; d < p; ++d) {
            int t_lo = dd.block_lo(d);
            int cnt = dd.local_count(d);
            if (cnt == 0)
                continue;
            std::uint32_t bytes = static_cast<std::uint32_t>(cnt) * 8;
            Addr laddr = src.addr_on(me, fixed_row, t_lo);
            Addr raddr = dst.base();
            rts_put(d, raddr, laddr,
                    net::StrideSpec::contiguous(bytes),
                    net::StrideSpec::contiguous(bytes),
                    d == me ? no_flag : moveFlag);
        }
    }

    movewait();
}

// --------------------------------------------------------- transpose

void
Runtime::transpose(GArray2D &dst, GArray2D &src)
{
    ++rtStats.moves;
    if (src.rows() != src.cols() || dst.rows() != src.rows() ||
        dst.cols() != src.cols())
        fatal("transpose needs square, equally sized arrays");
    if (src.split() != SplitDim::rows ||
        dst.split() != SplitDim::rows)
        fatal("transpose needs row-split arrays");

    CellId me = ctx.id();
    int p = ctx.nprocs();
    int n = src.rows();
    int bs = src.decomp().block_size();

    // Staging area: one (src band x my band) tile per source cell.
    Addr staging = ctx.alloc(static_cast<std::size_t>(n) * bs * 8);

    int my_lo = src.lo(me);
    int my_count = src.count(me);

    moveFlagTarget += static_cast<std::uint32_t>(
        src.count(me) > 0 ? p - 1 : 0);

    // Send src(my rows, d's columns) to d's staging tile.
    for (CellId d = 0; d < p; ++d) {
        int d_lo = dst.lo(d);
        int d_count = dst.count(d);
        if (d_count == 0)
            continue;
        std::uint32_t item = static_cast<std::uint32_t>(d_count * 8);
        net::StrideSpec send_spec{
            item, static_cast<std::uint32_t>(my_count),
            static_cast<std::uint32_t>(src.row_pitch()) - item};
        std::uint32_t bytes = item *
                              static_cast<std::uint32_t>(my_count);
        Addr laddr = src.addr_on(me, my_lo, d_lo);
        // Tile offset: rows of the tile are my global rows.
        Addr raddr = staging +
                     static_cast<Addr>(my_lo) * static_cast<Addr>(
                                                    d_count) *
                         8;
        if (d == me) {
            rts_put(d, raddr, laddr, send_spec,
                    net::StrideSpec::contiguous(bytes), no_flag);
        } else {
            rts_put(d, raddr, laddr, send_spec,
                    net::StrideSpec::contiguous(bytes), moveFlag);
        }
    }

    movewait();

    // Local rearrangement: staging tile (j, i) -> dst(i, j).
    int d_lo = dst.lo(me);
    int d_count = dst.count(me);
    for (int j = 0; j < n; ++j) {
        Addr tile_row = staging +
                        (static_cast<Addr>(j) *
                         static_cast<Addr>(d_count)) *
                            8;
        for (int i = 0; i < d_count; ++i) {
            std::uint8_t buf[8];
            ctx.peek(tile_row + static_cast<Addr>(i) * 8, buf);
            ctx.poke(dst.addr_on(me, d_lo + i, j), buf);
        }
    }
    ctx.compute_us(0.02 * static_cast<double>(n) * d_count);
    ctx.barrier();
}

} // namespace ap::rt
