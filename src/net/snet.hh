/**
 * @file
 * The S-net: dedicated hardware barrier-synchronization network.
 *
 * The paper's machine uses the S-net for all-cell barriers and
 * software (communication registers) for group barriers; this model
 * supports arbitrary member sets so both modes and the group
 * extension can be exercised. A barrier context collects arrivals and
 * releases every member a fixed latency after the last arrival.
 */

#ifndef AP_NET_SNET_HH
#define AP_NET_SNET_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "obs/span.hh"
#include "sim/eventq.hh"

namespace ap::net
{

/** S-net timing parameters (microseconds). */
struct SnetParams
{
    /** Combine-and-release latency after the last arrival. */
    double releaseUs = 1.0;
};

/** Hardware barrier engine. */
class Snet
{
  public:
    /** Identifier of a barrier context. */
    using ContextId = int;

    /**
     * @param sim owning simulator
     * @param cells machine size
     * @param params timing parameters
     */
    Snet(sim::Simulator &sim, int cells, SnetParams params);

    /**
     * Create a barrier context over @p members (empty = all cells).
     * Contexts are reusable: the barrier re-arms after each release.
     * Safe to call while the machine runs (the serving layer creates
     * a partition-scoped context per gang launch): creation locks
     * the same mutex as arrive()/fail_cell(), and contexts live in a
     * deque so concurrent arrivals keep stable references.
     */
    ContextId create_context(std::vector<CellId> members = {});

    /**
     * Cell @p cell arrives at barrier @p ctx; @p on_release fires at
     * the release tick. Arriving twice before release is an error.
     */
    void arrive(ContextId ctx, CellId cell,
                std::function<void()> on_release);

    /** Number of completed barrier episodes on @p ctx. */
    std::uint64_t episodes(ContextId ctx) const;

    /** Completed barrier episodes across every context. */
    std::uint64_t total_episodes() const;

    /**
     * Declare @p cell failed: every context releases as soon as all
     * its *live* members have arrived, so surviving cells complete
     * their barriers instead of waiting on the dead one forever.
     * Contexts already waiting only on @p cell release immediately.
     */
    void fail_cell(CellId cell);

    /** Attach the machine's span layer (nullptr detaches). Each
     *  barrier episode records one machine-wide span from the first
     *  arrival to the release tick under a fresh trace id. */
    void set_spans(obs::SpanLayer *s) { spans = s; }

  private:
    struct Context
    {
        std::vector<CellId> members;
        std::vector<bool> arrived;
        /** (arriving cell, its release callback): the callback is
         *  scheduled on the arriver's own shard at release time. */
        std::vector<std::pair<CellId, std::function<void()>>>
            callbacks;
        int count = 0;
        std::uint64_t completed = 0;
        Tick episodeBegin = 0; ///< first arrival of this episode
    };

    /** Release @p ctx when every live member has arrived. */
    void maybe_release(Context &ctx);

    sim::Simulator &sim;
    int numCells;
    SnetParams prm;
    /** Serializes create_context()/arrive()/fail_cell(): barrier
     *  contexts are shared by every member cell's shard and may be
     *  created mid-run. */
    mutable std::mutex ctxMutex;
    /** Deque, not vector: growth must not invalidate references a
     *  concurrent arrive() holds across maybe_release(). */
    std::deque<Context> contexts;
    std::vector<bool> failedCells;
    obs::SpanLayer *spans = nullptr;
};

} // namespace ap::net

#endif // AP_NET_SNET_HH
