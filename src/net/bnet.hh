/**
 * @file
 * The B-net: shared broadcast bus (50 MB/s on the real machine).
 *
 * Used for program/data distribution and host communication. Modelled
 * as a single serialized channel: one broadcast occupies the bus for
 * size / bandwidth and is then delivered to every attached cell.
 */

#ifndef AP_NET_BNET_HH
#define AP_NET_BNET_HH

#include <functional>
#include <mutex>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "net/message.hh"
#include "obs/span.hh"
#include "obs/tracer.hh"
#include "sim/eventq.hh"

namespace ap::net
{

/** B-net timing parameters (microseconds). */
struct BnetParams
{
    /** fixed bus acquisition cost. */
    double prologUs = 0.5;
    /** per-byte time; 50 MB/s -> 0.02 us/byte. */
    double perByteUs = 0.02;
};

/** Aggregate B-net statistics. */
struct BnetStats
{
    std::uint64_t broadcasts = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t wireBytes = 0;
    /** Bus occupancy per broadcast, microseconds. */
    Histogram occupancyUs;
};

/** The broadcast network. */
class Bnet
{
  public:
    using Deliver = std::function<void(Message)>;

    /**
     * @param sim owning simulator
     * @param cells number of attached cells
     * @param params timing parameters
     */
    Bnet(sim::Simulator &sim, int cells, BnetParams params);

    /** Register the receive handler for cell @p id. */
    void attach(CellId id, Deliver deliver);

    /**
     * Broadcast @p msg from msg.src to every other cell.
     * @return the delivery tick (same for all receivers).
     */
    Tick broadcast(Message msg);

    /** Number of broadcasts so far. */
    std::uint64_t count() const { return netStats.broadcasts; }

    const BnetStats &stats() const { return netStats; }

    /** Attach a cycle-timeline tracer (nullptr detaches). */
    void set_tracer(obs::Tracer *t) { tracer = t; }

    /** Attach the machine's span layer (nullptr detaches). */
    void set_spans(obs::SpanLayer *s) { spans = s; }

  private:
    sim::Simulator &sim;
    BnetParams prm;
    std::vector<Deliver> handlers;
    /** Serializes broadcast(): the bus clamp and stats are shared
     *  by every broadcasting cell's shard. */
    std::mutex busMutex;
    Tick busyUntil = 0;
    BnetStats netStats;
    obs::Tracer *tracer = nullptr;
    obs::SpanLayer *spans = nullptr;
};

} // namespace ap::net

#endif // AP_NET_BNET_HH
