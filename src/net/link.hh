/**
 * @file
 * Abstract point-to-point message link.
 *
 * The MSC+ hands outgoing messages to a Link; concretely that is
 * either the raw T-net or the reliable-delivery layer stacked on top
 * of it (net/reliable.hh). The seam keeps the MSC+ oblivious to
 * whether sequencing/retransmission happens underneath.
 */

#ifndef AP_NET_LINK_HH
#define AP_NET_LINK_HH

#include "base/types.hh"
#include "net/message.hh"

namespace ap::net
{

/** Anything that can carry a Message from src to dst. */
class Link
{
  public:
    virtual ~Link() = default;

    /**
     * Accept @p msg for delivery to its destination's handler.
     * @return the scheduled arrival tick of the initial transmission
     * (informational; reliable links may deliver later).
     *
     * Implementations must preserve @ref Message::traceId end to end
     * (including on retransmitted copies) so the causal span layer
     * (obs/span.hh) can stitch one operation's lifecycle across the
     * link boundary.
     */
    virtual Tick send(Message msg) = 0;
};

} // namespace ap::net

#endif // AP_NET_LINK_HH
