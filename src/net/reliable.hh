/**
 * @file
 * Reliable-delivery layer between the MSC+ and the T-net.
 *
 * The paper's T-net is lossless and FIFO per (src,dst) pair; the
 * fault injector deliberately breaks both. This layer restores them
 * on demand, the way production one-sided runtimes (DART-MPI, the
 * Epiphany OpenSHMEM port) layer reliable completion tracking under
 * a PGAS API:
 *
 *  - every reliable message carries a per-(src,dst)-channel sequence
 *    number and an FNV-1a payload checksum;
 *  - the receiver suppresses duplicates, buffers a bounded window of
 *    out-of-order arrivals, and releases messages to the MSC+ in
 *    sequence order only;
 *  - cumulative acks ride piggybacked on reverse-channel data or, if
 *    no reverse traffic shows up within ackDelayUs, on standalone
 *    RNET_ACK messages;
 *  - unacked messages sit in a sliding-window retransmit queue per
 *    channel; a go-back-N retransmit fires on an exponentially
 *    backed-off timer driven by the simulator's event queue.
 *
 * Fail-stop cells are handled by a liveness hook: channels touching
 * a dead cell are flushed (their queued traffic is aborted) so the
 * event queue drains instead of retransmitting into the void.
 *
 * The layer is toggleable (MachineConfig::reliableNet); when off the
 * MSC+ talks to the raw T-net and no message carries the envelope.
 */

#ifndef AP_NET_RELIABLE_HH
#define AP_NET_RELIABLE_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "net/link.hh"
#include "net/tnet.hh"
#include "obs/span.hh"
#include "obs/tracer.hh"
#include "sim/eventq.hh"

namespace ap::net
{

/** Protocol knobs of the reliable layer. */
struct ReliableParams
{
    /** Max unacked messages in flight per (src,dst) channel. */
    int windowSize = 32;
    /** Initial retransmit timeout, microseconds. Well above the
     *  T-net round trip (tens of us) plus the delayed-ack window. */
    double rtoUs = 400.0;
    /** Exponential-backoff saturation for the RTO. */
    double rtoMaxUs = 6400.0;
    /** How long the receiver waits for piggyback traffic before
     *  sending a standalone ack. */
    double ackDelayUs = 20.0;
    /** Out-of-order reassembly buffer capacity per channel; an
     *  arrival past the cap is dropped (retransmission recovers). */
    int oooCapacity = 64;
    /** Give-up bound: after this many (re)transmissions of the
     *  oldest unacked message the channel aborts its queue. */
    int maxRetransmits = 20;
};

/** Per-cell counters of the reliable layer (cellN.rnet.*). */
struct RnetStats
{
    // sender side (indexed by the sending cell)
    std::uint64_t dataSent = 0;       ///< first transmissions
    std::uint64_t retransmits = 0;    ///< go-back-N retransmissions
    std::uint64_t acksPiggybacked = 0;
    std::uint64_t queuedFull = 0;     ///< sends parked behind window
    std::uint64_t windowHighWater = 0;
    std::uint64_t abortedMsgs = 0;    ///< flushed (dead peer/give-up)
    Histogram ackLatencyUs;           ///< first-send to cum-ack

    // receiver side (indexed by the receiving cell)
    std::uint64_t dupDrops = 0;
    std::uint64_t oooBuffered = 0;
    std::uint64_t oooEvictions = 0;
    std::uint64_t checksumDrops = 0;
    std::uint64_t acksSent = 0;       ///< standalone RNET_ACKs
};

/**
 * The machine-wide reliable link. Sits between every MSC+ and the
 * T-net: the MSC+ send path calls send(), the T-net delivers into
 * on_deliver() (installed via Tnet::attach), and in-order messages
 * come out through the per-cell handler given to attach().
 */
class ReliableNet : public Link
{
  public:
    using Deliver = std::function<void(Message)>;

    ReliableNet(sim::Simulator &sim, Tnet &tnet,
                ReliableParams params);

    /** Register the upper (MSC+) receive handler for cell @p id and
     *  interpose on the T-net delivery path for that cell. */
    void attach(CellId id, Deliver deliver);

    /** Stamp, sequence and transmit (or window-park) @p msg. */
    Tick send(Message msg) override;

    /** Attach a cycle-timeline tracer (nullptr detaches). */
    void set_tracer(obs::Tracer *t) { tracer = t; }

    /** Attach the machine's span layer (nullptr detaches). Each
     *  go-back-N resend records a retransmit child span under the
     *  message's original trace id (aux = try count). */
    void set_spans(obs::SpanLayer *s) { spans = s; }

    /** Install a cell-liveness predicate (fail-stop support). */
    void set_liveness(std::function<bool(CellId)> aliveFn)
    {
        alive = std::move(aliveFn);
    }

    /** Abort all queued traffic to and from a failed cell so
     *  retransmit timers stop and the event queue can drain. */
    void flush_cell(CellId dead);

    /** Stats of cell @p id (valid for the topology's cells). */
    const RnetStats &stats(CellId id) const
    {
        return cellStats[static_cast<std::size_t>(id)];
    }

    const ReliableParams &params() const { return prm; }

  private:
    /** One in-flight (sent, unacked) message. */
    struct Pending
    {
        Message msg;
        Tick firstSent = 0;
        Tick lastSent = 0;
        int sends = 1;
    };

    /** Sender state of one directed (src,dst) channel. */
    struct SendChannel
    {
        std::uint64_t nextSeq = 1;
        std::deque<Pending> window;  ///< sent, awaiting ack
        std::deque<Message> backlog; ///< parked behind the window
        double rtoUs = 0.0;
        bool timerArmed = false;
        /** Bumped to invalidate scheduled timer events (the event
         *  queue cannot cancel). */
        std::uint64_t timerSeq = 0;
    };

    /** Receiver state of one directed (src,dst) channel. */
    struct RecvChannel
    {
        std::uint64_t expected = 1; ///< next in-order seq
        std::map<std::uint64_t, Message> ooo;
        bool ackPending = false;
    };

    std::uint64_t chan_key(CellId src, CellId dst) const;
    SendChannel &send_channel(CellId src, CellId dst);
    RecvChannel &recv_channel(CellId src, CellId dst);
    RnetStats &stats_of(CellId id)
    {
        return cellStats[static_cast<std::size_t>(id)];
    }

    bool is_dead(CellId id) const { return alive && !alive(id); }

    /** Refresh the piggybacked cumulative ack on an outgoing data
     *  message (reverse channel dst->src). */
    void stamp_ack(Message &msg);

    /** Push @p msg into the in-flight window and onto the wire. */
    void transmit(SendChannel &ch, CellId src, CellId dst,
                  Message msg);

    void arm_timer(SendChannel &ch, CellId src, CellId dst,
                   double delayUs);
    void on_timer(CellId src, CellId dst, std::uint64_t expect);

    /** T-net delivery tap: runs the full receiver protocol. */
    void on_deliver(Message msg);

    /** Apply cumulative ack @p ackSeq to the channel me -> peer. */
    void process_ack(CellId me, CellId peer, std::uint64_t ackSeq);

    /** Schedule a delayed standalone ack on channel src -> dst. */
    void schedule_ack(CellId src, CellId dst);

    void deliver_up(Message msg);

    sim::Simulator &sim;
    Tnet &tnet;
    ReliableParams prm;
    /** Serializes the protocol state: a (src, dst) channel pair is
     *  driven from the sender's shard (send, retransmit timers, ack
     *  processing) and the receiver's shard (delivery, delayed
     *  acks), and the channel maps rehash on insert. Recursive
     *  because deliver_up() may re-enter send() (GET replies). */
    std::recursive_mutex mu;
    int cells = 0;
    std::vector<Deliver> handlers;
    std::unordered_map<std::uint64_t, SendChannel> sendChans;
    std::unordered_map<std::uint64_t, RecvChannel> recvChans;
    std::vector<RnetStats> cellStats;
    std::function<bool(CellId)> alive;
    obs::Tracer *tracer = nullptr;
    obs::SpanLayer *spans = nullptr;
};

} // namespace ap::net

#endif // AP_NET_RELIABLE_HH
