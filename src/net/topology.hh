/**
 * @file
 * Two-dimensional torus topology of the AP1000/AP1000+ T-net.
 *
 * Cells are arranged in a width x height torus; cell id is
 * y * width + x. The T-net uses static dimension-order (X first, then
 * Y) routing, which gives in-order delivery per source-destination
 * pair — the property the paper's GET-as-acknowledge trick relies on.
 */

#ifndef AP_NET_TOPOLOGY_HH
#define AP_NET_TOPOLOGY_HH

#include <vector>

#include "base/types.hh"

namespace ap::net
{

/** (x, y) coordinate on the torus. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &o) const = default;
};

/** One hop of a route: from one cell to a torus neighbour. */
struct Hop
{
    CellId from = invalid_cell;
    CellId to = invalid_cell;

    bool operator==(const Hop &o) const = default;
};

/** Shape of and index math for a 2-D torus. */
class Torus
{
  public:
    /**
     * Construct a torus.
     * @param width cells per row (>= 1)
     * @param height rows (>= 1)
     */
    Torus(int width, int height);

    /**
     * Construct the squarest torus with @p cells cells; width is the
     * largest divisor of @p cells not exceeding sqrt(cells).
     */
    static Torus squarest(int cells);

    int width() const { return w; }
    int height() const { return h; }
    int size() const { return w * h; }

    /** @return true when @p id names a cell of this torus. */
    bool valid(CellId id) const { return id >= 0 && id < w * h; }

    /** Cell id -> coordinate. */
    Coord coord_of(CellId id) const;

    /** Coordinate -> cell id (coordinates are wrapped). */
    CellId id_of(Coord c) const;

    /**
     * Signed shortest offset from a to b along one dimension of
     * length n, in [-n/2, n/2].
     */
    static int wrap_delta(int a, int b, int n);

    /** Torus (Manhattan-with-wraparound) hop distance. */
    int distance(CellId a, CellId b) const;

    /**
     * The static dimension-order route from @p a to @p b: X hops
     * (taking the shorter way around, ties broken toward positive),
     * then Y hops. Empty when a == b.
     */
    std::vector<Hop> route(CellId a, CellId b) const;

  private:
    int w;
    int h;
};

} // namespace ap::net

#endif // AP_NET_TOPOLOGY_HH
