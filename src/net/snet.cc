#include "net/snet.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"

namespace ap::net
{

Snet::Snet(sim::Simulator &sim, int cells, SnetParams params)
    : sim(sim), numCells(cells), prm(params),
      failedCells(static_cast<std::size_t>(cells), false)
{
}

Snet::ContextId
Snet::create_context(std::vector<CellId> members)
{
    if (members.empty()) {
        members.resize(static_cast<std::size_t>(numCells));
        for (int i = 0; i < numCells; ++i)
            members[static_cast<std::size_t>(i)] = i;
    }
    for (CellId c : members)
        if (c < 0 || c >= numCells)
            fatal("barrier member %d outside machine of %d cells", c,
                  numCells);

    Context ctx;
    ctx.members = std::move(members);
    ctx.arrived.assign(static_cast<std::size_t>(numCells), false);
    std::lock_guard<std::mutex> lock(ctxMutex);
    contexts.push_back(std::move(ctx));
    return static_cast<ContextId>(contexts.size()) - 1;
}

void
Snet::arrive(ContextId id, CellId cell, std::function<void()> on_release)
{
    std::lock_guard<std::mutex> lock(ctxMutex);
    if (id < 0 || static_cast<std::size_t>(id) >= contexts.size())
        panic("unknown barrier context %d", id);
    Context &ctx = contexts[static_cast<std::size_t>(id)];

    bool member = std::find(ctx.members.begin(), ctx.members.end(),
                            cell) != ctx.members.end();
    if (!member)
        panic("cell %d is not a member of barrier context %d", cell,
              id);
    if (ctx.arrived[static_cast<std::size_t>(cell)])
        panic("cell %d arrived twice at barrier context %d", cell, id);

    ctx.arrived[static_cast<std::size_t>(cell)] = true;
    ctx.callbacks.emplace_back(cell, std::move(on_release));
    if (ctx.count == 0)
        ctx.episodeBegin = sim.now();
    ctx.count++;

    maybe_release(ctx);
}

void
Snet::maybe_release(Context &ctx)
{
    if (ctx.callbacks.empty())
        return;
    // Release once every live member has arrived. With no failed
    // cells this is exactly the classic "count == members" condition.
    for (CellId m : ctx.members)
        if (!ctx.arrived[static_cast<std::size_t>(m)] &&
            !failedCells[static_cast<std::size_t>(m)])
            return;

    Tick release = sim.now() + us_to_ticks(prm.releaseUs);
    if (spans)
        if (std::uint64_t tid = spans->new_trace())
            spans->record(-1, tid, obs::SpanStage::barrier,
                          ctx.episodeBegin, release,
                          obs::SpanOp::barrier);
    std::vector<std::pair<CellId, std::function<void()>>> cbs;
    cbs.swap(ctx.callbacks);
    ctx.count = 0;
    ctx.completed++;
    for (CellId m : ctx.members)
        ctx.arrived[static_cast<std::size_t>(m)] = false;
    // Each release callback resumes its own cell: route it to that
    // cell's shard, not the shard of whichever arrival released us.
    for (auto &cb : cbs)
        sim.schedule_for(cb.first, release, std::move(cb.second));
}

void
Snet::fail_cell(CellId cell)
{
    if (cell < 0 || cell >= numCells)
        panic("fail_cell %d outside machine of %d cells", cell,
              numCells);
    std::lock_guard<std::mutex> lock(ctxMutex);
    failedCells[static_cast<std::size_t>(cell)] = true;
    // Contexts already blocked only on the dead cell release now.
    for (Context &ctx : contexts)
        maybe_release(ctx);
}

std::uint64_t
Snet::total_episodes() const
{
    std::lock_guard<std::mutex> lock(ctxMutex);
    std::uint64_t n = 0;
    for (const Context &ctx : contexts)
        n += ctx.completed;
    return n;
}

std::uint64_t
Snet::episodes(ContextId id) const
{
    std::lock_guard<std::mutex> lock(ctxMutex);
    if (id < 0 || static_cast<std::size_t>(id) >= contexts.size())
        panic("unknown barrier context %d", id);
    return contexts[static_cast<std::size_t>(id)].completed;
}

} // namespace ap::net
