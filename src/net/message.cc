#include "net/message.hh"

#include "base/logging.hh"

namespace ap::net
{

const char *
to_string(MsgKind kind)
{
    switch (kind) {
      case MsgKind::put_data:
        return "PUT";
      case MsgKind::get_request:
        return "GET";
      case MsgKind::get_reply:
        return "GET_REPLY";
      case MsgKind::remote_store:
        return "RSTORE";
      case MsgKind::remote_store_ack:
        return "RSTORE_ACK";
      case MsgKind::remote_load:
        return "RLOAD";
      case MsgKind::remote_load_reply:
        return "RLOAD_REPLY";
      case MsgKind::broadcast:
        return "BCAST";
      case MsgKind::rnet_ack:
        return "RNET_ACK";
    }
    return "?";
}

namespace
{

inline void
fnv1a(std::uint32_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= static_cast<std::uint8_t>(v >> (i * 8));
        h *= 16777619u;
    }
}

} // namespace

std::uint32_t
Message::payload_checksum() const
{
    std::uint32_t h = 2166136261u;
    fnv1a(h, static_cast<std::uint64_t>(kind));
    fnv1a(h, static_cast<std::uint64_t>(src));
    fnv1a(h, static_cast<std::uint64_t>(dst));
    fnv1a(h, raddr);
    fnv1a(h, laddr);
    fnv1a(h, seq);
    fnv1a(h, static_cast<std::uint64_t>(tag));
    fnv1a(h, token);
    for (std::uint8_t b : payload) {
        h ^= b;
        h *= 16777619u;
    }
    return h;
}

std::string
Message::describe() const
{
    return strprintf("%s %d->%d raddr=%#llx laddr=%#llx size=%zu",
                     to_string(kind), src, dst,
                     static_cast<unsigned long long>(raddr),
                     static_cast<unsigned long long>(laddr),
                     payload.size());
}

} // namespace ap::net
