#include "net/message.hh"

#include "base/logging.hh"

namespace ap::net
{

const char *
to_string(MsgKind kind)
{
    switch (kind) {
      case MsgKind::put_data:
        return "PUT";
      case MsgKind::get_request:
        return "GET";
      case MsgKind::get_reply:
        return "GET_REPLY";
      case MsgKind::remote_store:
        return "RSTORE";
      case MsgKind::remote_store_ack:
        return "RSTORE_ACK";
      case MsgKind::remote_load:
        return "RLOAD";
      case MsgKind::remote_load_reply:
        return "RLOAD_REPLY";
      case MsgKind::broadcast:
        return "BCAST";
    }
    return "?";
}

std::string
Message::describe() const
{
    return strprintf("%s %d->%d raddr=%#llx laddr=%#llx size=%zu",
                     to_string(kind), src, dst,
                     static_cast<unsigned long long>(raddr),
                     static_cast<unsigned long long>(laddr),
                     payload.size());
}

} // namespace ap::net
