#include "net/topology.hh"

#include <cmath>
#include <cstdlib>

#include "base/logging.hh"

namespace ap::net
{

Torus::Torus(int width, int height) : w(width), h(height)
{
    if (width < 1 || height < 1)
        fatal("torus dimensions must be positive (%dx%d)", width,
              height);
}

Torus
Torus::squarest(int cells)
{
    if (cells < 1)
        fatal("torus must have at least one cell");
    int best = 1;
    for (int d = 1; d * d <= cells; ++d)
        if (cells % d == 0)
            best = d;
    return Torus(best, cells / best);
}

Coord
Torus::coord_of(CellId id) const
{
    if (!valid(id))
        panic("cell id %d outside %dx%d torus", id, w, h);
    return Coord{id % w, id / w};
}

CellId
Torus::id_of(Coord c) const
{
    int x = ((c.x % w) + w) % w;
    int y = ((c.y % h) + h) % h;
    return y * w + x;
}

int
Torus::wrap_delta(int a, int b, int n)
{
    int d = ((b - a) % n + n) % n; // forward distance in [0, n)
    if (d > n / 2)
        d -= n; // exactly halfway stays positive
    return d;
}

int
Torus::distance(CellId a, CellId b) const
{
    Coord ca = coord_of(a);
    Coord cb = coord_of(b);
    return std::abs(wrap_delta(ca.x, cb.x, w)) +
           std::abs(wrap_delta(ca.y, cb.y, h));
}

std::vector<Hop>
Torus::route(CellId a, CellId b) const
{
    Coord ca = coord_of(a);
    Coord cb = coord_of(b);
    std::vector<Hop> hops;

    int dx = wrap_delta(ca.x, cb.x, w);
    int step = dx > 0 ? 1 : -1;
    Coord cur = ca;
    for (int i = 0; i != dx; i += step) {
        Coord nxt{cur.x + step, cur.y};
        hops.push_back(Hop{id_of(cur), id_of(nxt)});
        cur = nxt;
        cur.x = ((cur.x % w) + w) % w;
    }

    int dy = wrap_delta(ca.y, cb.y, h);
    step = dy > 0 ? 1 : -1;
    for (int i = 0; i != dy; i += step) {
        Coord nxt{cur.x, cur.y + step};
        hops.push_back(Hop{id_of(cur), id_of(nxt)});
        cur = nxt;
        cur.y = ((cur.y % h) + h) % h;
    }

    return hops;
}

} // namespace ap::net
