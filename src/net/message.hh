/**
 * @file
 * Wire-level message formats of the AP1000+ networks.
 *
 * The functional machine moves real bytes: a PUT data message carries
 * its payload, a GET request carries the descriptor the remote MSC+
 * needs to synthesize the reply, and so on. Header fields mirror the
 * parameters of the paper's put()/get() interface (Section 3.1).
 */

#ifndef AP_NET_MESSAGE_HH
#define AP_NET_MESSAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace ap::net
{

/** Kinds of traffic the T-net / B-net carry. */
enum class MsgKind : std::uint8_t
{
    put_data,          ///< one-sided write (also carries SENDs)
    get_request,       ///< one-sided read request
    get_reply,         ///< data coming back for a GET
    remote_store,      ///< DSM hardware store
    remote_store_ack,  ///< automatic ack for a remote store
    remote_load,       ///< DSM hardware load (blocking)
    remote_load_reply, ///< data coming back for a remote load
    broadcast,         ///< B-net broadcast payload
    rnet_ack,          ///< standalone cumulative ack (reliable layer)
};

/** @return a short printable name for a message kind. */
const char *to_string(MsgKind kind);

/**
 * One-dimensional stride descriptor, exactly the put_stride()
 * parameter set of Section 3.1 (item size / item count / skip between
 * items), one instance for each side of the transfer.
 */
struct StrideSpec
{
    std::uint32_t itemSize = 0; ///< bytes per item
    std::uint32_t count = 0;    ///< number of items
    std::uint32_t skip = 0;     ///< bytes to skip between items

    /** A degenerate spec meaning "contiguous block of @p size". */
    static StrideSpec
    contiguous(std::uint32_t size)
    {
        return StrideSpec{size, 1, 0};
    }

    /** @return true for a contiguous (count <= 1) pattern. */
    bool is_contiguous() const { return count <= 1; }

    /** Total payload bytes described. */
    std::uint64_t
    total_bytes() const
    {
        return static_cast<std::uint64_t>(itemSize) * count;
    }

    /** Footprint in memory: payload plus skipped gaps. */
    std::uint64_t
    footprint() const
    {
        if (count == 0)
            return 0;
        return static_cast<std::uint64_t>(count) * itemSize +
               static_cast<std::uint64_t>(count - 1) * skip;
    }

    bool operator==(const StrideSpec &o) const = default;
};

/**
 * A network message. Payload is carried by value; the functional
 * layer is correctness-first and the timing layer never copies these.
 */
struct Message
{
    MsgKind kind = MsgKind::put_data;
    CellId src = invalid_cell;
    CellId dst = invalid_cell;

    /** Remote (destination-side) start address, logical. */
    Addr raddr = 0;
    /** Local (origin-side) start address, logical. */
    Addr laddr = 0;

    /** Flag to bump on the origin when the reply lands (GET). */
    Addr originFlag = no_flag;
    /** Flag to bump on the destination when receive DMA completes. */
    Addr destFlag = no_flag;

    /** Receive-side scatter pattern (PUT) / send-side gather (GET). */
    StrideSpec remoteStride;
    /** Origin-side pattern for the reply (GET only). */
    StrideSpec localStride;

    /** True when this PUT should land in the ring buffer (SEND). */
    bool toRingBuffer = false;

    /** True for a GET to address 0 — the PUT-acknowledge probe. */
    bool isAckProbe = false;

    /** Message tag carried by SENDs for RECEIVE matching. */
    std::int32_t tag = 0;

    /** Matching token for remote-load replies. */
    std::uint64_t token = 0;

    /**
     * Causal span trace id (obs/span.hh); 0 = untraced. Pure
     * simulator metadata: it occupies no wire bytes, is excluded
     * from the checksum, and replies/acks inherit it so one trace
     * id follows an operation across cells.
     */
    std::uint64_t traceId = 0;

    /**
     * Reliable-layer envelope (net/reliable.hh). When @ref reliable
     * is set the message carries a per-(src,dst)-channel sequence
     * number, a piggybacked cumulative ack for the reverse channel,
     * and an FNV-1a checksum over the header+payload.
     */
    bool reliable = false;
    /** Channel sequence number (1-based; 0 = unsequenced). */
    std::uint64_t seq = 0;
    /** Cumulative ack: highest in-order seq received on dst->src. */
    std::uint64_t ackSeq = 0;
    /** payload_checksum() at send time (reliable messages only). */
    std::uint32_t checksum = 0;

    /** Payload bytes (data-bearing kinds only). */
    std::vector<std::uint8_t> payload;

    /** Header size on the wire, bytes (8 words, Section 4.1). */
    static constexpr std::uint32_t header_bytes = 32;

    /** Extra wire bytes of the reliable envelope (seq/ack/csum). */
    static constexpr std::uint32_t reliable_header_bytes = 16;

    /** Total wire size: header plus payload. */
    std::uint64_t
    wire_bytes() const
    {
        return header_bytes + payload.size() +
               (reliable ? reliable_header_bytes : 0);
    }

    /**
     * FNV-1a-32 over the delivery-relevant header fields, seq and the
     * payload. Excludes ackSeq so a retransmission can refresh its
     * piggybacked ack without recomputing the checksum.
     */
    std::uint32_t payload_checksum() const;

    /** Diagnostic one-liner. */
    std::string describe() const;
};

} // namespace ap::net

#endif // AP_NET_MESSAGE_HH
