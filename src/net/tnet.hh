/**
 * @file
 * The T-net: point-to-point 2-D torus interconnect.
 *
 * Timing follows MLSim's network model (Figure 7, items 15-18):
 *
 *   latency = network_prolog_time
 *           + network_delay_time * distance
 *           + network_msg_time   * wire_bytes
 *           + network_epilog_time
 *
 * Delivery is FIFO per source-destination pair, matching the T-net's
 * static routing ("passes messages in order", Section 4.1) — the
 * property that makes a GET reply usable as a PUT acknowledgement.
 *
 * An optional link-contention mode (beyond the paper's MLSim, which
 * has no contention model) serializes messages over each directed
 * torus link at the link bandwidth.
 */

#ifndef AP_NET_TNET_HH
#define AP_NET_TNET_HH

#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "net/link.hh"
#include "net/message.hh"
#include "net/topology.hh"
#include "obs/span.hh"
#include "obs/tracer.hh"
#include "sim/eventq.hh"
#include "sim/fault.hh"

namespace ap::net
{

/** Timing parameters of the T-net (microseconds, Figure 6 names). */
struct TnetParams
{
    /** network_prolog_time: fixed injection cost. */
    double prologUs = 0.16;
    /** network_delay_time: per-hop routing delay. */
    double delayPerHopUs = 0.16;
    /** per-byte transfer time; 25 MB/s links -> 0.04 us/byte. */
    double perByteUs = 0.04;
    /** network_epilog_time: fixed ejection cost. */
    double epilogUs = 0.0;
    /** model per-link serialization (extension; off = paper model). */
    bool linkContention = false;
};

/** Aggregate T-net statistics. */
struct TnetStats
{
    std::uint64_t messages = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t wireBytes = 0;
    std::uint64_t dropped = 0;    ///< injected drops
    std::uint64_t duplicated = 0; ///< injected duplicates
    std::uint64_t reordered = 0;  ///< injected reorders
    std::uint64_t corrupted = 0;  ///< injected payload corruptions
    /** Messages discarded because an endpoint was declared failed. */
    std::uint64_t deadCellDrops = 0;
    Histogram distance;
    Histogram messageSize;
    /** Injection-to-arrival flight time, microseconds. */
    Histogram latencyUs;
};

/**
 * The torus network. Cells attach a delivery callback; send() injects
 * a message and schedules that callback at the arrival tick.
 *
 * Sealed (final) so the MSC+ fast path can devirtualize: when no
 * reliable layer is stacked, the MSC+ holds a Tnet* and send() calls
 * resolve directly instead of through the Link vtable.
 */
class Tnet final : public Link
{
  public:
    using Deliver = std::function<void(Message)>;

    /**
     * @param sim owning simulator
     * @param topo torus shape
     * @param params timing parameters
     */
    Tnet(sim::Simulator &sim, Torus topo, TnetParams params);

    /** Register the receive handler for cell @p id. */
    void attach(CellId id, Deliver deliver);

    /**
     * Inject @p msg now. @return the arrival tick at the destination.
     * Messages between the same pair never reorder.
     */
    Tick send(Message msg) override;

    /** Point-to-point pure latency for a @p bytes-byte wire message. */
    Tick latency(CellId src, CellId dst, std::uint64_t bytes) const;

    const Torus &topology() const { return topo; }
    const TnetStats &stats() const { return netStats; }
    const TnetParams &params() const { return prm; }

    /**
     * Attach a fault injector (nullptr detaches). Injected faults:
     * drop (message vanishes in the network), duplicate (delivered
     * twice), reorder (held back without advancing the FIFO clamp, so
     * later same-pair traffic overtakes it), and latency jitter
     * applied before the FIFO clamp (timing-only, order-preserving).
     */
    void set_fault_injector(sim::FaultInjector *inj) { faults = inj; }

    /**
     * Attach a cycle-timeline tracer (nullptr detaches). Message
     * flight spans land on the destination cell's track; injected
     * network faults land on the machine track.
     */
    void set_tracer(obs::Tracer *t) { tracer = t; }

    /** Attach the machine's span layer (nullptr detaches). */
    void set_spans(obs::SpanLayer *s) { spans = s; }

    /**
     * Install a cell-liveness predicate. When set, traffic to or
     * from a cell the predicate declares dead is silently discarded
     * (counted as deadCellDrops) — a fail-stop cell neither sends
     * nor receives.
     */
    void set_liveness(std::function<bool(CellId)> aliveFn)
    {
        alive = std::move(aliveFn);
    }

  private:
    Tick contention_arrival(const Message &msg, Tick inject);

    void schedule_delivery(Message msg, Tick arrive);

    /** Like schedule_delivery, but retires the injector hold slot
     *  admitted for this duplicated/reordered message on delivery. */
    void schedule_held_delivery(Message msg, Tick arrive);

    sim::Simulator &sim;
    Torus topo;
    TnetParams prm;
    sim::FaultInjector *faults = nullptr;
    std::function<bool(CellId)> alive;
    std::vector<Deliver> handlers;
    /** Serializes send(): the FIFO clamp, the link-contention table
     *  and the aggregate stats are machine-global state touched by
     *  every sending cell's shard. Delivery itself needs no lock —
     *  the handler runs as an event on the destination's shard. */
    std::mutex sendMutex;
    /** last arrival tick per (src * size + dst) pair, for FIFO. */
    std::unordered_map<std::uint64_t, Tick> lastArrival;
    /** per directed link (from * size + to) busy-until (contention). */
    std::unordered_map<std::uint64_t, Tick> linkBusy;
    TnetStats netStats;
    obs::Tracer *tracer = nullptr;
    obs::SpanLayer *spans = nullptr;
};

} // namespace ap::net

#endif // AP_NET_TNET_HH
