#include "net/bnet.hh"

#include <utility>

#include "base/logging.hh"
#include "obs/debug.hh"

namespace ap::net
{

Bnet::Bnet(sim::Simulator &sim, int cells, BnetParams params)
    : sim(sim), prm(params), handlers(static_cast<std::size_t>(cells))
{
}

void
Bnet::attach(CellId id, Deliver deliver)
{
    if (id < 0 || static_cast<std::size_t>(id) >= handlers.size())
        panic("B-net attach to invalid cell %d", id);
    handlers[static_cast<std::size_t>(id)] = std::move(deliver);
}

Tick
Bnet::broadcast(Message msg)
{
    // The bus-occupancy clamp and the aggregate stats are shared by
    // every broadcasting cell's shard.
    std::lock_guard<std::mutex> lock(busMutex);
    Tick start = std::max(sim.now(), busyUntil);
    Tick occupy = us_to_ticks(
        prm.prologUs +
        prm.perByteUs * static_cast<double>(msg.wire_bytes()));
    Tick arrive = start + occupy;
    busyUntil = arrive;
    ++netStats.broadcasts;
    netStats.payloadBytes += msg.payload.size();
    netStats.wireBytes += msg.wire_bytes();
    netStats.occupancyUs.sample(
        static_cast<std::uint64_t>(ticks_to_us(occupy)));
    if (spans && msg.traceId != 0)
        spans->record(-1, msg.traceId, obs::SpanStage::net, start,
                      arrive);
    if (tracer)
        tracer->span_at(obs::machine_track, "bnet", "broadcast",
                        start, arrive);
    AP_DPRINTF(BNet, "broadcast from cell %d (%llu wire bytes)",
               msg.src,
               static_cast<unsigned long long>(msg.wire_bytes()));

    for (std::size_t id = 0; id < handlers.size(); ++id) {
        if (static_cast<CellId>(id) == msg.src || !handlers[id])
            continue;
        Message copy = msg;
        copy.dst = static_cast<CellId>(id);
        // Each receiving cell's copy lands on that cell's shard.
        sim.schedule_for(static_cast<int>(id), arrive,
                         [this, copy = std::move(copy)]() mutable {
            handlers[static_cast<std::size_t>(copy.dst)](
                std::move(copy));
        });
    }
    return arrive;
}

} // namespace ap::net
