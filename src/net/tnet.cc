#include "net/tnet.hh"

#include <string>
#include <utility>

#include "base/logging.hh"
#include "obs/debug.hh"

namespace ap::net
{

Tnet::Tnet(sim::Simulator &sim, Torus topo, TnetParams params)
    : sim(sim), topo(topo), prm(params),
      handlers(static_cast<std::size_t>(topo.size()))
{
}

void
Tnet::attach(CellId id, Deliver deliver)
{
    if (!topo.valid(id))
        panic("attach to invalid cell %d", id);
    handlers[static_cast<std::size_t>(id)] = std::move(deliver);
}

Tick
Tnet::latency(CellId src, CellId dst, std::uint64_t bytes) const
{
    int dist = topo.distance(src, dst);
    double us = prm.prologUs + prm.delayPerHopUs * dist +
                prm.perByteUs * static_cast<double>(bytes) +
                prm.epilogUs;
    return us_to_ticks(us);
}

Tick
Tnet::contention_arrival(const Message &msg, Tick inject)
{
    // Wormhole approximation: the head pays per-hop delay and queues
    // behind busy links; each link stays occupied while the body
    // streams through at link bandwidth.
    Tick head = inject + us_to_ticks(prm.prologUs);
    Tick body = us_to_ticks(prm.perByteUs *
                            static_cast<double>(msg.wire_bytes()));
    auto hops = topo.route(msg.src, msg.dst);
    for (const Hop &hop : hops) {
        std::uint64_t key =
            static_cast<std::uint64_t>(hop.from) *
                static_cast<std::uint64_t>(topo.size()) +
            static_cast<std::uint64_t>(hop.to);
        Tick &busy = linkBusy[key];
        head = std::max(head, busy) + us_to_ticks(prm.delayPerHopUs);
        busy = head + body;
    }
    return head + body + us_to_ticks(prm.epilogUs);
}

void
Tnet::schedule_delivery(Message msg, Tick arrive)
{
    // Delivery executes on the destination cell's timeline: under the
    // sharded kernel the explicit affinity routes the event to the
    // destination's shard (the cross-shard handoff of the model).
    CellId dst = msg.dst;
    sim.schedule_for(dst, arrive,
                     [this, msg = std::move(msg)]() mutable {
        handlers[static_cast<std::size_t>(msg.dst)](std::move(msg));
    });
}

void
Tnet::schedule_held_delivery(Message msg, Tick arrive)
{
    CellId dst = msg.dst;
    sim.schedule_for(dst, arrive,
                     [this, msg = std::move(msg)]() mutable {
        faults->release_hold(msg.dst);
        handlers[static_cast<std::size_t>(msg.dst)](std::move(msg));
    });
}

Tick
Tnet::send(Message msg)
{
    if (!topo.valid(msg.src) || !topo.valid(msg.dst))
        panic("send between invalid cells %d -> %d", msg.src, msg.dst);

    // One lock covers the whole injection: FIFO clamp, contention
    // table, stats and fault draws are machine-global, and senders on
    // different shards may inject concurrently.
    std::lock_guard<std::mutex> lock(sendMutex);

    // Fail-stop cells neither send nor receive: discard silently so
    // retransmission logic above (or a watchdog) surfaces the loss.
    if (alive && (!alive(msg.src) || !alive(msg.dst))) {
        ++netStats.deadCellDrops;
        return sim.now();
    }

    Tick inject = sim.now();
    Tick arrive;
    if (prm.linkContention && msg.src != msg.dst) {
        arrive = contention_arrival(msg, inject);
    } else {
        arrive = inject + latency(msg.src, msg.dst, msg.wire_bytes());
    }

    // Injected latency jitter is added before the FIFO clamp below,
    // so a jitter-only fault plan perturbs timing without ever
    // breaking in-order delivery.
    bool inject_faults = faults && faults->active();
    if (inject_faults)
        arrive += faults->jitter();

    // Enforce FIFO per source-destination pair: a later injection may
    // never arrive before an earlier one.
    std::uint64_t key = static_cast<std::uint64_t>(msg.src) *
                            static_cast<std::uint64_t>(topo.size()) +
                        static_cast<std::uint64_t>(msg.dst);
    Tick &last = lastArrival[key];
    if (arrive < last)
        arrive = last;
    last = arrive;

    netStats.messages++;
    netStats.payloadBytes += msg.payload.size();
    netStats.wireBytes += msg.wire_bytes();
    netStats.distance.sample(
        static_cast<std::uint64_t>(topo.distance(msg.src, msg.dst)));
    netStats.messageSize.sample(msg.payload.size());
    netStats.latencyUs.sample(
        static_cast<std::uint64_t>(ticks_to_us(arrive - inject)));

    auto &handler = handlers[static_cast<std::size_t>(msg.dst)];
    if (!handler)
        panic("no receive handler attached to cell %d", msg.dst);

    AP_DPRINTF(TNet, "%s %d -> %d (%llu wire bytes, %.2f us)",
               to_string(msg.kind), msg.src, msg.dst,
               static_cast<unsigned long long>(msg.wire_bytes()),
               ticks_to_us(arrive - inject));

    if (inject_faults) {
        if (faults->drop_message()) {
            // The wire was used (stats above) but nothing arrives.
            // aux=1 marks the flight as lost for the span layer.
            ++netStats.dropped;
            if (spans && msg.traceId != 0)
                spans->record(msg.dst, msg.traceId,
                              obs::SpanStage::net, inject, arrive,
                              obs::SpanOp::none, 1);
            if (tracer)
                tracer->instant(obs::machine_track, "fault",
                                std::string("drop:") +
                                    to_string(msg.kind));
            AP_DPRINTF(Fault, "dropped %s %d -> %d",
                       to_string(msg.kind), msg.src, msg.dst);
            return arrive;
        }
        if (faults->duplicate_message() &&
            faults->try_hold(msg.dst,
                             sim::FaultInjector::HoldKind::duplicate)) {
            ++netStats.duplicated;
            if (tracer)
                tracer->instant(obs::machine_track, "fault",
                                std::string("duplicate:") +
                                    to_string(msg.kind));
            AP_DPRINTF(Fault, "duplicated %s %d -> %d",
                       to_string(msg.kind), msg.src, msg.dst);
            schedule_held_delivery(msg, arrive);
        }
        if (faults->reorder_message() &&
            faults->try_hold(msg.dst,
                             sim::FaultInjector::HoldKind::reorder)) {
            // Held back past the FIFO clamp already recorded in
            // `last`: later same-pair traffic overtakes this message.
            ++netStats.reordered;
            if (tracer)
                tracer->instant(obs::machine_track, "fault",
                                std::string("reorder:") +
                                    to_string(msg.kind));
            AP_DPRINTF(Fault, "reordered %s %d -> %d",
                       to_string(msg.kind), msg.src, msg.dst);
            if (spans && msg.traceId != 0)
                spans->record(msg.dst, msg.traceId,
                              obs::SpanStage::net, inject,
                              arrive + faults->reorder_delay());
            if (tracer && msg.src != msg.dst)
                tracer->span_at(static_cast<int>(msg.dst), "tnet",
                                std::string("flight:") +
                                    to_string(msg.kind),
                                inject,
                                arrive + faults->reorder_delay());
            schedule_held_delivery(std::move(msg),
                                   arrive + faults->reorder_delay());
            return arrive;
        }
        if (faults->corrupt_message()) {
            ++netStats.corrupted;
            if (!msg.payload.empty())
                msg.payload[faults->corrupt_index(
                    msg.payload.size())] ^= 0xFF;
            else
                msg.checksum ^= 1;
            if (tracer)
                tracer->instant(obs::machine_track, "fault",
                                std::string("corrupt:") +
                                    to_string(msg.kind));
            AP_DPRINTF(Fault, "corrupted %s %d -> %d",
                       to_string(msg.kind), msg.src, msg.dst);
        }
    }

    if (spans && msg.traceId != 0)
        spans->record(msg.dst, msg.traceId, obs::SpanStage::net,
                      inject, arrive);
    if (tracer && msg.src != msg.dst)
        tracer->span_at(static_cast<int>(msg.dst), "tnet",
                        std::string("flight:") + to_string(msg.kind),
                        inject, arrive);
    schedule_delivery(std::move(msg), arrive);
    return arrive;
}

} // namespace ap::net
