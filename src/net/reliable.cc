#include "net/reliable.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "base/logging.hh"
#include "obs/debug.hh"

namespace ap::net
{

ReliableNet::ReliableNet(sim::Simulator &sim, Tnet &tnet,
                         ReliableParams params)
    : sim(sim), tnet(tnet), prm(params), cells(tnet.topology().size()),
      handlers(static_cast<std::size_t>(cells)),
      cellStats(static_cast<std::size_t>(cells))
{
}

void
ReliableNet::attach(CellId id, Deliver deliver)
{
    handlers[static_cast<std::size_t>(id)] = std::move(deliver);
    tnet.attach(id,
                [this](Message m) { on_deliver(std::move(m)); });
}

std::uint64_t
ReliableNet::chan_key(CellId src, CellId dst) const
{
    return static_cast<std::uint64_t>(src) *
               static_cast<std::uint64_t>(cells) +
           static_cast<std::uint64_t>(dst);
}

ReliableNet::SendChannel &
ReliableNet::send_channel(CellId src, CellId dst)
{
    SendChannel &ch = sendChans[chan_key(src, dst)];
    if (ch.rtoUs == 0.0)
        ch.rtoUs = prm.rtoUs;
    return ch;
}

ReliableNet::RecvChannel &
ReliableNet::recv_channel(CellId src, CellId dst)
{
    return recvChans[chan_key(src, dst)];
}

void
ReliableNet::stamp_ack(Message &msg)
{
    // An outgoing src->dst data message acknowledges what we have
    // received in order on the reverse channel dst->src.
    RecvChannel &rc = recv_channel(msg.dst, msg.src);
    msg.ackSeq = rc.expected - 1;
    if (rc.ackPending) {
        rc.ackPending = false;
        ++stats_of(msg.src).acksPiggybacked;
    }
}

Tick
ReliableNet::send(Message msg)
{
    std::lock_guard<std::recursive_mutex> lock(mu);
    CellId src = msg.src, dst = msg.dst;
    if (is_dead(src) || is_dead(dst)) {
        ++stats_of(src).abortedMsgs;
        return sim.now();
    }

    SendChannel &ch = send_channel(src, dst);
    msg.reliable = true;
    msg.seq = ch.nextSeq++;
    stamp_ack(msg);
    msg.checksum = msg.payload_checksum();

    RnetStats &st = stats_of(src);
    ++st.dataSent;

    AP_DPRINTF(RNet, "send %s %d -> %d seq=%llu ack=%llu",
               to_string(msg.kind), src, dst,
               static_cast<unsigned long long>(msg.seq),
               static_cast<unsigned long long>(msg.ackSeq));

    if (ch.window.size() <
        static_cast<std::size_t>(prm.windowSize)) {
        transmit(ch, src, dst, std::move(msg));
    } else {
        ++st.queuedFull;
        ch.backlog.push_back(std::move(msg));
    }
    return sim.now();
}

void
ReliableNet::transmit(SendChannel &ch, CellId src, CellId dst,
                      Message msg)
{
    Pending p;
    p.msg = msg;
    p.firstSent = sim.now();
    p.lastSent = sim.now();
    ch.window.push_back(std::move(p));
    RnetStats &st = stats_of(src);
    st.windowHighWater =
        std::max(st.windowHighWater,
                 static_cast<std::uint64_t>(ch.window.size()));
    tnet.send(std::move(msg));
    arm_timer(ch, src, dst, ch.rtoUs);
}

void
ReliableNet::arm_timer(SendChannel &ch, CellId src, CellId dst,
                       double delayUs)
{
    if (ch.timerArmed)
        return;
    ch.timerArmed = true;
    std::uint64_t expect = ++ch.timerSeq;
    sim.schedule(sim.now() + us_to_ticks(delayUs),
                 [this, src, dst, expect]() {
                     on_timer(src, dst, expect);
                 });
}

void
ReliableNet::on_timer(CellId src, CellId dst, std::uint64_t expect)
{
    std::lock_guard<std::recursive_mutex> lock(mu);
    SendChannel &ch = send_channel(src, dst);
    if (ch.timerSeq != expect)
        return; // stale timer (superseded or flushed)
    ch.timerArmed = false;

    if (ch.window.empty()) {
        ch.rtoUs = prm.rtoUs;
        return;
    }
    if (is_dead(src) || is_dead(dst)) {
        // flush_cell normally handles this; defensive sweep in case
        // the liveness transition raced the timer.
        stats_of(src).abortedMsgs +=
            ch.window.size() + ch.backlog.size();
        ch.window.clear();
        ch.backlog.clear();
        return;
    }

    Tick due = ch.window.front().lastSent + us_to_ticks(ch.rtoUs);
    if (sim.now() < due) {
        // An ack advanced the window since this timer was armed;
        // re-arm relative to the oldest unacked transmission.
        arm_timer(ch, src, dst, ticks_to_us(due - sim.now()));
        return;
    }

    if (ch.window.front().sends > prm.maxRetransmits) {
        std::uint64_t lost = ch.window.size() + ch.backlog.size();
        stats_of(src).abortedMsgs += lost;
        warn("rnet: channel %d -> %d gave up after %d retransmits "
             "(%llu messages aborted)",
             src, dst, prm.maxRetransmits,
             static_cast<unsigned long long>(lost));
        ch.window.clear();
        ch.backlog.clear();
        return;
    }

    // Go-back-N: retransmit the whole window with fresh piggybacked
    // acks; the receiver's duplicate suppression absorbs any that
    // were delivered but whose acks were lost.
    RnetStats &st = stats_of(src);
    for (Pending &p : ch.window) {
        ++st.retransmits;
        ++p.sends;
        p.lastSent = sim.now();
        Message copy = p.msg;
        stamp_ack(copy);
        AP_DPRINTF(RNet, "retransmit %s %d -> %d seq=%llu (try %d)",
                   to_string(copy.kind), src, dst,
                   static_cast<unsigned long long>(copy.seq),
                   p.sends);
        std::uint64_t tid = copy.traceId;
        Tick resent = sim.now();
        Tick arr = tnet.send(std::move(copy));
        if (spans && tid != 0)
            spans->record(dst, tid, obs::SpanStage::retransmit,
                          resent, arr, obs::SpanOp::none,
                          static_cast<std::uint32_t>(p.sends));
    }
    if (tracer)
        tracer->instant(obs::machine_track, "rnet",
                        strprintf("retransmit:%d->%d", src, dst));
    ch.rtoUs = std::min(ch.rtoUs * 2.0, prm.rtoMaxUs);
    arm_timer(ch, src, dst, ch.rtoUs);
}

void
ReliableNet::on_deliver(Message msg)
{
    std::lock_guard<std::recursive_mutex> lock(mu);
    CellId src = msg.src, dst = msg.dst;

    if (msg.kind == MsgKind::rnet_ack) {
        process_ack(dst, src, msg.ackSeq);
        return;
    }
    if (!msg.reliable) {
        // Defensive pass-through for unsequenced traffic.
        deliver_up(std::move(msg));
        return;
    }

    // Piggybacked cumulative ack for our dst->src send channel.
    process_ack(dst, src, msg.ackSeq);

    RnetStats &st = stats_of(dst);
    if (msg.payload_checksum() != msg.checksum) {
        // Corrupted in flight: drop without acking; the sender's
        // retransmission carries a clean copy.
        ++st.checksumDrops;
        AP_DPRINTF(RNet, "checksum drop %s %d -> %d seq=%llu",
                   to_string(msg.kind), src, dst,
                   static_cast<unsigned long long>(msg.seq));
        return;
    }

    RecvChannel &rc = recv_channel(src, dst);
    if (msg.seq < rc.expected || rc.ooo.count(msg.seq)) {
        ++st.dupDrops;
        AP_DPRINTF(RNet, "dup drop %s %d -> %d seq=%llu (expect "
                   "%llu)",
                   to_string(msg.kind), src, dst,
                   static_cast<unsigned long long>(msg.seq),
                   static_cast<unsigned long long>(rc.expected));
        // Re-ack so a sender whose ack was lost stops retransmitting.
        schedule_ack(src, dst);
        return;
    }
    if (msg.seq == rc.expected) {
        ++rc.expected;
        deliver_up(std::move(msg));
        // Release any directly following out-of-order arrivals.
        auto it = rc.ooo.find(rc.expected);
        while (it != rc.ooo.end()) {
            ++rc.expected;
            Message next = std::move(it->second);
            rc.ooo.erase(it);
            deliver_up(std::move(next));
            it = rc.ooo.find(rc.expected);
        }
        schedule_ack(src, dst);
        return;
    }
    // Ahead of sequence: buffer for reassembly (bounded).
    if (rc.ooo.size() >= static_cast<std::size_t>(prm.oooCapacity)) {
        ++st.oooEvictions;
    } else {
        ++st.oooBuffered;
        rc.ooo.emplace(msg.seq, std::move(msg));
    }
    schedule_ack(src, dst);
}

void
ReliableNet::process_ack(CellId me, CellId peer,
                         std::uint64_t ackSeq)
{
    if (ackSeq == 0)
        return;
    auto it = sendChans.find(chan_key(me, peer));
    if (it == sendChans.end())
        return;
    SendChannel &ch = it->second;
    bool progress = false;
    while (!ch.window.empty() &&
           ch.window.front().msg.seq <= ackSeq) {
        stats_of(me).ackLatencyUs.sample(static_cast<std::uint64_t>(
            ticks_to_us(sim.now() - ch.window.front().firstSent)));
        ch.window.pop_front();
        progress = true;
    }
    if (!progress)
        return;
    ch.rtoUs = prm.rtoUs;
    // Promote parked sends into the freed window slots.
    while (!ch.backlog.empty() &&
           ch.window.size() <
               static_cast<std::size_t>(prm.windowSize)) {
        Message next = std::move(ch.backlog.front());
        ch.backlog.pop_front();
        stamp_ack(next);
        transmit(ch, me, peer, std::move(next));
    }
}

void
ReliableNet::schedule_ack(CellId src, CellId dst)
{
    RecvChannel &rc = recv_channel(src, dst);
    if (rc.ackPending)
        return;
    rc.ackPending = true;
    sim.schedule(sim.now() + us_to_ticks(prm.ackDelayUs),
                 [this, src, dst]() {
                     std::lock_guard<std::recursive_mutex> lock(mu);
                     RecvChannel &c = recv_channel(src, dst);
                     if (!c.ackPending)
                         return; // piggybacked meanwhile
                     c.ackPending = false;
                     if (is_dead(src) || is_dead(dst))
                         return;
                     Message ack;
                     ack.kind = MsgKind::rnet_ack;
                     ack.src = dst;
                     ack.dst = src;
                     ack.ackSeq = c.expected - 1;
                     ++stats_of(dst).acksSent;
                     tnet.send(std::move(ack));
                 });
}

void
ReliableNet::deliver_up(Message msg)
{
    Deliver &h = handlers[static_cast<std::size_t>(msg.dst)];
    if (h)
        h(std::move(msg));
}

void
ReliableNet::flush_cell(CellId dead)
{
    std::lock_guard<std::recursive_mutex> lock(mu);
    for (auto &[key, ch] : sendChans) {
        CellId src = static_cast<CellId>(
            key / static_cast<std::uint64_t>(cells));
        CellId dst = static_cast<CellId>(
            key % static_cast<std::uint64_t>(cells));
        if (src != dead && dst != dead)
            continue;
        stats_of(src).abortedMsgs +=
            ch.window.size() + ch.backlog.size();
        ch.window.clear();
        ch.backlog.clear();
        ++ch.timerSeq; // invalidate any scheduled timer
        ch.timerArmed = false;
        ch.rtoUs = prm.rtoUs;
    }
    for (auto &[key, rc] : recvChans) {
        CellId src = static_cast<CellId>(
            key / static_cast<std::uint64_t>(cells));
        CellId dst = static_cast<CellId>(
            key % static_cast<std::uint64_t>(cells));
        if (src != dead && dst != dead)
            continue;
        rc.ooo.clear();
        rc.ackPending = false;
    }
}

} // namespace ap::net
