#include "mlsim/trace_file.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/strings.hh"

namespace ap::mlsim
{

using core::Trace;
using core::TraceEvent;
using core::TraceOp;

std::string
trace_to_text(const Trace &trace)
{
    std::string out;
    out += "aptrace 1\n";
    out += strprintf("cells %d\n", trace.cells());
    out += "# cell op peer bytes items computeUs ack waitTarget "
           "sendFlag recvFlag viaRts\n";
    for (CellId c = 0; c < trace.cells(); ++c) {
        for (const TraceEvent &ev : trace.timeline(c)) {
            out += strprintf(
                "%d %s %d %llu %u %.6f %d %llu %llu %llu %d\n", c,
                to_string(ev.op), ev.peer,
                static_cast<unsigned long long>(ev.bytes), ev.items,
                ev.computeUs, ev.ack ? 1 : 0,
                static_cast<unsigned long long>(ev.waitTarget),
                static_cast<unsigned long long>(ev.sendFlagAddr),
                static_cast<unsigned long long>(ev.recvFlagAddr),
                ev.viaRts ? 1 : 0);
        }
    }
    return out;
}

Trace
trace_from_text(const std::string &text)
{
    Trace trace;
    bool have_header = false;
    int lineno = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++lineno;
        std::string_view line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        auto toks = split_ws(line);
        if (!have_header) {
            if (toks.size() != 2 || toks[0] != "aptrace" ||
                toks[1] != "1")
                fatal("trace line %d: expected 'aptrace 1' header",
                      lineno);
            have_header = true;
            continue;
        }
        if (toks[0] == "cells") {
            if (toks.size() != 2)
                fatal("trace line %d: malformed cells line", lineno);
            auto v = parse_int(toks[1]);
            if (!v || *v < 1)
                fatal("trace line %d: bad cell count", lineno);
            trace = Trace(static_cast<int>(*v));
            continue;
        }
        if (trace.cells() == 0)
            fatal("trace line %d: event before 'cells' line", lineno);
        if (toks.size() != 11)
            fatal("trace line %d: expected 11 fields, got %zu",
                  lineno, toks.size());

        auto cell = parse_int(toks[0]);
        if (!cell || *cell < 0 || *cell >= trace.cells())
            fatal("trace line %d: bad cell id '%s'", lineno,
                  toks[0].c_str());

        TraceEvent ev;
        if (!trace_op_from_string(toks[1], ev.op))
            fatal("trace line %d: unknown op '%s'", lineno,
                  toks[1].c_str());

        auto peer = parse_int(toks[2]);
        auto bytes = parse_int(toks[3]);
        auto items = parse_int(toks[4]);
        auto compute = parse_double(toks[5]);
        auto ack = parse_int(toks[6]);
        auto target = parse_int(toks[7]);
        auto sflag = parse_int(toks[8]);
        auto rflag = parse_int(toks[9]);
        auto rts = parse_int(toks[10]);
        if (!peer || !bytes || !items || !compute || !ack ||
            !target || !sflag || !rflag || !rts)
            fatal("trace line %d: malformed field", lineno);

        ev.peer = static_cast<CellId>(*peer);
        ev.bytes = static_cast<std::uint64_t>(*bytes);
        ev.items = static_cast<std::uint32_t>(*items);
        ev.computeUs = *compute;
        ev.ack = *ack != 0;
        ev.waitTarget = static_cast<std::uint64_t>(*target);
        ev.sendFlagAddr = static_cast<Addr>(*sflag);
        ev.recvFlagAddr = static_cast<Addr>(*rflag);
        ev.viaRts = *rts != 0;
        trace.record(static_cast<CellId>(*cell), ev);
    }
    if (!have_header)
        fatal("trace: missing 'aptrace 1' header");
    return trace;
}

void
save_trace(const Trace &trace, const std::string &path)
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    f << trace_to_text(trace);
    if (!f)
        fatal("error writing trace to '%s'", path.c_str());
}

Trace
load_trace(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open trace '%s'", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return trace_from_text(ss.str());
}

} // namespace ap::mlsim
