/**
 * @file
 * Text serialization of message-level traces.
 *
 * The paper collected traces on the real AP1000 and fed them to
 * MLSim as files; this format is our equivalent, so traces captured
 * from the functional machine (or generated analytically) can be
 * stored, inspected and replayed from disk (see examples/mlsim_run).
 *
 * Format (whitespace-separated, '#' comments):
 *
 *   aptrace 1
 *   cells <N>
 *   <cell> <op> <peer> <bytes> <items> <computeUs> <ack>
 *          <waitTarget> <sendFlag> <recvFlag> <viaRts>
 */

#ifndef AP_MLSIM_TRACE_FILE_HH
#define AP_MLSIM_TRACE_FILE_HH

#include <string>

#include "core/trace.hh"

namespace ap::mlsim
{

/** Serialize a trace to the text format. */
std::string trace_to_text(const core::Trace &trace);

/** Parse a trace from the text format; fatal on malformed input. */
core::Trace trace_from_text(const std::string &text);

/** Write a trace to a file; fatal on I/O failure. */
void save_trace(const core::Trace &trace, const std::string &path);

/** Read a trace from a file; fatal on I/O failure. */
core::Trace load_trace(const std::string &path);

} // namespace ap::mlsim

#endif // AP_MLSIM_TRACE_FILE_HH
