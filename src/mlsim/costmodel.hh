/**
 * @file
 * The PUT communication cost model of Figure 7, for both machine
 * styles.
 *
 * Software (AP1000): the paper's formulas —
 *
 *   Send overhead = put_prolog_time + put_enqueue_time
 *                 + put_msg_post_time * msg_size
 *                 + put_dma_set_time + put_epilog_time
 *
 *   Interrupt reception overhead = intr_rtc_time
 *                 + recv_msg_invalid_time * msg_size
 *                 + recv_dma_set_time
 *
 * Hardware (AP1000+): "the overhead of PUT communication on the
 * AP1000+ is only put_enqueue_time on sending"; reception costs the
 * processor nothing.
 */

#ifndef AP_MLSIM_COSTMODEL_HH
#define AP_MLSIM_COSTMODEL_HH

#include <cstdint>

#include "mlsim/params.hh"

namespace ap::mlsim
{

/** All quantities in microseconds. */
class CostModel
{
  public:
    explicit CostModel(Params params) : p(std::move(params)) {}

    const Params &params() const { return p; }

    /** Scale a base-SPARC computation time to this machine. */
    double
    compute(double us) const
    {
        return us * p.computation_factor;
    }

    /** Network transit time for @p bytes over @p distance hops. */
    double
    network(int distance, std::uint64_t bytes) const
    {
        return p.network_prolog_time +
               p.network_delay_time * distance +
               p.network_msg_time * static_cast<double>(bytes) +
               p.network_epilog_time;
    }

    /** Processor time to issue one PUT (the paper's send overhead). */
    double
    put_send_overhead(std::uint64_t bytes) const
    {
        if (p.hw())
            return p.put_enqueue_time;
        return p.put_prolog_time + p.put_enqueue_time +
               p.put_msg_post_time * static_cast<double>(bytes) +
               p.put_dma_set_time + p.put_epilog_time;
    }

    /** Processor time to issue one GET request (no payload). */
    double
    get_request_overhead() const
    {
        if (p.hw())
            return p.put_enqueue_time;
        return p.put_prolog_time + p.put_enqueue_time +
               p.put_dma_set_time + p.put_epilog_time;
    }

    /**
     * Processor time stolen at the receiver per arriving message
     * (the paper's interrupt reception overhead; 0 in hardware).
     */
    double
    recv_interrupt_overhead(std::uint64_t bytes) const
    {
        if (p.hw())
            return 0.0;
        return p.intr_rtc_time +
               p.recv_msg_invalid_time * static_cast<double>(bytes) +
               p.recv_dma_set_time + p.recv_complete_time +
               p.recv_complete_flag_time;
    }

    /**
     * Latency from message arrival until its data (and flag) are
     * usable at the receiver.
     */
    double
    recv_ready_latency(std::uint64_t bytes) const
    {
        if (p.hw())
            return p.recv_dma_set_time + p.recv_complete_flag_time;
        return p.intr_rtc_time +
               p.recv_msg_invalid_time * static_cast<double>(bytes) +
               p.recv_dma_set_time;
    }

    /**
     * Delay between command issue and network injection (the MSC+
     * DMA setup; inline and therefore zero extra in software, where
     * the send overhead already covers it).
     */
    double
    injection_latency(std::uint64_t bytes) const
    {
        if (p.hw())
            return p.put_dma_set_time + p.put_msg_time;
        (void)bytes;
        return p.put_msg_time;
    }

    /** Asynchronous send-completion handling charged to the sender. */
    double
    send_complete_overhead() const
    {
        if (p.hw())
            return 0.0;
        return p.send_complete_time + p.send_complete_flag_time;
    }

    /** Processor time for one SEND (blocking in software). */
    double
    send_overhead(std::uint64_t bytes, int distance) const
    {
        double issue = put_send_overhead(bytes);
        if (p.send_blocking != 0.0)
            return issue + network(distance, bytes);
        return issue;
    }

    /** Processor time for one RECEIVE (search + user copy). */
    double
    receive_overhead(std::uint64_t bytes) const
    {
        return p.recv_search_time +
               p.recv_copy_time * static_cast<double>(bytes);
    }

    /** Processor time for one flag check. */
    double
    flag_check_overhead() const
    {
        return p.flag_check_prolog_time + p.flag_check_epilog_time;
    }

    /** Tree levels for a reduction over @p cells. */
    static int
    levels(int cells)
    {
        int l = 0;
        while ((1 << l) < cells)
            ++l;
        return l;
    }

    /** Duration of a barrier episode after the last arrival. */
    double
    barrier_latency() const
    {
        return p.barrier_time;
    }

    /** Duration of a scalar reduction after the last arrival. */
    double
    gop_latency(int cells) const
    {
        return levels(cells) * p.gop_step_time;
    }

    /** Per-cell active cost inside a scalar reduction. */
    double
    gop_overhead(int cells) const
    {
        return levels(cells) * p.gop_step_time;
    }

    /** One ring step of a vector reduction of @p bytes. */
    double
    vgop_step(std::uint64_t bytes) const
    {
        // send + neighbour transit + in-place consumption, plus
        // the per-byte ring-buffer memory traffic.
        return p.vgop_step_time + send_overhead(bytes, 1) +
               (p.send_blocking != 0.0 ? 0.0 : network(1, bytes)) +
               recv_ready_latency(bytes) + p.recv_search_time +
               p.vgop_byte_time * static_cast<double>(bytes);
    }

    /** Elementwise-combine compute time for one ring step. */
    double
    vgop_combine(std::uint64_t bytes) const
    {
        return compute(static_cast<double>(bytes / 8) * p.flop_time);
    }

    /** Full duration of a vector reduction after the last arrival. */
    double
    vgop_latency(int cells, std::uint64_t bytes) const
    {
        if (cells <= 1)
            return 0.0;
        return (cells - 1) * (vgop_step(bytes) + vgop_combine(bytes));
    }

    /** Run-time system time per runtime-issued transfer. */
    double
    rts_transfer(bool strided) const
    {
        double t = p.rts_putget_time +
                   (strided ? p.rts_stride_time : 0.0);
        return compute(t);
    }

  private:
    Params p;
};

} // namespace ap::mlsim

#endif // AP_MLSIM_COSTMODEL_HH
