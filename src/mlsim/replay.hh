/**
 * @file
 * MLSim: trace-driven message-level replay (Section 5).
 *
 * "MLSim simulates communication behavior based on the trace
 * information and parameter file, preserving the order of message
 * communications and barrier synchronization between processors with
 * a delay parameter. MLSim calculates the time needed for message
 * handling, barrier synchronization, and computation from the input
 * parameters. MLSim can calculate such statistics as user time, idle
 * time, communication overhead time, transferred message size,
 * communication distance, and the number of communication events."
 *
 * The replay runs every cell's trace timeline as a process on the
 * event kernel. Messages carry no data — only sizes — and all costs
 * come from the parameter file via the CostModel. Waits are replayed
 * against per-flag counters recorded in the trace, receives against
 * per-source FIFO arrival queues, and collectives against rendezvous
 * objects matched by occurrence index.
 *
 * Like the paper's MLSim, this model assumes queues are long enough
 * (no overflow); the functional machine models overflow, and the
 * queue ablation bench quantifies it.
 */

#ifndef AP_MLSIM_REPLAY_HH
#define AP_MLSIM_REPLAY_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "core/trace.hh"
#include "mlsim/costmodel.hh"
#include "mlsim/params.hh"

namespace ap::mlsim
{

/** The paper's four execution-time components for one cell. */
struct CellBreakdown
{
    double execUs = 0;     ///< Execution time (scaled computation)
    double rtsUs = 0;      ///< Run-time system time
    double overheadUs = 0; ///< communication library time
    double idleUs = 0;     ///< waiting (flags, barriers, receives)
    double totalUs = 0;    ///< finish time of this cell
};

/** Full replay result. */
struct ReplayReport
{
    /** Machine completion time: max over cells. */
    double totalUs = 0;
    /** Per-cell breakdowns. */
    std::vector<CellBreakdown> cells;
    /** True when some timeline never completed. */
    bool deadlock = false;

    /** Point-to-point data messages transferred. */
    std::uint64_t messages = 0;
    /** Payload bytes transferred point-to-point. */
    std::uint64_t payloadBytes = 0;
    /** Message size distribution. */
    Histogram messageSize;
    /** Hop-distance distribution. */
    Histogram distance;

    /** Average of the per-cell breakdowns. */
    CellBreakdown mean() const;
};

/** One MLSim run: a trace replayed under one parameter set. */
class Replay
{
  public:
    /**
     * @param trace the application trace (one timeline per cell)
     * @param params the machine model
     */
    Replay(const core::Trace &trace, const Params &params);

    /** Execute the replay. Callable once per Replay object. */
    ReplayReport run();

  private:
    const core::Trace &trace;
    Params params;
};

} // namespace ap::mlsim

#endif // AP_MLSIM_REPLAY_HH
