/**
 * @file
 * MLSim machine parameters — the Figure 6 parameter file.
 *
 * "MLSim simulates communication behavior based on the trace
 * information and parameter file ... The computation parameter is
 * given as a ratio to SPARC performance and communication parameters
 * are given in microseconds."
 *
 * Fields named exactly as in Figure 6 carry the paper's values; the
 * remaining fields are the quantities Figure 7 names but whose values
 * the paper only describes as "estimated from hardware
 * specifications" — our estimates are documented in EXPERIMENTS.md.
 */

#ifndef AP_MLSIM_PARAMS_HH
#define AP_MLSIM_PARAMS_HH

#include <string>

namespace ap::mlsim
{

/** One machine model's parameter set. All times in microseconds. */
struct Params
{
    /** Model name (comment header of the parameter file). */
    std::string name = "AP1000";

    // ---- computation ----
    /** Ratio to base SPARC performance (Figure 6). */
    double computation_factor = 1.00;
    /** us per floating-point operation at factor 1.0 (~6 MFLOPS). */
    double flop_time = 0.16;

    // ---- network (Figure 7 items 15-18) ----
    double network_prolog_time = 0.16;
    /** B-net broadcast bus: acquisition + per-byte (50 MB/s). */
    double bnet_prolog_time = 0.5;
    double bnet_msg_time = 0.02;
    double network_delay_time = 0.16;   ///< per hop
    double network_msg_time = 0.04;     ///< per byte (25 MB/s links)
    double network_epilog_time = 0.00;

    // ---- PUT/GET send path (Figure 7 items 1-5) ----
    double put_prolog_time = 20.0;  ///< SVC entry (software model)
    double put_enqueue_time = 0.16; ///< the 8 parameter stores
    double put_epilog_time = 15.0;  ///< SVC exit (software model)
    double put_msg_time = 0.05;     ///< per-message fixed cost
    double put_dma_set_time = 15.0; ///< DMA parameter setup
    double put_msg_post_time = 0.04;///< per byte: post mirrors cache

    // ---- send/receive completion (Figure 7 items 6-12) ----
    double send_complete_time = 10.0;
    double send_complete_flag_time = 1.0;
    double recv_complete_time = 10.0;
    double recv_complete_flag_time = 1.0;

    // ---- receive path (Figure 7 items 8-10) ----
    double intr_rtc_time = 20.0;        ///< RTC interrupt entry
    double recv_msg_invalid_time = 0.04;///< per byte: cache invalidate
    double recv_dma_set_time = 15.0;

    // ---- flag checking (Figure 7 items 13-14) ----
    double flag_check_prolog_time = 1.0;
    double flag_check_epilog_time = 1.0;

    // ---- SEND/RECEIVE library ----
    /** 1 = SEND blocks until the transfer completes (AP1000). */
    double send_blocking = 1.0;
    double recv_search_time = 5.0;
    double recv_copy_time = 0.04;       ///< per byte user-area copy

    // ---- collectives ----
    double barrier_prolog_time = 2.0;   ///< library entry
    double barrier_time = 5.0;          ///< S-net combine/release
    double gop_step_time = 60.0;        ///< per tree level
    double vgop_step_time = 20.0;       ///< fixed cost per ring step
    /** per byte handled in a vector-reduction step beyond the send
     *  path (ring-buffer deposit + in-place operand traffic). */
    double vgop_byte_time = 0.0;

    // ---- run-time system (VPP Fortran) ----
    double rts_putget_time = 4.0;       ///< address calc per transfer
    double rts_stride_time = 6.0;       ///< stride pattern discovery

    // ---- message handling style ----
    /** 1 = MSC+ hardware handling (AP1000+); 0 = software. */
    double hardware_handling = 0.0;

    /** @return true when the MSC+ handles messages in hardware. */
    bool hw() const { return hardware_handling != 0.0; }

    /** The AP1000: SPARC, software message handling (Figure 6). */
    static Params ap1000();

    /**
     * The AP1000+: SuperSPARC (8x), MSC+ hardware handling
     * (Figure 6).
     */
    static Params ap1000_plus();

    /**
     * "AP1000 with SPARC replaced by SuperSPARC": the paper's second
     * model — fast processor, software message handling.
     */
    static Params ap1000_fast();

    /**
     * Serialize in the Figure 6 file format (named values, '#'
     * comments).
     */
    std::string to_file() const;

    /**
     * Parse the Figure 6 file format. Unknown keys are fatal (a
     * typo'd parameter silently defaulting would poison results).
     */
    static Params from_file(const std::string &text);

    /** Set one field by its Figure 6 name. @return false if unknown. */
    bool set(const std::string &key, double value);

    /** Get one field by name. @return false if unknown. */
    bool get(const std::string &key, double &value) const;
};

} // namespace ap::mlsim

#endif // AP_MLSIM_PARAMS_HH
