#include "mlsim/params.hh"

#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/strings.hh"

namespace ap::mlsim
{

namespace
{

/** Name <-> field table drives set/get/to_file/from_file. */
struct Field
{
    const char *key;
    double Params::*member;
};

const std::vector<Field> &
fields()
{
    static const std::vector<Field> f = {
        {"computation_factor", &Params::computation_factor},
        {"flop_time", &Params::flop_time},
        {"network_prolog_time", &Params::network_prolog_time},
        {"bnet_prolog_time", &Params::bnet_prolog_time},
        {"bnet_msg_time", &Params::bnet_msg_time},
        {"network_delay_time", &Params::network_delay_time},
        {"network_msg_time", &Params::network_msg_time},
        {"network_epilog_time", &Params::network_epilog_time},
        {"put_prolog_time", &Params::put_prolog_time},
        {"put_enqueue_time", &Params::put_enqueue_time},
        {"put_epilog_time", &Params::put_epilog_time},
        {"put_msg_time", &Params::put_msg_time},
        {"put_dma_set_time", &Params::put_dma_set_time},
        {"put_msg_post_time", &Params::put_msg_post_time},
        {"send_complete_time", &Params::send_complete_time},
        {"send_complete_flag_time", &Params::send_complete_flag_time},
        {"recv_complete_time", &Params::recv_complete_time},
        {"recv_complete_flag_time", &Params::recv_complete_flag_time},
        {"intr_rtc_time", &Params::intr_rtc_time},
        {"recv_msg_invalid_time", &Params::recv_msg_invalid_time},
        {"recv_dma_set_time", &Params::recv_dma_set_time},
        {"flag_check_prolog_time", &Params::flag_check_prolog_time},
        {"flag_check_epilog_time", &Params::flag_check_epilog_time},
        {"send_blocking", &Params::send_blocking},
        {"recv_search_time", &Params::recv_search_time},
        {"recv_copy_time", &Params::recv_copy_time},
        {"barrier_prolog_time", &Params::barrier_prolog_time},
        {"barrier_time", &Params::barrier_time},
        {"gop_step_time", &Params::gop_step_time},
        {"vgop_step_time", &Params::vgop_step_time},
        {"vgop_byte_time", &Params::vgop_byte_time},
        {"rts_putget_time", &Params::rts_putget_time},
        {"rts_stride_time", &Params::rts_stride_time},
        {"hardware_handling", &Params::hardware_handling},
    };
    return f;
}

} // namespace

bool
Params::set(const std::string &key, double value)
{
    for (const Field &f : fields()) {
        if (key == f.key) {
            this->*(f.member) = value;
            return true;
        }
    }
    return false;
}

bool
Params::get(const std::string &key, double &value) const
{
    for (const Field &f : fields()) {
        if (key == f.key) {
            value = this->*(f.member);
            return true;
        }
    }
    return false;
}

Params
Params::ap1000()
{
    // The left column of Figure 6, verbatim where given.
    Params p;
    p.name = "AP1000";
    p.computation_factor = 1.00;
    p.network_prolog_time = 0.16;
    p.network_delay_time = 0.16;
    p.put_prolog_time = 20.0;
    p.put_epilog_time = 15.0;
    p.put_msg_time = 0.05;
    p.put_dma_set_time = 15.0;
    p.put_msg_post_time = 0.04;
    p.intr_rtc_time = 20.0;
    p.recv_msg_invalid_time = 0.04;
    p.recv_dma_set_time = 15.0;
    p.hardware_handling = 0.0;
    p.send_blocking = 1.0;
    // Estimated from hardware/OS behaviour (see EXPERIMENTS.md).
    p.send_complete_time = 10.0;
    p.send_complete_flag_time = 1.0;
    p.recv_complete_time = 10.0;
    p.recv_complete_flag_time = 1.0;
    p.flag_check_prolog_time = 1.0;
    p.flag_check_epilog_time = 1.0;
    p.recv_search_time = 5.0;
    p.recv_copy_time = 0.04;
    p.barrier_prolog_time = 2.0;
    p.barrier_time = 5.0;
    p.gop_step_time = 60.0;
    p.vgop_step_time = 20.0;
    p.rts_putget_time = 40.0;
    p.rts_stride_time = 60.0;
    return p;
}

Params
Params::ap1000_plus()
{
    // The right column of Figure 6, verbatim where given.
    Params p;
    p.name = "AP1000+";
    p.computation_factor = 0.125;
    p.network_prolog_time = 0.16;
    p.network_delay_time = 0.16;
    p.put_prolog_time = 1.00;
    p.put_epilog_time = 0.00;
    p.put_msg_time = 0.05;
    p.put_dma_set_time = 0.50;
    p.put_msg_post_time = 0.00;
    p.intr_rtc_time = 0.00;
    p.recv_msg_invalid_time = 0.00;
    p.recv_dma_set_time = 0.50;
    p.hardware_handling = 1.0;
    p.send_blocking = 0.0; // SEND = non-blocking PUT to ring buffer
    // MSC+ handles completion; the MC increments flags in hardware.
    p.send_complete_time = 0.0;
    p.send_complete_flag_time = 0.04;
    p.recv_complete_time = 0.0;
    p.recv_complete_flag_time = 0.04;
    p.flag_check_prolog_time = 0.10;
    p.flag_check_epilog_time = 0.00;
    p.recv_search_time = 1.0;
    p.recv_copy_time = 0.02;
    p.barrier_prolog_time = 0.20;
    p.barrier_time = 1.0;
    p.gop_step_time = 2.0; // communication registers
    p.vgop_step_time = 2.0;
    // The reduction operands stream through DRAM three times per
    // step (send gather, ring deposit, in-place consume) at memory
    // bandwidth; the blocking-send software path of the AP1000
    // models this inside its send/receive costs instead.
    p.vgop_byte_time = 0.035;
    p.rts_putget_time = 40.0; // SPARC-relative; scaled by the factor
    p.rts_stride_time = 60.0;
    return p;
}

Params
Params::ap1000_fast()
{
    // "an AP1000 model whose processor speed is eight times faster
    // and message handling is done by software" (Section 5.3).
    Params p = ap1000();
    p.name = "AP1000*";
    p.computation_factor = 0.125;
    return p;
}

std::string
Params::to_file() const
{
    std::string out;
    out += "#\n# " + name + " model\n#\n";
    out += "# computation\n";
    for (const Field &f : fields()) {
        out += strprintf("%-26s %.4f\n", f.key, this->*(f.member));
    }
    return out;
}

Params
Params::from_file(const std::string &text)
{
    Params p;
    int lineno = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++lineno;
        std::string_view line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        auto toks = split_ws(line);
        if (toks.size() != 2)
            fatal("parameter file line %d: expected 'name value', "
                  "got '%s'",
                  lineno, std::string(line).c_str());
        auto value = parse_double(toks[1]);
        if (!value)
            fatal("parameter file line %d: bad value '%s'", lineno,
                  toks[1].c_str());
        if (!p.set(toks[0], *value))
            fatal("parameter file line %d: unknown parameter '%s'",
                  lineno, toks[0].c_str());
    }
    return p;
}

} // namespace ap::mlsim
