#include "mlsim/replay.hh"

#include <deque>
#include <memory>
#include <unordered_map>

#include "base/logging.hh"
#include "net/topology.hh"
#include "sim/eventq.hh"
#include "sim/process.hh"

namespace ap::mlsim
{

using core::Trace;
using core::TraceEvent;
using core::TraceOp;

namespace
{

constexpr std::uint64_t header_bytes = 32;

/** A collective episode matched across cells by occurrence index. */
struct Rendezvous
{
    int arrived = 0;
    Tick maxArrival = 0;
    std::uint64_t bytes = 0;
    bool complete = false;
    Tick release = 0;
    sim::Condition cond;
};

/** Per-cell replay state. */
struct CellState
{
    std::unordered_map<Addr, std::uint64_t> flags;
    sim::Condition flagCond;
    std::uint64_t acks = 0;
    sim::Condition ackCond;
    /** arrived SENDs per source: payload sizes, FIFO. */
    std::unordered_map<CellId, std::deque<std::uint64_t>> sends;
    sim::Condition sendCond;
    /** asynchronous handling time to charge at the next boundary. */
    double backlogUs = 0;
    Tick mscBusy = 0;  ///< MSC+ send pipeline (hardware model)
    Tick recvBusy = 0; ///< receive handling serialization
    /** collective occurrence counters, per group key (0 = all). */
    std::unordered_map<std::uint64_t, int> barrierSeq;
    std::unordered_map<std::uint64_t, int> gopSeq;
    std::unordered_map<std::uint64_t, int> vgopSeq;

    CellBreakdown acct;
    sim::Process *proc = nullptr;
};

} // namespace

CellBreakdown
ReplayReport::mean() const
{
    CellBreakdown m;
    if (cells.empty())
        return m;
    for (const CellBreakdown &c : cells) {
        m.execUs += c.execUs;
        m.rtsUs += c.rtsUs;
        m.overheadUs += c.overheadUs;
        m.idleUs += c.idleUs;
        m.totalUs += c.totalUs;
    }
    double n = static_cast<double>(cells.size());
    m.execUs /= n;
    m.rtsUs /= n;
    m.overheadUs /= n;
    m.idleUs /= n;
    m.totalUs /= n;
    return m;
}

Replay::Replay(const Trace &trace, const Params &params)
    : trace(trace), params(params)
{
}

ReplayReport
Replay::run()
{
    const int n = trace.cells();
    if (n == 0)
        return {};

    sim::Simulator sim;
    net::Torus topo = net::Torus::squarest(n);
    CostModel cost(params);
    ReplayReport report;
    report.cells.resize(static_cast<std::size_t>(n));

    std::vector<CellState> cells(static_cast<std::size_t>(n));
    // Collective episodes, keyed by group identity (hash recorded in
    // the trace; 0 = every cell) then by occurrence index.
    std::unordered_map<std::uint64_t, std::deque<Rendezvous>> barriers,
        gops, vgops;
    std::unordered_map<std::uint64_t, Tick> pairLast;
    Tick bnetBusy = 0;

    auto cs = [&](CellId c) -> CellState & {
        return cells[static_cast<std::size_t>(c)];
    };

    // FIFO-clamped arrival tick for a message injected at `inject`.
    auto arrival_tick = [&](CellId src, CellId dst,
                            std::uint64_t wire_bytes, Tick inject) {
        Tick arrive =
            inject + us_to_ticks(cost.network(topo.distance(src, dst),
                                              wire_bytes));
        std::uint64_t key =
            static_cast<std::uint64_t>(src) *
                static_cast<std::uint64_t>(n) +
            static_cast<std::uint64_t>(dst);
        Tick &last = pairLast[key];
        if (arrive < last)
            arrive = last;
        last = arrive;
        return arrive;
    };

    // Charge asynchronous handling to a cell: immediately as
    // overhead when the cell is parked (the processor was idle
    // anyway), deferred to its next event boundary when it is busy.
    auto steal = [&](CellId c, double us) {
        CellState &st = cs(c);
        if (st.proc && st.proc->blocked())
            st.acct.overheadUs += us;
        else
            st.backlogUs += us;
    };

    // Schedule receive-side handling for a message reaching `dst` at
    // `arrive`; `effect` runs when the data/flag become usable.
    auto deliver = [&](CellId dst, Tick arrive, std::uint64_t bytes,
                       std::function<void()> effect) {
        sim.schedule(arrive, [&, dst, bytes,
                              effect = std::move(effect)]() {
            CellState &st = cs(dst);
            Tick start = std::max(sim.now(), st.recvBusy);
            Tick ready =
                start + us_to_ticks(cost.recv_ready_latency(bytes));
            st.recvBusy = ready;
            steal(dst, cost.recv_interrupt_overhead(bytes));
            sim.schedule(ready, effect);
        });
    };

    // Point-to-point bookkeeping for the report.
    auto count_message = [&](CellId src, CellId dst,
                             std::uint64_t bytes) {
        ++report.messages;
        report.payloadBytes += bytes;
        report.messageSize.sample(bytes);
        report.distance.sample(static_cast<std::uint64_t>(
            topo.distance(src, dst)));
    };

    // ---- the per-cell program ------------------------------------------

    auto body = [&](CellId me, sim::Process &proc) {
        CellState &st = cs(me);
        st.proc = &proc;

        auto charge_overhead = [&](double us) {
            st.acct.overheadUs += us;
            proc.delay(us_to_ticks(us));
        };
        auto charge_rts = [&](double us) {
            st.acct.rtsUs += us;
            proc.delay(us_to_ticks(us));
        };
        auto drain_backlog = [&]() {
            if (st.backlogUs > 0) {
                double b = st.backlogUs;
                st.backlogUs = 0;
                charge_overhead(b);
            }
        };

        // Injection tick for a command issued now (hardware: MSC+
        // pipeline serialization; software: inline, already paid).
        auto inject_tick = [&](std::uint64_t bytes) {
            Tick inj;
            if (params.hw()) {
                inj = std::max(sim.now(), st.mscBusy) +
                      us_to_ticks(cost.injection_latency(bytes));
                st.mscBusy =
                    inj + us_to_ticks(params.network_msg_time *
                                      static_cast<double>(bytes));
            } else {
                inj = sim.now() +
                      us_to_ticks(cost.injection_latency(bytes));
            }
            return inj;
        };

        auto send_complete_tick = [&](Tick inject,
                                      std::uint64_t bytes) {
            return inject + us_to_ticks(params.network_msg_time *
                                        static_cast<double>(bytes));
        };

        // One PUT (or ack probe when probe_only). Returns nothing;
        // schedules all downstream effects.
        auto do_put = [&](const TraceEvent &ev) {
            charge_overhead(cost.put_send_overhead(ev.bytes));
            Tick inj = inject_tick(ev.bytes);
            Tick complete = send_complete_tick(inj, ev.bytes);
            count_message(me, ev.peer, ev.bytes);

            if (ev.sendFlagAddr != no_flag) {
                sim.schedule(complete, [&, me, a = ev.sendFlagAddr]() {
                    ++cs(me).flags[a];
                    cs(me).flagCond.notify_all();
                });
            }
            if (!params.hw()) {
                sim.schedule(complete, [&, me]() {
                    steal(me, cost.send_complete_overhead());
                });
            }

            Tick arrive = arrival_tick(me, ev.peer,
                                       ev.bytes + header_bytes, inj);
            CellId dst = ev.peer;
            Addr rf = ev.recvFlagAddr;
            deliver(dst, arrive, ev.bytes, [&, dst, rf]() {
                if (rf != no_flag) {
                    ++cs(dst).flags[rf];
                    cs(dst).flagCond.notify_all();
                }
            });

            if (ev.ack) {
                // The GET-to-address-0 probe: header out, header
                // back; the reply bumps the implicit ack flag.
                charge_overhead(cost.get_request_overhead());
                Tick pinj = inject_tick(0);
                Tick parr = arrival_tick(me, dst, header_bytes, pinj);
                deliver(dst, parr, 0, [&, dst, me]() {
                    CellState &owner = cs(dst);
                    Tick rinj = params.hw()
                                    ? std::max(sim.now(),
                                               owner.mscBusy) +
                                          us_to_ticks(
                                              params.put_dma_set_time)
                                    : sim.now();
                    if (params.hw())
                        owner.mscBusy = rinj;
                    else
                        steal(dst, params.put_dma_set_time);
                    Tick back = arrival_tick(dst, me, header_bytes,
                                             rinj);
                    deliver(me, back, 0, [&, me]() {
                        ++cs(me).acks;
                        cs(me).ackCond.notify_all();
                    });
                });
            }
        };

        auto do_get = [&](const TraceEvent &ev) {
            charge_overhead(cost.get_request_overhead());
            Tick inj = inject_tick(0);
            Tick arrive = arrival_tick(me, ev.peer, header_bytes,
                                       inj);
            count_message(me, ev.peer, ev.bytes);

            CellId owner_id = ev.peer;
            std::uint64_t bytes = ev.bytes;
            Addr sf = ev.sendFlagAddr;
            Addr rf = ev.recvFlagAddr;
            CellId requester = me;

            deliver(owner_id, arrive, 0, [&, owner_id, bytes, sf, rf,
                                          requester]() {
                CellState &owner = cs(owner_id);
                Tick rinj;
                if (params.hw()) {
                    rinj = std::max(sim.now(), owner.mscBusy) +
                           us_to_ticks(cost.injection_latency(bytes));
                    owner.mscBusy =
                        rinj + us_to_ticks(params.network_msg_time *
                                           static_cast<double>(bytes));
                } else {
                    double build = params.put_dma_set_time +
                                   params.put_msg_post_time *
                                       static_cast<double>(bytes);
                    steal(owner_id, build);
                    rinj = sim.now() + us_to_ticks(build);
                }
                Tick complete =
                    rinj + us_to_ticks(params.network_msg_time *
                                       static_cast<double>(bytes));
                if (sf != no_flag) {
                    sim.schedule(complete, [&, owner_id, sf]() {
                        ++cs(owner_id).flags[sf];
                        cs(owner_id).flagCond.notify_all();
                    });
                }
                Tick back = arrival_tick(owner_id, requester,
                                         bytes + header_bytes, rinj);
                deliver(requester, back, bytes, [&, requester, rf]() {
                    if (rf != no_flag) {
                        ++cs(requester).flags[rf];
                        cs(requester).flagCond.notify_all();
                    }
                });
            });
        };

        auto do_send = [&](const TraceEvent &ev) {
            charge_overhead(cost.send_overhead(
                ev.bytes, topo.distance(me, ev.peer)));
            Tick inj = inject_tick(ev.bytes);
            Tick arrive = arrival_tick(me, ev.peer,
                                       ev.bytes + header_bytes, inj);
            count_message(me, ev.peer, ev.bytes);
            CellId dst = ev.peer;
            CellId src = me;
            std::uint64_t bytes = ev.bytes;
            deliver(dst, arrive, bytes, [&, dst, src, bytes]() {
                cs(dst).sends[src].push_back(bytes);
                cs(dst).sendCond.notify_all();
            });
        };

        auto do_recv = [&](const TraceEvent &ev) {
            auto &queue = st.sends[ev.peer];
            while (queue.empty())
                proc.wait(st.sendCond);
            std::uint64_t bytes = queue.front();
            queue.pop_front();
            charge_overhead(cost.receive_overhead(bytes));
        };

        auto rendezvous = [&](std::deque<Rendezvous> &list, int seq,
                              int members, std::uint64_t bytes,
                              double latency_us, double active_us,
                              double exec_us) {
            while (static_cast<int>(list.size()) <= seq)
                list.emplace_back();
            Rendezvous &r = list[static_cast<std::size_t>(seq)];
            Tick arrive = sim.now();
            r.maxArrival = std::max(r.maxArrival, arrive);
            r.bytes = std::max(r.bytes, bytes);
            if (++r.arrived == members) {
                r.release =
                    r.maxArrival + us_to_ticks(latency_us);
                r.complete = true;
                sim.schedule(r.release,
                             [&r]() { r.cond.notify_all(); });
            }
            while (!(r.complete && sim.now() >= r.release))
                proc.wait(r.cond);
            // The window [arrive, release] covers active
            // participation and scaled compute; the rest of the
            // window falls out as residual idle at the end.
            double window = ticks_to_us(sim.now() - arrive);
            double active = std::min(active_us, window);
            double exec = std::min(exec_us, window - active);
            st.acct.overheadUs += active;
            st.acct.execUs += exec;
        };

        // ---- main loop --------------------------------------------------

        for (const TraceEvent &ev : trace.timeline(me)) {
            drain_backlog();
            if (ev.viaRts && (ev.op == TraceOp::put ||
                              ev.op == TraceOp::put_stride ||
                              ev.op == TraceOp::get ||
                              ev.op == TraceOp::get_stride)) {
                bool strided = ev.op == TraceOp::put_stride ||
                               ev.op == TraceOp::get_stride;
                charge_rts(cost.rts_transfer(strided));
            }

            switch (ev.op) {
              case TraceOp::compute: {
                double us = cost.compute(ev.computeUs);
                st.acct.execUs += us;
                proc.delay(us_to_ticks(us));
                break;
              }
              case TraceOp::put:
              case TraceOp::put_stride:
                do_put(ev);
                break;
              case TraceOp::get:
              case TraceOp::get_stride:
                do_get(ev);
                break;
              case TraceOp::send:
                do_send(ev);
                break;
              case TraceOp::recv:
                do_recv(ev);
                break;
              case TraceOp::barrier: {
                std::uint64_t key = ev.sendFlagAddr; // group hash
                int members = ev.waitTarget
                                  ? static_cast<int>(ev.waitTarget)
                                  : n;
                charge_overhead(params.barrier_prolog_time);
                rendezvous(barriers[key], st.barrierSeq[key]++,
                           members, 0, cost.barrier_latency(), 0, 0);
                break;
              }
              case TraceOp::gop: {
                std::uint64_t key = ev.sendFlagAddr;
                int members = ev.waitTarget
                                  ? static_cast<int>(ev.waitTarget)
                                  : n;
                rendezvous(gops[key], st.gopSeq[key]++, members,
                           ev.bytes, cost.gop_latency(members),
                           cost.gop_overhead(members), 0);
                break;
              }
              case TraceOp::vgop: {
                std::uint64_t key = ev.sendFlagAddr;
                int members = ev.waitTarget
                                  ? static_cast<int>(ev.waitTarget)
                                  : n;
                rendezvous(vgops[key], st.vgopSeq[key]++, members,
                           ev.bytes,
                           cost.vgop_latency(members, ev.bytes),
                           (members - 1) * cost.vgop_step(ev.bytes),
                           (members - 1) *
                               cost.vgop_combine(ev.bytes));
                break;
              }
              case TraceOp::bcast: {
                // Only the root drives the B-net; receiver events
                // are markers (they synchronize via flag waits).
                if (ev.peer != me)
                    break;
                charge_overhead(params.put_enqueue_time);
                Tick start = std::max(sim.now(), bnetBusy);
                Tick arrive =
                    start +
                    us_to_ticks(params.bnet_prolog_time +
                                params.bnet_msg_time *
                                    static_cast<double>(
                                        ev.bytes + header_bytes));
                bnetBusy = arrive;
                for (CellId dst = 0; dst < n; ++dst) {
                    if (dst == me)
                        continue;
                    Addr rf = ev.recvFlagAddr;
                    deliver(dst, arrive, ev.bytes, [&, dst, rf]() {
                        if (rf != no_flag) {
                            ++cs(dst).flags[rf];
                            cs(dst).flagCond.notify_all();
                        }
                    });
                }
                break;
              }
              case TraceOp::flag_wait: {
                charge_overhead(cost.flag_check_overhead());
                while (st.flags[ev.recvFlagAddr] < ev.waitTarget)
                    proc.wait(st.flagCond);
                break;
              }
              case TraceOp::ack_wait: {
                charge_overhead(cost.flag_check_overhead());
                while (st.acks < ev.waitTarget)
                    proc.wait(st.ackCond);
                break;
              }
            }
        }
        drain_backlog();
        st.acct.totalUs = ticks_to_us(sim.now());
        // Overhead stolen by asynchronous handlers can overlap
        // collective windows that were already charged; cap it so
        // the components tile the timeline exactly.
        st.acct.overheadUs =
            std::min(st.acct.overheadUs,
                     std::max(0.0, st.acct.totalUs - st.acct.execUs -
                                       st.acct.rtsUs));
        // Idle is the residual: whatever part of the timeline was
        // not execution, run-time system, or library/handler time
        // ("time spent waiting for messages ... flag update ...
        // establishment of barrier synchronization").
        st.acct.idleUs = std::max(
            0.0, st.acct.totalUs - st.acct.execUs - st.acct.rtsUs -
                     st.acct.overheadUs);
    };

    // ---- launch ----------------------------------------------------------

    std::vector<std::unique_ptr<sim::Process>> procs;
    procs.reserve(static_cast<std::size_t>(n));
    for (CellId c = 0; c < n; ++c) {
        procs.push_back(std::make_unique<sim::Process>(
            sim, strprintf("mlsim-cell%d", c),
            [&, c](sim::Process &p) { body(c, p); }));
        procs.back()->start(0);
    }

    sim.run();

    for (CellId c = 0; c < n; ++c) {
        if (!procs[static_cast<std::size_t>(c)]->finished()) {
            report.deadlock = true;
            warn("MLSim replay: cell %d never finished", c);
        }
        report.cells[static_cast<std::size_t>(c)] = cs(c).acct;
        report.totalUs = std::max(
            report.totalUs,
            cs(c).acct.totalUs);
    }
    return report;
}

} // namespace ap::mlsim
