/**
 * @file
 * The application suite of Section 5.2.
 *
 * "We present simulation results for a collection of scientific
 * programs. This collection includes EP, SP, CG, and FT from the NAS
 * parallel benchmarks, TOMCATV from the SPEC benchmarks in VPP
 * Fortran, and matrix multiplication and scaled conjugate gradient
 * (SCG) in C."
 *
 * The paper captured these applications' traces on a physical AP1000;
 * we have no AP1000, so each App generates its message-level trace
 * from the algorithm's communication structure at the paper's exact
 * problem sizes (the substitution documented in DESIGN.md). Table 3
 * gives per-PE operation counts for every application, which pins the
 * generated traces: measure_stats() recomputes that table from a
 * trace, and tests assert that our generators land on the paper's
 * numbers.
 */

#ifndef AP_APPS_APP_HH
#define AP_APPS_APP_HH

#include <memory>
#include <string>
#include <vector>

#include "core/trace.hh"

namespace ap::apps
{

/** One row of Table 3 (all values per PE, averaged). */
struct Table3Row
{
    int pe = 0;
    double send = 0;   ///< point-to-point SEND messages
    double gop = 0;    ///< scalar global operations
    double vgop = 0;   ///< vector global operations
    double sync = 0;   ///< barrier synchronizations
    double put = 0;    ///< PUT messages
    double puts = 0;   ///< PUT with stride
    double get = 0;    ///< GET messages
    double gets = 0;   ///< GET with stride
    double msgSize = 0;///< mean PUT/GET payload (no ack probes)
};

/** Static description of one application. */
struct AppInfo
{
    std::string name;
    std::string language; ///< "VPP Fortran" or "C"
    int cells = 0;
    std::string description;
};

/** A workload: generates the paper-scale message-level trace. */
class App
{
  public:
    virtual ~App() = default;

    /** Name, language, machine size, problem description. */
    virtual AppInfo info() const = 0;

    /** Build the full trace (one timeline per cell). */
    virtual core::Trace generate() const = 0;

    /** The paper's Table 3 row for this application. */
    virtual Table3Row paper_stats() const = 0;

    /** Table 2: the paper's AP1000+ speedup over the AP1000. */
    virtual double paper_speedup_plus() const = 0;

    /** Table 2: the paper's AP1000* speedup over the AP1000. */
    virtual double paper_speedup_fast() const = 0;
};

/**
 * Recompute a Table 3 row from a trace. Zero-byte acknowledgement
 * probes are excluded, as the paper excludes "GET for acknowledge";
 * vector reductions contribute (P-1)/P SENDs per cell per episode
 * (the reduction chain sends once from every cell but the root),
 * matching how the paper's counts tabulate CG.
 */
Table3Row measure_stats(const core::Trace &trace);

/** All eight applications (Table 3 order), paper problem sizes. */
std::vector<std::unique_ptr<App>> standard_suite();

/** Look up one application by Table 3 name (e.g. "TC no st"). */
std::unique_ptr<App> make_app(const std::string &name);

} // namespace ap::apps

#endif // AP_APPS_APP_HH
