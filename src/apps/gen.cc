#include "apps/gen.hh"

#include "base/logging.hh"

namespace ap::apps
{

using core::TraceEvent;
using core::TraceOp;

TraceBuilder::TraceBuilder(int cells)
    : trace(cells),
      pendingData(static_cast<std::size_t>(cells), 0),
      acksIssued(static_cast<std::size_t>(cells), 0)
{
    if (cells < 1)
        fatal("trace needs at least one cell");
}

void
TraceBuilder::compute(CellId c, double us)
{
    TraceEvent ev;
    ev.op = TraceOp::compute;
    ev.computeUs = us;
    trace.record(c, ev);
}

void
TraceBuilder::put(CellId src, CellId dst, std::uint64_t bytes,
                  XferOpts opts)
{
    TraceEvent ev;
    ev.op = opts.stride ? TraceOp::put_stride : TraceOp::put;
    ev.peer = dst;
    ev.bytes = bytes;
    ev.items = opts.stride ? opts.items : 1;
    ev.ack = opts.ack;
    ev.viaRts = opts.rts;
    ev.recvFlagAddr = data_flag;
    trace.record(src, ev);
    ++pendingData[static_cast<std::size_t>(dst)];
    if (opts.ack)
        ++acksIssued[static_cast<std::size_t>(src)];
}

void
TraceBuilder::get(CellId src, CellId dst, std::uint64_t bytes,
                  XferOpts opts)
{
    TraceEvent ev;
    ev.op = opts.stride ? TraceOp::get_stride : TraceOp::get;
    ev.peer = dst;
    ev.bytes = bytes;
    ev.items = opts.stride ? opts.items : 1;
    ev.viaRts = opts.rts;
    ev.recvFlagAddr = data_flag;
    trace.record(src, ev);
    ++pendingData[static_cast<std::size_t>(src)];
}

void
TraceBuilder::send(CellId src, CellId dst, std::uint64_t bytes)
{
    TraceEvent ev;
    ev.op = TraceOp::send;
    ev.peer = dst;
    ev.bytes = bytes;
    trace.record(src, ev);
}

void
TraceBuilder::recv(CellId c, CellId src, std::uint64_t bytes)
{
    TraceEvent ev;
    ev.op = TraceOp::recv;
    ev.peer = src;
    ev.bytes = bytes;
    trace.record(c, ev);
}

void
TraceBuilder::wait_data(CellId c)
{
    TraceEvent ev;
    ev.op = TraceOp::flag_wait;
    ev.recvFlagAddr = data_flag;
    ev.waitTarget = pendingData[static_cast<std::size_t>(c)];
    trace.record(c, ev);
}

void
TraceBuilder::wait_acks(CellId c)
{
    TraceEvent ev;
    ev.op = TraceOp::ack_wait;
    ev.waitTarget = acksIssued[static_cast<std::size_t>(c)];
    trace.record(c, ev);
}

void
TraceBuilder::barrier_all()
{
    TraceEvent ev;
    ev.op = TraceOp::barrier;
    for (CellId c = 0; c < trace.cells(); ++c)
        trace.record(c, ev);
}

void
TraceBuilder::gop_all(std::uint64_t bytes)
{
    TraceEvent ev;
    ev.op = TraceOp::gop;
    ev.bytes = bytes;
    for (CellId c = 0; c < trace.cells(); ++c)
        trace.record(c, ev);
}

void
TraceBuilder::vgop_all(std::uint64_t bytes)
{
    TraceEvent ev;
    ev.op = TraceOp::vgop;
    ev.bytes = bytes;
    for (CellId c = 0; c < trace.cells(); ++c)
        trace.record(c, ev);
}

} // namespace ap::apps
