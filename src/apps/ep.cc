#include "apps/ep.hh"

#include "apps/gen.hh"

namespace ap::apps
{

AppInfo
Ep::info() const
{
    return AppInfo{"EP", "VPP Fortran", pe,
                   "2^28 pseudo-random numbers, no communication"};
}

core::Trace
Ep::generate() const
{
    TraceBuilder b(pe);
    double per_cell_us =
        total_randoms / pe * flops_per_random * sparc_flop_us;
    for (CellId c = 0; c < pe; ++c)
        b.compute(c, per_cell_us);
    return b.take();
}

Table3Row
Ep::paper_stats() const
{
    Table3Row r;
    r.pe = pe;
    return r; // all zeros: "EP ... has no communication"
}

} // namespace ap::apps
