/**
 * @file
 * TOMCATV — the SPEC vectorized mesh generator (Section 5.2).
 *
 * "TOMCATV is a vectorized mesh generation program. For this program,
 * two types of simulations were done: one with stride data transfers,
 * the other without stride data transfers, meaning each item was sent
 * one by one. MLSim simulated the first 10 iterations."
 *
 * The 257 x 257 mesh is block-decomposed along the *second* dimension
 * (columns), so the overlap areas of Figure 2 are mesh columns and
 * every boundary refresh is a strided transfer of 257 8-byte items —
 * 2056 bytes, exactly Table 3's mean message size. Per iteration the
 * 15 internal boundaries each move two arrays in both directions: 60
 * stride PUTs plus 60 stride GETs machine-wide, i.e. 3.75 of each per
 * PE — ten iterations give Table 3's 37.5.
 *
 * Without stride support each 257-item column becomes 257 single-
 * element transfers: 9637.5 per PE of size 8 ("the number of
 * communications becomes 257 times and the message size one 257th").
 * "TOMCATV with stride data transfers is about 50% faster than that
 * without stride data transfers on the AP1000+ model."
 */

#ifndef AP_APPS_TOMCATV_HH
#define AP_APPS_TOMCATV_HH

#include "apps/app.hh"

namespace ap::apps
{

/** The TOMCATV kernel; @p use_stride selects the two Table 3 rows. */
class Tomcatv : public App
{
  public:
    static constexpr int pe = 16;
    static constexpr int iterations = 10;
    static constexpr int mesh = 257;
    static constexpr double flops_per_point_per_iter = 60.0;
    static constexpr double sparc_flop_us = 0.16;
    /** Computation calibration (see EXPERIMENTS.md / cg.hh). */
    static constexpr double compute_calibration = 15.0;
    static constexpr std::uint64_t column_bytes = mesh * 8; // 2056

    explicit Tomcatv(bool use_stride) : useStride(use_stride) {}

    AppInfo info() const override;
    core::Trace generate() const override;
    Table3Row paper_stats() const override;

    double
    paper_speedup_plus() const override
    {
        return useStride ? 7.83 : 11.55;
    }

    double
    paper_speedup_fast() const override
    {
        return useStride ? 6.42 : 2.20;
    }

  private:
    bool useStride;
};

} // namespace ap::apps

#endif // AP_APPS_TOMCATV_HH
