/**
 * @file
 * EP — the NAS embarrassingly parallel kernel (Section 5.2).
 *
 * "EP generates 2^28 pseudo-random numbers and has no communication."
 * Table 3 is all zeros for EP, so the trace is exactly one compute
 * event per cell: each cell's slice of the 2^28-number stream of the
 * NAS linear congruential generator (see base/random.hh's NasLcg),
 * with ~30 floating-point operations per Gaussian-pair test. EP is
 * the control: both fast-processor models must show exactly the
 * processor improvement (8.00 in Table 2).
 */

#ifndef AP_APPS_EP_HH
#define AP_APPS_EP_HH

#include "apps/app.hh"

namespace ap::apps
{

/** The EP kernel. */
class Ep : public App
{
  public:
    static constexpr int pe = 64;
    static constexpr double total_randoms = 268435456.0; // 2^28
    static constexpr double flops_per_random = 30.0;
    /** base-SPARC time per floating-point operation (us). */
    static constexpr double sparc_flop_us = 0.16;

    AppInfo info() const override;
    core::Trace generate() const override;
    Table3Row paper_stats() const override;
    double paper_speedup_plus() const override { return 8.00; }
    double paper_speedup_fast() const override { return 8.00; }
};

} // namespace ap::apps

#endif // AP_APPS_EP_HH
