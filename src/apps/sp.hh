/**
 * @file
 * SP — the NAS scalar pentadiagonal kernel (Section 5.2).
 *
 * "SP computes the solution for scalar pentadiagonal equations. A
 * total of 400 iterations are performed on the 64 x 64 x 64 input
 * array. MLSim simulated the first 10 iterations because of trace
 * buffer limitations."
 *
 * Trace structure, derived from Table 3 (64 PEs, per-PE totals over
 * the ten simulated iterations): PUT 10880 (1088/iter), GET 10710
 * (1071/iter), Sync 42 (4/iter + 2), SEND 1 and V Gop 1 (the final
 * residual norm), mean transfer 1355.3 bytes. The ADI sweeps in the
 * three grid directions exchange pencil faces with the four torus
 * neighbours, PUTs pushing updated faces forward and GETs pulling the
 * back-substitution data.
 */

#ifndef AP_APPS_SP_HH
#define AP_APPS_SP_HH

#include "apps/app.hh"

namespace ap::apps
{

/** The SP kernel. */
class Sp : public App
{
  public:
    static constexpr int pe = 64;
    static constexpr int iterations = 10;
    static constexpr double points = 64.0 * 64.0 * 64.0;
    static constexpr double flops_per_point_per_iter = 900.0;
    static constexpr double sparc_flop_us = 0.16;
    /** Computation calibration (see EXPERIMENTS.md / cg.hh). */
    static constexpr double compute_calibration = 24.0;
    static constexpr std::uint64_t msg_bytes = 1355;

    AppInfo info() const override;
    core::Trace generate() const override;
    Table3Row paper_stats() const override;
    double paper_speedup_plus() const override { return 7.62; }
    double paper_speedup_fast() const override { return 6.05; }
};

} // namespace ap::apps

#endif // AP_APPS_SP_HH
