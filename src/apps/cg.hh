/**
 * @file
 * CG — the NAS conjugate gradient kernel (Section 5.2).
 *
 * "CG is the conjugate gradient method for solving a linear system of
 * equations. The order of the input matrix is 1400 with 78184 nonzero
 * elements. ... CG reduces the vector global summations of an array
 * whose vector size is 11200 bytes (1400 x 8) by 390 times."
 *
 * Trace structure, derived from Table 3 (16 PEs):
 *  - 390 iterations, each with one vector global sum of the full
 *    1400-double vector (V Gop = 390; the reduction chain's one
 *    blocking SEND per non-root cell gives SEND = 390 x 15/16 =
 *    365.6);
 *  - one 700-byte PUT per iteration (the 1400/16-element partial
 *    vector handed to the neighbour; PUT = 390, mean size = 700);
 *  - two scalar reductions per iteration plus 30 in setup
 *    (Gop = 810);
 *  - eight barriers per iteration plus 15 in setup (Sync = 3135).
 *
 * CG is the paper's worst case: "large vector global summations
 * dominate in its execution. SEND operations are blocking ... so a
 * large overhead is introduced."
 */

#ifndef AP_APPS_CG_HH
#define AP_APPS_CG_HH

#include "apps/app.hh"

namespace ap::apps
{

/** The CG kernel. */
class Cg : public App
{
  public:
    static constexpr int pe = 16;
    static constexpr int order = 1400;
    static constexpr int nonzeros = 78184;
    static constexpr int iterations = 390;
    static constexpr double sparc_flop_us = 0.16;
    /**
     * Computation calibration: the paper's traces carry measured
     * per-iteration processor times, which we cannot capture without
     * an AP1000; this factor scales the idealized flop count so the
     * AP1000* column of Table 2 matches (EXPERIMENTS.md).
     */
    static constexpr double compute_calibration = 54.0;
    /** per-iteration flops per cell: SpMV + vector updates. */
    static constexpr double
    flops_per_iter_per_cell()
    {
        return (2.0 * nonzeros + 10.0 * order) / pe;
    }

    AppInfo info() const override;
    core::Trace generate() const override;
    Table3Row paper_stats() const override;
    double paper_speedup_plus() const override { return 4.78; }
    double paper_speedup_fast() const override { return 3.42; }
};

} // namespace ap::apps

#endif // AP_APPS_CG_HH
