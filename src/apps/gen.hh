/**
 * @file
 * Trace construction helper for the application generators.
 *
 * A TraceBuilder hides the flag bookkeeping the replay engine needs:
 * every data transfer increments a per-cell completion-flag counter,
 * and wait_data(cell) emits a flag_wait whose target is "everything
 * sent toward that cell so far", which is how the VPP Fortran
 * run-time system detects communication completion (Section 2.2).
 */

#ifndef AP_APPS_GEN_HH
#define AP_APPS_GEN_HH

#include <cstdint>
#include <vector>

#include "core/trace.hh"

namespace ap::apps
{

/** Options for one generated transfer. */
struct XferOpts
{
    bool stride = false; ///< use the stride op (PUTS / GETS)
    bool ack = false;    ///< PUT carries an acknowledge probe
    bool rts = false;    ///< issued by the language runtime
    std::uint32_t items = 1; ///< stride item count
};

/** Builds one machine-wide trace. */
class TraceBuilder
{
  public:
    /** The shared data-completion flag address in every cell. */
    static constexpr Addr data_flag = 0x80;

    explicit TraceBuilder(int cells);

    int cells() const { return trace.cells(); }

    /** Move the finished trace out. */
    core::Trace take() { return std::move(trace); }

    /** Emit processor work on @p c (microseconds at SPARC speed). */
    void compute(CellId c, double us);

    /** Emit a PUT from @p src to @p dst updating dst's data flag. */
    void put(CellId src, CellId dst, std::uint64_t bytes,
             XferOpts opts = {});

    /** Emit a GET by @p src from @p dst updating src's data flag. */
    void get(CellId src, CellId dst, std::uint64_t bytes,
             XferOpts opts = {});

    /** Emit a SEND (ring-buffer message). */
    void send(CellId src, CellId dst, std::uint64_t bytes);

    /** Emit the matching RECEIVE on @p c from @p src. */
    void recv(CellId c, CellId src, std::uint64_t bytes);

    /**
     * Emit a flag_wait on @p c for every transfer directed at it so
     * far (the per-iteration completion check).
     */
    void wait_data(CellId c);

    /** Emit an ack_wait on @p c for every acked PUT it issued. */
    void wait_acks(CellId c);

    /** Emit a barrier on every cell. */
    void barrier_all();

    /** Emit a scalar global operation on every cell. */
    void gop_all(std::uint64_t bytes = 8);

    /** Emit a vector global operation on every cell. */
    void vgop_all(std::uint64_t bytes);

  private:
    core::Trace trace;
    /** arrivals targeted at each cell's data flag so far. */
    std::vector<std::uint64_t> pendingData;
    /** acked PUTs issued by each cell so far. */
    std::vector<std::uint64_t> acksIssued;
};

} // namespace ap::apps

#endif // AP_APPS_GEN_HH
