#include "apps/app.hh"

#include "apps/cg.hh"
#include "apps/ep.hh"
#include "apps/ft.hh"
#include "apps/matmul.hh"
#include "apps/scg.hh"
#include "apps/sp.hh"
#include "apps/tomcatv.hh"
#include "base/logging.hh"

namespace ap::apps
{

using core::TraceOp;

Table3Row
measure_stats(const core::Trace &trace)
{
    Table3Row r;
    r.pe = trace.cells();
    if (r.pe == 0)
        return r;

    std::uint64_t send = 0, gop = 0, vgop = 0, sync = 0;
    std::uint64_t put = 0, puts = 0, get = 0, gets = 0;
    std::uint64_t xfer_bytes = 0;

    for (CellId c = 0; c < trace.cells(); ++c) {
        for (const auto &ev : trace.timeline(c)) {
            switch (ev.op) {
              case TraceOp::send:
                ++send;
                break;
              case TraceOp::gop:
                ++gop;
                break;
              case TraceOp::vgop:
                ++vgop;
                break;
              case TraceOp::barrier:
                ++sync;
                break;
              case TraceOp::put:
                // Zero-byte PUT events are bare acknowledge probes;
                // the paper excludes "GET for acknowledge".
                if (ev.bytes > 0) {
                    ++put;
                    xfer_bytes += ev.bytes;
                }
                break;
              case TraceOp::put_stride:
                ++puts;
                xfer_bytes += ev.bytes;
                break;
              case TraceOp::get:
                ++get;
                xfer_bytes += ev.bytes;
                break;
              case TraceOp::get_stride:
                ++gets;
                xfer_bytes += ev.bytes;
                break;
              default:
                break;
            }
        }
    }

    // A vector reduction's chain sends once from every cell except
    // the root: (P-1)/P SENDs per cell per episode (how the paper's
    // CG row tabulates: 390 x 15/16 = 365.6).
    double p = static_cast<double>(r.pe);
    double vgop_sends =
        static_cast<double>(vgop) * (p - 1.0) / p;

    r.send = (static_cast<double>(send) + vgop_sends) / p;
    r.gop = static_cast<double>(gop) / p;
    r.vgop = static_cast<double>(vgop) / p;
    r.sync = static_cast<double>(sync) / p;
    r.put = static_cast<double>(put) / p;
    r.puts = static_cast<double>(puts) / p;
    r.get = static_cast<double>(get) / p;
    r.gets = static_cast<double>(gets) / p;
    std::uint64_t xfers = put + puts + get + gets;
    r.msgSize = xfers ? static_cast<double>(xfer_bytes) /
                            static_cast<double>(xfers)
                      : 0.0;
    return r;
}

std::vector<std::unique_ptr<App>>
standard_suite()
{
    std::vector<std::unique_ptr<App>> suite;
    suite.push_back(std::make_unique<Ep>());
    suite.push_back(std::make_unique<Cg>());
    suite.push_back(std::make_unique<Ft>());
    suite.push_back(std::make_unique<Sp>());
    suite.push_back(std::make_unique<Tomcatv>(true));
    suite.push_back(std::make_unique<Tomcatv>(false));
    suite.push_back(std::make_unique<MatMul>());
    suite.push_back(std::make_unique<Scg>());
    return suite;
}

std::unique_ptr<App>
make_app(const std::string &name)
{
    if (name == "EP")
        return std::make_unique<Ep>();
    if (name == "CG")
        return std::make_unique<Cg>();
    if (name == "FT")
        return std::make_unique<Ft>();
    if (name == "SP")
        return std::make_unique<Sp>();
    if (name == "TC st")
        return std::make_unique<Tomcatv>(true);
    if (name == "TC no st")
        return std::make_unique<Tomcatv>(false);
    if (name == "MatMul")
        return std::make_unique<MatMul>();
    if (name == "SCG")
        return std::make_unique<Scg>();
    fatal("unknown application '%s'", name.c_str());
}

} // namespace ap::apps
