#include "apps/tomcatv.hh"

#include "apps/gen.hh"

namespace ap::apps
{

AppInfo
Tomcatv::info() const
{
    return AppInfo{useStride ? "TC st" : "TC no st", "VPP Fortran",
                   pe,
                   useStride
                       ? "257x257 mesh, stride overlap transfers"
                       : "257x257 mesh, element-wise transfers"};
}

core::Trace
Tomcatv::generate() const
{
    TraceBuilder b(pe);
    double iter_us = static_cast<double>(mesh) * mesh / pe *
                     flops_per_point_per_iter * sparc_flop_us *
                     compute_calibration;

    // One boundary column refresh toward a neighbour: a single
    // stride transfer, or 257 element transfers without hardware
    // stride support.
    auto put_boundary = [&](CellId src, CellId dst) {
        if (useStride) {
            b.put(src, dst, column_bytes,
                  XferOpts{.stride = true, .ack = true, .rts = true,
                           .items = mesh});
        } else {
            for (int i = 0; i < mesh; ++i)
                b.put(src, dst, 8,
                      XferOpts{.ack = true, .rts = true});
        }
    };
    auto get_boundary = [&](CellId src, CellId dst) {
        if (useStride) {
            b.get(src, dst, column_bytes,
                  XferOpts{.stride = true, .rts = true,
                           .items = mesh});
        } else {
            for (int i = 0; i < mesh; ++i)
                b.get(src, dst, 8, XferOpts{.rts = true});
        }
    };

    for (int it = 0; it < iterations; ++it) {
        // Residual computation over the local column band.
        for (CellId c = 0; c < pe; ++c)
            b.compute(c, iter_us / 2);

        // OVERLAP FIX: both mesh arrays (X, Y) move one boundary
        // column to each existing neighbour.
        for (CellId c = 0; c < pe; ++c) {
            for (int arr = 0; arr < 2; ++arr) {
                if (c > 0)
                    put_boundary(c, c - 1);
                if (c < pe - 1)
                    put_boundary(c, c + 1);
            }
        }
        for (CellId c = 0; c < pe; ++c)
            b.wait_acks(c);
        for (CellId c = 0; c < pe; ++c)
            b.wait_data(c);
        for (int s = 0; s < 4; ++s)
            b.barrier_all();

        // SOR update, then pull the residual columns (RX, RY).
        for (CellId c = 0; c < pe; ++c)
            b.compute(c, iter_us / 2);
        for (CellId c = 0; c < pe; ++c) {
            for (int arr = 0; arr < 2; ++arr) {
                if (c > 0)
                    get_boundary(c, c - 1);
                if (c < pe - 1)
                    get_boundary(c, c + 1);
            }
        }
        for (CellId c = 0; c < pe; ++c)
            b.wait_data(c);

        // Global residual max for both arrays.
        b.gop_all();
        b.gop_all();
        for (int s = 0; s < 4; ++s)
            b.barrier_all();
    }
    return b.take();
}

Table3Row
Tomcatv::paper_stats() const
{
    Table3Row r;
    r.pe = pe;
    r.gop = 20.0;
    r.sync = 80.0;
    if (useStride) {
        r.puts = 37.5;
        r.gets = 37.5;
        r.msgSize = 2056.0;
    } else {
        r.put = 9637.5;
        r.get = 9637.5;
        r.msgSize = 8.0;
    }
    return r;
}

} // namespace ap::apps
