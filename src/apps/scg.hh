/**
 * @file
 * SCG — scaled conjugate gradient in C (Section 5.2).
 *
 * "SCG solves Poisson's differential equation using the scaled
 * conjugate gradient method in which the coefficient matrix is scaled
 * by diagonal elements. The matrix to be solved is a sparse
 * 40000 x 40000 matrix."
 *
 * A 200 x 200 five-point grid, row-band decomposed over 64 cells:
 * each of the 439 iterations exchanges the two 200-double halo rows
 * (1600 bytes, Table 3's message size) — one by PUT, one by SEND
 * (the application mixes both models; Table 3 shows 878.1 of each) —
 * and performs two scalar reductions (Gop 893 = 2 x 439 + 15 setup).
 * One final barrier (Sync 1). Hand-written C with overlap, so SCG
 * "almost achieve[s] peak processor performance" (7.96 in Table 2).
 */

#ifndef AP_APPS_SCG_HH
#define AP_APPS_SCG_HH

#include "apps/app.hh"

namespace ap::apps
{

/** The scaled-conjugate-gradient application. */
class Scg : public App
{
  public:
    static constexpr int pe = 64;
    static constexpr int grid = 200;
    static constexpr int iterations = 439;
    static constexpr double flops_per_point_per_iter = 30.0;
    static constexpr double sparc_flop_us = 0.16;
    /** Computation calibration (see EXPERIMENTS.md / cg.hh). */
    static constexpr double compute_calibration = 7.6;
    static constexpr std::uint64_t row_bytes = grid * 8; // 1600

    AppInfo info() const override;
    core::Trace generate() const override;
    Table3Row paper_stats() const override;
    double paper_speedup_plus() const override { return 7.96; }
    double paper_speedup_fast() const override { return 5.17; }
};

} // namespace ap::apps

#endif // AP_APPS_SCG_HH
