/**
 * @file
 * FT — the NAS 3-D FFT kernel (Section 5.2).
 *
 * "FT is a 3-D Fourier transform. The input array size is
 * 256 x 256 x 128. Six iterations of the FFT were calculated."
 *
 * Trace structure, derived from Table 3 (128 PEs, per-PE totals over
 * the six iterations): PUT 2048, PUTS 7680, GET 9652, GETS 512,
 * Gop 24 (4/iter), Sync 51 (8/iter + 3 setup), mean transfer
 * 1638.4 bytes. Each iteration performs the transpose-based
 * redistribution between the pencil decompositions: contiguous PUTs
 * carry whole pencils, stride PUTs/GETs carry the re-blocked
 * columns, and GETs pull remote pencil segments directly (the
 * SEND/RECEIVE-free all-to-all that direct remote access enables).
 *
 * "FT and SP use many communication operations, but the overhead on
 * the AP1000+ is very small."
 */

#ifndef AP_APPS_FT_HH
#define AP_APPS_FT_HH

#include "apps/app.hh"

namespace ap::apps
{

/** The FT kernel. */
class Ft : public App
{
  public:
    static constexpr int pe = 128;
    static constexpr int iterations = 6;
    static constexpr double points = 256.0 * 256.0 * 128.0;
    static constexpr double sparc_flop_us = 0.16;
    /** Computation calibration (see EXPERIMENTS.md / cg.hh). */
    static constexpr double compute_calibration = 6.1;
    static constexpr std::uint64_t msg_bytes = 1638;

    /** per-iteration flops per cell: 5 N log2 N / PE (3-D FFT). */
    static constexpr double
    flops_per_iter_per_cell()
    {
        return 5.0 * points * 23.0 / pe;
    }

    AppInfo info() const override;
    core::Trace generate() const override;
    Table3Row paper_stats() const override;
    double paper_speedup_plus() const override { return 7.12; }
    double paper_speedup_fast() const override { return 4.14; }
};

} // namespace ap::apps

#endif // AP_APPS_FT_HH
