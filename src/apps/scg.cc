#include "apps/scg.hh"

#include "apps/gen.hh"

namespace ap::apps
{

AppInfo
Scg::info() const
{
    return AppInfo{"SCG", "C", pe,
                   "scaled CG, sparse 40000x40000 (200x200 grid)"};
}

core::Trace
Scg::generate() const
{
    TraceBuilder b(pe);
    double iter_us = static_cast<double>(grid) * grid / pe *
                     flops_per_point_per_iter * sparc_flop_us *
                     compute_calibration;

    // Setup reductions (norms, diagonal scaling checks).
    for (int k = 0; k < 15; ++k)
        b.gop_all();

    for (int it = 0; it < iterations; ++it) {
        for (CellId c = 0; c < pe; ++c)
            b.compute(c, iter_us);

        // Halo exchange on the ring: both residual-vector halo rows
        // move by PUT (one-sided, overlapped), both search-vector
        // rows by SEND (the original SEND/RECEIVE code path kept by
        // the port) — two of each per iteration, Table 3's 878.1.
        for (CellId c = 0; c < pe; ++c) {
            b.put(c, (c + 1) % pe, row_bytes, XferOpts{});
            b.put(c, (c - 1 + pe) % pe, row_bytes, XferOpts{});
        }
        for (CellId c = 0; c < pe; ++c) {
            b.send(c, (c - 1 + pe) % pe, row_bytes);
            b.send(c, (c + 1) % pe, row_bytes);
        }
        for (CellId c = 0; c < pe; ++c) {
            b.recv(c, (c + 1) % pe, row_bytes);
            b.recv(c, (c - 1 + pe) % pe, row_bytes);
        }
        for (CellId c = 0; c < pe; ++c)
            b.wait_data(c);

        // rho and alpha reductions.
        b.gop_all();
        b.gop_all();
    }

    b.barrier_all();
    return b.take();
}

Table3Row
Scg::paper_stats() const
{
    Table3Row r;
    r.pe = pe;
    r.send = 878.1;
    r.gop = 893.0;
    r.sync = 1.0;
    r.put = 878.1;
    r.msgSize = 1600.0;
    return r;
}

} // namespace ap::apps
