/**
 * @file
 * MatMul — dense matrix multiplication in C (Section 5.2).
 *
 * "MatMul calculates A x B = C. The matrix to be calculated is a
 * dense 800 x 800 matrix." Written directly against the PUT/GET
 * primitives ("two applications in C language use PUT/GET primitives
 * directly in the source code") with a rotating-block algorithm: each
 * of the 64 steps, every cell PUTs its current B block (12 rows x 800
 * doubles = 76800 bytes, Table 3's message size) to the next cell
 * while multiplying the block it already holds — communication and
 * computation overlap, which is why MatMul "almost achieve[s] peak
 * processor performance" (8.27 in Table 2).
 */

#ifndef AP_APPS_MATMUL_HH
#define AP_APPS_MATMUL_HH

#include "apps/app.hh"

namespace ap::apps
{

/** The dense matrix-multiplication application. */
class MatMul : public App
{
  public:
    static constexpr int pe = 64;
    static constexpr int n = 800;
    static constexpr int block_rows = 12; // rotating block band
    static constexpr double sparc_flop_us = 0.16;
    /** Computation calibration (see EXPERIMENTS.md / cg.hh). */
    static constexpr double compute_calibration = 3.7;
    static constexpr std::uint64_t block_bytes =
        static_cast<std::uint64_t>(block_rows) * n * 8; // 76800

    AppInfo info() const override;
    core::Trace generate() const override;
    Table3Row paper_stats() const override;
    double paper_speedup_plus() const override { return 8.27; }
    double paper_speedup_fast() const override { return 6.22; }
};

} // namespace ap::apps

#endif // AP_APPS_MATMUL_HH
