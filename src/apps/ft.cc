#include "apps/ft.hh"

#include "apps/gen.hh"

namespace ap::apps
{

AppInfo
Ft::info() const
{
    return AppInfo{"FT", "VPP Fortran", pe,
                   "3-D FFT, 256x256x128, 6 iterations"};
}

core::Trace
Ft::generate() const
{
    TraceBuilder b(pe);
    double iter_us = flops_per_iter_per_cell() * sparc_flop_us *
                     compute_calibration;

    // Per-iteration op budgets whose six-iteration totals equal
    // Table 3's per-PE counts: 2048 PUT, 7680 PUTS, 9652 GET,
    // 512 GETS. Non-divisible totals split as evenly as possible.
    auto share = [](int total, int it) {
        int base = total / iterations;
        int extra = total % iterations;
        return base + (it < extra ? 1 : 0);
    };

    for (int k = 0; k < 3; ++k)
        b.barrier_all();

    for (int it = 0; it < iterations; ++it) {
        int n_put = share(2048, it);
        int n_puts = share(7680, it);
        int n_get = share(9652, it);
        int n_gets = share(512, it);

        for (CellId c = 0; c < pe; ++c)
            b.compute(c, iter_us / 3);

        // Transpose phase 1: pull remote pencil segments (GETs sweep
        // the peers; every cell issues the same budget).
        for (CellId c = 0; c < pe; ++c) {
            for (int k = 0; k < n_get; ++k) {
                CellId peer = (c + 1 + k % (pe - 1)) % pe;
                b.get(c, peer, msg_bytes, XferOpts{.rts = true});
            }
            for (int k = 0; k < n_gets; ++k) {
                CellId peer = (c + 1 + (k * 7) % (pe - 1)) % pe;
                b.get(c, peer, msg_bytes,
                      XferOpts{.stride = true, .rts = true,
                               .items = 205});
            }
        }
        for (CellId c = 0; c < pe; ++c)
            b.wait_data(c);
        for (int s = 0; s < 3; ++s)
            b.barrier_all();

        for (CellId c = 0; c < pe; ++c)
            b.compute(c, iter_us / 3);

        // Transpose phase 2: push the re-blocked columns out (stride
        // PUTs) plus whole-pencil contiguous PUTs.
        for (CellId c = 0; c < pe; ++c) {
            for (int k = 0; k < n_puts; ++k) {
                CellId peer = (c + 1 + (k * 3) % (pe - 1)) % pe;
                b.put(c, peer, msg_bytes,
                      XferOpts{.stride = true, .ack = true,
                               .rts = true, .items = 205});
            }
            for (int k = 0; k < n_put; ++k) {
                CellId peer = (c + 1 + (k * 5) % (pe - 1)) % pe;
                b.put(c, peer, msg_bytes,
                      XferOpts{.ack = true, .rts = true});
            }
        }
        for (CellId c = 0; c < pe; ++c)
            b.wait_acks(c);
        for (CellId c = 0; c < pe; ++c)
            b.wait_data(c);
        for (int s = 0; s < 3; ++s)
            b.barrier_all();

        for (CellId c = 0; c < pe; ++c)
            b.compute(c, iter_us / 3);

        // Checksum reductions (4 per iteration) and closing sync.
        for (int g = 0; g < 4; ++g)
            b.gop_all();
        for (int s = 0; s < 2; ++s)
            b.barrier_all();
    }
    return b.take();
}

Table3Row
Ft::paper_stats() const
{
    Table3Row r;
    r.pe = pe;
    r.gop = 24.0;
    r.sync = 51.0;
    r.put = 2048.0;
    r.puts = 7680.0;
    r.get = 9652.0;
    r.gets = 512.0;
    r.msgSize = 1638.4;
    return r;
}

} // namespace ap::apps
