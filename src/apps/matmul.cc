#include "apps/matmul.hh"

#include "apps/gen.hh"

namespace ap::apps
{

AppInfo
MatMul::info() const
{
    return AppInfo{"MatMul", "C", pe, "dense 800x800 matrix product"};
}

core::Trace
MatMul::generate() const
{
    TraceBuilder b(pe);
    // Total work 2 n^3 spread over the 64 rotation steps.
    double step_us = 2.0 * n * n * n / pe / pe * sparc_flop_us *
                     compute_calibration;

    for (int step = 0; step < pe; ++step) {
        for (CellId c = 0; c < pe; ++c) {
            // Push the current block onward (non-blocking; the next
            // multiplication proceeds while the MSC+ streams it).
            b.put(c, (c + 1) % pe, block_bytes, XferOpts{});
        }
        for (CellId c = 0; c < pe; ++c)
            b.compute(c, step_us);
        for (CellId c = 0; c < pe; ++c)
            b.wait_data(c);
        b.barrier_all();
    }
    return b.take();
}

Table3Row
MatMul::paper_stats() const
{
    Table3Row r;
    r.pe = pe;
    r.sync = 64.0;
    r.put = 64.0;
    r.msgSize = 76800.0;
    return r;
}

} // namespace ap::apps
