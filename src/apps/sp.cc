#include "apps/sp.hh"

#include "apps/gen.hh"

namespace ap::apps
{

AppInfo
Sp::info() const
{
    return AppInfo{"SP", "VPP Fortran", pe,
                   "scalar pentadiagonal, 64^3, 10 iterations"};
}

core::Trace
Sp::generate() const
{
    TraceBuilder b(pe);
    double iter_us = points / pe * flops_per_point_per_iter *
                     sparc_flop_us * compute_calibration;

    constexpr int puts_per_iter = 1088; // 10880 / 10
    constexpr int gets_per_iter = 1071; // 10710 / 10

    for (int k = 0; k < 2; ++k)
        b.barrier_all();

    // Neighbour set of the ADI sweeps on the 8x8 torus of cells.
    auto neighbour = [](CellId c, int k) {
        static const int offs[4] = {1, 63, 8, 56}; // +-x, +-y
        return (c + offs[k % 4]) % pe;
    };

    for (int it = 0; it < iterations; ++it) {
        // Three directional sweeps; faces move after each.
        for (int sweep = 0; sweep < 3; ++sweep) {
            for (CellId c = 0; c < pe; ++c)
                b.compute(c, iter_us / 3);

            int n_put = puts_per_iter / 3 +
                        (sweep < puts_per_iter % 3 ? 1 : 0);
            int n_get = gets_per_iter / 3 +
                        (sweep < gets_per_iter % 3 ? 1 : 0);
            for (CellId c = 0; c < pe; ++c) {
                for (int k = 0; k < n_put; ++k)
                    b.put(c, neighbour(c, k), msg_bytes,
                          XferOpts{.ack = true, .rts = true});
                for (int k = 0; k < n_get; ++k)
                    b.get(c, neighbour(c, k + 2), msg_bytes,
                          XferOpts{.rts = true});
            }
            for (CellId c = 0; c < pe; ++c)
                b.wait_acks(c);
            for (CellId c = 0; c < pe; ++c)
                b.wait_data(c);
            b.barrier_all();
        }
        b.barrier_all();
    }

    // Final residual norm: one vector reduction (its chain SEND is
    // Table 3's single SEND entry).
    b.vgop_all(msg_bytes);

    return b.take();
}

Table3Row
Sp::paper_stats() const
{
    Table3Row r;
    r.pe = pe;
    r.send = 1.0;
    r.vgop = 1.0;
    r.sync = 42.0;
    r.put = 10880.0;
    r.get = 10710.0;
    r.msgSize = 1355.3;
    return r;
}

} // namespace ap::apps
