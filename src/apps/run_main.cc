/**
 * @file
 * ap_run: the observability demo driver.
 *
 * Runs one SPMD program that touches every communication primitive of
 * the PUT/GET interface — PUT with flags, GET, stride PUT,
 * acknowledged PUT, SEND/RECEIVE, B-net broadcast, DSM remote
 * access, barrier and reductions — and then emits the machine's
 * telemetry: the text report, the stats-registry JSON
 * (`--stats-out=FILE`), and the Chrome trace_event timeline
 * (`--trace-out=FILE`, open in chrome://tracing or Perfetto).
 * `--faults=<plan>` replays the same program under an injected fault
 * plan so the timeline shows spills, flushes and dropped messages.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "core/ap1000p.hh"
#include "obs/cli.hh"
#include "obs/critpath.hh"
#include "obs/json.hh"
#include "obs/span.hh"
#include "sim/fault.hh"
#include "sim/shardq.hh"

using namespace ap;
using namespace ap::core;

namespace
{

sim::FaultPlan
plan_by_name(const std::string &name, std::uint64_t seed)
{
    if (name == "none")
        return sim::FaultPlan{};
    if (name == "drops")
        return sim::FaultPlan::drops(seed);
    if (name == "duplicates")
        return sim::FaultPlan::duplicates(seed);
    if (name == "reorders")
        return sim::FaultPlan::reorders(seed);
    if (name == "overflows")
        return sim::FaultPlan::overflows(seed);
    if (name == "pagefaults")
        return sim::FaultPlan::pageFaults(seed);
    if (name == "jitter")
        return sim::FaultPlan::jitter(seed);
    if (name == "lossy")
        return sim::FaultPlan::lossy(seed);
    if (name == "chaos")
        return sim::FaultPlan::chaos(seed);
    fatal("unknown fault plan '%s' (try none, drops, duplicates, "
          "reorders, overflows, pagefaults, jitter, lossy, chaos)",
          name.c_str());
}

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --cells=N          machine size (default 16)\n"
        "  --faults=PLAN      none|drops|duplicates|reorders|\n"
        "                     overflows|pagefaults|jitter|lossy|chaos\n"
        "  --seed=N           fault-plan seed (default 1)\n"
        "  --reliable         reliable-delivery protocol layer on\n"
        "  --threads=N        event-kernel worker threads (default 1\n"
        "                     = sequential kernel; N>1 shards the\n"
        "                     event queue per cell region)\n"
        "  --deterministic    with --threads>1: canonical-order merge\n"
        "                     of same-tick cross-shard deliveries, so\n"
        "                     the run is byte-identical to --threads=1\n"
        "  --kill=CELL@US     fail-stop CELL at US microseconds\n"
        "                     (survivors reconfigure; repeatable)\n"
        "  --stats-out=FILE   write the stats registry as JSON\n"
        "  --stats-text       print the flat stats table to stdout\n"
        "  --trace-out=FILE   write a Chrome trace_event timeline\n"
        "  --timeline-out=FILE  sample the stats registry on a\n"
        "                     model-time period, write the perf\n"
        "                     timeline JSON\n"
        "  --timeline-period-us=US  sampling period (default 20)\n"
        "  --profile          record full spans, print the\n"
        "                     critical-path latency breakdown\n"
        "  --profile-json=FILE  write the breakdown as JSON\n"
        "  --phase-stats      print per-phase stats-registry deltas\n"
        "  --flight-dump=FILE write the flight-recorder rings as\n"
        "                     Chrome trace JSON\n"
        "  --postmortem-out=FILE  on CommError, also dump the full\n"
        "                     flight rings there\n"
        "  --debug-flags=A,B  narrate categories to stderr "
        "(MSC,DMA,TNet,Fault,...)\n",
        prog);
}

/**
 * Per-phase stats snapshots (--phase-stats): cell 0 marks the
 * registry after every demo barrier, so each mark captures the whole
 * machine at a synchronization point.
 */
struct PhaseRecorder
{
    hw::Machine &machine;
    std::vector<std::pair<std::string, obs::StatsRegistry::Snapshot>>
        marks;

    void
    mark(const char *name)
    {
        marks.emplace_back(name,
                           machine.stats_registry().snapshot());
    }
};

/** Change between two snapshots (after - before). */
std::map<std::string, std::int64_t>
snapshot_diff(const obs::StatsRegistry::Snapshot &before,
              const obs::StatsRegistry::Snapshot &after)
{
    std::map<std::string, std::int64_t> d;
    for (const auto &[path, v] : after) {
        auto it = before.find(path);
        std::uint64_t was = it == before.end() ? 0 : it->second;
        d[path] = static_cast<std::int64_t>(v) -
                  static_cast<std::int64_t>(was);
    }
    return d;
}

/** The demo body: every primitive once, deterministic result. */
void
demo_body(Context &ctx, PhaseRecorder *phases)
{
    auto mark = [&](const char *name) {
        if (phases != nullptr && ctx.id() == 0)
            phases->mark(name);
    };
    int p = ctx.nprocs();
    CellId right = (ctx.id() + 1) % p;
    CellId left = (ctx.id() - 1 + p) % p;

    Addr buf = ctx.alloc(256);
    Addr landing = ctx.alloc(256);
    Addr flag = ctx.alloc_flag();

    for (int i = 0; i < 32; ++i)
        ctx.poke_f64(buf + static_cast<Addr>(i) * 8,
                     ctx.id() * 100.0 + i);

    // 1. PUT with a receive flag, ring pattern.
    ctx.put(right, landing, buf, 64, no_flag, flag);
    ctx.wait_flag(flag, 1);
    ctx.barrier();
    mark("put");

    // 2. GET from the left neighbour.
    Addr done = ctx.alloc_flag();
    ctx.get(left, buf, landing + 64, 64, no_flag, done);
    ctx.wait_flag(done, 1);
    ctx.barrier();
    mark("get");

    // 3. stride PUT (every other doubleword).
    net::StrideSpec spec{8, 8, 8};
    ctx.put_stride(right, landing + 128, buf, /*ack=*/false, no_flag,
                   flag, spec, spec);
    ctx.wait_flag(flag, 2);
    ctx.barrier();
    mark("stride_put");

    // 4. acknowledged PUT (Ack & Barrier completion).
    ctx.put(right, landing, buf, 32, no_flag, no_flag, /*ack=*/true);
    ctx.wait_all_acks();
    ctx.barrier();
    mark("ack_put");

    // 5. SEND/RECEIVE through the ring buffer.
    ctx.send(right, /*tag=*/7, buf, 48);
    ctx.recv(left, /*tag=*/7, landing, 48);
    ctx.barrier();
    mark("send_recv");

    // 6. B-net broadcast from cell 0.
    Addr bcast = ctx.alloc(64);
    Addr bflag = ctx.alloc_flag();
    if (ctx.id() == 0)
        for (int i = 0; i < 8; ++i)
            ctx.poke_f64(bcast + static_cast<Addr>(i) * 8, 42.0 + i);
    ctx.broadcast(0, bcast, 64, bflag);
    if (ctx.id() != 0)
        ctx.wait_flag(bflag, 1);
    ctx.barrier();
    mark("broadcast");

    // 7. DSM-style blocking remote access.
    ctx.write_remote(right, landing + 192, buf, 16);
    ctx.read_remote(left, buf, landing + 208, 16);
    ctx.barrier();
    mark("dsm");

    // 8. reductions: scalar over commregs, vector over ring buffers.
    double sum = ctx.allreduce(static_cast<double>(ctx.id()),
                               ReduceOp::sum);
    Addr vec = ctx.alloc(4 * 8);
    for (int i = 0; i < 4; ++i)
        ctx.poke_f64(vec + static_cast<Addr>(i) * 8,
                     static_cast<double>(ctx.id() + i));
    ctx.allreduce_vector(vec, 4, ReduceOp::max);
    ctx.barrier();
    mark("reduce");

    if (ctx.id() == 0)
        std::printf("[cell 0] allreduce(sum of ids) = %.0f "
                    "(expect %d), vector max[0] = %.0f\n",
                    sum, p * (p - 1) / 2, ctx.peek_f64(vec));
}

} // namespace

int
main(int argc, char **argv)
{
    int cells = 16;
    std::string faults = "none";
    std::uint64_t seed = 1;
    bool statsText = false;
    bool reliable = false;
    int threads = 1;
    bool deterministic = false;
    bool profile = false;
    bool phaseStats = false;
    std::string profileJson;
    std::string flightDump;
    std::string postmortemOut;
    std::vector<sim::FaultPlan::CellKill> kills;
    obs::ObsOptions obsOpts;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (obs::consume_obs_arg(a, obsOpts))
            continue;
        if (std::strncmp(a, "--cells=", 8) == 0) {
            cells = std::atoi(a + 8);
        } else if (std::strncmp(a, "--faults=", 9) == 0) {
            faults = a + 9;
        } else if (std::strncmp(a, "--seed=", 7) == 0) {
            seed = std::strtoull(a + 7, nullptr, 10);
        } else if (std::strcmp(a, "--reliable") == 0) {
            reliable = true;
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            threads = std::atoi(a + 10);
        } else if (std::strcmp(a, "--deterministic") == 0) {
            deterministic = true;
        } else if (std::strncmp(a, "--kill=", 7) == 0) {
            sim::FaultPlan::CellKill k{};
            char *at = nullptr;
            k.cell = static_cast<CellId>(
                std::strtol(a + 7, &at, 10));
            if (at == nullptr || *at != '@')
                fatal("--kill wants CELL@US, got '%s'", a);
            k.atUs = std::strtod(at + 1, nullptr);
            kills.push_back(k);
        } else if (std::strcmp(a, "--stats-text") == 0) {
            statsText = true;
        } else if (std::strcmp(a, "--profile") == 0) {
            profile = true;
        } else if (std::strncmp(a, "--profile-json=", 15) == 0) {
            profileJson = a + 15;
            profile = true;
        } else if (std::strcmp(a, "--phase-stats") == 0) {
            phaseStats = true;
        } else if (std::strncmp(a, "--flight-dump=", 14) == 0) {
            flightDump = a + 14;
        } else if (std::strncmp(a, "--postmortem-out=", 17) == 0) {
            postmortemOut = a + 17;
        } else if (std::strcmp(a, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument '%s'", a);
        }
    }
    if (cells < 2)
        fatal("need at least 2 cells, got %d", cells);
    if (threads < 1)
        fatal("need at least 1 thread, got %d", threads);

    hw::MachineConfig cfg = hw::MachineConfig::ap1000_plus(cells);
    cfg.memBytesPerCell = 1 << 20;
    cfg.faults = plan_by_name(faults, seed);
    cfg.faults.kills = kills;
    cfg.reliableNet = reliable;
    cfg.threads = threads;
    cfg.deterministic = deterministic;
    // A kill parks peers in waits that can never complete; the
    // watchdog converts those into typed errors with a wait graph.
    if (!kills.empty() && !cfg.retry.watchdog_enabled())
        cfg.retry.watchdogUs = 100000.0;
    if (profile)
        cfg.spanMode = obs::SpanMode::full;
    cfg.postmortemOut = postmortemOut;
    hw::Machine machine(cfg);
    if (!obsOpts.traceOut.empty())
        machine.enable_tracing();
    if (obsOpts.timeline_enabled())
        machine.enable_timeline(obsOpts.timelinePeriodUs);

    PhaseRecorder phases{machine, {}};
    obs::StatsRegistry::Snapshot startSnap =
        machine.stats_registry().snapshot();

    SpmdResult result = run_spmd(machine, [&](Context &ctx) {
        demo_body(ctx, phaseStats ? &phases : nullptr);
    });

    std::printf("%s", machine.report().c_str());
    if (sim::ShardedSimulator *sh = machine.sharded())
        std::printf("%s", sh->report().c_str());
    if (result.deadlock)
        std::printf("DEADLOCK: %zu cells stuck\n",
                    result.stuck.size());
    for (const std::string &e : result.errors)
        std::printf("comm error: %s\n", e.c_str());
    for (CellId c : result.failedCells)
        std::printf("cell %d failed (fault plan kill); survivors "
                    "ran degraded\n", c);

    if (statsText)
        std::printf("%s", machine.stats_text().c_str());
    if (!obsOpts.statsOut.empty()) {
        if (!machine.dump_stats(obsOpts.statsOut))
            fatal("cannot write stats to %s",
                  obsOpts.statsOut.c_str());
        std::printf("stats JSON written to %s\n",
                    obsOpts.statsOut.c_str());
    }
    if (!obsOpts.traceOut.empty()) {
        if (!machine.write_trace(obsOpts.traceOut))
            fatal("cannot write trace to %s",
                  obsOpts.traceOut.c_str());
        std::printf("Chrome trace written to %s (open in "
                    "chrome://tracing or ui.perfetto.dev)\n",
                    obsOpts.traceOut.c_str());
    }
    if (!obsOpts.timelineOut.empty()) {
        if (!machine.write_timeline(obsOpts.timelineOut))
            fatal("cannot write timeline to %s",
                  obsOpts.timelineOut.c_str());
        obs::TimelineSampler *tl = machine.timeline();
        std::printf("perf timeline written to %s (%llu samples, "
                    "%llu aged out)\n",
                    obsOpts.timelineOut.c_str(),
                    static_cast<unsigned long long>(tl->taken()),
                    static_cast<unsigned long long>(tl->dropped()));
    }
    if (!obsOpts.timelineCsv.empty()) {
        if (!machine.write_timeline_csv(obsOpts.timelineCsv))
            fatal("cannot write timeline CSV to %s",
                  obsOpts.timelineCsv.c_str());
        std::printf("perf timeline CSV written to %s\n",
                    obsOpts.timelineCsv.c_str());
    }

    if (phaseStats) {
        std::printf("== per-phase stats deltas ==\n");
        const obs::StatsRegistry::Snapshot *prev = &startSnap;
        for (const auto &[name, snap] : phases.marks) {
            std::printf("-- phase %s --\n%s", name.c_str(),
                        obs::StatsRegistry::delta_text(
                            snapshot_diff(*prev, snap), 12)
                            .c_str());
            prev = &snap;
        }
    }

    if (profile) {
        obs::CritPathReport rep =
            obs::analyze_spans(machine.spans().events());
        std::printf("%s", rep.text().c_str());
        if (!profileJson.empty()) {
            if (!obs::write_file(profileJson, rep.json()))
                fatal("cannot write profile to %s",
                      profileJson.c_str());
            std::printf("profile JSON written to %s\n",
                        profileJson.c_str());
        }
    }

    if (!flightDump.empty()) {
        if (!machine.dump_flight_recorder(flightDump))
            fatal("cannot write flight dump to %s",
                  flightDump.c_str());
        std::printf("flight recorder (%s) written to %s\n",
                    machine.flight_report().c_str(),
                    flightDump.c_str());
    }
    return result.failed() ? 1 : 0;
}
