#include "apps/cg.hh"

#include "apps/gen.hh"

namespace ap::apps
{

AppInfo
Cg::info() const
{
    return AppInfo{"CG", "VPP Fortran", pe,
                   "conjugate gradient, n=1400, nnz=78184"};
}

core::Trace
Cg::generate() const
{
    TraceBuilder b(pe);
    constexpr std::uint64_t vector_bytes = order * 8;       // 11200
    constexpr std::uint64_t chunk_bytes = vector_bytes / pe;//   700
    double iter_us = flops_per_iter_per_cell() * sparc_flop_us *
                     compute_calibration;

    // Setup phase: distribute the matrix, agree on norms.
    for (int k = 0; k < 30; ++k)
        b.gop_all();
    for (int k = 0; k < 15; ++k)
        b.barrier_all();

    for (int it = 0; it < iterations; ++it) {
        // Local SpMV and vector updates.
        for (CellId c = 0; c < pe; ++c)
            b.compute(c, iter_us);

        // Partial result handed to the ring neighbour (run-time
        // system PUT with acknowledgement, Section 5.4).
        for (CellId c = 0; c < pe; ++c)
            b.put(c, (c + 1) % pe, chunk_bytes,
                  XferOpts{.stride = false, .ack = true, .rts = true});
        for (CellId c = 0; c < pe; ++c)
            b.wait_acks(c);
        for (CellId c = 0; c < pe; ++c)
            b.wait_data(c);

        // The dominant full-vector global summation.
        b.vgop_all(vector_bytes);

        // alpha and beta scalar reductions.
        b.gop_all();
        b.gop_all();

        // The compiler-inserted phase barriers (8 per iteration).
        for (int s = 0; s < 8; ++s)
            b.barrier_all();
    }
    return b.take();
}

Table3Row
Cg::paper_stats() const
{
    Table3Row r;
    r.pe = pe;
    r.send = 365.6;
    r.gop = 810.0;
    r.vgop = 390.0;
    r.sync = 3135.0;
    r.put = 390.0;
    r.msgSize = 700.0;
    return r;
}

} // namespace ap::apps
