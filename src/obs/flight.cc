#include "obs/flight.hh"

#include "base/logging.hh"
#include "obs/span.hh"

namespace ap::obs
{

FlightRecorder::FlightRecorder(std::size_t capacity)
    : cap(capacity == 0 ? 1 : capacity)
{
    ring.reserve(cap);
}

void
FlightRecorder::push(const SpanEvent &ev)
{
    if (ring.size() < cap) {
        ring.push_back(ev);
    } else {
        ring[head] = ev;
        head = (head + 1) % cap;
    }
    ++count;
}

std::size_t
FlightRecorder::size() const
{
    return ring.size();
}

std::uint64_t
FlightRecorder::dropped() const
{
    return count - ring.size();
}

std::vector<SpanEvent>
FlightRecorder::snapshot(std::size_t maxEvents) const
{
    std::vector<SpanEvent> out;
    out.reserve(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(head + i) % ring.size()]);
    if (maxEvents != 0 && out.size() > maxEvents)
        out.erase(out.begin(),
                  out.end() - static_cast<std::ptrdiff_t>(maxEvents));
    return out;
}

void
FlightRecorder::clear()
{
    ring.clear();
    head = 0;
    count = 0;
}

std::string
flight_text(const std::vector<SpanEvent> &events)
{
    if (events.empty())
        return "  (no span events recorded)\n";
    std::string out;
    for (const SpanEvent &ev : events) {
        out += strprintf(
            "  t=[%.2f, %.2f] us  cell %-3d %-12s trace %llu",
            ticks_to_us(ev.begin), ticks_to_us(ev.end), ev.cell,
            to_string(ev.stage),
            static_cast<unsigned long long>(ev.traceId));
        if (ev.op != SpanOp::none)
            out += strprintf(" op=%s", to_string(ev.op));
        if (ev.aux != 0)
            out += strprintf(" aux=%u", ev.aux);
        out += "\n";
    }
    return out;
}

} // namespace ap::obs
