#include "obs/critpath.hh"

#include <algorithm>
#include <map>

#include "base/logging.hh"
#include "obs/json.hh"

namespace ap::obs
{

namespace
{

/** Attribution of one trace's events. */
struct TraceResult
{
    Tick endToEnd = 0;
    Tick attributed = 0;
    std::array<Tick, span_stage_count> stageTicks{};
    SpanOp op = SpanOp::none;
};

/**
 * Exact partition of one trace's covered time. Boundary sweep: for
 * each elementary segment between consecutive event endpoints, the
 * covering span with the latest begin (ties: the later pipeline
 * stage) wins the whole segment. Stage totals sum to the union of
 * the spans; n is small (a PUT is ~6 events), so the quadratic
 * sweep is fine.
 */
TraceResult
attribute_trace(const std::vector<SpanEvent> &evs)
{
    TraceResult r;
    Tick lo = evs.front().begin, hi = evs.front().end;
    for (const SpanEvent &ev : evs) {
        lo = std::min(lo, ev.begin);
        hi = std::max(hi, std::max(ev.begin, ev.end));
        if (ev.op != SpanOp::none && r.op == SpanOp::none)
            r.op = ev.op;
    }
    r.endToEnd = hi - lo;

    std::vector<Tick> bounds;
    bounds.reserve(evs.size() * 2);
    for (const SpanEvent &ev : evs) {
        bounds.push_back(ev.begin);
        bounds.push_back(ev.end);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()),
                 bounds.end());

    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
        Tick a = bounds[i], b = bounds[i + 1];
        const SpanEvent *winner = nullptr;
        for (const SpanEvent &ev : evs) {
            if (ev.begin > a || ev.end < b)
                continue; // does not cover [a, b)
            if (!winner || ev.begin > winner->begin ||
                (ev.begin == winner->begin &&
                 ev.stage > winner->stage))
                winner = &ev;
        }
        if (!winner)
            continue;
        Tick len = b - a;
        r.attributed += len;
        r.stageTicks[static_cast<std::size_t>(winner->stage)] += len;
    }
    return r;
}

} // namespace

CritPathReport
analyze_spans(const std::vector<SpanEvent> &events)
{
    CritPathReport rep;
    std::map<std::uint64_t, std::vector<SpanEvent>> traces;
    for (const SpanEvent &ev : events) {
        if (ev.traceId == 0)
            continue;
        traces[ev.traceId].push_back(ev);
        ++rep.events;
        ++rep.stages[static_cast<std::size_t>(ev.stage)].events;
    }

    for (const auto &[id, evs] : traces) {
        (void)id;
        TraceResult tr = attribute_trace(evs);
        ++rep.traces;
        rep.endToEndTicks += tr.endToEnd;
        rep.attributedTicks += tr.attributed;
        for (int s = 0; s < span_stage_count; ++s)
            rep.stages[static_cast<std::size_t>(s)].busyTicks +=
                tr.stageTicks[static_cast<std::size_t>(s)];

        OpAttribution &op =
            rep.ops[static_cast<std::size_t>(tr.op)];
        ++op.traces;
        op.endToEndTicks += tr.endToEnd;
        op.attributedTicks += tr.attributed;
        for (int s = 0; s < span_stage_count; ++s)
            op.stageTicks[static_cast<std::size_t>(s)] +=
                tr.stageTicks[static_cast<std::size_t>(s)];
    }
    return rep;
}

std::string
CritPathReport::text() const
{
    std::string out = strprintf(
        "critical-path profile: %llu operations, %llu span events\n"
        "  end-to-end %.1f us, attributed %.1f us (coverage "
        "%.1f%%)\n",
        static_cast<unsigned long long>(traces),
        static_cast<unsigned long long>(events),
        ticks_to_us(endToEndTicks), ticks_to_us(attributedTicks),
        coverage() * 100.0);
    out += "  stage           time(us)    share   events\n";
    double denom =
        endToEndTicks == 0 ? 1.0 : ticks_to_us(endToEndTicks);
    for (int s = 0; s < span_stage_count; ++s) {
        const StageAttribution &st =
            stages[static_cast<std::size_t>(s)];
        if (st.events == 0 && st.busyTicks == 0)
            continue;
        out += strprintf(
            "  %-14s %9.1f  %6.1f%%  %7llu\n",
            to_string(static_cast<SpanStage>(s)),
            ticks_to_us(st.busyTicks),
            100.0 * ticks_to_us(st.busyTicks) / denom,
            static_cast<unsigned long long>(st.events));
    }
    Tick gap = endToEndTicks > attributedTicks
                   ? endToEndTicks - attributedTicks
                   : 0;
    out += strprintf("  %-14s %9.1f  %6.1f%%\n", "(unattributed)",
                     ticks_to_us(gap),
                     100.0 * ticks_to_us(gap) / denom);

    out += "  per-operation breakdown:\n";
    for (int o = 0; o < span_op_count; ++o) {
        const OpAttribution &op = ops[static_cast<std::size_t>(o)];
        if (op.traces == 0)
            continue;
        out += strprintf(
            "    %-12s %5llu ops  mean %8.2f us  coverage %5.1f%% "
            " [",
            to_string(static_cast<SpanOp>(o)),
            static_cast<unsigned long long>(op.traces),
            ticks_to_us(op.endToEndTicks) /
                static_cast<double>(op.traces),
            op_coverage(static_cast<SpanOp>(o)) * 100.0);
        bool first = true;
        double opDenom = op.endToEndTicks == 0
                             ? 1.0
                             : ticks_to_us(op.endToEndTicks);
        for (int s = 0; s < span_stage_count; ++s) {
            Tick t = op.stageTicks[static_cast<std::size_t>(s)];
            if (t == 0)
                continue;
            out += strprintf(
                "%s%s %.1f%%", first ? "" : ", ",
                to_string(static_cast<SpanStage>(s)),
                100.0 * ticks_to_us(t) / opDenom);
            first = false;
        }
        out += "]\n";
    }
    return out;
}

std::string
CritPathReport::json(bool pretty) const
{
    JsonTree tree;
    tree.set("traces", static_cast<std::uint64_t>(traces));
    tree.set("events", static_cast<std::uint64_t>(events));
    tree.set("end_to_end_us", ticks_to_us(endToEndTicks));
    tree.set("attributed_us", ticks_to_us(attributedTicks));
    tree.set("coverage", coverage());
    for (int s = 0; s < span_stage_count; ++s) {
        const StageAttribution &st =
            stages[static_cast<std::size_t>(s)];
        std::string p = strprintf(
            "stages.%s.", to_string(static_cast<SpanStage>(s)));
        tree.set(p + "us", ticks_to_us(st.busyTicks));
        tree.set(p + "share",
                 endToEndTicks == 0
                     ? 0.0
                     : static_cast<double>(st.busyTicks) /
                           static_cast<double>(endToEndTicks));
        tree.set(p + "events", st.events);
    }
    for (int o = 0; o < span_op_count; ++o) {
        const OpAttribution &op = ops[static_cast<std::size_t>(o)];
        if (op.traces == 0)
            continue;
        std::string p = strprintf(
            "ops.%s.", to_string(static_cast<SpanOp>(o)));
        tree.set(p + "traces", op.traces);
        tree.set(p + "end_to_end_us",
                 ticks_to_us(op.endToEndTicks));
        tree.set(p + "attributed_us",
                 ticks_to_us(op.attributedTicks));
        tree.set(p + "coverage",
                 op_coverage(static_cast<SpanOp>(o)));
        for (int s = 0; s < span_stage_count; ++s) {
            Tick t = op.stageTicks[static_cast<std::size_t>(s)];
            if (t == 0)
                continue;
            tree.set(p + "stage_us." +
                         to_string(static_cast<SpanStage>(s)),
                     ticks_to_us(t));
        }
    }
    return tree.render(pretty);
}

} // namespace ap::obs
