/**
 * @file
 * gem5-style category debug flags, layered on base/logging.
 *
 * Every instrumented component guards its diagnostic printf behind a
 * category bit (`AP_DPRINTF(MSC, ...)`): when the category is off —
 * the default — the cost is a single relaxed load and branch, and the
 * format arguments are never evaluated. Categories are turned on at
 * run time from a comma-separated list (the `--debug-flags=MSC,DMA`
 * CLI convention), so a faulty run can be re-executed with exactly the
 * layers of interest narrating to stderr.
 */

#ifndef AP_OBS_DEBUG_HH
#define AP_OBS_DEBUG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ap::obs
{

/** One loggable category. Values are bit positions in the mask. */
enum class Dbg : std::uint32_t
{
    MSC = 1u << 0,     ///< message controller command/receive paths
    MC = 1u << 1,      ///< memory controller flag updates
    MMU = 1u << 2,     ///< translations and page faults
    Queue = 1u << 3,   ///< command queue spill/refill
    Ring = 1u << 4,    ///< SEND/RECEIVE ring buffer
    DMA = 1u << 5,     ///< gather/scatter transfers
    TNet = 1u << 6,    ///< torus network injection/delivery
    BNet = 1u << 7,    ///< broadcast network
    SNet = 1u << 8,    ///< barrier network
    Fault = 1u << 9,   ///< fault-injector decisions
    RTS = 1u << 10,    ///< language runtime (collective moves)
    Commreg = 1u << 11,///< communication registers
    Sim = 1u << 12,    ///< event kernel
    RNet = 1u << 13,   ///< reliable-delivery protocol layer
};

/** Currently enabled category mask. */
std::uint32_t debug_mask();

/** Replace the category mask (0 disables everything). */
void set_debug_mask(std::uint32_t mask);

/** @return true when @p flag 's category logging is on. */
inline bool
debug_enabled(Dbg flag)
{
    extern std::uint32_t debugMask;
    return (debugMask & static_cast<std::uint32_t>(flag)) != 0;
}

/** Canonical name of one category ("MSC", "TNet", ...). */
const char *to_string(Dbg flag);

/** All categories, for help text and parsing. */
std::vector<Dbg> all_debug_flags();

/**
 * Parse a comma-separated flag list ("MSC,DMA,TNet"; names are
 * case-insensitive; "All" enables everything) and OR it into the
 * mask. @return false (with a diagnostic in @p err when non-null) on
 * an unknown name; known names up to that point are still applied.
 */
bool parse_debug_flags(const std::string &csv,
                       std::string *err = nullptr);

/**
 * The slow path behind AP_DPRINTF: prints "DBG(<cat>): <message>" to
 * stderr. Call through the macro so arguments are not evaluated when
 * the category is off.
 */
void debug_print(Dbg flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace ap::obs

/**
 * Category-guarded diagnostic printf. Zero-cost when off: the guard
 * is one mask test and no argument is evaluated.
 */
#define AP_DPRINTF(category, ...)                                     \
    do {                                                              \
        if (::ap::obs::debug_enabled(::ap::obs::Dbg::category))       \
            ::ap::obs::debug_print(::ap::obs::Dbg::category,          \
                                   __VA_ARGS__);                      \
    } while (0)

#endif // AP_OBS_DEBUG_HH
