#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <vector>

#include "base/logging.hh"

namespace ap::obs
{

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

std::string
json_number(double v)
{
    if (!std::isfinite(v))
        return "0";
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        return strprintf("%lld", static_cast<long long>(v));
    return strprintf("%.6g", v);
}

void
JsonTree::set(const std::string &path, double v)
{
    leaves[path] = json_number(v);
}

void
JsonTree::set(const std::string &path, std::uint64_t v)
{
    leaves[path] = strprintf("%llu",
                             static_cast<unsigned long long>(v));
}

void
JsonTree::set_string(const std::string &path, const std::string &v)
{
    leaves[path] = "\"" + json_escape(v) + "\"";
}

void
JsonTree::set_raw(const std::string &path, const std::string &json)
{
    leaves[path] = json;
}

namespace
{

std::vector<std::string>
split_path(const std::string &path)
{
    std::vector<std::string> segs;
    std::size_t at = 0;
    while (at <= path.size()) {
        std::size_t dot = path.find('.', at);
        if (dot == std::string::npos) {
            segs.push_back(path.substr(at));
            break;
        }
        segs.push_back(path.substr(at, dot - at));
        at = dot + 1;
    }
    return segs;
}

} // namespace

std::string
JsonTree::render(bool pretty) const
{
    // The map is sorted, so siblings sharing a prefix are adjacent:
    // emit by tracking how many path segments stay open between
    // consecutive leaves. needComma means "the next item at the
    // current position must be preceded by a comma".
    std::string out = "{";
    std::vector<std::string> open;
    bool needComma = false;
    const std::string nl = pretty ? "\n" : "";
    auto indent = [&](std::size_t depth) {
        return pretty ? std::string(2 * (depth + 1), ' ')
                      : std::string();
    };

    for (const auto &[path, value] : leaves) {
        std::vector<std::string> segs = split_path(path);
        // Common prefix with the currently open scopes.
        std::size_t common = 0;
        while (common < open.size() && common + 1 < segs.size() &&
               open[common] == segs[common])
            ++common;
        // Close scopes deeper than the common prefix.
        while (open.size() > common) {
            out += nl + indent(open.size() - 1) + "}";
            open.pop_back();
            needComma = true;
        }
        // Open the new scopes.
        for (std::size_t i = common; i + 1 < segs.size(); ++i) {
            if (needComma)
                out += ",";
            out += nl + indent(open.size()) + "\"" +
                   json_escape(segs[i]) + "\": {";
            open.push_back(segs[i]);
            needComma = false;
        }
        if (needComma)
            out += ",";
        out += nl + indent(open.size()) + "\"" +
               json_escape(segs.back()) + "\": " + value;
        needComma = true;
    }
    while (!open.empty()) {
        out += nl + indent(open.size() - 1) + "}";
        open.pop_back();
    }
    out += nl + "}";
    if (pretty)
        out += "\n";
    return out;
}

// -- validating parser -------------------------------------------------

namespace
{

struct Parser
{
    const std::string &s;
    std::size_t at = 0;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = strprintf("%s at offset %zu", what.c_str(), at);
        return false;
    }

    void
    skip_ws()
    {
        while (at < s.size() &&
               (s[at] == ' ' || s[at] == '\t' || s[at] == '\n' ||
                s[at] == '\r'))
            ++at;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (s.compare(at, n, word) != 0)
            return fail("bad literal");
        at += n;
        return true;
    }

    bool
    string()
    {
        if (at >= s.size() || s[at] != '"')
            return fail("expected string");
        ++at;
        while (at < s.size() && s[at] != '"') {
            if (s[at] == '\\') {
                ++at;
                if (at >= s.size())
                    return fail("truncated escape");
                char e = s[at];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++at;
                        if (at >= s.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s[at])))
                            return fail("bad \\u escape");
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape");
                }
            }
            ++at;
        }
        if (at >= s.size())
            return fail("unterminated string");
        ++at; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = at;
        if (at < s.size() && s[at] == '-')
            ++at;
        while (at < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[at])))
            ++at;
        if (at == start || (s[start] == '-' && at == start + 1))
            return fail("expected number");
        if (at < s.size() && s[at] == '.') {
            ++at;
            if (at >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[at])))
                return fail("bad fraction");
            while (at < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[at])))
                ++at;
        }
        if (at < s.size() && (s[at] == 'e' || s[at] == 'E')) {
            ++at;
            if (at < s.size() && (s[at] == '+' || s[at] == '-'))
                ++at;
            if (at >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[at])))
                return fail("bad exponent");
            while (at < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[at])))
                ++at;
        }
        return true;
    }

    bool
    value()
    {
        skip_ws();
        if (at >= s.size())
            return fail("unexpected end");
        char c = s[at];
        if (c == '{') {
            ++at;
            skip_ws();
            if (at < s.size() && s[at] == '}') {
                ++at;
                return true;
            }
            for (;;) {
                skip_ws();
                if (!string())
                    return false;
                skip_ws();
                if (at >= s.size() || s[at] != ':')
                    return fail("expected ':'");
                ++at;
                if (!value())
                    return false;
                skip_ws();
                if (at < s.size() && s[at] == ',') {
                    ++at;
                    continue;
                }
                if (at < s.size() && s[at] == '}') {
                    ++at;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++at;
            skip_ws();
            if (at < s.size() && s[at] == ']') {
                ++at;
                return true;
            }
            for (;;) {
                if (!value())
                    return false;
                skip_ws();
                if (at < s.size() && s[at] == ',') {
                    ++at;
                    continue;
                }
                if (at < s.size() && s[at] == ']') {
                    ++at;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }
};

} // namespace

bool
json_valid(const std::string &text, std::string *err)
{
    Parser p{text};
    if (!p.value()) {
        if (err)
            *err = p.err;
        return false;
    }
    p.skip_ws();
    if (p.at != text.size()) {
        if (err)
            *err = strprintf("trailing garbage at offset %zu", p.at);
        return false;
    }
    return true;
}

bool
write_file(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = (n == text.size()) && std::fclose(f) == 0;
    if (n != text.size())
        std::fclose(f);
    return ok;
}

} // namespace ap::obs
