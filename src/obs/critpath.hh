/**
 * @file
 * Critical-path profiler over causal span events.
 *
 * Takes the full-mode span log (obs/span.hh), groups events by trace
 * id, and attributes each operation's end-to-end latency to pipeline
 * stages. Attribution is an exact partition of the covered time: the
 * event window of one trace is swept boundary to boundary, and each
 * elementary segment is charged to the *innermost* covering span
 * (latest begin wins, so a retransmit child inside a net span takes
 * the segment). Stage totals therefore sum to the union of the
 * trace's spans; whatever the union misses is reported as
 * unattributed, and coverage = attributed / end-to-end is the
 * profiler's own confidence number — the repo's acceptance bar is
 * >= 95% on PUT traffic.
 *
 * The report aggregates machine-wide and per operation kind (PUT,
 * GET, SEND, ...), renders as text for terminals and as JSON (via
 * obs/json.hh) for CI schema checks, and is wired into
 * `ap_run --profile` and the benches.
 */

#ifndef AP_OBS_CRITPATH_HH
#define AP_OBS_CRITPATH_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "obs/span.hh"

namespace ap::obs
{

/** Exclusive time charged to one stage. */
struct StageAttribution
{
    Tick busyTicks = 0;        ///< exclusive attributed time
    std::uint64_t events = 0;  ///< span events of this stage
};

/** Aggregate over one operation kind. */
struct OpAttribution
{
    std::uint64_t traces = 0;
    Tick endToEndTicks = 0;   ///< sum of per-trace max(end)-min(begin)
    Tick attributedTicks = 0; ///< sum of per-trace covered time
    std::array<Tick, span_stage_count> stageTicks{};
};

/** The critical-path attribution of one span log. */
struct CritPathReport
{
    std::uint64_t traces = 0;
    std::uint64_t events = 0;
    Tick endToEndTicks = 0;
    Tick attributedTicks = 0;
    std::array<StageAttribution, span_stage_count> stages{};
    std::array<OpAttribution, span_op_count> ops{};

    /** Fraction of end-to-end time attributed to named stages. */
    double
    coverage() const
    {
        return endToEndTicks == 0
                   ? 1.0
                   : static_cast<double>(attributedTicks) /
                         static_cast<double>(endToEndTicks);
    }

    /** Coverage of one operation kind. */
    double
    op_coverage(SpanOp op) const
    {
        const OpAttribution &o =
            ops[static_cast<std::size_t>(op)];
        return o.endToEndTicks == 0
                   ? 1.0
                   : static_cast<double>(o.attributedTicks) /
                         static_cast<double>(o.endToEndTicks);
    }

    /** Human-readable stage table plus per-op breakdown. */
    std::string text() const;

    /** JSON document (coverage, stages.<name>, ops.<name>). */
    std::string json(bool pretty = true) const;
};

/**
 * Attribute @p events (any order, any mix of traces). Events with
 * traceId 0 are ignored.
 */
CritPathReport analyze_spans(const std::vector<SpanEvent> &events);

} // namespace ap::obs

#endif // AP_OBS_CRITPATH_HH
