#include "obs/debug.hh"

#include <cstdarg>
#include <cstdio>

#include "base/logging.hh"
#include "base/strings.hh"

namespace ap::obs
{

/** The one global mask; read inline by debug_enabled(). */
std::uint32_t debugMask = 0;

std::uint32_t
debug_mask()
{
    return debugMask;
}

void
set_debug_mask(std::uint32_t mask)
{
    debugMask = mask;
}

const char *
to_string(Dbg flag)
{
    switch (flag) {
      case Dbg::MSC:
        return "MSC";
      case Dbg::MC:
        return "MC";
      case Dbg::MMU:
        return "MMU";
      case Dbg::Queue:
        return "Queue";
      case Dbg::Ring:
        return "Ring";
      case Dbg::DMA:
        return "DMA";
      case Dbg::TNet:
        return "TNet";
      case Dbg::BNet:
        return "BNet";
      case Dbg::SNet:
        return "SNet";
      case Dbg::Fault:
        return "Fault";
      case Dbg::RTS:
        return "RTS";
      case Dbg::Commreg:
        return "Commreg";
      case Dbg::Sim:
        return "Sim";
      case Dbg::RNet:
        return "RNet";
    }
    return "?";
}

std::vector<Dbg>
all_debug_flags()
{
    return {Dbg::MSC, Dbg::MC, Dbg::MMU, Dbg::Queue, Dbg::Ring,
            Dbg::DMA, Dbg::TNet, Dbg::BNet, Dbg::SNet, Dbg::Fault,
            Dbg::RTS, Dbg::Commreg, Dbg::Sim, Dbg::RNet};
}

namespace
{

std::string
lower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (c >= 'A' && c <= 'Z')
            c += 'a' - 'A';
    return out;
}

} // namespace

bool
parse_debug_flags(const std::string &csv, std::string *err)
{
    std::uint32_t mask = debugMask;
    std::size_t at = 0;
    while (at <= csv.size()) {
        std::size_t comma = csv.find(',', at);
        std::string name =
            csv.substr(at, comma == std::string::npos ? comma
                                                      : comma - at);
        at = comma == std::string::npos ? csv.size() + 1 : comma + 1;
        if (name.empty())
            continue;
        std::string want = lower(name);
        if (want == "all") {
            for (Dbg f : all_debug_flags())
                mask |= static_cast<std::uint32_t>(f);
            continue;
        }
        bool found = false;
        for (Dbg f : all_debug_flags()) {
            if (lower(to_string(f)) == want) {
                mask |= static_cast<std::uint32_t>(f);
                found = true;
                break;
            }
        }
        if (!found) {
            if (err) {
                std::string known;
                for (Dbg f : all_debug_flags()) {
                    if (!known.empty())
                        known += ",";
                    known += to_string(f);
                }
                *err = strprintf("unknown debug flag '%s' (known: "
                                 "%s,All)",
                                 name.c_str(), known.c_str());
            }
            debugMask = mask;
            return false;
        }
    }
    debugMask = mask;
    return true;
}

void
debug_print(Dbg flag, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "DBG(%s): %s\n", to_string(flag),
                 msg.c_str());
}

} // namespace ap::obs
