#include "obs/span.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/json.hh"

namespace ap::obs
{

const char *
to_string(SpanMode mode)
{
    switch (mode) {
      case SpanMode::off:
        return "off";
      case SpanMode::flight:
        return "flight";
      case SpanMode::full:
        return "full";
    }
    return "?";
}

const char *
to_string(SpanStage stage)
{
    switch (stage) {
      case SpanStage::issue:
        return "issue";
      case SpanStage::queue:
        return "queue";
      case SpanStage::dma_send:
        return "dma_send";
      case SpanStage::net:
        return "net";
      case SpanStage::dma_recv:
        return "dma_recv";
      case SpanStage::flag:
        return "flag";
      case SpanStage::ring_deposit:
        return "ring_deposit";
      case SpanStage::ring_receive:
        return "ring_receive";
      case SpanStage::retransmit:
        return "retransmit";
      case SpanStage::barrier:
        return "barrier";
      case SpanStage::barrier_wait:
        return "barrier_wait";
    }
    return "?";
}

const char *
to_string(SpanOp op)
{
    switch (op) {
      case SpanOp::none:
        return "none";
      case SpanOp::put:
        return "put";
      case SpanOp::get:
        return "get";
      case SpanOp::send:
        return "send";
      case SpanOp::ack:
        return "ack";
      case SpanOp::remote_store:
        return "remote_store";
      case SpanOp::remote_load:
        return "remote_load";
      case SpanOp::bcast:
        return "bcast";
      case SpanOp::barrier:
        return "barrier";
    }
    return "?";
}

SpanLayer::SpanLayer(int cells, std::size_t flightCapacity)
{
    rings.reserve(static_cast<std::size_t>(cells) + 1);
    for (int i = 0; i < cells + 1; ++i)
        rings.emplace_back(flightCapacity);
    ringLocks =
        std::make_unique<std::mutex[]>(rings.size());
}

void
SpanLayer::record(std::int32_t cell, std::uint64_t traceId,
                  SpanStage stage, Tick begin, Tick end, SpanOp op,
                  std::uint32_t aux)
{
    if (mode_ == SpanMode::off || traceId == 0)
        return;
    SpanEvent ev;
    ev.traceId = traceId;
    ev.begin = begin;
    ev.end = end;
    ev.cell = cell;
    ev.stage = stage;
    ev.op = op;
    ev.aux = aux;
    recordedCount.fetch_add(1, std::memory_order_relaxed);

    std::size_t idx = static_cast<std::size_t>(cell + 1);
    if (idx >= rings.size())
        idx = 0; // out-of-range track lands on the machine ring
    {
        std::lock_guard<std::mutex> lock(ringLocks[idx]);
        rings[idx].push(ev);
    }

    if (mode_ == SpanMode::full) {
        std::lock_guard<std::mutex> lock(fullMutex);
        if (fullLog.size() < fullCapacity)
            fullLog.push_back(ev);
        else
            ++fullDropped;
    }
}

void
SpanLayer::clear()
{
    {
        std::lock_guard<std::mutex> lock(fullMutex);
        fullLog.clear();
        fullDropped = 0;
    }
    for (std::size_t i = 0; i < rings.size(); ++i) {
        std::lock_guard<std::mutex> lock(ringLocks[i]);
        rings[i].clear();
    }
}

const FlightRecorder &
SpanLayer::flight(std::int32_t cell) const
{
    std::size_t idx = static_cast<std::size_t>(cell + 1);
    if (idx >= rings.size())
        panic("flight ring for cell %d outside machine of %zu cells",
              cell, rings.size() - 1);
    return rings[idx];
}

std::vector<SpanEvent>
SpanLayer::flight_events(std::size_t maxPerCell) const
{
    std::vector<SpanEvent> out;
    for (std::size_t i = 0; i < rings.size(); ++i) {
        std::lock_guard<std::mutex> lock(ringLocks[i]);
        std::vector<SpanEvent> part = rings[i].snapshot(maxPerCell);
        out.insert(out.end(), part.begin(), part.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SpanEvent &a, const SpanEvent &b) {
                         if (a.begin != b.begin)
                             return a.begin < b.begin;
                         return a.traceId < b.traceId;
                     });
    return out;
}

std::string
span_chrome_json(const std::vector<SpanEvent> &events)
{
    // Same trace_event dialect as obs::Tracer::chrome_json(): one
    // thread per cell, complete events, microsecond timestamps.
    std::string out = "{\"traceEvents\": [\n";
    bool first = true;

    std::vector<std::int32_t> cells;
    for (const SpanEvent &ev : events)
        if (std::find(cells.begin(), cells.end(), ev.cell) ==
            cells.end())
            cells.push_back(ev.cell);
    std::sort(cells.begin(), cells.end());
    for (std::int32_t c : cells) {
        std::string name =
            c < 0 ? "machine" : strprintf("cell %d", c);
        if (!first)
            out += ",\n";
        first = false;
        out += strprintf(
            "  {\"name\": \"thread_name\", \"ph\": \"M\", "
            "\"pid\": 1, \"tid\": %d, \"args\": {\"name\": "
            "\"%s\"}}",
            c + 1, json_escape(name).c_str());
    }

    for (const SpanEvent &ev : events) {
        if (!first)
            out += ",\n";
        first = false;
        std::string args = strprintf(
            "{\"trace\": %llu",
            static_cast<unsigned long long>(ev.traceId));
        if (ev.op != SpanOp::none)
            args += strprintf(", \"op\": \"%s\"", to_string(ev.op));
        if (ev.aux != 0)
            args += strprintf(", \"aux\": %u", ev.aux);
        args += "}";
        out += strprintf(
            "  {\"name\": \"%s\", \"cat\": \"span\", \"ph\": \"X\", "
            "\"ts\": %s, \"dur\": %s, \"pid\": 1, \"tid\": %d, "
            "\"args\": %s}",
            to_string(ev.stage),
            json_number(ticks_to_us(ev.begin)).c_str(),
            json_number(ticks_to_us(ev.end - ev.begin)).c_str(),
            ev.cell + 1, args.c_str());
    }
    out += "\n]}\n";
    return out;
}

std::string
span_text(const std::vector<SpanEvent> &events)
{
    return flight_text(events);
}

} // namespace ap::obs
