/**
 * @file
 * Continuous perf timeline: a bounded-ring time-series sampler over
 * the stats registry.
 *
 * The registry (obs/stats_registry.hh) answers "what happened over
 * the whole run"; the per-phase deltas answer "what happened between
 * two hand-placed marks". Neither shows a *rate curve* — events/sec
 * climbing as cells leave the startup barrier, handoffs/sec spiking
 * when a fault plan reorders traffic, queue depth breathing with each
 * collective. This sampler closes that gap: every `period` ticks of
 * model time it snapshots the registry (reusing snapshot() /
 * delta_since()) and stores one row per configured series in a
 * bounded ring, exported as a JSON timeline (`ap_run
 * --timeline-out=FILE`, validated by tools/check_profile_schema.py
 * timeline) or as CSV for spreadsheets and pandas
 * (`--timeline-csv=FILE`).
 *
 * The sampler is an observer, not an actor: it never schedules
 * events. run() drives the simulator from *outside* the event loop —
 * run_until(boundary), sample, repeat — so the executed event
 * sequence is exactly what run() would have produced and determinism
 * byte-identity is preserved by construction (tests/test_sampler.cc
 * pins this). Samples are taken only while the machine is quiescent,
 * so no shard is concurrently mutating the counters being read.
 */

#ifndef AP_OBS_SAMPLER_HH
#define AP_OBS_SAMPLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "obs/stats_registry.hh"

namespace ap::sim
{
class Simulator;
}

namespace ap::obs
{

/** One tracked series of the timeline. */
struct SeriesSpec
{
    std::string name;    ///< label in the export ("events", ...)
    /** Registry pattern folded with StatsRegistry rules ("*" matches
     *  one segment); matching scalars are summed. */
    std::string pattern;
    /**
     * false: the series is the per-period delta of the summed value
     * (a rate curve once divided by the period); true: the absolute
     * level at the sample instant (queue depths, high-water marks).
     */
    bool level = false;
};

/** One timeline row: the sample instant plus one value per series. */
struct TimelineSample
{
    Tick tick = 0;
    std::vector<std::int64_t> values;
};

/** Bounded-ring registry sampler; see the file comment. */
class TimelineSampler
{
  public:
    static constexpr std::size_t default_capacity = 4096;

    /**
     * @param reg the registry to sample (must outlive the sampler)
     * @param period model-time sampling period in ticks (>= 1)
     * @param series tracked series; default_series() when empty
     * @param capacity ring bound in samples (oldest age out)
     */
    TimelineSampler(const StatsRegistry &reg, Tick period,
                    std::vector<SeriesSpec> series = {},
                    std::size_t capacity = default_capacity);

    /** The stock machine series: event/handoff/message rates plus
     *  queue-depth and barrier-wait levels. */
    static std::vector<SeriesSpec> default_series();

    Tick period() const { return periodTicks; }
    const std::vector<SeriesSpec> &series() const { return specs; }

    /** The first sample boundary strictly after @p now: the smallest
     *  multiple of the period greater than @p now (saturating). */
    Tick next_boundary(Tick now) const;

    /**
     * Capture the base snapshot deltas count from. Implicit on the
     * first sample()/run() if never called.
     */
    void start();

    /** Take one sample labeled with model time @p now. */
    void sample(Tick now);

    /**
     * Drive @p sim to completion, sampling at every period boundary:
     * run_until(boundary), sample, repeat until the queue drains.
     * Event execution order is identical to a plain run().
     */
    void run(sim::Simulator &sim);

    /** Samples currently retained. */
    std::size_t size() const { return ring.size(); }
    /** Samples taken since construction. */
    std::uint64_t taken() const { return total; }
    /** Samples that aged out of the ring. */
    std::uint64_t dropped() const { return total - ring.size(); }

    /** Retained samples, oldest first. */
    std::vector<TimelineSample> samples() const;

    /**
     * The timeline JSON document:
     *   {"kind": "timeline", "period_us": P, "series": [...],
     *    "level": [...], "taken": N, "dropped": D,
     *    "samples": [{"t_us": T, "v": [...]}, ...]}
     * t_us strictly increasing; v aligned with "series".
     */
    std::string json(bool pretty = true) const;

    /** Write json() to @p path. @return false on I/O error. */
    bool write(const std::string &path) const;

    /**
     * The timeline as CSV, one line per retained sample:
     *   t_us,<series 0 name>,<series 1 name>,...
     *   0.02,118,3,...
     * Same rows and ordering as json()'s "samples" array (oldest
     * first, strictly increasing t_us); series names never contain
     * commas or quotes, so the document needs no CSV escaping and
     * loads directly into spreadsheets or pandas.
     */
    std::string csv() const;

    /** Write csv() to @p path. @return false on I/O error. */
    bool write_csv(const std::string &path) const;

  private:
    const StatsRegistry &reg;
    Tick periodTicks;
    std::vector<SeriesSpec> specs;
    std::size_t cap;
    bool started = false;
    StatsRegistry::Snapshot prev;
    std::vector<TimelineSample> ring;
    std::size_t head = 0;
    std::uint64_t total = 0;
};

} // namespace ap::obs

#endif // AP_OBS_SAMPLER_HH
