/**
 * @file
 * Per-cell flight recorder: a bounded ring of the last N span events.
 *
 * The tracer (obs/tracer.hh) must be enabled before the interesting
 * run; the flight recorder is the other way around — always on, so
 * the events leading up to a failure exist *after the fact*. Each
 * cell keeps a fixed preallocated ring of POD span events; a push is
 * an array store plus an index increment, which is what lets the
 * machine afford it on every message of every run. When a CommError
 * or watchdog fires, the merged rings are the black box: the last
 * thing every cell's hardware did, dumped as text into the error
 * message and as Chrome trace JSON on demand
 * (Machine::dump_flight_recorder()).
 */

#ifndef AP_OBS_FLIGHT_HH
#define AP_OBS_FLIGHT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ap::obs
{

struct SpanEvent;

/** One cell's bounded span-event ring. */
class FlightRecorder
{
  public:
    static constexpr std::size_t default_capacity = 256;

    explicit FlightRecorder(
        std::size_t capacity = default_capacity);

    /** Store @p ev, overwriting the oldest event when full. */
    void push(const SpanEvent &ev);

    /** Events currently retained. */
    std::size_t size() const;

    /** Ring bound in events. */
    std::size_t capacity() const { return cap; }

    /** Events pushed since construction. */
    std::uint64_t total() const { return count; }

    /** Events that aged out of the ring. */
    std::uint64_t dropped() const;

    /** Retained events, oldest first. @p maxEvents 0 = all. */
    std::vector<SpanEvent> snapshot(std::size_t maxEvents = 0) const;

    /** Forget everything (capacity is kept). */
    void clear();

  private:
    std::size_t cap;
    std::size_t head = 0; ///< next slot to overwrite
    std::uint64_t count = 0;
    std::vector<SpanEvent> ring; ///< preallocated to cap
};

/**
 * Render flight-recorder @p events as a postmortem text block: one
 * line per event with trace id, stage, cell and tick window.
 */
std::string flight_text(const std::vector<SpanEvent> &events);

} // namespace ap::obs

#endif // AP_OBS_FLIGHT_HH
