/**
 * @file
 * Cycle-timeline tracer: spans and instants on per-cell tracks,
 * exported as Chrome trace_event JSON.
 *
 * The paper's MLSim is trace-*driven*; this tracer is the other
 * direction — the functional machine narrating what its hardware did
 * and when, so a faulty stress run can be opened in chrome://tracing
 * or Perfetto and show exactly where a PUT stalled, a queue spilled,
 * or an injected fault fired. Hardware components hold a Tracer
 * pointer (null = tracing off, one branch per probe); the Machine
 * owns the instance and wires it in when tracing is enabled.
 *
 * Records live in a bounded ring buffer: with tracing left on
 * permanently, memory stays fixed and the export holds the most
 * recent `capacity` events (dropped() counts what aged out). All
 * timestamps come from the owning simulator, so the timeline uses
 * simulated time — microseconds in the export, matching the tick
 * convention (1 tick = 1 ns).
 */

#ifndef AP_OBS_TRACER_HH
#define AP_OBS_TRACER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/types.hh"

namespace ap::sim
{
class Simulator;
}

namespace ap::obs
{

/** The machine-wide track for events not owned by one cell. */
constexpr int machine_track = -1;

/**
 * Track of host worker (shard) @p w of the parallel kernel. Worker
 * tracks live below machine_track so the cell id space stays
 * untouched; chrome_json() names them "worker N".
 */
constexpr int
worker_track(int w)
{
    return -2 - w;
}

/** One recorded event. */
struct TraceRecord
{
    Tick ts = 0;        ///< begin tick
    Tick dur = 0;       ///< span length; 0 for instants
    std::int32_t track = machine_track; ///< cell id or machine_track
    bool instant = false;
    bool counter = false; ///< Chrome "C" counter sample
    double value = 0.0;   ///< counter sample value
    const char *cat = "";///< static category string ("msc", "fault")
    std::string name;    ///< event name ("put", "spill:user", ...)
};

/** Bounded recorder + Chrome trace_event exporter. */
class Tracer
{
  public:
    static constexpr std::size_t default_capacity = 1 << 16;

    /**
     * @param sim clock source for instants/span ends
     * @param capacity ring-buffer bound in records
     */
    explicit Tracer(const sim::Simulator &sim,
                    std::size_t capacity = default_capacity);

    /** Record a zero-duration event at the current simulated time. */
    void instant(int track, const char *cat, std::string name);

    /** Record a span from @p begin to the current simulated time. */
    void span(int track, const char *cat, std::string name,
              Tick begin);

    /** Record a span with explicit endpoints. */
    void span_at(int track, const char *cat, std::string name,
                 Tick begin, Tick end);

    /**
     * Record a Chrome counter ("C") sample at @p ts — rendered as a
     * stacked area chart per name. The kernel emits per-window
     * imbalance and barrier-wait curves through this.
     */
    void counter_at(int track, const char *cat, std::string name,
                    Tick ts, double value);

    /** Records currently retained. */
    std::size_t size() const;

    /** Ring-buffer bound. */
    std::size_t capacity() const { return cap; }

    /** Records that aged out of the ring. */
    std::uint64_t dropped() const;

    /** Retained records, oldest first. */
    std::vector<TraceRecord> snapshot() const;

    /**
     * Render Chrome trace_event JSON ({"traceEvents": [...]}): one
     * thread per track, named "cell N" (or "machine"), spans as
     * complete ("X") events and instants as "i" events, timestamps
     * in microseconds.
     */
    std::string chrome_json() const;

    /** Write chrome_json() to @p path. @return false on I/O error. */
    bool write_chrome_json(const std::string &path) const;

  private:
    void push(TraceRecord rec);

    const sim::Simulator &sim;
    std::size_t cap;
    /** One shared ring fed by every component on every shard. */
    mutable std::mutex mu;
    /** ring storage; grows to cap then wraps at `head`. */
    std::vector<TraceRecord> ring;
    std::size_t head = 0;
    std::uint64_t total = 0;
};

} // namespace ap::obs

#endif // AP_OBS_TRACER_HH
