#include "obs/stats_registry.hh"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "base/logging.hh"
#include "obs/json.hh"

namespace ap::obs
{

void
StatsRegistry::add_counter(const std::string &path,
                           const std::uint64_t *v)
{
    entries[path] =
        StatEntry{StatKind::counter, [v]() { return *v; }, nullptr};
}

void
StatsRegistry::add_gauge(const std::string &path,
                         std::function<std::uint64_t()> fn)
{
    entries[path] =
        StatEntry{StatKind::gauge, std::move(fn), nullptr};
}

void
StatsRegistry::add_gauge(const std::string &path,
                         const std::uint64_t *v)
{
    entries[path] =
        StatEntry{StatKind::gauge, [v]() { return *v; }, nullptr};
}

void
StatsRegistry::add_histogram(const std::string &path,
                             const Histogram *h)
{
    entries[path] = StatEntry{
        StatKind::histogram, [h]() { return h->scalar().count(); },
        h};
}

void
StatsRegistry::remove_prefix(const std::string &prefix)
{
    auto it = entries.lower_bound(prefix);
    while (it != entries.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0)
        it = entries.erase(it);
}

std::vector<std::string>
StatsRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[path, entry] : entries)
        out.push_back(path);
    return out;
}

const StatEntry *
StatsRegistry::find(const std::string &path) const
{
    auto it = entries.find(path);
    return it == entries.end() ? nullptr : &it->second;
}

std::uint64_t
StatsRegistry::value(const std::string &path) const
{
    const StatEntry *e = find(path);
    return e ? e->value() : 0;
}

bool
StatsRegistry::matches(const std::string &pattern,
                       const std::string &path)
{
    std::size_t pa = 0, sa = 0;
    for (;;) {
        std::size_t pd = pattern.find('.', pa);
        std::size_t sd = path.find('.', sa);
        std::string pseg = pattern.substr(
            pa, pd == std::string::npos ? pd : pd - pa);
        std::string sseg =
            path.substr(sa, sd == std::string::npos ? sd : sd - sa);
        if (pseg != "*" && pseg != sseg)
            return false;
        bool pend = pd == std::string::npos;
        bool send = sd == std::string::npos;
        if (pend || send)
            return pend && send;
        pa = pd + 1;
        sa = sd + 1;
    }
}

std::uint64_t
StatsRegistry::sum(const std::string &pattern) const
{
    std::uint64_t total = 0;
    for (const auto &[path, entry] : entries)
        if (matches(pattern, path))
            total += entry.value();
    return total;
}

std::uint64_t
StatsRegistry::max_over(const std::string &pattern,
                        std::string *who) const
{
    std::uint64_t best = 0;
    bool any = false;
    for (const auto &[path, entry] : entries) {
        if (!matches(pattern, path))
            continue;
        std::uint64_t v = entry.value();
        if (!any || v > best) {
            best = v;
            if (who)
                *who = path;
        }
        any = true;
    }
    return best;
}

StatsRegistry::Snapshot
StatsRegistry::snapshot() const
{
    Snapshot snap;
    for (const auto &[path, entry] : entries)
        snap[path] = entry.value();
    return snap;
}

std::map<std::string, std::int64_t>
StatsRegistry::delta_since(const Snapshot &before) const
{
    std::map<std::string, std::int64_t> d;
    for (const auto &[path, entry] : entries) {
        auto it = before.find(path);
        std::uint64_t was = it == before.end() ? 0 : it->second;
        d[path] = static_cast<std::int64_t>(entry.value()) -
                  static_cast<std::int64_t>(was);
    }
    return d;
}

std::string
StatsRegistry::delta_text(
    const std::map<std::string, std::int64_t> &d,
    std::size_t maxRows)
{
    std::vector<std::pair<std::string, std::int64_t>> rows;
    for (const auto &[path, delta] : d)
        if (delta != 0)
            rows.emplace_back(path, delta);
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto &a, const auto &b) {
                         return std::llabs(a.second) >
                                std::llabs(b.second);
                     });
    std::string out;
    std::size_t shown = 0;
    for (const auto &[path, delta] : rows) {
        if (maxRows != 0 && shown == maxRows)
            break;
        out += strprintf("%-48s %+lld\n", path.c_str(),
                         static_cast<long long>(delta));
        ++shown;
    }
    if (shown < rows.size())
        out += strprintf("... (%zu more)\n", rows.size() - shown);
    if (rows.empty())
        out += "(no change)\n";
    return out;
}

namespace
{

std::string
histogram_json(const Histogram &h)
{
    const Accumulator &a = h.scalar();
    std::string out = strprintf(
        "{\"count\": %llu, \"sum\": %s, \"min\": %s, \"max\": %s, "
        "\"mean\": %s, \"buckets\": {",
        static_cast<unsigned long long>(a.count()),
        json_number(a.sum()).c_str(), json_number(a.min()).c_str(),
        json_number(a.max()).c_str(), json_number(a.mean()).c_str());
    bool first = true;
    for (const auto &[b, c] : h.data()) {
        if (!first)
            out += ", ";
        first = false;
        out += strprintf("\"b%d\": %llu", b,
                         static_cast<unsigned long long>(c));
    }
    out += "}}";
    return out;
}

} // namespace

namespace
{

bool
has_prefix(const std::string &s, const std::string &prefix)
{
    return !prefix.empty() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

} // namespace

std::string
StatsRegistry::dump_json(bool pretty,
                         const std::string &skipPrefix) const
{
    JsonTree tree;
    for (const auto &[path, entry] : entries) {
        if (has_prefix(path, skipPrefix))
            continue;
        if (entry.kind == StatKind::histogram)
            tree.set_raw(path, histogram_json(*entry.hist));
        else
            tree.set(path, entry.value());
    }
    return tree.render(pretty);
}

std::string
StatsRegistry::dump_text(const std::string &skipPrefix) const
{
    std::string out;
    for (const auto &[path, entry] : entries) {
        if (has_prefix(path, skipPrefix))
            continue;
        if (entry.kind == StatKind::histogram) {
            const Accumulator &a = entry.hist->scalar();
            out += strprintf(
                "%-48s count=%llu mean=%.2f max=%.0f\n", path.c_str(),
                static_cast<unsigned long long>(a.count()), a.mean(),
                a.max());
        } else {
            out += strprintf("%-48s %llu\n", path.c_str(),
                             static_cast<unsigned long long>(
                                 entry.value()));
        }
    }
    return out;
}

} // namespace ap::obs
