#include "obs/tracer.hh"

#include <algorithm>
#include <set>

#include "base/logging.hh"
#include "obs/json.hh"
#include "sim/eventq.hh"

namespace ap::obs
{

Tracer::Tracer(const sim::Simulator &sim, std::size_t capacity)
    : sim(sim), cap(std::max<std::size_t>(capacity, 16))
{
    ring.reserve(std::min<std::size_t>(cap, 4096));
}

void
Tracer::push(TraceRecord rec)
{
    std::lock_guard<std::mutex> lock(mu);
    if (ring.size() < cap) {
        ring.push_back(std::move(rec));
    } else {
        ring[head] = std::move(rec);
        head = (head + 1) % cap;
    }
    ++total;
}

void
Tracer::instant(int track, const char *cat, std::string name)
{
    TraceRecord rec;
    rec.ts = sim.now();
    rec.track = track;
    rec.instant = true;
    rec.cat = cat;
    rec.name = std::move(name);
    push(std::move(rec));
}

void
Tracer::span(int track, const char *cat, std::string name, Tick begin)
{
    span_at(track, cat, std::move(name), begin, sim.now());
}

void
Tracer::span_at(int track, const char *cat, std::string name,
                Tick begin, Tick end)
{
    TraceRecord rec;
    rec.ts = begin;
    rec.dur = end >= begin ? end - begin : 0;
    rec.track = track;
    rec.cat = cat;
    rec.name = std::move(name);
    push(std::move(rec));
}

void
Tracer::counter_at(int track, const char *cat, std::string name,
                   Tick ts, double value)
{
    TraceRecord rec;
    rec.ts = ts;
    rec.track = track;
    rec.counter = true;
    rec.value = value;
    rec.cat = cat;
    rec.name = std::move(name);
    push(std::move(rec));
}

std::size_t
Tracer::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return ring.size();
}

std::uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mu);
    return total - ring.size();
}

std::vector<TraceRecord>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<TraceRecord> out;
    out.reserve(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(head + i) % ring.size()]);
    return out;
}

std::string
Tracer::chrome_json() const
{
    // tid 0 is the machine-wide track; cells map to tid = cell + 1;
    // kernel worker tracks (negative below machine_track) land in a
    // high tid band so they sort after the cells.
    auto tid_of = [](std::int32_t track) {
        if (track == machine_track)
            return 0;
        if (track < machine_track)
            return 1000000 + (-2 - track);
        return track + 1;
    };

    std::vector<TraceRecord> recs = snapshot();
    std::set<std::int32_t> tracks;
    for (const TraceRecord &r : recs)
        tracks.insert(r.track);

    std::string out = "{\"traceEvents\": [";
    bool first = true;
    for (std::int32_t track : tracks) {
        if (!first)
            out += ",";
        first = false;
        std::string name;
        if (track == machine_track)
            name = "machine";
        else if (track < machine_track)
            name = strprintf("worker %d", -2 - track);
        else
            name = strprintf("cell %d", track);
        out += strprintf("\n{\"ph\": \"M\", \"pid\": 0, \"tid\": %d, "
                         "\"name\": \"thread_name\", "
                         "\"args\": {\"name\": \"%s\"}}",
                         tid_of(track), name.c_str());
    }
    for (const TraceRecord &r : recs) {
        if (!first)
            out += ",";
        first = false;
        double ts = ticks_to_us(r.ts);
        if (r.counter) {
            out += strprintf(
                "\n{\"ph\": \"C\", \"pid\": 0, \"tid\": %d, "
                "\"ts\": %s, \"cat\": \"%s\", \"name\": \"%s\", "
                "\"args\": {\"value\": %s}}",
                tid_of(r.track), json_number(ts).c_str(), r.cat,
                json_escape(r.name).c_str(),
                json_number(r.value).c_str());
        } else if (r.instant) {
            out += strprintf(
                "\n{\"ph\": \"i\", \"pid\": 0, \"tid\": %d, "
                "\"ts\": %s, \"s\": \"t\", \"cat\": \"%s\", "
                "\"name\": \"%s\"}",
                tid_of(r.track), json_number(ts).c_str(), r.cat,
                json_escape(r.name).c_str());
        } else {
            out += strprintf(
                "\n{\"ph\": \"X\", \"pid\": 0, \"tid\": %d, "
                "\"ts\": %s, \"dur\": %s, \"cat\": \"%s\", "
                "\"name\": \"%s\"}",
                tid_of(r.track), json_number(ts).c_str(),
                json_number(ticks_to_us(r.dur)).c_str(), r.cat,
                json_escape(r.name).c_str());
        }
    }
    out += strprintf("\n], \"displayTimeUnit\": \"ms\", "
                     "\"otherData\": {\"dropped\": %llu}}\n",
                     static_cast<unsigned long long>(dropped()));
    return out;
}

bool
Tracer::write_chrome_json(const std::string &path) const
{
    return write_file(path, chrome_json());
}

} // namespace ap::obs
