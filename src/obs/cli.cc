#include "obs/cli.hh"

#include <cstdlib>
#include <cstring>

#include "base/logging.hh"
#include "obs/debug.hh"

namespace ap::obs
{

bool
consume_obs_arg(const char *arg, ObsOptions &opt)
{
    if (std::strncmp(arg, "--stats-out=", 12) == 0) {
        opt.statsOut = arg + 12;
        return true;
    }
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
        opt.traceOut = arg + 12;
        return true;
    }
    if (std::strncmp(arg, "--timeline-out=", 15) == 0) {
        opt.timelineOut = arg + 15;
        return true;
    }
    if (std::strncmp(arg, "--timeline-csv=", 15) == 0) {
        opt.timelineCsv = arg + 15;
        return true;
    }
    if (std::strncmp(arg, "--timeline-period-us=", 21) == 0) {
        opt.timelinePeriodUs = std::atof(arg + 21);
        if (opt.timelinePeriodUs <= 0.0)
            fatal("--timeline-period-us needs a positive period");
        return true;
    }
    if (std::strncmp(arg, "--debug-flags=", 14) == 0) {
        std::string err;
        if (!parse_debug_flags(arg + 14, &err))
            fatal("%s", err.c_str());
        return true;
    }
    return false;
}

BenchReport::BenchReport(std::string name) : benchName(std::move(name))
{
    outPath = "BENCH_" + benchName + ".json";
    tree.set_string("bench", benchName);
}

bool
BenchReport::consume_arg(const char *arg)
{
    if (std::strcmp(arg, "--json-out") == 0) {
        jsonWanted = true;
        return true;
    }
    if (std::strncmp(arg, "--json-out=", 11) == 0) {
        jsonWanted = true;
        outPath = arg + 11;
        return true;
    }
    return false;
}

void
BenchReport::set(const std::string &path, double v)
{
    tree.set(path, v);
}

void
BenchReport::set(const std::string &path, std::uint64_t v)
{
    tree.set(path, v);
}

void
BenchReport::set_string(const std::string &path, const std::string &v)
{
    tree.set_string(path, v);
}

bool
BenchReport::write() const
{
    if (!jsonWanted)
        return true;
    if (!write_file(outPath, tree.render())) {
        warn("cannot write bench JSON to %s", outPath.c_str());
        return false;
    }
    inform("bench JSON written to %s", outPath.c_str());
    return true;
}

} // namespace ap::obs
