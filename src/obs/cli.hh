/**
 * @file
 * Shared telemetry command-line conventions.
 *
 * Every binary that drives the simulated machine — the app runner,
 * the benches, the stress harness — accepts the same three flags:
 *
 *   --stats-out=FILE          write the stats-registry JSON dump
 *   --trace-out=FILE          enable the tracer, write Chrome trace
 *   --timeline-out=FILE       enable the perf-timeline sampler
 *   --timeline-csv=FILE       also write the timeline as CSV
 *   --timeline-period-us=US   sampling period (model time)
 *   --debug-flags=A,B         turn on debug-log categories
 *
 * consume_obs_arg() recognizes and applies them so each main() needs
 * one line per argv entry. BenchReport is the bench half of the
 * stats-dump satellite: benches accumulate named metrics while they
 * print their human-readable tables and, when --json-out is given,
 * write the same numbers as one `BENCH_<name>.json` object.
 */

#ifndef AP_OBS_CLI_HH
#define AP_OBS_CLI_HH

#include <cstdint>
#include <string>

#include "obs/json.hh"

namespace ap::obs
{

/** Telemetry options shared by machine-driving binaries. */
struct ObsOptions
{
    std::string statsOut;    ///< --stats-out=FILE (empty = off)
    std::string traceOut;    ///< --trace-out=FILE (empty = off)
    std::string timelineOut; ///< --timeline-out=FILE (empty = off)
    /** --timeline-csv=FILE: CSV export of the same timeline. Enables
     *  the sampler by itself; --timeline-out is not required. */
    std::string timelineCsv;
    /** --timeline-period-us=US: model-time sampling period. */
    double timelinePeriodUs = 20.0;

    /** True when the timeline sampler is wanted in any format. */
    bool timeline_enabled() const
    {
        return !timelineOut.empty() || !timelineCsv.empty();
    }

    bool any() const
    {
        return !statsOut.empty() || !traceOut.empty() ||
               timeline_enabled();
    }
};

/**
 * If @p arg is one of the shared telemetry flags, apply it (including
 * --debug-flags, which takes effect immediately) and return true;
 * otherwise return false so the caller handles it. An unknown debug
 * flag name is a fatal() user error.
 */
bool consume_obs_arg(const char *arg, ObsOptions &opt);

/** One bench run's metrics, dumpable as BENCH_<name>.json. */
class BenchReport
{
  public:
    /** @param name bench name ("table2_speedup", ...). */
    explicit BenchReport(std::string name);

    /**
     * If @p arg is `--json-out` or `--json-out=FILE`, remember the
     * output path (default `BENCH_<name>.json`) and return true.
     */
    bool consume_arg(const char *arg);

    /** @return true when --json-out was given. */
    bool enabled() const { return jsonWanted; }

    /** Record one numeric metric under a dotted path. */
    void set(const std::string &path, double v);
    void set(const std::string &path, std::uint64_t v);

    /** Record one string metric under a dotted path. */
    void set_string(const std::string &path, const std::string &v);

    /**
     * When --json-out was given, write the JSON object (bench name,
     * every recorded metric) and inform() where it went. No-op
     * otherwise. @return false on I/O failure.
     */
    bool write() const;

    /** The output path that write() uses. */
    const std::string &path() const { return outPath; }

  private:
    std::string benchName;
    std::string outPath;
    bool jsonWanted = false;
    JsonTree tree;
};

} // namespace ap::obs

#endif // AP_OBS_CLI_HH
