/**
 * @file
 * Minimal JSON emission and validation for the telemetry layer.
 *
 * Everything the observability subsystem exports — stats-registry
 * dumps, Chrome trace_event files, bench reports — is JSON, and the
 * repository deliberately carries no third-party JSON dependency. This
 * header provides the two halves actually needed: a writer that builds
 * well-formed documents (string escaping, nesting by dotted path) and
 * a strict validating parser used by the round-trip tests.
 */

#ifndef AP_OBS_JSON_HH
#define AP_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <string>

namespace ap::obs
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string json_escape(const std::string &s);

/** Render a double as a JSON number (finite; NaN/inf become 0). */
std::string json_number(double v);

/**
 * A flat key/value store rendered as one nested JSON object: dotted
 * keys become nesting ("cell0.msc.puts" -> {"cell0":{"msc":{"puts":
 * ...}}}). Values are either numbers, strings, or pre-rendered raw
 * JSON fragments (for histograms). Keys are kept sorted so output is
 * deterministic.
 */
class JsonTree
{
  public:
    /** Set a numeric leaf. */
    void set(const std::string &path, double v);
    void set(const std::string &path, std::uint64_t v);

    /** Set a string leaf. */
    void set_string(const std::string &path, const std::string &v);

    /** Set a leaf to a pre-rendered JSON fragment (used verbatim). */
    void set_raw(const std::string &path, const std::string &json);

    /** @return true when no leaf has been set. */
    bool empty() const { return leaves.empty(); }

    /** Render the nested object. @p pretty adds indentation. */
    std::string render(bool pretty = true) const;

  private:
    /** leaf path -> rendered JSON value. */
    std::map<std::string, std::string> leaves;
};

/**
 * Strictly validate that @p text is one complete JSON value (objects,
 * arrays, strings, numbers, true/false/null; UTF-8 passthrough).
 * @return true when it parses; otherwise false with a position
 * diagnostic in @p err (when non-null).
 */
bool json_valid(const std::string &text, std::string *err = nullptr);

/** Write @p text to @p path. @return false on I/O failure. */
bool write_file(const std::string &path, const std::string &text);

} // namespace ap::obs

#endif // AP_OBS_JSON_HH
