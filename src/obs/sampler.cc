#include "obs/sampler.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "obs/json.hh"
#include "sim/eventq.hh"

namespace ap::obs
{

TimelineSampler::TimelineSampler(const StatsRegistry &reg,
                                 Tick period,
                                 std::vector<SeriesSpec> series,
                                 std::size_t capacity)
    : reg(reg), periodTicks(period), specs(std::move(series)),
      cap(capacity)
{
    if (periodTicks < 1)
        fatal("timeline sampler needs a period >= 1 tick");
    if (cap < 1)
        fatal("timeline sampler needs capacity >= 1");
    if (specs.empty())
        specs = default_series();
}

std::vector<SeriesSpec>
TimelineSampler::default_series()
{
    return {
        {"events", "sim.executed_events", false},
        {"tnet_messages", "tnet.messages", false},
        {"tnet_payload_bytes", "tnet.payload_bytes", false},
        {"bnet_broadcasts", "bnet.broadcasts", false},
        {"msc_messages", "*.msc.messages_sent", false},
        {"flag_increments", "*.mc.flag_increments", false},
        {"ring_deposits", "*.ring.deposits", false},
        {"handoffs", "sim.shard.*.handoffs_out", false},
        {"windows", "sim.window.count", false},
        {"barrier_wait_ns", "sim.window.barrier_wait_ns", false},
        {"spans_recorded", "spans.recorded", false},
        {"pending_events", "sim.pending_events", true},
    };
}

Tick
TimelineSampler::next_boundary(Tick now) const
{
    Tick periods = now / periodTicks;
    if (periods >= max_tick / periodTicks)
        return max_tick;
    Tick b = (periods + 1) * periodTicks;
    return b <= now ? max_tick : b;
}

void
TimelineSampler::start()
{
    prev = reg.snapshot();
    started = true;
}

void
TimelineSampler::sample(Tick now)
{
    if (!started)
        start();
    StatsRegistry::Snapshot snap = reg.snapshot();

    TimelineSample row;
    row.tick = now;
    row.values.reserve(specs.size());
    for (const SeriesSpec &s : specs) {
        std::int64_t v = 0;
        for (const auto &[path, val] : snap) {
            if (!StatsRegistry::matches(s.pattern, path))
                continue;
            if (s.level) {
                v += static_cast<std::int64_t>(val);
            } else {
                auto it = prev.find(path);
                std::uint64_t was =
                    it == prev.end() ? 0 : it->second;
                v += static_cast<std::int64_t>(val) -
                     static_cast<std::int64_t>(was);
            }
        }
        row.values.push_back(v);
    }
    prev = std::move(snap);

    if (ring.size() < cap) {
        ring.push_back(std::move(row));
    } else {
        ring[head] = std::move(row);
        head = (head + 1) % cap;
    }
    ++total;
}

void
TimelineSampler::run(sim::Simulator &sim)
{
    if (!started)
        start();
    // Boundaries advance from the last *sampled* boundary, not from
    // sim.now(): run_until() leaves the clock at the last executed
    // event, so an empty period would otherwise re-derive the same
    // boundary forever.
    Tick at = 0;
    while (!sim.empty()) {
        at = next_boundary(std::max(sim.now(), at));
        if (at == max_tick) {
            // Remaining events sit past the last representable
            // boundary; finish the run and take a final sample.
            sim.run();
            sample(sim.now());
            break;
        }
        sim.run_until(at);
        sample(at);
    }
}

std::vector<TimelineSample>
TimelineSampler::samples() const
{
    std::vector<TimelineSample> out;
    out.reserve(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(head + i) % ring.size()]);
    return out;
}

std::string
TimelineSampler::json(bool pretty) const
{
    const char *nl = pretty ? "\n" : "";
    const char *sp = pretty ? "  " : "";
    std::string out = strprintf(
        "{%s%s\"kind\": \"timeline\",%s%s\"period_us\": %s,%s"
        "%s\"taken\": %llu,%s%s\"dropped\": %llu,%s",
        nl, sp, nl, sp, json_number(ticks_to_us(periodTicks)).c_str(),
        nl, sp, static_cast<unsigned long long>(taken()), nl, sp,
        static_cast<unsigned long long>(dropped()), nl);
    out += strprintf("%s\"series\": [", sp);
    for (std::size_t i = 0; i < specs.size(); ++i)
        out += strprintf("%s\"%s\"", i ? ", " : "",
                         json_escape(specs[i].name).c_str());
    out += strprintf("],%s%s\"level\": [", nl, sp);
    for (std::size_t i = 0; i < specs.size(); ++i)
        out += strprintf("%s%s", i ? ", " : "",
                         specs[i].level ? "true" : "false");
    out += strprintf("],%s%s\"samples\": [", nl, sp);
    std::vector<TimelineSample> rows = samples();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        out += strprintf("%s%s%s%s{\"t_us\": %s, \"v\": [",
                         i ? "," : "", nl, sp, sp,
                         json_number(ticks_to_us(rows[i].tick))
                             .c_str());
        for (std::size_t j = 0; j < rows[i].values.size(); ++j)
            out += strprintf(
                "%s%lld", j ? ", " : "",
                static_cast<long long>(rows[i].values[j]));
        out += "]}";
    }
    out += strprintf("%s%s]%s}%s", nl, sp, nl, nl);
    return out;
}

bool
TimelineSampler::write(const std::string &path) const
{
    return write_file(path, json(true));
}

std::string
TimelineSampler::csv() const
{
    std::string out = "t_us";
    for (const SeriesSpec &s : specs)
        out += "," + s.name;
    out += "\n";
    for (const TimelineSample &row : samples()) {
        out += json_number(ticks_to_us(row.tick));
        for (std::int64_t v : row.values)
            out += strprintf(",%lld", static_cast<long long>(v));
        out += "\n";
    }
    return out;
}

bool
TimelineSampler::write_csv(const std::string &path) const
{
    return write_file(path, csv());
}

} // namespace ap::obs
