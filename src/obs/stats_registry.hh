/**
 * @file
 * Hierarchical statistics registry — the machine's one dashboard.
 *
 * Section 5 of the paper sells MLSim on the statistics it can report
 * (user/idle/overhead time, message sizes, communication distances,
 * event counts). The functional machine grew the same needs: every
 * component keeps counters, but until this registry existed they were
 * hand-aggregated in Machine::report(). Components now register their
 * counters, gauges and latency histograms under hierarchical dotted
 * paths ("cell3.msc.user_queue.spills"), and consumers — the report,
 * the JSON dump, the benches — walk the registry instead of knowing
 * every struct.
 *
 * Registration is by pointer/closure, not by copy: an entry reads the
 * live component state at query time, so registering is free on the
 * simulation fast path. Entries must outlive the registry walk; a
 * shorter-lived component (the language runtime) removes its subtree
 * in its destructor via remove_prefix().
 *
 * Thread-safety (parallel kernel audit): the registry map is only
 * mutated while the machine is quiescent — registration at Machine
 * construction, removal in the runtime destructor — and walked after
 * the simulator drains, so it carries no lock of its own. The *backing
 * state* is where the shards meet: per-cell component counters are
 * shard-local by construction (a cell's events run on one shard),
 * and the machine-global counters (T-net/B-net stats, fault stats)
 * are updated under their owning component's mutex.
 */

#ifndef AP_OBS_STATS_REGISTRY_HH
#define AP_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/stats.hh"

namespace ap::obs
{

/** What one registered path is. */
enum class StatKind : std::uint8_t
{
    counter,  ///< monotonically increasing event count
    gauge,    ///< instantaneous or high-water level
    histogram,///< log2-bucketed distribution
};

/** One registry entry (readable view). */
struct StatEntry
{
    StatKind kind = StatKind::counter;
    /** Live value (counter/gauge; histograms report their count). */
    std::function<std::uint64_t()> value;
    /** Histogram payload; null for scalars. */
    const Histogram *hist = nullptr;
};

/** The machine-wide stats namespace. */
class StatsRegistry
{
  public:
    /** Register a counter backed by a live component field. */
    void add_counter(const std::string &path,
                     const std::uint64_t *v);

    /** Register a gauge computed on demand. */
    void add_gauge(const std::string &path,
                   std::function<std::uint64_t()> fn);

    /** Register a gauge backed by a live high-water field. */
    void add_gauge(const std::string &path, const std::uint64_t *v);

    /** Register a histogram backed by a live component field. */
    void add_histogram(const std::string &path, const Histogram *h);

    /** Drop every entry whose path starts with @p prefix. */
    void remove_prefix(const std::string &prefix);

    /** Number of registered paths. */
    std::size_t size() const { return entries.size(); }

    /** All paths in sorted order. */
    std::vector<std::string> paths() const;

    /** Look up one entry; nullptr when @p path is not registered. */
    const StatEntry *find(const std::string &path) const;

    /**
     * Current value of one scalar path (counter or gauge; a
     * histogram's sample count). 0 when unregistered.
     */
    std::uint64_t value(const std::string &path) const;

    /**
     * Sum of every scalar matching @p pattern. Patterns are dotted
     * paths where a "*" segment matches exactly one path segment:
     * "*.msc.puts_sent" sums the counter across all cells.
     */
    std::uint64_t sum(const std::string &pattern) const;

    /**
     * Largest value among scalars matching @p pattern; the winning
     * path lands in @p who when non-null. 0 when nothing matches.
     */
    std::uint64_t max_over(const std::string &pattern,
                           std::string *who = nullptr) const;

    /** @return true when @p path matches @p pattern (see sum()). */
    static bool matches(const std::string &pattern,
                        const std::string &path);

    // -- snapshots / phase deltas --------------------------------------

    /** A point-in-time copy of every scalar (histograms contribute
     *  their sample count). */
    using Snapshot = std::map<std::string, std::uint64_t>;

    /** Capture the current value of every registered path. */
    Snapshot snapshot() const;

    /**
     * Per-path change since @p before. Paths registered after the
     * snapshot count from zero; paths removed since are omitted.
     * Deltas are signed so a gauge that shrank reads negative.
     */
    std::map<std::string, std::int64_t>
    delta_since(const Snapshot &before) const;

    /**
     * Render a delta map as a "path  +N" table, largest magnitude
     * first, zero rows skipped. @p maxRows 0 means unlimited; when
     * rows are cut, a trailing "... (K more)" line says so.
     */
    static std::string
    delta_text(const std::map<std::string, std::int64_t> &d,
               std::size_t maxRows = 0);

    /**
     * Render every entry as nested JSON. Histograms become objects
     * with count/sum/min/max/mean and a bucket map ("b<k>" covers
     * [2^(k-1), 2^k)). Paths starting with @p skipPrefix are
     * omitted — determinism byte-compares use it to drop the
     * kernel's "sim." self-telemetry (host wall-clock, shard shape),
     * which describes how a run executed rather than what the
     * machine did.
     */
    std::string dump_json(bool pretty = true,
                          const std::string &skipPrefix = {}) const;

    /** Render a flat "path = value" text table (histograms show
     *  count/mean/max). Honors @p skipPrefix like dump_json(). */
    std::string dump_text(const std::string &skipPrefix = {}) const;

  private:
    std::map<std::string, StatEntry> entries;
};

} // namespace ap::obs

#endif // AP_OBS_STATS_REGISTRY_HH
