/**
 * @file
 * Causal message-lifecycle spans.
 *
 * The paper's central claim is a latency breakdown (Figs. 7-8): a PUT
 * is 8 user-level stores, then MSC+ queueing, DMA send, T-net
 * transit, receive DMA and the flag update. The stats registry and
 * tracer (obs/stats_registry.hh, obs/tracer.hh) aggregate those
 * stages machine-wide but cannot say which stage dominated *one*
 * transfer. This layer can: every PUT/GET/SEND/broadcast gets a
 * machine-unique trace id stamped at command issue and propagated
 * through the MSC+ queues, the DMA engines, the network envelopes
 * (retransmits become child spans) and the GET reply, producing a
 * span set per operation with begin/end ticks per stage.
 *
 * Three modes:
 *  - off:    no ids, no events, probes cost one predictable branch;
 *  - flight: the default. Events land only in per-cell bounded rings
 *            (the flight recorder, obs/flight.hh) — a POD store into
 *            a preallocated array, cheap enough to leave on always;
 *  - full:   events are additionally appended to an in-order log the
 *            critical-path profiler (obs/critpath.hh) consumes.
 *
 * SpanEvent is deliberately POD (no strings, no allocation) so the
 * always-on flight path stays near-zero overhead; bench_trace_overhead
 * guards that budget in CI.
 */

#ifndef AP_OBS_SPAN_HH
#define AP_OBS_SPAN_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/types.hh"
#include "obs/flight.hh"

namespace ap::obs
{

/** Recording mode of the span layer. */
enum class SpanMode : std::uint8_t
{
    off,    ///< no ids allocated, no events recorded
    flight, ///< per-cell flight-recorder rings only (default)
    full,   ///< rings plus the full in-order event log
};

const char *to_string(SpanMode mode);

/** Pipeline stage one span event describes. */
enum class SpanStage : std::uint8_t
{
    issue,        ///< processor stores the 8 command words
    queue,        ///< command parked in an MSC+ queue
    dma_send,     ///< send DMA setup + payload gather/stream
    net,          ///< T-net/B-net flight (inject to arrive)
    dma_recv,     ///< receive DMA (incl. waiting for the engine)
    flag,         ///< MC flag update completing the transfer
    ring_deposit, ///< SEND landed in the receive ring buffer
    ring_receive, ///< buffered SEND waited for its RECEIVE
    retransmit,   ///< reliable-layer go-back-N resend (child span)
    barrier,      ///< S-net episode: first arrival to release
    barrier_wait, ///< parallel-kernel shard idle at a window barrier
};

constexpr int span_stage_count = 11;

const char *to_string(SpanStage stage);

/** Operation kind, stamped on the issue-stage event of a trace. */
enum class SpanOp : std::uint8_t
{
    none, ///< interior event; the trace's op comes from its issue
    put,
    get,
    send,
    ack, ///< PUT-acknowledge probe (GET to address 0)
    remote_store,
    remote_load,
    bcast,
    barrier,
};

constexpr int span_op_count = 9;

const char *to_string(SpanOp op);

/**
 * One recorded lifecycle event. POD on purpose: the flight recorder
 * stores these by value in a preallocated ring and the record path
 * must not allocate.
 */
struct SpanEvent
{
    std::uint64_t traceId = 0; ///< machine-unique operation id
    Tick begin = 0;
    Tick end = 0;
    std::int32_t cell = -1; ///< owning cell; -1 = machine-wide
    SpanStage stage = SpanStage::issue;
    SpanOp op = SpanOp::none; ///< set on issue-stage events only
    /** Stage-specific detail: retransmit try count, 1 for a net
     *  span whose message was dropped in flight. */
    std::uint32_t aux = 0;
};

/** Render @p events as Chrome trace_event JSON (one thread per
 *  cell, complete "X" events, trace id and stage in args). */
std::string span_chrome_json(const std::vector<SpanEvent> &events);

/** Render @p events as a flat text table, one line per event. */
std::string span_text(const std::vector<SpanEvent> &events);

/**
 * The machine-wide span recorder. Owned by hw::Machine; hardware
 * components hold a pointer and guard every probe with a null check
 * plus on(). Trace ids come from one central counter so an id is
 * unique machine-wide and an event stream from any cell can be
 * grouped by operation.
 */
class SpanLayer
{
  public:
    /** Bound on the full-mode event log (events beyond it drop). */
    static constexpr std::size_t default_full_capacity = 1 << 20;

    /**
     * @param cells machine size (rings are per cell plus one
     *              machine-wide ring for cell id -1)
     * @param flightCapacity per-cell flight-recorder bound, events
     */
    SpanLayer(int cells, std::size_t flightCapacity);

    SpanMode mode() const { return mode_; }
    void set_mode(SpanMode mode) { mode_ = mode; }

    /** @return true when events are being recorded at all. */
    bool on() const { return mode_ != SpanMode::off; }

    /** Allocate a machine-unique trace id; 0 while off. Atomic:
     *  cells on different shards mint ids concurrently. */
    std::uint64_t
    new_trace()
    {
        return on() ? lastTrace.fetch_add(
                          1, std::memory_order_relaxed) +
                          1
                    : 0;
    }

    /**
     * Record one lifecycle event. No-op while off or for traceId 0
     * (an id allocated while the layer was off). Flight mode stores
     * into the owning cell's ring only; full mode also appends to
     * the in-order log.
     */
    void record(std::int32_t cell, std::uint64_t traceId,
                SpanStage stage, Tick begin, Tick end,
                SpanOp op = SpanOp::none, std::uint32_t aux = 0);

    /** Events recorded since construction (all modes). */
    std::uint64_t
    recorded() const
    {
        return recordedCount.load(std::memory_order_relaxed);
    }

    /** The full-mode in-order log (empty unless mode was full). */
    const std::vector<SpanEvent> &events() const { return fullLog; }

    /** Full-log events dropped at the capacity bound. */
    std::uint64_t full_dropped() const { return fullDropped; }

    /** Drop all recorded events (rings and full log). */
    void clear();

    /** The flight ring of @p cell (-1 = the machine-wide ring). */
    const FlightRecorder &flight(std::int32_t cell) const;

    /**
     * Merged snapshot of every flight ring, ordered by begin tick —
     * the postmortem view: the last N events each cell saw.
     * @p maxPerCell 0 keeps whole rings.
     */
    std::vector<SpanEvent>
    flight_events(std::size_t maxPerCell = 0) const;

  private:
    SpanMode mode_ = SpanMode::flight;
    std::atomic<std::uint64_t> lastTrace{0};
    std::atomic<std::uint64_t> recordedCount{0};
    std::uint64_t fullDropped = 0;
    std::size_t fullCapacity = default_full_capacity;
    /** Guards the full-mode log (appended from every shard). */
    mutable std::mutex fullMutex;
    std::vector<SpanEvent> fullLog;
    /** index 0 = machine-wide (-1), index i+1 = cell i. */
    std::vector<FlightRecorder> rings;
    /** One lock per ring: a cell's ring is fed by its own shard AND
     *  by remote senders recording net spans at the destination. */
    std::unique_ptr<std::mutex[]> ringLocks;
};

} // namespace ap::obs

#endif // AP_OBS_SPAN_HH
