/**
 * @file
 * Sharded parallel discrete-event kernel.
 *
 * The sequential Simulator executes every cell's events on one host
 * thread through one binary heap — the scalability ceiling for big
 * machines (ROADMAP item 1). This kernel shards the event queue by
 * *affinity* (the functional machine passes cell ids; shards are
 * contiguous cell blocks) and runs shards on a pool of host worker
 * threads with conservative synchronization:
 *
 *   Conservative windows. Physics gives a lower bound L (the
 *   *lookahead*) on the model-time distance of any cross-shard
 *   effect: a T-net message pays at least prolog + one hop before it
 *   can touch another cell, a B-net broadcast pays the bus prolog,
 *   an S-net release pays the combine latency. Therefore, if T is
 *   the globally earliest pending event, every event strictly before
 *   T + L is already in its shard's queue — no in-flight cross-shard
 *   event can land below that horizon. Each round, every shard
 *   drains its events with when < T + L in parallel, workers
 *   barrier, cross-shard events produced during the round are
 *   exchanged, and the next window starts.
 *
 *   Handoff. A cross-shard schedule_for() lands in the target
 *   shard's inbox (per source-shard outboxes during a parallel
 *   round, so the hot path takes no lock). At the window barrier,
 *   inboxes merge into the target queue in a canonical
 *   (tick, affinity, source shard, source sequence) order — the
 *   merge rule that makes a parallel run reproducible run-to-run
 *   regardless of which worker finished first.
 *
 *   Determinism mode. Canonical merge makes parallel runs
 *   *self*-consistent; matching the sequential kernel byte-for-byte
 *   additionally requires replaying its global same-tick insertion
 *   order, because machine components share order-sensitive state
 *   (the fault injector's RNG draw sequence, the T-net FIFO clamp).
 *   In deterministic mode events carry a global sequence number and
 *   the calling thread executes them in exactly the sequential
 *   (tick, sequence) order — same window accounting, same shard
 *   routing, same handoff bookkeeping, serialized execution. The
 *   differential harness (tests/harness) runs threads=1 against
 *   threads=N deterministic and asserts identical tick histories,
 *   memory images and stats dumps, which pins the sharding plumbing
 *   (routing, merge, horizons) to the sequential semantics.
 *
 * With shards == 1 the kernel degenerates to the sequential loop:
 * one queue, one sequence counter, no windows, no locks on the
 * scheduling path — bit-identical to Simulator by construction.
 */

#ifndef AP_SIM_SHARDQ_HH
#define AP_SIM_SHARDQ_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/types.hh"
#include "sim/event.hh"
#include "sim/eventq.hh"
#include "sim/ladderq.hh"

namespace ap::sim
{

/** Construction knobs of the sharded kernel. */
struct ShardConfig
{
    /** Worker threads == shards. */
    int shards = 1;
    /**
     * Conservative lookahead in ticks: a strict lower bound on the
     * model-time delay of any cross-shard event. Must be >= 1 (a
     * zero lookahead admits no parallel window at all).
     */
    Tick lookahead = 1;
    /**
     * Execute events in the sequential kernel's global (tick,
     * sequence) order on the calling thread (see file comment).
     */
    bool deterministic = false;
    /**
     * Map an affinity value to a shard index. Defaults to
     * affinity % shards (negative affinities map to shard 0). The
     * machine installs a contiguous cell-block map instead so torus
     * neighbours tend to share a shard.
     */
    std::function<int(int)> affinityMap;
};

/** Per-shard execution statistics. */
struct ShardStats
{
    std::uint64_t executed = 0;     ///< events run on this shard
    std::uint64_t handoffsIn = 0;   ///< events merged from other shards
    std::uint64_t handoffsOut = 0;  ///< events sent to other shards
    std::uint64_t maxPending = 0;   ///< queue depth high-water mark
    /**
     * Host wall-clock nanoseconds this shard's thread spent parked
     * at the window barrier (a worker: between finishing its drain
     * and the next round's wake; the coordinator: waiting for the
     * workers). Wall-clock, so never part of determinism compares.
     */
    std::uint64_t barrierWaitNs = 0;
};

/** What one shard did inside one parallel window. */
struct WindowShard
{
    std::uint64_t events = 0; ///< events this shard executed
    Tick last = 0;            ///< its last executed tick (0 if idle)
};

/**
 * One parallel window's record: what the round cost and how evenly
 * it spread. Only the parallel path produces these — sequential and
 * deterministic runs have no windows, which is what keeps the
 * telemetry from perturbing byte-identity checks.
 */
struct WindowRecord
{
    std::uint64_t index = 0; ///< 0-based window number
    Tick start = 0;          ///< globally earliest pending tick
    Tick end = 0;            ///< exclusive horizon (start + lookahead)
    /** Horizon advance over the previous window's start (0 for the
     *  first window). */
    Tick advance = 0;
    std::uint64_t events = 0;         ///< executed, all shards
    std::uint64_t maxShardEvents = 0; ///< busiest shard's events
    /**
     * Load-imbalance ratio max/mean events per shard, fixed-point
     * x1000 (1000 = perfectly balanced). 0 for an empty window.
     */
    std::uint64_t imbalanceX1000 = 0;
    /** Coordinator's host wall-clock wait for the workers, ns. */
    std::uint64_t barrierWaitNs = 0;
    /** Host wall-clock spent merging outboxes at the barrier, ns. */
    std::uint64_t mergeNs = 0;
    /** Per-shard breakdown, indexed by shard. */
    std::vector<WindowShard> shards;
};

/** Aggregate over every window executed so far. */
struct WindowAgg
{
    std::uint64_t windows = 0;
    std::uint64_t events = 0;
    Tick horizonAdvance = 0;       ///< sum of per-window advances
    std::uint64_t barrierWaitNs = 0; ///< coordinator waits only
    std::uint64_t mergeNs = 0;
    std::uint64_t imbalanceMaxX1000 = 0;
    std::uint64_t imbalanceSumX1000 = 0; ///< over non-empty windows
};

/**
 * The sharded simulator. Drop-in for sim::Simulator behind the
 * virtual interface; see the file comment for the execution model.
 */
class ShardedSimulator final : public Simulator
{
  public:
    explicit ShardedSimulator(ShardConfig cfg);
    ~ShardedSimulator() override;

    // -- Simulator interface -------------------------------------------

    Tick now() const override;
    void schedule(Tick when, EventFn fn) override;
    void schedule_for(int affinity, Tick when, EventFn fn) override;
    void set_history(TickHistory *h) override;
    Tick run() override;
    Tick run_until(Tick limit) override;
    bool step() override;
    bool empty() const override;
    std::size_t pending() const override;
    std::uint64_t executed() const override;
    SimAllocStats alloc_stats() const override;

    // -- introspection (tests, ap_run report) --------------------------

    int shards() const { return numShards; }
    Tick lookahead() const { return cfg.lookahead; }
    bool deterministic() const { return cfg.deterministic; }

    /** Shard that affinity @p affinity routes to. */
    int shard_of(int affinity) const;

    /**
     * The horizon below which shard @p s may freely execute given
     * the globally earliest pending event: min pending tick across
     * all shards + lookahead. max_tick when nothing is pending.
     */
    Tick safe_horizon(int s) const;

    /** Next pending tick of shard @p s (max_tick when idle). */
    Tick shard_next(int s) const;

    const ShardStats &shard_stats(int s) const;

    /** Number of parallel windows (rounds) executed so far. */
    std::uint64_t windows() const { return numWindows; }

    /** Aggregate window telemetry (all zero outside parallel mode). */
    const WindowAgg &window_stats() const { return windowAgg; }

    /** Retained per-window records, oldest first (bounded ring of
     *  window_ring_capacity; older windows age out). */
    std::vector<WindowRecord> window_records() const;

    /** Window records that aged out of the ring. */
    std::uint64_t window_records_dropped() const
    {
        return windowDropped;
    }

    /** Per-window record bound. */
    static constexpr std::size_t window_ring_capacity = 1024;

    /**
     * Observer called on the coordinator thread after each parallel
     * window's barrier + merge, while every worker is parked — the
     * machine quiescent point. The machine uses it to feed the
     * tracer and the barrier_wait critical-path stage without the
     * sim layer depending on obs.
     */
    using WindowHook = std::function<void(const WindowRecord &)>;
    void set_window_hook(WindowHook hook)
    {
        windowHook = std::move(hook);
    }

    /**
     * Cross-shard events scheduled closer than the lookahead — a
     * violation of the conservative contract. Strict mode (the
     * default in parallel runs) panics instead of counting.
     */
    std::uint64_t lookahead_violations() const
    {
        return numViolations.load(std::memory_order_relaxed);
    }

    /**
     * Demote lookahead violations from panic to counter. Only
     * meaningful for experiments; the machine keeps strict mode.
     */
    void set_strict_lookahead(bool strict) { strictLookahead = strict; }

    /** One-line kernel report ("2 shards, 13 windows, ..."). */
    std::string report() const;

  private:
    /** A cross-shard event in flight between window barriers. The
     *  closure rides by value; the destination's pooled node is
     *  allocated at merge time, on the coordinator. */
    struct Handoff
    {
        Tick when;
        int affinity;
        int srcShard;
        std::uint64_t srcSeq;
        EventFn fn;
    };

    struct Shard
    {
        /** Pending events; seq is shard-local (global in
         *  deterministic mode). Shares the pooled ladder-queue
         *  implementation with the sequential kernel. */
        LadderQueue queue;
        std::uint64_t nextSeq = 0;
        /** Outboxes, one per destination shard; worker-exclusive
         *  during a round, drained at the barrier. */
        std::vector<std::vector<Handoff>> outbox;
        std::uint64_t outSeq = 0;
        Tick lastExecuted = 0;
        ShardStats stats;
        /** Per-shard history digest (parallel mode). */
        TickHistory localHistory;
    };

    /** What the calling thread / a worker is currently executing. */
    struct TlsFrame
    {
        ShardedSimulator *owner = nullptr;
        int shard = 0;
        int affinity = 0;
        Tick now = 0;
        /** End of the current parallel window; 0 outside rounds. */
        Tick windowEnd = 0;
        bool inRound = false;
    };

    static thread_local TlsFrame tls;

    void enqueue_direct(int shard, int affinity, Tick when,
                        EventFn fn);
    void note_window(WindowRecord rec);
    void merge_outboxes();
    void drain_shard(int s, Tick windowEnd);
    Tick next_pending_locked() const;
    Tick run_loop(Tick limit);
    Tick run_sequential(Tick limit);
    Tick run_deterministic(Tick limit);
    Tick run_parallel(Tick limit);
    bool step_deterministic();
    void start_workers();
    void stop_workers();
    void worker_main(int s);

    ShardConfig cfg;
    int numShards;
    std::vector<Shard> shardsVec;
    /** Guards every shard queue while no run is in progress and the
     *  coordinator-side bookkeeping during parallel rounds. */
    mutable std::mutex qMutex;

    // -- worker pool ----------------------------------------------------
    std::vector<std::thread> workers;
    std::mutex poolMutex;
    std::condition_variable poolCv;   ///< coordinator -> workers
    std::condition_variable doneCv;   ///< workers -> coordinator
    std::uint64_t roundGen = 0;
    int roundDone = 0;
    Tick roundWindowEnd = 0;
    bool shuttingDown = false;

    // -- run state ------------------------------------------------------
    bool running = false;
    Tick globalTime = 0;
    Tick currentWindowEnd = 0;
    std::uint64_t globalSeq = 0;   ///< deterministic-mode sequence
    std::uint64_t numExecutedTotal = 0;
    std::uint64_t numWindows = 0;
    std::atomic<std::uint64_t> numViolations{0};
    bool strictLookahead = true;

    // -- window telemetry (coordinator-only writes) ---------------------
    WindowAgg windowAgg;
    Tick prevWindowStart = 0;
    bool haveWindowStart = false;
    /** Ring of the last window_ring_capacity records. */
    std::vector<WindowRecord> windowRing;
    std::size_t windowHead = 0;
    std::uint64_t windowDropped = 0;
    WindowHook windowHook;
    /** Scratch: per-shard executed count at window start. */
    std::vector<std::uint64_t> execAtWindowStart;
};

} // namespace ap::sim

#endif // AP_SIM_SHARDQ_HH
