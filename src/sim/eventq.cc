#include "sim/eventq.hh"

#include <utility>

#include "base/logging.hh"

namespace ap::sim
{

void
Simulator::schedule(Tick when, std::function<void()> fn)
{
    if (when < currentTick)
        panic("scheduling event in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(currentTick));
    queue.push(Entry{when, nextSeq++, std::move(fn)});
}

bool
Simulator::step()
{
    if (queue.empty())
        return false;
    // Move the handler out before popping: the handler may schedule
    // new events, which mutates the queue.
    Entry e = std::move(const_cast<Entry &>(queue.top()));
    queue.pop();
    currentTick = e.when;
    ++numExecuted;
    e.fn();
    return true;
}

Tick
Simulator::run()
{
    while (step()) {
    }
    return currentTick;
}

Tick
Simulator::run_until(Tick limit)
{
    while (!queue.empty() && queue.top().when <= limit)
        step();
    return currentTick;
}

} // namespace ap::sim
