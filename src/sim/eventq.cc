#include "sim/eventq.hh"

#include <utility>

#include "base/logging.hh"

namespace ap::sim
{

std::string
TickHistory::digest() const
{
    return strprintf("events=%llu hash=%#llx",
                     static_cast<unsigned long long>(numEvents),
                     static_cast<unsigned long long>(state));
}

void
Simulator::schedule(Tick when, std::function<void()> fn)
{
    schedule_for(currentAffinity, when, std::move(fn));
}

void
Simulator::schedule_for(int affinity, Tick when,
                        std::function<void()> fn)
{
    if (when < currentTick)
        panic("scheduling event in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(currentTick));
    queue.push(Entry{when, nextSeq++, affinity, std::move(fn)});
}

bool
Simulator::step()
{
    if (queue.empty())
        return false;
    // Move the handler out before popping: the handler may schedule
    // new events, which mutates the queue.
    Entry e = std::move(const_cast<Entry &>(queue.top()));
    queue.pop();
    currentTick = e.when;
    currentAffinity = e.affinity;
    ++numExecuted;
    if (history)
        history->record(e.when, e.affinity);
    e.fn();
    currentAffinity = 0;
    return true;
}

Tick
Simulator::run()
{
    while (step()) {
    }
    return currentTick;
}

Tick
Simulator::run_until(Tick limit)
{
    while (!queue.empty() && queue.top().when <= limit)
        step();
    return currentTick;
}

} // namespace ap::sim
