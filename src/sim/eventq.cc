#include "sim/eventq.hh"

#include <utility>

#include "base/logging.hh"

namespace ap::sim
{

std::string
TickHistory::digest() const
{
    std::string out = strprintf(
        "events=%llu hash=%#llx",
        static_cast<unsigned long long>(numEvents),
        static_cast<unsigned long long>(state));
    if (wasTruncated)
        out += strprintf(
            " log=truncated(%zu of %llu kept)", logBuf.size(),
            static_cast<unsigned long long>(numEvents));
    return out;
}

void
Simulator::schedule(Tick when, EventFn fn)
{
    schedule_for(currentAffinity, when, std::move(fn));
}

void
Simulator::schedule_for(int affinity, Tick when, EventFn fn)
{
    if (when < currentTick)
        panic("scheduling event in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(currentTick));
    queue.push(when, nextSeq++, affinity, std::move(fn));
}

bool
Simulator::step()
{
    EventNode *n = queue.pop();
    if (!n)
        return false;
    currentTick = n->when;
    currentAffinity = n->affinity;
    ++numExecuted;
    if (history)
        history->record(n->when, n->affinity);
    // Recycle the node even if the handler throws (CommError from
    // machine code unwinds through here); the handler may schedule
    // new events, which is safe — the node is off the queue already.
    struct Recycle
    {
        LadderQueue &q;
        EventNode *n;
        ~Recycle() { q.release(n); }
    } recycle{queue, n};
    n->fn();
    currentAffinity = 0;
    return true;
}

Tick
Simulator::run()
{
    while (step()) {
    }
    return currentTick;
}

Tick
Simulator::run_until(Tick limit)
{
    while (!queue.empty() && queue.min_when() <= limit)
        step();
    return currentTick;
}

SimAllocStats
Simulator::alloc_stats() const
{
    const EventPoolStats &p = queue.pool_stats();
    SimAllocStats s;
    s.poolHits = p.hits;
    s.poolMisses = p.misses;
    s.poolBlocks = p.blocks;
    s.fnHeap = eventfn_heap_allocs();
    return s;
}

} // namespace ap::sim
