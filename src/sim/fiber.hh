/**
 * @file
 * Stackful fibers (ucontext-based cooperative coroutines).
 *
 * Each simulated cell runs its SPMD program body on a fiber. The
 * event kernel resumes a fiber when its next action is due (a compute
 * delay elapsed, a flag reached its target, a barrier released); the
 * fiber yields back whenever it blocks. This is the classic
 * parallel-machine-simulator structure and keeps user-facing example
 * code straight-line.
 */

#ifndef AP_SIM_FIBER_HH
#define AP_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace ap::sim
{

/**
 * A cooperatively scheduled coroutine with its own stack.
 *
 * Only the scheduler may call resume(); only code running on the
 * fiber may call Fiber::yield(). A fiber whose body returned is
 * finished and must not be resumed again.
 */
class Fiber
{
  public:
    /** Default stack size; generous because app kernels recurse. */
    static constexpr std::size_t default_stack_size = 256 * 1024;

    /**
     * Create a fiber that will run @p body on first resume.
     * @param body the coroutine body
     * @param stack_size private stack size in bytes
     */
    explicit Fiber(std::function<void()> body,
                   std::size_t stack_size = default_stack_size);

    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /** Switch from the scheduler into the fiber until it yields. */
    void resume();

    /** Switch from the running fiber back to the scheduler. */
    static void yield();

    /** @return the fiber currently executing, or nullptr. */
    static Fiber *current();

    /** @return true once the body has returned. */
    bool finished() const { return done; }

  private:
    static void trampoline();

    std::function<void()> body;
    /** Default-initialized (never memset): makecontext does not need
     *  a zeroed stack, and value-initializing 256 KB per fiber used
     *  to dominate short SPMD runs. */
    std::size_t stackBytes;
    std::unique_ptr<unsigned char[]> stack;
    ucontext_t context;
    ucontext_t schedulerContext;
    bool started = false;
    bool done = false;
    /** ThreadSanitizer fiber-context handles; null outside TSan
     *  builds (see the annotation block in fiber.cc). */
    void *tsanFiber = nullptr;
    void *tsanCaller = nullptr;
    /** AddressSanitizer fake-stack handle + resumer stack bounds;
     *  unused outside ASan builds (see fiber.cc). Without these
     *  annotations ASan leaves stale redzone poison on a fiber stack
     *  after an exception unwinds across it, and a later frame at the
     *  same depth trips a phantom stack-buffer-overflow. */
    void *asanFake = nullptr;
    const void *asanCallerBottom = nullptr;
    std::size_t asanCallerSize = 0;
};

} // namespace ap::sim

#endif // AP_SIM_FIBER_HH
