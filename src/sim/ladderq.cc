#include "sim/ladderq.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ap::sim
{

namespace
{

/** a + b clamped to the tick horizon. */
Tick
sat_add(Tick a, Tick b)
{
    return a > max_tick - b ? max_tick : a + b;
}

/** Strict (when, seq) order — the kernel's total event order. */
bool
earlier(const EventNode *a, const EventNode *b)
{
    if (a->when != b->when)
        return a->when < b->when;
    return a->seq < b->seq;
}

/** Heap comparator: std::*_heap keep the "largest" at the top, so
 *  inverting `earlier` yields a min-heap on (when, seq). */
struct HeapLater
{
    bool
    operator()(const EventNode *a, const EventNode *b) const
    {
        return earlier(b, a);
    }
};

} // namespace

LadderQueue::LadderQueue()
{
    buckets.assign(num_buckets, nullptr);
    front.reserve(64);
}

LadderQueue::~LadderQueue()
{
    clear();
}

void
LadderQueue::heap_push(std::vector<EventNode *> &heap, EventNode *n)
{
    heap.push_back(n);
    std::push_heap(heap.begin(), heap.end(), HeapLater{});
}

EventNode *
LadderQueue::heap_pop(std::vector<EventNode *> &heap)
{
    std::pop_heap(heap.begin(), heap.end(), HeapLater{});
    EventNode *n = heap.back();
    heap.pop_back();
    return n;
}

void
LadderQueue::push(Tick when, std::uint64_t seq, int affinity,
                  EventFn fn)
{
    // max_tick is the kernel-wide "nothing pending" sentinel (the
    // parallel run loop already treats it as queue-empty), so an
    // event AT the horizon was never executable; refuse it loudly.
    if (when == max_tick)
        panic("event scheduled at the tick horizon");
    EventNode *n = pool.acquire(when, seq, affinity, std::move(fn));
    ++numEvents;

    if (numEvents == 1) {
        // Empty queue: re-anchor the whole geometry at this event so
        // a long-idle queue never funnels a new burst through stale
        // bucket bounds. All buckets are empty here by invariant.
        front.push_back(n);
        frontEnd = sat_add(when, 1);
        bucketBase = frontEnd;
        nextBucket = 0;
        return;
    }

    if (when < frontEnd) {
        heap_push(front, n);
        return;
    }

    if (nextBucket < num_buckets) {
        Tick off = when - bucketBase;
        Tick b = off >> wShift;
        if (b < static_cast<Tick>(num_buckets)) {
            auto &head = buckets[static_cast<std::size_t>(b)];
            n->next = head;
            head = n;
            ++ringCount;
            return;
        }
    }
    heap_push(overflow, n);
}

EventNode *
LadderQueue::materialize()
{
    while (front.empty()) {
        if (ringCount > 0) {
            while (buckets[static_cast<std::size_t>(nextBucket)] ==
                   nullptr)
                ++nextBucket; // ringCount > 0 guarantees termination
            EventNode *chain =
                buckets[static_cast<std::size_t>(nextBucket)];
            buckets[static_cast<std::size_t>(nextBucket)] = nullptr;
            ++nextBucket;
            frontEnd = sat_add(
                bucketBase,
                static_cast<Tick>(nextBucket) << wShift);
            std::size_t took = 0;
            while (chain) {
                EventNode *next = chain->next;
                chain->next = nullptr;
                front.push_back(chain);
                ++took;
                chain = next;
            }
            ringCount -= took;
            std::make_heap(front.begin(), front.end(), HeapLater{});
            continue;
        }
        nextBucket = num_buckets;
        if (overflow.empty())
            return nullptr;
        rebase();
    }
    return front.front();
}

void
LadderQueue::rebase()
{
    // Ring and front are empty; carve the overflow's near edge into
    // fresh buckets. First re-derive the bucket width from observed
    // density: aim for ~8 events per bucket given the average
    // inter-event gap seen since the last rebase.
    Tick newBase = overflow.front()->when;
    if (drainedSinceRebase >= 64 && newBase > lastRebaseBase) {
        Tick gap = (newBase - lastRebaseBase) / drainedSinceRebase;
        unsigned shift = 0;
        while (shift < 13 && (static_cast<Tick>(1) << shift) < gap + 1)
            ++shift;
        // 2^shift ≈ the average inter-event gap; widen by 8x so a
        // bucket holds ~8 events.
        wShift = shift + 3;
    }
    drainedSinceRebase = 0;
    lastRebaseBase = newBase;

    bucketBase = newBase;
    frontEnd = newBase;
    nextBucket = 0;
    Tick span = static_cast<Tick>(num_buckets) << wShift;
    Tick ringEnd = sat_add(bucketBase, span);
    while (!overflow.empty() &&
           (ringEnd == max_tick || overflow.front()->when < ringEnd)) {
        EventNode *n = heap_pop(overflow);
        // When ringEnd saturated, the far tail clamps into the last
        // bucket — still ordered, since that bucket drains last and
        // its contents sort in the front heap.
        Tick b = std::min<Tick>((n->when - bucketBase) >> wShift,
                                num_buckets - 1);
        auto &head = buckets[static_cast<std::size_t>(b)];
        n->next = head;
        head = n;
        ++ringCount;
    }
}

EventNode *
LadderQueue::pop()
{
    EventNode *top = materialize();
    if (!top)
        return nullptr;
    EventNode *n = heap_pop(front);
    --numEvents;
    ++drainedSinceRebase;
    return n;
}

void
LadderQueue::clear()
{
    for (EventNode *n : front)
        pool.release(n);
    front.clear();
    for (auto &head : buckets) {
        while (head) {
            EventNode *next = head->next;
            pool.release(head);
            head = next;
        }
    }
    ringCount = 0;
    for (EventNode *n : overflow)
        pool.release(n);
    overflow.clear();
    numEvents = 0;
    nextBucket = num_buckets;
}

} // namespace ap::sim
