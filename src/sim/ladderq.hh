/**
 * @file
 * Ladder (calendar) event queue — the one pending-event structure
 * behind both simulation kernels.
 *
 * The machine's tick distribution is near-monotonic: almost every
 * event lands within a few microseconds of the clock (DMA stages,
 * network hops, flag updates), with a thin far tail (watchdog
 * deadlines, serve-layer reaps). A global binary heap pays
 * O(log n) sifts per event over the whole mixed population; this
 * queue splits it by distance into three rungs:
 *
 *   front     a small binary min-heap over (when, seq) holding only
 *             the events of the bucket currently draining — pops and
 *             near-now pushes are O(log f) with f ≪ n.
 *   ring      num_buckets buckets of width 2^wShift ticks covering
 *             [bucketBase, bucketBase + span). Insertion is O(1)
 *             (push onto an intrusive chain); a bucket is heapified
 *             into `front` only when its turn comes.
 *   overflow  a binary heap over (when, seq) for everything past the
 *             ring — the far-future rung. When the ring is exhausted
 *             the queue *rebases*: the overflow's near edge is carved
 *             into fresh buckets, with the bucket width re-derived
 *             from the observed event density so the ring stays
 *             loaded at a few events per bucket.
 *
 * Ordering contract (the determinism contract): pop() returns nodes
 * in exactly ascending (when, seq) — identical to the binary heap it
 * replaces — so same-tick insertion order (FIFO via the caller's
 * monotonic seq) is preserved bit-for-bit. tests/test_ladderq.cc
 * cross-checks random schedules against a reference heap.
 *
 * Not thread-safe; see event.hh for the ownership rules.
 */

#ifndef AP_SIM_LADDERQ_HH
#define AP_SIM_LADDERQ_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "sim/event.hh"

namespace ap::sim
{

class LadderQueue
{
  public:
    static constexpr int num_buckets = 128;

    LadderQueue();
    ~LadderQueue();

    LadderQueue(LadderQueue &&) = default;
    LadderQueue &operator=(LadderQueue &&) = default;
    LadderQueue(const LadderQueue &) = delete;
    LadderQueue &operator=(const LadderQueue &) = delete;

    /** Schedule. @p seq must be unique and, within a tick,
     *  monotonically increasing (the FIFO tie-break). */
    void push(Tick when, std::uint64_t seq, int affinity,
              EventFn fn);

    /**
     * Earliest pending node, or nullptr when empty. Logically const:
     * may materialize the next bucket into the front heap, which
     * reorders internal storage but never the pending set. Callers
     * must hold whatever lock guards push()/pop().
     */
    const EventNode *
    peek() const
    {
        return const_cast<LadderQueue *>(this)->materialize();
    }

    /** Earliest pending tick (max_tick when empty); see peek(). */
    Tick
    min_when() const
    {
        const EventNode *n = peek();
        return n ? n->when : max_tick;
    }

    /**
     * Remove and return the earliest node. The caller runs the
     * closure, then must hand the node back via release().
     */
    EventNode *pop();

    /** Recycle a node obtained from pop(). */
    void release(EventNode *n) { pool.release(n); }

    bool empty() const { return numEvents == 0; }
    std::size_t size() const { return numEvents; }

    /** Drop every pending event (closures destroyed). */
    void clear();

    const EventPoolStats &pool_stats() const { return pool.stats(); }

  private:
    /** Ensure the front heap holds the earliest pending node (or
     *  the queue is empty). @return the heap top or nullptr. */
    EventNode *materialize();
    /** Re-anchor the ring at the overflow's near edge. */
    void rebase();
    void heap_push(std::vector<EventNode *> &heap, EventNode *n);
    EventNode *heap_pop(std::vector<EventNode *> &heap);

    EventPool pool;

    /** Min-heap by (when, seq): every pending event below frontEnd. */
    std::vector<EventNode *> front;
    /** Exclusive tick bound of the front region. Invariant while the
     *  ring is live: frontEnd == bucketBase + nextBucket * width. */
    Tick frontEnd = 0;

    std::vector<EventNode *> buckets; ///< chain heads, num_buckets
    Tick bucketBase = 0;
    int nextBucket = num_buckets;     ///< first not-yet-drained bucket
    unsigned wShift = 6;              ///< bucket width = 2^wShift ticks
    std::size_t ringCount = 0;        ///< events currently bucketed

    std::vector<EventNode *> overflow; ///< min-heap by (when, seq)

    std::size_t numEvents = 0;

    /** Density bookkeeping for adaptive bucket width at rebase. */
    std::uint64_t drainedSinceRebase = 0;
    Tick lastRebaseBase = 0;
};

} // namespace ap::sim

#endif // AP_SIM_LADDERQ_HH
