/**
 * @file
 * Blocking processes on top of fibers and the event queue.
 *
 * A Process is a fiber bound to a Simulator with two blocking
 * primitives: delay(dt) (model computation or fixed hardware latency)
 * and wait(Condition) (park until some piece of simulated hardware
 * signals). Conditions use notify-then-recheck semantics, so waiters
 * always re-test their predicate in a loop.
 */

#ifndef AP_SIM_PROCESS_HH
#define AP_SIM_PROCESS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/eventq.hh"
#include "sim/fiber.hh"

namespace ap::sim
{

class Process;

/**
 * A broadcast wakeup channel. Hardware models call notify_all() when
 * state changes (a flag incremented, a ring buffer filled, a barrier
 * released); parked processes resume at the current tick in the order
 * they went to sleep.
 */
class Condition
{
  public:
    /** Wake every parked process at the current simulated time. */
    void notify_all();

    /** @return number of processes currently parked here. */
    std::size_t waiters() const { return parked.size(); }

  private:
    friend class Process;
    std::vector<Process *> parked;
};

/**
 * A simulated thread of control (one per cell in the functional
 * machine; one per trace timeline in MLSim replay).
 */
class Process
{
  public:
    /**
     * Create a process; it does not run until start() is called.
     * @param sim the owning simulator
     * @param name diagnostic label (e.g. "cell12")
     * @param body the process body, handed this Process
     */
    Process(Simulator &sim, std::string name,
            std::function<void(Process &)> body);

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    /** Schedule the first resume at absolute time @p at. */
    void start(Tick at = 0);

    /**
     * Block the calling process for @p dt ticks of simulated time.
     * Must be called from inside the process body.
     */
    void delay(Tick dt);

    /**
     * Park the calling process on @p cond until notified. Callers
     * re-check their predicate afterwards:
     * @code
     * while (!ready()) proc.wait(cond);
     * @endcode
     */
    void wait(Condition &cond);

    /**
     * Park on @p cond until notified or until the absolute simulated
     * time @p deadline, whichever comes first — the primitive behind
     * every communication timeout.
     *
     * @return true when woken by a notification, false on timeout.
     * Like wait(), callers must re-check their predicate on a true
     * return (notify-then-recheck semantics).
     */
    bool wait_until(Condition &cond, Tick deadline);

    /** @return true once the body returned. */
    bool finished() const { return fiber.finished(); }

    /** @return true while parked on a condition. */
    bool blocked() const { return parkedOn != nullptr; }

    /** Diagnostic label. */
    const std::string &name() const { return label; }

    /**
     * Pin every resume event of this process to @p affinity (the
     * owning cell id under the sharded kernel, so a cell's fiber
     * always runs on its cell's shard). Default 0.
     */
    void set_affinity(int affinity) { aff = affinity; }
    int affinity() const { return aff; }

    /** Owning simulator. */
    Simulator &simulator() { return sim; }

    /** Total ticks this process spent parked on conditions. */
    Tick blocked_ticks() const { return blockedTicks; }

    /** Total ticks this process spent in delay(). */
    Tick delayed_ticks() const { return delayedTicks; }

  private:
    friend class Condition;

    void resume_from_event();

    Simulator &sim;
    std::string label;
    int aff = 0;
    Fiber fiber;
    Condition *parkedOn = nullptr;
    Tick parkStart = 0;
    Tick blockedTicks = 0;
    Tick delayedTicks = 0;
    /** Incremented per park; lets a timeout event detect staleness. */
    std::uint64_t waitSeq = 0;
    /** Set by the timeout path for wait_until()'s return value. */
    bool timedOut = false;
    /**
     * Liveness token for events that capture this process. A
     * wait_until() timeout event can outlive its process (the serve
     * layer reaps finished gangs mid-run); the event holds a weak_ptr
     * and becomes a no-op once the process is destroyed.
     */
    std::shared_ptr<char> live = std::make_shared<char>(0);
};

} // namespace ap::sim

#endif // AP_SIM_PROCESS_HH
