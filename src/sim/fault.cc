#include "sim/fault.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ap::sim
{

std::string
FaultPlan::describe() const
{
    if (!any())
        return "none";
    std::string out;
    auto add = [&](const char *name, double v) {
        if (v > 0)
            out += strprintf("%s%s=%.3g", out.empty() ? "" : " ",
                             name, v);
    };
    add("drop", dropProb);
    add("dup", dupProb);
    add("reorder", reorderProb);
    add("overflow", overflowProb);
    add("pagefault", pageFaultProb);
    add("jitter", jitterMaxUs);
    add("corrupt", corruptProb);
    if (!kills.empty())
        out += strprintf("%skills=%zu", out.empty() ? "" : " ",
                         kills.size());
    out += strprintf(" seed=%llu",
                     static_cast<unsigned long long>(seed));
    return out;
}

FaultPlan
FaultPlan::drops(std::uint64_t seed, double p)
{
    FaultPlan f;
    f.seed = seed;
    f.dropProb = p;
    return f;
}

FaultPlan
FaultPlan::duplicates(std::uint64_t seed, double p)
{
    FaultPlan f;
    f.seed = seed;
    f.dupProb = p;
    return f;
}

FaultPlan
FaultPlan::reorders(std::uint64_t seed, double p)
{
    FaultPlan f;
    f.seed = seed;
    f.reorderProb = p;
    return f;
}

FaultPlan
FaultPlan::overflows(std::uint64_t seed, double p)
{
    FaultPlan f;
    f.seed = seed;
    f.overflowProb = p;
    return f;
}

FaultPlan
FaultPlan::pageFaults(std::uint64_t seed, double p)
{
    FaultPlan f;
    f.seed = seed;
    f.pageFaultProb = p;
    return f;
}

FaultPlan
FaultPlan::jitter(std::uint64_t seed, double maxUs)
{
    FaultPlan f;
    f.seed = seed;
    f.jitterMaxUs = maxUs;
    return f;
}

FaultPlan
FaultPlan::corrupts(std::uint64_t seed, double p)
{
    FaultPlan f;
    f.seed = seed;
    f.corruptProb = p;
    return f;
}

FaultPlan
FaultPlan::lossy(std::uint64_t seed)
{
    FaultPlan f;
    f.seed = seed;
    f.dropProb = 0.02;
    f.dupProb = 0.01;
    f.reorderProb = 0.02;
    return f;
}

FaultPlan
FaultPlan::kill_cell(std::uint64_t seed, CellId cell, double atUs)
{
    FaultPlan f;
    f.seed = seed;
    f.kills.push_back({cell, atUs});
    return f;
}

FaultPlan
FaultPlan::chaos(std::uint64_t seed)
{
    FaultPlan f;
    f.seed = seed;
    f.dropProb = 0.01;
    f.dupProb = 0.01;
    f.reorderProb = 0.02;
    f.overflowProb = 0.2;
    f.pageFaultProb = 0.01;
    f.jitterMaxUs = 10.0;
    return f;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : fp(plan), rng(plan.seed), armed(plan.any())
{
}

void
FaultInjector::reset(FaultPlan plan)
{
    fp = plan;
    rng = Random(plan.seed);
    armed = plan.any();
    faultStats = FaultStats{};
    for (HoldStats &h : holdStats)
        h = HoldStats{};
}

bool
FaultInjector::roll(double prob)
{
    if (prob <= 0)
        return false;
    return rng.uniform() < prob;
}

bool
FaultInjector::drop_message()
{
    std::lock_guard<std::mutex> lock(mu);
    if (!roll(fp.dropProb))
        return false;
    ++faultStats.drops;
    return true;
}

bool
FaultInjector::duplicate_message()
{
    std::lock_guard<std::mutex> lock(mu);
    if (!roll(fp.dupProb))
        return false;
    ++faultStats.duplicates;
    return true;
}

bool
FaultInjector::reorder_message()
{
    std::lock_guard<std::mutex> lock(mu);
    if (!roll(fp.reorderProb))
        return false;
    ++faultStats.reorders;
    return true;
}

Tick
FaultInjector::reorder_delay() const
{
    return us_to_ticks(fp.reorderDelayUs);
}

bool
FaultInjector::force_overflow()
{
    std::lock_guard<std::mutex> lock(mu);
    if (!roll(fp.overflowProb))
        return false;
    ++faultStats.forcedSpills;
    return true;
}

bool
FaultInjector::inject_page_fault()
{
    std::lock_guard<std::mutex> lock(mu);
    if (!roll(fp.pageFaultProb))
        return false;
    ++faultStats.injectedPageFaults;
    return true;
}

bool
FaultInjector::corrupt_message()
{
    std::lock_guard<std::mutex> lock(mu);
    if (!roll(fp.corruptProb))
        return false;
    ++faultStats.corruptions;
    return true;
}

std::size_t
FaultInjector::corrupt_index(std::size_t size)
{
    std::lock_guard<std::mutex> lock(mu);
    return static_cast<std::size_t>(rng.below(size));
}

void
FaultInjector::set_cells(int cells)
{
    if (holdStats.size() < static_cast<std::size_t>(cells))
        holdStats.resize(static_cast<std::size_t>(cells));
}

bool
FaultInjector::try_hold(CellId dst, HoldKind kind)
{
    std::lock_guard<std::mutex> lock(mu);
    if (static_cast<std::size_t>(dst) >= holdStats.size())
        holdStats.resize(static_cast<std::size_t>(dst) + 1);
    HoldStats &h = holdStats[static_cast<std::size_t>(dst)];
    if (fp.maxHeldPerCell > 0 &&
        h.held >= static_cast<std::uint64_t>(fp.maxHeldPerCell)) {
        if (kind == HoldKind::duplicate)
            ++h.dupEvictions;
        else
            ++h.reorderEvictions;
        return false;
    }
    ++h.held;
    h.heldHighWater = std::max(h.heldHighWater, h.held);
    return true;
}

void
FaultInjector::release_hold(CellId dst)
{
    std::lock_guard<std::mutex> lock(mu);
    if (static_cast<std::size_t>(dst) >= holdStats.size())
        return;
    HoldStats &h = holdStats[static_cast<std::size_t>(dst)];
    if (h.held > 0)
        --h.held;
}

const FaultInjector::HoldStats &
FaultInjector::hold_stats(CellId cell) const
{
    static const HoldStats empty{};
    if (static_cast<std::size_t>(cell) >= holdStats.size())
        return empty;
    return holdStats[static_cast<std::size_t>(cell)];
}

Tick
FaultInjector::jitter()
{
    if (fp.jitterMaxUs <= 0)
        return 0;
    std::lock_guard<std::mutex> lock(mu);
    Tick extra = us_to_ticks(fp.jitterMaxUs * rng.uniform());
    if (extra > 0) {
        ++faultStats.jitteredEvents;
        faultStats.jitterTicks += extra;
    }
    return extra;
}

} // namespace ap::sim
