#include "sim/fiber.hh"

#include "base/logging.hh"

namespace ap::sim
{

namespace
{

thread_local Fiber *current_fiber = nullptr;

} // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_size)
    : body(std::move(body)), stack(stack_size)
{
}

Fiber::~Fiber()
{
    if (started && !done)
        warn("destroying unfinished fiber; its stack is abandoned");
}

Fiber *
Fiber::current()
{
    return current_fiber;
}

void
Fiber::trampoline()
{
    Fiber *self = current_fiber;
    self->body();
    self->done = true;
    // Return to whoever resumed us; uc_link handles the final switch.
}

void
Fiber::resume()
{
    if (done)
        panic("resuming a finished fiber");
    if (current_fiber)
        panic("nested fiber resume (fibers must not resume fibers)");

    current_fiber = this;
    if (!started) {
        started = true;
        if (getcontext(&context) != 0)
            panic("getcontext failed");
        context.uc_stack.ss_sp = stack.data();
        context.uc_stack.ss_size = stack.size();
        context.uc_link = &schedulerContext;
        makecontext(&context, reinterpret_cast<void (*)()>(&trampoline),
                    0);
    }
    if (swapcontext(&schedulerContext, &context) != 0)
        panic("swapcontext into fiber failed");
    current_fiber = nullptr;
}

void
Fiber::yield()
{
    Fiber *self = current_fiber;
    if (!self)
        panic("Fiber::yield called outside a fiber");
    if (swapcontext(&self->context, &self->schedulerContext) != 0)
        panic("swapcontext out of fiber failed");
}

} // namespace ap::sim
