#include "sim/fiber.hh"

#include "base/logging.hh"

// ThreadSanitizer must be told about ucontext switches: without the
// fiber annotations it sees one OS thread's shadow stack jumping
// between unrelated stacks and reports phantom races. Worker threads
// of the sharded kernel resume cell fibers, so the TSan CI job runs
// fiber-based workloads through these hooks.
#if defined(__SANITIZE_THREAD__)
#define AP_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AP_TSAN_FIBERS 1
#endif
#endif

#ifdef AP_TSAN_FIBERS
extern "C" {
void *__tsan_get_current_fiber(void);
void *__tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void *fiber);
void __tsan_switch_to_fiber(void *fiber, unsigned flags);
}
#endif

namespace ap::sim
{

namespace
{

thread_local Fiber *current_fiber = nullptr;

} // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_size)
    : body(std::move(body)), stack(stack_size)
{
}

Fiber::~Fiber()
{
    if (started && !done)
        warn("destroying unfinished fiber; its stack is abandoned");
#ifdef AP_TSAN_FIBERS
    if (tsanFiber)
        __tsan_destroy_fiber(tsanFiber);
#endif
}

Fiber *
Fiber::current()
{
    return current_fiber;
}

void
Fiber::trampoline()
{
    Fiber *self = current_fiber;
    self->body();
    self->done = true;
    // Final switch back to the resumer. Done explicitly rather than
    // by returning through uc_link: under TSan, nothing instrumented
    // may run between __tsan_switch_to_fiber and the actual stack
    // switch, and a return would execute this function's own
    // instrumented epilogue after the annotation — corrupting the
    // caller's shadow stack. (uc_link stays set as a backstop.)
#ifdef AP_TSAN_FIBERS
    __tsan_switch_to_fiber(self->tsanCaller, 0);
#endif
    swapcontext(&self->context, &self->schedulerContext);
}

void
Fiber::resume()
{
    if (done)
        panic("resuming a finished fiber");
    if (current_fiber)
        panic("nested fiber resume (fibers must not resume fibers)");

    current_fiber = this;
    if (!started) {
        started = true;
        if (getcontext(&context) != 0)
            panic("getcontext failed");
        context.uc_stack.ss_sp = stack.data();
        context.uc_stack.ss_size = stack.size();
        context.uc_link = &schedulerContext;
        makecontext(&context, reinterpret_cast<void (*)()>(&trampoline),
                    0);
#ifdef AP_TSAN_FIBERS
        tsanFiber = __tsan_create_fiber(0);
#endif
    }
#ifdef AP_TSAN_FIBERS
    tsanCaller = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsanFiber, 0);
#endif
    if (swapcontext(&schedulerContext, &context) != 0)
        panic("swapcontext into fiber failed");
    current_fiber = nullptr;
}

void
Fiber::yield()
{
    Fiber *self = current_fiber;
    if (!self)
        panic("Fiber::yield called outside a fiber");
#ifdef AP_TSAN_FIBERS
    __tsan_switch_to_fiber(self->tsanCaller, 0);
#endif
    if (swapcontext(&self->context, &self->schedulerContext) != 0)
        panic("swapcontext out of fiber failed");
}

} // namespace ap::sim
