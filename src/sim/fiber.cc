#include "sim/fiber.hh"

#include "base/logging.hh"

// ThreadSanitizer must be told about ucontext switches: without the
// fiber annotations it sees one OS thread's shadow stack jumping
// between unrelated stacks and reports phantom races. Worker threads
// of the sharded kernel resume cell fibers, so the TSan CI job runs
// fiber-based workloads through these hooks.
#if defined(__SANITIZE_THREAD__)
#define AP_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AP_TSAN_FIBERS 1
#endif
#endif

#ifdef AP_TSAN_FIBERS
extern "C" {
void *__tsan_get_current_fiber(void);
void *__tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void *fiber);
void __tsan_switch_to_fiber(void *fiber, unsigned flags);
}
#endif

// AddressSanitizer likewise needs the switches announced: it keeps
// one fake stack + poison map per stack region, and an exception
// unwinding across an unannounced ucontext switch unpoisons the
// wrong region — leaving stale redzones on the fiber stack that a
// later frame at the same depth trips over as a phantom
// stack-buffer-overflow.
#if defined(__SANITIZE_ADDRESS__)
#define AP_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define AP_ASAN_FIBERS 1
#endif
#endif

#ifdef AP_ASAN_FIBERS
extern "C" {
void __sanitizer_start_switch_fiber(void **fake_stack_save,
                                    const void *bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void *fake_stack_save,
                                     const void **bottom_old,
                                     std::size_t *size_old);
}
#endif

namespace ap::sim
{

namespace
{

thread_local Fiber *current_fiber = nullptr;

#ifdef AP_ASAN_FIBERS
/**
 * Stacks of abandoned (unfinished) fibers, kept alive forever in
 * ASan builds. A parked fiber's frames never run their destructors,
 * so objects referenced only from such a stack would be reported as
 * leaks once the stack buffer is freed — but they are abandoned by
 * design (deadlock tests park fibers on purpose). Keeping the bytes
 * reachable lets the leak scanner follow the references instead of
 * flagging them. Leaky singleton: LSan runs at exit, so this must
 * never be destroyed.
 */
std::vector<std::unique_ptr<unsigned char[]>> &
abandoned_stacks()
{
    static auto *stacks =
        new std::vector<std::unique_ptr<unsigned char[]>>;
    return *stacks;
}
#endif

} // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_size)
    : body(std::move(body)), stackBytes(stack_size),
      stack(new unsigned char[stack_size])
{
}

Fiber::~Fiber()
{
    if (started && !done) {
        warn("destroying unfinished fiber; its stack is abandoned");
#ifdef AP_ASAN_FIBERS
        abandoned_stacks().push_back(std::move(stack));
#endif
    }
#ifdef AP_TSAN_FIBERS
    if (tsanFiber)
        __tsan_destroy_fiber(tsanFiber);
#endif
}

Fiber *
Fiber::current()
{
    return current_fiber;
}

void
Fiber::trampoline()
{
    Fiber *self = current_fiber;
#ifdef AP_ASAN_FIBERS
    // First time on this stack: no fake stack to restore (nullptr);
    // record the resumer's stack bounds for the switch back.
    __sanitizer_finish_switch_fiber(nullptr, &self->asanCallerBottom,
                                    &self->asanCallerSize);
#endif
    self->body();
    self->done = true;
    // Final switch back to the resumer. Done explicitly rather than
    // by returning through uc_link: under TSan, nothing instrumented
    // may run between __tsan_switch_to_fiber and the actual stack
    // switch, and a return would execute this function's own
    // instrumented epilogue after the annotation — corrupting the
    // caller's shadow stack. (uc_link stays set as a backstop.)
#ifdef AP_TSAN_FIBERS
    __tsan_switch_to_fiber(self->tsanCaller, 0);
#endif
#ifdef AP_ASAN_FIBERS
    // Dying fiber: a null save slot tells ASan to free its fake
    // stack rather than park it for a resume that never comes.
    __sanitizer_start_switch_fiber(nullptr, self->asanCallerBottom,
                                   self->asanCallerSize);
#endif
    swapcontext(&self->context, &self->schedulerContext);
}

void
Fiber::resume()
{
    if (done)
        panic("resuming a finished fiber");
    if (current_fiber)
        panic("nested fiber resume (fibers must not resume fibers)");

    current_fiber = this;
    if (!started) {
        started = true;
        if (getcontext(&context) != 0)
            panic("getcontext failed");
        context.uc_stack.ss_sp = stack.get();
        context.uc_stack.ss_size = stackBytes;
        context.uc_link = &schedulerContext;
        makecontext(&context, reinterpret_cast<void (*)()>(&trampoline),
                    0);
#ifdef AP_TSAN_FIBERS
        tsanFiber = __tsan_create_fiber(0);
#endif
    }
#ifdef AP_TSAN_FIBERS
    tsanCaller = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsanFiber, 0);
#endif
#ifdef AP_ASAN_FIBERS
    void *fake = nullptr;
    __sanitizer_start_switch_fiber(&fake, stack.get(), stackBytes);
#endif
    if (swapcontext(&schedulerContext, &context) != 0)
        panic("swapcontext into fiber failed");
#ifdef AP_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
    current_fiber = nullptr;
}

void
Fiber::yield()
{
    Fiber *self = current_fiber;
    if (!self)
        panic("Fiber::yield called outside a fiber");
#ifdef AP_TSAN_FIBERS
    __tsan_switch_to_fiber(self->tsanCaller, 0);
#endif
#ifdef AP_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&self->asanFake,
                                   self->asanCallerBottom,
                                   self->asanCallerSize);
#endif
    if (swapcontext(&self->context, &self->schedulerContext) != 0)
        panic("swapcontext out of fiber failed");
#ifdef AP_ASAN_FIBERS
    // Back on the fiber: restore its fake stack and refresh the
    // resumer bounds — the sharded kernel may resume from a
    // different worker thread each time.
    __sanitizer_finish_switch_fiber(self->asanFake,
                                    &self->asanCallerBottom,
                                    &self->asanCallerSize);
#endif
}

} // namespace ap::sim
