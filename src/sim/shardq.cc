#include "sim/shardq.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/logging.hh"

namespace ap::sim
{

thread_local ShardedSimulator::TlsFrame ShardedSimulator::tls;

namespace
{

/** T + L without wrapping past the tick horizon. */
Tick
saturating_add(Tick t, Tick d)
{
    return t > max_tick - d ? max_tick : t + d;
}

/** Host wall-clock nanoseconds between two steady_clock points. */
std::uint64_t
elapsed_ns(std::chrono::steady_clock::time_point from,
           std::chrono::steady_clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            to - from)
            .count());
}

} // namespace

ShardedSimulator::ShardedSimulator(ShardConfig config)
    : cfg(std::move(config)), numShards(cfg.shards)
{
    if (numShards < 1)
        fatal("sharded kernel needs at least 1 shard, got %d",
              numShards);
    if (cfg.lookahead < 1)
        fatal("sharded kernel needs lookahead >= 1 tick");
    if (!cfg.affinityMap) {
        int n = numShards;
        cfg.affinityMap = [n](int affinity) {
            return affinity <= 0 ? 0 : affinity % n;
        };
    }
    shardsVec.resize(static_cast<std::size_t>(numShards));
    for (Shard &s : shardsVec)
        s.outbox.resize(static_cast<std::size_t>(numShards));
    execAtWindowStart.resize(static_cast<std::size_t>(numShards));
}

ShardedSimulator::~ShardedSimulator()
{
    stop_workers();
}

int
ShardedSimulator::shard_of(int affinity) const
{
    int s = cfg.affinityMap(affinity);
    if (s < 0 || s >= numShards)
        panic("affinity map sent %d to shard %d of %d", affinity, s,
              numShards);
    return s;
}

Tick
ShardedSimulator::now() const
{
    if (tls.owner == this)
        return tls.now;
    return globalTime;
}

void
ShardedSimulator::set_history(TickHistory *h)
{
    history = h;
}

void
ShardedSimulator::enqueue_direct(int shard, int affinity, Tick when,
                                 EventFn fn)
{
    std::lock_guard<std::mutex> lock(qMutex);
    Shard &sh = shardsVec[static_cast<std::size_t>(shard)];
    std::uint64_t seq =
        cfg.deterministic ? globalSeq++ : sh.nextSeq++;
    sh.queue.push(when, seq, affinity, std::move(fn));
    sh.stats.maxPending =
        std::max<std::uint64_t>(sh.stats.maxPending,
                                sh.queue.size());
}

void
ShardedSimulator::schedule(Tick when, EventFn fn)
{
    int affinity = tls.owner == this ? tls.affinity : 0;
    schedule_for(affinity, when, std::move(fn));
}

void
ShardedSimulator::schedule_for(int affinity, Tick when, EventFn fn)
{
    int target = shard_of(affinity);

    // Calls from outside any execution context (machine construction,
    // test setup, the space between run() calls) go straight into the
    // target queue; no worker is live, the queue mutex suffices.
    if (tls.owner != this) {
        if (when < globalTime)
            panic("scheduling event in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(globalTime));
        enqueue_direct(target, affinity, when, std::move(fn));
        return;
    }

    if (when < tls.now)
        panic("scheduling event in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(tls.now));

    Shard &self = shardsVec[static_cast<std::size_t>(tls.shard)];

    if (!tls.inRound) {
        // Deterministic (serialized) execution: every shard queue is
        // this thread's to touch, and the global sequence number
        // replays the sequential kernel's same-tick insertion order.
        Shard &dst = shardsVec[static_cast<std::size_t>(target)];
        if (target != tls.shard) {
            ++self.stats.handoffsOut;
            ++dst.stats.handoffsIn;
            if (when < saturating_add(tls.now, cfg.lookahead))
                numViolations.fetch_add(1,
                                        std::memory_order_relaxed);
        }
        dst.queue.push(when,
                       cfg.deterministic ? globalSeq++
                                         : dst.nextSeq++,
                       affinity, std::move(fn));
        dst.stats.maxPending =
            std::max<std::uint64_t>(dst.stats.maxPending,
                                    dst.queue.size());
        return;
    }

    // Parallel round on a worker thread.
    if (target == tls.shard) {
        self.queue.push(when, self.nextSeq++, affinity,
                        std::move(fn));
        self.stats.maxPending =
            std::max<std::uint64_t>(self.stats.maxPending,
                                    self.queue.size());
        return;
    }

    if (when < tls.windowEnd) {
        // The conservative contract is broken: this event should
        // already be visible to its target shard, but the target may
        // have advanced past it. Strict mode refuses to continue;
        // relaxed mode clamps the event to the window boundary (a
        // timing perturbation, never a causality break) and counts.
        numViolations.fetch_add(1, std::memory_order_relaxed);
        if (strictLookahead)
            panic("lookahead violation: cross-shard event at %llu "
                  "inside window ending %llu (lookahead %llu, "
                  "affinity %d -> shard %d)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(tls.windowEnd),
                  static_cast<unsigned long long>(cfg.lookahead),
                  affinity, target);
        when = tls.windowEnd;
    }
    ++self.stats.handoffsOut;
    self.outbox[static_cast<std::size_t>(target)].push_back(
        Handoff{when, affinity, tls.shard, self.outSeq++,
                std::move(fn)});
}

void
ShardedSimulator::merge_outboxes()
{
    for (int t = 0; t < numShards; ++t) {
        std::vector<Handoff> incoming;
        for (Shard &src : shardsVec) {
            auto &box = src.outbox[static_cast<std::size_t>(t)];
            for (Handoff &h : box)
                incoming.push_back(std::move(h));
            box.clear();
        }
        if (incoming.empty())
            continue;
        // Canonical merge: (tick, affinity, source shard, source
        // sequence). Total (srcSeq is unique per source shard) and
        // independent of worker finishing order, so a parallel run
        // reproduces itself bit-for-bit.
        std::sort(incoming.begin(), incoming.end(),
                  [](const Handoff &a, const Handoff &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.affinity != b.affinity)
                          return a.affinity < b.affinity;
                      if (a.srcShard != b.srcShard)
                          return a.srcShard < b.srcShard;
                      return a.srcSeq < b.srcSeq;
                  });
        Shard &dst = shardsVec[static_cast<std::size_t>(t)];
        for (Handoff &h : incoming) {
            dst.queue.push(h.when, dst.nextSeq++, h.affinity,
                           std::move(h.fn));
            ++dst.stats.handoffsIn;
        }
        dst.stats.maxPending =
            std::max<std::uint64_t>(dst.stats.maxPending,
                                    dst.queue.size());
    }
}

void
ShardedSimulator::drain_shard(int s, Tick windowEnd)
{
    Shard &sh = shardsVec[static_cast<std::size_t>(s)];
    TlsFrame saved = tls;
    tls.owner = this;
    tls.shard = s;
    tls.windowEnd = windowEnd;
    tls.inRound = true;
    while (!sh.queue.empty() && sh.queue.min_when() < windowEnd) {
        EventNode *n = sh.queue.pop();
        tls.now = n->when;
        tls.affinity = n->affinity;
        sh.lastExecuted = n->when;
        ++sh.stats.executed;
        if (history)
            sh.localHistory.record(n->when, n->affinity);
        struct Recycle
        {
            LadderQueue &q;
            EventNode *n;
            ~Recycle() { q.release(n); }
        } recycle{sh.queue, n};
        n->fn();
    }
    tls = saved;
}

Tick
ShardedSimulator::next_pending_locked() const
{
    Tick t = max_tick;
    for (const Shard &s : shardsVec)
        t = std::min(t, s.queue.min_when());
    return t;
}

Tick
ShardedSimulator::shard_next(int s) const
{
    const Shard &sh = shardsVec[static_cast<std::size_t>(s)];
    return sh.queue.min_when();
}

Tick
ShardedSimulator::safe_horizon(int s) const
{
    (void)s; // every shard shares the global conservative horizon
    Tick t = next_pending_locked();
    return t == max_tick ? max_tick : saturating_add(t, cfg.lookahead);
}

const ShardStats &
ShardedSimulator::shard_stats(int s) const
{
    return shardsVec[static_cast<std::size_t>(s)].stats;
}

bool
ShardedSimulator::empty() const
{
    for (const Shard &s : shardsVec)
        if (!s.queue.empty())
            return false;
    return true;
}

std::size_t
ShardedSimulator::pending() const
{
    std::size_t n = 0;
    for (const Shard &s : shardsVec)
        n += s.queue.size();
    return n;
}

std::uint64_t
ShardedSimulator::executed() const
{
    return numExecutedTotal;
}

SimAllocStats
ShardedSimulator::alloc_stats() const
{
    SimAllocStats s;
    for (const Shard &sh : shardsVec) {
        const EventPoolStats &p = sh.queue.pool_stats();
        s.poolHits += p.hits;
        s.poolMisses += p.misses;
        s.poolBlocks += p.blocks;
    }
    s.fnHeap = eventfn_heap_allocs();
    return s;
}

bool
ShardedSimulator::step_deterministic()
{
    // Pick the globally earliest entry; ties break on sequence, then
    // shard index (sequences are globally unique in deterministic
    // mode, shard-local otherwise).
    int best = -1;
    for (int s = 0; s < numShards; ++s) {
        const Shard &sh = shardsVec[static_cast<std::size_t>(s)];
        const EventNode *a = sh.queue.peek();
        if (!a)
            continue;
        if (best < 0) {
            best = s;
            continue;
        }
        const EventNode *b =
            shardsVec[static_cast<std::size_t>(best)].queue.peek();
        if (a->when < b->when ||
            (a->when == b->when && a->seq < b->seq))
            best = s;
    }
    if (best < 0)
        return false;

    Shard &sh = shardsVec[static_cast<std::size_t>(best)];
    EventNode *n = sh.queue.pop();

    TlsFrame saved = tls;
    tls.owner = this;
    tls.shard = best;
    tls.affinity = n->affinity;
    tls.now = n->when;
    tls.windowEnd = 0;
    tls.inRound = false;

    globalTime = n->when;
    sh.lastExecuted = n->when;
    ++sh.stats.executed;
    ++numExecutedTotal;
    if (history)
        history->record(n->when, n->affinity);
    struct Recycle
    {
        LadderQueue &q;
        EventNode *n;
        ~Recycle() { q.release(n); }
    } recycle{sh.queue, n};
    n->fn();

    tls = saved;
    return true;
}

bool
ShardedSimulator::step()
{
    if (running)
        panic("step() during run()");
    return step_deterministic();
}

Tick
ShardedSimulator::run_sequential(Tick limit)
{
    // One shard: the exact sequential loop, no windows, no barriers.
    while (!shardsVec[0].queue.empty() &&
           shardsVec[0].queue.min_when() <= limit)
        step_deterministic();
    return globalTime;
}

Tick
ShardedSimulator::run_deterministic(Tick limit)
{
    for (;;) {
        Tick t = next_pending_locked();
        if (t == max_tick || t > limit)
            break;
        step_deterministic();
    }
    return globalTime;
}

Tick
ShardedSimulator::run_parallel(Tick limit)
{
    using clock = std::chrono::steady_clock;
    start_workers();
    for (;;) {
        Tick t = next_pending_locked();
        if (t == max_tick || t > limit)
            break;
        Tick windowEnd = saturating_add(t, cfg.lookahead);
        if (limit != max_tick)
            windowEnd = std::min(windowEnd,
                                 saturating_add(limit, 1));
        currentWindowEnd = windowEnd;

        WindowRecord rec;
        rec.index = numWindows;
        rec.start = t;
        rec.end = windowEnd;
        rec.advance = haveWindowStart ? t - prevWindowStart : 0;
        prevWindowStart = t;
        haveWindowStart = true;
        ++numWindows;
        for (int s = 0; s < numShards; ++s)
            execAtWindowStart[static_cast<std::size_t>(s)] =
                shardsVec[static_cast<std::size_t>(s)]
                    .stats.executed;

        {
            std::lock_guard<std::mutex> lock(poolMutex);
            roundWindowEnd = windowEnd;
            roundDone = 0;
            ++roundGen;
        }
        poolCv.notify_all();

        drain_shard(0, windowEnd);

        {
            clock::time_point waitBegin = clock::now();
            std::unique_lock<std::mutex> lock(poolMutex);
            doneCv.wait(lock, [this] {
                return roundDone == numShards - 1;
            });
            rec.barrierWaitNs =
                elapsed_ns(waitBegin, clock::now());
            shardsVec[0].stats.barrierWaitNs += rec.barrierWaitNs;
        }

        clock::time_point mergeBegin = clock::now();
        merge_outboxes();
        rec.mergeNs = elapsed_ns(mergeBegin, clock::now());

        Tick maxDone = 0;
        std::uint64_t total = 0;
        rec.shards.resize(static_cast<std::size_t>(numShards));
        for (int s = 0; s < numShards; ++s) {
            const Shard &sh = shardsVec[static_cast<std::size_t>(s)];
            maxDone = std::max(maxDone, sh.lastExecuted);
            total += sh.stats.executed;
            std::uint64_t e =
                sh.stats.executed -
                execAtWindowStart[static_cast<std::size_t>(s)];
            WindowShard &ws =
                rec.shards[static_cast<std::size_t>(s)];
            ws.events = e;
            ws.last = e > 0 ? sh.lastExecuted : 0;
            rec.events += e;
            rec.maxShardEvents = std::max(rec.maxShardEvents, e);
        }
        if (maxDone > globalTime)
            globalTime = maxDone;
        numExecutedTotal = total;
        // max/mean events per shard, x1000: 1000 means every shard
        // did equal work, N*1000 means one shard did everything.
        if (rec.events > 0)
            rec.imbalanceX1000 =
                rec.maxShardEvents *
                static_cast<std::uint64_t>(numShards) * 1000 /
                rec.events;
        note_window(rec);
    }
    // Fold the per-shard digests into the attached history in shard
    // order: cross-shard execution order is intentionally undefined
    // inside a window, so the parallel digest is the ordered tuple of
    // per-shard digests (reproducible run-to-run thanks to the
    // canonical merge). Compare against deterministic mode only.
    if (history) {
        for (int s = 0; s < numShards; ++s) {
            Shard &sh = shardsVec[static_cast<std::size_t>(s)];
            if (sh.localHistory.events() == 0)
                continue;
            history->record(
                static_cast<Tick>(sh.localHistory.hash()), s);
            sh.localHistory.reset();
        }
    }
    return globalTime;
}

void
ShardedSimulator::note_window(WindowRecord rec)
{
    windowAgg.windows = numWindows;
    windowAgg.events += rec.events;
    windowAgg.horizonAdvance += rec.advance;
    windowAgg.barrierWaitNs += rec.barrierWaitNs;
    windowAgg.mergeNs += rec.mergeNs;
    if (rec.imbalanceX1000 > 0) {
        windowAgg.imbalanceMaxX1000 = std::max(
            windowAgg.imbalanceMaxX1000, rec.imbalanceX1000);
        windowAgg.imbalanceSumX1000 += rec.imbalanceX1000;
    }
    if (windowHook)
        windowHook(rec);
    if (windowRing.size() < window_ring_capacity) {
        windowRing.push_back(std::move(rec));
    } else {
        windowRing[windowHead] = std::move(rec);
        windowHead = (windowHead + 1) % window_ring_capacity;
        ++windowDropped;
    }
}

std::vector<WindowRecord>
ShardedSimulator::window_records() const
{
    std::vector<WindowRecord> out;
    out.reserve(windowRing.size());
    for (std::size_t i = 0; i < windowRing.size(); ++i)
        out.push_back(windowRing[(windowHead + i) %
                                 windowRing.size()]);
    return out;
}

Tick
ShardedSimulator::run_loop(Tick limit)
{
    if (running)
        panic("re-entrant run()");
    running = true;
    Tick t;
    if (numShards == 1)
        t = run_sequential(limit);
    else if (cfg.deterministic)
        t = run_deterministic(limit);
    else
        t = run_parallel(limit);
    running = false;
    return t;
}

Tick
ShardedSimulator::run()
{
    return run_loop(max_tick);
}

Tick
ShardedSimulator::run_until(Tick limit)
{
    return run_loop(limit);
}

void
ShardedSimulator::start_workers()
{
    if (!workers.empty())
        return;
    workers.reserve(static_cast<std::size_t>(numShards - 1));
    for (int s = 1; s < numShards; ++s)
        workers.emplace_back([this, s] { worker_main(s); });
}

void
ShardedSimulator::stop_workers()
{
    if (workers.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        shuttingDown = true;
    }
    poolCv.notify_all();
    for (std::thread &w : workers)
        w.join();
    workers.clear();
    shuttingDown = false;
}

void
ShardedSimulator::worker_main(int s)
{
    using clock = std::chrono::steady_clock;
    std::uint64_t seenGen = 0;
    bool idleSinceValid = false;
    clock::time_point idleSince;
    for (;;) {
        Tick windowEnd;
        {
            std::unique_lock<std::mutex> lock(poolMutex);
            poolCv.wait(lock, [this, seenGen] {
                return shuttingDown || roundGen != seenGen;
            });
            if (shuttingDown)
                return;
            seenGen = roundGen;
            windowEnd = roundWindowEnd;
        }
        // Barrier-wait attribution: the stretch between finishing
        // the previous drain and this wake is time the worker spent
        // parked while the coordinator merged and other shards
        // straggled. Written race-free: the coordinator reads shard
        // stats only after this round's roundDone handshake.
        if (idleSinceValid)
            shardsVec[static_cast<std::size_t>(s)]
                .stats.barrierWaitNs +=
                elapsed_ns(idleSince, clock::now());
        drain_shard(s, windowEnd);
        idleSince = clock::now();
        idleSinceValid = true;
        {
            std::lock_guard<std::mutex> lock(poolMutex);
            ++roundDone;
        }
        doneCv.notify_one();
    }
}

std::string
ShardedSimulator::report() const
{
    std::string out = strprintf(
        "sharded kernel: %d shard%s, lookahead %llu ticks, %s; "
        "%llu windows, %llu events, %llu violations\n",
        numShards, numShards == 1 ? "" : "s",
        static_cast<unsigned long long>(cfg.lookahead),
        cfg.deterministic ? "deterministic" : "parallel",
        static_cast<unsigned long long>(numWindows),
        static_cast<unsigned long long>(numExecutedTotal),
        static_cast<unsigned long long>(lookahead_violations()));
    if (windowAgg.windows > 0) {
        out += strprintf(
            "  windows: %.1f events/window, horizon advance "
            "%.1f ticks/window, barrier wait %.2f ms, merge "
            "%.2f ms, imbalance avg %.2fx max %.2fx\n",
            static_cast<double>(windowAgg.events) /
                static_cast<double>(windowAgg.windows),
            static_cast<double>(windowAgg.horizonAdvance) /
                static_cast<double>(windowAgg.windows),
            static_cast<double>(windowAgg.barrierWaitNs) / 1e6,
            static_cast<double>(windowAgg.mergeNs) / 1e6,
            static_cast<double>(windowAgg.imbalanceSumX1000) /
                static_cast<double>(windowAgg.windows) / 1000.0,
            static_cast<double>(windowAgg.imbalanceMaxX1000) /
                1000.0);
    }
    for (int s = 0; s < numShards; ++s) {
        const ShardStats &st = shard_stats(s);
        out += strprintf(
            "  shard %d: %llu executed, %llu in / %llu out "
            "handoffs, max queue %llu, barrier wait %.2f ms\n",
            s, static_cast<unsigned long long>(st.executed),
            static_cast<unsigned long long>(st.handoffsIn),
            static_cast<unsigned long long>(st.handoffsOut),
            static_cast<unsigned long long>(st.maxPending),
            static_cast<double>(st.barrierWaitNs) / 1e6);
    }
    return out;
}

} // namespace ap::sim
