#include "sim/event.hh"

namespace ap::sim
{

namespace detail
{
std::atomic<std::uint64_t> eventFnHeapAllocs{0};
} // namespace detail

std::uint64_t
eventfn_heap_allocs()
{
    return detail::eventFnHeapAllocs.load(std::memory_order_relaxed);
}

} // namespace ap::sim
