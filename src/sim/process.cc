#include "sim/process.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ap::sim
{

Process::Process(Simulator &sim, std::string name,
                 std::function<void(Process &)> body)
    : sim(sim),
      label(std::move(name)),
      fiber([this, body = std::move(body)]() { body(*this); })
{
}

void
Process::start(Tick at)
{
    sim.schedule_for(aff, at, [this]() { resume_from_event(); });
}

void
Process::resume_from_event()
{
    fiber.resume();
}

void
Process::delay(Tick dt)
{
    if (Fiber::current() != &fiber)
        panic("Process::delay called from outside process '%s'",
              label.c_str());
    if (dt == 0)
        return;
    Tick wake = sim.now() + dt;
    delayedTicks += dt;
    sim.schedule_for(aff, wake, [this]() { resume_from_event(); });
    Fiber::yield();
}

void
Process::wait(Condition &cond)
{
    if (Fiber::current() != &fiber)
        panic("Process::wait called from outside process '%s'",
              label.c_str());
    parkedOn = &cond;
    parkStart = sim.now();
    ++waitSeq;
    cond.parked.push_back(this);
    Fiber::yield();
}

bool
Process::wait_until(Condition &cond, Tick deadline)
{
    if (Fiber::current() != &fiber)
        panic("Process::wait_until called from outside process '%s'",
              label.c_str());
    if (deadline <= sim.now())
        return false;

    parkedOn = &cond;
    parkStart = sim.now();
    timedOut = false;
    std::uint64_t seq = ++waitSeq;
    cond.parked.push_back(this);

    // The watchdog resumes us at the deadline unless a notification
    // already did (detected via the wait sequence number). The event
    // can outlive the process itself (gangs are reaped mid-run once
    // finished): the weak liveness token makes it a no-op then.
    sim.schedule_for(aff, deadline, [this, &cond, seq,
                                     w = std::weak_ptr<char>(live)]() {
        if (w.expired())
            return; // process already destroyed
        if (parkedOn != &cond || waitSeq != seq)
            return; // already woken (possibly parked elsewhere)
        auto it = std::find(cond.parked.begin(), cond.parked.end(),
                            this);
        if (it == cond.parked.end())
            return; // notification at this tick beat the watchdog
        cond.parked.erase(it);
        parkedOn = nullptr;
        blockedTicks += sim.now() - parkStart;
        timedOut = true;
        resume_from_event();
    });

    Fiber::yield();
    return !timedOut;
}

void
Condition::notify_all()
{
    if (parked.empty())
        return;
    std::vector<Process *> woken;
    woken.swap(parked);
    for (Process *p : woken) {
        p->parkedOn = nullptr;
        p->blockedTicks += p->sim.now() - p->parkStart;
        // Resume on the parked process's own shard: the notifier may
        // be an event of a different cell (e.g. a barrier release).
        p->sim.schedule_for(p->aff, p->sim.now(),
                            [p]() { p->resume_from_event(); });
    }
}

} // namespace ap::sim
