#include "sim/process.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ap::sim
{

Process::Process(Simulator &sim, std::string name,
                 std::function<void(Process &)> body)
    : sim(sim),
      label(std::move(name)),
      fiber([this, body = std::move(body)]() { body(*this); })
{
}

void
Process::start(Tick at)
{
    sim.schedule(at, [this]() { resume_from_event(); });
}

void
Process::resume_from_event()
{
    fiber.resume();
}

void
Process::delay(Tick dt)
{
    if (Fiber::current() != &fiber)
        panic("Process::delay called from outside process '%s'",
              label.c_str());
    if (dt == 0)
        return;
    Tick wake = sim.now() + dt;
    delayedTicks += dt;
    sim.schedule(wake, [this]() { resume_from_event(); });
    Fiber::yield();
}

void
Process::wait(Condition &cond)
{
    if (Fiber::current() != &fiber)
        panic("Process::wait called from outside process '%s'",
              label.c_str());
    parkedOn = &cond;
    parkStart = sim.now();
    cond.parked.push_back(this);
    Fiber::yield();
}

void
Condition::notify_all()
{
    if (parked.empty())
        return;
    std::vector<Process *> woken;
    woken.swap(parked);
    for (Process *p : woken) {
        p->parkedOn = nullptr;
        p->blockedTicks += p->sim.now() - p->parkStart;
        p->sim.schedule(p->sim.now(),
                        [p]() { p->resume_from_event(); });
    }
}

} // namespace ap::sim
