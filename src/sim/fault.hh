/**
 * @file
 * Fault injection for the simulated machine.
 *
 * The paper's MSC+ explicitly handles two failure paths — queue
 * overflow spilling to DRAM with an OS refill interrupt, and a page
 * fault mid-transfer flushing the remainder of the message from the
 * network (Section 4.1) — but a simulator that only ever exercises
 * the happy path cannot regress them. A FaultPlan describes a seeded,
 * fully deterministic perturbation of one run:
 *
 *  - message drop / duplicate / reorder probabilities on the T-net;
 *  - forced send/receive-queue overflows in the MSC+ (every forced
 *    push takes the DRAM spill + refill-interrupt path even when the
 *    hardware queue has room);
 *  - injected MMU page faults during transfer DMA (exercising the
 *    command-drop and message-flush reactions);
 *  - bounded random latency jitter on event-queue delays (schedule
 *    perturbation that must never change results, only timing).
 *
 * Determinism is load-bearing: the injector draws from its own
 * splitmix engine at well-defined decision points, and the event
 * kernel executes deterministically, so a (workload seed, fault plan)
 * pair always reproduces the identical run — a failing stress seed
 * replays exactly.
 *
 * A default-constructed (zero) plan is inert by construction: every
 * decision point short-circuits before touching the RNG, so a machine
 * with a zero plan is byte-identical to one without the fault layer.
 */

#ifndef AP_SIM_FAULT_HH
#define AP_SIM_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"

namespace ap::sim
{

/** One run's fault configuration. All-zero = no faults (inert). */
struct FaultPlan
{
    /** Seed of the injector's private RNG stream. */
    std::uint64_t seed = 1;

    /** Probability a T-net message silently vanishes. */
    double dropProb = 0.0;
    /** Probability a T-net message is delivered twice. */
    double dupProb = 0.0;
    /** Probability a T-net message is held back past later traffic
     *  (breaks the per-pair FIFO guarantee for that message). */
    double reorderProb = 0.0;
    /** How long a reordered message is held back. */
    double reorderDelayUs = 50.0;

    /** Probability an MSC+ queue push is forced to spill to DRAM. */
    double overflowProb = 0.0;
    /** Probability a transfer DMA takes an injected MMU page fault. */
    double pageFaultProb = 0.0;
    /** Upper bound of uniform extra latency per hardware event. */
    double jitterMaxUs = 0.0;
    /** Probability a T-net message has one payload byte flipped. */
    double corruptProb = 0.0;

    /**
     * Cap on messages the injector may hold in flight per destination
     * cell for duplicate/reorder injection. A would-be injection past
     * the cap is skipped and counted as an eviction, so a hostile
     * plan cannot grow the holding state without bound. Not a fault
     * mechanism itself (excluded from any()).
     */
    int maxHeldPerCell = 32;

    /** Declare one cell dead at a point in simulated time. */
    struct CellKill
    {
        CellId cell = 0;
        double atUs = 0.0;
    };

    /** Cells to kill during the run (fail-stop, no recovery). */
    std::vector<CellKill> kills;

    /** @return true when any fault mechanism is enabled. */
    bool
    any() const
    {
        return dropProb > 0 || dupProb > 0 || reorderProb > 0 ||
               overflowProb > 0 || pageFaultProb > 0 ||
               jitterMaxUs > 0 || corruptProb > 0 || !kills.empty();
    }

    /** Diagnostic one-liner ("drop=0.02 seed=7"). */
    std::string describe() const;

    // -- presets used by the stress harness ----------------------------

    static FaultPlan drops(std::uint64_t seed, double p = 0.02);
    static FaultPlan duplicates(std::uint64_t seed, double p = 0.02);
    static FaultPlan reorders(std::uint64_t seed, double p = 0.05);
    static FaultPlan overflows(std::uint64_t seed, double p = 0.5);
    static FaultPlan pageFaults(std::uint64_t seed, double p = 0.02);
    static FaultPlan jitter(std::uint64_t seed, double maxUs = 20.0);
    static FaultPlan corrupts(std::uint64_t seed, double p = 0.02);
    /** The reliable-layer acceptance plan: 2% drop + 1% dup +
     *  2% reorder, all at once. */
    static FaultPlan lossy(std::uint64_t seed);
    /** The fault-drill plan: fail-stop one cell at @p atUs. */
    static FaultPlan kill_cell(std::uint64_t seed, CellId cell,
                               double atUs);
    /** Everything at once (drop+dup+reorder+overflow+fault+jitter). */
    static FaultPlan chaos(std::uint64_t seed);
};

/** Counts of every fault actually injected (observability). */
struct FaultStats
{
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t reorders = 0;
    std::uint64_t forcedSpills = 0;
    std::uint64_t injectedPageFaults = 0;
    std::uint64_t jitteredEvents = 0;
    std::uint64_t corruptions = 0;
    Tick jitterTicks = 0;

    /** Total number of injected faults of any kind. */
    std::uint64_t
    total() const
    {
        return drops + duplicates + reorders + forcedSpills +
               injectedPageFaults + corruptions;
    }
};

/**
 * The decision engine behind a FaultPlan. One instance per Machine;
 * hardware models hold a pointer and consult it at their decision
 * points. A null pointer or an inactive injector means no faults and
 * no RNG consumption.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan = FaultPlan{});

    /** Replace the plan and restart the RNG stream. */
    void reset(FaultPlan plan);

    const FaultPlan &plan() const { return fp; }

    /** @return true when any fault mechanism is enabled. */
    bool active() const { return armed; }

    // -- decision points -----------------------------------------------
    // Each draws from the RNG only when its mechanism is enabled, so
    // plans that enable one mechanism do not perturb the stream (or
    // the behaviour) of the others.

    /** T-net: should this message be dropped? */
    bool drop_message();

    /** T-net: should this message be delivered twice? */
    bool duplicate_message();

    /** T-net: should this message be held back (reordered)? */
    bool reorder_message();

    /** Extra hold-back for a reordered message. */
    Tick reorder_delay() const;

    /** T-net: should this message have a payload byte flipped? */
    bool corrupt_message();

    /** Which byte of a @p size-byte payload to flip (size > 0). */
    std::size_t corrupt_index(std::size_t size);

    // -- bounded duplicate/reorder holding accounting ------------------
    // The T-net keeps duplicated and reordered messages in flight as
    // scheduled events; the injector bounds how many may be held per
    // destination cell so a hostile plan cannot grow memory without
    // bound. try_hold() admits (or refuses, counting an eviction) one
    // held message; release_hold() retires it at delivery time.

    /** What a held message was held for. */
    enum class HoldKind
    {
        duplicate,
        reorder,
    };

    /** Size the per-cell hold-stat table (stable addresses). */
    void set_cells(int cells);

    /**
     * Try to admit one held message for @p dst. @return false when
     * the cell is at plan().maxHeldPerCell — the injection must be
     * skipped; the eviction is counted under the cell's HoldStats.
     */
    bool try_hold(CellId dst, HoldKind kind);

    /** Retire one held message for @p dst (delivery completed). */
    void release_hold(CellId dst);

    /** Per-cell holding-buffer occupancy and eviction counts. */
    struct HoldStats
    {
        std::uint64_t held = 0;
        std::uint64_t heldHighWater = 0;
        std::uint64_t dupEvictions = 0;
        std::uint64_t reorderEvictions = 0;
    };

    /** Hold stats for @p cell (valid after set_cells()). */
    const HoldStats &hold_stats(CellId cell) const;

    /** MSC+: should this queue push be forced to spill to DRAM? */
    bool force_overflow();

    /** DMA: should this transfer take an injected page fault? */
    bool inject_page_fault();

    /** Event kernel: extra latency for one hardware event. */
    Tick jitter();

    const FaultStats &stats() const { return faultStats; }

  private:
    bool roll(double prob);

    FaultPlan fp;
    /** One machine-wide RNG stream drawn from every shard: decision
     *  points lock so concurrent draws stay well-defined (draw
     *  *order* across shards is scheduler-dependent — the reason the
     *  deterministic kernel mode serializes execution). */
    mutable std::mutex mu;
    Random rng;
    bool armed = false;
    FaultStats faultStats;
    std::vector<HoldStats> holdStats;
};

} // namespace ap::sim

#endif // AP_SIM_FAULT_HH
