/**
 * @file
 * Pooled event representation for the simulation kernels.
 *
 * Two pieces, shared by the sequential Simulator and every
 * ShardedSimulator shard (sim/ladderq.hh ties them together):
 *
 *   EventFn   A move-only, small-buffer-optimized callable replacing
 *             the per-event std::function<void()>. Closures up to
 *             inline_capacity bytes live inside the event node; only
 *             oversized or throwing-move captures fall back to the
 *             heap (counted, so the zero-allocation CI assertion can
 *             see them).
 *
 *   EventPool A freelist + arena for EventNode. Nodes are carved from
 *             block allocations and recycled forever; after warmup a
 *             steady-state simulation schedules events without
 *             touching the host allocator. Hits (freelist reuse) and
 *             misses (fresh carve / new block) feed the sim.alloc.*
 *             stats subtree.
 *
 * Neither type is thread-safe on its own: a pool is owned by exactly
 * one queue, and every queue is only touched by one thread at a time
 * (the sequential kernel trivially; shard queues by the owning worker
 * during rounds and by the coordinator at barriers, ordered by the
 * round handshake).
 */

#ifndef AP_SIM_EVENT_HH
#define AP_SIM_EVENT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/types.hh"

namespace ap::sim
{

/** Process-global count of EventFn closures that spilled to the
 *  heap (capture too large for the inline buffer). Monotonic;
 *  steady-state simulation must not grow it. */
std::uint64_t eventfn_heap_allocs();

namespace detail
{
extern std::atomic<std::uint64_t> eventFnHeapAllocs;
} // namespace detail

/**
 * Move-only type-erased void() callable with a fixed inline buffer.
 *
 * Unlike std::function this never copies the target, and the common
 * case (a lambda capturing a Message, a Command, or a handful of
 * pointers) is stored inline in the event node — no allocation on
 * the scheduling hot path.
 */
class EventFn
{
  public:
    /** Inline closure budget. Sized for the fattest hot-path
     *  capture (a lambda holding a net::Message by value); checked
     *  by static_asserts at the hot call sites. */
    static constexpr std::size_t inline_capacity = 192;

    /** True when callables of type F are stored inline. */
    template <typename F>
    static constexpr bool
    fits()
    {
        return sizeof(F) <= inline_capacity &&
               alignof(F) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<F>;
    }

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fits<Fn>()) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            ops = ops_inline<Fn>();
        } else {
            auto *p = new Fn(std::forward<F>(f));
            ::new (static_cast<void *>(buf)) Fn *(p);
            ops = ops_heap<Fn>();
            detail::eventFnHeapAllocs.fetch_add(
                1, std::memory_order_relaxed);
        }
    }

    EventFn(EventFn &&o) noexcept
    {
        if (o.ops) {
            o.ops->relocate(buf, o.buf);
            ops = o.ops;
            o.ops = nullptr;
        }
    }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            if (o.ops) {
                o.ops->relocate(buf, o.buf);
                ops = o.ops;
                o.ops = nullptr;
            }
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** Destroy the target (no-op when empty). */
    void
    reset()
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

    explicit operator bool() const { return ops != nullptr; }

    void operator()() { ops->invoke(buf); }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static const Ops *
    ops_inline()
    {
        static constexpr Ops ops = {
            [](void *p) { (*static_cast<Fn *>(p))(); },
            [](void *dst, void *src) {
                ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                static_cast<Fn *>(src)->~Fn();
            },
            [](void *p) { static_cast<Fn *>(p)->~Fn(); },
        };
        return &ops;
    }

    template <typename Fn>
    static const Ops *
    ops_heap()
    {
        static constexpr Ops ops = {
            [](void *p) { (**static_cast<Fn **>(p))(); },
            [](void *dst, void *src) {
                ::new (dst) Fn *(*static_cast<Fn **>(src));
            },
            [](void *p) { delete *static_cast<Fn **>(p); },
        };
        return &ops;
    }

    alignas(std::max_align_t) unsigned char buf[inline_capacity];
    const Ops *ops = nullptr;
};

/** One scheduled event. Lives in an EventPool block; `next` chains
 *  freelist slots and ladder-queue bucket membership. */
struct EventNode
{
    Tick when = 0;
    std::uint64_t seq = 0;
    int affinity = 0;
    EventNode *next = nullptr;
    EventFn fn;
};

/** EventPool counters, surfaced as sim.alloc.event.*. */
struct EventPoolStats
{
    std::uint64_t hits = 0;   ///< acquires served from the freelist
    std::uint64_t misses = 0; ///< acquires that carved a fresh node
    std::uint64_t blocks = 0; ///< block allocations (malloc calls)
};

/**
 * Arena + freelist of EventNode. acquire() recycles released nodes;
 * only growth past the high-water mark allocates (one block of
 * block_nodes at a time).
 */
class EventPool
{
  public:
    static constexpr std::size_t block_nodes = 256;

    EventPool() = default;
    EventPool(EventPool &&) = default;
    EventPool &operator=(EventPool &&) = default;
    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;

    EventNode *
    acquire(Tick when, std::uint64_t seq, int affinity, EventFn fn)
    {
        EventNode *n;
        if (freeHead) {
            n = freeHead;
            freeHead = n->next;
            ++st.hits;
        } else {
            if (bump == block_nodes) {
                blocks.push_back(
                    std::make_unique<EventNode[]>(block_nodes));
                bump = 0;
                ++st.blocks;
            }
            n = &blocks.back()[bump++];
            ++st.misses;
        }
        n->when = when;
        n->seq = seq;
        n->affinity = affinity;
        n->next = nullptr;
        n->fn = std::move(fn);
        return n;
    }

    /** Return @p n to the freelist, destroying its closure now (the
     *  closure may own pooled payload buffers that must go home). */
    void
    release(EventNode *n)
    {
        n->fn.reset();
        n->next = freeHead;
        freeHead = n;
    }

    const EventPoolStats &stats() const { return st; }

  private:
    std::vector<std::unique_ptr<EventNode[]>> blocks;
    EventNode *freeHead = nullptr;
    std::size_t bump = block_nodes; ///< next fresh slot in back block
    EventPoolStats st;
};

/** Aggregated kernel allocation counters (sim.alloc.*). */
struct SimAllocStats
{
    std::uint64_t poolHits = 0;
    std::uint64_t poolMisses = 0;
    std::uint64_t poolBlocks = 0;
    /** Process-global EventFn heap spills (see eventfn_heap_allocs). */
    std::uint64_t fnHeap = 0;
};

} // namespace ap::sim

#endif // AP_SIM_EVENT_HH
