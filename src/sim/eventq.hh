/**
 * @file
 * Discrete-event queue and simulator core.
 *
 * Both layers of the reproduction sit on this kernel: the functional
 * AP1000+ machine (message deliveries, DMA completions, interrupt
 * service) and MLSim's trace replay. Determinism is load-bearing:
 * events at the same tick fire in insertion order, so a given
 * workload always produces the same timeline and the same trace.
 *
 * The base Simulator is the sequential kernel. Its scheduling entry
 * points are virtual so the sharded parallel kernel (sim/shardq.hh)
 * can stand in behind the same reference; every event additionally
 * carries an *affinity* — an opaque small integer (the functional
 * machine uses the destination cell id) that names which logical
 * timeline the event belongs to. The sequential kernel only records
 * affinity (for tick histories); the sharded kernel uses it to route
 * events to shards.
 *
 * Hot-path machinery (shared with the sharded kernel — see
 * DESIGN.md "Hot paths"): pending events live in a ladder queue
 * (sim/ladderq.hh) of pooled nodes (sim/event.hh), and handlers are
 * EventFn small-buffer callables instead of std::function, so
 * steady-state scheduling allocates nothing.
 */

#ifndef AP_SIM_EVENTQ_HH
#define AP_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "sim/event.hh"
#include "sim/ladderq.hh"

namespace ap::sim
{

/**
 * An order-sensitive digest of an executed event sequence.
 *
 * Differential determinism tests attach one of these to two kernels
 * (sequential and sharded-deterministic) running the same workload
 * and compare digests: every executed event folds its (tick,
 * affinity) pair into an FNV-1a hash *in execution order*, so any
 * reordering, loss, duplication or retiming of events changes the
 * digest. Optionally the raw (tick, affinity) log is kept (bounded)
 * so a divergence can be localized instead of just detected.
 */
class TickHistory
{
  public:
    /** Fold one executed event into the digest. */
    void
    record(Tick when, int affinity)
    {
        ++numEvents;
        fold(when);
        fold(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(affinity)));
        if (logCap > 0) {
            if (logBuf.size() < logCap)
                logBuf.emplace_back(when, affinity);
            else
                wasTruncated = true;
        }
    }

    /** Order-sensitive digest over every recorded event. */
    std::uint64_t hash() const { return state; }

    /** Number of events recorded. */
    std::uint64_t events() const { return numEvents; }

    /** Keep the first @p cap raw (tick, affinity) pairs. */
    void set_keep_log(std::size_t cap) { logCap = cap; }

    /** The retained raw log (first set_keep_log() entries). */
    const std::vector<std::pair<Tick, int>> &log() const
    {
        return logBuf;
    }

    /**
     * True when record() dropped entries past the log capacity —
     * the retained log is a prefix, not the whole run. Localization
     * tooling must widen the capacity rather than conclude the
     * histories converge where the log stops.
     */
    bool truncated() const { return wasTruncated; }

    /** "events=N hash=0x..." — the one-line comparable digest
     *  (suffixed with the kept/total log count when truncated). */
    std::string digest() const;

    /** Reset to the empty history (keeps the log capacity). */
    void
    reset()
    {
        state = fnv_offset;
        numEvents = 0;
        logBuf.clear();
        wasTruncated = false;
    }

    bool
    operator==(const TickHistory &o) const
    {
        return state == o.state && numEvents == o.numEvents;
    }

  private:
    static constexpr std::uint64_t fnv_offset =
        0xcbf29ce484222325ull;
    static constexpr std::uint64_t fnv_prime = 0x100000001b3ull;

    void
    fold(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            state ^= (v >> (8 * i)) & 0xff;
            state *= fnv_prime;
        }
    }

    std::uint64_t state = fnv_offset;
    std::uint64_t numEvents = 0;
    std::size_t logCap = 0;
    bool wasTruncated = false;
    std::vector<std::pair<Tick, int>> logBuf;
};

/**
 * The event-driven simulator. One instance per simulated machine.
 */
class Simulator
{
  public:
    Simulator() = default;
    virtual ~Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** @return the current simulated time. */
    virtual Tick now() const { return currentTick; }

    /**
     * Schedule @p fn to run at absolute time @p when, inheriting the
     * affinity of the event currently executing (machine components
     * scheduling follow-ups for their own cell need no annotation).
     * @param when must not be in the past.
     */
    virtual void schedule(Tick when, EventFn fn);

    /**
     * Schedule @p fn at @p when on behalf of timeline @p affinity —
     * the cross-timeline entry point (message deliveries name the
     * destination cell, barrier releases the released cell). The
     * sequential kernel records the affinity; the sharded kernel
     * additionally routes the event to that timeline's shard.
     * Negative affinities mean "no particular timeline".
     */
    virtual void schedule_for(int affinity, Tick when, EventFn fn);

    /**
     * Schedule @p fn to run @p delta ticks from now. Relative delays
     * model hardware latencies, so this is the hook point for fault
     * plans that jitter event timing: when a jitter hook is
     * installed, a bounded extra delay is added to @p delta.
     */
    void
    schedule_after(Tick delta, EventFn fn)
    {
        if (jitterHook)
            delta += jitterHook(delta);
        schedule(now() + delta, std::move(fn));
    }

    /** schedule_after with an explicit timeline (see schedule_for). */
    void
    schedule_after_for(int affinity, Tick delta, EventFn fn)
    {
        if (jitterHook)
            delta += jitterHook(delta);
        schedule_for(affinity, now() + delta, std::move(fn));
    }

    /**
     * Install (or clear, with nullptr) a latency jitter hook applied
     * to every schedule_after() delay. The hook returns extra ticks
     * to add. Absolute-time schedule() calls are never jittered, so
     * callers that manage their own serialization timelines (the
     * T-net FIFO clamp, receive-DMA busy tracking, process wakeups)
     * keep their invariants.
     */
    void
    set_delay_jitter(std::function<Tick(Tick)> hook)
    {
        jitterHook = std::move(hook);
    }

    /**
     * Attach a tick-history recorder (nullptr detaches). Every
     * executed event folds (tick, affinity) into it in execution
     * order; the recorder must outlive the run.
     */
    virtual void set_history(TickHistory *h) { history = h; }

    /** Run events until the queue drains. @return final time. */
    virtual Tick run();

    /**
     * Run events with timestamps <= @p limit; the clock stops at the
     * last executed event (or stays put if none qualify).
     * @return the simulated time afterwards.
     */
    virtual Tick run_until(Tick limit);

    /** Execute a single event. @return false when the queue is empty. */
    virtual bool step();

    /** @return true when no events are pending. */
    virtual bool empty() const { return queue.empty(); }

    /** @return number of pending events. */
    virtual std::size_t pending() const { return queue.size(); }

    /** @return total number of events executed so far. */
    virtual std::uint64_t executed() const { return numExecuted; }

    /** Kernel allocation counters (event-node pool + EventFn heap
     *  spills) — the sim.alloc.* feed. */
    virtual SimAllocStats alloc_stats() const;

    /** Affinity of the event currently executing (0 at rest). */
    int current_affinity() const { return currentAffinity; }

  protected:
    std::function<Tick(Tick)> jitterHook;
    TickHistory *history = nullptr;

  private:
    LadderQueue queue;
    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
    int currentAffinity = 0;
};

} // namespace ap::sim

#endif // AP_SIM_EVENTQ_HH
