/**
 * @file
 * Discrete-event queue and simulator core.
 *
 * Both layers of the reproduction sit on this kernel: the functional
 * AP1000+ machine (message deliveries, DMA completions, interrupt
 * service) and MLSim's trace replay. Determinism is load-bearing:
 * events at the same tick fire in insertion order, so a given
 * workload always produces the same timeline and the same trace.
 */

#ifndef AP_SIM_EVENTQ_HH
#define AP_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/types.hh"

namespace ap::sim
{

/**
 * The event-driven simulator. One instance per simulated machine.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return currentTick; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @param when must not be in the past.
     */
    void schedule(Tick when, std::function<void()> fn);

    /**
     * Schedule @p fn to run @p delta ticks from now. Relative delays
     * model hardware latencies, so this is the hook point for fault
     * plans that jitter event timing: when a jitter hook is
     * installed, a bounded extra delay is added to @p delta.
     */
    void
    schedule_after(Tick delta, std::function<void()> fn)
    {
        if (jitterHook)
            delta += jitterHook(delta);
        schedule(currentTick + delta, std::move(fn));
    }

    /**
     * Install (or clear, with nullptr) a latency jitter hook applied
     * to every schedule_after() delay. The hook returns extra ticks
     * to add. Absolute-time schedule() calls are never jittered, so
     * callers that manage their own serialization timelines (the
     * T-net FIFO clamp, receive-DMA busy tracking, process wakeups)
     * keep their invariants.
     */
    void
    set_delay_jitter(std::function<Tick(Tick)> hook)
    {
        jitterHook = std::move(hook);
    }

    /** Run events until the queue drains. @return final time. */
    Tick run();

    /**
     * Run events with timestamps <= @p limit; the clock stops at the
     * last executed event (or stays put if none qualify).
     * @return the simulated time afterwards.
     */
    Tick run_until(Tick limit);

    /** Execute a single event. @return false when the queue is empty. */
    bool step();

    /** @return true when no events are pending. */
    bool empty() const { return queue.empty(); }

    /** @return number of pending events. */
    std::size_t pending() const { return queue.size(); }

    /** @return total number of events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> queue;
    std::function<Tick(Tick)> jitterHook;
    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace ap::sim

#endif // AP_SIM_EVENTQ_HH
