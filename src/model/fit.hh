/**
 * @file
 * Extra-P-style scaling-law fitting over bench sweep points.
 *
 * The measurement half of the repo (bench sweeps, the stats registry,
 * the perf timeline) answers "what did this run cost"; this library
 * answers "how does that cost *scale*". Following the Extra-P
 * performance-model normal form, a metric y measured at parameter
 * values x is fitted to single-term hypotheses
 *
 *     y(x) ~= c + a * x^i * log2(x)^j
 *
 * where (i, j) ranges over a small lattice of candidate exponents
 * (i in {-2 .. 3} in quarter/half steps, j in {0, 1, 2}) plus the
 * pure-constant hypothesis a = 0. Each candidate is solved in closed
 * form (2x2 weighted normal equations); the *selected* model is the
 * candidate with the smallest leave-one-out cross-validated error, so
 * a term must predict held-out points better than the constant model
 * to be chosen at all — noise does not grow exponents.
 *
 * Weighted (relative) least squares is the default: sweep metrics
 * span decades (a 64 B PUT and a 1 MB PUT differ by ~1000x in
 * latency), and unweighted residuals would fit only the largest
 * points. Weights 1/y^2 make every point count by its relative error,
 * which is also the quantity the divergence gate (tools/
 * model_check.py) thresholds.
 *
 * tests/test_model.cc pins the selection behavior on synthetic data
 * (constant, linear, n log n, noisy quadratic, inverse square root,
 * single point) including cross-validation rejecting overfit terms.
 */

#ifndef AP_MODEL_FIT_HH
#define AP_MODEL_FIT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace ap::model
{

/** One sweep observation: metric value @p y at parameter value @p x. */
struct Point
{
    double x = 0.0;
    double y = 0.0;
};

/** One candidate scaling term g(x) = x^exp * log2(x)^logPow. */
struct Term
{
    double exp = 0.0;
    int logPow = 0;

    /** g(x); requires x > 0. */
    double eval(double x) const;

    /** "n^1.5*log2(n)" — empty for the constant term. */
    std::string text(const std::string &var = "n") const;
};

/** Fitting knobs; the defaults are the committed-model settings. */
struct FitOptions
{
    /**
     * Relative (1/y^2-weighted) least squares. Off means plain
     * unweighted residuals — useful when y legitimately crosses zero.
     */
    bool relative = true;

    /**
     * How much better (in cross-validated RMSE) a term model must be
     * than the constant hypothesis to displace it. 1.05 = 5% better;
     * guards against noise-grown exponents on flat data.
     */
    double termAdvantage = 1.05;

    /** Candidate exponents; empty selects the stock lattice. */
    std::vector<double> exponents;
    /** Candidate log2 powers; empty selects {0, 1, 2}. */
    std::vector<int> logPowers;

    /** The stock exponent lattice (quarter/half steps in [-2, 3]). */
    static const std::vector<double> &default_exponents();
    static const std::vector<int> &default_log_powers();
};

/** A fitted scaling model y(x) = c + a * g(x). */
struct Fit
{
    double c = 0.0;           ///< constant component
    double a = 0.0;           ///< term coefficient (0 when constant)
    Term term;                ///< the selected term (if !constant)
    bool constant = true;     ///< pure-constant model selected

    double r2 = 0.0;          ///< coefficient of determination
    double adjR2 = 0.0;       ///< adjusted for parameter count
    /** Root-mean-square *relative* residual over the training points
     *  (fraction, not percent): the model's own error envelope. */
    double rmseRel = 0.0;
    /** Leave-one-out cross-validated relative RMSE; equals rmseRel
     *  when there were too few points to cross-validate. */
    double cvRmseRel = 0.0;
    std::size_t points = 0;   ///< observations fitted

    /** Model prediction at @p x. */
    double eval(double x) const;

    /** "2.9e+06 * n^-0.50 + 1.2e+03" (compact, for tables). */
    std::string formula(const std::string &var = "n") const;

    /** "events_per_sec ~= <formula>  (R2=0.993, cv-rmse=3.1%, n=8)" */
    std::string text(const std::string &metric,
                     const std::string &var = "n") const;
};

/**
 * Fit the best single-term scaling model to @p pts.
 *
 * Requires every x > 0 (the term lattice takes log2(x)). Degenerate
 * inputs degrade gracefully: no points -> zero constant; fewer than
 * three distinct x -> constant through the weighted mean (a term
 * interpolates two points exactly whatever its exponent, so the
 * scaling class would be unidentifiable).
 */
Fit fit_scaling(const std::vector<Point> &pts,
                const FitOptions &opt = {});

/** Simple unweighted line y = intercept + slope * x (for parameter
 *  derivation, where the exponent is known to be 1). */
struct Line
{
    double intercept = 0.0;
    double slope = 0.0;
    double r2 = 0.0;
};

/** Ordinary least-squares line; with < 2 distinct x the slope is 0
 *  and the intercept is the mean. */
Line linear_fit(const std::vector<Point> &pts);

} // namespace ap::model

#endif // AP_MODEL_FIT_HH
