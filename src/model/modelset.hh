/**
 * @file
 * Sweep datasets and fitted model sets — the documents of the
 * performance-model observatory.
 *
 * Two JSON document kinds round out the pipeline around fit.hh:
 *
 *   SweepData  ("kind": "sweep")  — what bench_sweep measured: one
 *              parameter axis, one row per parameter value with the
 *              metric values and a small registry snapshot taken at
 *              that point (provenance for later re-fits).
 *   SweepModel ("kind": "model")  — what fit_scaling selected: one
 *              fitted scaling law per metric, its quality numbers,
 *              and the divergence envelope the CI gate holds fresh
 *              measurements to (tools/model_check.py).
 *
 * Metrics are classified like tools/bench_compare.py: "sim" metrics
 * are model-time-derived and deterministic, so the envelope is tight
 * and absolute; "host" metrics are wall-clock rates that vary across
 * machines, so the gate compares only their *shape* (values
 * normalized to the smallest-parameter point); "count" metrics gate
 * like sim. The envelope itself is derived from the fit's own
 * training residuals — a model that explains its sweep to 2% carries
 * a tighter envelope than one that explains it to 10% — with a floor
 * so CI jitter on a freshly measured point cannot trip the gate.
 */

#ifndef AP_MODEL_MODELSET_HH
#define AP_MODEL_MODELSET_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/fit.hh"

namespace ap::model
{

/** Gate class of a metric (mirrors tools/bench_compare.py). */
enum class MetricClass
{
    sim,   ///< deterministic model-time metric: absolute envelope
    host,  ///< wall-clock rate: shape-only envelope
    count, ///< integer workload count: absolute envelope
};

const char *to_string(MetricClass c);

/** Classify by metric name (events_per_sec/wall_s -> host, ...). */
MetricClass classify_metric(const std::string &name);

/** One measured sweep row. */
struct SweepPoint
{
    double x = 0.0;
    /** metric name -> value at this parameter value. */
    std::map<std::string, double> metrics;
    /** registry snapshot subset at this point (provenance). */
    std::map<std::string, std::uint64_t> registry;
};

/** One parameterized sweep's measurements. */
struct SweepData
{
    std::string sweep;  ///< sweep name ("putlat", "cells", ...)
    std::string bench;  ///< workload that produced it
    std::string param;  ///< parameter axis name ("bytes", "cells")
    std::string unit;   ///< axis unit for humans ("B", "cells")
    std::vector<SweepPoint> points;

    /**
     * Explicit gate-class overrides. A metric absent here classifies
     * by name; present, the override wins. bench_serve's jobs_per_sec
     * is the motivating case: the name says wall-clock rate, but the
     * value is derived from the simulated makespan and is exactly
     * reproducible, so it deserves the tight sim envelope.
     */
    std::map<std::string, MetricClass> classes;

    /** Points of one metric, sorted by x, skipping absent rows. */
    std::vector<Point> series(const std::string &metric) const;

    /** Every metric name present in any point, sorted. */
    std::vector<std::string> metric_names() const;

    /** The {"kind": "sweep", ...} document. */
    std::string json(bool pretty = true) const;

    /** Write json() to @p path. @return false on I/O error. */
    bool write(const std::string &path) const;
};

/** One metric's fitted scaling law plus its gate envelope. */
struct MetricModel
{
    std::string metric;
    MetricClass cls = MetricClass::sim;
    Fit fit;
    double xmin = 0.0; ///< fitted domain
    double xmax = 0.0;
    /** Allowed |measured - predicted| / |predicted| (fraction). */
    double envelope = 0.25;
};

/** All fitted models of one sweep. */
struct SweepModel
{
    std::string sweep;
    std::string bench;
    std::string param;
    std::string unit;
    std::vector<MetricModel> metrics;

    /** Human-readable fit report, one line per metric. */
    std::string text() const;

    /** The {"kind": "model", ...} document. */
    std::string json(bool pretty = true) const;

    /** Write json() to @p path. @return false on I/O error. */
    bool write(const std::string &path) const;
};

/** Envelope knobs for fit_sweep(). */
struct EnvelopeOptions
{
    /** Envelope floor by class (fraction). */
    double simFloor = 0.10;
    double hostFloor = 0.35;
    double countFloor = 0.10;
    /** Envelope = max(floor, residualFactor * max training
     *  relative residual): a fresh re-measurement of a training
     *  point must always sit inside. */
    double residualFactor = 3.0;
};

/**
 * Fit every metric of @p data and derive per-metric envelopes.
 * Metrics whose class is host are still fitted on raw values; the
 * shape normalization happens in the gate, which divides both model
 * and measurement by their smallest-x value.
 */
SweepModel fit_sweep(const SweepData &data, const FitOptions &fopt = {},
                     const EnvelopeOptions &eopt = {});

} // namespace ap::model

#endif // AP_MODEL_MODELSET_HH
