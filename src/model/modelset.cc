#include "model/modelset.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "base/logging.hh"
#include "obs/json.hh"

namespace ap::model
{

std::vector<Point>
SweepData::series(const std::string &metric) const
{
    std::vector<Point> out;
    for (const SweepPoint &p : points) {
        auto it = p.metrics.find(metric);
        if (it != p.metrics.end())
            out.push_back({p.x, it->second});
    }
    std::sort(out.begin(), out.end(),
              [](const Point &a, const Point &b) { return a.x < b.x; });
    return out;
}

std::vector<std::string>
SweepData::metric_names() const
{
    std::set<std::string> names;
    for (const SweepPoint &p : points)
        for (const auto &[k, v] : p.metrics)
            names.insert(k);
    return {names.begin(), names.end()};
}

std::string
SweepData::json(bool pretty) const
{
    const char *nl = pretty ? "\n" : "";
    const char *sp = pretty ? "  " : "";
    std::string out = strprintf(
        "{%s%s\"kind\": \"sweep\",%s%s\"sweep\": \"%s\",%s"
        "%s\"bench\": \"%s\",%s%s\"param\": \"%s\",%s"
        "%s\"unit\": \"%s\",%s%s\"points\": [",
        nl, sp, nl, sp, obs::json_escape(sweep).c_str(), nl, sp,
        obs::json_escape(bench).c_str(), nl, sp,
        obs::json_escape(param).c_str(), nl, sp,
        obs::json_escape(unit).c_str(), nl, sp);

    std::vector<SweepPoint> rows = points;
    std::sort(rows.begin(), rows.end(),
              [](const SweepPoint &a, const SweepPoint &b) {
                  return a.x < b.x;
              });
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepPoint &p = rows[i];
        out += strprintf("%s%s%s%s{\"x\": %s, \"metrics\": {",
                         i ? "," : "", nl, sp, sp,
                         obs::json_number(p.x).c_str());
        bool first = true;
        for (const auto &[k, v] : p.metrics) {
            out += strprintf("%s\"%s\": %s", first ? "" : ", ",
                             obs::json_escape(k).c_str(),
                             obs::json_number(v).c_str());
            first = false;
        }
        out += "}";
        if (!p.registry.empty()) {
            out += ", \"registry\": {";
            first = true;
            for (const auto &[k, v] : p.registry) {
                out += strprintf(
                    "%s\"%s\": %llu", first ? "" : ", ",
                    obs::json_escape(k).c_str(),
                    static_cast<unsigned long long>(v));
                first = false;
            }
            out += "}";
        }
        out += "}";
    }
    out += strprintf("%s%s]%s}%s", nl, sp, nl, nl);
    return out;
}

bool
SweepData::write(const std::string &path) const
{
    return obs::write_file(path, json(true));
}

const char *
to_string(MetricClass c)
{
    switch (c) {
      case MetricClass::sim:
        return "sim";
      case MetricClass::host:
        return "host";
      case MetricClass::count:
        return "count";
    }
    return "?";
}

MetricClass
classify_metric(const std::string &name)
{
    auto ends_with = [&](const char *suffix) {
        std::string s(suffix);
        return name.size() >= s.size() &&
               name.compare(name.size() - s.size(), s.size(), s) == 0;
    };
    // Host wall-clock rates and times: noisy across machines, gate
    // on shape only (mirrors tools/bench_compare.py HOST_PAT).
    if (ends_with("per_sec") || ends_with("wall_s") ||
        ends_with("wall_ms") || ends_with("speedup") ||
        name == "ratio")
        return MetricClass::host;
    // Model-time quantities: deterministic given the seed.
    if (ends_with("_us") || ends_with("_ms") || ends_with("mb_s") ||
        ends_with("mbps") || ends_with("pct"))
        return MetricClass::sim;
    return MetricClass::count;
}

std::string
SweepModel::text() const
{
    std::string out = strprintf("sweep %s (%s vs %s [%s]):\n",
                                sweep.c_str(), bench.c_str(),
                                param.c_str(), unit.c_str());
    for (const MetricModel &m : metrics)
        out += strprintf(
            "  %-24s %s  [%s, envelope %.0f%%]\n", m.metric.c_str(),
            m.fit.formula(param).c_str(), to_string(m.cls),
            m.envelope * 100.0);
    return out;
}

std::string
SweepModel::json(bool pretty) const
{
    const char *nl = pretty ? "\n" : "";
    const char *sp = pretty ? "  " : "";
    std::string out = strprintf(
        "{%s%s\"kind\": \"model\",%s%s\"sweep\": \"%s\",%s"
        "%s\"bench\": \"%s\",%s%s\"param\": \"%s\",%s"
        "%s\"unit\": \"%s\",%s%s\"metrics\": [",
        nl, sp, nl, sp, obs::json_escape(sweep).c_str(), nl, sp,
        obs::json_escape(bench).c_str(), nl, sp,
        obs::json_escape(param).c_str(), nl, sp,
        obs::json_escape(unit).c_str(), nl, sp);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        const MetricModel &m = metrics[i];
        const Fit &f = m.fit;
        out += strprintf(
            "%s%s%s%s{\"metric\": \"%s\", \"class\": \"%s\", "
            "\"c\": %s, \"a\": %s, \"exp\": %s, \"log\": %d, "
            "\"constant\": %s, \"r2\": %s, \"adj_r2\": %s, "
            "\"rmse_rel\": %s, \"cv_rmse_rel\": %s, "
            "\"points\": %zu, \"xmin\": %s, \"xmax\": %s, "
            "\"envelope\": %s, \"formula\": \"%s\"}",
            i ? "," : "", nl, sp, sp,
            obs::json_escape(m.metric).c_str(), to_string(m.cls),
            obs::json_number(f.c).c_str(),
            obs::json_number(f.a).c_str(),
            obs::json_number(f.term.exp).c_str(), f.term.logPow,
            f.constant ? "true" : "false",
            obs::json_number(f.r2).c_str(),
            obs::json_number(f.adjR2).c_str(),
            obs::json_number(f.rmseRel).c_str(),
            obs::json_number(f.cvRmseRel).c_str(), f.points,
            obs::json_number(m.xmin).c_str(),
            obs::json_number(m.xmax).c_str(),
            obs::json_number(m.envelope).c_str(),
            obs::json_escape(f.formula(param)).c_str());
    }
    out += strprintf("%s%s]%s}%s", nl, sp, nl, nl);
    return out;
}

bool
SweepModel::write(const std::string &path) const
{
    return obs::write_file(path, json(true));
}

SweepModel
fit_sweep(const SweepData &data, const FitOptions &fopt,
          const EnvelopeOptions &eopt)
{
    SweepModel out;
    out.sweep = data.sweep;
    out.bench = data.bench;
    out.param = data.param;
    out.unit = data.unit;
    for (const std::string &name : data.metric_names()) {
        std::vector<Point> pts = data.series(name);
        if (pts.empty())
            continue;
        MetricModel m;
        m.metric = name;
        auto ov = data.classes.find(name);
        m.cls = ov != data.classes.end() ? ov->second
                                         : classify_metric(name);
        m.fit = fit_scaling(pts, fopt);
        m.xmin = pts.front().x;
        m.xmax = pts.back().x;
        // The gate must accept a fresh re-measurement of any
        // training point, so the envelope covers the model's own
        // worst training residual with margin.
        double yScale = 0.0;
        for (const Point &p : pts)
            yScale = std::max(yScale, std::abs(p.y));
        double yFloor = std::max(1e-12, 1e-3 * yScale);
        double worst = 0.0;
        for (const Point &p : pts) {
            double denom =
                std::max(std::abs(m.fit.eval(p.x)), yFloor);
            worst = std::max(worst,
                             std::abs(p.y - m.fit.eval(p.x)) / denom);
        }
        double floor = eopt.simFloor;
        if (m.cls == MetricClass::host)
            floor = eopt.hostFloor;
        else if (m.cls == MetricClass::count)
            floor = eopt.countFloor;
        m.envelope = std::max(floor, eopt.residualFactor * worst);
        out.metrics.push_back(std::move(m));
    }
    return out;
}

} // namespace ap::model
