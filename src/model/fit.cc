#include "model/fit.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace ap::model
{

namespace
{

/**
 * Floor for relative denominators: a fraction of the series' own
 * scale, so a y=0 point (a zero count in an otherwise nonzero
 * series) neither gets near-infinite weight nor an unbounded
 * relative residual.
 */
double
scale_floor(const std::vector<Point> &pts)
{
    double yScale = 0.0;
    for (const Point &p : pts)
        yScale = std::max(yScale, std::abs(p.y));
    return std::max(1e-12, 1e-3 * yScale);
}

/** Relative residual weight of one observation. */
double
weight(double y, bool relative, double yFloor)
{
    if (!relative)
        return 1.0;
    double m = std::max(std::abs(y), yFloor);
    return 1.0 / (m * m);
}

/** Closed-form weighted LSQ of y = c + a*g(x) for one fixed term. */
struct TermSolve
{
    double c = 0.0;
    double a = 0.0;
    bool ok = false;
};

TermSolve
solve(const std::vector<Point> &pts, const Term &t, bool relative,
      double yFloor)
{
    double sw = 0, swg = 0, swgg = 0, swy = 0, swgy = 0;
    for (const Point &p : pts) {
        double g = t.eval(p.x);
        if (!std::isfinite(g))
            return {};
        double w = weight(p.y, relative, yFloor);
        sw += w;
        swg += w * g;
        swgg += w * g * g;
        swy += w * p.y;
        swgy += w * g * p.y;
    }
    TermSolve s;
    double det = sw * swgg - swg * swg;
    // A vanishing determinant means g(x) is (numerically) constant
    // over the sample — the term adds nothing over the intercept.
    if (std::abs(det) <= 1e-12 * std::max(sw * swgg, swg * swg))
        return {};
    s.c = (swy * swgg - swg * swgy) / det;
    s.a = (sw * swgy - swg * swy) / det;
    s.ok = std::isfinite(s.c) && std::isfinite(s.a);
    return s;
}

/** Weighted mean (the constant-model fit). */
double
weighted_mean(const std::vector<Point> &pts, bool relative,
              double yFloor)
{
    double sw = 0, swy = 0;
    for (const Point &p : pts) {
        double w = weight(p.y, relative, yFloor);
        sw += w;
        swy += w * p.y;
    }
    return sw > 0 ? swy / sw : 0.0;
}

/** Root-mean-square relative residual of a predictor over @p pts. */
template <typename Pred>
double
rel_rmse(const std::vector<Point> &pts, Pred pred, double yFloor)
{
    if (pts.empty())
        return 0.0;
    double s = 0;
    for (const Point &p : pts) {
        double m = std::max(std::abs(p.y), yFloor);
        double r = (pred(p.x) - p.y) / m;
        s += r * r;
    }
    return std::sqrt(s / static_cast<double>(pts.size()));
}

/**
 * Leave-one-out cross-validated relative RMSE of one hypothesis:
 * refit without point k, score the prediction of point k, over all k.
 * Infinity when any held-out refit is degenerate.
 */
double
cv_rmse_term(const std::vector<Point> &pts, const Term &t,
             bool relative, double yFloor)
{
    double s = 0;
    for (std::size_t k = 0; k < pts.size(); ++k) {
        std::vector<Point> rest;
        rest.reserve(pts.size() - 1);
        for (std::size_t i = 0; i < pts.size(); ++i)
            if (i != k)
                rest.push_back(pts[i]);
        TermSolve f = solve(rest, t, relative, yFloor);
        if (!f.ok)
            return std::numeric_limits<double>::infinity();
        double m = std::max(std::abs(pts[k].y), yFloor);
        double r = (f.c + f.a * t.eval(pts[k].x) - pts[k].y) / m;
        s += r * r;
    }
    return std::sqrt(s / static_cast<double>(pts.size()));
}

double
cv_rmse_const(const std::vector<Point> &pts, bool relative,
              double yFloor)
{
    double s = 0;
    for (std::size_t k = 0; k < pts.size(); ++k) {
        std::vector<Point> rest;
        rest.reserve(pts.size() - 1);
        for (std::size_t i = 0; i < pts.size(); ++i)
            if (i != k)
                rest.push_back(pts[i]);
        double c = weighted_mean(rest, relative, yFloor);
        double m = std::max(std::abs(pts[k].y), yFloor);
        double r = (c - pts[k].y) / m;
        s += r * r;
    }
    return std::sqrt(s / static_cast<double>(pts.size()));
}

/** Weighted R^2 of a predictor against the weighted mean. */
template <typename Pred>
double
r_squared(const std::vector<Point> &pts, Pred pred, bool relative,
          double yFloor)
{
    double mean = weighted_mean(pts, relative, yFloor);
    double ssRes = 0, ssTot = 0;
    for (const Point &p : pts) {
        double w = weight(p.y, relative, yFloor);
        double r = p.y - pred(p.x);
        double d = p.y - mean;
        ssRes += w * r * r;
        ssTot += w * d * d;
    }
    if (ssTot <= 0)
        return ssRes <= 0 ? 1.0 : 0.0;
    return 1.0 - ssRes / ssTot;
}

} // namespace

double
Term::eval(double x) const
{
    double g = std::pow(x, exp);
    if (logPow != 0)
        g *= std::pow(std::log2(x), logPow);
    return g;
}

std::string
Term::text(const std::string &var) const
{
    if (exp == 0.0 && logPow == 0)
        return "";
    std::string s;
    if (exp != 0.0)
        s = strprintf("%s^%.2f", var.c_str(), exp);
    if (logPow == 1)
        s += strprintf("%slog2(%s)", s.empty() ? "" : "*",
                       var.c_str());
    else if (logPow > 1)
        s += strprintf("%slog2(%s)^%d", s.empty() ? "" : "*",
                       var.c_str(), logPow);
    return s;
}

const std::vector<double> &
FitOptions::default_exponents()
{
    static const std::vector<double> e = {
        -2.0, -1.5, -1.0, -0.75, -0.5, -0.25,
        0.25, 0.5,  0.75, 1.0,   1.25, 1.5,
        2.0,  2.5,  3.0,
    };
    return e;
}

const std::vector<int> &
FitOptions::default_log_powers()
{
    static const std::vector<int> l = {0, 1, 2};
    return l;
}

double
Fit::eval(double x) const
{
    return constant ? c : c + a * term.eval(x);
}

std::string
Fit::formula(const std::string &var) const
{
    if (constant)
        return strprintf("%.4g", c);
    std::string s = strprintf("%.4g * %s", a,
                              term.text(var).c_str());
    // Suppress a negligible intercept: "3.1e6 * n^-0.5" reads better
    // than "... + 1.2e-9" and the gate evaluates eval(), not the text.
    if (std::abs(c) > 1e-6 * std::abs(a))
        s += strprintf(" %s %.4g", c < 0 ? "-" : "+", std::abs(c));
    return s;
}

std::string
Fit::text(const std::string &metric, const std::string &var) const
{
    return strprintf("%s ~= %s  (R2=%.3f, cv-rmse=%.1f%%, n=%zu)",
                     metric.c_str(), formula(var).c_str(), r2,
                     cvRmseRel * 100.0, points);
}

Fit
fit_scaling(const std::vector<Point> &pts, const FitOptions &opt)
{
    Fit out;
    out.points = pts.size();
    if (pts.empty())
        return out;

    for (const Point &p : pts)
        if (!(p.x > 0.0))
            fatal("fit_scaling needs positive parameter values "
                  "(got x=%g)",
                  p.x);

    // Count distinct parameter values: with only one, every term is
    // indistinguishable from the constant.
    std::vector<double> xs;
    for (const Point &p : pts)
        xs.push_back(p.x);
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

    const bool rel = opt.relative;
    const double yFloor = scale_floor(pts);
    out.c = weighted_mean(pts, rel, yFloor);
    out.constant = true;
    auto constPred = [&](double) { return out.c; };
    out.rmseRel = rel_rmse(pts, constPred, yFloor);
    out.r2 = r_squared(pts, constPred, rel, yFloor);
    out.adjR2 = out.r2;
    out.cvRmseRel = pts.size() >= 3
                        ? cv_rmse_const(pts, rel, yFloor)
                        : out.rmseRel;

    // With fewer than 3 distinct x every candidate term interpolates
    // the sample exactly — the scaling class is unidentifiable, so
    // the constant stands.
    if (xs.size() < 3)
        return out;

    const std::vector<double> &exps =
        opt.exponents.empty() ? FitOptions::default_exponents()
                              : opt.exponents;
    const std::vector<int> &logs =
        opt.logPowers.empty() ? FitOptions::default_log_powers()
                              : opt.logPowers;

    // Cross-validation only separates hypotheses with enough points;
    // with 2 distinct x a term fit is exact and CV degenerates, so
    // score by training RMSE there (the term still must beat the
    // constant by the advantage factor).
    const bool canCv = pts.size() >= 4;
    double constScore = canCv ? out.cvRmseRel : out.rmseRel;
    // A constant that already explains the data to float noise can
    // only be "beaten" by terms chasing rounding error.
    if (constScore < 1e-12)
        return out;

    double bestScore = std::numeric_limits<double>::infinity();
    TermSolve bestSolve;
    Term bestTerm;
    for (double e : exps) {
        for (int l : logs) {
            if (e == 0.0 && l == 0)
                continue; // that is the constant hypothesis
            Term t{e, l};
            // log2(x)^l is 0 at x=1 for every l>0 and negative for
            // x<1 at odd powers; the lattice still applies, eval()
            // handles it, but a term that is not finite on the
            // sample is skipped inside solve().
            TermSolve s = solve(pts, t, rel, yFloor);
            if (!s.ok)
                continue;
            double score =
                canCv ? cv_rmse_term(pts, t, rel, yFloor)
                      : rel_rmse(
                            pts,
                            [&](double x) {
                                return s.c + s.a * t.eval(x);
                            },
                            yFloor);
            if (!std::isfinite(score))
                continue;
            // Deterministic tie-break: prefer the simpler term
            // (smaller |exp| + logPow) on near-equal scores.
            if (score < bestScore * (1.0 - 1e-9)) {
                bestScore = score;
                bestSolve = s;
                bestTerm = t;
            }
        }
    }

    if (!bestSolve.ok)
        return out;
    // The term must *cross-validate* better than the constant by the
    // advantage factor, or the constant stands (overfit rejection).
    if (constScore <= bestScore * opt.termAdvantage)
        return out;

    out.constant = false;
    out.c = bestSolve.c;
    out.a = bestSolve.a;
    out.term = bestTerm;
    auto pred = [&](double x) { return out.eval(x); };
    out.rmseRel = rel_rmse(pts, pred, yFloor);
    out.cvRmseRel = canCv ? bestScore : out.rmseRel;
    out.r2 = r_squared(pts, pred, rel, yFloor);
    double n = static_cast<double>(pts.size());
    out.adjR2 = n > 3.0
                    ? 1.0 - (1.0 - out.r2) * (n - 1.0) / (n - 3.0)
                    : out.r2;
    return out;
}

Line
linear_fit(const std::vector<Point> &pts)
{
    Line ln;
    if (pts.empty())
        return ln;
    double n = static_cast<double>(pts.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const Point &p : pts) {
        sx += p.x;
        sy += p.y;
        sxx += p.x * p.x;
        sxy += p.x * p.y;
    }
    double det = n * sxx - sx * sx;
    if (std::abs(det) <= 1e-12 * std::max(n * sxx, sx * sx)) {
        ln.intercept = sy / n;
        return ln;
    }
    ln.intercept = (sy * sxx - sx * sxy) / det;
    ln.slope = (n * sxy - sx * sy) / det;
    double mean = sy / n;
    double ssRes = 0, ssTot = 0;
    for (const Point &p : pts) {
        double r = p.y - (ln.intercept + ln.slope * p.x);
        double d = p.y - mean;
        ssRes += r * r;
        ssTot += d * d;
    }
    ln.r2 = ssTot > 0 ? 1.0 - ssRes / ssTot
                      : (ssRes <= 0 ? 1.0 : 0.0);
    return ln;
}

} // namespace ap::model
