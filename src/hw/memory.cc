#include "hw/memory.hh"

#include "base/logging.hh"

namespace ap::hw
{

CellMemory::CellMemory(std::size_t bytes) : data(bytes, 0)
{
}

void
CellMemory::check(Addr addr, std::size_t len) const
{
    if (addr + len > data.size() || addr + len < addr)
        panic("physical access [%#llx, +%zu) beyond %zu-byte DRAM",
              static_cast<unsigned long long>(addr), len, data.size());
}

void
CellMemory::write(Addr addr, std::span<const std::uint8_t> buf)
{
    check(addr, buf.size());
    std::memcpy(data.data() + addr, buf.data(), buf.size());
}

void
CellMemory::read(Addr addr, std::span<std::uint8_t> buf) const
{
    check(addr, buf.size());
    std::memcpy(buf.data(), data.data() + addr, buf.size());
}

std::uint32_t
CellMemory::read_u32(Addr addr) const
{
    check(addr, 4);
    std::uint32_t v;
    std::memcpy(&v, data.data() + addr, 4);
    return v;
}

void
CellMemory::write_u32(Addr addr, std::uint32_t value)
{
    check(addr, 4);
    std::memcpy(data.data() + addr, &value, 4);
}

std::uint64_t
CellMemory::read_u64(Addr addr) const
{
    check(addr, 8);
    std::uint64_t v;
    std::memcpy(&v, data.data() + addr, 8);
    return v;
}

void
CellMemory::write_u64(Addr addr, std::uint64_t value)
{
    check(addr, 8);
    std::memcpy(data.data() + addr, &value, 8);
}

double
CellMemory::read_f64(Addr addr) const
{
    check(addr, 8);
    double v;
    std::memcpy(&v, data.data() + addr, 8);
    return v;
}

void
CellMemory::write_f64(Addr addr, double value)
{
    check(addr, 8);
    std::memcpy(data.data() + addr, &value, 8);
}

std::uint32_t
CellMemory::fetch_increment_u32(Addr addr)
{
    std::uint32_t v = read_u32(addr);
    write_u32(addr, v + 1);
    return v;
}

void
CellMemory::clear()
{
    std::fill(data.begin(), data.end(), 0);
}

} // namespace ap::hw
