#include "hw/memory.hh"

#if defined(__linux__) || defined(__APPLE__)
#include <sys/mman.h>
#define AP_HW_MEMORY_HAVE_MMAP 1
#endif

#include <atomic>
#include <mutex>
#include <vector>

#include "base/logging.hh"

namespace ap::hw
{

namespace
{

// Images at or above this size come straight from mmap. malloc's own
// mmap threshold is dynamic (glibc raises it after large frees), so a
// program that builds machines repeatedly would silently fall back to
// heap memory where calloc must memset the whole image. Going to the
// kernel directly keeps the first construction O(1): anonymous pages
// are zero-filled lazily on first touch.
constexpr std::size_t mmap_threshold = 256 * 1024;

struct FreeImage
{
    std::uint8_t *ptr;
    std::size_t bytes;
    std::size_t mapBytes;
};

/**
 * Process-wide cache of retired DRAM images, already zeroed by the
 * donating CellMemory destructor. Recycling keeps the pages resident
 * across machine rebuilds: a stress loop that constructs thousands of
 * short-lived machines neither memsets full-capacity images nor
 * re-faults fresh anonymous mappings every iteration — it pays only
 * for the span each cell actually dirtied. Exact-size matching keeps
 * the logic trivial; mixed-size workloads just miss and map fresh.
 *
 * The mutex is uncontended in practice (machines are built and torn
 * down from one thread); it only guards against concurrent machine
 * construction in multi-machine tests.
 */
class ImageCache
{
  public:
    static ImageCache &
    instance()
    {
        static ImageCache cache;
        return cache;
    }

    bool
    pop(std::size_t bytes, FreeImage &out)
    {
        std::lock_guard lock(mu);
        for (std::size_t i = images.size(); i-- > 0;) {
            if (images[i].bytes != bytes)
                continue;
            out = images[i];
            images.erase(images.begin() +
                         static_cast<std::ptrdiff_t>(i));
            totalBytes -= bytes;
            return true;
        }
        return false;
    }

    /** @return false when full; the caller frees the image. */
    bool
    push(FreeImage img)
    {
        std::lock_guard lock(mu);
        if (images.size() >= max_images ||
            totalBytes + img.bytes > max_total_bytes)
            return false;
        images.push_back(img);
        totalBytes += img.bytes;
        return true;
    }

  private:
    /** Retention caps: enough for the biggest churn patterns (a few
     *  small machines rebuilt in a loop) without pinning the RSS of
     *  one large run's worth of cells forever. */
    static constexpr std::size_t max_images = 64;
    static constexpr std::size_t max_total_bytes =
        512ull * 1024 * 1024;

    std::mutex mu;
    std::vector<FreeImage> images;
    std::size_t totalBytes = 0;
};

std::atomic<std::uint64_t> cacheHits{0};
std::atomic<std::uint64_t> cacheMisses{0};

std::uint8_t *
alloc_image(std::size_t bytes, std::size_t &mapBytes)
{
    mapBytes = 0;
#ifdef AP_HW_MEMORY_HAVE_MMAP
    if (bytes >= mmap_threshold) {
        void *p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (p != MAP_FAILED) {
            mapBytes = bytes;
            return static_cast<std::uint8_t *>(p);
        }
        // Fall through to calloc on mmap failure.
    }
#endif
    return static_cast<std::uint8_t *>(
        std::calloc(bytes ? bytes : 1, 1));
}

void
free_image(std::uint8_t *ptr, std::size_t mapBytes)
{
#ifdef AP_HW_MEMORY_HAVE_MMAP
    if (mapBytes) {
        ::munmap(ptr, mapBytes);
        return;
    }
#endif
    std::free(ptr);
}

} // namespace

std::uint64_t
CellMemory::image_cache_hits()
{
    return cacheHits.load(std::memory_order_relaxed);
}

std::uint64_t
CellMemory::image_cache_misses()
{
    return cacheMisses.load(std::memory_order_relaxed);
}

CellMemory::CellMemory(std::size_t bytes) : numBytes(bytes)
{
    FreeImage img;
    if (ImageCache::instance().pop(bytes, img)) {
        cacheHits.fetch_add(1, std::memory_order_relaxed);
        data = img.ptr;
        mapBytes = img.mapBytes;
        return;
    }
    cacheMisses.fetch_add(1, std::memory_order_relaxed);
    data = alloc_image(bytes, mapBytes);
    if (!data)
        panic("cannot allocate %zu-byte DRAM image", bytes);
}

CellMemory::~CellMemory()
{
    // Zero exactly the dirty span so the cached image is
    // indistinguishable from a fresh zero-filled mapping.
    if (dirtyHi > dirtyLo)
        std::memset(data + dirtyLo, 0, dirtyHi - dirtyLo);
    if (!ImageCache::instance().push({data, numBytes, mapBytes}))
        free_image(data, mapBytes);
}

void
CellMemory::check(Addr addr, std::size_t len) const
{
    if (addr + len > numBytes || addr + len < addr)
        panic("physical access [%#llx, +%zu) beyond %zu-byte DRAM",
              static_cast<unsigned long long>(addr), len, numBytes);
}

void
CellMemory::write(Addr addr, std::span<const std::uint8_t> buf)
{
    check(addr, buf.size());
    touch(addr, buf.size());
    std::memcpy(data + addr, buf.data(), buf.size());
}

void
CellMemory::read(Addr addr, std::span<std::uint8_t> buf) const
{
    check(addr, buf.size());
    std::memcpy(buf.data(), data + addr, buf.size());
}

std::uint32_t
CellMemory::read_u32(Addr addr) const
{
    check(addr, 4);
    std::uint32_t v;
    std::memcpy(&v, data + addr, 4);
    return v;
}

void
CellMemory::write_u32(Addr addr, std::uint32_t value)
{
    check(addr, 4);
    touch(addr, 4);
    std::memcpy(data + addr, &value, 4);
}

std::uint64_t
CellMemory::read_u64(Addr addr) const
{
    check(addr, 8);
    std::uint64_t v;
    std::memcpy(&v, data + addr, 8);
    return v;
}

void
CellMemory::write_u64(Addr addr, std::uint64_t value)
{
    check(addr, 8);
    touch(addr, 8);
    std::memcpy(data + addr, &value, 8);
}

double
CellMemory::read_f64(Addr addr) const
{
    check(addr, 8);
    double v;
    std::memcpy(&v, data + addr, 8);
    return v;
}

void
CellMemory::write_f64(Addr addr, double value)
{
    check(addr, 8);
    touch(addr, 8);
    std::memcpy(data + addr, &value, 8);
}

std::uint32_t
CellMemory::fetch_increment_u32(Addr addr)
{
    std::uint32_t v = read_u32(addr);
    write_u32(addr, v + 1);
    return v;
}

void
CellMemory::clear()
{
    std::memset(data, 0, numBytes);
    // The image is all-zero again: the dirty span collapses, so a
    // subsequent destructor does no redundant work.
    dirtyLo = static_cast<std::size_t>(-1);
    dirtyHi = 0;
}

} // namespace ap::hw
