#include "hw/mc.hh"

#include "hw/dma.hh"
#include "obs/debug.hh"

namespace ap::hw
{

Mc::Mc(CellMemory &mem) : mem(mem)
{
}

bool
Mc::increment_flag(Addr addr)
{
    if (addr == no_flag)
        return true;
    Translation t = mmuUnit.translate(addr, true);
    if (!t.valid) {
        ++mcStats.flagFaults;
        AP_DPRINTF(MC, "flag fault at 0x%llx",
                   static_cast<unsigned long long>(addr));
        return false;
    }
    mem.fetch_increment_u32(t.paddr);
    ++mcStats.flagIncrements;
    if (tracer)
        tracer->instant(traceTrack, "flag", "flag_increment");
    AP_DPRINTF(MC, "flag increment at 0x%llx",
               static_cast<unsigned long long>(addr));
    flagCond.notify_all();
    return true;
}

std::uint32_t
Mc::read_flag(Addr addr)
{
    if (addr == no_flag)
        return 0;
    Translation t = mmuUnit.translate(addr, false);
    if (!t.valid) {
        ++mcStats.accessFaults;
        return 0;
    }
    return mem.read_u32(t.paddr);
}

bool
Mc::load(Addr addr, std::span<std::uint8_t> buf)
{
    ++mcStats.loads;
    std::vector<std::uint8_t> tmp;
    DmaResult r = DmaEngine::gather(
        mmuUnit, mem, addr,
        net::StrideSpec::contiguous(
            static_cast<std::uint32_t>(buf.size())),
        tmp);
    if (!r.ok) {
        ++mcStats.accessFaults;
        return false;
    }
    std::copy(tmp.begin(), tmp.end(), buf.begin());
    return true;
}

bool
Mc::store(Addr addr, std::span<const std::uint8_t> buf)
{
    ++mcStats.stores;
    DmaResult r = DmaEngine::scatter(
        mmuUnit, mem, addr,
        net::StrideSpec::contiguous(
            static_cast<std::uint32_t>(buf.size())),
        buf);
    if (!r.ok) {
        ++mcStats.accessFaults;
        return false;
    }
    return true;
}

} // namespace ap::hw
