/**
 * @file
 * The whole machine: cells plus the three networks (Figure 4).
 */

#ifndef AP_HW_MACHINE_HH
#define AP_HW_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "hw/cell.hh"
#include "hw/config.hh"
#include "hw/dsm.hh"
#include "net/bnet.hh"
#include "net/snet.hh"
#include "net/tnet.hh"
#include "net/topology.hh"
#include "sim/eventq.hh"
#include "sim/fault.hh"

namespace ap::hw
{

/** A complete AP1000+ system. */
class Machine
{
  public:
    /** Build the machine described by @p cfg. */
    explicit Machine(MachineConfig cfg);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** The event kernel driving this machine. */
    sim::Simulator &sim() { return simulator; }

    /** Number of cells. */
    int size() const { return static_cast<int>(cells.size()); }

    /** Access one cell. */
    Cell &cell(CellId id);
    const Cell &cell(CellId id) const;

    net::Tnet &tnet() { return tnetNet; }
    net::Bnet &bnet() { return bnetNet; }
    net::Snet &snet() { return snetNet; }
    const net::Torus &topology() const { return tnetNet.topology(); }
    const DsmMap &dsm() const { return dsmMap; }

    const MachineConfig &config() const { return cfg; }

    /** The fault injector built from cfg.faults (inert when the plan
     *  injects nothing). */
    sim::FaultInjector &faults() { return faultInj; }
    const sim::FaultInjector &faults() const { return faultInj; }

    /** Install a PUT/GET page-fault observer on every cell. */
    void set_fault_hook(FaultHook hook);

    /**
     * Render a machine-wide statistics report: network traffic,
     * aggregated MSC+/MC/TLB/ring-buffer counters, and the busiest
     * cells — the post-run dashboard.
     */
    std::string report() const;

  private:
    MachineConfig cfg;
    sim::FaultInjector faultInj;
    sim::Simulator simulator;
    net::Tnet tnetNet;
    net::Bnet bnetNet;
    net::Snet snetNet;
    DsmMap dsmMap;
    std::vector<std::unique_ptr<Cell>> cells;
};

} // namespace ap::hw

#endif // AP_HW_MACHINE_HH
