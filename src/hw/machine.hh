/**
 * @file
 * The whole machine: cells plus the three networks (Figure 4).
 */

#ifndef AP_HW_MACHINE_HH
#define AP_HW_MACHINE_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "hw/cell.hh"
#include "hw/config.hh"
#include "hw/dsm.hh"
#include "net/bnet.hh"
#include "net/reliable.hh"
#include "net/snet.hh"
#include "net/tnet.hh"
#include "net/topology.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "obs/stats_registry.hh"
#include "obs/tracer.hh"
#include "sim/eventq.hh"
#include "sim/fault.hh"

namespace ap::sim
{
class ShardedSimulator;
struct WindowRecord;
}

namespace ap::hw
{

/** A complete AP1000+ system. */
class Machine
{
  public:
    /** Build the machine described by @p cfg. */
    explicit Machine(MachineConfig cfg);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** The event kernel driving this machine (sequential with
     *  cfg.threads == 1, sharded otherwise). */
    sim::Simulator &sim() { return simulator; }

    /** The sharded kernel, or nullptr with cfg.threads == 1. */
    sim::ShardedSimulator *sharded();
    const sim::ShardedSimulator *sharded() const;

    /**
     * Drain the event queue. Equivalent to sim().run(), except that
     * an enabled timeline sampler drives the run in period slices
     * (same event order — the sampler only observes). Drivers that
     * run the machine to completion should call this instead of
     * sim().run() so --timeline-out works everywhere.
     */
    void run_to_completion();

    /** Number of cells. */
    int size() const { return static_cast<int>(cells.size()); }

    /** Access one cell. */
    Cell &cell(CellId id);
    const Cell &cell(CellId id) const;

    net::Tnet &tnet() { return tnetNet; }
    net::Bnet &bnet() { return bnetNet; }
    net::Snet &snet() { return snetNet; }

    /** The reliable layer, or nullptr when cfg.reliableNet is off. */
    net::ReliableNet *reliable() { return rnetNet.get(); }
    const net::ReliableNet *reliable() const { return rnetNet.get(); }
    const net::Torus &topology() const { return tnetNet.topology(); }
    const DsmMap &dsm() const { return dsmMap; }

    const MachineConfig &config() const { return cfg; }

    /** The fault injector built from cfg.faults (inert when the plan
     *  injects nothing). */
    sim::FaultInjector &faults() { return faultInj; }
    const sim::FaultInjector &faults() const { return faultInj; }

    /** Install a PUT/GET page-fault observer on every cell. */
    void set_fault_hook(FaultHook hook);

    // -- fail-stop cells -----------------------------------------------

    /** @return true when @p id has been declared failed. */
    bool
    cell_failed(CellId id) const
    {
        return cellFailed[static_cast<std::size_t>(id)] != 0;
    }

    /** @return true when any cell has been declared failed. */
    bool any_failed() const { return cellKills.load() > 0; }

    /**
     * Declare @p id failed (fail-stop, idempotent): its traffic is
     * discarded, queued reliable-layer messages to/from it abort,
     * and barriers release without it. Scheduled automatically for
     * every FaultPlan::kills entry.
     */
    void fail_cell(CellId id);

    /**
     * Install a fail-stop observer: called at the end of every
     * effective fail_cell() with the dead cell's id (on the dying
     * cell's shard under the sharded kernel). One hook; set it while
     * the machine is quiescent, pass nullptr to detach. The serving
     * layer uses it to doom and reschedule affected gangs.
     */
    void set_kill_hook(std::function<void(CellId)> hook);

    /**
     * Count one exhausted communication retry budget. Called by the
     * hardened runtime paths just before they throw their give-up
     * CommError; surfaces as `comm.retry.giveup` in the registry.
     */
    void note_retry_giveup() { ++retryGiveups; }

    // -- watchdog wait registry ----------------------------------------

    /** What one cell is currently parked on (for wait_graph()). */
    struct WaitInfo
    {
        const char *what = nullptr; ///< "wait_flag", "ack", ...
        Addr addr = 0;
        std::uint64_t target = 0;
        Tick since = 0;
    };

    /** Record that @p id is blocked on @p what (watchdog support). */
    void
    set_wait(CellId id, const char *what, Addr addr,
             std::uint64_t target)
    {
        WaitInfo &w = waitInfos[static_cast<std::size_t>(id)];
        w.what = what;
        w.addr = addr;
        w.target = target;
        w.since = simulator.now();
    }

    /** Clear @p id 's wait record (the wait completed). */
    void
    clear_wait(CellId id)
    {
        waitInfos[static_cast<std::size_t>(id)].what = nullptr;
    }

    /**
     * Render a machine-wide wait-graph dump: every cell's current
     * blocked operation with the live value of the awaited flag/ack
     * counter, plus failed cells. Attached to watchdog CommErrors so
     * a stuck run explains itself instead of hanging.
     */
    std::string wait_graph();

    /**
     * Render a machine-wide statistics report: network traffic,
     * aggregated MSC+/MC/TLB/ring-buffer counters, and the busiest
     * cells — the post-run dashboard. Built entirely from registry
     * walks.
     */
    std::string report() const;

    // -- telemetry -----------------------------------------------------

    /**
     * Every component counter/gauge/histogram under hierarchical
     * dotted paths ("cell3.msc.user_queue.spills", "tnet.messages").
     * Populated at construction.
     */
    obs::StatsRegistry &stats_registry() { return statsReg; }
    const obs::StatsRegistry &stats_registry() const { return statsReg; }

    /** Registry rendered as nested JSON. */
    std::string stats_json(bool pretty = true) const;

    /** Registry rendered as a flat text table. */
    std::string stats_text() const;

    /**
     * Write stats_json() to @p path. @return false on I/O error.
     */
    bool dump_stats(const std::string &path) const;

    /**
     * Turn on the cycle-timeline tracer and wire it into every
     * component (networks, MSC+s, MCs, ring buffers). Idempotent;
     * @p capacity bounds the ring buffer on first call.
     */
    void enable_tracing(
        std::size_t capacity = obs::Tracer::default_capacity);

    /** The tracer, or nullptr while tracing is off. */
    obs::Tracer *tracer() { return tracerPtr.get(); }
    const obs::Tracer *tracer() const { return tracerPtr.get(); }

    /**
     * Write the tracer's Chrome trace_event JSON to @p path.
     * @return false when tracing is off or on I/O error.
     */
    bool write_trace(const std::string &path) const;

    // -- continuous perf timeline --------------------------------------

    /**
     * Turn on the timeline sampler: run_to_completion() then samples
     * the stats registry every @p periodUs of model time into a
     * bounded ring (obs/sampler.hh). Idempotent; the first call
     * fixes period and capacity.
     */
    obs::TimelineSampler &enable_timeline(
        double periodUs,
        std::size_t capacity = obs::TimelineSampler::default_capacity);

    /** The sampler, or nullptr while the timeline is off. */
    obs::TimelineSampler *timeline() { return samplerPtr.get(); }
    const obs::TimelineSampler *timeline() const
    {
        return samplerPtr.get();
    }

    /**
     * Write the sampler's timeline JSON to @p path. @return false
     * when the timeline is off or on I/O error.
     */
    bool write_timeline(const std::string &path) const;

    /**
     * Write the sampler's timeline as CSV (one row per sample, one
     * column per series) to @p path. @return false when the timeline
     * is off or on I/O error.
     */
    bool write_timeline_csv(const std::string &path) const;

    // -- causal spans / flight recorder --------------------------------

    /** The causal span layer, wired into every component at
     *  construction (mode from MachineConfig::spanMode). */
    obs::SpanLayer &spans() { return spanLayer; }
    const obs::SpanLayer &spans() const { return spanLayer; }

    /** Switch the span recording mode at runtime (off/flight/full).
     *  Use full before a run that feeds the critical-path
     *  profiler (obs/critpath.hh). */
    void set_span_mode(obs::SpanMode mode)
    {
        spanLayer.set_mode(mode);
    }

    /**
     * The black box: render the merged flight rings (last
     * @p maxPerCell events per cell) as a postmortem text block.
     * When cfg.postmortemOut is set, the full merged rings are also
     * written there as Chrome trace JSON and the path is named in
     * the text. Appended to every CommError the runtime raises.
     */
    std::string postmortem(std::size_t maxPerCell = 8);

    /**
     * Write the merged flight rings as Chrome trace_event JSON to
     * @p path. @return false on I/O error.
     */
    bool dump_flight_recorder(const std::string &path) const;

    /** One-line flight-recorder status (events retained/dropped). */
    std::string flight_report() const;

  private:
    void register_stats();
    void register_kernel_stats();
    void on_window(const sim::WindowRecord &w);

    MachineConfig cfg;
    sim::FaultInjector faultInj;
    /** The kernel chosen by cfg.threads; everything below holds the
     *  `simulator` reference only. */
    std::unique_ptr<sim::Simulator> simOwner;
    sim::Simulator &simulator;
    net::Tnet tnetNet;
    net::Bnet bnetNet;
    net::Snet snetNet;
    std::unique_ptr<net::ReliableNet> rnetNet;
    DsmMap dsmMap;
    /** Payload buffer pools, one per kernel shard (one machine-wide
     *  under the sequential kernel). Declared before `cells` so the
     *  MSC+ pool references outlive their users. */
    std::vector<std::unique_ptr<BufferPool>> payloadPools;
    std::vector<std::unique_ptr<Cell>> cells;
    /** Atomic: written by fail_cell() on the dying cell's shard,
     *  read by liveness checks on every sending cell's shard. */
    std::vector<std::atomic<char>> cellFailed;
    std::vector<WaitInfo> waitInfos;
    std::atomic<std::uint64_t> cellKills{0};
    std::atomic<std::uint64_t> retryGiveups{0};
    std::function<void(CellId)> killHook;
    obs::StatsRegistry statsReg;
    std::unique_ptr<obs::Tracer> tracerPtr;
    std::unique_ptr<obs::TimelineSampler> samplerPtr;
    obs::SpanLayer spanLayer;
};

} // namespace ap::hw

#endif // AP_HW_MACHINE_HH
