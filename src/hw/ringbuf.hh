/**
 * @file
 * Ring buffers: the SEND/RECEIVE receive area (Section 4.3).
 *
 * SEND is a PUT whose destination is the receiving cell's ring buffer
 * rather than a user address. RECEIVE searches the ring buffer and
 * copies the message out to the user area — the intrinsic buffering
 * copy the PUT/GET model exists to avoid. When the buffer fills, the
 * MSC+ interrupts the operating system, which allocates a new buffer
 * (modelled as growth plus a counted interrupt).
 *
 * Vector global reductions read their operands directly out of the
 * ring buffer (peek/consume) without the user-area copy — the paper's
 * optimization for reduction pipelines.
 */

#ifndef AP_HW_RINGBUF_HH
#define AP_HW_RINGBUF_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "base/types.hh"
#include "obs/span.hh"
#include "obs/tracer.hh"
#include "sim/eventq.hh"
#include "sim/process.hh"

namespace ap::hw
{

/** One buffered SEND message. */
struct SendRecord
{
    CellId src = invalid_cell;
    std::int32_t tag = 0;
    std::vector<std::uint8_t> payload;
    /** Causal span trace id of the SEND (obs/span.hh). */
    std::uint64_t traceId = 0;
    /** When the record landed in the ring (set by deposit()). */
    Tick depositedAt = 0;
};

/** Ring buffer statistics. */
struct RingBufferStats
{
    std::uint64_t deposits = 0;
    std::uint64_t receives = 0;
    std::uint64_t copies = 0;        ///< receive-side user copies
    std::uint64_t inPlaceReads = 0;  ///< copy-free consumptions
    std::uint64_t growInterrupts = 0;///< OS buffer reallocation
    std::uint64_t maxDepth = 0;      ///< high-water buffered messages
    std::uint64_t maxBytes = 0;      ///< high-water buffered bytes
};

/** Match-any wildcard for receive filters. */
constexpr CellId any_source = -1;
/** Match-any wildcard for tag filters. */
constexpr std::int32_t any_tag = -1;

/** The circular receive buffer of one cell. */
class RingBuffer
{
  public:
    /** @param capacity_bytes initial payload capacity. */
    explicit RingBuffer(std::size_t capacity_bytes = 64 * 1024);

    /**
     * Deposit an arriving SEND (called by the MSC+ receive path).
     * Grows via a counted OS interrupt when the message doesn't fit.
     */
    void deposit(SendRecord rec);

    /**
     * Blocking receive with an explicit user-area copy. Parks
     * @p proc until a record matching (@p src, @p tag) exists.
     */
    SendRecord receive(CellId src, std::int32_t tag,
                       sim::Process &proc);

    /**
     * Non-blocking probe; fills @p out and returns true on a match.
     */
    bool try_receive(CellId src, std::int32_t tag, SendRecord &out);

    /**
     * Blocking copy-free consumption (vector reductions): identical
     * matching, but counted as an in-place read.
     */
    SendRecord consume_in_place(CellId src, std::int32_t tag,
                                sim::Process &proc);

    /**
     * Deadline-aware blocking take: like receive() (or
     * consume_in_place() when @p in_place), but gives up when
     * @p deadline passes with no matching record — the watchdog's
     * hook into SEND/RECEIVE and reduction waits.
     */
    std::optional<SendRecord> receive_until(CellId src,
                                            std::int32_t tag,
                                            sim::Process &proc,
                                            Tick deadline,
                                            bool in_place);

    /** Messages currently buffered. */
    std::size_t depth() const { return records.size(); }

    /** Payload bytes currently buffered. */
    std::size_t bytes() const { return usedBytes; }

    /** Current capacity (grows on overflow). */
    std::size_t capacity() const { return capacityBytes; }

    const RingBufferStats &stats() const { return rbStats; }

    /** Attach a cycle-timeline tracer (nullptr detaches). */
    void
    set_tracer(obs::Tracer *t, int track)
    {
        tracer = t;
        traceTrack = track;
    }

    /**
     * Attach the machine's span layer (nullptr detaches). @p cell is
     * the owning cell; @p s_im timestamps deposits and matches.
     */
    void
    set_spans(obs::SpanLayer *s, std::int32_t cell,
              sim::Simulator *s_im)
    {
        spans = s;
        spanCell = cell;
        simPtr = s_im;
    }

  private:
    std::optional<std::size_t> find(CellId src, std::int32_t tag) const;
    SendRecord take(std::size_t index);

    std::size_t capacityBytes;
    std::size_t usedBytes = 0;
    std::deque<SendRecord> records;
    sim::Condition arrival;
    RingBufferStats rbStats;
    obs::Tracer *tracer = nullptr;
    int traceTrack = 0;
    obs::SpanLayer *spans = nullptr;
    std::int32_t spanCell = -1;
    sim::Simulator *simPtr = nullptr;
};

} // namespace ap::hw

#endif // AP_HW_RINGBUF_HH
