/**
 * @file
 * Machine configuration: Table 1 specifications plus the hardware
 * timing knobs of the functional AP1000+ model.
 */

#ifndef AP_HW_CONFIG_HH
#define AP_HW_CONFIG_HH

#include <algorithm>
#include <cstddef>
#include <string>

#include "base/types.hh"
#include "net/bnet.hh"
#include "obs/span.hh"
#include "net/reliable.hh"
#include "net/snet.hh"
#include "net/tnet.hh"
#include "sim/fault.hh"

namespace ap::hw
{

/**
 * Recovery policy for blocking PUT/GET completion waits. Disabled by
 * default (timeoutUs = 0): on a fault-free machine the hardware
 * guarantees delivery and the runtime waits unboundedly, exactly as
 * the paper assumes. Under a fault plan the runtime arms timeouts,
 * reissues lost transfers, and surfaces a CommError once the retry
 * budget is spent.
 */
struct RetryPolicy
{
    /** Completion-wait timeout in microseconds; 0 disables. */
    double timeoutUs = 0.0;
    /** Reissue attempts after the first try. */
    int maxRetries = 8;
    /** Per-attempt timeout multiplier (exponential backoff);
     *  values <= 1 mean a flat timeout on every attempt. */
    double backoffFactor = 2.0;
    /** Backoff saturation cap in microseconds; 0 = 8x timeoutUs. */
    double timeoutCapUs = 0.0;
    /**
     * Flag-wait watchdog deadline in microseconds; 0 disables. A
     * blocked flag/ack wait past this deadline raises a typed
     * CommError carrying a machine-wide wait-graph dump instead of
     * hanging forever. Independent of enabled(): the watchdog is
     * useful even when retries are off.
     */
    double watchdogUs = 0.0;

    bool enabled() const { return timeoutUs > 0.0; }
    bool watchdog_enabled() const { return watchdogUs > 0.0; }

    /** Timeout of the @p attempt-th reissue (0 = first try),
     *  backed off exponentially and saturated at the cap. */
    double
    attempt_timeout_us(int attempt) const
    {
        double cap = timeoutCapUs > 0.0 ? timeoutCapUs
                                        : timeoutUs * 8.0;
        double t = timeoutUs;
        double factor = backoffFactor > 1.0 ? backoffFactor : 1.0;
        for (int i = 0; i < attempt && t < cap; ++i)
            t *= factor;
        return std::min(t, cap);
    }
};

/**
 * MSC+/MC timing parameters in microseconds. Defaults model the
 * AP1000+ (hardware message handling): a PUT costs the processor 8
 * store instructions (8 cycles at 50 MHz = 0.16 us, Section 4.1), the
 * DMA setup is 0.5 us (Figure 6 put_dma_set_time) and data streams at
 * the 25 MB/s link rate.
 */
struct HwTimings
{
    /** processor cost to enqueue one 8-word command. */
    double enqueueUs = 0.16;
    /** send DMA setup per command. */
    double dmaSetUs = 0.50;
    /** DMA streaming per payload byte (25 MB/s). */
    double dmaPerByteUs = 0.04;
    /** receive DMA setup per message. */
    double recvDmaSetUs = 0.50;
    /** MC fetch-and-increment of one flag. */
    double flagUpdateUs = 0.04;
    /** OS interrupt servicing a queue refill or fault. */
    double interruptUs = 20.0;
    /** MSC+ bookkeeping to deposit a SEND in the ring buffer. */
    double ringDepositUs = 0.50;
    /** RECEIVE library search of the ring buffer (processor). */
    double receiveSearchUs = 1.00;
    /** RECEIVE user-area copy per byte (processor). */
    double receiveCopyPerByteUs = 0.02;
    /** processor cost of a local communication-register access. */
    double commRegAccessUs = 0.08;
    /** processor cost of issuing a remote load/store (hardware). */
    double remoteAccessIssueUs = 0.04;
    /** processor cost of one flag check (read + compare). */
    double flagCheckUs = 0.10;
    /** processor cost of entering the S-net barrier. */
    double barrierIssueUs = 0.20;
};

/** Full machine configuration (Table 1 plus model knobs). */
struct MachineConfig
{
    /** Number of cells; the real machine scales 4 - 1024. */
    int cells = 64;
    /** DRAM per cell. Real machine: 16 or 64 MB; model default is
     *  smaller so tests stay light. */
    std::size_t memBytesPerCell = 4 * 1024 * 1024;
    /** Processor clock (SuperSPARC, 50 MHz). */
    double clockMhz = 50.0;
    /** Peak MFLOPS per cell (Table 1). */
    double mflopsPerCell = 50.0;
    /** Write-through cache per cell (Table 1: 36 KB). */
    std::size_t cacheBytes = 36 * 1024;
    /** MSC+ command queue capacity in words (Section 4.1: 64). */
    int queueCapacityWords = 64;
    /** Initial ring buffer capacity per cell. */
    std::size_t ringBufferBytes = 256 * 1024;

    net::TnetParams tnet;
    net::BnetParams bnet;
    net::SnetParams snet;
    HwTimings timings;

    /**
     * Host worker threads driving the event kernel. 1 selects the
     * sequential kernel (sim/eventq.hh); N > 1 shards the event
     * queue over min(N, cells) workers with conservative windows
     * (sim/shardq.hh). Cells map to shards in contiguous blocks.
     */
    int threads = 1;
    /**
     * With threads > 1: execute events serially in the sequential
     * kernel's global order while keeping all shard routing and
     * handoff accounting — tick histories and stats dumps become
     * byte-identical to a threads=1 run (see sim/shardq.hh).
     */
    bool deterministic = false;
    /**
     * Conservative lookahead in microseconds. 0 (the default)
     * derives the minimum cross-cell latency from the network
     * parameters: min(T-net prolog + one hop + epilog, B-net
     * prolog, S-net release).
     */
    double lookaheadUs = 0.0;

    /** Fault-injection plan; the default plan injects nothing and
     *  leaves every fast path untouched. */
    sim::FaultPlan faults;
    /** Retry/timeout policy for the runtime's completion waits. */
    RetryPolicy retry;

    /** Stack the reliable-delivery layer (net/reliable.hh) between
     *  the MSC+ and the T-net. Off by default: the paper's T-net is
     *  lossless, and benches measure the layer's overhead. */
    bool reliableNet = false;
    /** Reliable-layer protocol parameters (window, RTO, ...). */
    net::ReliableParams rnet;

    /** Causal span recording mode (obs/span.hh). The flight
     *  recorder is on by default: probes cost a POD ring store. */
    obs::SpanMode spanMode = obs::SpanMode::flight;
    /** Per-cell flight-recorder capacity in span events. */
    std::size_t flightEvents = obs::FlightRecorder::default_capacity;
    /** When set, CommError postmortems also dump the merged flight
     *  rings as Chrome trace JSON to this path. */
    std::string postmortemOut = "";

    /** Peak system GFLOPS (Table 1: 0.2 - 51.2). */
    double
    system_gflops() const
    {
        return cells * mflopsPerCell / 1000.0;
    }

    /** @return the canonical AP1000+ configuration of Table 1. */
    static MachineConfig ap1000_plus(int cells = 64);
};

} // namespace ap::hw

#endif // AP_HW_CONFIG_HH
