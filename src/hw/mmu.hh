/**
 * @file
 * The MC's MMU and TLB.
 *
 * PUT/GET commands carry *logical* addresses; the MSC+ asks the MC to
 * translate them (Section 4.1, "MMU and protection"). The TLB is
 * direct-mapped with 256 entries for 4-kilobyte pages and 64 entries
 * for 256-kilobyte pages. An unmapped logical address is a page
 * fault; during a remote transfer the MSC+ reacts by interrupting the
 * OS and pulling the remainder of the message from the network.
 */

#ifndef AP_HW_MMU_HH
#define AP_HW_MMU_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace ap::hw
{

/** Result of a translation attempt. */
struct Translation
{
    bool valid = false;     ///< false = page fault
    Addr paddr = 0;         ///< physical address when valid
    bool tlbHit = false;    ///< whether the TLB already held the entry
    bool writable = false;  ///< page permits writes
};

/** TLB statistics. */
struct TlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t faults = 0;
};

/**
 * Per-cell page table plus the MC's two direct-mapped TLBs.
 *
 * Pages are mapped explicitly with map(); map_linear() installs the
 * identity mapping the runtime uses by default. Both the paper's page
 * sizes are supported; a mapping chooses its size at map time.
 */
class Mmu
{
  public:
    static constexpr std::size_t small_page_bits = 12;  // 4 KB
    static constexpr std::size_t large_page_bits = 18;  // 256 KB
    static constexpr std::size_t small_tlb_entries = 256;
    static constexpr std::size_t large_tlb_entries = 64;

    Mmu();

    /**
     * Map one page.
     * @param vaddr page-aligned logical address
     * @param paddr page-aligned physical address
     * @param large use a 256 KB page instead of 4 KB
     * @param writable permit stores
     */
    void map(Addr vaddr, Addr paddr, bool large = false,
             bool writable = true);

    /** Remove the mapping containing @p vaddr (if any). */
    void unmap(Addr vaddr);

    /**
     * Identity-map [0, bytes) with 4 KB pages (a final partial page
     * is rounded up).
     */
    void map_linear(std::size_t bytes, bool writable = true);

    /**
     * Translate a logical address, updating TLB state and stats.
     * @param vaddr logical address
     * @param write whether the access is a store
     */
    Translation translate(Addr vaddr, bool write);

    /**
     * Translate without touching TLB state (diagnostics/tests).
     */
    Translation peek(Addr vaddr) const;

    /** TLB/fault statistics. */
    const TlbStats &stats() const { return tlbStats; }

    /** Forget all TLB entries (page table survives). */
    void flush_tlb();

  private:
    struct PageEntry
    {
        Addr pframe = 0;
        bool large = false;
        bool writable = false;
    };

    struct TlbEntry
    {
        bool valid = false;
        Addr vpn = 0;
        Addr pframe = 0;
        bool writable = false;
    };

    std::optional<PageEntry> lookup_table(Addr vaddr, Addr &vpn_out,
                                          bool &large_out) const;

    /** page table keyed by (vpn << 1) | large. */
    std::unordered_map<Addr, PageEntry> table;
    std::vector<TlbEntry> smallTlb;
    std::vector<TlbEntry> largeTlb;
    TlbStats tlbStats;
};

} // namespace ap::hw

#endif // AP_HW_MMU_HH
