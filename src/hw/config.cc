#include "hw/config.hh"

#include "base/logging.hh"

namespace ap::hw
{

MachineConfig
MachineConfig::ap1000_plus(int cells)
{
    if (cells < 1)
        fatal("machine must have at least one cell");
    MachineConfig cfg;
    cfg.cells = cells;
    return cfg;
}

} // namespace ap::hw
