#include "hw/dsm.hh"

#include "base/logging.hh"

namespace ap::hw
{

DsmMap::DsmMap(int cells, Addr shared_bytes_per_cell)
    : numCells(cells), blockBytes(shared_bytes_per_cell)
{
    if (cells < 1)
        fatal("DSM map needs at least one cell");
    if (blockBytes == 0)
        fatal("DSM block size must be positive");
    if (static_cast<Addr>(cells) * blockBytes > phys_space / 2)
        fatal("DSM blocks exceed the 32 GB shared space");
}

Addr
DsmMap::block_base(CellId cell) const
{
    if (cell < 0 || cell >= numCells)
        panic("DSM block for invalid cell %d", cell);
    return shared_base + static_cast<Addr>(cell) * blockBytes;
}

std::optional<DsmTarget>
DsmMap::decode(Addr addr) const
{
    if (!is_shared(addr))
        return std::nullopt;
    Addr off = addr - shared_base;
    Addr cell = off / blockBytes;
    if (cell >= static_cast<Addr>(numCells))
        return std::nullopt;
    return DsmTarget{static_cast<CellId>(cell), off % blockBytes};
}

Addr
DsmMap::encode(CellId cell, Addr local) const
{
    if (local >= blockBytes)
        panic("DSM encode: local offset %#llx beyond %#llx block",
              static_cast<unsigned long long>(local),
              static_cast<unsigned long long>(blockBytes));
    return block_base(cell) + local;
}

} // namespace ap::hw
