#include "hw/cell.hh"

namespace ap::hw
{

Cell::Cell(sim::Simulator &sim, const MachineConfig &cfg, CellId id,
           net::Link &tnet, BufferPool &pool, net::Tnet *direct)
    : cellId(id),
      mem(cfg.memBytesPerCell),
      mcUnit(mem),
      ringBuf(cfg.ringBufferBytes),
      mscUnit(sim, cfg, *this, tnet, pool, direct)
{
    // The runtime's default address-space layout: the whole DRAM
    // identity-mapped with 4 KB pages. Tests exercising faults and
    // remapping rebuild this as needed.
    mcUnit.mmu().map_linear(cfg.memBytesPerCell);
}

} // namespace ap::hw
