/**
 * @file
 * Per-cell DRAM model.
 *
 * The functional machine moves real bytes, so each cell owns a flat
 * physical memory image. All accesses are bounds-checked; an
 * out-of-range physical access is a simulator bug (the MMU is in
 * charge of rejecting bad logical addresses first).
 */

#ifndef AP_HW_MEMORY_HH
#define AP_HW_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "base/types.hh"

namespace ap::hw
{

/** Flat byte-addressable physical memory of one cell. */
class CellMemory
{
  public:
    /** @param bytes capacity of the DRAM image. */
    explicit CellMemory(std::size_t bytes);

    /** Capacity in bytes. */
    std::size_t size() const { return data.size(); }

    /** Copy @p buf.size() bytes into memory at physical @p addr. */
    void write(Addr addr, std::span<const std::uint8_t> buf);

    /** Copy @p buf.size() bytes out of memory at physical @p addr. */
    void read(Addr addr, std::span<std::uint8_t> buf) const;

    /** Read a little-endian 32-bit word. */
    std::uint32_t read_u32(Addr addr) const;

    /** Write a little-endian 32-bit word. */
    void write_u32(Addr addr, std::uint32_t value);

    /** Read a little-endian 64-bit word. */
    std::uint64_t read_u64(Addr addr) const;

    /** Write a little-endian 64-bit word. */
    void write_u64(Addr addr, std::uint64_t value);

    /** Read a double (8 bytes). */
    double read_f64(Addr addr) const;

    /** Write a double (8 bytes). */
    void write_f64(Addr addr, double value);

    /** Atomic-in-simulation fetch-and-increment of a 32-bit word. */
    std::uint32_t fetch_increment_u32(Addr addr);

    /** Zero-fill the whole image. */
    void clear();

  private:
    void check(Addr addr, std::size_t len) const;

    std::vector<std::uint8_t> data;
};

} // namespace ap::hw

#endif // AP_HW_MEMORY_HH
