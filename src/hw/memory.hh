/**
 * @file
 * Per-cell DRAM model.
 *
 * The functional machine moves real bytes, so each cell owns a flat
 * physical memory image. All accesses are bounds-checked; an
 * out-of-range physical access is a simulator bug (the MMU is in
 * charge of rejecting bad logical addresses first).
 */

#ifndef AP_HW_MEMORY_HH
#define AP_HW_MEMORY_HH

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>

#include "base/types.hh"

namespace ap::hw
{

/**
 * Flat byte-addressable physical memory of one cell.
 *
 * Images are recycled through a process-wide cache: the destructor
 * zeroes only the span the cell actually dirtied (tracked by the
 * bounds-checked write accessors) and parks the image for the next
 * same-size CellMemory instead of returning it to the OS. Drivers
 * that build thousands of short-lived machines (stress harnesses,
 * micro-benchmarks) therefore pay for the bytes they touch, not for
 * the full DRAM capacity: no 4 MB memset per cell at construction
 * and no page-fault storm re-faulting a fresh mapping every
 * iteration.
 */
class CellMemory
{
  public:
    /** @param bytes capacity of the DRAM image. */
    explicit CellMemory(std::size_t bytes);
    ~CellMemory();

    /** Process-wide image-cache hits (recycled DRAM images). */
    static std::uint64_t image_cache_hits();

    /** Process-wide image-cache misses (freshly mapped images). */
    static std::uint64_t image_cache_misses();

    CellMemory(const CellMemory &) = delete;
    CellMemory &operator=(const CellMemory &) = delete;

    /** Capacity in bytes. */
    std::size_t size() const { return numBytes; }

    /** Copy @p buf.size() bytes into memory at physical @p addr. */
    void write(Addr addr, std::span<const std::uint8_t> buf);

    /** Copy @p buf.size() bytes out of memory at physical @p addr. */
    void read(Addr addr, std::span<std::uint8_t> buf) const;

    /** Read a little-endian 32-bit word. */
    std::uint32_t read_u32(Addr addr) const;

    /** Write a little-endian 32-bit word. */
    void write_u32(Addr addr, std::uint32_t value);

    /** Read a little-endian 64-bit word. */
    std::uint64_t read_u64(Addr addr) const;

    /** Write a little-endian 64-bit word. */
    void write_u64(Addr addr, std::uint64_t value);

    /** Read a double (8 bytes). */
    double read_f64(Addr addr) const;

    /** Write a double (8 bytes). */
    void write_f64(Addr addr, double value);

    /** Atomic-in-simulation fetch-and-increment of a 32-bit word. */
    std::uint32_t fetch_increment_u32(Addr addr);

    /** Zero-fill the whole image. */
    void clear();

  private:
    void check(Addr addr, std::size_t len) const;

    /** Grow the dirty span to cover [addr, addr+len). Called by
     *  every mutating accessor; the destructor zeroes exactly this
     *  span before recycling the image. */
    void
    touch(Addr addr, std::size_t len)
    {
        if (addr < dirtyLo)
            dirtyLo = addr;
        if (addr + len > dirtyHi)
            dirtyHi = addr + len;
    }

    std::size_t numBytes;
    /** Bytes to munmap when the image leaves the cache for good;
     *  0 when calloc-backed. */
    std::size_t mapBytes = 0;
    /** Dirty span [dirtyLo, dirtyHi); empty when lo > hi. */
    std::size_t dirtyLo = static_cast<std::size_t>(-1);
    std::size_t dirtyHi = 0;
    /** Large images are anonymous mmap regions so the kernel
     *  zero-fills them lazily page by page on first touch; small
     *  ones fall back to calloc. */
    std::uint8_t *data = nullptr;
};

} // namespace ap::hw

#endif // AP_HW_MEMORY_HH
