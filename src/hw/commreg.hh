/**
 * @file
 * Communication registers with present bits (Section 4.4).
 *
 * Each MC carries 128 4-byte registers living in shared memory space.
 * A store sets the present bit; a load clears it; a load finding the
 * p-bit clear stalls the processor in hardware (no software polling)
 * until data arrives. Scalar barriers and reductions are built from
 * exactly this primitive.
 */

#ifndef AP_HW_COMMREG_HH
#define AP_HW_COMMREG_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "sim/process.hh"

namespace ap::hw
{

/** Statistics of one register file. */
struct CommRegStats
{
    std::uint64_t stores = 0;
    std::uint64_t loads = 0;
    std::uint64_t stalledLoads = 0; ///< loads that found p-bit clear
};

/** The 128-register file with p-bits of one cell's MC. */
class CommRegisterFile
{
  public:
    static constexpr int num_registers = 128;

    CommRegisterFile();

    /**
     * Store @p value into register @p index and set its p-bit.
     * Overwriting a full register is legal (last write wins) but
     * counted, since well-formed protocols never do it.
     */
    void store(int index, std::uint32_t value);

    /**
     * Blocking load: parks @p proc until the p-bit is set, then
     * clears it and returns the value. Models the hardware retry
     * loop.
     */
    std::uint32_t load(int index, sim::Process &proc);

    /**
     * Non-blocking probe: returns true and fills @p value when the
     * p-bit is set (clearing it), false otherwise.
     */
    bool try_load(int index, std::uint32_t &value);

    /** @return the p-bit of register @p index. */
    bool present(int index) const;

    /** Number of overwrites of full registers (protocol smell). */
    std::uint64_t overwrites() const { return numOverwrites; }

    const CommRegStats &stats() const { return regStats; }

  private:
    void check(int index) const;

    struct Reg
    {
        std::uint32_t value = 0;
        bool pbit = false;
    };

    std::vector<Reg> regs;
    std::vector<sim::Condition> conds;
    CommRegStats regStats;
    std::uint64_t numOverwrites = 0;
};

} // namespace ap::hw

#endif // AP_HW_COMMREG_HH
