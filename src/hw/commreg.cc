#include "hw/commreg.hh"

#include "base/logging.hh"

namespace ap::hw
{

CommRegisterFile::CommRegisterFile()
    : regs(num_registers), conds(num_registers)
{
}

void
CommRegisterFile::check(int index) const
{
    if (index < 0 || index >= num_registers)
        panic("communication register %d out of range", index);
}

void
CommRegisterFile::store(int index, std::uint32_t value)
{
    check(index);
    Reg &r = regs[static_cast<std::size_t>(index)];
    if (r.pbit)
        ++numOverwrites;
    r.value = value;
    r.pbit = true;
    ++regStats.stores;
    conds[static_cast<std::size_t>(index)].notify_all();
}

std::uint32_t
CommRegisterFile::load(int index, sim::Process &proc)
{
    check(index);
    Reg &r = regs[static_cast<std::size_t>(index)];
    bool stalled = false;
    while (!r.pbit) {
        stalled = true;
        proc.wait(conds[static_cast<std::size_t>(index)]);
    }
    if (stalled)
        ++regStats.stalledLoads;
    r.pbit = false;
    ++regStats.loads;
    return r.value;
}

bool
CommRegisterFile::try_load(int index, std::uint32_t &value)
{
    check(index);
    Reg &r = regs[static_cast<std::size_t>(index)];
    if (!r.pbit)
        return false;
    r.pbit = false;
    value = r.value;
    ++regStats.loads;
    return true;
}

bool
CommRegisterFile::present(int index) const
{
    check(index);
    return regs[static_cast<std::size_t>(index)].pbit;
}

} // namespace ap::hw
