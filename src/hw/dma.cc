#include "hw/dma.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ap::hw
{

namespace
{

constexpr Addr small_page_size = Addr{1} << Mmu::small_page_bits;

/** Largest chunk at @p va that stays within one small page. */
std::size_t
page_chunk(Addr va, std::size_t remaining)
{
    Addr off = va & (small_page_size - 1);
    return std::min<std::size_t>(remaining,
                                 static_cast<std::size_t>(
                                     small_page_size - off));
}

} // namespace

DmaResult
DmaEngine::read_run(Mmu &mmu, const CellMemory &mem, Addr addr,
                    std::span<std::uint8_t> buf)
{
    DmaResult res;
    std::size_t done = 0;
    while (done < buf.size()) {
        Addr va = addr + done;
        Translation t = mmu.translate(va, false);
        if (!t.valid) {
            res.ok = false;
            res.faultAddr = va;
            return res;
        }
        std::size_t chunk = page_chunk(va, buf.size() - done);
        mem.read(t.paddr, buf.subspan(done, chunk));
        done += chunk;
        res.bytesMoved += chunk;
    }
    return res;
}

DmaResult
DmaEngine::write_run(Mmu &mmu, CellMemory &mem, Addr addr,
                     std::span<const std::uint8_t> buf)
{
    DmaResult res;
    std::size_t done = 0;
    while (done < buf.size()) {
        Addr va = addr + done;
        Translation t = mmu.translate(va, true);
        if (!t.valid) {
            res.ok = false;
            res.faultAddr = va;
            return res;
        }
        std::size_t chunk = page_chunk(va, buf.size() - done);
        mem.write(t.paddr, buf.subspan(done, chunk));
        done += chunk;
        res.bytesMoved += chunk;
    }
    return res;
}

DmaResult
DmaEngine::gather(Mmu &mmu, const CellMemory &mem, Addr addr,
                  net::StrideSpec spec, std::vector<std::uint8_t> &out)
{
    DmaResult total;
    std::size_t base = out.size();
    out.resize(base + spec.total_bytes());
    Addr cursor = addr;
    std::size_t off = base;
    for (std::uint32_t i = 0; i < spec.count; ++i) {
        std::span<std::uint8_t> dst(out.data() + off, spec.itemSize);
        DmaResult r = read_run(mmu, mem, cursor, dst);
        total.bytesMoved += r.bytesMoved;
        if (!r.ok) {
            total.ok = false;
            total.faultAddr = r.faultAddr;
            out.resize(base + static_cast<std::size_t>(
                                  total.bytesMoved));
            return total;
        }
        off += spec.itemSize;
        cursor += spec.itemSize + spec.skip;
    }
    return total;
}

DmaResult
DmaEngine::scatter(Mmu &mmu, CellMemory &mem, Addr addr,
                   net::StrideSpec spec,
                   std::span<const std::uint8_t> buf)
{
    if (buf.size() != spec.total_bytes())
        panic("scatter buffer %zu bytes != stride pattern %llu bytes",
              buf.size(),
              static_cast<unsigned long long>(spec.total_bytes()));
    DmaResult total;
    Addr cursor = addr;
    std::size_t off = 0;
    for (std::uint32_t i = 0; i < spec.count; ++i) {
        std::span<const std::uint8_t> src = buf.subspan(off,
                                                        spec.itemSize);
        DmaResult r = write_run(mmu, mem, cursor, src);
        total.bytesMoved += r.bytesMoved;
        if (!r.ok) {
            total.ok = false;
            total.faultAddr = r.faultAddr;
            return total;
        }
        off += spec.itemSize;
        cursor += spec.itemSize + spec.skip;
    }
    return total;
}

} // namespace ap::hw
