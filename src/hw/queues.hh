/**
 * @file
 * MSC+ command queues with DRAM overflow (Section 4.1).
 *
 * Each queue holds at most 64 words (8 commands of 8 words each) in
 * MSC+ RAM. When the hardware queue is full, further commands go
 * directly to a pre-allocated buffer in DRAM; once the hardware queue
 * drains, the MSC+ interrupts the operating system, which reloads
 * commands from DRAM back into the queue. The paper's own MLSim
 * "assumes that queues are long enough" — this model is the piece
 * they left out, and the queue ablation bench measures its cost.
 */

#ifndef AP_HW_QUEUES_HH
#define AP_HW_QUEUES_HH

#include <cstdint>
#include <deque>

#include "base/types.hh"
#include "hw/command.hh"

namespace ap::hw
{

/** Occupancy and overflow statistics of one queue. */
struct QueueStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t spills = 0;          ///< commands written to DRAM
    std::uint64_t refillInterrupts = 0;///< OS reload episodes
    std::uint64_t maxHwDepth = 0;      ///< high-water MSC+ RAM depth
    std::uint64_t maxSpillDepth = 0;   ///< worst DRAM backlog
};

/** One MSC+ command queue (send or reply) with DRAM spill. */
class CommandQueue
{
  public:
    /** Hardware queue capacity in words (paper: 64). */
    static constexpr int default_capacity_words = 64;

    /**
     * @param capacity_words MSC+ RAM capacity of this queue
     */
    explicit CommandQueue(int capacity_words = default_capacity_words);

    /**
     * Enqueue a command. Goes to MSC+ RAM when it fits, otherwise to
     * the DRAM spill buffer. @p force_spill sends the command to DRAM
     * even when the hardware queue has room (fault injection: the
     * overflow path must behave identically under pressure and under
     * a forced spill). @return true when it spilled.
     */
    bool push(Command cmd, bool force_spill = false);

    /** @return true when no command is queued anywhere. */
    bool empty() const { return hw.empty() && spill.empty(); }

    /** @return true when the hardware part is empty but DRAM holds
     *  commands — the condition that raises the refill interrupt. */
    bool
    needs_refill() const
    {
        return hw.empty() && !spill.empty();
    }

    /**
     * OS refill: move spilled commands back into MSC+ RAM up to
     * capacity. @return number of commands moved.
     */
    int refill();

    /** Peek the head command; queue must not need a refill first. */
    const Command &front() const;

    /** Pop the head command. */
    Command pop();

    /** Commands currently in MSC+ RAM. */
    int hw_depth() const { return static_cast<int>(hw.size()); }

    /** Commands currently spilled to DRAM. */
    int spill_depth() const { return static_cast<int>(spill.size()); }

    /** True while an OS refill interrupt is in flight (MSC+ state). */
    bool refill_scheduled() const { return refillScheduled; }

    /** Mark/unmark an in-flight refill interrupt. */
    void set_refill_scheduled(bool v) { refillScheduled = v; }

    const QueueStats &stats() const { return queueStats; }

  private:
    int capacityWords;
    bool refillScheduled = false;
    std::deque<Command> hw;
    std::deque<Command> spill;
    QueueStats queueStats;
};

} // namespace ap::hw

#endif // AP_HW_QUEUES_HH
